(** Frontend tests: lexer, parser, typechecker, and the semantics of lowered
    programs (exercised through the IR interpreter). *)

open Emc_lang

let wrap_int_expr e = Printf.sprintf "fn main() -> int { out(%s); return 0; }" e
let wrap_float_expr e = Printf.sprintf "fn main() -> int { out(%s); return 0; }" e

let eval_int e =
  match Helpers.interp_outputs (wrap_int_expr e) with
  | [ s ] -> int_of_string s
  | _ -> Alcotest.fail "expected one output"

let eval_float e =
  match Helpers.interp_outputs (wrap_float_expr e) with
  | [ s ] -> float_of_string s
  | _ -> Alcotest.fail "expected one output"

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "fn x1 123 4.5 <= << // comment\n + 0.5e2" in
  let kinds = List.map (fun (t : Lexer.loc_token) -> t.tok) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [ Lexer.KW "fn"; Lexer.IDENT "x1"; Lexer.INT 123; Lexer.FLOAT 4.5; Lexer.PUNCT "<=";
        Lexer.PUNCT "<<"; Lexer.PUNCT "+"; Lexer.FLOAT 50.0; Lexer.EOF ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "fn\n  main" in
  match toks with
  | [ _; { tok = Lexer.IDENT "main"; pos }; _ ] ->
      Alcotest.(check int) "line" 2 pos.Emc_lang.Ast.line;
      Alcotest.(check int) "col" 3 pos.Emc_lang.Ast.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_error () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Lexer.tokenize "fn @ main");
       false
     with Lexer.Error _ -> true)

(* ---------------- parser errors ---------------- *)

let parse_fails src =
  match Minic.compile src with
  | Error _ -> true
  | Ok _ -> false

let test_parse_errors () =
  List.iter
    (fun src -> Alcotest.(check bool) ("rejects: " ^ src) true (parse_fails src))
    [
      "fn main() -> int { return }";
      "fn main() -> int { let = 3; return 0; }";
      "fn main() -> int { if 1 { } return 0; }";
      "int a[]; fn main() -> int { return 0; }";
      "fn main() -> int { for (i = 0; j < 3; i = i + 1) {} return 0; }";
      "fn main() -> int { for (i = 0; i < 3; i = i - 1) {} return 0; }" (* negative step *);
      "fn main() -> int { a[0]; return 0; }" (* array expr as statement *);
    ]

(* ---------------- typechecker ---------------- *)

let test_type_errors () =
  List.iter
    (fun (what, src) -> Alcotest.(check bool) what true (parse_fails src))
    [
      ("int+float mix", "fn main() -> int { let x = 1 + 2.0; return 0; }");
      ("unknown var", "fn main() -> int { return y; }");
      ("unknown function", "fn main() -> int { return f(1); }");
      ("arity mismatch", "fn f(a: int) -> int { return a; } fn main() -> int { return f(1,2); }");
      ("void as value", "fn f() { return; } fn main() -> int { return f(); }");
      ("float condition", "fn main() -> int { if (1.0) { } return 0; }");
      ("missing return", "fn main() -> int { let x = 1; }");
      ("redeclaration", "fn main() -> int { let x = 1; let x = 2; return x; }");
      ("no main", "fn f() -> int { return 1; }");
      ("float shift", "fn main() -> int { let x = 1.0 << 2; return 0; }" );
      ("non-const step", "fn main() -> int { let s = 1; for (i = 0; i < 9; i = i + s) {} return 0; }");
      ("assign type mismatch", "fn main() -> int { let x = 1; x = 2.0; return x; }");
      ("return type mismatch", "fn main() -> int { return 1.5; }");
      ("main with params", "fn main(x: int) -> int { return x; }");
    ]

let test_valid_programs_accepted () =
  List.iter
    (fun src ->
      match Minic.compile src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rejected valid program: %s" (Format.asprintf "%a" Minic.pp_error e))
    [
      "fn main() -> int { return 0; }";
      "fn main() -> int { if (1) { return 1; } else { return 2; } }";
      "int a[10]; fn main() -> int { a[3] = 7; return a[3]; }";
      "fn f(x: float) -> float { return x * 2.0; } fn main() -> int { return int(f(1.5)); }";
    ]

(* ---------------- expression semantics ---------------- *)

let ci = Alcotest.(check int)

let test_arithmetic () =
  ci "add" 7 (eval_int "3 + 4");
  ci "precedence" 14 (eval_int "2 + 3 * 4");
  ci "parens" 20 (eval_int "(2 + 3) * 4");
  ci "sub assoc" (-4) (eval_int "1 - 2 - 3");
  ci "div trunc" 2 (eval_int "7 / 3");
  ci "div negative" (-2) (eval_int "(0 - 7) / 3");
  ci "rem" 1 (eval_int "7 % 3");
  ci "neg" (-5) (eval_int "-5");
  ci "shifts" 40 (eval_int "5 << 3");
  ci "shr" 2 (eval_int "20 >> 3");
  ci "bitand" 4 (eval_int "12 & 6");
  ci "bitor" 14 (eval_int "12 | 6");
  ci "bitxor" 10 (eval_int "12 ^ 6")

let test_comparisons () =
  ci "lt true" 1 (eval_int "2 < 3");
  ci "lt false" 0 (eval_int "3 < 2");
  ci "le" 1 (eval_int "3 <= 3");
  ci "eq" 1 (eval_int "4 == 4");
  ci "ne" 1 (eval_int "4 != 5");
  ci "not" 1 (eval_int "!0");
  ci "not nonzero" 0 (eval_int "!7")

let test_float_arith () =
  let cf = Alcotest.(check (float 1e-12)) in
  cf "fadd" 3.5 (eval_float "1.25 + 2.25");
  cf "fmul" 2.5 (eval_float "1.25 * 2.0");
  cf "fdiv" 0.625 (eval_float "1.25 / 2.0");
  cf "fcmp" 1.0 (eval_float "float(1.5 < 2.5)");
  cf "cast int->float" 3.0 (eval_float "float(3)");
  ci "cast float->int truncates" 2 (eval_int "int(2.9)")

let test_short_circuit () =
  (* the right operand must not be evaluated when the left decides *)
  let src =
    {|
int hits[4];
fn bump(i: int) -> int { hits[i] = hits[i] + 1; return i; }
fn main() -> int {
  let a = 0 != 0 && bump(0) == 0;
  let b = 1 == 1 || bump(1) == 1;
  let c = 1 == 1 && bump(2) == 2;
  let d = 0 != 0 || bump(3) == 3;
  out(hits[0]); out(hits[1]); out(hits[2]); out(hits[3]);
  return a + b + c + d;
}
|}
  in
  Alcotest.(check (list string)) "evaluation counts" [ "0"; "0"; "1"; "1" ]
    (Helpers.interp_outputs src)

let test_control_flow () =
  ci "while loop sum" 45
    (Helpers.interp_ret
       "fn main() -> int { let s = 0; let i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }");
  ci "for loop sum" 45
    (Helpers.interp_ret "fn main() -> int { let s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }");
  ci "for with step" 9
    (Helpers.interp_ret "fn main() -> int { let s = 0; for (i = 0; i <= 6; i = i + 3) { s = s + i; } return s; }");
  ci "nested if" 2
    (Helpers.interp_ret
       "fn main() -> int { let x = 5; if (x > 10) { return 1; } else { if (x > 3) { return 2; } } return 3; }");
  ci "zero-trip for" 0
    (Helpers.interp_ret "fn main() -> int { let s = 0; for (i = 5; i < 5; i = i + 1) { s = 99; } return s; }")

let test_for_bound_evaluated_once () =
  (* MiniC semantics: the bound expression is evaluated once, in the
     preheader — growing it inside the body must not extend the loop *)
  let src =
    {|
int n[1];
fn main() -> int {
  n[0] = 3;
  let c = 0;
  for (i = 0; i < n[0]; i = i + 1) {
    n[0] = n[0] + 1;
    c = c + 1;
  }
  return c;
}
|}
  in
  ci "bound snapshot" 3 (Helpers.interp_ret src)

let test_recursion () =
  ci "factorial" 120
    (Helpers.interp_ret
       "fn fact(n: int) -> int { if (n <= 1) { return 1; } return n * fact(n - 1); } fn main() -> int { return fact(5); }");
  ci "fib" 55
    (Helpers.interp_ret
       "fn fib(n: int) -> int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fn main() -> int { return fib(10); }")

let test_scoping () =
  ci "shadowing in blocks" 1
    (Helpers.interp_ret
       "fn main() -> int { let x = 1; if (1) { let x = 2; x = 3; } return x; }");
  ci "loop var scoped" 7
    (Helpers.interp_ret
       "fn main() -> int { let i = 7; for (i = 0; i < 3; i = i + 1) { } return i; }")

let test_globals () =
  Alcotest.(check (list string)) "arrays zero-initialized and writable" [ "0"; "42" ]
    (Helpers.interp_outputs
       "int g[8]; fn main() -> int { out(g[5]); g[5] = 42; out(g[5]); return 0; }")

let test_division_by_zero_traps () =
  Alcotest.(check bool) "trap" true
    (try
       ignore (Helpers.interp_ret "fn main() -> int { let z = 0; return 1 / z; }");
       false
     with Emc_ir.Interp.Trap _ -> true)

(* all workloads parse, typecheck and verify *)
let test_workloads_compile () =
  List.iter
    (fun (w : Emc_workloads.Workload.t) ->
      match Minic.compile w.source with
      | Ok ir -> Emc_ir.Verify.check_program ir
      | Error e ->
          Alcotest.failf "%s rejected: %s" w.name (Format.asprintf "%a" Minic.pp_error e))
    Emc_workloads.Registry.all

let test_more_precedence () =
  ci "unary minus binds tighter than mul" (-6) (eval_int "-2 * 3");
  ci "rem precedence" 5 (eval_int "1 + 12 % 8");
  ci "shift vs add" 32 (eval_int "1 << 4 + 1");
  ci "bitand vs eq" 1 (eval_int "(3 & 1) == 1");
  ci "chained compare via parens" 1 (eval_int "(1 < 2) == 1");
  ci "logical or of ands" 1 (eval_int "0 != 0 && 1 == 1 || 2 > 1")

let test_comment_handling () =
  ci "comment at eof" 4 (Helpers.interp_ret "fn main() -> int { return 4; } // trailing");
  ci "comment mid-function" 9
    (Helpers.interp_ret "fn main() -> int {\n // note\n return 9;\n}")

let test_float_output_roundtrip () =
  (* hex float formatting must be exact, so optimized/unoptimized comparisons
     of FP outputs are bit-level *)
  Alcotest.(check (list string)) "hex bits" [ "0x1.8p+0" ]
    (Helpers.interp_outputs "fn main() -> int { out(1.5); return 0; }")

let test_deep_nesting () =
  ci "five-deep blocks" 5
    (Helpers.interp_ret
       "fn main() -> int { let x = 0; if (1) { if (1) { if (1) { if (1) { if (1) { x = 5; } } } } } return x; }")

let suite =
  [
    ("lexer tokens", `Quick, test_lexer_tokens);
    ("lexer positions", `Quick, test_lexer_positions);
    ("lexer errors", `Quick, test_lexer_error);
    ("parse errors", `Quick, test_parse_errors);
    ("type errors", `Quick, test_type_errors);
    ("valid programs accepted", `Quick, test_valid_programs_accepted);
    ("integer arithmetic", `Quick, test_arithmetic);
    ("comparisons", `Quick, test_comparisons);
    ("float arithmetic", `Quick, test_float_arith);
    ("short-circuit evaluation", `Quick, test_short_circuit);
    ("control flow", `Quick, test_control_flow);
    ("for bound evaluated once", `Quick, test_for_bound_evaluated_once);
    ("recursion", `Quick, test_recursion);
    ("scoping", `Quick, test_scoping);
    ("globals", `Quick, test_globals);
    ("division by zero traps", `Quick, test_division_by_zero_traps);
    ("all workloads compile", `Quick, test_workloads_compile);
    ("more precedence", `Quick, test_more_precedence);
    ("comments", `Quick, test_comment_handling);
    ("float output roundtrip", `Quick, test_float_output_roundtrip);
    ("deep nesting", `Quick, test_deep_nesting);
  ]
