(** Simulator tests: caches, branch predictors, the memory hierarchy, the
    functional core on hand-assembled programs, and timing-model sanity
    (dependence stalls, issue-width limits, memory-latency and predictor
    effects, SMARTS vs full detail). *)

open Emc_sim
open Emc_isa

let ci = Alcotest.(check int)
let cb = Alcotest.(check bool)

(* ---------------- cache ---------------- *)

let test_cache_basic () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 in
  cb "cold miss" false (Cache.access c 0);
  cb "hit after fill" true (Cache.access c 0);
  cb "same line hit" true (Cache.access c 32);
  cb "different line miss" false (Cache.access c 64)

let test_cache_lru () =
  (* 2-way, 2 sets of 64B lines: lines mapping to set 0 are multiples of 128 *)
  let c = Cache.create ~size_bytes:256 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  (* touch 0 so 128 is LRU *)
  ignore (Cache.access c 0);
  (* new line in set 0 evicts 128 *)
  ignore (Cache.access c 256);
  cb "0 still resident" true (Cache.access c 0);
  cb "128 evicted" false (Cache.access c 128)

let test_cache_direct_mapped_conflict () =
  let c = Cache.create ~size_bytes:256 ~assoc:1 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  cb "conflict evicted" false (Cache.access c 0)

let test_cache_assoc_avoids_conflict () =
  let c = Cache.create ~size_bytes:256 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  cb "2-way keeps both" true (Cache.access c 0);
  cb "2-way keeps both (2)" true (Cache.access c 256)

let test_cache_stats () =
  let c = Cache.create ~size_bytes:1024 ~assoc:1 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 4096);
  Alcotest.(check (float 1e-9)) "miss rate" 0.5 (Cache.miss_rate c)

let test_cache_probe_no_fill () =
  let c = Cache.create ~size_bytes:1024 ~assoc:1 in
  cb "probe miss" false (Cache.probe c 0);
  cb "probe did not fill" false (Cache.probe c 0);
  ignore (Cache.access c 0);
  cb "probe hit" true (Cache.probe c 0)

(* ---------------- branch predictor ---------------- *)

let test_bpred_learns_bias () =
  let p = Bpred.create ~size:512 in
  (* an always-taken branch is learned after two updates *)
  ignore (Bpred.update p 100 true);
  ignore (Bpred.update p 100 true);
  cb "predicts taken" true (Bpred.predict p 100);
  for _ = 1 to 100 do
    ignore (Bpred.update p 100 true)
  done;
  cb "still predicts taken" true (Bpred.predict p 100)

let test_bpred_gshare_learns_alternation () =
  let p = Bpred.create ~size:4096 in
  (* strictly alternating T/N/T/N: bimodal fails, the 2-level component keyed
     on history learns it; accuracy over the last updates must be high *)
  let taken = ref false in
  for _ = 1 to 500 do
    taken := not !taken;
    ignore (Bpred.update p 777 !taken)
  done;
  let correct = ref 0 in
  for _ = 1 to 200 do
    taken := not !taken;
    if Bpred.update p 777 !taken then incr correct
  done;
  cb (Printf.sprintf "alternation learned (%d/200)" !correct) true (!correct > 180)

let test_bpred_mispredict_rate_tracked () =
  let p = Bpred.create ~size:512 in
  for i = 1 to 100 do
    ignore (Bpred.update p 5 (i mod 7 = 0))
  done;
  cb "rate in (0,1)" true (Bpred.mispredict_rate p > 0.0 && Bpred.mispredict_rate p < 1.0)

let test_bpred_size_must_be_pow2 () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Bpred.create: size must be a positive power of two") (fun () ->
      ignore (Bpred.create ~size:1000))

(* ---------------- memory hierarchy ---------------- *)

let test_memsys_latencies () =
  let m = Memsys.create Config.typical in
  (* cold access goes to memory *)
  let lat = Memsys.access_d m 0x2000 in
  ci "cold = l1 + l2 + mem" (Config.typical.dcache_lat + Config.typical.l2_lat + Config.typical.mem_lat) lat;
  (* second access hits L1 *)
  ci "hit = l1" Config.typical.dcache_lat (Memsys.access_d m 0x2000);
  (* evicting L1 but not L2 gives an L2 hit — touch far addresses to evict *)
  for i = 1 to 4096 do
    ignore (Memsys.access_d m (0x2000 + (i * 64)))
  done;
  let l2hit = Memsys.access_d m 0x2000 in
  cb "l2 hit cheaper than memory" true
    (l2hit <= Config.typical.dcache_lat + Config.typical.l2_lat)

let test_memsys_prefetch_warms () =
  let m = Memsys.create Config.typical in
  Memsys.prefetch_d m 0x4000;
  ci "post-prefetch hit" Config.typical.dcache_lat (Memsys.access_d m 0x4000)

(* ---------------- functional core on hand-written machine code -------- *)

let dummy_layout = Emc_ir.Memlayout.compute { Emc_ir.Ir.funcs = []; globals = [] }

let mk_prog insts =
  { Isa.insts = Array.of_list insts; entry = 0; layout = dummy_layout; globals = [];
    func_starts = [] }

let run_prog insts =
  let f = Func.create (mk_prog insts) in
  ignore (Func.run f);
  f

let test_func_arithmetic () =
  let f =
    run_prog
      [
        Isa.make LDI ~rd:1 ~imm:20;
        Isa.make LDI ~rd:2 ~imm:6;
        Isa.make ADD ~rd:3 ~rs1:1 ~rs2:2;
        Isa.make SUB ~rd:4 ~rs1:1 ~rs2:2;
        Isa.make MUL ~rd:5 ~rs1:1 ~rs2:2;
        Isa.make DIV ~rd:6 ~rs1:1 ~rs2:2;
        Isa.make REM ~rd:7 ~rs1:1 ~rs2:2;
        Isa.make OUT ~rs1:3; Isa.make OUT ~rs1:4; Isa.make OUT ~rs1:5;
        Isa.make OUT ~rs1:6; Isa.make OUT ~rs1:7;
        Isa.make HALT;
      ]
  in
  Alcotest.(check (list string)) "results" [ "26"; "14"; "120"; "3"; "2" ]
    (List.map Helpers.fvalue_str (Func.outputs f))

let test_func_memory () =
  let f =
    run_prog
      [
        Isa.make LDI ~rd:1 ~imm:0x1000;
        Isa.make LDI ~rd:2 ~imm:77;
        Isa.make ST ~rs1:1 ~rs2:2 ~imm:8;
        Isa.make LD ~rd:3 ~rs1:1 ~imm:8;
        Isa.make OUT ~rs1:3;
        Isa.make HALT;
      ]
  in
  Alcotest.(check (list string)) "store/load roundtrip" [ "77" ] (List.map Helpers.fvalue_str (Func.outputs f))

let test_func_branches () =
  let f =
    run_prog
      [
        Isa.make LDI ~rd:1 ~imm:0;
        Isa.make BEQZ ~rs1:1 ~imm:3; (* taken *)
        Isa.make LDI ~rd:2 ~imm:111; (* skipped *)
        Isa.make BNEZ ~rs1:1 ~imm:5; (* not taken *)
        Isa.make LDI ~rd:2 ~imm:222;
        Isa.make OUT ~rs1:2;
        Isa.make HALT;
      ]
  in
  Alcotest.(check (list string)) "branch semantics" [ "222" ] (List.map Helpers.fvalue_str (Func.outputs f))

let test_func_call_ret () =
  let f =
    run_prog
      [
        Isa.make CALL ~imm:4;
        Isa.make OUT ~rs1:0;
        Isa.make HALT;
        Isa.make NOP;
        (* function at 4: r0 <- 99; ret *)
        Isa.make LDI ~rd:0 ~imm:99;
        Isa.make RET;
      ]
  in
  Alcotest.(check (list string)) "call/ret" [ "99" ] (List.map Helpers.fvalue_str (Func.outputs f))

let test_func_float_bits () =
  let f =
    run_prog
      [
        Isa.make LFI ~rd:33 ~fimm:1.5;
        Isa.make LFI ~rd:34 ~fimm:2.25;
        Isa.make FADD ~rd:35 ~rs1:33 ~rs2:34;
        Isa.make FMUL ~rd:36 ~rs1:33 ~rs2:34;
        Isa.make OUT ~rs1:35;
        Isa.make OUT ~rs1:36;
        Isa.make FTOI ~rd:5 ~rs1:36;
        Isa.make OUT ~rs1:5;
        Isa.make HALT;
      ]
  in
  Alcotest.(check (list string)) "fp ops" [ "0x1.ep+1"; "0x1.bp+1"; "3" ]
    (List.map Helpers.fvalue_str (Func.outputs f))

(* ---------------- timing model ---------------- *)

let cycles_of ?(cfg = Config.typical) insts =
  let ooo = Ooo.create cfg (mk_prog insts) in
  Ooo.run_to_completion ooo

let test_ooo_dependent_chain_slower () =
  (* 40 dependent adds vs 40 independent adds *)
  let dep =
    Isa.make LDI ~rd:1 ~imm:0
    :: List.init 40 (fun _ -> Isa.make ADD ~rd:1 ~rs1:1 ~rs2:1)
    @ [ Isa.make HALT ]
  in
  let indep =
    Isa.make LDI ~rd:1 ~imm:0
    :: List.init 40 (fun i -> Isa.make ADD ~rd:(2 + (i mod 8)) ~rs1:1 ~rs2:1)
    @ [ Isa.make HALT ]
  in
  let cd = cycles_of dep and ci' = cycles_of indep in
  cb (Printf.sprintf "dependent (%d) > independent (%d)" cd ci') true (cd > ci')

let test_ooo_issue_width_effect () =
  let indep =
    Isa.make LDI ~rd:1 ~imm:0
    :: List.init 200 (fun i -> Isa.make ADD ~rd:(2 + (i mod 8)) ~rs1:1 ~rs2:1)
    @ [ Isa.make HALT ]
  in
  let w2 = cycles_of ~cfg:{ Config.typical with issue_width = 2 } indep in
  let w4 = cycles_of ~cfg:{ Config.typical with issue_width = 4 } indep in
  cb (Printf.sprintf "width 4 (%d) faster than width 2 (%d)" w4 w2) true (w4 < w2)

let test_ooo_memory_latency_effect () =
  (* dependent load chain over cold lines: memory latency dominates *)
  let loads =
    Isa.make LDI ~rd:1 ~imm:0x1000
    :: List.init 20 (fun i -> Isa.make LD ~rd:2 ~rs1:1 ~imm:(i * 64))
    @ [ Isa.make HALT ]
  in
  let fast = cycles_of ~cfg:{ Config.typical with mem_lat = 50 } loads in
  let slow = cycles_of ~cfg:{ Config.typical with mem_lat = 150 } loads in
  cb (Printf.sprintf "mem 150 (%d) slower than mem 50 (%d)" slow fast) true
    (slow > fast + 20)

(* a helper: loop [body] [n] times (counter in r20, body must not touch it);
   the first iteration warms the I-cache so later iterations measure steady
   state *)
let looped n body =
  (Isa.make LDI ~rd:20 ~imm:n :: body)
  @ [ Isa.make ADDI ~rd:20 ~rs1:20 ~imm:(-1); Isa.make BNEZ ~rs1:20 ~imm:1; Isa.make HALT ]

let test_ooo_store_forwarding () =
  (* each iteration stores then immediately loads the same (cold) word while
     memory latency is enormous: the load must get its value from the store
     buffer and commit-time store writes must not stall the pipeline *)
  let n = 100 in
  let body =
    [
      Isa.make ADDI ~rd:1 ~rs1:1 ~imm:64; (* fresh line each iteration *)
      Isa.make ST ~rs1:1 ~rs2:20 ~imm:0;
      Isa.make LD ~rd:3 ~rs1:1 ~imm:0;
      Isa.make ADD ~rd:4 ~rs1:3 ~rs2:3;
    ]
  in
  let prog = Isa.make LDI ~rd:1 ~imm:0x1000 :: looped n body in
  (* shift loop body by one instruction: fix branch target *)
  let prog =
    List.mapi
      (fun _ i -> if i.Isa.op = BNEZ then { i with Isa.imm = 2 } else i)
      prog
  in
  let c = cycles_of ~cfg:{ Config.typical with mem_lat = 400 } prog in
  cb (Printf.sprintf "store->load forwards (%d cycles for %d iters)" c n) true
    (c < n * 30)

let test_ooo_ruu_size_effect () =
  (* per iteration: 4 cold-line loads, each followed by 12 independent adds.
     A 16-entry RUU holds barely one load at a time (the misses serialize);
     a 128-entry RUU exposes the memory-level parallelism *)
  let n = 60 in
  let body =
    List.concat
      (List.init 4 (fun j ->
           Isa.make ADDI ~rd:1 ~rs1:1 ~imm:64
           :: Isa.make LD ~rd:(2 + j) ~rs1:1 ~imm:0
           :: List.init 12 (fun k -> Isa.make ADD ~rd:(8 + (k mod 6)) ~rs1:1 ~rs2:1)))
  in
  let prog = Isa.make LDI ~rd:1 ~imm:0x1000 :: looped n body in
  let prog =
    List.map (fun i -> if i.Isa.op = BNEZ then { i with Isa.imm = 2 } else i) prog
  in
  let small = cycles_of ~cfg:{ Config.typical with ruu_size = 16; mem_lat = 150 } prog in
  let large = cycles_of ~cfg:{ Config.typical with ruu_size = 128; mem_lat = 150 } prog in
  cb (Printf.sprintf "ruu 128 (%d) < ruu 16 (%d)" large small) true
    (float_of_int large < 0.8 *. float_of_int small)

let test_ooo_store_waits_for_data () =
  (* A store's data register (rs2) is a real source: a store whose data
     comes from a 12-cycle DIV must not issue — and the same-word load
     behind it must not forward — until the DIV completes. Pins the
     dependence semantics behind the collapsed [Ooo.sources] (every opcode's
     sources are (rs1, rs2); stores need no special casing). *)
  let prog data_op =
    [
      Isa.make LDI ~rd:1 ~imm:0x1000;
      Isa.make LDI ~rd:2 ~imm:5;
      data_op; (* r3 <- f(r2), fast or slow *)
      Isa.make ST ~rs1:1 ~rs2:3 ~imm:0;
      Isa.make LD ~rd:4 ~rs1:1 ~imm:0;
      Isa.make OUT ~rs1:4;
      Isa.make HALT;
    ]
  in
  let fast = cycles_of (prog (Isa.make MOV ~rd:3 ~rs1:2)) in
  let slow = cycles_of (prog (Isa.make DIV ~rd:3 ~rs1:2 ~rs2:2)) in
  cb
    (Printf.sprintf "store waits for DIV data (%d > %d + 8)" slow fast)
    true
    (slow > fast + 8)

let test_ooo_flush_keeps_last_fetch_line () =
  (* flush_timing discards timing state but the front end is still on the
     same I-cache line afterwards: resuming must not account a second line
     access. The whole program fits one 64-byte line (16 instructions), so
     exactly one L1I access — the cold miss — may ever be recorded. *)
  let prog =
    Isa.make LDI ~rd:1 ~imm:1
    :: List.init 10 (fun i -> Isa.make ADD ~rd:(2 + (i mod 4)) ~rs1:1 ~rs2:1)
    @ [ Isa.make HALT ]
  in
  let ooo = Ooo.create Config.typical (mk_prog prog) in
  Ooo.run_detailed ooo ~instrs:3;
  Ooo.flush_timing ooo;
  ignore (Ooo.run_to_completion ooo);
  let counters = Ooo.counters ooo in
  ci "single cold L1I miss" 1 (List.assoc "l1i_misses" counters);
  ci "no re-access after flush" 0 (List.assoc "l1i_hits" counters)

let test_ooo_commits_everything () =
  let n = 50 in
  let prog =
    Isa.make LDI ~rd:1 ~imm:1
    :: List.init n (fun i -> Isa.make ADD ~rd:(2 + (i mod 4)) ~rs1:1 ~rs2:1)
    @ [ Isa.make HALT ]
  in
  let ooo = Ooo.create Config.typical (mk_prog prog) in
  ignore (Ooo.run_to_completion ooo);
  (* all instructions except HALT commit through the RUU *)
  ci "committed count" (n + 1) ooo.Ooo.committed

let test_ooo_flush_timing_keeps_arch_state () =
  let prog =
    [
      Isa.make LDI ~rd:1 ~imm:7;
      Isa.make LDI ~rd:2 ~imm:35;
      Isa.make ADD ~rd:3 ~rs1:1 ~rs2:2;
      Isa.make OUT ~rs1:3;
      Isa.make HALT;
    ]
  in
  let ooo = Ooo.create Config.typical (mk_prog prog) in
  Ooo.run_detailed ooo ~instrs:2;
  Ooo.flush_timing ooo;
  ignore (Ooo.run_to_completion ooo);
  Alcotest.(check (list string)) "outputs survive flush" [ "42" ]
    (List.map Helpers.fvalue_str (Func.outputs (Ooo.func ooo)))

(* mispredictable branches cost cycles vs well-predicted ones *)
let test_branch_prediction_effect () =
  let src_predictable =
    {|
int d[1024];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 1000; i = i + 1) {
    if (i < 800) { s = s + 1; } else { s = s + 2; }
  }
  return s;
}
|}
  in
  let src_random =
    {|
int d[1024];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 1000; i = i + 1) {
    if (d[i] == 1) { s = s + 1; } else { s = s + 2; }
  }
  return s;
}
|}
  in
  (* genuinely random branch data, injected from the host *)
  let rng = Emc_util.Rng.create 99 in
  let arrays = [ ("d", Emc_workloads.Workload.DInt (Array.init 1024 (fun _ -> Emc_util.Rng.int rng 2))) ] in
  let cycles ?(arrays = []) src =
    let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays src in
    let ooo = Ooo.create Config.typical prog in
    Helpers.set_func_arrays (Ooo.func ooo) arrays;
    let c = Ooo.run_to_completion ooo in
    (c, (Ooo.func ooo).Func.icount, ooo.Ooo.branch_mispredicts)
  in
  let _, _, mp = cycles src_predictable in
  let cr, ir, mr = cycles ~arrays src_random in
  let cpi_r = float_of_int cr /. float_of_int ir in
  ignore cpi_r;
  cb (Printf.sprintf "random branches mispredict more (%d vs %d)" mr mp) true (mr > 4 * mp + 50)

(* SMARTS sampling estimates close to full simulation *)
let test_smarts_accuracy () =
  let w = Emc_workloads.Registry.find "gzip" in
  let arrays = w.arrays ~scale:0.3 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays w.source in
  let setup f = Helpers.set_func_arrays f arrays in
  let full = Smarts.run_full Config.typical prog ~setup in
  let smp = Smarts.run_sampled Config.typical prog ~setup in
  let err = Float.abs (smp.Smarts.cycles -. full.Smarts.cycles) /. full.Smarts.cycles in
  cb (Printf.sprintf "within 10%% (got %.1f%%)" (err *. 100.)) true (err < 0.10);
  cb "sampled used sampling" true (not smp.Smarts.detailed);
  ci "same instruction count" full.Smarts.instrs smp.Smarts.instrs

let test_smarts_interval_one_is_full () =
  let w = Emc_workloads.Registry.find "gzip" in
  let arrays = w.arrays ~scale:0.05 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o0 ~arrays w.source in
  let setup f = Helpers.set_func_arrays f arrays in
  let r =
    Smarts.run_sampled
      ~params:{ Smarts.default_params with interval = 1 }
      Config.typical prog ~setup
  in
  cb "degenerates to detailed" true r.Smarts.detailed

(* ---------------- energy model ---------------- *)

let test_energy_breakdown_sums () =
  let w = Emc_workloads.Registry.find "gzip" in
  let arrays = w.arrays ~scale:0.05 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays w.source in
  let ooo = Ooo.create Config.typical prog in
  Helpers.set_func_arrays (Ooo.func ooo) arrays;
  let cycles = float_of_int (Ooo.run_to_completion ooo) in
  let b = Energy.estimate ooo ~cycles in
  cb "total positive" true (b.Energy.total > 0.0);
  Alcotest.(check (float 1e-6)) "components sum to total" b.Energy.total
    (b.Energy.dynamic_fu +. b.Energy.memory +. b.Energy.predictor +. b.Energy.leakage);
  cb "every component positive" true
    (b.Energy.dynamic_fu > 0.0 && b.Energy.memory > 0.0 && b.Energy.predictor > 0.0
    && b.Energy.leakage > 0.0)

let test_energy_tracks_memory_traffic () =
  (* mcf with a tiny L2 spends far more memory energy than with a huge one *)
  let w = Emc_workloads.Registry.find "mcf" in
  let arrays = w.arrays ~scale:0.08 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays w.source in
  let energy l2 =
    let ooo = Ooo.create { Config.typical with l2_kb = l2 } prog in
    Helpers.set_func_arrays (Ooo.func ooo) arrays;
    let cycles = float_of_int (Ooo.run_to_completion ooo) in
    (Energy.estimate ooo ~cycles).Energy.memory
  in
  let small = energy 256 and big = energy 8192 in
  cb (Printf.sprintf "small L2 burns more memory energy (%.0f vs %.0f)" small big) true
    (small > big)

let test_smarts_reports_all_responses () =
  let w = Emc_workloads.Registry.find "vortex" in
  let arrays = w.arrays ~scale:0.05 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays w.source in
  let r = Smarts.run_full Config.typical prog ~setup:(fun f -> Helpers.set_func_arrays f arrays) in
  cb "energy present" true (r.Smarts.energy > 0.0);
  ci "code size is the program size" (Array.length prog.Emc_isa.Isa.insts) r.Smarts.static_instrs

let suite =
  [
    ("energy breakdown sums", `Quick, test_energy_breakdown_sums);
    ("energy tracks memory traffic", `Quick, test_energy_tracks_memory_traffic);
    ("smarts reports all responses", `Quick, test_smarts_reports_all_responses);
    ("cache basic", `Quick, test_cache_basic);
    ("cache lru", `Quick, test_cache_lru);
    ("cache direct-mapped conflict", `Quick, test_cache_direct_mapped_conflict);
    ("cache associativity", `Quick, test_cache_assoc_avoids_conflict);
    ("cache stats", `Quick, test_cache_stats);
    ("cache probe", `Quick, test_cache_probe_no_fill);
    ("bpred learns bias", `Quick, test_bpred_learns_bias);
    ("bpred learns alternation", `Quick, test_bpred_gshare_learns_alternation);
    ("bpred mispredict rate", `Quick, test_bpred_mispredict_rate_tracked);
    ("bpred size validation", `Quick, test_bpred_size_must_be_pow2);
    ("memsys latencies", `Quick, test_memsys_latencies);
    ("memsys prefetch", `Quick, test_memsys_prefetch_warms);
    ("func arithmetic", `Quick, test_func_arithmetic);
    ("func memory", `Quick, test_func_memory);
    ("func branches", `Quick, test_func_branches);
    ("func call/ret", `Quick, test_func_call_ret);
    ("func floats", `Quick, test_func_float_bits);
    ("ooo dependent chain", `Quick, test_ooo_dependent_chain_slower);
    ("ooo issue width", `Quick, test_ooo_issue_width_effect);
    ("ooo memory latency", `Quick, test_ooo_memory_latency_effect);
    ("ooo store forwarding", `Quick, test_ooo_store_forwarding);
    ("ooo ruu size", `Quick, test_ooo_ruu_size_effect);
    ("ooo store waits for data", `Quick, test_ooo_store_waits_for_data);
    ("ooo flush keeps last fetch line", `Quick, test_ooo_flush_keeps_last_fetch_line);
    ("ooo commits everything", `Quick, test_ooo_commits_everything);
    ("ooo flush keeps arch state", `Quick, test_ooo_flush_timing_keeps_arch_state);
    ("branch prediction effect", `Quick, test_branch_prediction_effect);
    ("smarts accuracy", `Quick, test_smarts_accuracy);
    ("smarts interval=1", `Quick, test_smarts_interval_one_is_full);
  ]
