(** Optimization pass tests: each Table-1 pass is checked both for the
    transformation it is supposed to perform (structure of the output IR)
    and for semantic preservation against the reference interpreter; a
    QCheck property then hammers the whole pipeline with random flag
    settings on a corpus of tricky programs. *)

open Emc_ir
open Emc_opt

let o0 = Flags.o0

(* a corpus of small programs covering the constructs the passes touch *)
let corpus =
  [
    ( "arith-cse",
      {|
int a[64];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 32; i = i + 1) {
    a[i] = i * 3 + i * 3;
    s = s + a[i] + a[i];
  }
  return s;
}
|} );
    ( "calls",
      {|
fn sq(x: int) -> int { return x * x; }
fn cube(x: int) -> int { return sq(x) * x; }
fn main() -> int {
  let s = 0;
  for (i = 0; i < 12; i = i + 1) {
    s = s + cube(i) - sq(i);
  }
  out(s);
  return s;
}
|} );
    ( "branches",
      {|
int v[128];
fn main() -> int {
  let odd = 0;
  let even = 0;
  for (i = 0; i < 128; i = i + 1) {
    v[i] = i * 7 % 13;
  }
  for (i = 0; i < 128; i = i + 1) {
    if (v[i] % 2 == 0) { even = even + v[i]; } else { odd = odd + 1; }
  }
  out(even);
  out(odd);
  return even - odd;
}
|} );
    ( "floats",
      {|
float w[64];
fn main() -> int {
  let acc = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    w[i] = float(i) * 0.25;
  }
  for (i = 0; i < 64; i = i + 1) {
    acc = acc + w[i] * w[i] - 1.0;
  }
  out(acc);
  return int(acc);
}
|} );
    ( "early-return-in-loop",
      {|
int d[32];
fn find(x: int) -> int {
  for (i = 0; i < 32; i = i + 1) {
    if (d[i] == x) { return i; }
  }
  return -1;
}
fn main() -> int {
  for (i = 0; i < 32; i = i + 1) { d[i] = i * 5 % 31; }
  out(find(20));
  out(find(999));
  return 0;
}
|} );
    ( "while-loops",
      {|
fn collatz(n: int) -> int {
  let steps = 0;
  while (n != 1 && steps < 200) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps = steps + 1;
  }
  return steps;
}
fn main() -> int {
  let t = 0;
  for (i = 1; i < 30; i = i + 1) {
    t = t + collatz(i);
  }
  return t;
}
|} );
  ]

(* ---------------- per-pass structural tests ---------------- *)

let compile src = Emc_lang.Minic.compile_exn src

let is_mul = function Ir.Ibin (Ir.Mul, _, _, _) -> true | _ -> false
let is_call = function Ir.Call (_, g, _) -> g <> "__out" | _ -> false
let is_prefetch = function Ir.Prefetch _ -> true | _ -> false

let test_gcse_eliminates_duplicates () =
  let src = "fn main() -> int { let a = 3; let b = a * 7 + a * 7; return b; }" in
  let ir = Gcse.run (compile src) in
  (* a*7 computed twice at the source level; at most one Mul must survive
     (constant folding may even remove both) *)
  Alcotest.(check bool) "at most one mul" true (Helpers.count_ir_instrs is_mul ir <= 1);
  Helpers.check_ir_preserve_semantics ~what:"gcse" { o0 with gcse = true } src

let test_gcse_constant_folding () =
  let src = "fn main() -> int { return 2 * 3 + 10 / 2; }" in
  let ir = Gcse.run (compile src) in
  Alcotest.(check int) "all arithmetic folded" 0
    (Helpers.count_ir_instrs (function Ir.Ibin _ -> true | _ -> false) ir)

let test_gcse_folds_constant_branches () =
  let src = "fn main() -> int { if (1 < 2) { return 5; } else { return 7; } }" in
  let ir = Gcse.run (compile src) in
  let f = List.assoc "main" ir.Ir.funcs in
  Alcotest.(check bool) "no conditional branches left" true
    (Array.for_all (fun (b : Ir.block) -> match b.term with Ir.CondBr _ -> false | _ -> true)
       f.Ir.blocks)

let test_gcse_redefinition_hazard () =
  (* a multiply-defined variable must not be CSEd across its redefinition:
     regression test for the local value-numbering validity check *)
  let src =
    {|
int m[4];
fn main() -> int {
  m[0] = 5;
  let x = m[0];
  let y = x + 1;
  x = 100;
  let z = x + 1;
  out(y);
  out(z);
  return y + z;
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"gcse redefinition" { o0 with gcse = true } src;
  Alcotest.(check (list string)) "values" [ "6"; "101" ] (Helpers.interp_outputs src)

let test_gcse_load_cse_blocked_by_store () =
  let src =
    {|
int m[4];
fn main() -> int {
  m[2] = 10;
  let a = m[2];
  m[2] = 20;
  let b = m[2];
  out(a);
  out(b);
  return a + b;
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"load cse vs store" { o0 with gcse = true } src

let test_dce_removes_dead_code () =
  let src = "fn main() -> int { let dead = 3 * 4 + 5; let dead2 = dead + 1; return 7; }" in
  let ir = Dce.run (compile src) in
  Alcotest.(check int) "dead chain removed" 0
    (Helpers.count_ir_instrs (function Ir.Ibin _ | Ir.Iconst _ -> true | Ir.Mov _ -> true | _ -> false) ir
     - 1 (* the returned constant 7 remains *))

let test_dce_keeps_side_effects () =
  let src = "int g[4]; fn main() -> int { g[0] = 1; out(5); return 0; }" in
  let ir = Dce.run (compile src) in
  Alcotest.(check int) "store kept" 1
    (Helpers.count_ir_instrs (function Ir.Store _ -> true | _ -> false) ir);
  Alcotest.(check int) "out kept" 1
    (Helpers.count_ir_instrs (function Ir.Call (_, "__out", _) -> true | _ -> false) ir)

let loop_body_instr_count (f : Ir.func) =
  let loops = Loops.find f in
  List.fold_left
    (fun acc (l : Loops.t) ->
      acc
      + Loops.IntSet.fold (fun bl a -> a + List.length f.Ir.blocks.(bl).instrs) l.Loops.body 0)
    0 loops

let test_licm_hoists () =
  let src =
    {|
int a[64];
fn main() -> int {
  let n = 13;
  let s = 0;
  for (i = 0; i < 50; i = i + 1) {
    s = s + n * n * n;
  }
  return s;
}
|}
  in
  let before = compile src in
  let f0 = List.assoc "main" before.Ir.funcs in
  let count0 = loop_body_instr_count f0 in
  let after = Licm.run (compile src) in
  let f1 = List.assoc "main" after.Ir.funcs in
  Alcotest.(check bool) "loop body shrank" true (loop_body_instr_count f1 < count0);
  Helpers.check_ir_preserve_semantics ~what:"licm" { o0 with loop_optimize = true } src

let test_licm_does_not_hoist_variable_division () =
  (* d may be zero when the loop does not execute: hoisting would trap *)
  let src =
    {|
fn main() -> int {
  let d = 0;
  let s = 0;
  for (i = 0; i < 0; i = i + 1) {
    s = s + 100 / d;
  }
  return s;
}
|}
  in
  (* must still run without trapping after LICM *)
  Helpers.check_ir_preserve_semantics ~what:"licm div" { o0 with loop_optimize = true } src

let test_strength_reduction_removes_muls () =
  let src =
    {|
fn main() -> int {
  let s = 0;
  for (i = 0; i < 40; i = i + 1) {
    s = s + i * 24;
  }
  return s;
}
|}
  in
  let after = Strength.run (compile src) in
  let f = List.assoc "main" after.Ir.funcs in
  let loops = Loops.find f in
  let muls_in_loop =
    List.fold_left
      (fun acc (l : Loops.t) ->
        acc
        + Loops.IntSet.fold
            (fun bl a -> a + List.length (List.filter is_mul f.Ir.blocks.(bl).instrs))
            l.Loops.body 0)
      0 loops
  in
  Alcotest.(check int) "no multiplies left in loop" 0 muls_in_loop;
  Helpers.check_ir_preserve_semantics ~what:"strength" { o0 with strength_reduce = true } src

let test_strength_reduction_addresses () =
  let src =
    {|
int a[128];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 100; i = i + 1) {
    a[i] = i;
    s = s + a[i];
  }
  out(s);
  return s;
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"strength addr" { o0 with strength_reduce = true } src

let unroll_flags u = { o0 with unroll_loops = true; max_unroll_times = u; max_unrolled_insns = 300 }

let test_unroll_grows_code () =
  let src =
    "fn main() -> int { let s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }"
  in
  let before = Ir.instr_count (compile src) in
  let after = Ir.instr_count (Unroll.run ~max_unroll_times:8 ~max_unrolled_insns:300 (compile src)) in
  Alcotest.(check bool) "code grew substantially" true (after > before * 4)

let test_unroll_trip_counts () =
  (* factor 8 against assorted trip counts incl. 0, 1, exact multiples,
     remainders *)
  List.iter
    (fun trip ->
      let src =
        Printf.sprintf
          "fn main() -> int { let s = 0; for (i = 0; i < %d; i = i + 1) { s = s + i * i; } return s; }"
          trip
      in
      Helpers.check_ir_preserve_semantics ~what:(Printf.sprintf "unroll trip %d" trip)
        (unroll_flags 8) src;
      Helpers.check_flags_preserve_semantics ~what:(Printf.sprintf "unroll trip %d mc" trip)
        (unroll_flags 8) src)
    [ 0; 1; 7; 8; 16; 17; 100 ];
  (* non-unit steps and <= bounds *)
  List.iter
    (fun (step, cmp, bound) ->
      let src =
        Printf.sprintf
          "fn main() -> int { let s = 0; for (i = 0; i %s %d; i = i + %d) { s = s + i; } return s; }"
          cmp bound step
      in
      Helpers.check_ir_preserve_semantics
        ~what:(Printf.sprintf "unroll step %d %s %d" step cmp bound)
        (unroll_flags 8) src;
      Helpers.check_flags_preserve_semantics
        ~what:(Printf.sprintf "unroll step %d %s %d mc" step cmp bound)
        (unroll_flags 8) src)
    [ (3, "<", 100); (3, "<=", 99); (7, "<", 50); (2, "<=", 0) ]

let test_unroll_respects_size_limit () =
  let src =
    "fn main() -> int { let s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }"
  in
  let before = Ir.instr_count (compile src) in
  let after = Ir.instr_count (Unroll.run ~max_unroll_times:8 ~max_unrolled_insns:2 (compile src)) in
  Alcotest.(check int) "loop too big: untouched" before after

let test_unroll_early_return () =
  let src =
    {|
int d[64];
fn main() -> int {
  for (i = 0; i < 64; i = i + 1) { d[i] = i * 3 % 17; }
  for (i = 0; i < 64; i = i + 1) {
    if (d[i] == 5) { return i; }
  }
  return -1;
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"unroll early return" (unroll_flags 6) src;
  Helpers.check_flags_preserve_semantics ~what:"unroll early return mc" (unroll_flags 6) src

let inline_flags =
  { o0 with inline_functions = true; max_inline_insns_auto = 150; inline_unit_growth = 75;
    inline_call_cost = 20 }

let test_inline_removes_calls () =
  let src =
    {|
fn sq(x: int) -> int { return x * x; }
fn main() -> int {
  let s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + sq(i); }
  return s;
}
|}
  in
  let after =
    Inline.run ~max_inline_insns_auto:150 ~inline_unit_growth:75 ~inline_call_cost:20 (compile src)
  in
  Alcotest.(check int) "no calls left" 0 (Helpers.count_ir_instrs is_call after);
  Helpers.check_ir_preserve_semantics ~what:"inline" inline_flags src

let test_inline_respects_size_threshold () =
  (* with a tiny max-inline-insns the callee must stay out of line *)
  let src =
    {|
fn big(x: int) -> int {
  let a = x + 1; let b = a * 2; let c = b + 3; let d = c * 4; let e = d + 5;
  let f = e * 6; let g = f + 7; let h = g * 8; let i2 = h + 9; let j = i2 * 10;
  return j;
}
fn main() -> int { return big(3) + big(4); }
|}
  in
  let after = Inline.run ~max_inline_insns_auto:5 ~inline_unit_growth:75 ~inline_call_cost:20 (compile src) in
  Alcotest.(check int) "calls kept" 2 (Helpers.count_ir_instrs is_call after)

let test_inline_skips_recursion () =
  let src =
    {|
fn fact(n: int) -> int { if (n <= 1) { return 1; } return n * fact(n - 1); }
fn main() -> int { return fact(6); }
|}
  in
  let after =
    Inline.run ~max_inline_insns_auto:150 ~inline_unit_growth:75 ~inline_call_cost:20 (compile src)
  in
  Alcotest.(check bool) "recursive call survives" true (Helpers.count_ir_instrs is_call after > 0);
  Helpers.check_ir_preserve_semantics ~what:"inline recursion" inline_flags src

let test_inline_void_and_value_callees () =
  let src =
    {|
int g[8];
fn bump(i: int) { g[i] = g[i] + 1; return; }
fn get(i: int) -> int { return g[i]; }
fn main() -> int {
  bump(2); bump(2); bump(3);
  out(get(2));
  out(get(3));
  return get(2) + get(3);
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"inline void" inline_flags src;
  Helpers.check_flags_preserve_semantics ~what:"inline void mc" inline_flags src

let test_prefetch_inserted_for_large_arrays () =
  let src =
    {|
int big[4096];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 4000; i = i + 1) { s = s + big[i]; }
  return s;
}
|}
  in
  let after = Prefetch.run (compile src) in
  Alcotest.(check bool) "prefetch present" true (Helpers.count_ir_instrs is_prefetch after > 0);
  Helpers.check_ir_preserve_semantics ~what:"prefetch"
    { o0 with prefetch_loop_arrays = true } src

let test_prefetch_skips_small_arrays () =
  let src =
    {|
int small[16];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 16; i = i + 1) { s = s + small[i]; }
  return s;
}
|}
  in
  let after = Prefetch.run (compile src) in
  Alcotest.(check int) "no prefetch" 0 (Helpers.count_ir_instrs is_prefetch after)

let test_sched_preserves_semantics () =
  List.iter
    (fun (name, src) ->
      Helpers.check_ir_preserve_semantics ~what:("sched " ^ name)
        { o0 with schedule_insns2 = true } src)
    corpus

let test_sched_respects_memory_order () =
  let src =
    {|
int m[8];
fn main() -> int {
  m[1] = 10;
  let a = m[1];
  m[1] = 20;
  let b = m[1];
  m[1] = a + b;
  out(m[1]);
  return m[1];
}
|}
  in
  Helpers.check_ir_preserve_semantics ~what:"sched memory" { o0 with schedule_insns2 = true } src

let test_reorder_keeps_entry_first () =
  List.iter
    (fun (name, src) ->
      let ir = Reorder.run (compile src) in
      List.iter
        (fun (_, (f : Ir.func)) ->
          Alcotest.(check int) (name ^ ": entry first") Ir.entry_label (List.hd f.Ir.layout);
          let sorted = List.sort compare f.Ir.layout in
          Alcotest.(check (list int)) (name ^ ": layout is permutation")
            (List.init (Array.length f.Ir.blocks) Fun.id)
            sorted)
        ir.Ir.funcs;
      Helpers.check_ir_preserve_semantics ~what:("reorder " ^ name)
        { o0 with reorder_blocks = true } src)
    corpus

(* ---------------- whole-pipeline differential testing ---------------- *)

let test_corpus_all_levels () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (lname, flags) ->
          Helpers.check_flags_preserve_semantics ~what:(name ^ " @ " ^ lname) flags src)
        [ ("O0", Flags.o0); ("O1", Flags.o1); ("O2", Flags.o2); ("O3", Flags.o3) ])
    corpus

let prop_random_flags =
  QCheck.Test.make ~name:"pipeline preserves semantics under random flags" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 0 (List.length corpus - 1)))
    (fun (seed, pick) ->
      let rng = Emc_util.Rng.create seed in
      let flags = Helpers.random_flags rng in
      let issue_width = if Emc_util.Rng.bool rng then 2 else 4 in
      let name, src = List.nth corpus pick in
      let ref_ret, ref_outs = Helpers.interp src in
      let mret, mouts, _ = Helpers.machine ~flags ~issue_width src in
      ignore name;
      mouts = ref_outs
      && match ref_ret with Some (Emc_ir.Interp.VI v) -> v = mret | _ -> true)

(* passes are idempotent: running a pass a second time must not change the
   program any further (instruction counts reach a fixpoint) *)
let test_pass_idempotence () =
  List.iter
    (fun (name, src) ->
      let check pname pass =
        let once = pass (compile src) in
        let c1 = Ir.instr_count once in
        let twice = pass once in
        Alcotest.(check int) (name ^ ": " ^ pname ^ " idempotent") c1 (Ir.instr_count twice)
      in
      check "gcse" Gcse.run;
      check "dce" Dce.run;
      check "licm" Licm.run;
      check "strength" Strength.run)
    corpus

(* optimization levels are consistent: O2 never produces more dynamic
   instructions than O0 on the corpus (static size may grow, dynamic work
   must not) *)
let test_o2_reduces_dynamic_work () =
  List.iter
    (fun (name, src) ->
      let dyn flags =
        let ir = Emc_lang.Minic.compile_exn src in
        let opt = Pipeline.optimize ~issue_width:4 flags ir in
        let st = Emc_ir.Interp.create opt in
        (Emc_ir.Interp.run st ~func:"main" ~args:[]).Emc_ir.Interp.dyn_instrs
      in
      let d0 = dyn Flags.o0 and d2 = dyn Flags.o2 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: O2 dyn (%d) <= O0 dyn (%d)" name d2 d0)
        true (d2 <= d0))
    corpus

(* empty and degenerate programs survive every pass *)
let test_degenerate_programs () =
  List.iter
    (fun src ->
      List.iter
        (fun flags -> Helpers.check_flags_preserve_semantics ~what:src flags src)
        [ Flags.o0; Flags.o2; Flags.o3;
          { Flags.o3 with unroll_loops = true; prefetch_loop_arrays = true } ])
    [
      "fn main() -> int { return 0; }";
      "fn main() -> int { for (i = 0; i < 0; i = i + 1) { } return 1; }";
      "fn f() { return; } fn main() -> int { f(); return 2; }";
      "fn main() -> int { while (0 != 0) { } return 3; }";
      "int a[1]; fn main() -> int { a[0] = a[0]; return a[0]; }";
    ]

(* deeply nested loops through the whole pipeline *)
let test_nested_loops_all_flags () =
  let src =
    {|
int acc[4];
fn main() -> int {
  let s = 0;
  for (i = 0; i < 6; i = i + 1) {
    for (j = 0; j < 6; j = j + 1) {
      for (k = 0; k < 6; k = k + 1) {
        s = s + i * 36 + j * 6 + k;
      }
    }
  }
  out(s);
  return s;
}
|}
  in
  List.iter
    (fun flags -> Helpers.check_flags_preserve_semantics ~what:"nested loops" flags src)
    [ Flags.o2; Flags.o3; { Flags.o3 with unroll_loops = true; max_unroll_times = 4 } ]

let suite =
  [
    ("pass idempotence", `Quick, test_pass_idempotence);
    ("O2 reduces dynamic work", `Quick, test_o2_reduces_dynamic_work);
    ("degenerate programs", `Quick, test_degenerate_programs);
    ("nested loops all flags", `Quick, test_nested_loops_all_flags);
    ("gcse eliminates duplicates", `Quick, test_gcse_eliminates_duplicates);
    ("gcse constant folding", `Quick, test_gcse_constant_folding);
    ("gcse folds constant branches", `Quick, test_gcse_folds_constant_branches);
    ("gcse redefinition hazard", `Quick, test_gcse_redefinition_hazard);
    ("gcse load cse vs store", `Quick, test_gcse_load_cse_blocked_by_store);
    ("dce removes dead code", `Quick, test_dce_removes_dead_code);
    ("dce keeps side effects", `Quick, test_dce_keeps_side_effects);
    ("licm hoists invariants", `Quick, test_licm_hoists);
    ("licm respects traps", `Quick, test_licm_does_not_hoist_variable_division);
    ("strength reduction removes muls", `Quick, test_strength_reduction_removes_muls);
    ("strength reduction addresses", `Quick, test_strength_reduction_addresses);
    ("unroll grows code", `Quick, test_unroll_grows_code);
    ("unroll trip counts", `Quick, test_unroll_trip_counts);
    ("unroll respects size limit", `Quick, test_unroll_respects_size_limit);
    ("unroll early return", `Quick, test_unroll_early_return);
    ("inline removes calls", `Quick, test_inline_removes_calls);
    ("inline size threshold", `Quick, test_inline_respects_size_threshold);
    ("inline skips recursion", `Quick, test_inline_skips_recursion);
    ("inline void/value callees", `Quick, test_inline_void_and_value_callees);
    ("prefetch large arrays", `Quick, test_prefetch_inserted_for_large_arrays);
    ("prefetch skips small arrays", `Quick, test_prefetch_skips_small_arrays);
    ("sched preserves semantics", `Quick, test_sched_preserves_semantics);
    ("sched memory order", `Quick, test_sched_respects_memory_order);
    ("reorder layout valid", `Quick, test_reorder_keeps_entry_first);
    ("corpus at all -O levels", `Quick, test_corpus_all_levels);
    QCheck_alcotest.to_alcotest prop_random_flags;
  ]
