open Emc_util

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg ~eps a b = Alcotest.(check (float eps)) msg a b

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let child = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "parent and child differ" true (xs <> ys)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (f >= 0.0 && f < 2.5);
    let g = Rng.range r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (g >= -5 && g <= 5)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_uniformity () =
  let r = Rng.create 11 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 10%" true (frac > 0.085 && frac < 0.115))
    counts

let test_rng_no_modulo_bias () =
  (* bounds close to max_int: a bare [mod] would make residues below
     max_int mod bound almost twice as likely. With rejection sampling the
     draw is exactly uniform, so ~half the mass sits in each half of the
     range; also exercises the rejection loop itself (~50% rejection). *)
  let r = Rng.create 29 in
  let bound = (max_int / 2) + 1 in
  let n = 2000 in
  let low = ref 0 in
  for _ = 1 to n do
    let v = Rng.int r bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
    if v < bound / 2 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "lower half gets ~50%% (%.1f%%)" (100.0 *. frac))
    true
    (frac > 0.44 && frac < 0.56)

let test_gaussian_moments () =
  let r = Rng.create 13 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian r) in
  check_floatish "mean ~ 0" ~eps:0.03 0.0 (Stats.mean xs);
  check_floatish "stddev ~ 1" ~eps:0.03 1.0 (Stats.stddev xs)

let test_shuffle_permutation () =
  let r = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let r = Rng.create 19 in
  let s = Rng.sample_without_replacement r 10 30 in
  Alcotest.(check int) "10 samples" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 10 (List.length uniq);
  Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s

let test_choice () =
  let r = Rng.create 23 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "choice from array" true (List.mem (Rng.choice r [| 1; 2; 3 |]) [ 1; 2; 3 ])
  done

(* ---------------- Stats ---------------- *)

let test_mean_basic () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||])

let test_variance () =
  check_float "population variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "sample variance" (5.0 /. 3.0) (Stats.sample_variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "single sample" 0.0 (Stats.variance [| 42.0 |])

let test_median_percentile () =
  check_float "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "p0 is min" 1.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 0.0);
  check_float "p100 is max" 3.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 100.0);
  check_float "p25 interpolates" 1.75 (Stats.percentile [| 1.0; 2.0; 3.0; 4.0 |] 25.0)

let test_kahan_sum () =
  (* naive summation of 1e16 + many 1.0 loses the ones *)
  let xs = Array.make 1001 1.0 in
  xs.(0) <- 1e16;
  check_float "kahan keeps low-order bits" (1e16 +. 1000.0) (Stats.sum xs)

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_correlation () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "perfect positive" 1.0 (Stats.correlation x (Array.map (fun v -> (2.0 *. v) +. 1.0) x));
  check_float "perfect negative" (-1.0) (Stats.correlation x (Array.map (fun v -> -.v) x));
  check_float "constant gives 0" 0.0 (Stats.correlation x [| 1.0; 1.0; 1.0; 1.0 |])

let test_quantiles () =
  let q = Stats.quantiles [| 1.0; 2.0; 3.0; 4.0; 5.0 |] 4 in
  Alcotest.(check int) "k-1 cut points" 3 (Array.length q);
  check_float "median is middle cut" 3.0 q.(1)

(* ---------------- Transform ---------------- *)

let test_to_unit () =
  check_float "lo -> -1" (-1.0) (Transform.to_unit ~lo:8.0 ~hi:128.0 8.0);
  check_float "hi -> +1" 1.0 (Transform.to_unit ~lo:8.0 ~hi:128.0 128.0);
  check_float "mid -> 0" 0.0 (Transform.to_unit ~lo:0.0 ~hi:10.0 5.0)

let test_round_to_levels () =
  let levels = [| 1.0; 2.0; 4.0; 8.0 |] in
  check_float "snaps down" 2.0 (Transform.round_to_levels ~levels 2.4);
  check_float "snaps up" 4.0 (Transform.round_to_levels ~levels 3.5);
  check_float "clamps" 8.0 (Transform.round_to_levels ~levels 100.0)

let test_is_pow2 () =
  List.iter (fun v -> Alcotest.(check bool) "pow2" true (Transform.is_pow2 v)) [ 1; 2; 64; 4096 ];
  List.iter (fun v -> Alcotest.(check bool) "not pow2" false (Transform.is_pow2 v)) [ 0; -2; 3; 48 ]

(* ---------------- properties ---------------- *)

let prop_transform_roundtrip =
  QCheck.Test.make ~name:"of_unit . to_unit = id" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range 0.1 50.) (float_range 0. 1.))
    (fun (lo, width, t) ->
      let hi = lo +. width in
      let x = lo +. (t *. width) in
      let u = Emc_util.Transform.to_unit ~lo ~hi x in
      Float.abs (Emc_util.Transform.of_unit ~lo ~hi u -. x) < 1e-6 *. (1.0 +. Float.abs x))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 30) (float_range (-1000.) 1000.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Emc_util.Stats.percentile xs lo <= Emc_util.Stats.percentile xs hi +. 1e-9)

(* min/max on an empty array used to fold from ±infinity and silently
   report that as data; now it must fail loudly, like percentile. *)
let test_min_max_empty () =
  Alcotest.check_raises "min []" (Invalid_argument "Stats.min: empty array") (fun () ->
      ignore (Emc_util.Stats.min [||]));
  Alcotest.check_raises "max []" (Invalid_argument "Stats.max: empty array") (fun () ->
      ignore (Emc_util.Stats.max [||]));
  Alcotest.(check (float 0.0)) "singleton min" 3.5 (Emc_util.Stats.min [| 3.5 |]);
  Alcotest.(check (float 0.0)) "singleton max" 3.5 (Emc_util.Stats.max [| 3.5 |])

(* percentile sorts NaNs first (Float.compare), so they occupy the lowest
   ranks: low percentiles of NaN-contaminated data are NaN, high
   percentiles ignore the NaNs. Pin that documented behavior down. *)
let test_percentile_nan_sorts_first () =
  let xs = [| 5.0; Float.nan; 1.0; 3.0 |] in
  Alcotest.(check bool) "p0 is NaN" true (Float.is_nan (Emc_util.Stats.percentile xs 0.0));
  Alcotest.(check (float 1e-9)) "p100 ignores NaN" 5.0 (Emc_util.Stats.percentile xs 100.0)

let prop_mean_bounds =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Array.of_list xs in
      let m = Emc_util.Stats.mean a in
      Emc_util.Stats.min a -. 1e-6 <= m && m <= Emc_util.Stats.max a +. 1e-6)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng different seeds", `Quick, test_rng_different_seeds);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng invalid bound", `Quick, test_rng_int_invalid);
    ("rng uniformity", `Quick, test_rng_uniformity);
    ("rng no modulo bias", `Quick, test_rng_no_modulo_bias);
    ("gaussian moments", `Quick, test_gaussian_moments);
    ("shuffle is permutation", `Quick, test_shuffle_permutation);
    ("sample without replacement", `Quick, test_sample_without_replacement);
    ("choice", `Quick, test_choice);
    ("stats mean", `Quick, test_mean_basic);
    ("stats variance", `Quick, test_variance);
    ("stats median/percentile", `Quick, test_median_percentile);
    ("stats kahan sum", `Quick, test_kahan_sum);
    ("stats geomean", `Quick, test_geomean);
    ("stats correlation", `Quick, test_correlation);
    ("stats quantiles", `Quick, test_quantiles);
    ("stats min/max empty raise", `Quick, test_min_max_empty);
    ("stats percentile NaNs sort first", `Quick, test_percentile_nan_sorts_first);
    ("transform to_unit", `Quick, test_to_unit);
    ("transform round_to_levels", `Quick, test_round_to_levels);
    ("transform is_pow2", `Quick, test_is_pow2);
    QCheck_alcotest.to_alcotest prop_transform_roundtrip;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
  ]
