open Emc_linalg

let checkf = Alcotest.(check (float 1e-8))
let checkf_loose = Alcotest.(check (float 1e-5))

let mat22 a b c d = Mat.of_rows [| [| a; b |]; [| c; d |] |]

(* random well-conditioned matrix: M + n*I *)
let random_spd rng n =
  let b = Mat.init n n (fun _ _ -> Emc_util.Rng.float rng 2.0 -. 1.0) in
  Mat.add (Mat.gram b) (Mat.scale (float_of_int n) (Mat.identity n))

let random_mat rng r c = Mat.init r c (fun _ _ -> Emc_util.Rng.float rng 2.0 -. 1.0)

let test_identity_mul () =
  let rng = Emc_util.Rng.create 1 in
  let a = random_mat rng 4 4 in
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.mul (Mat.identity 4) a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.mul a (Mat.identity 4)) a)

let test_transpose () =
  let a = Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  checkf "element" 2.0 (Mat.get t 1 0);
  Alcotest.(check bool) "involution" true (Mat.equal (Mat.transpose t) a)

let test_mul_known () =
  let a = mat22 1.0 2.0 3.0 4.0 in
  let b = mat22 5.0 6.0 7.0 8.0 in
  let c = Mat.mul a b in
  checkf "c00" 19.0 (Mat.get c 0 0);
  checkf "c01" 22.0 (Mat.get c 0 1);
  checkf "c10" 43.0 (Mat.get c 1 0);
  checkf "c11" 50.0 (Mat.get c 1 1)

let test_det_known () =
  checkf "2x2 det" (-2.0) (Mat.lu_det (mat22 1.0 2.0 3.0 4.0));
  checkf "identity det" 1.0 (Mat.lu_det (Mat.identity 5));
  checkf "singular det" 0.0 (Mat.lu_det (mat22 1.0 2.0 2.0 4.0))

let test_det_product () =
  let rng = Emc_util.Rng.create 2 in
  for _ = 1 to 10 do
    let a = random_mat rng 4 4 and b = random_mat rng 4 4 in
    let lhs = Mat.lu_det (Mat.mul a b) in
    let rhs = Mat.lu_det a *. Mat.lu_det b in
    Alcotest.(check bool) "det(AB) = det A det B" true (Float.abs (lhs -. rhs) < 1e-8 *. (1.0 +. Float.abs rhs))
  done

let test_log_det () =
  let rng = Emc_util.Rng.create 3 in
  let a = random_spd rng 6 in
  checkf_loose "log_det matches log |det|" (log (Float.abs (Mat.lu_det a))) (Mat.log_det a);
  Alcotest.(check bool) "singular -> -inf" true
    (Mat.log_det (mat22 1.0 2.0 2.0 4.0) = neg_infinity)

let test_solve_roundtrip () =
  let rng = Emc_util.Rng.create 4 in
  for n = 1 to 8 do
    let a = Mat.add (random_mat rng n n) (Mat.scale (float_of_int n) (Mat.identity n)) in
    let x = Array.init n (fun i -> float_of_int (i + 1)) in
    let b = Mat.mul_vec a x in
    let x' = Mat.solve a b in
    Array.iteri (fun i v -> checkf_loose (Printf.sprintf "x[%d]" i) v x'.(i)) x
  done

let test_solve_singular () =
  Alcotest.check_raises "singular raises" (Failure "Mat.solve: singular matrix") (fun () ->
      ignore (Mat.solve (mat22 1.0 2.0 2.0 4.0) [| 1.0; 1.0 |]))

let test_inverse () =
  let rng = Emc_util.Rng.create 5 in
  let a = random_spd rng 5 in
  let inv = Mat.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true (Mat.equal ~eps:1e-8 (Mat.mul a inv) (Mat.identity 5))

let test_cholesky () =
  let rng = Emc_util.Rng.create 6 in
  let a = random_spd rng 6 in
  let l = Mat.cholesky a in
  Alcotest.(check bool) "L Lt = A" true (Mat.equal ~eps:1e-8 (Mat.mul l (Mat.transpose l)) a);
  (* strictly upper part is zero *)
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      checkf "upper zero" 0.0 (Mat.get l i j)
    done
  done

let test_cholesky_not_pd () =
  Alcotest.check_raises "not PD raises" (Failure "Mat.cholesky: matrix not positive definite")
    (fun () -> ignore (Mat.cholesky (mat22 1.0 2.0 2.0 1.0)))

let test_solve_spd () =
  let rng = Emc_util.Rng.create 7 in
  let a = random_spd rng 7 in
  let x = Array.init 7 (fun i -> float_of_int i -. 3.0) in
  let b = Mat.mul_vec a x in
  let x' = Mat.solve_spd a b in
  Array.iteri (fun i v -> checkf_loose "spd solve" v x'.(i)) x

let test_lstsq_square () =
  let a = mat22 2.0 0.0 0.0 4.0 in
  let x = Mat.lstsq a [| 6.0; 8.0 |] in
  checkf_loose "x0" 3.0 x.(0);
  checkf_loose "x1" 2.0 x.(1)

let test_lstsq_overdetermined () =
  (* y = 3 + 2x sampled with no noise; recover exactly *)
  let xs = Array.init 20 (fun i -> float_of_int i /. 5.0) in
  let a = Mat.of_rows (Array.map (fun x -> [| 1.0; x |]) xs) in
  let y = Array.map (fun x -> 3.0 +. (2.0 *. x)) xs in
  let beta = Mat.lstsq a y in
  checkf_loose "intercept" 3.0 beta.(0);
  checkf_loose "slope" 2.0 beta.(1)

let test_lstsq_rank_deficient () =
  (* duplicated column: must not crash, must still fit *)
  let xs = Array.init 10 (fun i -> float_of_int i) in
  let a = Mat.of_rows (Array.map (fun x -> [| 1.0; x; x |]) xs) in
  let y = Array.map (fun x -> 1.0 +. x) xs in
  let beta = Mat.lstsq a y in
  (* predictions must be right even if coefficient split is arbitrary *)
  Array.iteri
    (fun i x ->
      checkf_loose "prediction" y.(i) (beta.(0) +. (beta.(1) *. x) +. (beta.(2) *. x)))
    xs

let test_gram () =
  let rng = Emc_util.Rng.create 8 in
  let a = random_mat rng 5 3 in
  let g = Mat.gram a in
  let g' = Mat.mul (Mat.transpose a) a in
  Alcotest.(check bool) "gram = At A" true (Mat.equal ~eps:1e-10 g g');
  for i = 0 to 2 do
    for j = 0 to 2 do
      checkf "symmetric" (Mat.get g i j) (Mat.get g j i)
    done
  done

let test_of_rows_validation () =
  Alcotest.check_raises "ragged rejected" (Invalid_argument "Mat.of_rows: ragged rows") (fun () ->
      ignore (Mat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let prop_solve_random =
  QCheck.Test.make ~name:"solve recovers x on diagonally-dominant systems" ~count:100
    QCheck.(pair (int_range 1 7) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Emc_util.Rng.create seed in
      let a = Mat.add (random_mat rng n n) (Mat.scale (2.0 *. float_of_int n) (Mat.identity n)) in
      let x = Array.init n (fun _ -> Emc_util.Rng.float rng 10.0 -. 5.0) in
      let b = Mat.mul_vec a x in
      let x' = Mat.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x')

let prop_transpose_mul =
  QCheck.Test.make ~name:"(AB)t = Bt At" ~count:100 QCheck.(int_range 0 10_000) (fun seed ->
      let rng = Emc_util.Rng.create seed in
      let a = random_mat rng 3 4 and b = random_mat rng 4 2 in
      Mat.equal ~eps:1e-10
        (Mat.transpose (Mat.mul a b))
        (Mat.mul (Mat.transpose b) (Mat.transpose a)))

let suite =
  [
    ("identity mul", `Quick, test_identity_mul);
    ("transpose", `Quick, test_transpose);
    ("mul known", `Quick, test_mul_known);
    ("det known", `Quick, test_det_known);
    ("det product rule", `Quick, test_det_product);
    ("log det", `Quick, test_log_det);
    ("solve roundtrip", `Quick, test_solve_roundtrip);
    ("solve singular", `Quick, test_solve_singular);
    ("inverse", `Quick, test_inverse);
    ("cholesky", `Quick, test_cholesky);
    ("cholesky not PD", `Quick, test_cholesky_not_pd);
    ("solve spd", `Quick, test_solve_spd);
    ("lstsq square", `Quick, test_lstsq_square);
    ("lstsq overdetermined", `Quick, test_lstsq_overdetermined);
    ("lstsq rank deficient", `Quick, test_lstsq_rank_deficient);
    ("gram", `Quick, test_gram);
    ("of_rows validation", `Quick, test_of_rows_validation);
    QCheck_alcotest.to_alcotest prop_solve_random;
    QCheck_alcotest.to_alcotest prop_transpose_mul;
  ]
