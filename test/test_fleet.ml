(** The distributed measurement subsystem, end to end: address parsing,
    bit-exact hex-float transport, the content-addressed result store and
    the worker daemon as real forked processes on temp Unix sockets, the
    coordinator's bit-identity contract against a sequential in-process
    run (values and [measure.*] counters), crash retry against dead and
    connection-dropping workers, run-journal resume with zero
    re-simulation, and the [emc cache] maintenance pass. *)

open Emc_core
module Fleet = Emc_fleet.Fleet
module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics
module Http = Emc_serve.Http

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)
let cs = Alcotest.(check string)

(* the coordinator client path can hit closed sockets *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let counter name = Option.value ~default:0 (Metrics.counter_value name)

(* ---------------- addresses ---------------- *)

let test_parse_addr () =
  cb "host:port" true (Fleet.parse_addr "box1:9001" = Ok (Fleet.Tcp ("box1", 9001)));
  cb ":port is localhost" true
    (Fleet.parse_addr ":9001" = Ok (Fleet.Tcp ("127.0.0.1", 9001)));
  cb "a path is a unix socket" true
    (Fleet.parse_addr "/tmp/w.sock" = Ok (Fleet.Unix_sock "/tmp/w.sock"));
  cb "surrounding space trimmed" true
    (Fleet.parse_addr " box1:80 " = Ok (Fleet.Tcp ("box1", 80)));
  List.iter
    (fun bad ->
      cb (Printf.sprintf "%S rejected" bad) true
        (match Fleet.parse_addr bad with Error _ -> true | Ok _ -> false))
    [ ""; "box1"; "box1:"; "box1:nope"; "box1:0"; "box1:70000" ];
  match Fleet.parse_fleet "a:1, b:2 ,/tmp/w.sock" with
  | Ok
      [ Fleet.Worker (Fleet.Tcp ("a", 1)); Fleet.Worker (Fleet.Tcp ("b", 2));
        Fleet.Worker (Fleet.Unix_sock "/tmp/w.sock") ] ->
      ()
  | Ok _ -> Alcotest.fail "parse_fleet: wrong sources"
  | Error e -> Alcotest.failf "parse_fleet: error %s" e

let test_parse_sources () =
  (* the @ prefix marks an elastic membership source (a store address) *)
  cb "@addr is a members source" true
    (Fleet.parse_source "@box1:9001" = Ok (Fleet.Members (Fleet.Tcp ("box1", 9001))));
  cb "@path is a members source" true
    (Fleet.parse_source " @/run/store.sock " = Ok (Fleet.Members (Fleet.Unix_sock "/run/store.sock")));
  cb "plain addr is a fixed worker" true
    (Fleet.parse_source "box1:9001" = Ok (Fleet.Worker (Fleet.Tcp ("box1", 9001))));
  cb "bare @ rejected" true
    (match Fleet.parse_source "@" with Error _ -> true | Ok _ -> false);
  match Fleet.parse_fleet "a:1,@b:2" with
  | Ok [ Fleet.Worker (Fleet.Tcp ("a", 1)); Fleet.Members (Fleet.Tcp ("b", 2)) ] -> ()
  | Ok _ -> Alcotest.fail "mixed spec: wrong sources"
  | Error e -> Alcotest.failf "mixed spec: error %s" e

let test_parse_fleet_errors () =
  cb "empty spec rejected" true
    (match Fleet.parse_fleet " , ," with Error _ -> true | Ok _ -> false);
  cb "one bad entry poisons the list" true
    (match Fleet.parse_fleet "a:1,bogus" with Error _ -> true | Ok _ -> false)

(* ---------------- pure scheduler pieces ---------------- *)

let test_chunk_plan () =
  let cover what plan n =
    (* every index covered exactly once, no empty chunks *)
    let seen = Array.make n 0 in
    List.iter
      (fun (start, len) ->
        cb (what ^ ": chunk non-empty") true (len > 0);
        for i = start to start + len - 1 do
          seen.(i) <- seen.(i) + 1
        done)
      plan;
    Array.iteri (fun i c -> ci (Printf.sprintf "%s: index %d covered once" what i) 1 c) seen
  in
  cover "n=1" (Fleet.chunk_plan ~chunk:0 ~nworkers:4 ~n:1) 1;
  cover "n<nworkers" (Fleet.chunk_plan ~chunk:0 ~nworkers:16 ~n:5) 5;
  cover "chunk>n" (Fleet.chunk_plan ~chunk:100 ~nworkers:2 ~n:7) 7;
  cover "prime n, explicit chunk" (Fleet.chunk_plan ~chunk:3 ~nworkers:2 ~n:13) 13;
  cover "auto, large" (Fleet.chunk_plan ~chunk:0 ~nworkers:3 ~n:997) 997;
  cover "zero workers still plans" (Fleet.chunk_plan ~chunk:0 ~nworkers:0 ~n:9) 9;
  cb "n=0 is an empty plan" true (Fleet.chunk_plan ~chunk:0 ~nworkers:4 ~n:0 = []);
  ci "explicit chunk honored" 5
    (List.length (Fleet.chunk_plan ~chunk:2 ~nworkers:1 ~n:10));
  cb "negative chunk fails loudly" true
    (match Fleet.chunk_plan ~chunk:(-1) ~nworkers:1 ~n:4 with
    | exception Fleet.Fleet_error _ -> true
    | _ -> false)

let test_next_wake () =
  let cf = Alcotest.(check (float 1e-9)) in
  (* nothing to wait for: a long fallback, not a busy tick *)
  cf "no events sleeps long" 60.0
    (Fleet.next_wake ~now:1000.0 ~read_timeout:600.0 ~steal_after:30.0 []);
  (* one running head: wake exactly at its steal timer *)
  cf "sleeps to the steal timer" 25.0
    (Fleet.next_wake ~now:1000.0 ~read_timeout:600.0 ~steal_after:30.0 [ 995.0 ]);
  (* steal timer already past: next event is the read deadline, not a
     near-zero sleep clamped against the stale steal timer *)
  cf "past steal timer falls through to the deadline" 10.0
    (Fleet.next_wake ~now:1000.0 ~read_timeout:50.0 ~steal_after:30.0 [ 960.0 ]);
  (* a nearer membership poll wins *)
  cf "membership poll caps the sleep" 0.5
    (Fleet.next_wake ~now:1000.0 ~read_timeout:600.0 ~steal_after:30.0 ~poll_at:1000.5
       [ 995.0 ]);
  (* everything due: short wake so the caller handles it, never 0 *)
  cb "due events wake shortly but not busily" true
    (let t =
       Fleet.next_wake ~now:2000.0 ~read_timeout:600.0 ~steal_after:30.0 ~poll_at:1999.0
         [ 100.0 ]
     in
     t > 0.0 && t <= 0.05);
  (* clamped below 60 even for far-future deadlines *)
  cf "clamped to 60s" 60.0
    (Fleet.next_wake ~now:0.0 ~read_timeout:86400.0 ~steal_after:86400.0 [ 0.0 ])

(* ---------------- hex-float transport ---------------- *)

let test_hex_float_roundtrip () =
  (* the wire format for every measured value and design-point coordinate:
     a %h literal through JSON must come back bit-identical, including
     values no decimal round trip preserves *)
  List.iter
    (fun f ->
      let j =
        match Json.parse (Json.to_string (Json.Obj [ ("v", Json.hex f) ])) with
        | Ok j -> j
        | Error e -> Alcotest.failf "reparse failed: %s" e
      in
      match Option.bind (Json.member "v" j) Json.hex_of with
      | Some g ->
          Alcotest.(check int64)
            (Printf.sprintf "%h survives the wire" f)
            (Int64.bits_of_float f) (Int64.bits_of_float g)
      | None -> Alcotest.failf "%h did not decode" f)
    [ 0.0; -0.0; 1.0; 0.1; Float.pi; 1.0 /. 3.0; 1e300; -1e-300; 4e-324;
      Float.max_float; Float.min_float; 9007199254740993.0 ]

(* ---------------- daemon scaffolding ---------------- *)

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "emc_fleet_%s_%d_%d.sock" tag (Unix.getpid ()) (Random.int 1_000_000))

let fork_daemon run =
  match Unix.fork () with
  | 0 ->
      (* the child inherits this test process's metrics registry; a real
         daemon starts from zero, so its /metrics must too *)
      Metrics.reset ();
      (try run () with _ -> Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let wait_sock path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "daemon did not come up on %s" path
        else begin
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
  in
  go ()

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let with_daemons specs f =
  let daemons = List.map (fun run -> let path = sock_path "d" in (path, fork_daemon (run path))) specs in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, pid) -> stop_daemon pid) daemons)
    (fun () ->
      List.iter (fun (path, _) -> wait_sock path) daemons;
      f (List.map fst daemons))

let with_worker ?store f =
  with_daemons
    [ (fun path () -> Fleet.run_worker ?store ~listen:(Fleet.Unix_sock path) ()) ]
    (function [ path ] -> f path | _ -> assert false)

(* ---------------- store daemon ---------------- *)

let rpc path ~meth ~target ?(body = "") () =
  match Http.connect (Unix.ADDR_UNIX path) with
  | Error e -> Alcotest.failf "connect %s: %s" path (Http.error_to_string e)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match Http.write_request fd ~meth ~path:target ~body () with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write %s: %s" target (Http.error_to_string e));
          match Http.read_response fd with
          | Ok r -> (r.Http.status, r.Http.resp_body)
          | Error e -> Alcotest.failf "read %s: %s" target (Http.error_to_string e))

let json_of body =
  match Json.parse (String.trim body) with
  | Ok j -> j
  | Error e -> Alcotest.failf "not JSON (%s): %S" e body

let test_store_daemon () =
  let file = Filename.temp_file "emc_store" ".jsonl" in
  Sys.remove file;
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
  @@ fun () ->
  let with_store f =
    with_daemons
      [ (fun path () -> Fleet.run_store ~file ~listen:(Fleet.Unix_sock path) ()) ]
      (function [ path ] -> f path | _ -> assert false)
  in
  with_store (fun path ->
      (* put two entries; re-putting one is deduplicated *)
      let put body = rpc path ~meth:"POST" ~target:"/put" ~body () in
      let status, body =
        put {|{"entries":[{"k":"ka","v":"0x1.8p+0"},{"k":"kb","v":"0x1.2p+1"}]}|}
      in
      ci "put status" 200 status;
      cb "two added" true (Json.member "added" (json_of body) = Some (Json.Int 2));
      let _, body = put {|{"entries":[{"k":"ka","v":"0x1.8p+0"}]}|} in
      cb "duplicate put adds nothing" true
        (Json.member "added" (json_of body) = Some (Json.Int 0));
      (* lookup returns only the hits *)
      let status, body =
        rpc path ~meth:"POST" ~target:"/lookup" ~body:{|{"keys":["ka","missing","kb"]}|} ()
      in
      ci "lookup status" 200 status;
      (match Json.member "results" (json_of body) with
      | Some (Json.Obj kvs) ->
          ci "two hits" 2 (List.length kvs);
          cb "ka value exact" true
            (Option.bind (List.assoc_opt "ka" kvs) Json.hex_of = Some 1.5)
      | _ -> Alcotest.failf "no results in %S" body);
      (* single-key GET, hit and miss *)
      let status, body = rpc path ~meth:"GET" ~target:"/get?k=kb" () in
      ci "get hit" 200 status;
      cb "get value exact" true
        (Option.bind (Json.member "v" (json_of body)) Json.hex_of = Some 2.25);
      ci "get miss is 404" 404 (fst (rpc path ~meth:"GET" ~target:"/get?k=nope" ()));
      ci "healthz" 200 (fst (rpc path ~meth:"GET" ~target:"/healthz" ()));
      ci "unknown endpoint 404" 404 (fst (rpc path ~meth:"GET" ~target:"/bogus" ())));
  (* a restarted store reloads its file: the table survives the process *)
  with_store (fun path ->
      let _, body =
        rpc path ~meth:"POST" ~target:"/lookup" ~body:{|{"keys":["ka","kb"]}|} ()
      in
      match Json.member "results" (json_of body) with
      | Some (Json.Obj kvs) -> ci "persisted across restart" 2 (List.length kvs)
      | _ -> Alcotest.failf "no results in %S" body)

let member_addrs path =
  match Fleet.members (Fleet.Unix_sock path) with
  | Ok ms -> List.map fst ms
  | Error e -> Alcotest.failf "members: %s" e

let test_store_membership () =
  with_daemons
    [ (fun path () -> Fleet.run_store ~listen:(Fleet.Unix_sock path) ()) ]
  @@ function
  | [ path ] ->
      let register ?(ttl = "0x1p+3") addr =
        rpc path ~meth:"POST" ~target:"/register"
          ~body:(Printf.sprintf {|{"addr":%S,"ttl":%S}|} addr ttl)
          ()
      in
      ci "empty table" 0 (List.length (member_addrs path));
      let status, body = register "w1:9001" in
      ci "register ok" 200 status;
      cb "one member" true (Json.member "members" (json_of body) = Some (Json.Int 1));
      let _, body = register "w2:9002" in
      cb "two members" true (Json.member "members" (json_of body) = Some (Json.Int 2));
      (* re-registering is the heartbeat: still two *)
      let _, body = register "w1:9001" in
      cb "heartbeat does not duplicate" true
        (Json.member "members" (json_of body) = Some (Json.Int 2));
      Alcotest.(check (list string)) "members listed sorted" [ "w1:9001"; "w2:9002" ]
        (member_addrs path);
      (* explicit deregistration removes immediately *)
      let status, body =
        rpc path ~meth:"POST" ~target:"/deregister" ~body:{|{"addr":"w1:9001"}|} ()
      in
      ci "deregister ok" 200 status;
      cb "deregister reports removal" true
        (Json.member "removed" (json_of body) = Some (Json.Bool true));
      Alcotest.(check (list string)) "w1 gone" [ "w2:9002" ] (member_addrs path);
      (* a missed heartbeat ages the worker out after its TTL *)
      let status, _ = register ~ttl:"0x1.999999999999ap-3" "w3:9003" (* 0.2s *) in
      ci "short-ttl register ok" 200 status;
      cb "w3 visible before its TTL" true (List.mem "w3:9003" (member_addrs path));
      ignore (Unix.select [] [] [] 0.35);
      cb "w3 aged out" false (List.mem "w3:9003" (member_addrs path));
      cb "w2's longer TTL survives" true (List.mem "w2:9002" (member_addrs path));
      (* garbage registrations are rejected, not stored *)
      ci "missing addr rejected" 400
        (fst (rpc path ~meth:"POST" ~target:"/register" ~body:{|{"ttl":"0x1p+0"}|} ()));
      ci "absurd ttl rejected" 400
        (fst (register ~ttl:"0x1p+30" "w4:9004"))
  | _ -> assert false

(* ---------------- measurement through the fleet ---------------- *)

let small_scale jobs = { Scale.tiny with Scale.workload_scale = 0.05; jobs }

let design_points n =
  let rng = Emc_util.Rng.create 123 in
  Emc_doe.Doe.lhs rng Params.space_all n

let check_counters what (a : Measure.t) (b : Measure.t) =
  ci (what ^ ": simulations") a.Measure.simulations b.Measure.simulations;
  ci (what ^ ": result hits") a.Measure.result_hits b.Measure.result_hits;
  ci (what ^ ": compiles") a.Measure.compiles b.Measure.compiles;
  ci (what ^ ": binary hits") a.Measure.binary_hits b.Measure.binary_hits

let run_through ?(options = { Fleet.default_options with Fleet.chunk = 3 })
    ?(before_fleet = fun () -> ()) addrs =
  let w = Emc_workloads.Registry.find "mcf" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 7 in
  (* duplicate a point so the dedup/result-hit path is exercised too *)
  let points = Array.append points [| points.(0) |] in
  let m_local = Measure.create (small_scale 1) in
  let y_local = Measure.cycles_coded_many m_local w ~variant points in
  let e_local = Measure.respond_coded_many ~response:Measure.Energy m_local w ~variant points in
  let m_fleet = Measure.create (small_scale 1) in
  Fleet.attach ~options m_fleet
    (List.map
       (fun a ->
         match Fleet.parse_source a with Ok s -> s | Error e -> failwith e)
       addrs);
  before_fleet ();
  let y_fleet = Measure.cycles_coded_many m_fleet w ~variant points in
  let e_fleet = Measure.respond_coded_many ~response:Measure.Energy m_fleet w ~variant points in
  Alcotest.(check (array (float 0.0))) "cycles bit-identical to jobs=1" y_local y_fleet;
  Alcotest.(check (array (float 0.0))) "energy bit-identical to jobs=1" e_local e_fleet;
  check_counters "fleet = local" m_local m_fleet

let test_fleet_bit_identity () = with_worker (fun path -> run_through [ path ])

let test_fleet_no_spurious_dispatches () =
  (* a healthy run dispatches each chunk exactly once: no retries, no
     steals, no extra dispatches from a coordinator waking early. 8 points
     at chunk 3 over two batches (cycles then energy; energy is all result
     hits so it dispatches nothing) = 3 chunks. *)
  with_worker (fun path ->
      let d0 = counter "fleet.dispatched" in
      let r0 = counter "fleet.retried" in
      let s0 = counter "fleet.steals" in
      run_through [ path ];
      ci "each chunk dispatched exactly once" (d0 + 3) (counter "fleet.dispatched");
      ci "nothing retried" r0 (counter "fleet.retried");
      ci "nothing stolen" s0 (counter "fleet.steals"))

let test_fleet_pipelined_depth () =
  (* depth 3 on a single worker: chunk 2 over 8 points = 4 chunks, so the
     pipeline genuinely queues, and results must stay bit-identical *)
  with_worker (fun path ->
      run_through
        ~options:{ Fleet.default_options with Fleet.chunk = 2; Fleet.depth = 3 }
        [ path ])

let test_fleet_pipelined_two_workers () =
  with_daemons
    [ (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ());
      (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ()) ]
    (run_through ~options:{ Fleet.default_options with Fleet.chunk = 1; Fleet.depth = 4 })

let test_fleet_two_workers () =
  with_daemons
    [ (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ());
      (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ()) ]
    run_through

let test_fleet_retries_dead_worker () =
  (* first address is a socket nobody listens on: every dispatch to it
     fails at connect, the chunk is retried on the live worker, and the
     result is still bit-identical *)
  let failures0 = counter "fleet.worker_failures" in
  let retried0 = counter "fleet.retried" in
  with_worker (fun live -> run_through [ sock_path "dead"; live ]);
  cb "dead worker counted" true (counter "fleet.worker_failures" > failures0);
  cb "its chunk was retried" true (counter "fleet.retried" > retried0)

let test_fleet_retries_dropped_connection () =
  (* a worker that accepts and immediately drops the connection: the
     coordinator sees a closed response stream mid-chunk (not a connect
     failure) and must retry elsewhere *)
  let flaky = sock_path "flaky" in
  let pid =
    fork_daemon (fun () ->
        let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind lsock (Unix.ADDR_UNIX flaky);
        Unix.listen lsock 8;
        while true do
          match Unix.accept lsock with
          | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists flaky then Sys.remove flaky)
  @@ fun () ->
  wait_sock flaky;
  let failures0 = counter "fleet.worker_failures" in
  with_worker (fun live -> run_through [ flaky; live ]);
  cb "dropped connection counted as worker failure" true
    (counter "fleet.worker_failures" > failures0)

let test_all_workers_dead () =
  let m = Measure.create (small_scale 1) in
  Fleet.attach m
    [ Fleet.Worker (Fleet.Unix_sock (sock_path "dead1"));
      Fleet.Worker (Fleet.Unix_sock (sock_path "dead2")) ];
  let w = Emc_workloads.Registry.find "mcf" in
  match Measure.cycles_coded_many m w ~variant:Emc_workloads.Workload.Train (design_points 3) with
  | _ -> Alcotest.fail "expected Fleet_error"
  | exception Fleet.Fleet_error msg ->
      cb (Printf.sprintf "failure names the problem (%s)" msg) true (String.length msg > 0)

let test_worker_feeds_store () =
  (* run once through a worker wired to a store, then serve a fresh worker
     (empty memo) from that store: zero simulations anywhere the second
     time, still bit-identical *)
  let store_file = Filename.temp_file "emc_store2" ".jsonl" in
  Sys.remove store_file;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store_file then Sys.remove store_file)
  @@ fun () ->
  let store_path = sock_path "store" in
  let store_pid =
    fork_daemon (fun () ->
        Fleet.run_store ~file:store_file ~listen:(Fleet.Unix_sock store_path) ())
  in
  Fun.protect ~finally:(fun () -> stop_daemon store_pid)
  @@ fun () ->
  wait_sock store_path;
  let store = Fleet.Unix_sock store_path in
  let w = Emc_workloads.Registry.find "gzip" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 4 in
  let y1 = ref [||] in
  with_worker ~store (fun path ->
      let m = Measure.create (small_scale 1) in
      Fleet.attach m [ Fleet.Worker (Option.get (Result.to_option (Fleet.parse_addr path))) ];
      y1 := Measure.cycles_coded_many m w ~variant points);
  cb "store persisted results" true (Sys.file_exists store_file);
  with_worker ~store (fun path ->
      let m = Measure.create (small_scale 1) in
      Fleet.attach m [ Fleet.Worker (Option.get (Result.to_option (Fleet.parse_addr path))) ];
      let y2 = Measure.cycles_coded_many m w ~variant points in
      Alcotest.(check (array (float 0.0))) "store-served run bit-identical" !y1 y2;
      (* the fresh worker's own /metrics must report zero simulator runs *)
      let _, metrics = rpc path ~meth:"GET" ~target:"/metrics" () in
      let has sub =
        let n = String.length metrics and m = String.length sub in
        let rec go i = i + m <= n && (String.sub metrics i m = sub || go (i + 1)) in
        go 0
      in
      cb "fresh worker simulated nothing" true (has "emc_measure_simulations 0");
      cb "store hits recorded" true (has "emc_fleet_store_hits 12"))

(* ---------------- elastic membership ---------------- *)

let kill_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let rm_f p = if Sys.file_exists p then Sys.remove p

let elastic_options =
  { Fleet.default_options with Fleet.chunk = 2; Fleet.poll_interval = 0.1 }

let test_elastic_join_mid_run () =
  let store_path = sock_path "estore" in
  let store_pid =
    fork_daemon (fun () -> Fleet.run_store ~listen:(Fleet.Unix_sock store_path) ())
  in
  let worker_sock = sock_path "ejoin" in
  let worker_pid = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter stop_daemon !worker_pid;
      stop_daemon store_pid;
      List.iter rm_f [ worker_sock; worker_sock ^ ".pid" ])
  @@ fun () ->
  wait_sock store_path;
  let joined0 = counter "fleet.workers_joined" in
  let dispatched0 = counter "fleet.dispatched" in
  (* the worker comes up only after the coordinator is already waiting on
     an empty membership table: it must be discovered by a poll mid-run
     and handed the pending chunks *)
  let spawn_worker_later () =
    worker_pid :=
      Some
        (fork_daemon (fun () ->
             ignore (Unix.select [] [] [] 0.3);
             Fleet.run_worker
               ~store:(Fleet.Unix_sock store_path)
               ~register:(Fleet.Unix_sock store_path)
               ~heartbeat:0.2 ~listen:(Fleet.Unix_sock worker_sock) ()))
  in
  run_through ~options:elastic_options ~before_fleet:spawn_worker_later [ "@" ^ store_path ];
  cb "the worker joined via membership" true (counter "fleet.workers_joined" > joined0);
  cb "the joined worker received chunks" true (counter "fleet.dispatched" > dispatched0);
  (* the store now holds every result: a second campaign through the same
     elastic fleet pre-filters everything and dispatches nothing *)
  let prefilled0 = counter "fleet.store_prefilled" in
  let dispatched1 = counter "fleet.dispatched" in
  run_through ~options:elastic_options [ "@" ^ store_path ];
  ci "all unique points served by the pre-filter" (prefilled0 + 7)
    (counter "fleet.store_prefilled");
  ci "nothing dispatched on the warm campaign" dispatched1 (counter "fleet.dispatched")

let test_elastic_drain_mid_run () =
  let store_path = sock_path "dstore" in
  let store_pid =
    fork_daemon (fun () -> Fleet.run_store ~listen:(Fleet.Unix_sock store_path) ())
  in
  let w1 = sock_path "edrain1" and w2 = sock_path "edrain2" in
  let worker sock =
    fork_daemon (fun () ->
        Fleet.run_worker ~register:(Fleet.Unix_sock store_path) ~heartbeat:0.1
          ~listen:(Fleet.Unix_sock sock) ())
  in
  let p1 = worker w1 in
  let p2 = worker w2 in
  Fun.protect
    ~finally:(fun () ->
      stop_daemon p1;
      stop_daemon p2;
      stop_daemon store_pid;
      List.iter rm_f [ w1; w1 ^ ".pid"; w2; w2 ^ ".pid" ])
  @@ fun () ->
  wait_sock store_path;
  wait_sock w1;
  wait_sock w2;
  (* SIGTERM = drain: a forked orchestrator signals w1 shortly after the
     batch starts; it finishes in-flight work, deregisters and exits,
     and every chunk still completes — zero lost work, bytes identical *)
  let drainer = ref None in
  let drain_w1_later () =
    drainer :=
      Some
        (match Unix.fork () with
        | 0 ->
            ignore (Unix.select [] [] [] 0.1);
            (try Unix.kill p1 Sys.sigterm with Unix.Unix_error _ -> ());
            Unix._exit 0
        | pid -> pid)
  in
  run_through
    ~options:{ elastic_options with Fleet.chunk = 1 }
    ~before_fleet:drain_w1_later [ "@" ^ store_path ];
  Option.iter (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()) !drainer;
  (* once drained, w1 is out of the members table; w2 is still there *)
  stop_daemon p1;
  let ms = member_addrs store_path in
  cb "drained worker deregistered" false (List.mem w1 ms);
  cb "surviving worker still registered" true (List.mem w2 ms)

let test_registered_worker_death () =
  let store_path = sock_path "kstore" in
  let store_pid =
    fork_daemon (fun () -> Fleet.run_store ~listen:(Fleet.Unix_sock store_path) ())
  in
  Fun.protect ~finally:(fun () -> stop_daemon store_pid)
  @@ fun () ->
  wait_sock store_path;
  (* a registration whose worker is already dead (long TTL, nobody
     listening): the coordinator must discover it, fail it at connect,
     and retry its chunks on the live worker — bit-identically *)
  let ghost = sock_path "ghost" in
  ci "ghost registered" 200
    (fst
       (rpc store_path ~meth:"POST" ~target:"/register"
          ~body:(Printf.sprintf {|{"addr":%S,"ttl":"0x1p+6"}|} ghost)
          ()));
  let live = sock_path "klive" in
  let p =
    fork_daemon (fun () ->
        Fleet.run_worker ~register:(Fleet.Unix_sock store_path) ~heartbeat:0.1
          ~listen:(Fleet.Unix_sock live) ())
  in
  Fun.protect ~finally:(fun () -> kill_daemon p; List.iter rm_f [ live; live ^ ".pid" ])
  @@ fun () ->
  wait_sock live;
  let failures0 = counter "fleet.worker_failures" in
  let retried0 = counter "fleet.retried" in
  run_through ~options:elastic_options [ "@" ^ store_path ];
  cb "dead registered worker failed" true (counter "fleet.worker_failures" > failures0);
  cb "its chunks were retried" true (counter "fleet.retried" > retried0);
  (* SIGKILL the live worker: no deregistration runs, but its heartbeater
     child notices the orphaning and exits, so the registration ages out
     of /members within a TTL instead of living forever *)
  Unix.kill p Sys.sigkill;
  (try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ());
  cb "killed worker still listed within its TTL" true
    (List.mem live (member_addrs store_path));
  ignore (Unix.select [] [] [] 0.8);
  cb "SIGKILLed worker aged out of membership" false
    (List.mem live (member_addrs store_path));
  cb "age-out is heartbeat-driven: the long-TTL ghost remains" true
    (List.mem ghost (member_addrs store_path))

(* ---------------- run journals ---------------- *)

let with_run_dir f =
  let dir = Filename.temp_file "emc_runs" "" in
  Sys.remove dir;
  let old = Sys.getenv_opt "EMC_RUN_DIR" in
  Unix.putenv "EMC_RUN_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "EMC_RUN_DIR" (Option.value ~default:"" old);
      if Sys.file_exists dir then
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      if Sys.file_exists dir then Unix.rmdir dir)
    (fun () -> f dir)

let test_journal_resume () =
  with_run_dir @@ fun dir ->
  let path = Fleet.journal_init ~run_id:"t1" ~argv:[| "emc"; "model"; "-w"; "mcf" |] in
  cb "journal under EMC_RUN_DIR" true (Filename.dirname path = dir);
  let w = Emc_workloads.Registry.find "mcf" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 5 in
  let m1 = Measure.create ~journal_file:path (small_scale 1) in
  let y1 = Measure.cycles_coded_many m1 w ~variant points in
  ci "cold run simulates" (Array.length points) m1.Measure.simulations;
  (* a second init is a no-op on an existing journal *)
  cs "re-init returns the same path" path
    (Fleet.journal_init ~run_id:"t1" ~argv:[| "other" |]);
  (* the resumed run preloads everything: zero re-simulation *)
  let m2 = Measure.create ~journal_file:path (small_scale 1) in
  cb "journal preloaded" true (m2.Measure.preloaded > 0);
  let y2 = Measure.cycles_coded_many m2 w ~variant points in
  Alcotest.(check (array (float 0.0))) "resumed run bit-identical" y1 y2;
  ci "resumed run: zero simulations" 0 m2.Measure.simulations;
  (* journal_info reads the header and counts the records *)
  match Fleet.journal_info "t1" with
  | Error e -> Alcotest.failf "journal_info: %s" e
  | Ok ji ->
      cs "run id" "t1" ji.Fleet.ji_run_id;
      Alcotest.(check (list string)) "argv preserved (first writer wins)"
        [ "emc"; "model"; "-w"; "mcf" ] ji.Fleet.ji_argv;
      (* one simulation journals all three responses *)
      ci "entry count" (3 * m1.Measure.simulations) ji.Fleet.ji_entries;
      ci "nothing skipped" 0 ji.Fleet.ji_skipped

let test_journal_info_missing () =
  with_run_dir @@ fun _ ->
  cb "unknown run id is an error" true
    (match Fleet.journal_info "no-such-run" with Error _ -> true | Ok _ -> false)

(* ---------------- cache maintenance ---------------- *)

let test_cache_stats_and_compact () =
  let path = Filename.temp_file "emc_cachestats" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  output_string oc "{\"schema\":\"emc-run-journal/1\",\"run_id\":\"x\"}\n";
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc (Measure.cache_line "kb" 2.25 ^ "\n");
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc "garbage line\n";
  output_string oc "{\"k\":\"torn";  (* no newline: a killed writer *)
  close_out oc;
  let st = Measure.cache_stats path in
  ci "lines" 6 st.Measure.cs_lines;
  ci "entries" 3 st.Measure.cs_entries;
  ci "unique" 2 st.Measure.cs_unique;
  ci "duplicates" 1 st.Measure.cs_duplicates;
  ci "headers" 1 st.Measure.cs_headers;
  ci "malformed" 2 st.Measure.cs_malformed;
  cb "torn tail detected" true st.Measure.cs_torn;
  cb "hit keys reported" true (st.Measure.cs_top_duplicates = [ ("ka", 2) ]);
  (* compacting keeps the header and first occurrences, drops the rest *)
  let before = Measure.cache_compact path in
  ci "compact reports pre-compaction stats" 6 before.Measure.cs_lines;
  let st = Measure.cache_stats path in
  ci "compacted lines" 3 st.Measure.cs_lines;
  ci "compacted unique" 2 st.Measure.cs_unique;
  ci "no duplicates left" 0 st.Measure.cs_duplicates;
  ci "no malformed left" 0 st.Measure.cs_malformed;
  cb "no torn tail left" false st.Measure.cs_torn;
  (* the compacted file still loads, values intact *)
  let table = Hashtbl.create 8 in
  let loaded, skipped = Measure.cache_load table path in
  ci "loads cleanly" 2 loaded;
  ci "nothing skipped" 0 skipped;
  cb "values intact" true
    (Hashtbl.find_opt table "ka" = Some 1.5 && Hashtbl.find_opt table "kb" = Some 2.25)

let test_cache_stats_missing_file () =
  let st = Measure.cache_stats "/nonexistent/emc_nope.jsonl" in
  ci "missing file is empty" 0 st.Measure.cs_lines;
  cb "missing file is not torn" false st.Measure.cs_torn

let test_torn_tail_repaired_on_append () =
  (* a killed run leaves a torn tail; the next writer must not glue its
     first record onto it *)
  let path = Filename.temp_file "emc_torn" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc "{\"k\":\"to";
  close_out oc;
  let oc = Measure.cache_open_append path in
  output_string oc (Measure.cache_line "kb" 2.25 ^ "\n");
  close_out oc;
  let table = Hashtbl.create 8 in
  let loaded, skipped = Measure.cache_load table path in
  ci "both whole records load" 2 loaded;
  ci "only the torn line is skipped" 1 skipped;
  cb "appended record intact, not glued" true (Hashtbl.find_opt table "kb" = Some 2.25)

(* ---------------- typed client errors ---------------- *)

let test_connect_refused_is_typed () =
  (* nothing listens here: the client path must yield a typed Refused, not
     leak a raw Unix_error *)
  (match Http.connect (Unix.ADDR_UNIX (sock_path "nobody")) with
  | Error (Http.Refused _) -> ()
  | Error e -> Alcotest.failf "want Refused, got %s" (Http.error_to_string e)
  | Ok _ -> Alcotest.fail "connect to nobody succeeded");
  (* TCP variant: a port in TIME_WAIT-free reserved space *)
  match Http.connect (Unix.ADDR_INET (Unix.inet_addr_loopback, 1)) with
  | Error (Http.Refused _) | Error Http.Timeout -> ()
  | Error e -> Alcotest.failf "want Refused/Timeout, got %s" (Http.error_to_string e)
  | Ok fd ->
      Unix.close fd;
      Alcotest.fail "connect to port 1 succeeded"

let suite =
  [
    ("parse_addr forms", `Quick, test_parse_addr);
    ("parse_source @ prefix", `Quick, test_parse_sources);
    ("parse_fleet errors", `Quick, test_parse_fleet_errors);
    ("chunk_plan covers degenerate shapes", `Quick, test_chunk_plan);
    ("next_wake sleeps to the nearest event", `Quick, test_next_wake);
    ("hex floats survive the wire", `Quick, test_hex_float_roundtrip);
    ("store daemon: put/lookup/get/persist", `Quick, test_store_daemon);
    ("store membership: register/heartbeat/expire", `Quick, test_store_membership);
    ("one worker bit-identical to jobs=1", `Slow, test_fleet_bit_identity);
    ("two workers bit-identical to jobs=1", `Slow, test_fleet_two_workers);
    ("healthy run: no spurious dispatches", `Slow, test_fleet_no_spurious_dispatches);
    ("pipelined depth 3 bit-identical", `Slow, test_fleet_pipelined_depth);
    ("pipelined depth 4, two workers", `Slow, test_fleet_pipelined_two_workers);
    ("elastic: worker joins mid-run", `Slow, test_elastic_join_mid_run);
    ("elastic: drain mid-run loses nothing", `Slow, test_elastic_drain_mid_run);
    ("elastic: dead worker retried, SIGKILL ages out", `Slow, test_registered_worker_death);
    ("dead worker: chunk retried elsewhere", `Slow, test_fleet_retries_dead_worker);
    ("dropped connection: chunk retried", `Slow, test_fleet_retries_dropped_connection);
    ("all workers dead raises Fleet_error", `Quick, test_all_workers_dead);
    ("shared store: fresh worker, zero simulations", `Slow, test_worker_feeds_store);
    ("journal resume: zero re-simulation", `Slow, test_journal_resume);
    ("journal_info on unknown id", `Quick, test_journal_info_missing);
    ("cache stats and compaction", `Quick, test_cache_stats_and_compact);
    ("cache stats on a missing file", `Quick, test_cache_stats_missing_file);
    ("torn tail repaired before append", `Quick, test_torn_tail_repaired_on_append);
    ("connection refused is typed", `Quick, test_connect_refused_is_typed);
  ]
