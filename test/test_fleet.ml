(** The distributed measurement subsystem, end to end: address parsing,
    bit-exact hex-float transport, the content-addressed result store and
    the worker daemon as real forked processes on temp Unix sockets, the
    coordinator's bit-identity contract against a sequential in-process
    run (values and [measure.*] counters), crash retry against dead and
    connection-dropping workers, run-journal resume with zero
    re-simulation, and the [emc cache] maintenance pass. *)

open Emc_core
module Fleet = Emc_fleet.Fleet
module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics
module Http = Emc_serve.Http

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)
let cs = Alcotest.(check string)

(* the coordinator client path can hit closed sockets *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let counter name = Option.value ~default:0 (Metrics.counter_value name)

(* ---------------- addresses ---------------- *)

let test_parse_addr () =
  cb "host:port" true (Fleet.parse_addr "box1:9001" = Ok (Fleet.Tcp ("box1", 9001)));
  cb ":port is localhost" true
    (Fleet.parse_addr ":9001" = Ok (Fleet.Tcp ("127.0.0.1", 9001)));
  cb "a path is a unix socket" true
    (Fleet.parse_addr "/tmp/w.sock" = Ok (Fleet.Unix_sock "/tmp/w.sock"));
  cb "surrounding space trimmed" true
    (Fleet.parse_addr " box1:80 " = Ok (Fleet.Tcp ("box1", 80)));
  List.iter
    (fun bad ->
      cb (Printf.sprintf "%S rejected" bad) true
        (match Fleet.parse_addr bad with Error _ -> true | Ok _ -> false))
    [ ""; "box1"; "box1:"; "box1:nope"; "box1:0"; "box1:70000" ];
  match Fleet.parse_fleet "a:1, b:2 ,/tmp/w.sock" with
  | Ok [ Fleet.Tcp ("a", 1); Fleet.Tcp ("b", 2); Fleet.Unix_sock "/tmp/w.sock" ] -> ()
  | other ->
      Alcotest.failf "parse_fleet: %s"
        (match other with
        | Ok l -> String.concat ";" (List.map Fleet.addr_to_string l)
        | Error e -> "error " ^ e)

let test_parse_fleet_errors () =
  cb "empty spec rejected" true
    (match Fleet.parse_fleet " , ," with Error _ -> true | Ok _ -> false);
  cb "one bad entry poisons the list" true
    (match Fleet.parse_fleet "a:1,bogus" with Error _ -> true | Ok _ -> false)

(* ---------------- hex-float transport ---------------- *)

let test_hex_float_roundtrip () =
  (* the wire format for every measured value and design-point coordinate:
     a %h literal through JSON must come back bit-identical, including
     values no decimal round trip preserves *)
  List.iter
    (fun f ->
      let j =
        match Json.parse (Json.to_string (Json.Obj [ ("v", Json.hex f) ])) with
        | Ok j -> j
        | Error e -> Alcotest.failf "reparse failed: %s" e
      in
      match Option.bind (Json.member "v" j) Json.hex_of with
      | Some g ->
          Alcotest.(check int64)
            (Printf.sprintf "%h survives the wire" f)
            (Int64.bits_of_float f) (Int64.bits_of_float g)
      | None -> Alcotest.failf "%h did not decode" f)
    [ 0.0; -0.0; 1.0; 0.1; Float.pi; 1.0 /. 3.0; 1e300; -1e-300; 4e-324;
      Float.max_float; Float.min_float; 9007199254740993.0 ]

(* ---------------- daemon scaffolding ---------------- *)

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "emc_fleet_%s_%d_%d.sock" tag (Unix.getpid ()) (Random.int 1_000_000))

let fork_daemon run =
  match Unix.fork () with
  | 0 ->
      (* the child inherits this test process's metrics registry; a real
         daemon starts from zero, so its /metrics must too *)
      Metrics.reset ();
      (try run () with _ -> Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let wait_sock path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "daemon did not come up on %s" path
        else begin
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
  in
  go ()

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let with_daemons specs f =
  let daemons = List.map (fun run -> let path = sock_path "d" in (path, fork_daemon (run path))) specs in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, pid) -> stop_daemon pid) daemons)
    (fun () ->
      List.iter (fun (path, _) -> wait_sock path) daemons;
      f (List.map fst daemons))

let with_worker ?store f =
  with_daemons
    [ (fun path () -> Fleet.run_worker ?store ~listen:(Fleet.Unix_sock path) ()) ]
    (function [ path ] -> f path | _ -> assert false)

(* ---------------- store daemon ---------------- *)

let rpc path ~meth ~target ?(body = "") () =
  match Http.connect (Unix.ADDR_UNIX path) with
  | Error e -> Alcotest.failf "connect %s: %s" path (Http.error_to_string e)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match Http.write_request fd ~meth ~path:target ~body () with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write %s: %s" target (Http.error_to_string e));
          match Http.read_response fd with
          | Ok r -> (r.Http.status, r.Http.resp_body)
          | Error e -> Alcotest.failf "read %s: %s" target (Http.error_to_string e))

let json_of body =
  match Json.parse (String.trim body) with
  | Ok j -> j
  | Error e -> Alcotest.failf "not JSON (%s): %S" e body

let test_store_daemon () =
  let file = Filename.temp_file "emc_store" ".jsonl" in
  Sys.remove file;
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
  @@ fun () ->
  let with_store f =
    with_daemons
      [ (fun path () -> Fleet.run_store ~file ~listen:(Fleet.Unix_sock path) ()) ]
      (function [ path ] -> f path | _ -> assert false)
  in
  with_store (fun path ->
      (* put two entries; re-putting one is deduplicated *)
      let put body = rpc path ~meth:"POST" ~target:"/put" ~body () in
      let status, body =
        put {|{"entries":[{"k":"ka","v":"0x1.8p+0"},{"k":"kb","v":"0x1.2p+1"}]}|}
      in
      ci "put status" 200 status;
      cb "two added" true (Json.member "added" (json_of body) = Some (Json.Int 2));
      let _, body = put {|{"entries":[{"k":"ka","v":"0x1.8p+0"}]}|} in
      cb "duplicate put adds nothing" true
        (Json.member "added" (json_of body) = Some (Json.Int 0));
      (* lookup returns only the hits *)
      let status, body =
        rpc path ~meth:"POST" ~target:"/lookup" ~body:{|{"keys":["ka","missing","kb"]}|} ()
      in
      ci "lookup status" 200 status;
      (match Json.member "results" (json_of body) with
      | Some (Json.Obj kvs) ->
          ci "two hits" 2 (List.length kvs);
          cb "ka value exact" true
            (Option.bind (List.assoc_opt "ka" kvs) Json.hex_of = Some 1.5)
      | _ -> Alcotest.failf "no results in %S" body);
      (* single-key GET, hit and miss *)
      let status, body = rpc path ~meth:"GET" ~target:"/get?k=kb" () in
      ci "get hit" 200 status;
      cb "get value exact" true
        (Option.bind (Json.member "v" (json_of body)) Json.hex_of = Some 2.25);
      ci "get miss is 404" 404 (fst (rpc path ~meth:"GET" ~target:"/get?k=nope" ()));
      ci "healthz" 200 (fst (rpc path ~meth:"GET" ~target:"/healthz" ()));
      ci "unknown endpoint 404" 404 (fst (rpc path ~meth:"GET" ~target:"/bogus" ())));
  (* a restarted store reloads its file: the table survives the process *)
  with_store (fun path ->
      let _, body =
        rpc path ~meth:"POST" ~target:"/lookup" ~body:{|{"keys":["ka","kb"]}|} ()
      in
      match Json.member "results" (json_of body) with
      | Some (Json.Obj kvs) -> ci "persisted across restart" 2 (List.length kvs)
      | _ -> Alcotest.failf "no results in %S" body)

(* ---------------- measurement through the fleet ---------------- *)

let small_scale jobs = { Scale.tiny with Scale.workload_scale = 0.05; jobs }

let design_points n =
  let rng = Emc_util.Rng.create 123 in
  Emc_doe.Doe.lhs rng Params.space_all n

let check_counters what (a : Measure.t) (b : Measure.t) =
  ci (what ^ ": simulations") a.Measure.simulations b.Measure.simulations;
  ci (what ^ ": result hits") a.Measure.result_hits b.Measure.result_hits;
  ci (what ^ ": compiles") a.Measure.compiles b.Measure.compiles;
  ci (what ^ ": binary hits") a.Measure.binary_hits b.Measure.binary_hits

let run_through addrs =
  let w = Emc_workloads.Registry.find "mcf" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 7 in
  (* duplicate a point so the dedup/result-hit path is exercised too *)
  let points = Array.append points [| points.(0) |] in
  let m_local = Measure.create (small_scale 1) in
  let y_local = Measure.cycles_coded_many m_local w ~variant points in
  let e_local = Measure.respond_coded_many ~response:Measure.Energy m_local w ~variant points in
  let m_fleet = Measure.create (small_scale 1) in
  Fleet.attach
    ~options:{ Fleet.default_options with Fleet.chunk = 3 }
    m_fleet
    (List.map
       (fun a -> match Fleet.parse_addr a with Ok a -> a | Error e -> failwith e)
       addrs);
  let y_fleet = Measure.cycles_coded_many m_fleet w ~variant points in
  let e_fleet = Measure.respond_coded_many ~response:Measure.Energy m_fleet w ~variant points in
  Alcotest.(check (array (float 0.0))) "cycles bit-identical to jobs=1" y_local y_fleet;
  Alcotest.(check (array (float 0.0))) "energy bit-identical to jobs=1" e_local e_fleet;
  check_counters "fleet = local" m_local m_fleet

let test_fleet_bit_identity () = with_worker (fun path -> run_through [ path ])

let test_fleet_two_workers () =
  with_daemons
    [ (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ());
      (fun path () -> Fleet.run_worker ~listen:(Fleet.Unix_sock path) ()) ]
    run_through

let test_fleet_retries_dead_worker () =
  (* first address is a socket nobody listens on: every dispatch to it
     fails at connect, the chunk is retried on the live worker, and the
     result is still bit-identical *)
  let failures0 = counter "fleet.worker_failures" in
  let retried0 = counter "fleet.retried" in
  with_worker (fun live -> run_through [ sock_path "dead"; live ]);
  cb "dead worker counted" true (counter "fleet.worker_failures" > failures0);
  cb "its chunk was retried" true (counter "fleet.retried" > retried0)

let test_fleet_retries_dropped_connection () =
  (* a worker that accepts and immediately drops the connection: the
     coordinator sees a closed response stream mid-chunk (not a connect
     failure) and must retry elsewhere *)
  let flaky = sock_path "flaky" in
  let pid =
    fork_daemon (fun () ->
        let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind lsock (Unix.ADDR_UNIX flaky);
        Unix.listen lsock 8;
        while true do
          match Unix.accept lsock with
          | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      if Sys.file_exists flaky then Sys.remove flaky)
  @@ fun () ->
  wait_sock flaky;
  let failures0 = counter "fleet.worker_failures" in
  with_worker (fun live -> run_through [ flaky; live ]);
  cb "dropped connection counted as worker failure" true
    (counter "fleet.worker_failures" > failures0)

let test_all_workers_dead () =
  let m = Measure.create (small_scale 1) in
  Fleet.attach m [ Fleet.Unix_sock (sock_path "dead1"); Fleet.Unix_sock (sock_path "dead2") ];
  let w = Emc_workloads.Registry.find "mcf" in
  match Measure.cycles_coded_many m w ~variant:Emc_workloads.Workload.Train (design_points 3) with
  | _ -> Alcotest.fail "expected Fleet_error"
  | exception Fleet.Fleet_error msg ->
      cb (Printf.sprintf "failure names the problem (%s)" msg) true (String.length msg > 0)

let test_worker_feeds_store () =
  (* run once through a worker wired to a store, then serve a fresh worker
     (empty memo) from that store: zero simulations anywhere the second
     time, still bit-identical *)
  let store_file = Filename.temp_file "emc_store2" ".jsonl" in
  Sys.remove store_file;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store_file then Sys.remove store_file)
  @@ fun () ->
  let store_path = sock_path "store" in
  let store_pid =
    fork_daemon (fun () ->
        Fleet.run_store ~file:store_file ~listen:(Fleet.Unix_sock store_path) ())
  in
  Fun.protect ~finally:(fun () -> stop_daemon store_pid)
  @@ fun () ->
  wait_sock store_path;
  let store = Fleet.Unix_sock store_path in
  let w = Emc_workloads.Registry.find "gzip" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 4 in
  let y1 = ref [||] in
  with_worker ~store (fun path ->
      let m = Measure.create (small_scale 1) in
      Fleet.attach m [ Option.get (Result.to_option (Fleet.parse_addr path)) ];
      y1 := Measure.cycles_coded_many m w ~variant points);
  cb "store persisted results" true (Sys.file_exists store_file);
  with_worker ~store (fun path ->
      let m = Measure.create (small_scale 1) in
      Fleet.attach m [ Option.get (Result.to_option (Fleet.parse_addr path)) ];
      let y2 = Measure.cycles_coded_many m w ~variant points in
      Alcotest.(check (array (float 0.0))) "store-served run bit-identical" !y1 y2;
      (* the fresh worker's own /metrics must report zero simulator runs *)
      let _, metrics = rpc path ~meth:"GET" ~target:"/metrics" () in
      let has sub =
        let n = String.length metrics and m = String.length sub in
        let rec go i = i + m <= n && (String.sub metrics i m = sub || go (i + 1)) in
        go 0
      in
      cb "fresh worker simulated nothing" true (has "emc_measure_simulations 0");
      cb "store hits recorded" true (has "emc_fleet_store_hits 12"))

(* ---------------- run journals ---------------- *)

let with_run_dir f =
  let dir = Filename.temp_file "emc_runs" "" in
  Sys.remove dir;
  let old = Sys.getenv_opt "EMC_RUN_DIR" in
  Unix.putenv "EMC_RUN_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "EMC_RUN_DIR" (Option.value ~default:"" old);
      if Sys.file_exists dir then
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      if Sys.file_exists dir then Unix.rmdir dir)
    (fun () -> f dir)

let test_journal_resume () =
  with_run_dir @@ fun dir ->
  let path = Fleet.journal_init ~run_id:"t1" ~argv:[| "emc"; "model"; "-w"; "mcf" |] in
  cb "journal under EMC_RUN_DIR" true (Filename.dirname path = dir);
  let w = Emc_workloads.Registry.find "mcf" in
  let variant = Emc_workloads.Workload.Train in
  let points = design_points 5 in
  let m1 = Measure.create ~journal_file:path (small_scale 1) in
  let y1 = Measure.cycles_coded_many m1 w ~variant points in
  ci "cold run simulates" (Array.length points) m1.Measure.simulations;
  (* a second init is a no-op on an existing journal *)
  cs "re-init returns the same path" path
    (Fleet.journal_init ~run_id:"t1" ~argv:[| "other" |]);
  (* the resumed run preloads everything: zero re-simulation *)
  let m2 = Measure.create ~journal_file:path (small_scale 1) in
  cb "journal preloaded" true (m2.Measure.preloaded > 0);
  let y2 = Measure.cycles_coded_many m2 w ~variant points in
  Alcotest.(check (array (float 0.0))) "resumed run bit-identical" y1 y2;
  ci "resumed run: zero simulations" 0 m2.Measure.simulations;
  (* journal_info reads the header and counts the records *)
  match Fleet.journal_info "t1" with
  | Error e -> Alcotest.failf "journal_info: %s" e
  | Ok ji ->
      cs "run id" "t1" ji.Fleet.ji_run_id;
      Alcotest.(check (list string)) "argv preserved (first writer wins)"
        [ "emc"; "model"; "-w"; "mcf" ] ji.Fleet.ji_argv;
      (* one simulation journals all three responses *)
      ci "entry count" (3 * m1.Measure.simulations) ji.Fleet.ji_entries;
      ci "nothing skipped" 0 ji.Fleet.ji_skipped

let test_journal_info_missing () =
  with_run_dir @@ fun _ ->
  cb "unknown run id is an error" true
    (match Fleet.journal_info "no-such-run" with Error _ -> true | Ok _ -> false)

(* ---------------- cache maintenance ---------------- *)

let test_cache_stats_and_compact () =
  let path = Filename.temp_file "emc_cachestats" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  output_string oc "{\"schema\":\"emc-run-journal/1\",\"run_id\":\"x\"}\n";
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc (Measure.cache_line "kb" 2.25 ^ "\n");
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc "garbage line\n";
  output_string oc "{\"k\":\"torn";  (* no newline: a killed writer *)
  close_out oc;
  let st = Measure.cache_stats path in
  ci "lines" 6 st.Measure.cs_lines;
  ci "entries" 3 st.Measure.cs_entries;
  ci "unique" 2 st.Measure.cs_unique;
  ci "duplicates" 1 st.Measure.cs_duplicates;
  ci "headers" 1 st.Measure.cs_headers;
  ci "malformed" 2 st.Measure.cs_malformed;
  cb "torn tail detected" true st.Measure.cs_torn;
  cb "hit keys reported" true (st.Measure.cs_top_duplicates = [ ("ka", 2) ]);
  (* compacting keeps the header and first occurrences, drops the rest *)
  let before = Measure.cache_compact path in
  ci "compact reports pre-compaction stats" 6 before.Measure.cs_lines;
  let st = Measure.cache_stats path in
  ci "compacted lines" 3 st.Measure.cs_lines;
  ci "compacted unique" 2 st.Measure.cs_unique;
  ci "no duplicates left" 0 st.Measure.cs_duplicates;
  ci "no malformed left" 0 st.Measure.cs_malformed;
  cb "no torn tail left" false st.Measure.cs_torn;
  (* the compacted file still loads, values intact *)
  let table = Hashtbl.create 8 in
  let loaded, skipped = Measure.cache_load table path in
  ci "loads cleanly" 2 loaded;
  ci "nothing skipped" 0 skipped;
  cb "values intact" true
    (Hashtbl.find_opt table "ka" = Some 1.5 && Hashtbl.find_opt table "kb" = Some 2.25)

let test_cache_stats_missing_file () =
  let st = Measure.cache_stats "/nonexistent/emc_nope.jsonl" in
  ci "missing file is empty" 0 st.Measure.cs_lines;
  cb "missing file is not torn" false st.Measure.cs_torn

let test_torn_tail_repaired_on_append () =
  (* a killed run leaves a torn tail; the next writer must not glue its
     first record onto it *)
  let path = Filename.temp_file "emc_torn" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  output_string oc (Measure.cache_line "ka" 1.5 ^ "\n");
  output_string oc "{\"k\":\"to";
  close_out oc;
  let oc = Measure.cache_open_append path in
  output_string oc (Measure.cache_line "kb" 2.25 ^ "\n");
  close_out oc;
  let table = Hashtbl.create 8 in
  let loaded, skipped = Measure.cache_load table path in
  ci "both whole records load" 2 loaded;
  ci "only the torn line is skipped" 1 skipped;
  cb "appended record intact, not glued" true (Hashtbl.find_opt table "kb" = Some 2.25)

(* ---------------- typed client errors ---------------- *)

let test_connect_refused_is_typed () =
  (* nothing listens here: the client path must yield a typed Refused, not
     leak a raw Unix_error *)
  (match Http.connect (Unix.ADDR_UNIX (sock_path "nobody")) with
  | Error (Http.Refused _) -> ()
  | Error e -> Alcotest.failf "want Refused, got %s" (Http.error_to_string e)
  | Ok _ -> Alcotest.fail "connect to nobody succeeded");
  (* TCP variant: a port in TIME_WAIT-free reserved space *)
  match Http.connect (Unix.ADDR_INET (Unix.inet_addr_loopback, 1)) with
  | Error (Http.Refused _) | Error Http.Timeout -> ()
  | Error e -> Alcotest.failf "want Refused/Timeout, got %s" (Http.error_to_string e)
  | Ok fd ->
      Unix.close fd;
      Alcotest.fail "connect to port 1 succeeded"

let suite =
  [
    ("parse_addr forms", `Quick, test_parse_addr);
    ("parse_fleet errors", `Quick, test_parse_fleet_errors);
    ("hex floats survive the wire", `Quick, test_hex_float_roundtrip);
    ("store daemon: put/lookup/get/persist", `Quick, test_store_daemon);
    ("one worker bit-identical to jobs=1", `Slow, test_fleet_bit_identity);
    ("two workers bit-identical to jobs=1", `Slow, test_fleet_two_workers);
    ("dead worker: chunk retried elsewhere", `Slow, test_fleet_retries_dead_worker);
    ("dropped connection: chunk retried", `Slow, test_fleet_retries_dropped_connection);
    ("all workers dead raises Fleet_error", `Quick, test_all_workers_dead);
    ("shared store: fresh worker, zero simulations", `Slow, test_worker_feeds_store);
    ("journal resume: zero re-simulation", `Slow, test_journal_resume);
    ("journal_info on unknown id", `Quick, test_journal_info_missing);
    ("cache stats and compaction", `Quick, test_cache_stats_and_compact);
    ("cache stats on a missing file", `Quick, test_cache_stats_missing_file);
    ("torn tail repaired before append", `Quick, test_torn_tail_repaired_on_append);
    ("connection refused is typed", `Quick, test_connect_refused_is_typed);
  ]
