(** Regression-model tests: datasets, metrics, and the three model families
    on synthetic functions with known structure. *)

open Emc_regress

let cb = Alcotest.(check bool)
let cf = Alcotest.(check (float 1e-6))

let rng0 () = Emc_util.Rng.create 42

(* sample a function over random points in [-1,1]^k *)
let sample rng k n f =
  let x = Array.init n (fun _ -> Array.init k (fun _ -> Emc_util.Rng.float rng 2.0 -. 1.0)) in
  Dataset.create x (Array.map f x)

(* ---------------- dataset ---------------- *)

let test_dataset_basics () =
  let d = Dataset.create [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] [| 10.0; 20.0; 30.0 |] in
  Alcotest.(check int) "size" 3 (Dataset.size d);
  Alcotest.(check int) "dims" 1 (Dataset.dims d);
  let a, b = Dataset.split (rng0 ()) d 2 in
  Alcotest.(check int) "split sizes" 2 (Dataset.size a);
  Alcotest.(check int) "split sizes 2" 1 (Dataset.size b)

let test_dataset_sample () =
  let d = Dataset.create (Array.init 10 (fun i -> [| float_of_int i |])) (Array.init 10 float_of_int) in
  let s = Dataset.sample (rng0 ()) d 4 in
  Alcotest.(check int) "sample size" 4 (Dataset.size s);
  (* samples are distinct rows of the original *)
  let rows = Array.to_list (Array.map (fun r -> r.(0)) s.Dataset.x) in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare rows))

let test_dataset_standardize () =
  let d = Dataset.create [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] [| 10.0; 20.0; 30.0 |] in
  let ds, unstd = Dataset.standardize d in
  cf "standardized mean" 0.0 (Emc_util.Stats.mean ds.Dataset.y);
  cf "roundtrip" 20.0 (unstd ds.Dataset.y.(1))

(* ---------------- metrics ---------------- *)

let test_metrics () =
  let d = Dataset.create [| [| 0.0 |]; [| 1.0 |] |] [| 100.0; 200.0 |] in
  let predict x = if x.(0) = 0.0 then 110.0 else 180.0 in
  cf "mape" 10.0 (Metrics.mape predict d);
  Alcotest.(check (float 1e-4)) "rmse" (sqrt (((10.0 ** 2.0) +. (20.0 ** 2.0)) /. 2.0))
    (Metrics.rmse predict d);
  cf "sse" 500.0 (Metrics.sse predict d)

let test_bic_penalizes_complexity () =
  let b1 = Metrics.bic ~samples:100 ~params:5 ~sse:1000.0 in
  let b2 = Metrics.bic ~samples:100 ~params:50 ~sse:1000.0 in
  cb "more params, higher BIC" true (b2 > b1);
  cb "gamma >= p is infinite" true (Metrics.bic ~samples:10 ~params:10 ~sse:1.0 = infinity)

let test_gcv_penalizes_complexity () =
  let g1 = Metrics.gcv ~samples:100 ~effective_params:5.0 ~sse:1000.0 in
  let g2 = Metrics.gcv ~samples:100 ~effective_params:50.0 ~sse:1000.0 in
  cb "more effective params, higher GCV" true (g2 > g1)

(* ---------------- linear ---------------- *)

let test_linear_recovers_coefficients () =
  let f x = 5.0 +. (2.0 *. x.(0)) -. (3.0 *. x.(1)) in
  let d = sample (rng0 ()) 3 80 f in
  let m = Linear.fit ~interactions:false d in
  let test = sample (Emc_util.Rng.create 7) 3 40 f in
  cb "near-zero error" true (Metrics.mape m.Model.predict test < 0.5)

let test_linear_with_interactions () =
  let f x = 1.0 +. (2.0 *. x.(0) *. x.(1)) +. x.(2) in
  let d = sample (rng0 ()) 3 120 f in
  let plain = Linear.fit ~interactions:false d in
  let inter = Linear.fit ~interactions:true d in
  let test = sample (Emc_util.Rng.create 8) 3 50 f in
  let ep = Metrics.mape plain.Model.predict test in
  let ei = Metrics.mape inter.Model.predict test in
  cb (Printf.sprintf "interactions help (%.1f%% vs %.1f%%)" ei ep) true (ei < ep /. 3.0)

let test_linear_feature_names () =
  let names = Linear.feature_names ~interactions:true [| "a"; "b" |] in
  Alcotest.(check (array string)) "names" [| "const"; "a"; "b"; "a^2"; "a * b"; "b^2" |] names

(* ---------------- tree ---------------- *)

let test_tree_piecewise_constant () =
  let f x = if x.(0) > 0.3 then 10.0 else if x.(1) > 0.0 then 5.0 else 1.0 in
  let d = sample (rng0 ()) 2 200 f in
  let t = Tree.fit ~max_leaves:8 d in
  let test = sample (Emc_util.Rng.create 9) 2 100 f in
  cb "low error on piecewise target" true (Metrics.rmse (Tree.predict t) test < 1.5)

let test_tree_respects_max_leaves () =
  let f x = x.(0) *. x.(1) in
  let d = sample (rng0 ()) 2 100 f in
  List.iter
    (fun ml ->
      let t = Tree.fit ~max_leaves:ml d in
      cb
        (Printf.sprintf "leaves <= %d" ml)
        true
        (List.length (Tree.leaves t) <= ml))
    [ 1; 2; 4; 8; 16 ]

let test_tree_min_leaf () =
  let f x = x.(0) in
  let d = sample (rng0 ()) 1 30 f in
  let t = Tree.fit ~min_leaf:5 ~max_leaves:16 d in
  List.iter
    (fun (idx, _) -> cb "leaf size >= 5" true (Array.length idx >= 5))
    (Tree.leaves t)

(* ---------------- RBF ---------------- *)

let test_rbf_kernels () =
  cf "gaussian at center" 1.0 (Rbf.eval_kernel Rbf.Gaussian ~r:1.0 0.0);
  cf "multiquadric at center" 1.0 (Rbf.eval_kernel Rbf.Multiquadric ~r:1.0 0.0);
  cf "inverse multiquadric at center" 1.0 (Rbf.eval_kernel Rbf.InverseMultiquadric ~r:1.0 0.0);
  cb "gaussian decays" true (Rbf.eval_kernel Rbf.Gaussian ~r:1.0 4.0 < 0.2);
  cb "multiquadric grows" true (Rbf.eval_kernel Rbf.Multiquadric ~r:1.0 4.0 > 2.0);
  cb "inv-multiquadric decays" true (Rbf.eval_kernel Rbf.InverseMultiquadric ~r:1.0 4.0 < 0.5)

let test_rbf_fits_nonlinear () =
  let f x = sin (3.0 *. x.(0)) +. (x.(1) *. x.(1)) in
  let d = sample (rng0 ()) 2 150 f in
  let rbf = Rbf.fit d in
  let lin = Linear.fit ~interactions:false d in
  let test = sample (Emc_util.Rng.create 10) 2 60 f in
  let er = Metrics.rmse rbf.Model.predict test in
  let el = Metrics.rmse lin.Model.predict test in
  cb (Printf.sprintf "rbf (%.3f) beats linear (%.3f) on nonlinear target" er el) true
    (er < el /. 2.0)

let test_rbf_all_kernels_reasonable () =
  let f x = (x.(0) *. x.(1)) +. x.(2) in
  let d = sample (rng0 ()) 3 120 f in
  let test = sample (Emc_util.Rng.create 11) 3 50 f in
  List.iter
    (fun k ->
      let m = Rbf.fit ~kernel:k d in
      cb (Rbf.kernel_name k ^ " fits") true (Metrics.rmse m.Model.predict test < 0.5))
    [ Rbf.Gaussian; Rbf.Multiquadric; Rbf.InverseMultiquadric ]

(* ---------------- MARS ---------------- *)

let test_mars_recovers_hinge () =
  let f x = 2.0 +. (3.0 *. Float.max 0.0 (x.(0) -. 0.2)) in
  let d = sample (rng0 ()) 3 150 f in
  let m = Mars.fit d in
  let test = sample (Emc_util.Rng.create 12) 3 60 f in
  cb "tiny error on hinge target" true (Metrics.rmse m.Model.predict test < 0.15)

let test_mars_finds_interaction () =
  let f x = 1.0 +. (2.0 *. x.(0) *. x.(1)) in
  let d = sample (rng0 ()) 4 200 f in
  let m = Mars.fit d in
  let e = Effects.interaction_effect m.Model.predict ~dims:4 0 1 in
  Alcotest.(check (float 0.3)) "interaction effect ~ 2" 2.0 e

let test_mars_prunes () =
  (* pure noise target: backward pruning should cut nearly everything *)
  let rng = rng0 () in
  let d = sample rng 5 80 (fun _ -> Emc_util.Rng.float rng 0.01) in
  let m = Mars.fit d in
  cb
    (Printf.sprintf "small model on noise (%d terms)" (List.length m.Model.terms))
    true
    (List.length m.Model.terms <= 8)

(* ---------------- effects ---------------- *)

let test_effects_of_linear_model () =
  let f x = 10.0 +. (4.0 *. x.(0)) -. (2.0 *. x.(1)) +. (6.0 *. x.(0) *. x.(2)) in
  let dims = 3 in
  cf "main 0" 4.0 (Effects.main_effect f ~dims 0);
  cf "main 1" (-2.0) (Effects.main_effect f ~dims 1);
  cf "main 2 (no standalone term)" 0.0 (Effects.main_effect f ~dims 2);
  cf "interaction 0,2" 6.0 (Effects.interaction_effect f ~dims 0 2);
  cf "interaction 0,1" 0.0 (Effects.interaction_effect f ~dims 0 1);
  cf "constant" 10.0 (Effects.constant f ~dims)

let test_top_effects_sorted () =
  let f x = (5.0 *. x.(0)) +. x.(1) in
  let tops = Effects.top_effects f ~dims:2 ~names:[| "big"; "small" |] in
  match tops with
  | (n1, e1) :: (n2, _) :: _ ->
      Alcotest.(check string) "biggest first" "big" n1;
      cf "value" 5.0 e1;
      Alcotest.(check string) "second" "small" n2
  | _ -> Alcotest.fail "expected two effects"

let test_mars_degree_one_excludes_interactions () =
  let f x = 1.0 +. (2.0 *. x.(0) *. x.(1)) in
  let d = sample (rng0 ()) 3 150 f in
  let m = Mars.fit ~max_degree:1 d in
  (* no basis function may involve two dimensions *)
  List.iter
    (fun (name, _) ->
      cb ("additive term only: " ^ name) false
        (String.length name > 0
        && String.split_on_char '*' name |> List.length > 1))
    m.Model.terms

let test_rbf_explicit_size_grid () =
  let f x = x.(0) +. x.(1) in
  let d = sample (rng0 ()) 2 60 f in
  let m = Rbf.fit ~size_grid:[ 6 ] d in
  (* terms are the bias plus one center/weight pair per RBF center *)
  let centers =
    List.filter (fun (n, _) -> String.length n >= 6 && String.sub n 0 6 = "center") m.Model.terms
  in
  Alcotest.(check int) "six center terms" 6 (List.length centers);
  cb "bias term present" true (List.mem_assoc "bias" m.Model.terms);
  Alcotest.(check int) "n_params = centers + bias" 7 m.Model.n_params

let test_dataset_append () =
  let a = Dataset.create [| [| 1.0 |] |] [| 10.0 |] in
  let b = Dataset.create [| [| 2.0 |]; [| 3.0 |] |] [| 20.0; 30.0 |] in
  let c = Dataset.append a b in
  Alcotest.(check int) "size" 3 (Dataset.size c);
  cf "order preserved" 20.0 c.Dataset.y.(1)

let test_metrics_perfect_predictor () =
  let d = Dataset.create [| [| 0.0 |]; [| 1.0 |] |] [| 5.0; 7.0 |] in
  let predict x = if x.(0) = 0.0 then 5.0 else 7.0 in
  cf "mape 0" 0.0 (Metrics.mape predict d);
  cf "rmse 0" 0.0 (Metrics.rmse predict d);
  cf "sse 0" 0.0 (Metrics.sse predict d)

let prop_tree_predicts_leaf_means =
  QCheck.Test.make ~name:"tree prediction is bounded by target range" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Emc_util.Rng.create seed in
      let f x = x.(0) *. 3.0 in
      let d = sample rng 2 60 f in
      let t = Tree.fit ~max_leaves:8 d in
      let lo = Emc_util.Stats.min d.Dataset.y and hi = Emc_util.Stats.max d.Dataset.y in
      Array.for_all
        (fun x ->
          let p = Tree.predict t x in
          p >= lo -. 1e-9 && p <= hi +. 1e-9)
        d.Dataset.x)

(* ---------------- mape zero-response policy ---------------- *)

let test_mape_skip_policy () =
  (* |y| = 0 points are skipped and counted, not divided by *)
  let d = Dataset.create [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] [| 0.0; 10.0; 20.0 |] in
  let predict x = (x.(0) *. 10.0) +. 1.0 in
  let m, skipped = Metrics.mape_with_skipped predict d in
  Alcotest.(check int) "one point skipped" 1 skipped;
  cf "mape over the used points" 7.5 m;
  cf "mape is the same value" m (Metrics.mape predict d);
  (* every response zero: NaN with everything skipped, never an exception *)
  let dz = Dataset.create [| [| 0.0 |]; [| 1.0 |] |] [| 0.0; 0.0 |] in
  let mz, sz = Metrics.mape_with_skipped predict dz in
  cb "all-zero responses give NaN" true (Float.is_nan mz);
  Alcotest.(check int) "all points skipped" 2 sz

(* ---------------- rank-quality metrics ---------------- *)

let test_nan_last_orders () =
  cb "numbers ascend" true (Metrics.nan_last 1.0 2.0 < 0);
  cb "nan sorts after numbers" true (Metrics.nan_last Float.nan 1e30 > 0);
  cb "number before nan" true (Metrics.nan_last (-1e30) Float.nan < 0);
  Alcotest.(check int) "nan ties nan" 0 (Metrics.nan_last Float.nan Float.nan);
  (* strength_order: descending |coef|, NaN-coefficient terms last *)
  let sorted =
    List.sort Metrics.strength_order
      [ ("small", 1.0); ("nan", Float.nan); ("big-neg", -9.0); ("mid", 4.0) ]
  in
  Alcotest.(check (list string)) "strongest first, NaN last"
    [ "big-neg"; "mid"; "small"; "nan" ]
    (List.map fst sorted)

let test_average_ranks_ties () =
  let r = Metrics.average_ranks [| 10.0; 20.0; 10.0; 30.0 |] in
  Alcotest.(check (array (float 1e-9))) "tied values share the mean position"
    [| 1.5; 3.0; 1.5; 4.0 |] r;
  let r = Metrics.average_ranks [| Float.nan; 5.0 |] in
  cf "NaN ranks last" 2.0 r.(0);
  cf "finite value ranks first" 1.0 r.(1)

let test_spearman_orders () =
  let ys = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  let d = Dataset.create (Array.map (fun v -> [| v |]) ys) ys in
  cf "perfect order" 1.0 (Metrics.spearman (fun x -> x.(0)) d);
  cf "inverted order" (-1.0) (Metrics.spearman (fun x -> -.x.(0)) d);
  (* Spearman only sees ranks: any monotone transform scores 1 *)
  cf "monotone transform" 1.0 (Metrics.spearman (fun x -> exp (x.(0) /. 10.0)) d);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics.spearman: length mismatch") (fun () ->
      ignore (Metrics.spearman_arrays [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Metrics.spearman: need >= 2 samples") (fun () ->
      ignore (Metrics.spearman_arrays [| 1.0 |] [| 1.0 |]))

let test_top_k_metrics () =
  let ys = [| 40.0; 10.0; 30.0; 20.0 |] in
  let d = Dataset.create (Array.map (fun v -> [| v |]) ys) ys in
  (* a perfect ranker always captures the actual best point *)
  cf "perfect regret" 0.0 (Metrics.top_k_regret ~k:1 (fun x -> x.(0)) d);
  cf "perfect precision" 1.0 (Metrics.precision_at_k ~k:2 (fun x -> x.(0)) d);
  (* an inverted ranker's top-1 is the actual worst: regret (40-10)/10 *)
  cf "inverted regret" 300.0 (Metrics.top_k_regret ~k:1 (fun x -> -.x.(0)) d);
  cf "inverted precision" 0.0 (Metrics.precision_at_k ~k:2 (fun x -> -.x.(0)) d);
  (* k beyond the dataset clamps: every point is in the top, regret 0 *)
  cf "k clamps" 0.0 (Metrics.top_k_regret ~k:100 (fun x -> -.x.(0)) d);
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Metrics.top_k_regret: k must be >= 1") (fun () ->
      ignore (Metrics.top_k_regret ~k:0 (fun x -> x.(0)) d))

(* Spearman is a function of the joint order only: permuting the sample
   rows (predictions and responses together) must not change it. *)
let prop_spearman_permutation_invariant =
  QCheck.Test.make ~name:"spearman permutation invariance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 30) (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun pairs ->
      let a = Array.of_list (List.map fst pairs) in
      let b = Array.of_list (List.map snd pairs) in
      let n = Array.length a in
      let rot k arr = Array.init n (fun i -> arr.((i + k) mod n)) in
      let r0 = Metrics.spearman_arrays a b in
      let r1 = Metrics.spearman_arrays (rot (n / 2) a) (rot (n / 2) b) in
      (Float.is_nan r0 && Float.is_nan r1) || Float.abs (r0 -. r1) < 1e-9)

(* ---------------- pairwise ranking model ---------------- *)

let test_rank_fit_recovers_order () =
  let rng = rng0 () in
  let d = sample rng 3 60 (fun x -> (2.0 *. x.(0)) -. x.(1) +. (0.3 *. x.(0) *. x.(2))) in
  let m = Rank.fit ~rng:(rng0 ()) d in
  Alcotest.(check string) "technique" "rank-pairwise" m.Model.technique;
  cb "score order tracks the response" true (Metrics.spearman m.Model.predict d > 0.9);
  (* deterministic: same rng state, same coefficients *)
  let m2 = Rank.fit ~rng:(rng0 ()) d in
  Array.iter
    (fun x -> cf "same prediction" (m.Model.predict x) (m2.Model.predict x))
    (Array.sub d.Dataset.x 0 5)

let test_rank_fit_skips_nan_responses () =
  let rng = rng0 () in
  let d = sample rng 2 40 (fun x -> x.(0) -. (2.0 *. x.(1))) in
  let y = Array.copy d.Dataset.y in
  y.(3) <- Float.nan;
  y.(17) <- Float.nan;
  let dn = Dataset.create d.Dataset.x y in
  let m = Rank.fit ~rng:(rng0 ()) dn in
  (* NaN responses carry no order information and must not poison the fit *)
  cb "finite scores" true
    (Array.for_all (fun x -> Float.is_finite (m.Model.predict x)) dn.Dataset.x);
  cb "still ranks the finite points" true (Metrics.spearman m.Model.predict d > 0.85)

let suite =
  [
    ("dataset basics", `Quick, test_dataset_basics);
    ("dataset sample", `Quick, test_dataset_sample);
    ("dataset standardize", `Quick, test_dataset_standardize);
    ("metrics", `Quick, test_metrics);
    ("bic penalizes complexity", `Quick, test_bic_penalizes_complexity);
    ("gcv penalizes complexity", `Quick, test_gcv_penalizes_complexity);
    ("linear recovers coefficients", `Quick, test_linear_recovers_coefficients);
    ("linear interactions", `Quick, test_linear_with_interactions);
    ("linear feature names", `Quick, test_linear_feature_names);
    ("tree piecewise constant", `Quick, test_tree_piecewise_constant);
    ("tree max leaves", `Quick, test_tree_respects_max_leaves);
    ("tree min leaf", `Quick, test_tree_min_leaf);
    ("rbf kernels", `Quick, test_rbf_kernels);
    ("rbf fits nonlinear", `Quick, test_rbf_fits_nonlinear);
    ("rbf all kernels", `Quick, test_rbf_all_kernels_reasonable);
    ("mars recovers hinge", `Quick, test_mars_recovers_hinge);
    ("mars finds interaction", `Quick, test_mars_finds_interaction);
    ("mars prunes noise", `Quick, test_mars_prunes);
    ("effects of known function", `Quick, test_effects_of_linear_model);
    ("top effects sorted", `Quick, test_top_effects_sorted);
    ("mars degree 1 is additive", `Quick, test_mars_degree_one_excludes_interactions);
    ("rbf explicit size grid", `Quick, test_rbf_explicit_size_grid);
    ("dataset append", `Quick, test_dataset_append);
    ("metrics perfect predictor", `Quick, test_metrics_perfect_predictor);
    ("mape zero-response policy", `Quick, test_mape_skip_policy);
    ("nan_last / strength_order", `Quick, test_nan_last_orders);
    ("average ranks with ties", `Quick, test_average_ranks_ties);
    ("spearman orders", `Quick, test_spearman_orders);
    ("top-k regret and precision", `Quick, test_top_k_metrics);
    ("rank fit recovers order", `Quick, test_rank_fit_recovers_order);
    ("rank fit skips NaN responses", `Quick, test_rank_fit_skips_nan_responses);
    QCheck_alcotest.to_alcotest prop_tree_predicts_leaf_means;
    QCheck_alcotest.to_alcotest prop_spearman_permutation_invariant;
  ]
