(** Tests for the differential fuzzing subsystem (Emc_diff) and regression
    tests for the cross-level divergences it was built to catch: NaN
    comparison semantics, FTOI of NaN, interpreter state reuse, and the
    unified trap taxonomy. *)

open Emc_diff

let nan_src op =
  Printf.sprintf "fn main() -> int {\n  out((0.0 / 0.0) %s (0.0 / 0.0));\n  return 0;\n}\n" op

(* The machine is the spec: every ordered comparison involving NaN is false,
   [!=] is true — at every optimization level, at both execution levels. *)
let test_nan_compare_ieee () =
  List.iter
    (fun (op, expected) ->
      let outs = Helpers.interp_outputs (nan_src op) in
      Alcotest.(check (list string)) ("interp " ^ op) [ string_of_int expected ] outs;
      List.iter
        (fun flags -> Helpers.check_flags_preserve_semantics ~what:("nan " ^ op) flags (nan_src op))
        [ Emc_opt.Flags.o0; Emc_opt.Flags.o2; Diff.corner_max ])
    [ ("==", 0); ("!=", 1); ("<", 0); ("<=", 0); (">", 0); (">=", 0) ]

(* NaN also never equals an ordinary value, and ordinary comparisons still
   work after the IEEE fix. *)
let test_nan_vs_value_and_ordinary () =
  let src cmp = Printf.sprintf "fn main() -> int { out((0.0 / 0.0) %s 1.5); out(2.5 %s 1.5); return 0; }" cmp cmp in
  Alcotest.(check (list string)) "lt" [ "0"; "0" ] (Helpers.interp_outputs (src "<"));
  Alcotest.(check (list string)) "gt" [ "0"; "1" ] (Helpers.interp_outputs (src ">"));
  Alcotest.(check (list string)) "ne" [ "1"; "1" ] (Helpers.interp_outputs (src "!="))

(* FTOI of NaN converts to 0 at both levels instead of trapping on one and
   not the other. *)
let test_ftoi_nan () =
  let src = "fn main() -> int { out(int(0.0 / 0.0)); out(int(2.75)); return 0; }" in
  let outs = Helpers.interp_outputs src in
  Alcotest.(check (list string)) "interp" [ "0"; "2" ] outs;
  List.iter
    (fun flags -> Helpers.check_flags_preserve_semantics ~what:"ftoi nan" flags src)
    [ Emc_opt.Flags.o0; Emc_opt.Flags.o3 ]

(* A reused interpreter state must not leak outputs or dynamic instruction
   counts from the previous run. *)
let test_interp_state_reuse () =
  let ir = Helpers.compile_ir "fn main() -> int { out(7); out(8); return 1; }" in
  let st = Emc_ir.Interp.create ir in
  let r1 = Emc_ir.Interp.run st ~func:"main" ~args:[] in
  let r2 = Emc_ir.Interp.run st ~func:"main" ~args:[] in
  Alcotest.(check (list string))
    "outputs identical" (List.map Helpers.value_str r1.outputs)
    (List.map Helpers.value_str r2.outputs);
  Alcotest.(check int) "two outputs" 2 (List.length r2.outputs);
  Alcotest.(check int) "dyn not accumulated" r1.dyn_instrs r2.dyn_instrs

(* Interp and Func raise the same typed trap categories. *)
let trap_category f =
  match f () with
  | exception Emc_ir.Trap.Trap c -> Some (Emc_ir.Trap.category c)
  | _ -> None

let machine_prog src =
  Emc_codegen.Compiler.compile Emc_opt.Flags.o0 (Helpers.compile_ir src)

let test_trap_categories () =
  List.iter
    (fun (what, src, cat) ->
      let ir = Helpers.compile_ir src in
      let icat =
        trap_category (fun () ->
            Emc_ir.Interp.run (Emc_ir.Interp.create ir) ~func:"main" ~args:[])
      in
      let fcat =
        trap_category (fun () -> Emc_sim.Func.run (Emc_sim.Func.create (machine_prog src)))
      in
      Alcotest.(check (option string)) ("interp " ^ what) (Some cat) icat;
      Alcotest.(check (option string)) ("func " ^ what) (Some cat) fcat)
    [
      ("div", "fn main() -> int { let z = 0; return 1 / z; }", "div-by-zero");
      ("rem", "fn main() -> int { let z = 0; return 1 % z; }", "rem-by-zero");
    ]

let test_trap_out_of_fuel () =
  let src = "fn main() -> int { let w = 1; while (w) { w = 1; } return 0; }" in
  let ir = Helpers.compile_ir src in
  let icat =
    trap_category (fun () ->
        Emc_ir.Interp.run ~fuel:10_000 (Emc_ir.Interp.create ir) ~func:"main" ~args:[])
  in
  let fcat =
    trap_category (fun () ->
        Emc_sim.Func.run ~fuel:10_000 (Emc_sim.Func.create (machine_prog src)))
  in
  Alcotest.(check (option string)) "interp fuel" (Some "out-of-fuel") icat;
  Alcotest.(check (option string)) "func fuel" (Some "out-of-fuel") fcat

(* The multi-level check agrees that a trapping program traps identically
   everywhere (trap category compared, not trap timing). *)
let test_check_source_trap_equivalence () =
  let src = "fn main() -> int { out(3); let z = 0; out(1 / z); return 0; }" in
  match Diff.check_source src with
  | None -> ()
  | Some (level, expected, got) ->
      Alcotest.failf "unexpected divergence at %s: %s vs %s" level expected got

(* Generator sanity: deterministic, and every generated program compiles. *)
let test_gen_compiles () =
  for seed = 0 to 49 do
    let p1 = Gen.program (Emc_util.Rng.create seed) in
    let p2 = Gen.program (Emc_util.Rng.create seed) in
    let s1 = Emc_lang.Pretty.program p1 in
    let s2 = Emc_lang.Pretty.program p2 in
    Alcotest.(check string) (Printf.sprintf "deterministic seed %d" seed) s1 s2;
    match Emc_lang.Minic.compile s1 with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "seed %d does not compile: %s\n%s" seed
          (Format.asprintf "%a" Emc_lang.Minic.pp_error e)
          s1
  done

(* A small fixed-seed fuzz budget must be divergence-free under IEEE
   semantics (the full budget runs in CI via `emc fuzz`). *)
let test_fuzz_clean () =
  let report = Diff.fuzz ~jobs:1 ~seed:7 ~budget:25 () in
  Alcotest.(check int) "programs" 25 report.Diff.programs;
  (match report.Diff.divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "divergence at %s:\n%s" d.Diff.level d.Diff.min_source);
  Alcotest.(check bool) "checks counted" true (report.Diff.checks > 25)

(* Acceptance: against the quarantined pre-fix total-order semantics the
   harness must find the NaN-comparison divergence and shrink it while it
   keeps diverging. *)
let total_order = Emc_ir.Interp.Total_order

let test_quarantine_detects_nan_divergence () =
  match Diff.check_source ~semantics:total_order (nan_src "==") with
  | None -> Alcotest.fail "total-order fcmp not detected as a divergence"
  | Some (level, _, _) ->
      Alcotest.(check bool)
        ("divergence surfaces at the machine level: " ^ level)
        true
        (String.length level >= 5 && String.sub level 0 5 = "func[")

let test_shrink_monotone_and_still_diverging () =
  (* a diverging program padded with irrelevant code the shrinker should cut *)
  let src =
    "fn main() -> int {\n\
     let a = 11;\n\
     let b = a * 3 + 100;\n\
     out(b);\n\
     for (i = 0; i < 5; i = i + 1) { gi[i & 63] = i * 2; }\n\
     out((0.0 / 0.0) == (0.0 / 0.0));\n\
     out(gi[2]);\n\
     return a + b;\n\
     }\n"
  in
  let src = "int gi[64];\n" ^ src in
  let ast =
    match Emc_lang.Parser.parse_program src with
    | p -> p
  in
  let diverges a =
    match Emc_lang.Pretty.program a with
    | exception Invalid_argument _ -> false
    | s -> (
        match Diff.check_source ~semantics:total_order s with
        | None | Some ("frontend", _, _) -> false
        | Some _ -> true)
  in
  Alcotest.(check bool) "original diverges" true (diverges ast);
  let shrunk, steps = Shrink.run ~diverges ast in
  Alcotest.(check bool) "made progress" true (steps > 0);
  Alcotest.(check bool) "still diverges" true (diverges shrunk);
  let n0, w0 = Shrink.measure ast in
  let n1, w1 = Shrink.measure shrunk in
  Alcotest.(check bool)
    (Printf.sprintf "monotone measure: (%d,%d) -> (%d,%d)" n0 w0 n1 w1)
    true
    (n1 < n0 || (n1 = n0 && w1 < w0));
  (* the minimized program must keep the essential NaN comparison *)
  let s = Emc_lang.Pretty.program shrunk in
  Alcotest.(check bool) "kept a float division" true
    (let re = "0.0 / 0.0" in
     let rec contains i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || contains (i + 1))
     in
     contains 0)

(* End-to-end acceptance: a fuzz run against the quarantined semantics finds
   at least one divergence and ships a minimized reproducer that still
   diverges. *)
let test_quarantine_fuzz_finds_and_shrinks () =
  let report = Diff.fuzz ~jobs:1 ~semantics:total_order ~seed:3 ~budget:60 () in
  match report.Diff.divergences with
  | [] -> Alcotest.fail "quarantined total-order semantics survived 60 programs"
  | d :: _ ->
      let still =
        match Emc_lang.Minic.compile d.Diff.min_source with
        | Error _ -> false
        | Ok _ -> Diff.check_source ~semantics:total_order d.Diff.min_source <> None
      in
      Alcotest.(check bool) "minimized reproducer still diverges" true still;
      Alcotest.(check bool) "reproducer no bigger than original" true
        (String.length d.Diff.min_source <= String.length d.Diff.source)

let suite =
  [
    ("nan compare is IEEE at all levels", `Quick, test_nan_compare_ieee);
    ("nan vs value / ordinary compare", `Quick, test_nan_vs_value_and_ordinary);
    ("ftoi of nan is 0 at both levels", `Quick, test_ftoi_nan);
    ("interp state reuse resets outputs/dyn", `Quick, test_interp_state_reuse);
    ("trap categories match across levels", `Quick, test_trap_categories);
    ("out-of-fuel trap matches across levels", `Quick, test_trap_out_of_fuel);
    ("trapping program is trap-equivalent everywhere", `Quick, test_check_source_trap_equivalence);
    ("generator is deterministic and well-typed", `Quick, test_gen_compiles);
    ("fixed-seed fuzz is divergence-free", `Quick, test_fuzz_clean);
    ("quarantined total-order fcmp is detected", `Quick, test_quarantine_detects_nan_divergence);
    ("shrinking is monotone and preserves divergence", `Quick, test_shrink_monotone_and_still_diverging);
    ("quarantine fuzz finds and shrinks a counterexample", `Quick, test_quarantine_fuzz_finds_and_shrinks);
  ]
