(** Genetic algorithm / search tests on functions with known optima. *)

open Emc_search

let cb = Alcotest.(check bool)

let grid5 k = { Ga.levels = Array.init k (fun _ -> [| -1.0; -0.5; 0.0; 0.5; 1.0 |]) }

(* separable convex: optimum at the grid point closest to the continuous
   minimizer (0.5, 0.5, ...) *)
let separable x = Array.fold_left (fun acc v -> acc +. ((v -. 0.5) ** 2.0)) 0.0 x

let test_ga_finds_separable_optimum () =
  let rng = Emc_util.Rng.create 1 in
  let best, fit = Ga.optimize rng (grid5 6) ~fitness:separable in
  Alcotest.(check (float 1e-9)) "optimal value" 0.0 fit;
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "gene at 0.5" 0.5 v) best

let test_ga_deterministic_with_seed () =
  let run () =
    let rng = Emc_util.Rng.create 7 in
    Ga.optimize rng (grid5 8) ~fitness:(fun x -> separable x +. (0.3 *. x.(0) *. x.(1)))
  in
  let b1, f1 = run () and b2, f2 = run () in
  Alcotest.(check (float 0.0)) "same fitness" f1 f2;
  Alcotest.(check (array (float 0.0))) "same genome" b1 b2

let test_ga_handles_interactions () =
  (* XOR-like coupling: good settings depend jointly on two genes *)
  let f x = (x.(0) *. x.(1)) +. (0.1 *. separable x) in
  let rng = Emc_util.Rng.create 3 in
  let _, fit = Ga.optimize rng (grid5 4) ~fitness:f in
  (* optimum: x0 = 1, x1 = -1 (or vice versa), x2 = x3 = 0.5:
     -1 + 0.1 * (0.25 + 2.25) = -0.75 *)
  Alcotest.(check (float 1e-9)) "found coupled optimum" (-0.75) fit

let test_ga_nan_fitness_is_worst () =
  (* a model predicting NaN in some region must not hand that region the
     elite slots: the returned best is a real number outside the NaN zone *)
  let f x = if x.(0) > 0.0 then Float.nan else separable x in
  let rng = Emc_util.Rng.create 21 in
  let best, fit = Ga.optimize rng (grid5 4) ~fitness:f in
  cb "best fitness is a number" true (not (Float.is_nan fit));
  cb "best genome avoids the NaN region" true (best.(0) <= 0.0);
  (* all-NaN landscape still terminates and reports NaN honestly *)
  let rng = Emc_util.Rng.create 22 in
  let _, fit = Ga.optimize rng (grid5 3) ~fitness:(fun _ -> Float.nan) in
  cb "all-NaN landscape returns NaN" true (Float.is_nan fit)

let evaluations () = Option.value ~default:0 (Emc_obs.Metrics.counter_value "ga.evaluations")

let test_baseline_budget_accounting () =
  (* random_search and hill_climb must count their fitness calls into
     ga.evaluations like the GA does, or ablation budgets are meaningless *)
  let before = evaluations () in
  let _ = Ga.random_search (Emc_util.Rng.create 8) (grid5 4) ~fitness:separable ~evals:50 in
  Alcotest.(check int) "random_search counts every call" (before + 50) (evaluations ());
  let before = evaluations () in
  let _ = Ga.hill_climb (Emc_util.Rng.create 9) (grid5 4) ~fitness:separable ~restarts:1 in
  cb "hill_climb counts its calls" true (evaluations () > before)

let test_random_search_budget () =
  let rng = Emc_util.Rng.create 4 in
  let _, fit = Ga.random_search rng (grid5 4) ~fitness:separable ~evals:4000 in
  cb "random search gets close" true (fit < 0.6)

let test_hill_climb_unimodal_exact () =
  let rng = Emc_util.Rng.create 5 in
  let _, fit = Ga.hill_climb rng (grid5 6) ~fitness:separable ~restarts:1 in
  Alcotest.(check (float 1e-9)) "exact on unimodal" 0.0 fit

let test_ga_beats_small_random_budget () =
  (* on a rugged landscape the GA should do at least as well as an
     equivalent-budget random search most of the time *)
  let rugged x =
    Array.fold_left (fun acc v -> acc +. (v *. v) +. (0.5 *. sin (7.0 *. v))) 0.0 x
  in
  let wins = ref 0 in
  for seed = 1 to 5 do
    let r1 = Emc_util.Rng.create seed and r2 = Emc_util.Rng.create (seed + 100) in
    let _, ga = Ga.optimize r1 (grid5 10) ~fitness:rugged in
    let _, rs = Ga.random_search r2 (grid5 10) ~fitness:rugged ~evals:600 in
    if ga <= rs +. 1e-9 then incr wins
  done;
  cb (Printf.sprintf "ga wins %d/5" !wins) true (!wins >= 3)

let test_searcher_freezes_march () =
  (* the model-based search must only vary compiler genes: a model that
     depends solely on microarch parameters yields identical fitness
     everywhere, and the prescribed flags must still be valid *)
  let model =
    {
      Emc_regress.Model.technique = "stub";
      predict = (fun x -> 1000.0 +. (100.0 *. x.(Emc_core.Params.n_compiler)));
      n_params = 1;
      terms = [];
      repr = None;
    }
  in
  let rng = Emc_util.Rng.create 6 in
  let r =
    Emc_core.Searcher.search ~rng ~model ~march:Emc_sim.Config.typical ()
  in
  Alcotest.(check int) "raw has compiler dims" Emc_core.Params.n_compiler
    (Array.length r.Emc_core.Searcher.raw);
  cb "heuristics in range" true
    (r.Emc_core.Searcher.flags.Emc_opt.Flags.max_unroll_times >= 4
    && r.Emc_core.Searcher.flags.Emc_opt.Flags.max_unroll_times <= 12)

let test_searcher_guards_nonphysical_predictions () =
  (* a model that returns negative cycles in some corner must not have that
     corner prescribed *)
  let model =
    {
      Emc_regress.Model.technique = "stub";
      predict =
        (fun x -> if x.(0) > 0.0 then -1e9 (* nonphysical *) else 500.0 +. x.(1));
      n_params = 1;
      terms = [];
      repr = None;
    }
  in
  let rng = Emc_util.Rng.create 7 in
  let r = Emc_core.Searcher.search ~rng ~model ~march:Emc_sim.Config.typical () in
  cb "prescribed point is physical" true (r.Emc_core.Searcher.predicted_cycles > 0.0)

let suite =
  [
    ("ga separable optimum", `Quick, test_ga_finds_separable_optimum);
    ("ga deterministic", `Quick, test_ga_deterministic_with_seed);
    ("ga coupled genes", `Quick, test_ga_handles_interactions);
    ("ga nan fitness is worst", `Quick, test_ga_nan_fitness_is_worst);
    ("baseline budget accounting", `Quick, test_baseline_budget_accounting);
    ("random search budget", `Quick, test_random_search_budget);
    ("hill climb unimodal", `Quick, test_hill_climb_unimodal_exact);
    ("ga vs random", `Quick, test_ga_beats_small_random_budget);
    ("searcher freezes march", `Quick, test_searcher_freezes_march);
    ("searcher guards non-physical", `Quick, test_searcher_guards_nonphysical_predictions);
  ]
