(** Genetic algorithm / search tests on functions with known optima. *)

open Emc_search

let cb = Alcotest.(check bool)

let grid5 k = { Ga.levels = Array.init k (fun _ -> [| -1.0; -0.5; 0.0; 0.5; 1.0 |]) }

(* separable convex: optimum at the grid point closest to the continuous
   minimizer (0.5, 0.5, ...) *)
let separable x = Array.fold_left (fun acc v -> acc +. ((v -. 0.5) ** 2.0)) 0.0 x

let test_ga_finds_separable_optimum () =
  let rng = Emc_util.Rng.create 1 in
  let best, fit = Ga.optimize rng (grid5 6) ~fitness:separable in
  Alcotest.(check (float 1e-9)) "optimal value" 0.0 fit;
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "gene at 0.5" 0.5 v) best

let test_ga_deterministic_with_seed () =
  let run () =
    let rng = Emc_util.Rng.create 7 in
    Ga.optimize rng (grid5 8) ~fitness:(fun x -> separable x +. (0.3 *. x.(0) *. x.(1)))
  in
  let b1, f1 = run () and b2, f2 = run () in
  Alcotest.(check (float 0.0)) "same fitness" f1 f2;
  Alcotest.(check (array (float 0.0))) "same genome" b1 b2

let test_ga_handles_interactions () =
  (* XOR-like coupling: good settings depend jointly on two genes *)
  let f x = (x.(0) *. x.(1)) +. (0.1 *. separable x) in
  let rng = Emc_util.Rng.create 3 in
  let _, fit = Ga.optimize rng (grid5 4) ~fitness:f in
  (* optimum: x0 = 1, x1 = -1 (or vice versa), x2 = x3 = 0.5:
     -1 + 0.1 * (0.25 + 2.25) = -0.75 *)
  Alcotest.(check (float 1e-9)) "found coupled optimum" (-0.75) fit

let test_ga_nan_fitness_is_worst () =
  (* a model predicting NaN in some region must not hand that region the
     elite slots: the returned best is a real number outside the NaN zone *)
  let f x = if x.(0) > 0.0 then Float.nan else separable x in
  let rng = Emc_util.Rng.create 21 in
  let best, fit = Ga.optimize rng (grid5 4) ~fitness:f in
  cb "best fitness is a number" true (not (Float.is_nan fit));
  cb "best genome avoids the NaN region" true (best.(0) <= 0.0);
  (* all-NaN landscape still terminates and reports NaN honestly *)
  let rng = Emc_util.Rng.create 22 in
  let _, fit = Ga.optimize rng (grid5 3) ~fitness:(fun _ -> Float.nan) in
  cb "all-NaN landscape returns NaN" true (Float.is_nan fit)

let evaluations () = Option.value ~default:0 (Emc_obs.Metrics.counter_value "ga.evaluations")

let test_baseline_budget_accounting () =
  (* random_search and hill_climb must count their fitness calls into
     ga.evaluations like the GA does, or ablation budgets are meaningless *)
  let before = evaluations () in
  let _ = Ga.random_search (Emc_util.Rng.create 8) (grid5 4) ~fitness:separable ~evals:50 in
  Alcotest.(check int) "random_search counts every call" (before + 50) (evaluations ());
  let before = evaluations () in
  let _ = Ga.hill_climb (Emc_util.Rng.create 9) (grid5 4) ~fitness:separable ~restarts:1 in
  cb "hill_climb counts its calls" true (evaluations () > before)

let test_random_search_budget () =
  let rng = Emc_util.Rng.create 4 in
  let _, fit = Ga.random_search rng (grid5 4) ~fitness:separable ~evals:4000 in
  cb "random search gets close" true (fit < 0.6)

let test_hill_climb_unimodal_exact () =
  let rng = Emc_util.Rng.create 5 in
  let _, fit = Ga.hill_climb rng (grid5 6) ~fitness:separable ~restarts:1 in
  Alcotest.(check (float 1e-9)) "exact on unimodal" 0.0 fit

let test_ga_beats_small_random_budget () =
  (* on a rugged landscape the GA should do at least as well as an
     equivalent-budget random search most of the time *)
  let rugged x =
    Array.fold_left (fun acc v -> acc +. (v *. v) +. (0.5 *. sin (7.0 *. v))) 0.0 x
  in
  let wins = ref 0 in
  for seed = 1 to 5 do
    let r1 = Emc_util.Rng.create seed and r2 = Emc_util.Rng.create (seed + 100) in
    let _, ga = Ga.optimize r1 (grid5 10) ~fitness:rugged in
    let _, rs = Ga.random_search r2 (grid5 10) ~fitness:rugged ~evals:600 in
    if ga <= rs +. 1e-9 then incr wins
  done;
  cb (Printf.sprintf "ga wins %d/5" !wins) true (!wins >= 3)

let test_searcher_freezes_march () =
  (* the model-based search must only vary compiler genes: a model that
     depends solely on microarch parameters yields identical fitness
     everywhere, and the prescribed flags must still be valid *)
  let model =
    {
      Emc_regress.Model.technique = "stub";
      predict = (fun x -> 1000.0 +. (100.0 *. x.(Emc_core.Params.n_compiler)));
      n_params = 1;
      terms = [];
      repr = None;
    }
  in
  let rng = Emc_util.Rng.create 6 in
  let r =
    Emc_core.Searcher.search ~rng ~model ~march:Emc_sim.Config.typical ()
  in
  Alcotest.(check int) "raw has compiler dims" Emc_core.Params.n_compiler
    (Array.length r.Emc_core.Searcher.raw);
  cb "heuristics in range" true
    (r.Emc_core.Searcher.flags.Emc_opt.Flags.max_unroll_times >= 4
    && r.Emc_core.Searcher.flags.Emc_opt.Flags.max_unroll_times <= 12)

let test_searcher_guards_nonphysical_predictions () =
  (* a model that returns negative cycles in some corner must not have that
     corner prescribed *)
  let model =
    {
      Emc_regress.Model.technique = "stub";
      predict =
        (fun x -> if x.(0) > 0.0 then -1e9 (* nonphysical *) else 500.0 +. x.(1));
      n_params = 1;
      terms = [];
      repr = None;
    }
  in
  let rng = Emc_util.Rng.create 7 in
  let r = Emc_core.Searcher.search ~rng ~model ~march:Emc_sim.Config.typical () in
  cb "prescribed point is physical" true (r.Emc_core.Searcher.predicted_cycles > 0.0)

(* ---------------- GA degenerate-fitness landscapes ---------------- *)

let generations () = Option.value ~default:0 (Emc_obs.Metrics.counter_value "ga.generations")

let test_ga_all_nan_terminates_by_stagnation () =
  (* a fully-NaN landscape never improves: the stagnation exit must fire
     long before the generation budget, not grind through all of it *)
  let before = generations () in
  let rng = Emc_util.Rng.create 23 in
  let params = { Ga.default_params with generations = 500; stagnation_limit = 10 } in
  let _, fit = Ga.optimize ~params rng (grid5 3) ~fitness:(fun _ -> Float.nan) in
  cb "returns NaN honestly" true (Float.is_nan fit);
  let ran = generations () - before in
  cb (Printf.sprintf "stopped after %d generations" ran) true
    (ran <= params.Ga.stagnation_limit + 1)

let test_ga_mixed_nan_crowns_finite () =
  (* one single finite cell in an otherwise-NaN landscape: the GA must
     never crown a NaN genome when any finite fitness was seen *)
  let f x = if x.(0) = 1.0 && x.(1) = -1.0 then 7.0 else Float.nan in
  let rng = Emc_util.Rng.create 24 in
  let best, fit = Ga.optimize rng (grid5 2) ~fitness:f in
  Alcotest.(check (float 0.0)) "finite optimum found" 7.0 fit;
  Alcotest.(check (float 0.0)) "genome of the finite cell" 1.0 best.(0)

(* ---------------- Pareto: non-dominated sort + crowding ---------------- *)

let test_pareto_dominates () =
  cb "strictly better" true (Pareto.dominates [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  cb "better on one, equal on other" true (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  cb "trade-off does not dominate" false (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |]);
  cb "equal does not dominate" false (Pareto.dominates [| 1.0; 1.0 |] [| 1.0; 1.0 |]);
  (* NaN is worse than anything: a NaN objective can never help dominate *)
  cb "nan loses" true (Pareto.dominates [| 1.0; 1.0 |] [| 1.0; Float.nan |]);
  cb "nan cannot dominate" false (Pareto.dominates [| 1.0; Float.nan |] [| 1.0; 1.0 |])

let test_pareto_non_dominated_sort () =
  (* hand-checkable: points 0 and 2 form the first front; 1 is dominated
     by both; 3 is dominated by everything *)
  let objs = [| [| 1.0; 4.0 |]; [| 2.0; 5.0 |]; [| 3.0; 1.0 |]; [| 4.0; 6.0 |] |] in
  (match Pareto.non_dominated_sort objs with
  | [ f0; f1; f2 ] ->
      Alcotest.(check (array int)) "front 0" [| 0; 2 |] f0;
      Alcotest.(check (array int)) "front 1" [| 1 |] f1;
      Alcotest.(check (array int)) "front 2" [| 3 |] f2
  | fronts -> Alcotest.failf "expected 3 fronts, got %d" (List.length fronts));
  cb "first front is a front" true (Pareto.is_front [| [| 1.0; 4.0 |]; [| 3.0; 1.0 |] |]);
  cb "dominated set is not a front" false (Pareto.is_front objs);
  Alcotest.(check int) "empty input has no fronts" 0
    (List.length (Pareto.non_dominated_sort [||]))

let test_pareto_crowding_distance () =
  let objs = [| [| 0.0; 3.0 |]; [| 1.0; 2.0 |]; [| 3.0; 0.0 |] |] in
  let cd = Pareto.crowding_distance objs [| 0; 1; 2 |] in
  cb "boundary points are infinite" true (cd.(0) = infinity && cd.(2) = infinity);
  (* interior: (3-0)/3 + (3-0)/3 = 2 *)
  Alcotest.(check (float 1e-9)) "interior normalized gaps" 2.0 cd.(1)

let test_pareto_optimize_biobjective () =
  (* minimize (sum (x - 0.5)^2, sum (x + 0.5)^2): the true front is the
     segment between the two single-objective optima *)
  let f1 x = Array.fold_left (fun a v -> a +. ((v -. 0.5) ** 2.0)) 0.0 x in
  let f2 x = Array.fold_left (fun a v -> a +. ((v +. 0.5) ** 2.0)) 0.0 x in
  let fitness x = [| f1 x; f2 x |] in
  let run () = Pareto.optimize (Emc_util.Rng.create 11) (grid5 4) ~fitness in
  let front = run () in
  cb "non-empty front" true (Array.length front > 1);
  cb "returned front is mutually non-dominated" true
    (Pareto.is_front (Array.map (fun p -> p.Pareto.objectives) front));
  (* both single-objective optima are on the front *)
  let has pred = Array.exists (fun p -> pred p.Pareto.objectives) front in
  cb "f1 optimum reached" true (has (fun o -> o.(0) < 1e-9));
  cb "f2 optimum reached" true (has (fun o -> o.(1) < 1e-9));
  (* deterministic for a given seed, including order *)
  let front2 = run () in
  Alcotest.(check int) "same front size" (Array.length front) (Array.length front2);
  Array.iteri
    (fun i p ->
      Alcotest.(check (array (float 0.0))) "same genomes in the same order" p.Pareto.genome
        front2.(i).Pareto.genome)
    front

let test_pareto_optimize_avoids_nan_region () =
  (* NaN objectives in half the space: no NaN point may survive to the
     returned front when finite alternatives exist *)
  let fitness x =
    if x.(0) > 0.0 then [| Float.nan; Float.nan |]
    else [| separable x; Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x |]
  in
  let front = Pareto.optimize (Emc_util.Rng.create 12) (grid5 3) ~fitness in
  cb "non-empty" true (Array.length front > 0);
  Array.iter
    (fun p ->
      cb "no NaN objectives on the front" true
        (Array.for_all (fun v -> not (Float.is_nan v)) p.Pareto.objectives))
    front

let test_pareto_counters () =
  let evals () =
    Option.value ~default:0 (Emc_obs.Metrics.counter_value "pareto.evaluations")
  in
  let before = evals () in
  let params = { Ga.default_params with pop_size = 10; generations = 5 } in
  let _ =
    Pareto.optimize ~params (Emc_util.Rng.create 13) (grid5 2)
      ~fitness:(fun x -> [| x.(0); x.(1) |])
  in
  (* initial population + one offspring population per generation *)
  Alcotest.(check int) "evaluation accounting" (10 * 6) (evals () - before)

let suite =
  [
    ("ga separable optimum", `Quick, test_ga_finds_separable_optimum);
    ("ga deterministic", `Quick, test_ga_deterministic_with_seed);
    ("ga coupled genes", `Quick, test_ga_handles_interactions);
    ("ga nan fitness is worst", `Quick, test_ga_nan_fitness_is_worst);
    ("baseline budget accounting", `Quick, test_baseline_budget_accounting);
    ("random search budget", `Quick, test_random_search_budget);
    ("hill climb unimodal", `Quick, test_hill_climb_unimodal_exact);
    ("ga vs random", `Quick, test_ga_beats_small_random_budget);
    ("searcher freezes march", `Quick, test_searcher_freezes_march);
    ("searcher guards non-physical", `Quick, test_searcher_guards_nonphysical_predictions);
    ("ga all-NaN stagnates out", `Quick, test_ga_all_nan_terminates_by_stagnation);
    ("ga crowns finite over NaN", `Quick, test_ga_mixed_nan_crowns_finite);
    ("pareto dominance", `Quick, test_pareto_dominates);
    ("pareto non-dominated sort", `Quick, test_pareto_non_dominated_sort);
    ("pareto crowding distance", `Quick, test_pareto_crowding_distance);
    ("pareto biobjective front", `Quick, test_pareto_optimize_biobjective);
    ("pareto avoids NaN region", `Quick, test_pareto_optimize_avoids_nan_region);
    ("pareto evaluation accounting", `Quick, test_pareto_counters);
  ]
