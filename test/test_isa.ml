(** ISA definition tests: register namespace, FU/latency tables, machine
    descriptions, and the post-RA scheduler. *)

open Emc_isa

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

let test_register_namespace () =
  cb "r0 is integer" false (Isa.is_fp_reg 0);
  cb "f0 is fp" true (Isa.is_fp_reg Isa.fp_base);
  ci "arg registers" 1 (Isa.r_arg 0);
  ci "arg registers (5)" 6 (Isa.r_arg 5);
  ci "fp args offset" (Isa.fp_base + 1) (Isa.f_arg 0);
  (* reserved registers stay out of the allocatable pools *)
  List.iter
    (fun r ->
      cb (Printf.sprintf "r%d not allocatable" r) false
        (List.mem r Isa.int_caller_saved || List.mem r Isa.int_callee_saved))
    [ Isa.r_ret; Isa.r_scratch; Isa.r_fp; Isa.r_sp; Isa.r_ra ];
  ci "12 callee-saved ints" 12 (List.length Isa.int_callee_saved);
  ci "15 caller-saved ints" 15 (List.length Isa.int_caller_saved)

let test_fu_classes () =
  cb "add is int alu" true (Isa.fu_of Isa.ADD = Isa.IntAlu);
  cb "mul is int mul" true (Isa.fu_of Isa.MUL = Isa.IntMul);
  cb "fadd is fp alu" true (Isa.fu_of Isa.FADD = Isa.FpAlu);
  cb "fdiv is fp mul" true (Isa.fu_of Isa.FDIV = Isa.FpMul);
  cb "load is ldst" true (Isa.fu_of Isa.LD = Isa.LdSt);
  cb "prefetch is ldst" true (Isa.fu_of Isa.PREF = Isa.LdSt);
  cb "branch class" true (Isa.fu_of Isa.BNEZ = Isa.Branch && Isa.fu_of Isa.RET = Isa.Branch)

let test_latencies () =
  ci "alu 1" 1 (Isa.latency_of Isa.ADD);
  ci "mul 3" 3 (Isa.latency_of Isa.MUL);
  ci "div 12" 12 (Isa.latency_of Isa.DIV);
  ci "fadd 2" 2 (Isa.latency_of Isa.FADD);
  ci "fmul 4" 4 (Isa.latency_of Isa.FMUL);
  ci "fdiv 12" 12 (Isa.latency_of Isa.FDIV)

let test_machine_for_width () =
  let m2 = Isa.machine_for_width 2 and m4 = Isa.machine_for_width 4 in
  ci "width 2 alus" 2 m2.Isa.n_int_alu;
  ci "width 4 alus" 4 m4.Isa.n_int_alu;
  ci "width 2 ports" 1 m2.Isa.n_ldst;
  ci "width 4 ports" 2 m4.Isa.n_ldst;
  cb "every class has at least one unit" true
    (List.for_all
       (fun c -> Isa.fu_count m2 c >= 1)
       [ Isa.IntAlu; Isa.IntMul; Isa.FpAlu; Isa.FpMul; Isa.LdSt; Isa.Branch ]);
  cb "invalid width rejected" true
    (try
       ignore (Isa.machine_for_width 0);
       false
     with Invalid_argument _ -> true)

let test_fu_index_dense () =
  let idxs =
    List.map Isa.fu_index [ Isa.IntAlu; Isa.IntMul; Isa.FpAlu; Isa.FpMul; Isa.LdSt; Isa.Branch; Isa.NoFu ]
  in
  Alcotest.(check (list int)) "dense indices" [ 0; 1; 2; 3; 4; 5; 6 ] idxs;
  ci "count matches" Isa.n_fu_classes (List.length idxs)

let test_pp_inst () =
  let s = Format.asprintf "%a" Isa.pp_inst (Isa.make Isa.ADD ~rd:3 ~rs1:1 ~rs2:2) in
  cb "mentions opcode" true (String.length s > 0 && String.sub s 0 3 = "add")

(* ---------------- post-RA scheduler ---------------- *)

(* Scheduling must preserve machine-level semantics on real programs; its
   whole point is changing instruction order, so we check behaviour, not
   layout. *)
let test_postsched_preserves_semantics () =
  List.iter
    (fun (name, src) ->
      let flags = { Emc_opt.Flags.o2 with schedule_insns2 = false } in
      let _, base_outs, prog = Helpers.machine ~flags src in
      let machine = Isa.machine_for_width 4 in
      let prog' = Emc_codegen.Postsched.run machine prog in
      let f = Emc_sim.Func.create prog' in
      ignore (Emc_sim.Func.run f);
      Alcotest.(check (list string))
        (name ^ ": outputs unchanged by post-RA scheduling")
        base_outs
        (List.map Helpers.fvalue_str (Emc_sim.Func.outputs f)))
    Test_opt.corpus

let test_postsched_keeps_branches_in_place () =
  let src = List.assoc "branches" Test_opt.corpus in
  let flags = { Emc_opt.Flags.o2 with schedule_insns2 = false } in
  let _, _, prog = Helpers.machine ~flags src in
  let branch_positions p =
    let out = ref [] in
    Array.iteri (fun i (inst : Isa.inst) -> if Isa.is_branch inst.Isa.op then out := i :: !out)
      p.Isa.insts;
    !out
  in
  let before = branch_positions prog in
  let prog' = Emc_codegen.Postsched.run (Isa.machine_for_width 4) prog in
  Alcotest.(check (list int)) "branches pinned" before (branch_positions prog')

let test_postsched_respects_spill_order () =
  (* a program whose spill code creates store->load dependences through the
     stack: any reordering bug corrupts values *)
  let parts = List.init 28 (fun i -> Printf.sprintf "let v%d = blk[0] + %d;" i i) in
  let sum = String.concat " + " (List.init 28 (fun i -> Printf.sprintf "v%d" i)) in
  let src =
    Printf.sprintf "int blk[4];\nfn main() -> int { blk[0] = 3; %s out(%s); return 0; }"
      (String.concat " " parts) sum
  in
  Helpers.check_flags_preserve_semantics ~what:"spill order"
    { Emc_opt.Flags.o2 with schedule_insns2 = true } src

let suite =
  [
    ("register namespace", `Quick, test_register_namespace);
    ("fu classes", `Quick, test_fu_classes);
    ("latencies", `Quick, test_latencies);
    ("machine for width", `Quick, test_machine_for_width);
    ("fu index dense", `Quick, test_fu_index_dense);
    ("pp inst", `Quick, test_pp_inst);
    ("postsched preserves semantics", `Quick, test_postsched_preserves_semantics);
    ("postsched pins branches", `Quick, test_postsched_keeps_branches_in_place);
    ("postsched spill order", `Quick, test_postsched_respects_spill_order);
  ]
