(** Tests for the fork-based worker pool and the parallel/cached measurement
    paths built on it: [Par.map] agrees with [Array.map] (order included),
    worker failures surface as exceptions rather than hangs, parallel
    dataset construction is bit-identical to sequential, and a warm
    persistent result cache serves a full re-run with zero simulations. *)

open Emc_core
open Emc_par

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------------- Par.map ---------------- *)

let test_map_matches_sequential () =
  let xs = Array.init 37 Fun.id in
  let f i = (i * i) + 3 in
  Alcotest.(check (array int)) "jobs=4 = Array.map" (Array.map f xs) (Par.map ~jobs:4 f xs);
  Alcotest.(check (array int)) "jobs=1 = Array.map" (Array.map f xs) (Par.map ~jobs:1 f xs);
  (* more workers than tasks *)
  let small = [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "jobs>n" (Array.map f small) (Par.map ~jobs:8 f small);
  Alcotest.(check (array int)) "empty input" [||] (Par.map ~jobs:4 f [||])

let test_map_preserves_order () =
  (* a non-commutative function of the index: any reordering of results
     across the strided slices would be visible *)
  let xs = Array.init 23 (fun i -> Printf.sprintf "t%d" i) in
  Alcotest.(check (array string)) "index-tagged strings"
    (Array.map String.uppercase_ascii xs)
    (Par.map ~jobs:5 String.uppercase_ascii xs)

let test_worker_exception_surfaces () =
  let f i = if i = 7 then failwith "boom at 7" else i in
  match Par.map ~jobs:3 f (Array.init 12 Fun.id) with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Par.Worker_error msg ->
      cb (Printf.sprintf "message mentions the exception (%s)" msg) true
        (contains ~sub:"boom at 7" msg)

let test_worker_crash_raises () =
  (* a worker that dies without marshalling anything must produce an error,
     not a hang or a partial result *)
  let f i = if i mod 2 = 1 then Unix._exit 9 else i in
  match Par.map ~jobs:2 f (Array.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Par.Worker_error msg ->
      cb (Printf.sprintf "crash reported (%s)" msg) true (String.length msg > 0)

let test_worker_killed_mid_batch () =
  (* a worker killed by a signal (not a clean exit) mid-batch: the parent
     must report the kill, not hang on the dead pipe or return a partial
     array *)
  let f i =
    if i = 5 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    i * 2
  in
  match Par.map ~jobs:3 f (Array.init 12 Fun.id) with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Par.Worker_error msg ->
      cb (Printf.sprintf "kill reported (%s)" msg) true (String.length msg > 0)

let test_crash_leaves_counters_consistent () =
  (* metrics merged from workers that did complete must still be exact:
     a crashed batch contributes nothing, and a subsequent successful
     batch on the same tables merges its counters exactly once *)
  let w = Emc_workloads.Registry.find "mcf" in
  let points =
    let rng = Emc_util.Rng.create 99 in
    Emc_doe.Doe.lhs rng Params.space_all 4
  in
  let m = Measure.create { Scale.tiny with Scale.workload_scale = 0.05; jobs = 3 } in
  let sims0 = m.Measure.simulations in
  (* same points through a crashing Par.map first: Measure state untouched *)
  (match Par.map ~jobs:2 (fun _ -> Unix._exit 7) (Array.init 4 Fun.id) with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Par.Worker_error _ -> ());
  ci "no simulations leaked from the crashed batch" sims0 m.Measure.simulations;
  let y = Measure.cycles_coded_many m w ~variant:Emc_workloads.Workload.Train points in
  ci "successful batch merges once" (Array.length points) (m.Measure.simulations - sims0);
  let m_seq = Measure.create { Scale.tiny with Scale.workload_scale = 0.05; jobs = 1 } in
  let y_seq = Measure.cycles_coded_many m_seq w ~variant:Emc_workloads.Workload.Train points in
  Alcotest.(check (array (float 0.0))) "values unaffected by the earlier crash" y_seq y

let test_default_jobs_env () =
  cb "default_jobs is positive" true (Par.default_jobs () >= 1)

(* ---------------- parallel measurement ---------------- *)

let small_scale jobs = { Scale.tiny with Scale.workload_scale = 0.05; jobs }

let design_points n =
  let rng = Emc_util.Rng.create 123 in
  Emc_doe.Doe.lhs rng Params.space_all n

let test_parallel_dataset_bit_identical () =
  let w = Emc_workloads.Registry.find "gzip" in
  let points = design_points 10 in
  let m_seq = Measure.create (small_scale 1) in
  let m_par = Measure.create (small_scale 4) in
  let d_seq = Modeling.build_dataset m_seq w ~variant:Emc_workloads.Workload.Train points in
  let d_par = Modeling.build_dataset m_par w ~variant:Emc_workloads.Workload.Train points in
  Alcotest.(check (array (float 0.0))) "bit-identical responses"
    d_seq.Emc_regress.Dataset.y d_par.Emc_regress.Dataset.y;
  ci "same simulation count" m_seq.Measure.simulations m_par.Measure.simulations;
  ci "same result-hit count" m_seq.Measure.result_hits m_par.Measure.result_hits;
  ci "same compile count" m_seq.Measure.compiles m_par.Measure.compiles

let test_parallel_dedups_repeated_points () =
  let w = Emc_workloads.Registry.find "mcf" in
  let p = design_points 4 in
  (* duplicate every point: only the unique half may hit the simulator *)
  let doubled = Array.append p p in
  let m = Measure.create (small_scale 4) in
  let y = Measure.cycles_coded_many m w ~variant:Emc_workloads.Workload.Train doubled in
  ci "one simulation per unique point" (Array.length p) m.Measure.simulations;
  ci "duplicates served from the memo" (Array.length p) m.Measure.result_hits;
  for i = 0 to Array.length p - 1 do
    Alcotest.(check (float 0.0)) (Printf.sprintf "dup %d equals original" i)
      y.(i) y.(i + Array.length p)
  done

(* ---------------- persistent result cache ---------------- *)

let with_temp_cache f =
  let path = Filename.temp_file "emc_cache" ".jsonl" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_cache_roundtrip_warm_run () =
  with_temp_cache @@ fun path ->
  let w = Emc_workloads.Registry.find "gzip" in
  let points = design_points 6 in
  let variant = Emc_workloads.Workload.Train in
  (* cold run, parallel, writing the cache *)
  let m1 = Measure.create ~cache_file:path (small_scale 4) in
  let y1 = Measure.cycles_coded_many m1 w ~variant points in
  ci "cold run simulates every point" (Array.length points) m1.Measure.simulations;
  ci "nothing preloaded on a cold run" 0 m1.Measure.preloaded;
  (* warm run: a fresh measure against the same cache performs zero
     simulations and reproduces the dataset bit-for-bit *)
  let m2 = Measure.create ~cache_file:path (small_scale 4) in
  cb "cache preloaded" true (m2.Measure.preloaded > 0);
  let y2 = Measure.cycles_coded_many m2 w ~variant points in
  Alcotest.(check (array (float 0.0))) "bit-identical across processes' runs" y1 y2;
  ci "warm run: zero simulations" 0 m2.Measure.simulations;
  ci "warm run: all points from cache" (Array.length points) m2.Measure.result_hits

let test_cache_tolerates_garbage () =
  with_temp_cache @@ fun path ->
  let w = Emc_workloads.Registry.find "gzip" in
  let flags = Emc_opt.Flags.o2 and march = Emc_sim.Config.typical in
  let m1 = Measure.create ~cache_file:path (small_scale 1) in
  let c1 = Measure.cycles m1 w ~variant:Emc_workloads.Workload.Train flags march in
  (* corrupt the file with trailing junk; valid lines must still load *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n{\"k\":\"orphan\"}\n";
  close_out oc;
  let m2 = Measure.create ~cache_file:path (small_scale 1) in
  let c2 = Measure.cycles m2 w ~variant:Emc_workloads.Workload.Train flags march in
  Alcotest.(check (float 0.0)) "value survives junk lines" c1 c2;
  ci "served from cache" 0 m2.Measure.simulations

let suite =
  [
    ("par.map matches Array.map", `Quick, test_map_matches_sequential);
    ("par.map preserves order", `Quick, test_map_preserves_order);
    ("worker exception surfaces", `Quick, test_worker_exception_surfaces);
    ("worker crash raises", `Quick, test_worker_crash_raises);
    ("worker killed mid-batch raises", `Quick, test_worker_killed_mid_batch);
    ("crash leaves counters consistent", `Slow, test_crash_leaves_counters_consistent);
    ("default jobs from env", `Quick, test_default_jobs_env);
    ("parallel dataset bit-identical", `Slow, test_parallel_dataset_bit_identical);
    ("parallel dedups repeats", `Quick, test_parallel_dedups_repeated_points);
    ("cache round-trip warm run", `Slow, test_cache_roundtrip_warm_run);
    ("cache tolerates garbage", `Quick, test_cache_tolerates_garbage);
  ]
