(** Golden cycle-count regressions for the timing model.

    The simulator's optimization contract is {e bit-identical timing}:
    performance work on the scheduling data structures (completion
    calendar, ready set, store index — see DESIGN.md "Simulator
    performance") must never change a simulated cycle. These tests pin
    whole-program cycles, every per-run counter, and the SMARTS estimate
    (cycles and ci_rel compared as [%h] hex-float strings, so the last ulp
    counts) for three workloads at both issue widths (typical = 4-wide,
    constrained = 2-wide) against values recorded on the seed engine.

    A failure here means simulated {e behavior} changed. That is only
    legitimate when the timing {e model} itself changes (a new stage, a
    different latency); in that case regenerate the table with

      dune exec bench/gen_golden.exe > /tmp/golden.ml

    and paste the result over [goldens] below, saying so in the commit. *)

open Emc_sim

type golden = {
  g_workload : string;
  g_cfg : string;
  g_scale : float;
  g_full_cycles : int;
  g_instrs : int;
  g_counters : (string * int) list;
  g_sampled_cycles : string;  (** [%h] of the SMARTS estimate *)
  g_ci_rel : string;  (** [%h] of the achieved relative CI *)
  g_units : int;
  g_detailed : bool;
}

(* recorded on the seed engine; regenerate with bench/gen_golden.exe *)
let goldens =
  [
    { g_workload = "gzip"; g_cfg = "typical"; g_scale = 0x1.999999999999ap-4;
      g_full_cycles = 53968; g_instrs = 49847;
      g_counters =
        [ ("cycles", 53968); ("committed_instrs", 49846); ("detail_instrs", 49847);
          ("issued_instrs", 49846); ("branch_mispredicts", 362); ("fetch_stall_cycles", 38328);
          ("issue_stall_cycles", 33199); ("commit_stall_cycles", 36133); ("l1i_hits", 6089);
          ("l1i_misses", 12); ("l1d_hits", 4321); ("l1d_misses", 401);
          ("l2_hits", 18); ("l2_misses", 395); ];
      g_sampled_cycles = "0x1.9a92968e41133p+15"; g_ci_rel = "0x1.3336435c35154p-4";
      g_units = 16; g_detailed = false };
    { g_workload = "gzip"; g_cfg = "constrained"; g_scale = 0x1.999999999999ap-4;
      g_full_cycles = 56281; g_instrs = 49697;
      g_counters =
        [ ("cycles", 56281); ("committed_instrs", 49696); ("detail_instrs", 49697);
          ("issued_instrs", 49696); ("branch_mispredicts", 483); ("fetch_stall_cycles", 29344);
          ("issue_stall_cycles", 26431); ("commit_stall_cycles", 27552); ("l1i_hits", 6089);
          ("l1i_misses", 12); ("l1d_hits", 4277); ("l1d_misses", 463);
          ("l2_hits", 80); ("l2_misses", 395); ];
      g_sampled_cycles = "0x1.a8b3d604c2468p+15"; g_ci_rel = "0x1.3320386ba6b48p-4";
      g_units = 16; g_detailed = false };
    { g_workload = "mcf"; g_cfg = "typical"; g_scale = 0x1.47ae147ae147bp-4;
      g_full_cycles = 527469; g_instrs = 72195;
      g_counters =
        [ ("cycles", 527469); ("committed_instrs", 72194); ("detail_instrs", 72195);
          ("issued_instrs", 72194); ("branch_mispredicts", 8); ("fetch_stall_cycles", 497277);
          ("issue_stall_cycles", 490936); ("commit_stall_cycles", 502969); ("l1i_hits", 12023);
          ("l1i_misses", 7); ("l1d_hits", 17); ("l1d_misses", 12012);
          ("l2_hits", 3269); ("l2_misses", 8750); ];
      g_sampled_cycles = "0x1.034e253f8f747p+19"; g_ci_rel = "0x1.954d5e69f0a3ap-4";
      g_units = 24; g_detailed = false };
    { g_workload = "mcf"; g_cfg = "constrained"; g_scale = 0x1.47ae147ae147bp-4;
      g_full_cycles = 320285; g_instrs = 72191;
      g_counters =
        [ ("cycles", 320285); ("committed_instrs", 72190); ("detail_instrs", 72191);
          ("issued_instrs", 72190); ("branch_mispredicts", 8); ("fetch_stall_cycles", 284172);
          ("issue_stall_cycles", 271899); ("commit_stall_cycles", 283916); ("l1i_hits", 12023);
          ("l1i_misses", 7); ("l1d_hits", 16); ("l1d_misses", 12013);
          ("l2_hits", 1852); ("l2_misses", 10168); ];
      g_sampled_cycles = "0x1.37c82ca3d70a4p+18"; g_ci_rel = "0x1.39741ab52765cp-5";
      g_units = 24; g_detailed = false };
    { g_workload = "mesa"; g_cfg = "typical"; g_scale = 0x1.999999999999ap-4;
      g_full_cycles = 276072; g_instrs = 338541;
      g_counters =
        [ ("cycles", 276072); ("committed_instrs", 338540); ("detail_instrs", 338541);
          ("issued_instrs", 338540); ("branch_mispredicts", 1773); ("fetch_stall_cycles", 177774);
          ("issue_stall_cycles", 144080); ("commit_stall_cycles", 159966); ("l1i_hits", 23998);
          ("l1i_misses", 17); ("l1d_hits", 95420); ("l1d_misses", 8376);
          ("l2_hits", 6116); ("l2_misses", 2277); ];
      g_sampled_cycles = "0x1.0906091e9b5a2p+18"; g_ci_rel = "0x1.5ff40baa0581ep-6";
      g_units = 112; g_detailed = false };
    { g_workload = "mesa"; g_cfg = "constrained"; g_scale = 0x1.999999999999ap-4;
      g_full_cycles = 315409; g_instrs = 332841;
      g_counters =
        [ ("cycles", 315409); ("committed_instrs", 332840); ("detail_instrs", 332841);
          ("issued_instrs", 332840); ("branch_mispredicts", 1824); ("fetch_stall_cycles", 133046);
          ("issue_stall_cycles", 106767); ("commit_stall_cycles", 120460); ("l1i_hits", 24000);
          ("l1i_misses", 17); ("l1d_hits", 83516); ("l1d_misses", 14580);
          ("l2_hits", 12316); ("l2_misses", 2281); ];
      g_sampled_cycles = "0x1.349e6f924acf3p+18"; g_ci_rel = "0x1.1c261ba4d9516p-6";
      g_units = 55; g_detailed = false };
  ]

let cfg_of = function
  | "typical" -> Config.typical
  | "constrained" -> Config.constrained
  | c -> Alcotest.failf "unknown golden config %S" c

(* Mirrors bench/gen_golden.ml exactly: one full detailed run (cycles +
   counters), then one sampled run on a fresh simulator. *)
let check_golden g () =
  let w = Emc_workloads.Registry.find g.g_workload in
  let cfg = cfg_of g.g_cfg in
  let prog =
    Emc_codegen.Compiler.compile_source ~issue_width:cfg.Config.issue_width Emc_opt.Flags.o2
      w.Emc_workloads.Workload.source
  in
  let arrays =
    w.Emc_workloads.Workload.arrays ~scale:g.g_scale ~variant:Emc_workloads.Workload.Train
  in
  let setup = Emc_core.Measure.setup_func arrays in
  let ooo = Ooo.create cfg prog in
  setup (Ooo.func ooo);
  let cycles = Ooo.run_to_completion ooo in
  Alcotest.(check int) "full-detail cycles" g.g_full_cycles cycles;
  Alcotest.(check int) "dynamic instructions" g.g_instrs (Ooo.func ooo).Func.icount;
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "counter key order" k k';
      Alcotest.(check int) ("counter " ^ k) v v')
    g.g_counters (Ooo.counters ooo);
  let smp = Smarts.run_sampled cfg prog ~setup in
  Alcotest.(check string) "sampled cycles (bit-exact)" g.g_sampled_cycles
    (Printf.sprintf "%h" smp.Smarts.cycles);
  Alcotest.(check string) "ci_rel (bit-exact)" g.g_ci_rel
    (Printf.sprintf "%h" smp.Smarts.ci_rel);
  Alcotest.(check int) "sampled units" g.g_units smp.Smarts.sampled_units;
  Alcotest.(check bool) "sampling engaged" g.g_detailed smp.Smarts.detailed

let suite =
  List.map
    (fun g ->
      (Printf.sprintf "%s @ %s bit-identical" g.g_workload g.g_cfg, `Quick, check_golden g))
    goldens
