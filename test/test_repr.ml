(** Model representations and artifacts: the serialized form of a fitted
    model must reproduce its predictions bit for bit after a full
    JSON-text round trip, and artifact loading must be total — corrupt
    files and version mismatches come back as one-line [Error]s. *)

open Emc_regress
open Emc_core
module Json = Emc_obs.Json

let cb = Alcotest.(check bool)

let rng0 () = Emc_util.Rng.create 42

let sample rng k n f =
  let x = Array.init n (fun _ -> Array.init k (fun _ -> Emc_util.Rng.float rng 2.0 -. 1.0)) in
  Dataset.create x (Array.map f x)

(* probe points deliberately include corners outside the training cloud so
   clamped models exercise both branches of the envelope *)
let probes k =
  let rng = Emc_util.Rng.create 97 in
  Array.init 64 (fun i ->
      Array.init k (fun _ ->
          if i < 4 then (if i mod 2 = 0 then -1.5 else 1.5)
          else Emc_util.Rng.float rng 2.4 -. 1.2))

(* The whole point of the subsystem: predict → to_json → to_string → parse
   → of_json → eval must be the identity on every output bit. *)
let check_roundtrip ~what (m : Model.t) =
  let repr =
    match m.Model.repr with
    | Some r -> r
    | None -> Alcotest.failf "%s: fitted model carries no repr" what
  in
  let text = Json.to_string (Repr.to_json repr) in
  let reloaded =
    match Json.parse text with
    | Error e -> Alcotest.failf "%s: emitted JSON does not parse: %s" what e
    | Ok j -> (
        match Repr.of_json j with
        | Error e -> Alcotest.failf "%s: repr does not reload: %s" what e
        | Ok r -> r)
  in
  fun dims ->
    Array.iteri
      (fun i x ->
        Alcotest.(check int64)
          (Printf.sprintf "%s: bits at probe %d" what i)
          (Int64.bits_of_float (m.Model.predict x))
          (Int64.bits_of_float (Repr.eval reloaded x)))
      (probes dims)

let f3 x = 50.0 +. (7.0 *. x.(0)) -. (3.0 *. x.(1) *. x.(2)) +. (2.0 *. x.(1) *. x.(1))

let test_linear_roundtrip () =
  let d = sample (rng0 ()) 3 60 f3 in
  check_roundtrip ~what:"linear" (Linear.fit ~interactions:false d) 3;
  check_roundtrip ~what:"linear+interactions" (Linear.fit ~interactions:true d) 3

let test_rank_roundtrip () =
  let d = sample (rng0 ()) 3 60 f3 in
  check_roundtrip ~what:"rank" (Rank.fit ~rng:(rng0 ()) d) 3;
  check_roundtrip ~what:"rank no-interactions" (Rank.fit ~interactions:false ~rng:(rng0 ()) d) 3;
  (* strictness: a rank repr with no coefficients must not load *)
  let bad =
    Json.Obj
      [ ("family", Json.Str "rank"); ("interactions", Json.Bool true);
        ("beta", Json.List []) ]
  in
  cb "empty beta rejected" true (Result.is_error (Repr.of_json bad))

let test_mars_roundtrip () =
  let d = sample (rng0 ()) 3 120 f3 in
  check_roundtrip ~what:"mars" (Mars.fit d) 3

let test_rbf_roundtrip () =
  let d = sample (rng0 ()) 3 80 f3 in
  List.iter
    (fun k ->
      check_roundtrip
        ~what:("rbf:" ^ Rbf.kernel_name k)
        (Rbf.fit ~kernel:k ~size_grid:[ 6; 10 ] d)
        3)
    [ Rbf.Gaussian; Rbf.Multiquadric; Rbf.InverseMultiquadric ]

let test_clamped_roundtrip () =
  let d = sample (rng0 ()) 3 80 f3 in
  List.iter
    (fun t ->
      let m = Modeling.fit t d in
      (match m.Model.repr with
      | Some (Repr.Clamp _) -> ()
      | Some _ -> Alcotest.failf "%s: Modeling.fit repr is not clamped" (Modeling.technique_name t)
      | None -> Alcotest.failf "%s: Modeling.fit dropped the repr" (Modeling.technique_name t));
      check_roundtrip ~what:("clamped " ^ Modeling.technique_name t) m 3)
    Modeling.all_techniques

let test_eval_matches_predict_exactly () =
  (* same check without serialization: predict IS Repr.eval repr *)
  let d = sample (rng0 ()) 4 90 (fun x -> 10.0 +. x.(0) -. (2.0 *. x.(3))) in
  let m = Rbf.fit d in
  let repr = Option.get m.Model.repr in
  Array.iter
    (fun x ->
      Alcotest.(check int64) "predict = eval repr"
        (Int64.bits_of_float (m.Model.predict x))
        (Int64.bits_of_float (Repr.eval repr x)))
    (probes 4)

(* The serving hot path's compiled evaluator (hoisted dispatch, reused
   feature scratch) must agree with [eval] on every output bit, for
   every family, including under scratch reuse across calls and under
   the Modeling clamp. *)
let test_compile_matches_eval_exactly () =
  let d = sample (rng0 ()) 3 80 f3 in
  let reprs =
    [ ("linear", Option.get (Linear.fit ~interactions:false d).Model.repr);
      ("linear+interactions", Option.get (Linear.fit ~interactions:true d).Model.repr);
      ("rank", Option.get (Rank.fit ~rng:(rng0 ()) d).Model.repr);
      ("mars", Option.get (Mars.fit (sample (rng0 ()) 3 120 f3)).Model.repr);
      ("rbf", Option.get (Rbf.fit ~size_grid:[ 6 ] d).Model.repr) ]
    @ List.map
        (fun t ->
          ("clamped " ^ Modeling.technique_name t,
           Option.get (Modeling.fit t d).Model.repr))
        Modeling.all_techniques
  in
  List.iter
    (fun (what, repr) ->
      let f = Repr.compile repr in
      (* two passes over the probes: the second exercises scratch reuse *)
      for pass = 1 to 2 do
        Array.iteri
          (fun i x ->
            Alcotest.(check int64)
              (Printf.sprintf "%s: compile = eval at probe %d pass %d" what i pass)
              (Int64.bits_of_float (Repr.eval repr x))
              (Int64.bits_of_float (f x)))
          (probes 3)
      done)
    reprs

(* ---------------- artifacts ---------------- *)

let tmpfile () = Filename.temp_file "emc_artifact" ".json"

let specs3 =
  Array.init 3 (fun i ->
      { Params.name = Printf.sprintf "p%d" i; levels = [| 0.0; 1.0; 2.0 |]; log2 = false })

let artifact_of_fit () =
  let d = sample (rng0 ()) 3 80 f3 in
  let m = Modeling.fit Modeling.Rbf d in
  match
    Artifact.of_model ~workload:"synthetic" ~scale:"tiny" ~seed:42 ~train_n:80 ~test_mape:1.5
      ~specs:specs3 m
  with
  | Ok a -> (m, a)
  | Error e -> Alcotest.failf "of_model: %s" e

let test_artifact_save_load_bits () =
  let m, a = artifact_of_fit () in
  let path = tmpfile () in
  Artifact.save a path;
  match Artifact.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok b ->
      Sys.remove path;
      Alcotest.(check string) "workload" a.Artifact.workload b.Artifact.workload;
      Alcotest.(check string) "technique" a.Artifact.technique b.Artifact.technique;
      Alcotest.(check int) "seed" a.Artifact.seed b.Artifact.seed;
      Alcotest.(check int) "train_n" a.Artifact.train_n b.Artifact.train_n;
      Alcotest.(check int) "dims" 3 (Artifact.dims b);
      cb "test_mape preserved" true (b.Artifact.test_mape = Some 1.5);
      let reloaded = Artifact.model b in
      Array.iter
        (fun x ->
          Alcotest.(check int64) "loaded artifact predicts bit-identically"
            (Int64.bits_of_float (m.Emc_regress.Model.predict x))
            (Int64.bits_of_float (reloaded.Emc_regress.Model.predict x)))
        (probes 3)

(* Two-response artifacts: the "extra" reprs round-trip bit-exactly, and
   artifacts without them serialize byte-identically to the pre-extra
   format (no stray field). *)
let test_artifact_extra_responses () =
  let d = sample (rng0 ()) 3 80 f3 in
  let m = Modeling.fit Modeling.Rbf d in
  let energy = Modeling.fit Modeling.Linear d in
  let er = Option.get energy.Emc_regress.Model.repr in
  (match
     Artifact.of_model ~workload:"synthetic" ~scale:"tiny" ~seed:42 ~train_n:80
       ~specs:specs3 ~extra:[ ("energy", er) ] m
   with
  | Error e -> Alcotest.failf "of_model: %s" e
  | Ok a -> (
      let path = tmpfile () in
      Artifact.save a path;
      match Artifact.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok b ->
          Sys.remove path;
          let r = Option.get (Artifact.extra_repr b "energy") in
          cb "unknown extra name is None" true (Artifact.extra_repr b "area" = None);
          Array.iter
            (fun x ->
              Alcotest.(check int64) "extra response round-trips bit-exactly"
                (Int64.bits_of_float (energy.Emc_regress.Model.predict x))
                (Int64.bits_of_float (Repr.eval r x)))
            (probes 3)));
  (* absence of extras leaves the serialized form without the field *)
  let _, plain = artifact_of_fit () in
  cb "no extra field when empty" true
    (Json.member "extra" (Artifact.to_json plain) = None)

let test_artifact_validation () =
  let _, a = artifact_of_fit () in
  cb "right arity ok" true (Artifact.validate_point a [| 0.1; 0.2; 0.3 |] = Ok ());
  cb "wrong arity rejected" true (Result.is_error (Artifact.validate_point a [| 0.1 |]));
  cb "non-finite rejected" true
    (Result.is_error (Artifact.validate_point a [| 0.1; Float.nan; 0.3 |]));
  (match Artifact.code_raw a [| 0.0; 1.0; 2.0 |] with
  | Ok c ->
      Alcotest.(check (float 1e-9)) "raw low codes to -1" (-1.0) c.(0);
      Alcotest.(check (float 1e-9)) "raw high codes to +1" 1.0 c.(2)
  | Error e -> Alcotest.failf "code_raw: %s" e);
  cb "code_raw arity checked" true (Result.is_error (Artifact.code_raw a [| 0.0 |]))

let test_artifact_rejects_reprless_model () =
  let stub =
    { Emc_regress.Model.technique = "stub"; predict = (fun _ -> 0.0); n_params = 0; terms = [];
      repr = None }
  in
  cb "stub model rejected" true
    (Result.is_error
       (Artifact.of_model ~workload:"w" ~scale:"tiny" ~seed:1 ~train_n:1 stub))

let expect_load_error ~what path pattern =
  match Artifact.load path with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" what
  | Error e ->
      let lower = String.lowercase_ascii e in
      let found =
        let n = String.length lower and m = String.length pattern in
        let rec go i = i + m <= n && (String.sub lower i m = pattern || go (i + 1)) in
        go 0
      in
      cb (Printf.sprintf "%s: diagnostic %S mentions %S" what e pattern) true found;
      cb (what ^ ": diagnostic is one line") true (not (String.contains e '\n'))

let write path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_artifact_load_errors () =
  let _, a = artifact_of_fit () in
  let path = tmpfile () in
  write path "{ not json";
  expect_load_error ~what:"corrupt" path "json";
  write path "[1,2,3]";
  expect_load_error ~what:"non-object" path "format";
  write path {|{"format":"something-else","version":1}|};
  expect_load_error ~what:"wrong format" path "format";
  (* a version from the future must fail with a version diagnostic, even
     when the rest of the document is a perfectly good artifact *)
  (match Artifact.to_json a with
  | Json.Obj kvs ->
      let bumped =
        Json.Obj
          (List.map (function "version", _ -> ("version", Json.Int 99) | kv -> kv) kvs)
      in
      write path (Json.to_string bumped)
  | _ -> Alcotest.fail "artifact JSON is not an object");
  expect_load_error ~what:"future version" path "version 99";
  Sys.remove path;
  expect_load_error ~what:"missing file" path "no such file"

let test_artifact_version_constant () =
  let _, a = artifact_of_fit () in
  match Artifact.to_json a with
  | Json.Obj kvs ->
      cb "format header present" true
        (List.assoc_opt "format" kvs = Some (Json.Str "emc-model"));
      cb "version header present" true
        (List.assoc_opt "version" kvs = Some (Json.Int Artifact.current_version))
  | _ -> Alcotest.fail "artifact JSON is not an object"

let test_repr_of_json_strictness () =
  let bad =
    [
      ("unknown family", {|{"family":"spline"}|});
      ("missing fields", {|{"family":"linear","interactions":false}|});
      ("malformed float", {|{"family":"linear","interactions":false,"beta":["zz"],"mu":"0x0p+0","sd":"0x1p+0"}|});
      ( "radii/centers mismatch",
        {|{"family":"rbf","kernel":"gaussian","centers":[["0x0p+0"]],"radii":[],"weights":["0x0p+0","0x1p+0"],"mu":"0x0p+0","sd":"0x1p+0"}|}
      );
    ]
  in
  List.iter
    (fun (what, text) ->
      match Json.parse text with
      | Error e -> Alcotest.failf "%s: test fixture does not parse: %s" what e
      | Ok j -> cb what true (Result.is_error (Repr.of_json j)))
    bad

let suite =
  [
    Alcotest.test_case "linear round-trips bit-for-bit" `Quick test_linear_roundtrip;
    Alcotest.test_case "mars round-trips bit-for-bit" `Quick test_mars_roundtrip;
    Alcotest.test_case "rank round-trips bit-for-bit" `Quick test_rank_roundtrip;
    Alcotest.test_case "rbf round-trips bit-for-bit (all kernels)" `Quick test_rbf_roundtrip;
    Alcotest.test_case "clamped models round-trip bit-for-bit" `Quick test_clamped_roundtrip;
    Alcotest.test_case "predict is Repr.eval" `Quick test_eval_matches_predict_exactly;
    Alcotest.test_case "compile equals eval bit-for-bit" `Quick
      test_compile_matches_eval_exactly;
    Alcotest.test_case "artifact save/load is bit-exact" `Quick test_artifact_save_load_bits;
    Alcotest.test_case "artifact extra responses round-trip" `Quick
      test_artifact_extra_responses;
    Alcotest.test_case "artifact validates points" `Quick test_artifact_validation;
    Alcotest.test_case "artifact rejects repr-less models" `Quick
      test_artifact_rejects_reprless_model;
    Alcotest.test_case "artifact load errors are total" `Quick test_artifact_load_errors;
    Alcotest.test_case "artifact carries format/version header" `Quick
      test_artifact_version_constant;
    Alcotest.test_case "repr of_json is strict" `Quick test_repr_of_json_strictness;
  ]
