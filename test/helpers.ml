(** Shared helpers for the test suite: compile MiniC snippets, run them under
    the IR interpreter and the machine-level functional simulator, and
    compare observable outputs. *)

let value_str = function
  | Emc_ir.Interp.VI v -> string_of_int v
  | Emc_ir.Interp.VF f -> Printf.sprintf "%h" f

let fvalue_str = function
  | Emc_sim.Func.VI v -> string_of_int v
  | Emc_sim.Func.VF f -> Printf.sprintf "%h" f

(** Parse + typecheck + lower; raises on failure. *)
let compile_ir src = Emc_lang.Minic.compile_exn src

let set_interp_arrays st arrays =
  List.iter
    (fun (name, data) ->
      match data with
      | Emc_workloads.Workload.DInt a ->
          Array.iteri (fun i v -> Emc_ir.Interp.set_global_int st name i v) a
      | Emc_workloads.Workload.DFloat a ->
          Array.iteri (fun i v -> Emc_ir.Interp.set_global_float st name i v) a)
    arrays

let set_func_arrays f arrays =
  List.iter
    (fun (name, data) ->
      match data with
      | Emc_workloads.Workload.DInt a ->
          Array.iteri (fun i v -> Emc_sim.Func.set_global_int f name i v) a
      | Emc_workloads.Workload.DFloat a ->
          Array.iteri (fun i v -> Emc_sim.Func.set_global_float f name i v) a)
    arrays

(** Run the IR interpreter on [src]'s main; returns (ret, outputs-as-strings). *)
let interp ?(arrays = []) src =
  let ir = compile_ir src in
  let st = Emc_ir.Interp.create ir in
  set_interp_arrays st arrays;
  let res = Emc_ir.Interp.run st ~func:"main" ~args:[] in
  (res.ret, List.map value_str res.outputs)

let interp_outputs ?arrays src = snd (interp ?arrays src)

let interp_ret ?arrays src =
  match fst (interp ?arrays src) with
  | Some (Emc_ir.Interp.VI v) -> v
  | _ -> Alcotest.fail "expected integer return from main"

(** Optimize [src] with [flags], generate machine code, run the functional
    simulator; returns (ret, outputs-as-strings, program). *)
let machine ?(arrays = []) ?(flags = Emc_opt.Flags.o0) ?(issue_width = 4) src =
  let ir = compile_ir src in
  let opt = Emc_opt.Pipeline.optimize ~issue_width flags ir in
  Emc_ir.Verify.check_program opt;
  let prog =
    Emc_codegen.Codegen.emit_program ~omit_frame_pointer:flags.Emc_opt.Flags.omit_frame_pointer opt
  in
  let prog =
    if flags.Emc_opt.Flags.schedule_insns2 then
      Emc_codegen.Postsched.run (Emc_isa.Isa.machine_for_width issue_width) prog
    else prog
  in
  let f = Emc_sim.Func.create prog in
  set_func_arrays f arrays;
  ignore (Emc_sim.Func.run f);
  (Emc_sim.Func.return_value f, List.map fvalue_str (Emc_sim.Func.outputs f), prog)

(** Assert that [src] behaves identically under the interpreter and under
    compilation at [flags] (outputs and return value). *)
let check_flags_preserve_semantics ?(arrays = []) ~what flags src =
  let ret, outs = interp ~arrays src in
  let mret, mouts, _ = machine ~arrays ~flags src in
  Alcotest.(check (list string)) (what ^ ": outputs") outs mouts;
  match ret with
  | Some (Emc_ir.Interp.VI v) -> Alcotest.(check int) (what ^ ": return") v mret
  | _ -> ()

(** Optimize the IR at [flags] and check the optimized IR still matches the
    unoptimized interpretation. *)
let check_ir_preserve_semantics ?(arrays = []) ~what flags src =
  let ref_ret, ref_outs = interp ~arrays src in
  let ir = compile_ir src in
  let opt = Emc_opt.Pipeline.optimize ~issue_width:4 flags ir in
  Emc_ir.Verify.check_program opt;
  let st = Emc_ir.Interp.create opt in
  set_interp_arrays st arrays;
  let res = Emc_ir.Interp.run st ~func:"main" ~args:[] in
  Alcotest.(check (list string)) (what ^ ": outputs") ref_outs (List.map value_str res.outputs);
  match (ref_ret, res.ret) with
  | Some (Emc_ir.Interp.VI a), Some (Emc_ir.Interp.VI b) ->
      Alcotest.(check int) (what ^ ": return") a b
  | _ -> ()

(** A pseudo-random valid flag configuration, for differential testing. *)
let random_flags rng =
  let b () = Emc_util.Rng.bool rng in
  {
    Emc_opt.Flags.inline_functions = b ();
    unroll_loops = b ();
    schedule_insns2 = b ();
    loop_optimize = b ();
    gcse = b ();
    strength_reduce = b ();
    omit_frame_pointer = b ();
    reorder_blocks = b ();
    prefetch_loop_arrays = b ();
    max_inline_insns_auto = Emc_util.Rng.range rng 50 150;
    inline_unit_growth = Emc_util.Rng.range rng 25 75;
    inline_call_cost = Emc_util.Rng.range rng 12 20;
    max_unroll_times = Emc_util.Rng.range rng 4 12;
    max_unrolled_insns = Emc_util.Rng.range rng 100 300;
  }

(** Count instructions in the compiled program satisfying [p]. *)
let count_machine_instrs p (prog : Emc_isa.Isa.program) =
  Array.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 prog.Emc_isa.Isa.insts

let count_ir_instrs p (ir : Emc_ir.Ir.program) =
  List.fold_left
    (fun acc (_, f) ->
      Array.fold_left
        (fun acc (b : Emc_ir.Ir.block) ->
          List.fold_left (fun acc i -> if p i then acc + 1 else acc) acc b.instrs)
        acc f.Emc_ir.Ir.blocks)
    0 ir.Emc_ir.Ir.funcs
