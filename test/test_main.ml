let () =
  Alcotest.run "emc"
    [
      ("util", Test_util.suite);
      ("linalg", Test_linalg.suite);
      ("lang", Test_lang.suite);
      ("ir", Test_ir.suite);
      ("opt", Test_opt.suite);
      ("codegen", Test_codegen.suite);
      ("sim", Test_sim.suite);
      ("sim-golden", Test_sim_golden.suite);
      ("isa", Test_isa.suite);
      ("doe", Test_doe.suite);
      ("regress", Test_regress.suite);
      ("repr", Test_repr.suite);
      ("search", Test_search.suite);
      ("serve", Test_serve.suite);
      ("loadgen", Test_loadgen.suite);
      ("workloads", Test_workloads.suite);
      ("par", Test_par.suite);
      ("fleet", Test_fleet.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("diff", Test_diff.suite);
    ]
