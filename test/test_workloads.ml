(** Workload tests: golden output checksums (pinned — any compiler,
    interpreter or input-generation change that alters observable behaviour
    fails here), train/ref input distinctness, and machine-vs-interpreter
    differential checks at the optimization levels the experiments use. *)

open Emc_workloads

type variant_t = Train | Ref

let to_variant = function Train -> Workload.Train | Ref -> Workload.Ref

(* golden outputs at workload scale 0.1, from the reference interpreter *)
let goldens =
  [
    ("164.gzip", Train, [ "330"; "140"; "610"; "53907" ]);
    ("164.gzip", Ref, [ "559"; "311"; "1181"; "116937" ]);
    ("175.vpr", Train, [ "138" ]);
    ("175.vpr", Ref, [ "211" ]);
    ("177.mesa", Train, [ "2754"; "0x1.5025c4b23ce4ap+9" ]);
    ("177.mesa", Ref, [ "5556"; "0x1.60e4a1e18f0a5p+10" ]);
    ("179.art", Train, [ "53"; "3"; "0x1.f28a8f665ea2ap-2" ]);
    ("179.art", Ref, [ "88"; "4"; "0x1.a5589ddcf2c7ap-2" ]);
    ("181.mcf", Train, [ "3459"; "34313" ]);
    ("181.mcf", Ref, [ "3819"; "91760" ]);
    ("255.vortex", Train, [ "303"; "39"; "241"; "10"; "12546" ]);
    ("255.vortex", Ref, [ "564"; "106"; "454"; "27"; "90104" ]);
    ("256.bzip2", Train, [ "31147"; "13769"; "278" ]);
    ("256.bzip2", Ref, [ "57916"; "19161"; "495" ]);
  ]

let test_golden_outputs () =
  List.iter
    (fun (name, variant, expected) ->
      let w = Registry.find name in
      let arrays = w.arrays ~scale:0.1 ~variant:(to_variant variant) in
      let outs = Helpers.interp_outputs ~arrays w.source in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%s" name (match variant with Train -> "train" | Ref -> "ref"))
        expected outs)
    goldens

let test_registry () =
  Alcotest.(check int) "seven workloads" 7 (List.length Registry.all);
  Alcotest.(check string) "find by short name" "179.art" (Registry.find "art").Workload.name;
  Alcotest.(check string) "find by full name" "181.mcf" (Registry.find "181.mcf").Workload.name;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Registry.find "nonesuch");
       false
     with Invalid_argument _ -> true)

let test_train_ref_differ () =
  List.iter
    (fun (w : Workload.t) ->
      let t = Helpers.interp_outputs ~arrays:(w.arrays ~scale:0.1 ~variant:Workload.Train) w.source in
      let r = Helpers.interp_outputs ~arrays:(w.arrays ~scale:0.1 ~variant:Workload.Ref) w.source in
      Alcotest.(check bool) (w.name ^ ": train and ref differ") true (t <> r))
    Registry.all

let test_input_generation_deterministic () =
  List.iter
    (fun (w : Workload.t) ->
      let a = w.arrays ~scale:0.2 ~variant:Workload.Train in
      let b = w.arrays ~scale:0.2 ~variant:Workload.Train in
      Alcotest.(check bool) (w.name ^ ": inputs deterministic") true (a = b))
    Registry.all

let test_scale_changes_work () =
  (* scaling down must shrink dynamic instruction counts *)
  List.iter
    (fun (w : Workload.t) ->
      let dyn scale =
        let arrays = w.arrays ~scale ~variant:Workload.Train in
        let ir = Helpers.compile_ir w.source in
        let st = Emc_ir.Interp.create ir in
        Helpers.set_interp_arrays st arrays;
        (Emc_ir.Interp.run st ~func:"main" ~args:[]).Emc_ir.Interp.dyn_instrs
      in
      let small = dyn 0.05 and big = dyn 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: scale shrinks work (%d vs %d)" w.name small big)
        true (small < big))
    Registry.all

(* the heavyweight differential net: every workload at O2/O3 machine-level
   must match the interpreter bit for bit *)
let test_differential_o2_o3 () =
  List.iter
    (fun (w : Workload.t) ->
      let arrays = w.arrays ~scale:0.05 ~variant:Workload.Train in
      List.iter
        (fun (ln, flags) ->
          Helpers.check_flags_preserve_semantics ~arrays ~what:(w.name ^ " @ " ^ ln) flags
            w.source)
        [ ("O2", Emc_opt.Flags.o2); ("O3", Emc_opt.Flags.o3) ])
    Registry.all

let prop_differential_random_flags =
  QCheck.Test.make ~name:"workloads correct under random flags (machine vs interp)" ~count:12
    QCheck.(pair (int_range 0 100_000) (int_range 0 6))
    (fun (seed, pick) ->
      let rng = Emc_util.Rng.create seed in
      let flags = Helpers.random_flags rng in
      let issue_width = if Emc_util.Rng.bool rng then 2 else 4 in
      let w = List.nth Registry.all pick in
      let arrays = w.Workload.arrays ~scale:0.04 ~variant:Workload.Train in
      let _, ref_outs = Helpers.interp ~arrays w.Workload.source in
      let _, mouts, _ = Helpers.machine ~arrays ~flags ~issue_width w.Workload.source in
      mouts = ref_outs)

let suite =
  [
    ("golden outputs", `Quick, test_golden_outputs);
    ("registry", `Quick, test_registry);
    ("train/ref inputs differ", `Quick, test_train_ref_differ);
    ("input generation deterministic", `Quick, test_input_generation_deterministic);
    ("scale shrinks work", `Quick, test_scale_changes_work);
    ("differential O2/O3", `Slow, test_differential_o2_o3);
    QCheck_alcotest.to_alcotest prop_differential_random_flags;
  ]
