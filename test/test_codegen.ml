(** Code-generation tests: register allocation (calling-convention
    correctness, spilling, the caller-saved-across-call hazard), frame
    construction, parallel argument moves, and machine-vs-interpreter
    differential checks. *)

open Emc_opt

let ci = Alcotest.(check int)

(* regression for the crosses-call bug: a parameter used after a nested call
   must survive the callee clobbering the argument registers *)
let test_param_survives_call () =
  let src =
    {|
fn clobber(a: int, b: int, c: int, d: int, e: int, f: int) -> int {
  return a + b + c + d + e + f;
}
fn middle(k: int, v: int) -> int {
  let t = clobber(9, 8, 7, 6, 5, 4);
  return k * 1000 + v * 10 + t;
}
fn main() -> int {
  out(middle(3, 2));
  return middle(1, 2);
}
|}
  in
  Helpers.check_flags_preserve_semantics ~what:"param across call" Flags.o0 src;
  Helpers.check_flags_preserve_semantics ~what:"param across call O2" Flags.o2 src

let test_deep_call_chain () =
  let src =
    {|
fn f4(x: int) -> int { return x + 4; }
fn f3(x: int) -> int { return f4(x) * 3; }
fn f2(x: int) -> int { return f3(x) + f4(x); }
fn f1(x: int) -> int { return f2(x) - f3(x) + x; }
fn main() -> int {
  let s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + f1(i); }
  out(s);
  return s;
}
|}
  in
  List.iter
    (fun (n, fl) -> Helpers.check_flags_preserve_semantics ~what:("deep chain " ^ n) fl src)
    [ ("O0", Flags.o0); ("O2", Flags.o2); ("O2-fp", { Flags.o2 with omit_frame_pointer = false }) ]

(* more live values than physical registers: must spill correctly *)
let test_spilling () =
  let src =
    {|
fn main() -> int {
  let a1 = 1; let a2 = 2; let a3 = 3; let a4 = 4; let a5 = 5;
  let a6 = 6; let a7 = 7; let a8 = 8; let a9 = 9; let a10 = 10;
  let a11 = 11; let a12 = 12; let a13 = 13; let a14 = 14; let a15 = 15;
  let a16 = 16; let a17 = 17; let a18 = 18; let a19 = 19; let a20 = 20;
  let a21 = 21; let a22 = 22; let a23 = 23; let a24 = 24; let a25 = 25;
  let a26 = 26; let a27 = 27; let a28 = 28; let a29 = 29; let a30 = 30;
  let b = a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9 + a10
        + a11 + a12 + a13 + a14 + a15 + a16 + a17 + a18 + a19 + a20
        + a21 + a22 + a23 + a24 + a25 + a26 + a27 + a28 + a29 + a30;
  let c = a30 * a1 + a29 * a2 + a28 * a3 + a27 * a4 + a26 * a5;
  out(b);
  out(c);
  return b + c;
}
|}
  in
  (* defeat constant folding by passing values through an array *)
  let src = String.concat "" [ "int blk[1];\n"; src ] in
  Helpers.check_flags_preserve_semantics ~what:"spilling O0" Flags.o0 src;
  Helpers.check_flags_preserve_semantics ~what:"spilling O2" Flags.o2 src

let test_fp_spilling () =
  (* heavy-FP straight-line program built programmatically: 24 simultaneously
     live doubles exceed the FP register file *)
  let parts =
    List.init 24 (fun i -> Printf.sprintf "let f%d = float(%d) * 1.5;" i (i + 1))
  in
  let sum = String.concat " + " (List.init 24 (fun i -> Printf.sprintf "f%d" i)) in
  let src =
    Printf.sprintf "fn main() -> int { %s let total = %s; out(total); return int(total); }"
      (String.concat " " parts) sum
  in
  Helpers.check_flags_preserve_semantics ~what:"fp spilling" Emc_opt.Flags.o0 src;
  Helpers.check_flags_preserve_semantics ~what:"fp spilling O2" Emc_opt.Flags.o2 src

(* six arguments of each kind, in an order that forces parallel-move cycles *)
let test_many_args_and_moves () =
  let src =
    {|
fn mix(a: int, b: int, c: int, d: int, e: int, f: int) -> int {
  return a + 2*b + 3*c + 4*d + 5*e + 6*f;
}
fn swapped(a: int, b: int, c: int, d: int, e: int, f: int) -> int {
  return mix(f, e, d, c, b, a);
}
fn main() -> int {
  out(swapped(1, 2, 3, 4, 5, 6));
  return swapped(10, 20, 30, 40, 50, 60);
}
|}
  in
  Helpers.check_flags_preserve_semantics ~what:"parallel moves" Flags.o0 src;
  Helpers.check_flags_preserve_semantics ~what:"parallel moves O3" Flags.o3 src

let test_float_args_and_return () =
  let src =
    {|
fn blend(a: float, b: float, t: float) -> float {
  return a * (1.0 - t) + b * t;
}
fn main() -> int {
  let r = blend(2.0, 10.0, 0.25);
  out(r);
  return int(r);
}
|}
  in
  Helpers.check_flags_preserve_semantics ~what:"float args" Flags.o0 src;
  ci "blend result" 4 (Helpers.interp_ret src)

let test_mixed_args () =
  let src =
    {|
fn mixed(i: int, x: float, j: int, y: float) -> float {
  return float(i) * x + float(j) * y;
}
fn main() -> int {
  out(mixed(2, 1.5, 3, 2.5));
  return int(mixed(2, 1.5, 3, 2.5));
}
|}
  in
  Helpers.check_flags_preserve_semantics ~what:"mixed args" Flags.o0 src;
  ci "mixed result" 10 (Helpers.interp_ret src)

let test_omit_frame_pointer_equivalence () =
  List.iter
    (fun (_, src) ->
      let _, outs_fp, prog_fp =
        Helpers.machine ~flags:{ Flags.o2 with omit_frame_pointer = false } src
      in
      let _, outs_nofp, prog_nofp =
        Helpers.machine ~flags:{ Flags.o2 with omit_frame_pointer = true } src
      in
      Alcotest.(check (list string)) "same outputs" outs_fp outs_nofp;
      (* omitting the frame pointer must not grow the code *)
      Alcotest.(check bool) "code not larger" true
        (Array.length prog_nofp.Emc_isa.Isa.insts <= Array.length prog_fp.Emc_isa.Isa.insts))
    [ ("calls", List.assoc "calls" Test_opt.corpus) ]

let test_program_structure () =
  let _, _, prog = Helpers.machine ~flags:Flags.o0 "fn main() -> int { return 42; }" in
  let open Emc_isa in
  (* starts with call main; halt *)
  Alcotest.(check bool) "stub call" true (prog.Isa.insts.(0).Isa.op = Isa.CALL);
  Alcotest.(check bool) "stub halt" true (prog.Isa.insts.(1).Isa.op = Isa.HALT);
  Alcotest.(check bool) "main registered" true
    (List.mem_assoc "main" prog.Isa.func_starts)

let test_return_value_register () =
  let ret, _, _ = Helpers.machine ~flags:Flags.o0 "fn main() -> int { return 42; }" in
  ci "r0 holds return" 42 ret

(* every workload, O0 vs interpreter at small input scale *)
let test_workloads_differential_o0 () =
  List.iter
    (fun (w : Emc_workloads.Workload.t) ->
      let arrays = w.arrays ~scale:0.05 ~variant:Emc_workloads.Workload.Train in
      Helpers.check_flags_preserve_semantics ~arrays ~what:(w.name ^ " O0") Flags.o0 w.source)
    Emc_workloads.Registry.all

let suite =
  [
    ("param survives call (regression)", `Quick, test_param_survives_call);
    ("deep call chain", `Quick, test_deep_call_chain);
    ("integer spilling", `Quick, test_spilling);
    ("float spilling", `Quick, test_fp_spilling);
    ("parallel argument moves", `Quick, test_many_args_and_moves);
    ("float args and return", `Quick, test_float_args_and_return);
    ("mixed int/float args", `Quick, test_mixed_args);
    ("omit-frame-pointer equivalence", `Quick, test_omit_frame_pointer_equivalence);
    ("program structure", `Quick, test_program_structure);
    ("return value register", `Quick, test_return_value_register);
    ("workloads differential O0", `Quick, test_workloads_differential_o0);
  ]
