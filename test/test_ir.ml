(** IR-level tests: CFG analyses (dominators, loops, liveness), the verifier
    and the reference interpreter, on hand-built functions. *)

open Emc_ir

(* Build a diamond CFG:   0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> ret *)
let diamond () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:(Some Ir.I64) in
  let c = Builder.iconst b 1 in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let b3 = Builder.new_block b in
  Builder.terminate b (Ir.CondBr (c, b1.Ir.id, b2.Ir.id));
  Builder.position_at b b1;
  let x1 = Builder.iconst b 10 in
  Builder.terminate b (Ir.Br b3.Ir.id);
  Builder.position_at b b2;
  let _x2 = Builder.iconst b 20 in
  Builder.terminate b (Ir.Br b3.Ir.id);
  Builder.position_at b b3;
  Builder.terminate b (Ir.Ret (Some x1));
  Builder.finish b

(* simple counted loop: for (i = 0; i < 10; i++) acc += i *)
let loop_func () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:(Some Ir.I64) in
  let acc = Builder.fresh b Ir.I64 in
  Builder.emit b (Ir.Iconst (acc, 0));
  let iv = Builder.fresh b Ir.I64 in
  Builder.emit b (Ir.Iconst (iv, 0));
  let header = Builder.new_block b in
  let body = Builder.new_block b in
  let latch = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.terminate b (Ir.Br header.Ir.id);
  Builder.position_at b header;
  let cond = Builder.icmp b Ir.Lt (Ir.Reg iv) (Ir.Imm 10) in
  Builder.terminate b (Ir.CondBr (cond, body.Ir.id, exit.Ir.id));
  Builder.position_at b body;
  let t = Builder.ibin b Ir.Add (Ir.Reg acc) (Ir.Reg iv) in
  Builder.emit b (Ir.Mov (Ir.I64, acc, t));
  Builder.terminate b (Ir.Br latch.Ir.id);
  Builder.position_at b latch;
  Builder.emit b (Ir.Ibin (Ir.Add, iv, Ir.Reg iv, Ir.Imm 1));
  Builder.terminate b (Ir.Br header.Ir.id);
  Builder.position_at b exit;
  Builder.terminate b (Ir.Ret (Some acc));
  (Builder.finish b, iv, header.Ir.id, latch.Ir.id)

let prog_of f = { Ir.funcs = [ (f.Ir.fname, f) ]; globals = [] }

(* ---------------- dominators ---------------- *)

let test_dominators_diamond () =
  let f = diamond () in
  let dom = Dom.compute f in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun l -> Dom.dominates dom 0 l) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "1 does not dominate 3" false (Dom.dominates dom 1 3);
  Alcotest.(check bool) "3 dominated by 0 only" true (dom.Dom.idom.(3) = 0)

let test_dominators_loop () =
  let f, _, header, latch = loop_func () in
  let dom = Dom.compute f in
  Alcotest.(check bool) "header dominates latch" true (Dom.dominates dom header latch);
  Alcotest.(check bool) "latch does not dominate header" false (Dom.dominates dom latch header)

let test_rpo () =
  let f = diamond () in
  let rpo = Ir.reverse_postorder f in
  Alcotest.(check int) "entry first" 0 (List.hd rpo);
  Alcotest.(check int) "all blocks" 4 (List.length rpo);
  (* join block is last *)
  Alcotest.(check int) "join last" 3 (List.nth rpo 3)

(* ---------------- loops ---------------- *)

let test_loop_discovery () =
  let f, iv, header, latch = loop_func () in
  let loops = Loops.find f in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "header" header l.Loops.header;
  Alcotest.(check int) "latch" latch l.Loops.latch;
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  match Loops.counted_loop f l with
  | Some c ->
      Alcotest.(check int) "iv" iv c.Loops.iv;
      Alcotest.(check int) "step" 1 c.Loops.step;
      Alcotest.(check bool) "bound" true (c.Loops.bound = Ir.Imm 10)
  | None -> Alcotest.fail "counted loop not recognized"

let test_counted_loop_rejects_mutated_iv () =
  let f, iv, _, _ = loop_func () in
  (* mutate iv inside the body: no longer a canonical counted loop *)
  let body = f.Ir.blocks.(2) in
  body.Ir.instrs <- body.Ir.instrs @ [ Ir.Ibin (Ir.Add, iv, Ir.Reg iv, Ir.Imm 5) ];
  let loops = Loops.find f in
  Alcotest.(check bool) "rejected" true
    (Loops.counted_loop f (List.hd loops) = None)

let test_nested_loop_depth () =
  let src =
    {|
fn main() -> int {
  let s = 0;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      s = s + i * j;
    }
  }
  return s;
}
|}
  in
  let ir = Emc_lang.Minic.compile_exn src in
  let f = List.assoc "main" ir.Ir.funcs in
  let loops = Loops.find f in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun (l : Loops.t) -> l.Loops.depth) loops) in
  Alcotest.(check (list int)) "nesting depths" [ 1; 2 ] depths

(* ---------------- liveness ---------------- *)

let test_liveness () =
  let f, iv, header, _ = loop_func () in
  let live = Liveness.compute f in
  Alcotest.(check bool) "iv live into header" true
    (Liveness.IntSet.mem iv live.Liveness.live_in.(header));
  (* acc (reg 0) is live into the exit block *)
  let exit_l = 4 in
  Alcotest.(check bool) "acc live into exit" true
    (Liveness.IntSet.mem 0 live.Liveness.live_in.(exit_l))

(* ---------------- verify ---------------- *)

let test_verify_catches_type_confusion () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  let x = Builder.fconst b 1.0 in
  (* use a float register in an integer op *)
  let d = Builder.fresh b Ir.I64 in
  Builder.emit b (Ir.Ibin (Ir.Add, d, Ir.Reg x, Ir.Imm 1));
  Builder.terminate b (Ir.Ret None);
  let p = prog_of (Builder.finish b) in
  Alcotest.(check bool) "rejected" true
    (try
       Verify.check_program p;
       false
     with Failure _ -> true)

let test_verify_catches_bad_label () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  Builder.terminate b (Ir.Br 99);
  let p = prog_of (Builder.finish b) in
  Alcotest.(check bool) "rejected" true
    (try
       Verify.check_program p;
       false
     with Failure _ -> true)

let test_verify_catches_bad_call () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  Builder.emit b (Ir.Call (None, "nonexistent", []));
  Builder.terminate b (Ir.Ret None);
  let p = prog_of (Builder.finish b) in
  Alcotest.(check bool) "rejected" true
    (try
       Verify.check_program p;
       false
     with Failure _ -> true)

(* ---------------- remove_unreachable ---------------- *)

let test_remove_unreachable () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  let dead = Builder.new_block b in
  ignore dead;
  Builder.terminate b (Ir.Ret None);
  let f = Builder.finish b in
  Alcotest.(check int) "two blocks before" 2 (Array.length f.Ir.blocks);
  Ir.remove_unreachable f;
  Alcotest.(check int) "one block after" 1 (Array.length f.Ir.blocks);
  Alcotest.(check int) "layout updated" 1 (List.length f.Ir.layout)

(* ---------------- interpreter ---------------- *)

let test_interp_loop () =
  let f, _, _, _ = loop_func () in
  let st = Interp.create (prog_of f) in
  let res = Interp.run st ~func:"main" ~args:[] in
  Alcotest.(check bool) "sum 0..9 = 45" true (res.Interp.ret = Some (Interp.VI 45))

let test_interp_fuel () =
  (* infinite loop must exhaust fuel, not hang *)
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  let header = Builder.new_block b in
  Builder.terminate b (Ir.Br header.Ir.id);
  Builder.position_at b header;
  Builder.terminate b (Ir.Br header.Ir.id);
  let p = prog_of (Builder.finish b) in
  let st = Interp.create p in
  Alcotest.(check bool) "fuel trap" true
    (try
       ignore (Interp.run ~fuel:1000 st ~func:"main" ~args:[]);
       false
     with Interp.Trap _ -> true)

let test_interp_unaligned_trap () =
  let b = Builder.create_func ~name:"main" ~param_tys:[] ~ret_ty:None in
  let a = Builder.iconst b 0x1003 in
  ignore (Builder.load b Ir.I64 a);
  Builder.terminate b (Ir.Ret None);
  let p = { Ir.funcs = [ ("main", Builder.finish b) ]; globals = [ { Ir.gname = "g"; gty = Ir.I64; gsize = 8 } ] } in
  let st = Interp.create p in
  Alcotest.(check bool) "unaligned trap" true
    (try
       ignore (Interp.run st ~func:"main" ~args:[]);
       false
     with Interp.Trap _ -> true)

(* ---------------- memlayout ---------------- *)

let test_memlayout () =
  let globals =
    [ { Ir.gname = "a"; gty = Ir.I64; gsize = 3 }; { Ir.gname = "b"; gty = Ir.F64; gsize = 100 } ]
  in
  let p = { Ir.funcs = []; globals } in
  let l = Memlayout.compute p in
  Alcotest.(check int) "first base" 0x1000 (Memlayout.base l "a");
  Alcotest.(check int) "64-byte aligned" 0 (Memlayout.base l "b" land 63);
  Alcotest.(check bool) "no overlap" true (Memlayout.base l "b" >= 0x1000 + (3 * 8));
  Alcotest.(check bool) "stack above data" true (Memlayout.stack_top l > l.Memlayout.data_end)

let test_instr_count () =
  let f = diamond () in
  (* 3 instrs + 4 terminators *)
  Alcotest.(check int) "count" 7 (Ir.instr_count_fn f)

let string_contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* pretty-printer shouldn't raise and should mention every block *)
let test_printer () =
  let f, _, _, _ = loop_func () in
  let s = Ir.to_string (prog_of f) in
  Alcotest.(check bool) "mentions blocks" true
    (List.for_all (fun l -> string_contains l s) [ "L0:"; "L1:"; "L2:"; "L3:"; "L4:" ])

let suite =
  [
    ("dominators diamond", `Quick, test_dominators_diamond);
    ("dominators loop", `Quick, test_dominators_loop);
    ("reverse postorder", `Quick, test_rpo);
    ("loop discovery", `Quick, test_loop_discovery);
    ("counted loop rejects mutated iv", `Quick, test_counted_loop_rejects_mutated_iv);
    ("nested loop depth", `Quick, test_nested_loop_depth);
    ("liveness", `Quick, test_liveness);
    ("verify type confusion", `Quick, test_verify_catches_type_confusion);
    ("verify bad label", `Quick, test_verify_catches_bad_label);
    ("verify bad call", `Quick, test_verify_catches_bad_call);
    ("remove unreachable", `Quick, test_remove_unreachable);
    ("interp loop", `Quick, test_interp_loop);
    ("interp fuel", `Quick, test_interp_fuel);
    ("interp unaligned trap", `Quick, test_interp_unaligned_trap);
    ("memlayout", `Quick, test_memlayout);
    ("instr count", `Quick, test_instr_count);
    ("printer", `Quick, test_printer);
  ]
