(** Tests for the observability layer (Emc_obs): JSON round-trips, the
    metrics registry, log level plumbing, Chrome-trace well-formedness and
    span nesting, and the SMARTS telemetry contract. *)

module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics
module Log = Emc_obs.Log
module Trace = Emc_obs.Trace

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)
let cs = Alcotest.(check string)

(* ---------------- Json ---------------- *)

let test_json_print () =
  cs "null" "null" (Json.to_string Json.Null);
  cs "bool" "true" (Json.to_string (Json.Bool true));
  cs "int" "42" (Json.to_string (Json.Int 42));
  cs "negative int" "-7" (Json.to_string (Json.Int (-7)));
  cs "integral float" "3" (Json.to_string (Json.Float 3.0));
  cs "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  cs "inf is null" "null" (Json.to_string (Json.Float Float.infinity));
  cs "escaping" {|"a\"b\\c\n\td"|} (Json.to_string (Json.Str "a\"b\\c\n\td"));
  cs "control chars" {|"\u0001"|} (Json.to_string (Json.Str "\001"));
  cs "nested" {|{"k":[1,2.5,"x"],"e":{}}|}
    (Json.to_string
       (Json.Obj
          [ ("k", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "x" ]); ("e", Json.Obj []) ]))

let test_json_parse_roundtrip () =
  let roundtrip j =
    let s = Json.to_string j in
    cs ("roundtrip " ^ s) s (Json.to_string (Json.parse_exn s))
  in
  List.iter roundtrip
    [
      Json.Null;
      Json.Bool false;
      Json.Int 123;
      Json.Int (-456);
      Json.Float 1.25;
      Json.Float (-0.0625);
      Json.Str "hello \"world\"\n";
      Json.List [ Json.Int 1; Json.Null; Json.Str "x" ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List []); ("c", Json.Obj [ ("d", Json.Bool true) ]) ];
    ];
  (match Json.parse_exn {| { "a" : [ 1 , 2 ] } |} with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ] -> ()
  | _ -> Alcotest.fail "whitespace-tolerant parse");
  cb "trailing garbage rejected" true (Result.is_error (Json.parse "1 2"));
  cb "bad literal rejected" true (Result.is_error (Json.parse "troo"));
  cb "unterminated string rejected" true (Result.is_error (Json.parse "\"abc"));
  match Json.parse_exn {|"éA"|} with
  | Json.Str s -> cs "unicode escapes decode to UTF-8" "\xc3\xa9A" s
  | _ -> Alcotest.fail "expected string"

(* ---------------- Metrics ---------------- *)

let test_counter_semantics () =
  let c = Metrics.counter "test.obs.counter" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.add c 5;
  ci "incr/by/add accumulate" (before + 10) (Metrics.value c);
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c';
  ci "same name is same counter" (before + 11) (Metrics.value c);
  ci "lookup by name" (before + 11)
    (Option.get (Metrics.counter_value "test.obs.counter"));
  cb "unknown name is None" true (Metrics.counter_value "test.obs.nosuch" = None)

let test_kind_mismatch_raises () =
  ignore (Metrics.counter "test.obs.kinded");
  cb "re-registering as gauge raises" true
    (try
       ignore (Metrics.gauge "test.obs.kinded");
       false
     with Invalid_argument _ -> true)

let test_gauge_and_histogram () =
  let g = Metrics.gauge "test.obs.gauge" in
  cb "gauge unset initially" true (Metrics.gauge_read g = None);
  Metrics.set g 2.5;
  Metrics.set g 7.0;
  Alcotest.(check (float 0.0)) "gauge keeps last value" 7.0 (Option.get (Metrics.gauge_read g));
  let h = Metrics.histogram "test.obs.hist" in
  cb "empty histogram has no stats" true (Metrics.histogram_stats h = None);
  (* observe 1..100 out of order; exact order-statistic percentiles *)
  List.iter (fun i -> Metrics.observe h (float_of_int i)) (List.init 100 (fun i -> ((i * 37) mod 100) + 1));
  let s = Option.get (Metrics.histogram_stats h) in
  ci "count" 100 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
  cb "p50 near median" true (s.Metrics.p50 >= 50.0 && s.Metrics.p50 <= 51.0);
  cb "p90 near 90" true (s.Metrics.p90 >= 89.0 && s.Metrics.p90 <= 92.0);
  cb "p99 near 99" true (s.Metrics.p99 >= 98.0 && s.Metrics.p99 <= 100.0)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- bounded histograms and snapshots ---------------- *)

(* Percentile estimates stay within the documented bucket resolution
   (2^(1/32) - 1 ~ 2.2% relative) of the exact order statistics, over a
   heavy-tailed stream spanning several orders of magnitude. *)
let test_histogram_resolution () =
  let h = Metrics.histogram "test.obs.res" in
  let rng = Emc_util.Rng.create 11 in
  let n = 5000 in
  let samples = Array.init n (fun _ -> Float.exp (2.0 *. Emc_util.Rng.gaussian rng)) in
  Array.iter (Metrics.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let exact q =
    let rank = max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int n))) in
    sorted.(min (n - 1) (rank - 1))
  in
  List.iter
    (fun q ->
      let est = Option.get (Metrics.histogram_percentile h q) in
      let ex = exact q in
      cb (Printf.sprintf "p%g within bucket resolution" q) true
        (Float.abs (est -. ex) <= (0.023 *. ex) +. 1e-12))
    [ 50.0; 90.0; 99.0; 99.9 ];
  (* clamping into [min, max] makes a single-sample histogram exact *)
  let h1 = Metrics.histogram "test.obs.res.single" in
  Metrics.observe h1 0.0123;
  Alcotest.(check (float 0.0)) "single sample is exact" 0.0123
    (Option.get (Metrics.histogram_percentile h1 99.0))

(* Values outside the covered range (zero, negatives, huge) land in the
   edge buckets but count/sum/min/max stay exact. *)
let test_histogram_edge_buckets () =
  let h = Metrics.histogram "test.obs.edges" in
  List.iter (Metrics.observe h) [ 0.0; -3.0; 1e20; 1.0 ];
  let s = Option.get (Metrics.histogram_stats h) in
  ci "count includes out-of-range values" 4 s.Metrics.count;
  Alcotest.(check (float 0.0)) "min exact" (-3.0) s.Metrics.min;
  Alcotest.(check (float 0.0)) "max exact" 1e20 s.Metrics.max;
  Alcotest.(check (float 1e-6)) "sum exact" (1e20 -. 2.0) s.Metrics.sum;
  cb "percentiles clamped into [min, max]" true
    (s.Metrics.p50 >= s.Metrics.min && s.Metrics.p99 <= s.Metrics.max)

(* Run [f] in a forked child on a reset registry and ship the resulting
   snapshot back through its JSON serialization — exactly what the
   pre-forked daemon's cross-worker /metrics aggregation does. *)
let snapshot_in_child f =
  let rfd, wfd = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close rfd;
      Metrics.reset ();
      f ();
      let oc = Unix.out_channel_of_descr wfd in
      output_string oc (Json.to_string (Metrics.snapshot_to_json (Metrics.snapshot ())));
      flush oc;
      Unix._exit 0
  | pid -> (
      Unix.close wfd;
      let ic = Unix.in_channel_of_descr rfd in
      let text = In_channel.input_all ic in
      close_in ic;
      ignore (Unix.waitpid [] pid);
      match Metrics.snapshot_of_json (Json.parse_exn text) with
      | Ok s -> s
      | Error e -> Alcotest.failf "snapshot did not survive JSON: %s" e)

(* The merge contract: merging per-process snapshots is equivalent to one
   process having seen the combined stream — identical bucket counts, so
   identical percentiles; counters sum exactly. *)
let test_snapshot_merge_equals_combined () =
  let rng = Emc_util.Rng.create 23 in
  let streams =
    List.map
      (fun n -> Array.init n (fun _ -> Float.exp (1.5 *. Emc_util.Rng.gaussian rng)))
      [ 400; 150; 900 ]
  in
  let observe_stream s =
    let h = Metrics.histogram "test.obs.merge.h" in
    let c = Metrics.counter "test.obs.merge.c" in
    Array.iter
      (fun v ->
        Metrics.observe h v;
        Metrics.incr c)
      s
  in
  let parts = List.map (fun s -> snapshot_in_child (fun () -> observe_stream s)) streams in
  let combined = snapshot_in_child (fun () -> List.iter observe_stream streams) in
  let merged = List.fold_left Metrics.merge Metrics.snapshot_empty parts in
  let counter_of s =
    Option.value ~default:(-1) (List.assoc_opt "test.obs.merge.c" (Metrics.snapshot_counters s))
  in
  ci "merged counters sum exactly" (counter_of combined) (counter_of merged);
  ci "total is the stream total" (400 + 150 + 900) (counter_of merged);
  let hsnap_of s = List.assoc "test.obs.merge.h" (Metrics.snapshot_histograms s) in
  let hm = hsnap_of merged and hc = hsnap_of combined in
  let sm = Option.get (Metrics.hsnap_stats hm) and sc = Option.get (Metrics.hsnap_stats hc) in
  ci "merged count" sc.Metrics.count sm.Metrics.count;
  Alcotest.(check (float 0.0)) "merged min" sc.Metrics.min sm.Metrics.min;
  Alcotest.(check (float 0.0)) "merged max" sc.Metrics.max sm.Metrics.max;
  cb "merged sum within fp tolerance" true
    (Float.abs (sm.Metrics.sum -. sc.Metrics.sum) <= 1e-9 *. Float.abs sc.Metrics.sum);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "merged p%g identical to combined-stream p%g" q q)
        (Option.get (Metrics.hsnap_percentile hc q))
        (Option.get (Metrics.hsnap_percentile hm q)))
    [ 50.0; 90.0; 99.0; 99.9 ];
  (* the Prometheus cumulative series agrees between the two *)
  cb "cumulative le= series identical" true
    (Metrics.hsnap_cumulative hc = Metrics.hsnap_cumulative hm);
  (* snapshot_empty is the unit of merge *)
  let m2 = Metrics.merge merged Metrics.snapshot_empty in
  ci "merge with empty is identity (counters)" (counter_of merged) (counter_of m2);
  cb "merge with empty is identity (cumulative)" true
    (Metrics.hsnap_cumulative (hsnap_of m2) = Metrics.hsnap_cumulative hm)

let test_snapshot_json_rejects_garbage () =
  cb "wrong schema rejected" true
    (Result.is_error (Metrics.snapshot_of_json (Json.parse_exn {|{"schema":"nope"}|})));
  cb "non-object rejected" true (Result.is_error (Metrics.snapshot_of_json (Json.Int 3)));
  (* gauges: right-hand side wins on merge *)
  let a = snapshot_in_child (fun () -> Metrics.set (Metrics.gauge "test.obs.merge.g") 1.0) in
  let b = snapshot_in_child (fun () -> Metrics.set (Metrics.gauge "test.obs.merge.g") 2.0) in
  let m = Metrics.merge a b in
  Alcotest.(check (float 0.0)) "gauge merge keeps the right value" 2.0
    (List.assoc "test.obs.merge.g" (Metrics.snapshot_gauges m))

let test_dump_and_reset () =
  let c = Metrics.counter "test.obs.dumpme" in
  Metrics.add c 3;
  let txt = Metrics.dump_text () in
  cb "dump mentions the counter" true (contains txt "test.obs.dumpme");
  (match Json.member "test.obs.dumpme" (Metrics.to_json ()) with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "to_json carries the counter");
  Metrics.reset ();
  ci "reset zeroes counters" 0 (Metrics.value c);
  cb "reset keeps registration" true (Metrics.counter_value "test.obs.dumpme" = Some 0)

(* ---------------- Log ---------------- *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level saved) @@ fun () ->
  cb "parse debug" true (Log.level_of_string "DEBUG" = Some Log.Debug);
  cb "parse warning" true (Log.level_of_string "warning" = Some Log.Warn);
  cb "parse quiet" true (Log.level_of_string "quiet" = Some Log.Error);
  cb "parse junk" true (Log.level_of_string "blah" = None);
  Log.set_level Log.Warn;
  cb "warn enabled at warn" true (Log.enabled Log.Warn);
  cb "error enabled at warn" true (Log.enabled Log.Error);
  cb "info disabled at warn" false (Log.enabled Log.Info);
  cb "debug disabled at warn" false (Log.enabled Log.Debug);
  Log.set_level Log.Debug;
  cb "debug enabled at debug" true (Log.enabled Log.Debug)

(* ---------------- Trace ---------------- *)

let num = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> Alcotest.fail "expected a number"

let test_trace_spans_nest () =
  let file = Filename.temp_file "emc_trace" ".json" in
  Fun.protect ~finally:(fun () -> Trace.disable (); Sys.remove file) @@ fun () ->
  Trace.enable file;
  cb "enabled after enable" true (Trace.enabled ());
  let r =
    Trace.with_span ~cat:"test" "outer" (fun () ->
        Trace.instant "marker";
        Trace.with_span ~cat:"test"
          ~args:(fun () -> [ ("k", Json.Int 7) ])
          "inner"
          (fun () -> 41 + 1))
  in
  ci "span returns body value" 42 r;
  Trace.counter "test.series" [ ("a", 1.0); ("b", 2.0) ];
  Trace.flush ();
  let ic = open_in file in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  let doc = Json.parse_exn contents in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents list missing"
  in
  let find name =
    List.find
      (fun e -> Json.member "name" e = Some (Json.Str name))
      events
  in
  let outer = find "outer" and inner = find "inner" in
  cb "outer is a complete event" true (Json.member "ph" outer = Some (Json.Str "X"));
  cb "instant has scope" true (Json.member "s" (find "marker") = Some (Json.Str "t"));
  cb "counter event present" true (Json.member "ph" (find "test.series") = Some (Json.Str "C"));
  (match Json.member "args" inner with
  | Some a -> cb "span args recorded" true (Json.member "k" a = Some (Json.Int 7))
  | None -> Alcotest.fail "inner span lost its args");
  let ts e = num (Option.get (Json.member "ts" e)) in
  let dur e = num (Option.get (Json.member "dur" e)) in
  let eps = 1.0 (* µs of float slack *) in
  cb "inner starts after outer" true (ts inner >= ts outer -. eps);
  cb "inner ends before outer ends" true
    (ts inner +. dur inner <= ts outer +. dur outer +. eps);
  (* disabled tracing is transparent *)
  Trace.disable ();
  cb "disabled after disable" false (Trace.enabled ());
  ci "with_span still runs the body" 5 (Trace.with_span "off" (fun () -> 5))

let test_trace_span_records_exception () =
  let file = Filename.temp_file "emc_trace" ".json" in
  Fun.protect ~finally:(fun () -> Trace.disable (); Sys.remove file) @@ fun () ->
  Trace.enable file;
  (try Trace.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.flush ();
  let ic = open_in file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.member "traceEvents" (Json.parse_exn contents) with
  | Some (Json.List [ e ]) -> (
      cb "span survived the exception" true (Json.member "name" e = Some (Json.Str "boom"));
      match Json.member "args" e with
      | Some a -> cb "tagged error=true" true (Json.member "error" a = Some (Json.Bool true))
      | None -> Alcotest.fail "error tag missing")
  | _ -> Alcotest.fail "expected exactly one event"

(* An unrecognized EMC_SCALE falls back to quick and routes its complaint
   through the logger (silenced here) rather than a bare eprintf. *)
let test_scale_warning_routed () =
  let saved = Log.level () and saved_env = Sys.getenv_opt "EMC_SCALE" in
  Fun.protect
    ~finally:(fun () ->
      Log.set_level saved;
      Unix.putenv "EMC_SCALE" (Option.value ~default:"" saved_env))
  @@ fun () ->
  Log.set_level Log.Error;
  Unix.putenv "EMC_SCALE" "bogus";
  let s = Emc_core.Scale.of_env () in
  cs "falls back to quick" "quick" s.Emc_core.Scale.name

(* ---------------- SMARTS telemetry regression ---------------- *)

(* An unreachably tight CI target must drive the refinement loop: the
   interval halves (bumping smarts.refinements) until max_refinements is
   spent, and the achieved CI lands in the gauge/histogram. *)
let test_smarts_refinement_fires () =
  let w = Emc_workloads.Registry.find "gzip" in
  let arrays = w.Emc_workloads.Workload.arrays ~scale:0.3 ~variant:Emc_workloads.Workload.Train in
  let _, _, prog = Helpers.machine ~flags:Emc_opt.Flags.o2 ~arrays w.Emc_workloads.Workload.source in
  let setup f = Helpers.set_func_arrays f arrays in
  let before = Option.value ~default:0 (Metrics.counter_value "smarts.refinements") in
  let r =
    Emc_sim.Smarts.run_sampled
      ~params:
        { Emc_sim.Smarts.default_params with interval = 16; target_ci = 1e-6; max_refinements = 2 }
      Emc_sim.Config.typical prog ~setup
  in
  let after = Option.value ~default:0 (Metrics.counter_value "smarts.refinements") in
  cb "refinement fired at least once" true (after >= before + 1);
  cb "achieved ci recorded in gauge" true
    (match Metrics.gauge_value "smarts.last_ci_rel" with
    | Some ci -> ci = r.Emc_sim.Smarts.ci_rel
    | None -> false);
  cb "ci histogram has samples" true
    (match Metrics.stats_of "smarts.ci_rel" with
    | Some s -> s.Metrics.count >= 1
    | None -> false);
  cb "run counter advanced" true
    (Option.value ~default:0 (Metrics.counter_value "sim.runs") >= 1)

let suite =
  [
    Alcotest.test_case "json: printing and escaping" `Quick test_json_print;
    Alcotest.test_case "json: parse round-trips" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "metrics: counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "metrics: kind mismatch raises" `Quick test_kind_mismatch_raises;
    Alcotest.test_case "metrics: gauge and histogram" `Quick test_gauge_and_histogram;
    Alcotest.test_case "metrics: dump and reset" `Quick test_dump_and_reset;
    Alcotest.test_case "metrics: percentiles within bucket resolution" `Quick
      test_histogram_resolution;
    Alcotest.test_case "metrics: edge buckets keep exact count/sum/min/max" `Quick
      test_histogram_edge_buckets;
    Alcotest.test_case "metrics: merging snapshots equals the combined stream" `Quick
      test_snapshot_merge_equals_combined;
    Alcotest.test_case "metrics: snapshot json validation and gauge merge" `Quick
      test_snapshot_json_rejects_garbage;
    Alcotest.test_case "log: levels and parsing" `Quick test_log_levels;
    Alcotest.test_case "trace: spans nest in the json" `Quick test_trace_spans_nest;
    Alcotest.test_case "trace: exception tags the span" `Quick test_trace_span_records_exception;
    Alcotest.test_case "scale: bad EMC_SCALE warns and falls back" `Quick
      test_scale_warning_routed;
    Alcotest.test_case "smarts: refinement fires and is recorded" `Quick
      test_smarts_refinement_fires;
  ]
