(** Core-methodology tests: parameter coding/decoding, flag/march
    conversions, the measurement layer (caching, configuration sensitivity),
    and a miniature end-to-end run of the Figure-1 modeling loop. *)

open Emc_core

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

(* ---------------- parameter space ---------------- *)

let test_space_shape () =
  ci "14 compiler parameters" 14 Params.n_compiler;
  ci "11 march parameters" 11 Params.n_march;
  ci "25 in total" 25 Params.n_all;
  (* level counts straight from Tables 1 and 2 *)
  let counts = Array.map (fun s -> Array.length s.Params.levels) Params.all_specs in
  Alcotest.(check (array int)) "levels per parameter"
    [| 2; 2; 2; 2; 2; 2; 2; 2; 2; 11; 11; 9; 9; 21; 2; 5; 4; 5; 5; 2; 3; 6; 4; 11; 21 |]
    counts

let test_code_decode_roundtrip_all_levels () =
  Array.iteri
    (fun i spec ->
      Array.iter
        (fun level ->
          let coded = Params.code_one spec level in
          cb
            (Printf.sprintf "%s: coded %g in [-1,1]" spec.Params.name coded)
            true
            (coded >= -1.0 -. 1e-9 && coded <= 1.0 +. 1e-9);
          let back = Params.decode_one spec coded in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "param %d (%s) level %g roundtrips" i spec.Params.name level)
            level back)
        spec.Params.levels)
    Params.all_specs

let test_decode_snaps_to_levels () =
  let spec = Params.march_specs.(1) (* bpred-size: 512..8192, log2 *) in
  let v = Params.decode_one spec 0.1 in
  cb "snapped to a real level" true (Array.exists (fun l -> l = v) spec.Params.levels)

let test_flags_roundtrip () =
  List.iter
    (fun flags ->
      let raw = Params.of_flags flags in
      let back = Params.to_flags raw in
      cb "flags roundtrip" true (back = flags))
    [ Emc_opt.Flags.o0; Emc_opt.Flags.o2; Emc_opt.Flags.o3;
      { Emc_opt.Flags.o3 with max_unroll_times = 12; inline_call_cost = 13 } ]

let test_march_roundtrip () =
  List.iter
    (fun march ->
      let raw = Array.append (Array.make Params.n_compiler 0.0) (Params.of_march march) in
      let back = Params.to_march raw in
      cb "march roundtrip" true (back = march))
    [ Emc_sim.Config.constrained; Emc_sim.Config.typical; Emc_sim.Config.aggressive ]

let test_table5_configs_on_grid () =
  (* every Table-5 configuration must be representable in the coded space *)
  List.iter
    (fun march ->
      let coded = Params.code Params.all_specs (Params.raw_of Emc_opt.Flags.o2 march) in
      let flags', march' = Params.configs_of_coded coded in
      cb "march survives coding" true (march' = march);
      cb "flags survive coding" true (flags' = Emc_opt.Flags.o2))
    [ Emc_sim.Config.constrained; Emc_sim.Config.typical; Emc_sim.Config.aggressive ]

let test_coded_levels_sorted_distinct () =
  Array.iter
    (fun levels ->
      let l = Array.to_list levels in
      cb "coded levels strictly increasing" true
        (List.sort_uniq compare l = l && List.sort compare l = l))
    (Params.coded_levels Params.all_specs)

(* ---------------- scale ---------------- *)

let test_scales () =
  cb "full matches the paper protocol" true
    (Scale.full.Scale.train_n = 400 && Scale.full.Scale.test_n = 100);
  cb "quick smaller than full" true (Scale.quick.Scale.train_n < Scale.full.Scale.train_n);
  cb "tiny smaller than quick" true (Scale.tiny.Scale.train_n < Scale.quick.Scale.train_n)

(* ---------------- measurement layer ---------------- *)

let small_measure () = Measure.create { Scale.tiny with workload_scale = 0.05 }

let test_measure_caches () =
  let m = small_measure () in
  let w = Emc_workloads.Registry.find "gzip" in
  let c1 =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o2
      Emc_sim.Config.typical
  in
  let sims = m.Measure.simulations in
  let c2 =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o2
      Emc_sim.Config.typical
  in
  Alcotest.(check (float 0.0)) "cached result identical" c1 c2;
  ci "no new simulation" sims m.Measure.simulations

let test_measure_deterministic () =
  let run () =
    let m = small_measure () in
    Measure.cycles m (Emc_workloads.Registry.find "vortex") ~variant:Emc_workloads.Workload.Train
      Emc_opt.Flags.o2 Emc_sim.Config.typical
  in
  Alcotest.(check (float 0.0)) "same cycles across processes' runs" (run ()) (run ())

let test_measure_sensitivity () =
  (* microarchitecture changes must change measured cycles in the right
     direction: slower memory, more cycles (mcf is memory-bound) *)
  let m = small_measure () in
  let w = Emc_workloads.Registry.find "mcf" in
  let fast =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o2
      { Emc_sim.Config.typical with mem_lat = 50 }
  in
  let slow =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o2
      { Emc_sim.Config.typical with mem_lat = 150 }
  in
  cb (Printf.sprintf "mem latency matters (%.0f vs %.0f)" fast slow) true
    (slow > fast *. 1.1)

let test_measure_multi_response () =
  let m = small_measure () in
  let w = Emc_workloads.Registry.find "gzip" in
  let variant = Emc_workloads.Workload.Train in
  let cyc = Measure.respond ~response:Measure.Cycles m w ~variant Emc_opt.Flags.o2 Emc_sim.Config.typical in
  let sims = m.Measure.simulations in
  (* the other two responses come from the same (memoized) simulation *)
  let nrg = Measure.respond ~response:Measure.Energy m w ~variant Emc_opt.Flags.o2 Emc_sim.Config.typical in
  let sz = Measure.respond ~response:Measure.CodeSize m w ~variant Emc_opt.Flags.o2 Emc_sim.Config.typical in
  ci "no extra simulations" sims m.Measure.simulations;
  cb "distinct responses" true (cyc <> nrg && nrg <> sz);
  cb "all positive" true (cyc > 0.0 && nrg > 0.0 && sz > 0.0);
  (* code size at O3+unroll exceeds code size at O2 *)
  let sz_unrolled =
    Measure.respond ~response:Measure.CodeSize m w ~variant
      { Emc_opt.Flags.o3 with unroll_loops = true } Emc_sim.Config.typical
  in
  cb "unrolling grows code size response" true (sz_unrolled > sz)

let test_measure_flags_matter () =
  let m = small_measure () in
  let w = Emc_workloads.Registry.find "vortex" in
  let o0 =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o0
      Emc_sim.Config.typical
  in
  let o2 =
    Measure.cycles m w ~variant:Emc_workloads.Workload.Train Emc_opt.Flags.o2
      Emc_sim.Config.typical
  in
  cb (Printf.sprintf "O2 beats O0 (%.0f vs %.0f)" o2 o0) true (o2 < o0)

(* ---------------- end-to-end mini experiment ---------------- *)

let test_mini_modeling_loop () =
  let scale =
    { Scale.tiny with train_n = 24; test_n = 8; workload_scale = 0.04;
      fig5_sizes = [ 8; 16 ]; fig5_reps = 1 }
  in
  let ctx = Experiments.create ~seed:11 ~scale () in
  let w = Emc_workloads.Registry.find "gzip" in
  let d = Experiments.prepare ctx w in
  ci "train size" 24 (Emc_regress.Dataset.size d.Experiments.train);
  ci "test size" 8 (Emc_regress.Dataset.size d.Experiments.test);
  ci "three models" 3 (List.length d.Experiments.models);
  (* models predict positive cycle counts near the data *)
  List.iter
    (fun (_, (m : Emc_regress.Model.t)) ->
      Array.iter
        (fun x -> cb "prediction positive" true (m.predict x > 0.0))
        d.Experiments.train.Emc_regress.Dataset.x)
    d.Experiments.models;
  (* prepare is cached *)
  let sims = ctx.measure.Measure.simulations in
  let _ = Experiments.prepare ctx w in
  ci "prepare cached" sims ctx.measure.Measure.simulations;
  (* the model-based search returns valid flags and a finite prediction *)
  let r =
    Searcher.search ~params:scale.Scale.ga ~rng:(Emc_util.Rng.create 3)
      ~model:(Experiments.rbf_model d) ~march:Emc_sim.Config.typical ()
  in
  cb "finite prediction" true (Float.is_finite r.Searcher.predicted_cycles);
  cb "prediction positive" true (r.Searcher.predicted_cycles > 0.0)

let test_modeling_iterate () =
  let scale = { Scale.tiny with workload_scale = 0.04 } in
  let measure = Measure.create scale in
  let rng = Emc_util.Rng.create 13 in
  let w = Emc_workloads.Registry.find "vortex" in
  let test_pts = Emc_doe.Doe.lhs rng Params.space_all 8 in
  let test = Modeling.build_dataset measure w ~variant:Emc_workloads.Workload.Train test_pts in
  let _model, trajectory =
    Modeling.iterate ~step:12 ~target_error:8.0 ~max_n:24 ~rng ~measure ~workload:w
      ~variant:Emc_workloads.Workload.Train ~technique:Modeling.Rbf ~test ()
  in
  cb "iterated at least once" true (List.length trajectory >= 1);
  cb "sizes grow by step" true
    (List.for_all (fun (n, _) -> n mod 12 = 0) trajectory)

let suite =
  [
    ("parameter space shape", `Quick, test_space_shape);
    ("code/decode roundtrip", `Quick, test_code_decode_roundtrip_all_levels);
    ("decode snaps to levels", `Quick, test_decode_snaps_to_levels);
    ("flags roundtrip", `Quick, test_flags_roundtrip);
    ("march roundtrip", `Quick, test_march_roundtrip);
    ("table5 configs on grid", `Quick, test_table5_configs_on_grid);
    ("coded levels sorted", `Quick, test_coded_levels_sorted_distinct);
    ("scales", `Quick, test_scales);
    ("measure caches", `Quick, test_measure_caches);
    ("measure deterministic", `Quick, test_measure_deterministic);
    ("measure microarch sensitivity", `Quick, test_measure_sensitivity);
    ("measure flags matter", `Quick, test_measure_flags_matter);
    ("measure multi-response", `Quick, test_measure_multi_response);
    ("mini modeling loop", `Slow, test_mini_modeling_loop);
    ("modeling iterate", `Slow, test_modeling_iterate);
  ]
