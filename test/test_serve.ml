(** The serving daemon, end to end: a real [Serve.run] process on a temp
    Unix socket, driven by a raw-socket HTTP client. Covers the endpoint
    contracts, input validation with correct status codes, bit-identical
    served predictions, model-based /search with zero simulator
    invocations, a malformed-request fuzz loop, and graceful shutdown. *)

open Emc_core
module Json = Emc_obs.Json
module Serve = Emc_serve.Serve
module Http = Emc_serve.Http

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

(* One shared 25-dimensional artifact (the real parameter schema, so /search
   can decode design points); RBF on a synthetic response, fitted once. *)
let artifact =
  lazy
    (let rng = Emc_util.Rng.create 5 in
     let f x =
       5000.0 +. (300.0 *. x.(0)) -. (200.0 *. x.(1) *. x.(2)) +. (150.0 *. x.(14))
       +. (80.0 *. x.(20) *. x.(20))
     in
     let x =
       Array.init 60 (fun _ ->
           Array.init Params.n_all (fun _ -> Emc_util.Rng.float rng 2.0 -. 1.0))
     in
     let d = Emc_regress.Dataset.create x (Array.map f x) in
     let m = Emc_regress.Rbf.fit ~size_grid:[ 6 ] d in
     match
       Artifact.of_model ~workload:"synthetic" ~scale:"tiny" ~seed:5 ~train_n:60 m
     with
     | Ok a -> a
     | Error e -> failwith e)

(* ---------------- raw-socket client ---------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents b

(* Send raw bytes, close the write half, read the full response. *)
let raw_roundtrip path bytes =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         ignore (Unix.write_substring fd bytes 0 (String.length bytes));
         Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      read_all fd)

let parse_response resp =
  match String.index_opt resp '\r' with
  | None -> Alcotest.failf "unparseable response: %S" resp
  | Some _ -> (
      let status =
        match String.split_on_char ' ' resp with
        | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> -1)
        | _ -> -1
      in
      let body =
        let rec find i =
          if i + 3 >= String.length resp then ""
          else if String.sub resp i 4 = "\r\n\r\n" then
            String.sub resp (i + 4) (String.length resp - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

let request path ?(meth = "GET") ?(ctype = "application/json") ?body target =
  let b =
    match body with
    | None -> Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" meth target
    | Some body ->
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: t\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
           close\r\n\r\n%s"
          meth target ctype (String.length body) body
  in
  parse_response (raw_roundtrip path b)

let json_of body =
  match Json.parse (String.trim body) with
  | Ok j -> j
  | Error e -> Alcotest.failf "response body is not JSON (%s): %S" e body

(* ---------------- server lifecycle ---------------- *)

let sock_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "emc_serve_%d_%d.sock" (Unix.getpid ()) (Random.int 100000))

let start_server ?(workers = 1) ?(max_body = 4096) ?(read_timeout = 2.0) ?(idle_timeout = 5.0)
    ?(max_conns = 64) ?access_log () =
  let art = Lazy.force artifact in
  let path = sock_path () in
  match Unix.fork () with
  | 0 ->
      (* the daemon process: Serve.run returns after a signal *)
      (try
         Serve.run
           { Serve.listen = Serve.Unix_socket path; workers; max_body; read_timeout;
             idle_timeout; max_conns; access_log }
           art
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      (* wait for the socket to accept connections *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait () =
        match connect path with
        | fd -> Unix.close fd
        | exception Unix.Unix_error _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.failf "server did not come up on %s" path
            else begin
              ignore (Unix.select [] [] [] 0.05);
              wait ()
            end
      in
      wait ();
      (pid, path)

let stop_server (pid, path) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  (status, Sys.file_exists path)

let with_server ?workers ?max_body ?read_timeout ?idle_timeout ?max_conns ?access_log f =
  let ((pid, _) as srv) =
    start_server ?workers ?max_body ?read_timeout ?idle_timeout ?max_conns ?access_log ()
  in
  Fun.protect
    ~finally:(fun () ->
      if
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> true
        | _ -> false
        | exception Unix.Unix_error _ -> false
      then ignore (stop_server srv))
    (fun () -> f srv)

(* ---------------- tests ---------------- *)

let test_routing_no_socket () =
  let art = Lazy.force artifact in
  let req meth path = { Http.meth; path; query = []; headers = []; body = "" } in
  let status, _, _ = Serve.handle_request art (req "GET" "/nope") in
  ci "unknown path is 404" 404 status;
  let status, _, body = Serve.handle_request art (req "DELETE" "/predict") in
  ci "wrong method is 405" 405 status;
  cb "405 is structured" true
    (match Json.member "error" (json_of body) with Some (Json.Obj _) -> true | _ -> false);
  let status, _, _ = Serve.handle_request art (req "GET" "/healthz") in
  ci "healthz is 200" 200 status

let mkreq ?(meth = "GET") ?(query = []) ?(body = "") path =
  { Http.meth; path; query; headers = []; body }

let test_rank_top_validation () =
  (* a malformed or non-positive ?top must be a structured 400, never a
     silent "return everything" *)
  let art = Lazy.force artifact in
  List.iter
    (fun v ->
      let status, _, body = Serve.handle_request art (mkreq "/rank" ~query:[ ("top", v) ]) in
      ci (Printf.sprintf "top=%S is 400" v) 400 status;
      cb (Printf.sprintf "top=%S carries code bad_request" v) true
        (match Json.member "error" (json_of body) with
        | Some e -> Json.member "code" e = Some (Json.Str "bad_request")
        | None -> false))
    [ "abc"; "0"; "-5"; "1.5"; "" ];
  (* sane values still work *)
  let status, _, _ = Serve.handle_request art (mkreq "/rank" ~query:[ ("top", "2") ]) in
  ci "top=2 is 200" 200 status

let test_rank_nan_coef_last () =
  (* polymorphic compare would order a NaN coefficient arbitrarily (and on
     this sort direction, first); the contract is strongest-first with NaN
     pinned last *)
  let art = Lazy.force artifact in
  let art =
    { art with
      Artifact.terms = [ ("tiny", 0.5); ("broken", Float.nan); ("big", -9.0); ("mid", 3.0) ] }
  in
  let status, _, body = Serve.handle_request art (mkreq "/rank") in
  ci "rank status" 200 status;
  match Json.member "terms" (json_of body) with
  | Some (Json.List terms) ->
      let names =
        List.map
          (fun t -> match Json.member "term" t with Some (Json.Str s) -> s | _ -> "?")
          terms
      in
      Alcotest.(check (list string)) "NaN coefficient ranks last, not first"
        [ "big"; "mid"; "tiny"; "broken" ] names
  | _ -> Alcotest.failf "no terms in %S" body

(* ---------------- /pareto (in-process) ---------------- *)

let test_pareto_requires_energy () =
  let art = Lazy.force artifact in
  let status, _, body =
    Serve.handle_request art (mkreq ~meth:"POST" ~body:{|{"config":"typical"}|} "/pareto")
  in
  ci "no energy response is 409" 409 status;
  cb "code no_energy_response" true
    (match Json.member "error" (json_of body) with
    | Some e -> Json.member "code" e = Some (Json.Str "no_energy_response")
    | None -> false)

let test_pareto_matches_direct () =
  (* an artifact with a second "energy" response: the served front must be
     byte-identical to the in-process search with the same seed/params *)
  let art = Lazy.force artifact in
  let rng = Emc_util.Rng.create 6 in
  let g x =
    2.0 +. (0.4 *. x.(3)) +. (0.9 *. x.(0) *. x.(0)) -. (0.2 *. x.(11))
  in
  let x =
    Array.init 60 (fun _ ->
        Array.init Params.n_all (fun _ -> Emc_util.Rng.float rng 2.0 -. 1.0))
  in
  let energy = Emc_regress.Rbf.fit ~size_grid:[ 6 ] (Emc_regress.Dataset.create x (Array.map g x)) in
  let energy_repr = Option.get energy.Emc_regress.Model.repr in
  let art = { art with Artifact.extra = [ ("energy", energy_repr) ] } in
  let body_in = {|{"config":"typical","seed":3,"pop_size":16,"generations":6}|} in
  let status, _, served = Serve.handle_request art (mkreq ~meth:"POST" ~body:body_in "/pareto") in
  ci "pareto status" 200 status;
  let params = { Emc_search.Ga.default_params with pop_size = 16; generations = 6 } in
  let energy_model =
    { Emc_regress.Model.technique = "energy";
      predict = Emc_regress.Repr.eval energy_repr;
      n_params = 0; terms = []; repr = Some energy_repr }
  in
  let evals_before =
    Option.value ~default:0 (Emc_obs.Metrics.counter_value "pareto.evaluations")
  in
  let front =
    Searcher.search_pareto ~params ~rng:(Emc_util.Rng.create 3)
      ~cycles_model:(Artifact.model art) ~energy_model ~march:Emc_sim.Config.typical ()
  in
  let evals =
    Option.value ~default:0 (Emc_obs.Metrics.counter_value "pareto.evaluations") - evals_before
  in
  cb "front is non-empty" true (List.length front > 0);
  Alcotest.(check string) "served /pareto body is byte-identical to the direct search"
    (Json.to_string (Searcher.pareto_to_json ~seed:3 ~evaluations:evals front) ^ "\n")
    served

let coded_point () = Array.init Params.n_all (fun i -> Float.of_int (i mod 3) /. 4.0)

let point_json x =
  Json.to_string (Json.List (Array.to_list (Array.map (fun v -> Json.Float v) x)))

let test_endpoints () =
  with_server (fun (_, path) ->
      let art = Lazy.force artifact in
      (* healthz *)
      let status, body = request path "/healthz" in
      ci "healthz status" 200 status;
      cb "healthz ok" true (Json.member "status" (json_of body) = Some (Json.Str "ok"));
      (* single predict, bit-identical to the in-process model *)
      let x = coded_point () in
      let expected = Emc_regress.Repr.eval art.Artifact.repr x in
      let status, body =
        request path ~meth:"POST" ~body:(Printf.sprintf {|{"point":%s}|} (point_json x))
          "/predict"
      in
      ci "predict status" 200 status;
      (match Json.member "prediction" (json_of body) with
      | Some (Json.Float p) ->
          Alcotest.(check int64) "served prediction is bit-identical"
            (Int64.bits_of_float expected) (Int64.bits_of_float p)
      | _ -> Alcotest.failf "no prediction in %S" body);
      (* batch predict *)
      let pts = [ x; Array.map (fun v -> -.v) x; Array.make Params.n_all 0.25 ] in
      let batch =
        Printf.sprintf {|{"points":[%s]}|} (String.concat "," (List.map point_json pts))
      in
      let status, body = request path ~meth:"POST" ~body:batch "/predict" in
      ci "batch status" 200 status;
      (match Json.member "predictions" (json_of body) with
      | Some (Json.List ps) ->
          ci "batch size" (List.length pts) (List.length ps);
          List.iter2
            (fun p x ->
              match p with
              | Json.Float p ->
                  Alcotest.(check int64) "batch element bit-identical"
                    (Int64.bits_of_float (Emc_regress.Repr.eval art.Artifact.repr x))
                    (Int64.bits_of_float p)
              | _ -> Alcotest.fail "non-float prediction")
            ps pts
      | _ -> Alcotest.failf "no predictions in %S" body);
      (* raw-space predict codes through the schema *)
      let raw = Params.decode Params.all_specs x in
      let body_raw =
        Printf.sprintf {|{"point":%s,"space":"raw"}|} (point_json raw)
      in
      let status, body = request path ~meth:"POST" ~body:body_raw "/predict" in
      ci "raw predict status" 200 status;
      cb "raw predict returns a number" true
        (match Json.member "prediction" (json_of body) with Some (Json.Float _) -> true | _ -> false);
      (* rank: sorted by |coef|, truncated by ?top *)
      let status, body = request path "/rank?top=3" in
      ci "rank status" 200 status;
      (match Json.member "terms" (json_of body) with
      | Some (Json.List terms) ->
          cb "rank truncates" true (List.length terms = 3);
          let coefs =
            List.filter_map
              (fun t -> match Json.member "coef" t with Some (Json.Float c) -> Some (Float.abs c) | _ -> None)
              terms
          in
          cb "rank sorted by |coef|" true (List.sort (fun a b -> compare b a) coefs = coefs)
      | _ -> Alcotest.failf "no terms in %S" body);
      (* metrics: prometheus text with the serve counters and zero simulations *)
      let status, body = request path "/metrics" in
      ci "metrics status" 200 status;
      let has s =
        let n = String.length body and m = String.length s in
        let rec go i = i + m <= n && (String.sub body i m = s || go (i + 1)) in
        go 0
      in
      cb "request counter exported" true (has "emc_serve_requests ");
      cb "per-endpoint counter exported" true (has "emc_serve_requests__predict ");
      cb "latency summary exported" true (has "emc_serve_latency_seconds__predict_count ");
      cb "zero simulator invocations" true (has "emc_measure_simulations 0"))

let test_validation () =
  with_server (fun (_, path) ->
      let check_error what (status, body) want =
        ci (what ^ ": status") want status;
        cb (what ^ ": structured error") true
          (match Json.member "error" (json_of body) with
          | Some (Json.Obj fields) ->
              List.mem_assoc "code" fields && List.mem_assoc "message" fields
          | _ -> false)
      in
      check_error "malformed JSON"
        (request path ~meth:"POST" ~body:"{ not json" "/predict")
        400;
      check_error "missing point"
        (request path ~meth:"POST" ~body:"{}" "/predict")
        400;
      check_error "wrong arity"
        (request path ~meth:"POST" ~body:{|{"point":[1,2,3]}|} "/predict")
        400;
      check_error "non-numeric point"
        (request path ~meth:"POST" ~body:{|{"point":["a"]}|} "/predict")
        400;
      check_error "wrong content type"
        (request path ~meth:"POST" ~ctype:"text/plain" ~body:{|{"point":[]}|} "/predict")
        415;
      check_error "unknown search config"
        (request path ~meth:"POST" ~body:{|{"config":"petaflop"}|} "/search")
        400;
      (* declared body over the 4 KiB test cap *)
      let big = String.make 8000 'x' in
      check_error "oversized body"
        (request path ~meth:"POST" ~body:big "/predict")
        413;
      (* stalled request: opened, half a request line, then silence *)
      let fd = connect path in
      ignore (Unix.write_substring fd "POST /pre" 0 9);
      let resp = read_all fd in
      Unix.close fd;
      let status, _ = parse_response resp in
      ci "stalled request times out with 408" 408 status)

let test_search_matches_direct () =
  with_server (fun (_, path) ->
      let art = Lazy.force artifact in
      let status, body =
        request path ~meth:"POST"
          ~body:{|{"config":"typical","seed":9,"pop_size":24,"generations":10}|} "/search"
      in
      ci "search status" 200 status;
      let j = json_of body in
      let params =
        { Emc_search.Ga.default_params with pop_size = 24; generations = 10 }
      in
      let direct =
        Searcher.search ~params ~rng:(Emc_util.Rng.create 9) ~model:(Artifact.model art)
          ~march:Emc_sim.Config.typical ()
      in
      (match Json.member "predicted_cycles" j with
      | Some (Json.Float c) ->
          Alcotest.(check int64) "served search equals direct model-based search"
            (Int64.bits_of_float direct.Searcher.predicted_cycles) (Int64.bits_of_float c)
      | _ -> Alcotest.failf "no predicted_cycles in %S" body);
      (match Json.member "flags_string" j with
      | Some (Json.Str s) ->
          Alcotest.(check string) "served flags equal direct flags"
            (Emc_opt.Flags.to_string direct.Searcher.flags) s
      | _ -> Alcotest.failf "no flags_string in %S" body);
      match Json.member "evaluations" j with
      | Some (Json.Int n) -> cb "GA actually ran" true (n > 0)
      | _ -> Alcotest.failf "no evaluations in %S" body)

let test_fuzz_and_shutdown () =
  let srv = start_server () in
  let _, path = srv in
  (* the daemon must shrug off garbage: truncated requests, binary noise,
     lying content-lengths, oversized declarations *)
  let rng = Emc_util.Rng.create 77 in
  let garbage () =
    String.init (1 + Emc_util.Rng.int rng 200) (fun _ -> Char.chr (Emc_util.Rng.int rng 256))
  in
  for i = 0 to 29 do
    let payload =
      match i mod 5 with
      | 0 -> garbage ()
      | 1 -> "GET /healthz HTTP/1.1\r\nHost" (* truncated mid-header *)
      | 2 -> "POST /predict HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n" (* lying length *)
      | 3 -> "FROB /predict SPDY/9\r\n\r\n"
      | _ -> "POST /predict HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
    in
    ignore (try raw_roundtrip path payload with Unix.Unix_error _ -> "")
  done;
  (* still alive and correct *)
  let status, body = request path "/healthz" in
  ci "healthz after fuzz" 200 status;
  cb "healthz body after fuzz" true
    (Json.member "status" (json_of body) = Some (Json.Str "ok"));
  let _, metrics = request path "/metrics" in
  let has s =
    let n = String.length metrics and m = String.length s in
    let rec go i = i + m <= n && (String.sub metrics i m = s || go (i + 1)) in
    go 0
  in
  cb "fuzz errors counted (400s)" true (has "emc_serve_errors_400 ");
  cb "oversized counted (413s)" true (has "emc_serve_errors_413 ");
  (* graceful shutdown: SIGTERM -> exit 0, socket unlinked *)
  let status, socket_left = stop_server srv in
  cb "clean exit on SIGTERM" true (status = Unix.WEXITED 0);
  cb "socket unlinked on shutdown" false socket_left

(* ---------------- request ids ---------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* One keep-alive exchange using the Http client half. *)
let keepalive_request fd ?(headers = []) target =
  let extra = String.concat "" (List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n") headers) in
  let text = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n%s\r\n" target extra in
  write_all fd text 0 (String.length text);
  match Http.read_response fd with
  | Ok r -> r
  | Error _ -> Alcotest.failf "no response for %s" target

let test_request_ids () =
  with_server (fun (_, path) ->
      let fd = connect path in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      (* a sane client id is echoed verbatim *)
      let r = keepalive_request fd ~headers:[ ("X-Request-Id", "my-id_1.23") ] "/healthz" in
      cb "client id echoed" true (Http.response_header r "x-request-id" = Some "my-id_1.23");
      (* no id: the daemon generates one *)
      let id_of r =
        match Http.response_header r "x-request-id" with
        | Some id -> id
        | None -> Alcotest.fail "response carries no X-Request-Id"
      in
      let a = id_of (keepalive_request fd "/healthz") in
      let b = id_of (keepalive_request fd "/healthz") in
      cb "generated ids are nonempty" true (String.length a > 0);
      cb "generated ids are unique" true (a <> b);
      (* an insane client id (whitespace, header-breaking) is replaced *)
      let bad = "spaces and\ttabs" in
      let r = keepalive_request fd ~headers:[ ("X-Request-Id", bad) ] "/healthz" in
      cb "insane id replaced" true (id_of r <> bad);
      (* error responses carry an id too *)
      let r = keepalive_request fd "/nope" in
      ci "404 over keep-alive" 404 r.Http.status;
      cb "error response has an id" true (String.length (id_of r) > 0))

(* ---------------- cross-worker /metrics aggregation ---------------- *)

(* Three workers, three concurrent keep-alive connections, k requests
   apiece; a scrape must report the exact sum. Workers publish their
   snapshot right {e after} a response's last byte reaches the kernel,
   so a scrape racing another worker's final publish can trail it by
   microseconds — the test retries the scrape briefly until the sums
   converge, then asserts exactness. *)
let test_multiworker_metrics_sum () =
  with_server ~workers:3 (fun (_, path) ->
      let conns = List.init 3 (fun _ -> connect path) in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) conns)
      @@ fun () ->
      let k = 5 in
      List.iter
        (fun fd ->
          for _ = 1 to k do
            ci "healthz ok" 200 (keepalive_request fd "/healthz").Http.status
          done)
        conns;
      let scrape_values () =
        let scrape = keepalive_request (List.nth conns 1) "/metrics" in
        ci "metrics ok" 200 scrape.Http.status;
        let value_of name =
          let prefix = name ^ " " in
          let line =
            List.find_opt
              (fun l -> String.length l > String.length prefix
                        && String.sub l 0 (String.length prefix) = prefix)
              (String.split_on_char '\n' scrape.Http.resp_body)
          in
          match line with
          | Some l ->
              int_of_string
                (String.sub l (String.length prefix) (String.length l - String.length prefix))
          | None -> Alcotest.failf "no %s in scrape" name
        in
        ( value_of "emc_serve_requests",
          value_of "emc_serve_requests__healthz",
          value_of "emc_serve_latency_seconds__healthz_count",
          value_of "emc_serve_latency_seconds__healthz_bucket{le=\"+Inf\"}" )
      in
      (* scrape [attempt] is itself request 3k + attempt on its worker,
         and the answering worker publishes its live registry, so the
         scrape always counts itself *)
      let rec converge attempt =
        let ((requests, healthz, hist, inf) as got) = scrape_values () in
        let expected = ((3 * k) + attempt, 3 * k, 3 * k, 3 * k) in
        if got = expected || attempt >= 40 then (attempt, requests, healthz, hist, inf)
        else begin
          ignore (Unix.select [] [] [] 0.05);
          converge (attempt + 1)
        end
      in
      let attempt, requests, healthz, hist, inf = converge 1 in
      ci "requests counter is the exact sum" ((3 * k) + attempt) requests;
      ci "healthz counter is the exact sum" (3 * k) healthz;
      (* the merged latency histogram saw every healthz request *)
      ci "histogram count equals requests" (3 * k) hist;
      ci "le=+Inf bucket equals count" (3 * k) inf)

(* ---------------- access log ---------------- *)

let test_access_log () =
  let log = Filename.temp_file "emc_access" ".jsonl" in
  Sys.remove log;
  Fun.protect ~finally:(fun () -> if Sys.file_exists log then Sys.remove log)
  @@ fun () ->
  with_server ~access_log:log (fun ((_, path) as srv) ->
      let fd = connect path in
      ci "healthz" 200
        (keepalive_request fd ~headers:[ ("X-Request-Id", "log-me-1") ] "/healthz").Http.status;
      ci "rank" 200
        (keepalive_request fd ~headers:[ ("X-Request-Id", "log-me-2") ] "/rank?top=2").Http.status;
      Unix.close fd;
      (* graceful shutdown flushes the log before the daemon exits *)
      let status, _ = stop_server srv in
      cb "clean exit" true (status = Unix.WEXITED 0);
      let ic = open_in log in
      let lines = In_channel.input_lines ic in
      close_in ic;
      ci "one record per request" 2 (List.length lines);
      let records = List.map json_of lines in
      let field r name =
        match Json.member name r with
        | Some v -> v
        | None -> Alcotest.failf "access record lacks %S" name
      in
      List.iteri
        (fun i r ->
          cb "status 200" true (field r "status" = Json.Int 200);
          cb "id recorded" true
            (field r "id" = Json.Str (Printf.sprintf "log-me-%d" (i + 1)));
          cb "worker pid recorded" true (match field r "worker" with Json.Int p -> p > 0 | _ -> false);
          cb "bytes_out positive" true
            (match field r "bytes_out" with Json.Int n -> n > 0 | _ -> false);
          List.iter
            (fun phase ->
              cb (phase ^ " timing recorded") true
                (match field r phase with
                | Json.Float t -> t >= 0.0
                | Json.Int t -> t >= 0
                | _ -> false))
            [ "parse_s"; "handle_s"; "write_s" ])
        records;
      cb "paths recorded" true
        (field (List.nth records 1) "path" = Json.Str "/rank"))

(* ---------------- Http reader regressions ---------------- *)

(* Two complete requests in one write. The reader slurps past the first
   body; the surplus is the second request and must come back through
   [carry] — the pre-carry client silently discarded it, deadlocking any
   pipelined connection. *)
let test_http_pipelined_carry () =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ client; server ])
    (fun () ->
      let req i body =
        Printf.sprintf "POST /m%d HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s" i
          (String.length body) body
      in
      let bytes = req 1 "alpha" ^ req 2 "beta-longer" in
      ignore (Unix.write_substring client bytes 0 (String.length bytes));
      Unix.shutdown client Unix.SHUTDOWN_SEND;
      let carry = ref "" in
      (match Http.read_request ~timeout:2.0 ~carry server with
      | Ok r ->
          Alcotest.(check string) "first path" "/m1" r.Http.path;
          Alcotest.(check string) "first body" "alpha" r.Http.body
      | Error e -> Alcotest.failf "first request: %s" (Http.error_to_string e));
      match Http.read_request ~timeout:2.0 ~carry server with
      | Ok r ->
          Alcotest.(check string) "second path survives the first body's read-ahead"
            "/m2" r.Http.path;
          Alcotest.(check string) "second body" "beta-longer" r.Http.body
      | Error e -> Alcotest.failf "second request: %s" (Http.error_to_string e))

(* A peer dribbling one byte per interval. Each byte lands well inside any
   per-read socket timeout, so only an absolute deadline can stop this —
   the pre-fix client sat through the whole dribble (and a malicious peer
   could stretch it forever). *)
let test_http_dribble_timeout () =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      (try Unix.close client with Unix.Unix_error _ -> ());
      let payload = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n" in
      (try
         String.iter
           (fun c ->
             ignore (Unix.select [] [] [] 0.15);
             ignore (Unix.write_substring server (String.make 1 c) 0 1))
           payload
       with Unix.Unix_error _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close server;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ())
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let r = Http.read_response ~timeout:0.5 client in
          let elapsed = Unix.gettimeofday () -. t0 in
          cb "dribbled response times out" true (r = Error Http.Timeout);
          cb "the deadline bounds the whole response, not each read" true (elapsed < 2.0))

(* A peer that never writes, while an interval timer delivers SIGALRM
   every 50 ms. The pre-fix client restarted its full timeout window on
   every EINTR, so under a signal-heavy process (child reaping, profiling
   timers) the timeout never fired at all. *)
let test_http_eintr_budget () =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let old_handler = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.05; it_value = 0.05 });
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = 0.0 });
      Sys.set_signal Sys.sigalrm old_handler;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ client; server ])
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = Http.read_response ~timeout:0.4 client in
      let elapsed = Unix.gettimeofday () -. t0 in
      cb "silent peer times out despite constant signals" true (r = Error Http.Timeout);
      cb "EINTR re-waits with the remaining budget, not the full window" true
        (elapsed < 2.0))

(* ---------------- multiplexed scheduler ---------------- *)

(* Two connections to ONE worker, each pipelining several id-tagged
   requests in a single write. The scheduler must answer each
   connection's requests strictly in order, ids matched, with no
   cross-connection interleaving — the old one-connection-per-worker
   loop would have parked connection B until A closed. *)
let test_multiplexed_pipelining () =
  with_server ~workers:1 (fun (_, path) ->
      let ids tag = List.init 3 (fun i -> Printf.sprintf "%s-%d" tag i) in
      let mk id =
        Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Request-Id: %s\r\n\r\n" id
      in
      let a = connect path and b = connect path in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
      @@ fun () ->
      let send fd tag =
        let text = String.concat "" (List.map mk (ids tag)) in
        write_all fd text 0 (String.length text)
      in
      send a "conn-a";
      send b "conn-b";
      let read_ids fd =
        let carry = ref "" in
        List.init 3 (fun _ ->
            match Http.read_response ~timeout:5.0 ~carry fd with
            | Ok r ->
                ci "pipelined healthz ok" 200 r.Http.status;
                (match Http.response_header r "x-request-id" with
                | Some id -> id
                | None -> Alcotest.fail "pipelined response carries no X-Request-Id")
            | Error e -> Alcotest.failf "pipelined read: %s" (Http.error_to_string e))
      in
      Alcotest.(check (list string)) "conn A: responses in request order, ids matched"
        (ids "conn-a") (read_ids a);
      Alcotest.(check (list string)) "conn B: responses in request order, ids matched"
        (ids "conn-b") (read_ids b))

(* A connection that never sends a byte is closed silently (clean EOF,
   no 408 body) once the idle deadline passes. *)
let test_idle_deadline_closes () =
  with_server ~idle_timeout:0.4 (fun (_, path) ->
      let fd = connect path in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let t0 = Unix.gettimeofday () in
      let buf = Bytes.create 64 in
      match Unix.read fd buf 0 64 with
      | 0 -> cb "silent close near the idle deadline" true (Unix.gettimeofday () -. t0 < 3.0)
      | n ->
          Alcotest.failf "idle connection got %d unexpected bytes: %S" n
            (Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Alcotest.fail "idle connection was not closed within 5 s")

(* A stalled reader: connection A pipelines far more responses than the
   socket buffer holds and reads none of them, so the worker's write to
   A blocks mid-stream (one buffered response, kernel back-pressure).
   The same worker must still answer connection B immediately — and A's
   access-log/metrics publish (deferred to after the write) must not
   block B either. Then A drains and every response arrives in order. *)
let test_stalled_reader_fairness () =
  let n = 3000 in
  with_server ~workers:1 ~read_timeout:5.0 (fun (_, path) ->
      let a = connect path and b = connect path in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
      @@ fun () ->
      let reqs = Buffer.create (n * 64) in
      for i = 1 to n do
        Buffer.add_string reqs
          (Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Request-Id: st-%d\r\n\r\n" i)
      done;
      let text = Buffer.contents reqs in
      write_all a text 0 (String.length text);
      (* give the worker a moment to wedge against A's full socket buffer *)
      ignore (Unix.select [] [] [] 0.2);
      let t0 = Unix.gettimeofday () in
      ci "fast connection answered while A is stalled" 200
        (keepalive_request b "/healthz").Http.status;
      cb "stalled reader does not delay the fast connection" true
        (Unix.gettimeofday () -. t0 < 1.0);
      (* now drain A: all n responses, in order *)
      let carry = ref "" in
      for i = 1 to n do
        match Http.read_response ~timeout:5.0 ~carry a with
        | Ok r ->
            if r.Http.status <> 200 then Alcotest.failf "stalled conn response %d: %d" i r.Http.status;
            if Http.response_header r "x-request-id" <> Some (Printf.sprintf "st-%d" i) then
              Alcotest.failf "stalled conn response %d out of order" i
        | Error e -> Alcotest.failf "stalled conn response %d: %s" i (Http.error_to_string e)
      done)

(* A dribbling writer: connection A delivers its request one byte at a
   time. While it dribbles, the same worker keeps answering connection B
   at full speed, and A's request is served normally once its last byte
   lands (it stays inside the read deadline). *)
let test_dribbling_writer_fairness () =
  with_server ~workers:1 ~read_timeout:5.0 (fun (_, path) ->
      let a = connect path and b = connect path in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
      @@ fun () ->
      let text = "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Request-Id: dribble\r\n\r\n" in
      match Unix.fork () with
      | 0 ->
          (try Unix.close b with Unix.Unix_error _ -> ());
          (try
             String.iter
               (fun ch ->
                 ignore (Unix.select [] [] [] 0.04);
                 ignore (Unix.write_substring a (String.make 1 ch) 0 1))
               text
           with Unix.Unix_error _ -> ());
          Unix._exit 0
      | pid ->
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
          @@ fun () ->
          (* ~2.5 s of dribble; keep hammering B meanwhile *)
          let worst = ref 0.0 in
          let t_end = Unix.gettimeofday () +. 1.5 in
          while Unix.gettimeofday () < t_end do
            let t0 = Unix.gettimeofday () in
            ci "fast connection during dribble" 200 (keepalive_request b "/healthz").Http.status;
            worst := Float.max !worst (Unix.gettimeofday () -. t0);
            ignore (Unix.select [] [] [] 0.02)
          done;
          cb "dribbler does not raise the fast connection's latency" true (!worst < 0.5);
          (* the dribbled request completes once its bytes are all in *)
          match Http.read_response ~timeout:10.0 a with
          | Ok r ->
              ci "dribbled request served" 200 r.Http.status;
              cb "dribbled request id echoed" true
                (Http.response_header r "x-request-id" = Some "dribble")
          | Error e -> Alcotest.failf "dribbled request: %s" (Http.error_to_string e))

(* The allocation-lean hot path must be byte-identical to the reference
   handler on every endpoint and error shape — run each request through
   [handle_into] twice so scratch reuse across calls is covered too. *)
let test_hot_path_byte_identity () =
  let art = Lazy.force artifact in
  let hot = Serve.make_hot art in
  let dims = Params.n_all in
  let rng = Emc_util.Rng.create 11 in
  let point () =
    Json.List (List.init dims (fun _ -> Json.Float (Emc_util.Rng.float rng 2.0 -. 1.0)))
  in
  let post body = { Http.meth = "POST"; path = "/predict"; query = []; headers = []; body } in
  let requests =
    [ post (Json.to_string (Json.Obj [ ("point", point ()) ]));
      post (Json.to_string (Json.Obj [ ("points", Json.List [ point (); point (); point () ]) ]));
      post (Json.to_string (Json.Obj [ ("points", Json.List [ point () ]) ]));
      post
        (Json.to_string
           (Json.Obj [ ("point", point ()); ("space", Json.Str "raw") ]));
      post
        (Json.to_string
           (Json.Obj [ ("points", Json.List [ point (); point () ]); ("space", Json.Str "raw") ]));
      (* error shapes *)
      post "";
      post "{not json";
      post (Json.to_string (Json.Obj [ ("nope", Json.Int 1) ]));
      post (Json.to_string (Json.Obj [ ("point", Json.List [ Json.Float 0.5 ]) ]));
      post (Json.to_string (Json.Obj [ ("point", Json.Str "banana") ]));
      post (Json.to_string (Json.Obj [ ("points", Json.List []) ]));
      post
        (Json.to_string
           (Json.Obj
              [ ("points",
                 Json.List [ Json.List (List.init dims (fun _ -> Json.Str "x")) ]) ]));
      post (Json.to_string (Json.Obj [ ("point", point ()); ("space", Json.Str "warped") ]));
      { Http.meth = "GET"; path = "/predict"; query = []; headers = []; body = "" };
      { Http.meth = "GET"; path = "/nope"; query = []; headers = []; body = "" };
      { Http.meth = "GET"; path = "/rank"; query = [ ("top", "2") ]; headers = []; body = "" };
      { Http.meth = "GET"; path = "/healthz"; query = []; headers = []; body = "" };
    ]
  in
  List.iteri
    (fun i req ->
      let status_ref, ctype_ref, body_ref = Serve.handle_request art req in
      for pass = 1 to 2 do
        let status, ctype = Serve.handle_into hot req in
        let tag = Printf.sprintf "request %d pass %d" i pass in
        ci (tag ^ ": status") status_ref status;
        Alcotest.(check string) (tag ^ ": content type") ctype_ref ctype;
        Alcotest.(check string) (tag ^ ": body bytes") body_ref
          (Buffer.contents (Serve.hot_body hot))
      done)
    requests

let suite =
  [
    Alcotest.test_case "routing and structured errors (in-process)" `Quick
      test_routing_no_socket;
    Alcotest.test_case "/rank rejects malformed ?top" `Quick test_rank_top_validation;
    Alcotest.test_case "/rank orders NaN coefficients last" `Quick test_rank_nan_coef_last;
    Alcotest.test_case "/pareto without energy response is 409" `Quick
      test_pareto_requires_energy;
    Alcotest.test_case "/pareto equals direct bi-objective search" `Quick
      test_pareto_matches_direct;
    Alcotest.test_case "endpoints over a unix socket" `Quick test_endpoints;
    Alcotest.test_case "input validation status codes" `Quick test_validation;
    Alcotest.test_case "/search equals direct model-based search" `Quick
      test_search_matches_direct;
    Alcotest.test_case "survives fuzz; graceful shutdown" `Quick test_fuzz_and_shutdown;
    Alcotest.test_case "request ids: echo, generate, replace" `Quick test_request_ids;
    Alcotest.test_case "/metrics sums exactly across workers" `Quick
      test_multiworker_metrics_sum;
    Alcotest.test_case "access log: one JSONL record per request" `Quick test_access_log;
    Alcotest.test_case "http: pipelined requests survive body read-ahead" `Quick
      test_http_pipelined_carry;
    Alcotest.test_case "http: read deadline bounds a dribbling peer" `Quick
      test_http_dribble_timeout;
    Alcotest.test_case "http: EINTR does not restart the timeout" `Quick
      test_http_eintr_budget;
    Alcotest.test_case "mux: two connections pipeline through one worker" `Quick
      test_multiplexed_pipelining;
    Alcotest.test_case "mux: idle deadline closes a silent connection" `Quick
      test_idle_deadline_closes;
    Alcotest.test_case "mux: stalled reader cannot pin the worker" `Quick
      test_stalled_reader_fairness;
    Alcotest.test_case "mux: dribbling writer cannot pin the worker" `Quick
      test_dribbling_writer_fairness;
    Alcotest.test_case "hot path bytes equal the reference handler" `Quick
      test_hot_path_byte_identity;
  ]
