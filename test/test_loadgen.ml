(** The load-generating SLO harness, driven against a real [Serve.run]
    daemon: report arithmetic (counts, achieved rps, percentile
    coherence, per-endpoint decomposition), SLO parsing and checking,
    and the JSON report schema. *)

module Lg = Emc_loadgen.Loadgen
module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

let test_slo_parsing () =
  (match Lg.parse_slo "p99=0.05" with
  | Ok s ->
      Alcotest.(check string) "key" "p99" s.Lg.slo_key;
      Alcotest.(check (float 0.0)) "bound" 0.05 s.Lg.slo_bound
  | Error e -> Alcotest.failf "p99=0.05 should parse: %s" e);
  cb "missing = rejected" true (Result.is_error (Lg.parse_slo "p99"));
  cb "non-numeric bound rejected" true (Result.is_error (Lg.parse_slo "p99=fast"));
  cb "count bounds parse" true (Result.is_ok (Lg.parse_slo "5xx=0"))

let test_opts_validation () =
  let t = Lg.Unix_sock "/nonexistent.sock" in
  let base = Lg.default_opts t in
  cb "zero concurrency rejected" true
    (Result.is_error (Lg.run { base with Lg.concurrency = 0 }));
  cb "negative duration rejected" true
    (Result.is_error (Lg.run { base with Lg.duration = -1.0 }));
  cb "unknown endpoint rejected" true
    (Result.is_error (Lg.run { base with Lg.mix = [ ("teapot", 1) ] }));
  cb "zero weight rejected" true
    (Result.is_error (Lg.run { base with Lg.mix = [ ("predict", 0) ] }));
  cb "non-positive rps rejected" true
    (Result.is_error (Lg.run { base with Lg.mode = Lg.Open_loop 0.0 }));
  cb "non-positive think time rejected" true
    (Result.is_error (Lg.run { base with Lg.think = 0.0 }))

let run_against_server ~mode ~concurrency ~duration =
  (* the default test-server body cap (4 KiB) is below a predict_batch
     payload; raise it so every generated request is servable *)
  Test_serve.with_server ~workers:concurrency ~max_body:(256 * 1024) (fun (_, path) ->
      let opts =
        { (Lg.default_opts (Lg.Unix_sock path)) with Lg.mode; concurrency; duration; seed = 7 }
      in
      match Lg.run opts with
      | Ok r -> r
      | Error e -> Alcotest.failf "loadgen failed: %s" e)

let test_closed_loop_report_math () =
  let r = run_against_server ~mode:Lg.Closed_loop ~concurrency:2 ~duration:1.0 in
  cb "sent some traffic" true (r.Lg.r_sent > 0);
  ci "every request answered" r.Lg.r_sent r.Lg.r_responses;
  ci "every response a 200" r.Lg.r_responses r.Lg.r_2xx;
  ci "no connect errors" 0 r.Lg.r_connect_errors;
  ci "no timeouts" 0 r.Lg.r_timeouts;
  ci "no protocol errors" 0 r.Lg.r_protocol_errors;
  ci "no 4xx" 0 r.Lg.r_4xx;
  ci "no 5xx" 0 r.Lg.r_5xx;
  ci "every response echoed its id" 0 r.Lg.r_id_mismatches;
  ci "errors_total agrees" 0 (Lg.errors_total r);
  cb "wall clock near the requested duration" true
    (r.Lg.r_wall_s >= 1.0 && r.Lg.r_wall_s < 5.0);
  Alcotest.(check (float 1e-9)) "achieved rps = responses / wall"
    (float_of_int r.Lg.r_responses /. r.Lg.r_wall_s)
    r.Lg.r_achieved_rps;
  (* the overall latency histogram saw exactly the responses *)
  (match r.Lg.r_latency with
  | None -> Alcotest.fail "no latency histogram"
  | Some h ->
      let s = Option.get (Metrics.hsnap_stats h) in
      ci "latency count = responses" r.Lg.r_responses s.Metrics.count;
      cb "latencies positive" true (s.Metrics.min > 0.0));
  (* per-endpoint histograms decompose the total *)
  let by_total =
    List.fold_left
      (fun acc (_, h) ->
        acc + match Metrics.hsnap_stats h with Some s -> s.Metrics.count | None -> 0)
      0 r.Lg.r_by_endpoint
  in
  ci "endpoint histograms sum to the total" r.Lg.r_responses by_total;
  cb "the default mix exercised predict" true (List.mem_assoc "predict" r.Lg.r_by_endpoint);
  (* percentiles are monotone in q *)
  let p q = Option.get (Lg.percentile r q) in
  cb "p50 <= p90 <= p99 <= p99.9" true (p 50.0 <= p 90.0 && p 90.0 <= p 99.0 && p 99.0 <= p 99.9);
  (* SLO checks against the live report *)
  let check key bound =
    match Lg.check_slo r { Lg.slo_key = key; slo_bound = bound } with
    | Some (actual, ok) -> (actual, ok)
    | None -> Alcotest.failf "SLO key %s unknown" key
  in
  cb "generous p99 passes" true (snd (check "p99" 60.0));
  cb "impossible p99 fails" false (snd (check "p99" 1e-9));
  cb "5xx=0 passes" true (snd (check "5xx" 0.0));
  cb "error_rate=0 passes" true (snd (check "error_rate" 0.0));
  cb "unreachable rps floor fails" false (snd (check "rps" 1e9));
  cb "rps actual is the achieved rate" true (fst (check "rps" 0.0) = r.Lg.r_achieved_rps);
  cb "unknown key is None" true
    (Lg.check_slo r { Lg.slo_key = "p12"; slo_bound = 1.0 } = None);
  (* the JSON report carries the same numbers *)
  let j = Lg.report_to_json r in
  cb "schema" true (Json.member "schema" j = Some (Json.Str "emc-loadgen-report/1"));
  cb "mode" true (Json.member "mode" j = Some (Json.Str "closed"));
  cb "sent" true (Json.member "sent" j = Some (Json.Int r.Lg.r_sent));
  cb "responses" true (Json.member "responses" j = Some (Json.Int r.Lg.r_responses));
  (match Json.member "latency_s" j with
  | Some lat ->
      cb "latency count in json" true (Json.member "count" lat = Some (Json.Int r.Lg.r_responses));
      cb "p99 in json" true
        (match Json.member "p99" lat with Some (Json.Float v) -> v = p 99.0 | _ -> false)
  | None -> Alcotest.fail "no latency_s in report json");
  match Json.member "errors" j with
  | Some errs -> cb "zero 5xx in json" true (Json.member "status_5xx" errs = Some (Json.Int 0))
  | None -> Alcotest.fail "no errors in report json"

let test_open_loop_pacing () =
  (* 80 rps for 1.5 s against an idle server: the seeded Poisson pacing
     should land within a loose factor of the target, and nothing
     should queue (no late arrivals to speak of, single-digit ms p99) *)
  let r = run_against_server ~mode:(Lg.Open_loop 80.0) ~concurrency:2 ~duration:1.5 in
  ci "all answered" r.Lg.r_sent r.Lg.r_responses;
  ci "no errors" 0 (Lg.errors_total r);
  cb "throughput within 2x of target" true
    (r.Lg.r_achieved_rps > 40.0 && r.Lg.r_achieved_rps < 160.0);
  let j = Lg.report_to_json r in
  cb "open mode in json" true (Json.member "mode" j = Some (Json.Str "open"));
  cb "target_rps in json" true (Json.member "target_rps" j = Some (Json.Float 80.0))

let test_think_mix_holds_connections () =
  (* a mix with think draws: the connections out-number the workers and
     sit silent holding their sockets between requests — the multiplexed
     daemon must keep serving all of them with zero errors (the old
     one-connection-per-worker loop starved everyone behind a thinker) *)
  Test_serve.with_server ~workers:1 (fun (_, path) ->
      let opts =
        { (Lg.default_opts (Lg.Unix_sock path)) with
          Lg.concurrency = 4; duration = 1.0; seed = 11; think = 0.05;
          mix = [ ("predict", 4); ("healthz", 2); ("think", 3) ] }
      in
      match Lg.run opts with
      | Error e -> Alcotest.failf "loadgen failed: %s" e
      | Ok r ->
          cb "sent some traffic" true (r.Lg.r_sent > 0);
          ci "every request answered" r.Lg.r_sent r.Lg.r_responses;
          ci "no errors" 0 (Lg.errors_total r);
          ci "no id mismatches" 0 r.Lg.r_id_mismatches;
          cb "think draws stay out of the latency histogram" true
            (match r.Lg.r_latency with
            | Some h -> (
                match Metrics.hsnap_stats h with
                | Some s -> s.Metrics.count = r.Lg.r_responses
                | None -> r.Lg.r_responses = 0)
            | None -> r.Lg.r_responses = 0);
          cb "no think endpoint histogram" true
            (not (List.mem_assoc "think" r.Lg.r_by_endpoint)))

let suite =
  [
    Alcotest.test_case "slo parsing" `Quick test_slo_parsing;
    Alcotest.test_case "bad options are rejected before forking" `Quick test_opts_validation;
    Alcotest.test_case "closed-loop report math against a live daemon" `Quick
      test_closed_loop_report_math;
    Alcotest.test_case "open-loop pacing hits the target rate" `Quick test_open_loop_pacing;
    Alcotest.test_case "think mix holds connections open without errors" `Quick
      test_think_mix_holds_connections;
  ]
