(** Design-of-experiments tests: LHS coverage, the D-optimality criterion,
    Fedorov exchange improvement over random designs. *)

open Emc_doe

let cb = Alcotest.(check bool)

let small_space =
  {
    Doe.names = [| "a"; "b"; "c"; "d" |];
    levels =
      [| [| -1.0; 1.0 |]; [| -1.0; 0.0; 1.0 |]; [| -1.0; -0.5; 0.0; 0.5; 1.0 |]; [| -1.0; 1.0 |] |];
  }

let test_random_design_on_grid () =
  let rng = Emc_util.Rng.create 1 in
  let d = Doe.random_design rng small_space 50 in
  Alcotest.(check int) "size" 50 (Array.length d);
  Array.iter
    (fun p ->
      Array.iteri
        (fun dim v ->
          cb "value on grid" true (Array.exists (fun l -> l = v) small_space.levels.(dim)))
        p)
    d

let test_lhs_marginal_coverage () =
  let rng = Emc_util.Rng.create 2 in
  let n = 60 in
  let d = Doe.lhs rng small_space n in
  (* every level of every dimension must appear with roughly even frequency *)
  Array.iteri
    (fun dim levels ->
      Array.iter
        (fun l ->
          let count = Array.fold_left (fun acc p -> if p.(dim) = l then acc + 1 else acc) 0 d in
          let expected = n / Array.length levels in
          cb
            (Printf.sprintf "dim %d level %g count %d ~ %d" dim l count expected)
            true
            (count >= (expected / 2) && count <= expected * 2))
        levels)
    small_space.levels

let test_expand_main () =
  let row = Doe.expand_main [| 0.5; -1.0 |] in
  Alcotest.(check (array (float 1e-12))) "intercept + mains" [| 1.0; 0.5; -1.0 |] row

let test_d_optimal_beats_random () =
  let rng = Emc_util.Rng.create 3 in
  (* average over a few seeds to keep this robust *)
  let wins = ref 0 in
  for _ = 1 to 5 do
    let dopt = Doe.generate rng small_space ~n:12 in
    let rand = Doe.random_design rng small_space 12 in
    if Doe.log_det_information dopt >= Doe.log_det_information rand then incr wins
  done;
  cb (Printf.sprintf "d-optimal wins %d/5" !wins) true (!wins >= 4)

let test_d_optimal_nondegenerate () =
  let rng = Emc_util.Rng.create 4 in
  let d = Doe.generate rng small_space ~n:10 in
  Alcotest.(check int) "requested size" 10 (Array.length d);
  cb "information matrix nonsingular" true (Doe.log_det_information d > neg_infinity)

let test_d_optimal_full_space () =
  (* the real 25-parameter space of the paper *)
  let rng = Emc_util.Rng.create 5 in
  let space = Emc_core.Params.space_all in
  let d = Doe.generate ~sweeps:1 ~cand_factor:3 rng space ~n:40 in
  Alcotest.(check int) "size" 40 (Array.length d);
  cb "nonsingular" true (Doe.log_det_information d > neg_infinity);
  (* points decode into valid configurations *)
  Array.iter
    (fun p ->
      let flags, march = Emc_core.Params.configs_of_coded p in
      cb "issue width valid" true (march.Emc_sim.Config.issue_width = 2 || march.issue_width = 4);
      cb "unroll bounds" true
        (flags.Emc_opt.Flags.max_unroll_times >= 4 && flags.max_unroll_times <= 12))
    d

let test_augment_is_d_optimal_given_base () =
  (* augmenting a design must pick extra rows that are good {e jointly} with
     the existing ones: log det of the combined information matrix beats
     appending an independent random design in most seeds *)
  let wins = ref 0 in
  for seed = 1 to 5 do
    let rng = Emc_util.Rng.create (100 + seed) in
    let base = Doe.generate rng small_space ~n:8 in
    let extra = Doe.augment rng small_space ~design:base ~n_extra:6 in
    Alcotest.(check int) "n_extra rows returned" 6 (Array.length extra);
    Array.iter
      (fun p ->
        Array.iteri
          (fun dim v ->
            cb "augmented point on grid" true
              (Array.exists (fun l -> l = v) small_space.levels.(dim)))
          p)
      extra;
    let rand = Doe.random_design rng small_space 6 in
    if
      Doe.log_det_information (Array.append base extra)
      >= Doe.log_det_information (Array.append base rand)
    then incr wins
  done;
  cb (Printf.sprintf "augment wins %d/5" !wins) true (!wins >= 4)

let prop_lhs_values_on_grid =
  QCheck.Test.make ~name:"lhs points stay on the level grid" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Emc_util.Rng.create seed in
      let d = Doe.lhs rng small_space n in
      Array.for_all
        (fun p ->
          Array.length p = 4
          && Array.for_all Fun.id
               (Array.mapi
                  (fun dim v -> Array.exists (fun l -> l = v) small_space.levels.(dim))
                  p))
        d)

let suite =
  [
    ("random design on grid", `Quick, test_random_design_on_grid);
    ("lhs marginal coverage", `Quick, test_lhs_marginal_coverage);
    ("expand main effects", `Quick, test_expand_main);
    ("d-optimal beats random", `Quick, test_d_optimal_beats_random);
    ("d-optimal nondegenerate", `Quick, test_d_optimal_nondegenerate);
    ("d-optimal on the paper space", `Quick, test_d_optimal_full_space);
    ("augment is jointly d-optimal", `Quick, test_augment_is_d_optimal_given_base);
    QCheck_alcotest.to_alcotest prop_lhs_values_on_grid;
  ]
