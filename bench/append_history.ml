(* Append one labeled run to an emc-bench-history/1 file (BENCH_sim.json,
   BENCH_serve.json) without rewriting what's already there: the existing
   entries are preserved byte-for-byte and the new entry is spliced in
   front of the closing bracket of "runs". The result is re-parsed before
   anything is written, and the write is atomic (tmp + rename), so a
   malformed entry can never corrupt the history.

     append_history.exe --history BENCH_serve.json \
       --label "seed: closed loop, 4 workers" --entry /tmp/report.json

   The entry file is any JSON object (a bench/main.exe --json snapshot,
   an emc loadgen --json report); --label and a unix_time stamp are added
   to it. When the history file does not exist yet it is created, with
   --note / --kernel-filter recorded once at creation. *)

module Json = Emc_obs.Json

let history_schema = "emc-bench-history/1"

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("append_history: " ^ m); exit 1) fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path

(* A small pretty-printer (the shared Json.to_string is compact); history
   files are read by humans as much as by CI. *)
let rec pretty buf indent j =
  let pad n = String.make n ' ' in
  match j with
  | Json.Obj [] -> Buffer.add_string buf "{}"
  | Json.Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_string buf (Json.to_string (Json.Str k));
          Buffer.add_string buf ": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'
  | Json.List [] -> Buffer.add_string buf "[]"
  | Json.List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          pretty buf (indent + 2) v)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | leaf -> Buffer.add_string buf (Json.to_string leaf)

let pretty_string indent j =
  let buf = Buffer.create 256 in
  pretty buf indent j;
  Buffer.contents buf

let build_entry ~label entry_json =
  let fields =
    match entry_json with
    | Json.Obj fields -> fields
    | _ -> die "the entry must be a JSON object"
  in
  let fields = List.remove_assoc "label" fields in
  let fields =
    if List.mem_assoc "unix_time" fields then fields
    else fields @ [ ("unix_time", Json.Int (int_of_float (Unix.time ()))) ]
  in
  Json.Obj (("label", Json.Str label) :: fields)

(* Splice the new entry in front of the last "]" of the file — the close
   of "runs", which is the document's final key. Old entries keep their
   exact bytes. *)
let append_to existing entry =
  (match Json.parse existing with
  | Error e -> die "existing history is not valid JSON: %s" e
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str s) when s = history_schema -> ()
      | _ -> die "existing history does not carry schema %S" history_schema));
  let close =
    match String.rindex_opt existing ']' with
    | Some i -> i
    | None -> die "existing history has no runs array to append to"
  in
  let runs_empty =
    (* nothing but whitespace between "[" and this "]"? *)
    let rec back i =
      if i < 0 then true
      else
        match existing.[i] with
        | ' ' | '\n' | '\t' | '\r' -> back (i - 1)
        | '[' -> true
        | _ -> false
    in
    back (close - 1)
  in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && (match s.[!n - 1] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
      decr n
    done;
    String.sub s 0 !n
  in
  let spliced =
    String.concat ""
      [ rtrim (String.sub existing 0 close);
        (if runs_empty then "" else ",");
        "\n    ";
        pretty_string 4 entry;
        "\n  ";
        String.sub existing close (String.length existing - close) ]
  in
  (match Json.parse spliced with
  | Error e -> die "internal error: spliced history does not parse: %s" e
  | Ok _ -> ());
  spliced

let create ~note ~kernel_filter entry =
  let fields =
    [ ("schema", Json.Str history_schema) ]
    @ (match kernel_filter with Some f -> [ ("kernel_filter", Json.Str f) ] | None -> [])
    @ (match note with Some n -> [ ("note", Json.Str n) ] | None -> [])
    @ [ ("runs", Json.List [ entry ]) ]
  in
  pretty_string 0 (Json.Obj fields) ^ "\n"

let () =
  let history = ref "" in
  let label = ref "" in
  let entry_file = ref "" in
  let note = ref None in
  let kernel_filter = ref None in
  let spec =
    [ ("--history", Arg.Set_string history, "FILE emc-bench-history/1 file to append to");
      ("--label", Arg.Set_string label, "STR label for this run");
      ("--entry", Arg.Set_string entry_file, "FILE JSON object to append (- for stdin)");
      ("--note", Arg.String (fun s -> note := Some s), "STR note recorded when creating FILE");
      ("--kernel-filter",
       Arg.String (fun s -> kernel_filter := Some s),
       "STR kernel filter recorded when creating FILE") ]
  in
  let usage = "append_history --history FILE --label STR --entry FILE" in
  Arg.parse spec (fun a -> die "unexpected argument %S" a) usage;
  if !history = "" || !label = "" || !entry_file = "" then
    die "--history, --label and --entry are all required";
  let entry_text =
    if !entry_file = "-" then In_channel.input_all stdin else read_file !entry_file
  in
  let entry_json =
    match Json.parse entry_text with
    | Ok j -> j
    | Error e -> die "entry %s: %s" !entry_file e
  in
  let entry = build_entry ~label:!label entry_json in
  let text =
    if Sys.file_exists !history then append_to (read_file !history) entry
    else create ~note:!note ~kernel_filter:!kernel_filter entry
  in
  write_atomic !history text;
  Printf.printf "%s: appended %S\n" !history !label
