(** The benchmark harness.

    Running [dune exec bench/main.exe] regenerates every table and figure of
    the paper's evaluation (Tables 3–7, Figures 5–7, plus Figure 3 from
    §4.1), then runs the ablation studies called out in DESIGN.md, then a
    set of Bechamel micro-benchmarks of the computational kernels behind
    each table. The protocol scale is selected with EMC_SCALE=quick|full
    (see {!Emc_core.Scale}); quick is the default and completes in minutes.

    Pass [--bechamel-only] to skip the experiments, or [--no-bechamel] to
    skip the micro-benchmarks. [--filter SUB] restricts the micro-benchmarks
    to kernels whose name contains SUB ([--filter sim] is the simulator-only
    run CI tracks), and [--json PATH] writes the kernel timings as
    machine-readable JSON (see BENCH_sim.json at the repo root). *)

open Emc_core
open Emc_regress
open Emc_workloads

let t_start = Unix.gettimeofday ()

let hr title =
  Printf.printf "\n%s  [t=%.0fs]\n%s\n%!" title (Unix.gettimeofday () -. t_start)
    (String.make (String.length title) '=')

(* A harness phase: section header on stdout plus a span in the trace file
   (EMC_TRACE=<file>), so a Perfetto timeline shows where the wall clock
   went — prepare vs tables vs ablations vs micro-benchmarks. *)
let phase title f = hr title; Emc_obs.Trace.with_span ~cat:"phase" title f

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablation_doe (ctx : Experiments.ctx) =
  Printf.printf "== Ablation: D-optimal design vs random vs LHS (gzip, RBF models) ==\n%!";
  let w = Registry.find "gzip" in
  let d = Experiments.prepare ctx w in
  let n = ctx.scale.Scale.train_n in
  let rng = Emc_util.Rng.split ctx.rng in
  let space = Params.space_all in
  let designs =
    [ ("d-optimal", d.Experiments.train);
      ("random",
       Modeling.build_dataset ctx.measure w ~variant:Workload.Train
         (Emc_doe.Doe.random_design rng space n));
      ("lhs",
       Modeling.build_dataset ctx.measure w ~variant:Workload.Train
         (Emc_doe.Doe.lhs rng space n)) ]
  in
  List.iter
    (fun (name, train) ->
      let m = Modeling.fit Modeling.Rbf train in
      let lin = Modeling.fit Modeling.Linear train in
      Printf.printf "  %-10s logdet=%8.2f  rbf-mape=%6.2f%%  linear-mape=%6.2f%%\n%!" name
        (Emc_doe.Doe.log_det_information train.Dataset.x)
        (Metrics.mape m.Model.predict d.Experiments.test)
        (Metrics.mape lin.Model.predict d.Experiments.test))
    designs;
  Printf.printf "\n"

let ablation_rbf (ctx : Experiments.ctx) =
  Printf.printf "== Ablation: RBF kernel choice (test MAPE %%) ==\n";
  Printf.printf "  %-14s %14s %14s %14s\n" "bench" "multiquadric" "gaussian" "inv-multiquad";
  List.iter
    (fun w ->
      let d = Experiments.prepare ctx w in
      let err k =
        let m = Rbf.fit ~kernel:k d.Experiments.train in
        Metrics.mape m.Model.predict d.Experiments.test
      in
      Printf.printf "  %-14s %14.2f %14.2f %14.2f\n%!" (Experiments.short_name w)
        (err Rbf.Multiquadric) (err Rbf.Gaussian) (err Rbf.InverseMultiquadric))
    Registry.all;
  Printf.printf "\n"

let ablation_smarts (ctx : Experiments.ctx) =
  Printf.printf "== Ablation: SMARTS sampling vs full detailed simulation ==\n";
  List.iter
    (fun name ->
      let w = Registry.find name in
      let flags = Emc_opt.Flags.o2 in
      let march = Emc_sim.Config.typical in
      let prog = Measure.compile ctx.measure w flags ~issue_width:march.issue_width in
      let arrays = w.Workload.arrays ~scale:ctx.scale.Scale.workload_scale ~variant:Workload.Train in
      let setup = Measure.setup_func arrays in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let full, tf = time (fun () -> Emc_sim.Smarts.run_full march prog ~setup) in
      let smp, ts = time (fun () -> Emc_sim.Smarts.run_sampled march prog ~setup) in
      Printf.printf
        "  %-10s full=%12.0fcy (%5.2fs)  sampled=%12.0fcy (%5.2fs, %d units, ci=%.3f) err=%+.2f%%\n%!"
        name full.Emc_sim.Smarts.cycles tf smp.Emc_sim.Smarts.cycles ts
        smp.Emc_sim.Smarts.sampled_units smp.Emc_sim.Smarts.ci_rel
        (100.0 *. (smp.Emc_sim.Smarts.cycles -. full.Emc_sim.Smarts.cycles)
         /. full.Emc_sim.Smarts.cycles))
    [ "gzip"; "mcf"; "mesa" ];
  Printf.printf "\n"

let ablation_search (ctx : Experiments.ctx) =
  Printf.printf "== Ablation: GA vs random search vs hill climbing (predicted cycles, typical) ==\n";
  Printf.printf "  %-14s %14s %14s %14s\n" "bench" "GA" "random(2.4k)" "hill-climb";
  List.iter
    (fun w ->
      let d = Experiments.prepare ctx w in
      let m = Experiments.rbf_model d in
      let march = Emc_sim.Config.typical in
      let rng () = Emc_util.Rng.split ctx.rng in
      let ga = Searcher.search ~params:ctx.scale.Scale.ga ~rng:(rng ()) ~model:m ~march () in
      let rs = Searcher.search_random ~rng:(rng ()) ~model:m ~march ~evals:2400 () in
      let hc = Searcher.search_hill_climb ~rng:(rng ()) ~model:m ~march ~restarts:3 () in
      Printf.printf "  %-14s %14.0f %14.0f %14.0f\n%!" (Experiments.short_name w)
        ga.Searcher.predicted_cycles rs.Searcher.predicted_cycles hc.Searcher.predicted_cycles)
    Registry.all;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure kernel               *)

(* Kernel dependencies are lazy so that a filtered run only pays for what
   the selected kernels actually need: `--filter sim` in CI skips dataset
   preparation and model fitting entirely and goes straight to the
   simulator kernels. Each kernel builder forces its inputs *before*
   staging the timed closure, so laziness never pollutes a measurement. *)
let bechamel_suite ?filter ?json_path (ctx : Experiments.ctx) =
  let gzip = Registry.find "gzip" in
  let d = lazy (Experiments.prepare ctx gzip) in
  let rbf = lazy (Experiments.rbf_model (Lazy.force d)) in
  let march = Emc_sim.Config.typical in
  let march_coded = Searcher.coded_march march in
  let rng = Emc_util.Rng.create 17 in
  let space = Params.space_all in
  let candidates = lazy (Emc_doe.Doe.lhs rng space 200) in
  let prog = lazy (Measure.compile ctx.measure gzip Emc_opt.Flags.o2 ~issue_width:4) in
  let arrays = lazy (gzip.Workload.arrays ~scale:0.05 ~variant:Workload.Train) in
  let art =
    lazy
      (match
         Artifact.of_model ~workload:"164.gzip" ~scale:ctx.scale.Scale.name ~seed:42
           ~train_n:(Dataset.size (Lazy.force d).Experiments.train)
           (Lazy.force rbf)
       with
      | Ok a -> a
      | Error e -> failwith e)
  in
  let art_text = lazy (Emc_obs.Json.to_string (Artifact.to_json (Lazy.force art))) in
  let open Bechamel in
  let kernels =
    [
      (* Table 3 kernels: fitting each model family *)
      ( "table3/fit-linear",
        fun () ->
          let train = (Lazy.force d).Experiments.train in
          Staged.stage (fun () -> ignore (Modeling.fit Modeling.Linear train)) );
      ( "table3/fit-rbf",
        fun () ->
          let train = (Lazy.force d).Experiments.train in
          Staged.stage (fun () -> ignore (Modeling.fit Modeling.Rbf train)) );
      (* Table 4 kernel: effect extraction *)
      ( "table4/effects",
        fun () ->
          let rbf = Lazy.force rbf in
          Staged.stage (fun () ->
              ignore
                (Effects.top_effects rbf.Model.predict ~dims:Params.n_all
                   ~names:(Params.names Params.all_specs))) );
      (* Figure 5/6 kernel: model evaluation over a test design *)
      ( "fig5-6/predict-test-set",
        fun () ->
          let rbf = Lazy.force rbf and test = (Lazy.force d).Experiments.test in
          Staged.stage (fun () -> ignore (Metrics.mape rbf.Model.predict test)) );
      (* Table 6 / Figure 7 kernel: GA fitness evaluations *)
      ( "table6/ga-fitness-x100",
        fun () ->
          let rbf = Lazy.force rbf in
          Staged.stage (fun () ->
              for _ = 1 to 100 do
                ignore
                  (rbf.Model.predict
                     (Array.append
                        (Emc_doe.Doe.random_point rng Params.space_compiler)
                        march_coded))
              done) );
      (* serving kernels: artifact text round-trip and served prediction *)
      ( "serve/artifact-load",
        fun () ->
          let art_text = Lazy.force art_text in
          Staged.stage (fun () ->
              match Result.bind (Emc_obs.Json.parse art_text) Artifact.of_json with
              | Ok a -> ignore (Artifact.model a)
              | Error e -> failwith e) );
      ( "serve/artifact-save",
        fun () ->
          let art = Lazy.force art in
          Staged.stage (fun () -> ignore (Emc_obs.Json.to_string (Artifact.to_json art))) );
      ( "serve/repr-eval-x100",
        fun () ->
          let art = Lazy.force art in
          Staged.stage (fun () ->
              for _ = 1 to 100 do
                ignore
                  (Repr.eval art.Artifact.repr
                     (Array.append
                        (Emc_doe.Doe.random_point rng Params.space_compiler)
                        march_coded))
              done) );
      (* the multiplexed daemon's hot path, split into its two halves:
         incremental request parsing and allocation-lean predict+render *)
      ( "serve/http-parse-request",
        fun () ->
          let body =
            Emc_obs.Json.to_string
              (Emc_obs.Json.Obj
                 [ ("point",
                    Emc_obs.Json.List
                      (List.init Params.n_all (fun i ->
                           Emc_obs.Json.Float (Float.of_int (i mod 5) /. 5.0)))) ])
          in
          let text =
            Printf.sprintf
              "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
               Content-Length: %d\r\n\r\n%s"
              (String.length body) body
          in
          Staged.stage (fun () ->
              for _ = 1 to 100 do
                match Emc_serve.Http.parse_request text with
                | Emc_serve.Http.Parsed _ -> ()
                | _ -> failwith "bench request did not parse"
              done) );
      ( "serve/predict-render",
        fun () ->
          let art = Lazy.force art in
          let hot = Emc_serve.Serve.make_hot art in
          let body =
            Emc_obs.Json.to_string
              (Emc_obs.Json.Obj
                 [ ("point",
                    Emc_obs.Json.List
                      (List.init Params.n_all (fun i ->
                           Emc_obs.Json.Float (Float.of_int (i mod 5) /. 5.0)))) ])
          in
          let req =
            { Emc_serve.Http.meth = "POST"; path = "/predict"; query = []; headers = [];
              body }
          in
          Staged.stage (fun () ->
              for _ = 1 to 100 do
                match Emc_serve.Serve.handle_into hot req with
                | 200, _ -> ()
                | s, _ -> failwith (Printf.sprintf "bench predict returned %d" s)
              done) );
      (* ranking-model fit over the training design *)
      ( "regress/rank-fit",
        fun () ->
          let train = (Lazy.force d).Experiments.train in
          Staged.stage (fun () ->
              ignore
                (Rank.fit ~rng:(Emc_util.Rng.create 17)
                   ~names:(Params.names Params.all_specs) train)) );
      (* multi-objective search: one full NSGA-II run at a small budget *)
      ( "search/pareto-front",
        fun () ->
          let rbf = Lazy.force rbf in
          (* a monotone-decreasing transform of the same model: a perfect
             trade-off, so the front (and the crowding machinery) is
             exercised at full population size *)
          let energy =
            { rbf with Model.technique = "energy";
              predict = (fun x -> 1e12 /. rbf.Model.predict x) }
          in
          let params =
            { Emc_search.Ga.default_params with pop_size = 24; generations = 8 }
          in
          Staged.stage (fun () ->
              ignore
                (Searcher.search_pareto ~params ~rng:(Emc_util.Rng.create 17)
                   ~cycles_model:rbf ~energy_model:energy ~march ())) );
      (* §3 kernel: D-optimal exchange *)
      ( "doe/d-optimal-n40",
        fun () ->
          let candidates = Lazy.force candidates in
          Staged.stage (fun () ->
              ignore (Emc_doe.Doe.d_optimal ~sweeps:1 rng space ~n:40 ~candidates)) );
      (* measurement kernels: compilation and simulation *)
      ( "measure/compile-O3",
        fun () ->
          Staged.stage (fun () ->
              let ir = Emc_lang.Minic.compile_exn gzip.Workload.source in
              let opt = Emc_opt.Pipeline.optimize ~issue_width:4 Emc_opt.Flags.o3 ir in
              ignore (Emc_codegen.Codegen.emit_program ~omit_frame_pointer:true opt)) );
      ( "measure/simulate-50k-instrs",
        fun () ->
          let prog = Lazy.force prog and arrays = Lazy.force arrays in
          Staged.stage (fun () ->
              let ooo = Emc_sim.Ooo.create march prog in
              Emc_core.Measure.setup_func arrays (Emc_sim.Ooo.func ooo);
              Emc_sim.Ooo.run_detailed ooo ~instrs:50_000) );
      ( "measure/simulate-warming-50k",
        fun () ->
          let prog = Lazy.force prog and arrays = Lazy.force arrays in
          Staged.stage (fun () ->
              let ooo = Emc_sim.Ooo.create march prog in
              Emc_core.Measure.setup_func arrays (Emc_sim.Ooo.func ooo);
              Emc_sim.Ooo.run_warming ooo ~instrs:50_000) );
      (* fleet wire format: the bit-exact hex-float JSONL record shared by
         --cache files, run journals and the store — encode plus reparse,
         the per-result overhead of distributing a measurement *)
      ( "fleet/cache-line-roundtrip-x100",
        fun () ->
          Staged.stage (fun () ->
              for i = 1 to 100 do
                let line =
                  Emc_core.Measure.cache_line
                    (Printf.sprintf "Cycles|164.gzip|train|O%d|typical" (i mod 4))
                    (1.0 /. float_of_int i)
                in
                match
                  Result.bind (Emc_obs.Json.parse line) (fun j ->
                      match Option.bind (Emc_obs.Json.member "v" j) Emc_obs.Json.hex_of with
                      | Some f -> Ok f
                      | None -> Error "bad record")
                with
                | Ok f -> ignore f
                | Error e -> failwith e
              done) );
      (* the full coordinator↔worker codec for one 32-point chunk:
         serialize the /measure request, parse it as the worker does,
         serialize the result triples, parse them back — the per-chunk
         CPU cost of pipelined dispatch, everything but the socket *)
      ( "fleet/dispatch-pipeline",
        fun () ->
          let points = Array.make 32 (Emc_opt.Flags.o3, march) in
          let triples =
            Array.init 32 (fun i ->
                { Emc_core.Measure.t_cycles = 1.0e6 +. float_of_int i;
                  t_energy = 3.5e5 +. float_of_int i;
                  t_code_size = 512.0 })
          in
          Staged.stage (fun () ->
              let body =
                Emc_fleet.Fleet.measure_body gzip ~variant:Workload.Train
                  ~workload_scale:0.05 ~smarts:None points
              in
              (match Emc_fleet.Fleet.measure_request_of_body body with
              | Ok mr -> assert (Array.length mr.Emc_fleet.Fleet.mr_points = 32)
              | Error e -> failwith e);
              let rbody = Emc_fleet.Fleet.result_body triples in
              match Emc_fleet.Fleet.triples_of_body ~expect:32 rbody with
              | Ok ts -> ignore ts
              | Error e -> failwith e) );
    ]
  in
  let selected =
    match filter with
    | None -> kernels
    | Some sub ->
        List.filter
          (fun (name, _) ->
            let len = String.length sub in
            let n = String.length name in
            let rec at i = i + len <= n && (String.sub name i len = sub || at (i + 1)) in
            at 0)
          kernels
  in
  if selected = [] then
    Printf.printf "  no kernel matches filter %S\n%!" (Option.value filter ~default:"")
  else begin
    let tests = List.map (fun (name, mk) -> Test.make ~name (mk ())) selected in
    let test = Test.make_grouped ~name:"emc" ~fmt:"%s %s" tests in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Printf.printf "  %-34s %16s\n" "kernel" "ns/run";
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
    let rows = List.sort compare rows in
    let strip_group name =
      let prefix = "emc " in
      if String.length name > 4 && String.sub name 0 4 = prefix then
        String.sub name 4 (String.length name - 4)
      else name
    in
    let timings =
      List.filter_map
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some (est :: _) ->
              Printf.printf "  %-34s %16.0f\n" name est;
              Some (strip_group name, est)
          | _ ->
              Printf.printf "  %-34s %16s\n" name "n/a";
              None)
        rows
    in
    Printf.printf "%!";
    match json_path with
    | None -> ()
    | Some path ->
        (* machine-readable kernel timings: the perf trajectory tracked in
           BENCH_sim.json and uploaded by CI on every run *)
        let j =
          Emc_obs.Json.Obj
            [
              ("schema", Emc_obs.Json.Str "emc-bench/1");
              ("scale", Emc_obs.Json.Str ctx.scale.Scale.name);
              ("unix_time", Emc_obs.Json.Int (int_of_float (Unix.time ())));
              ( "kernels",
                Emc_obs.Json.List
                  (List.map
                     (fun (name, ns) ->
                       Emc_obs.Json.Obj
                         [ ("name", Emc_obs.Json.Str name);
                           ("ns_per_run", Emc_obs.Json.Float ns) ])
                     timings) );
            ]
        in
        let oc = open_out path in
        output_string oc (Emc_obs.Json.to_string j);
        output_char oc '\n';
        close_out oc;
        Printf.printf "  wrote %s\n%!" path
  end

(* ------------------------------------------------------------------ *)

let () =
  (* the harness is a progress-reporting tool: keep the prepare/fit progress
     events visible unless the user asked for something else via EMC_LOG *)
  if Sys.getenv_opt "EMC_LOG" = None then Emc_obs.Log.set_level Emc_obs.Log.Info;
  let args = Array.to_list Sys.argv in
  let bechamel_only = List.mem "--bechamel-only" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  (* --jobs N overrides EMC_JOBS for the measurement fan-out *)
  let rec jobs_of = function
    | "--jobs" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> jobs_of rest
    | [] -> None
  in
  (* --filter SUB runs only micro-benchmark kernels whose name contains SUB
     (e.g. --filter sim for the simulator kernels); --json PATH additionally
     writes the kernel timings as machine-readable JSON *)
  let rec opt_of flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> opt_of flag rest
    | [] -> None
  in
  let filter = opt_of "--filter" args in
  let json_path = opt_of "--json" args in
  let t0 = Unix.gettimeofday () in
  let scale =
    match jobs_of args with
    | Some j -> { (Scale.of_env ()) with Scale.jobs = j }
    | None -> Scale.of_env ()
  in
  let ctx = Experiments.create ~scale () in
  Printf.printf
    "EMC reproduction harness — scale=%s (train=%d, test=%d, workload-scale=%.2f, jobs=%d%s)\n%!"
    ctx.scale.Scale.name ctx.scale.Scale.train_n ctx.scale.Scale.test_n
    ctx.scale.Scale.workload_scale ctx.scale.Scale.jobs
    (match Sys.getenv_opt "EMC_CACHE" with
     | Some f -> Printf.sprintf ", cache=%s" f
     | None -> "");
  if not bechamel_only then begin
    phase "Parameter space" (fun () ->
        Experiments.print_parameters ();
        Experiments.print_table5 ());
    phase "Model accuracy (Tables 3-4, Figures 5-6)" (fun () ->
        ignore (Experiments.table3 ctx);
        ignore (Experiments.fig5 ctx);
        ignore (Experiments.fig6 ctx);
        ignore (Experiments.table4 ctx));
    phase "Figure 3 (art: unroll x I-cache)" (fun () -> ignore (Experiments.fig3 ctx));
    phase "Model-based search (Table 6, Figure 7, Table 7)" (fun () ->
        let t6 = Experiments.table6 ctx in
        ignore (Experiments.fig7 ctx t6);
        ignore (Experiments.table7 ctx t6));
    phase "Ablations" (fun () ->
        ablation_doe ctx;
        ablation_rbf ctx;
        ablation_smarts ctx;
        ablation_search ctx)
  end;
  if not no_bechamel then
    phase "Bechamel micro-benchmarks (kernels behind each table/figure)" (fun () ->
        bechamel_suite ?filter ?json_path ctx);
  Printf.printf "\nTotal: %d simulator runs, %d compilations, %.1fs wall clock.\n"
    ctx.measure.Measure.simulations ctx.measure.Measure.compiles
    (Unix.gettimeofday () -. t0)
