(** Golden-value generator for the simulator regression suite.

    Prints the [Test_sim_golden.golden] table — whole-program cycle counts,
    every per-run counter, and the SMARTS estimate — for a fixed grid of
    (workload, machine config) points. The output is OCaml source meant to
    be pasted verbatim into [test/test_sim_golden.ml].

    The timing model's contract is that performance work never changes a
    simulated cycle: these values may only legitimately change when the
    *model* changes (a new stage, a different latency), never when the
    scheduling data structures are optimized. Refresh with:

      dune exec bench/gen_golden.exe > /tmp/golden.ml   # then paste *)

open Emc_workloads

let grid = [ ("gzip", 0.10); ("mcf", 0.08); ("mesa", 0.10) ]

let configs =
  [ ("typical", Emc_sim.Config.typical); ("constrained", Emc_sim.Config.constrained) ]

let () =
  Emc_obs.Log.set_level Emc_obs.Log.Error;
  Printf.printf "let goldens =\n  [\n";
  List.iter
    (fun (wname, scale) ->
      let w = Registry.find wname in
      List.iter
        (fun (cname, cfg) ->
          let prog =
            Emc_codegen.Compiler.compile_source ~issue_width:cfg.Emc_sim.Config.issue_width
              Emc_opt.Flags.o2 w.Workload.source
          in
          let arrays = w.Workload.arrays ~scale ~variant:Workload.Train in
          let setup = Emc_core.Measure.setup_func arrays in
          let ooo = Emc_sim.Ooo.create cfg prog in
          setup (Emc_sim.Ooo.func ooo);
          let full_cycles = Emc_sim.Ooo.run_to_completion ooo in
          let instrs = (Emc_sim.Ooo.func ooo).Emc_sim.Func.icount in
          let smp = Emc_sim.Smarts.run_sampled cfg prog ~setup in
          Printf.printf "    { g_workload = %S; g_cfg = %S; g_scale = %h;\n" wname cname scale;
          Printf.printf "      g_full_cycles = %d; g_instrs = %d;\n" full_cycles instrs;
          Printf.printf "      g_counters =\n        [ ";
          List.iteri
            (fun i (k, v) ->
              Printf.printf "(%S, %d);%s" k v (if i mod 3 = 2 then "\n          " else " "))
            (Emc_sim.Ooo.counters ooo);
          Printf.printf "];\n";
          Printf.printf "      g_sampled_cycles = %S; g_ci_rel = %S;\n"
            (Printf.sprintf "%h" smp.Emc_sim.Smarts.cycles)
            (Printf.sprintf "%h" smp.Emc_sim.Smarts.ci_rel);
          Printf.printf "      g_units = %d; g_detailed = %b };\n" smp.Emc_sim.Smarts.sampled_units
            smp.Emc_sim.Smarts.detailed)
        configs)
    grid;
  Printf.printf "  ]\n"
