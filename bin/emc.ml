(** [emc] — command-line front end for the reproduction.

    Subcommands mirror the stages of the paper's methodology: [compile]
    (inspect the compiler's output for a workload), [simulate] (one
    measurement), [design] (generate a D-optimal experiment design), [model]
    (build and evaluate empirical models), [train]/[predict]/[rank]/[serve]
    (persist a model as an artifact and use or serve it without retraining),
    [search] (model-based search for platform-specific settings, §6.3), and
    [experiment] (regenerate a specific table/figure). *)

open Cmdliner
open Emc_core
open Emc_workloads
module Fleet = Emc_fleet.Fleet

(* ---------------- shared arguments ---------------- *)

let workload_arg =
  let doc = "Workload: one of " ^ String.concat ", " Registry.names ^ " (short names ok)." in
  Arg.(value & opt string "164.gzip" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let config_arg =
  let doc = "Microarchitecture: constrained, typical or aggressive (Table 5)." in
  Arg.(value & opt string "typical" & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let opt_level_arg =
  let doc = "Optimization level: O0, O1, O2 or O3." in
  Arg.(value & opt string "O2" & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc)

let scale_arg =
  let doc = "Protocol scale: tiny, quick, medium or full." in
  Arg.(value & opt string "quick" & info [ "scale" ] ~docv:"SCALE" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of this run to $(docv) (open in chrome://tracing \
     or Perfetto). Equivalent to setting EMC_TRACE=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print the telemetry metrics registry (simulator stall/miss counters, \
     SMARTS confidence intervals, cache hit rates, fit times, ...)."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let jobs_arg =
  let doc =
    "Fan measurement batches out across $(docv) forked workers. Defaults to EMC_JOBS, or 1 \
     (sequential). Any worker count produces bit-identical datasets at the same seed."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Persistent measurement result cache (JSONL). Loaded on startup and appended on every \
     new simulation, so a warm re-run performs zero simulations. Defaults to EMC_CACHE."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)

let fleet_arg =
  let doc =
    "Comma-separated $(b,emc fleet-worker) addresses (host:port, :port, or unix-socket \
     paths): shard measurement batches across remote workers instead of local forks. \
     Prefix an address with @ to treat it as an $(b,emc fleet-store) whose registered \
     workers form an elastic fleet: workers joining mid-run (fleet-worker --register) \
     pick up pending chunks, drained or dead workers age out and their chunks requeue. \
     Results are bit-identical to a single-process --jobs 1 run regardless of \
     membership, chunking, pipelining, retries or arrival order. Defaults to EMC_FLEET."
  in
  Arg.(value & opt (some string) None & info [ "fleet" ] ~docv:"ADDRS" ~doc)

let chunk_arg =
  let doc =
    "Design points per fleet dispatch. Must be positive; omit it entirely for automatic \
     sizing (~4 chunks per worker)."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

let depth_arg =
  let doc =
    "Outstanding chunks pipelined per fleet worker connection (default 1). Depth > 1 \
     hides dispatch latency — a worker starts its next chunk without a coordinator \
     round-trip; results stay bit-identical."
  in
  Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"N" ~doc)

(* The three fleet knobs travel as one term so every measuring subcommand
   picks them up with a single $ application. *)
let fleet_opts_arg =
  Term.(const (fun fleet chunk depth -> (fleet, chunk, depth))
        $ fleet_arg $ chunk_arg $ depth_arg)

let run_id_arg =
  let doc =
    "Resumable run: journal every completed measurement to EMC_RUN_DIR/$(docv).jsonl and \
     preload that journal on startup, so re-running a killed run with the same id \
     re-simulates nothing ($(b,emc fleet-resume) inspects or re-executes a journal)."
  in
  Arg.(value & opt (some string) None & info [ "run-id" ] ~docv:"ID" ~doc)

(* Wrap a subcommand body with the observability plumbing: enable tracing
   first (so spans cover the whole run), dump metrics last. *)
let with_obs trace metrics f =
  (match trace with Some file -> Emc_obs.Trace.enable file | None -> ());
  let r = f () in
  if metrics then print_string (Emc_obs.Metrics.dump_text ());
  r

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("emc: " ^ msg); exit 1) fmt

let parse_fleet_spec spec =
  match Fleet.parse_fleet spec with Ok addrs -> addrs | Error e -> die "--fleet: %s" e

(* Experiment-context setup shared by every measuring subcommand: resolve
   --run-id into a preloaded journal, then point the measure at the fleet
   when one is configured. [fleet] is the (--fleet, --chunk, --depth)
   triple from fleet_opts_arg. *)
let make_ctx ~seed ~scale ?cache_file ~fleet:(fleet, chunk, depth) ~run_id () =
  (match chunk with
  | Some c when c <= 0 -> die "--chunk must be positive (omit it for auto sizing), not %d" c
  | _ -> ());
  (match depth with
  | Some d when d < 1 -> die "--depth must be at least 1, not %d" d
  | _ -> ());
  let journal_file =
    Option.map (fun id -> Fleet.journal_init ~run_id:id ~argv:Sys.argv) run_id
  in
  let ctx = Experiments.create ~seed ~scale ?cache_file ?journal_file () in
  (match
     match fleet with Some s -> Some s | None -> Sys.getenv_opt "EMC_FLEET"
   with
  | None | Some "" -> ()
  | Some spec ->
      let options =
        { Fleet.default_options with
          Fleet.chunk = Option.value chunk ~default:Fleet.default_options.Fleet.chunk;
          Fleet.depth = Option.value depth ~default:Fleet.default_options.Fleet.depth }
      in
      Fleet.attach ~options ctx.Experiments.measure (parse_fleet_spec spec));
  ctx

let parse_config = function
  | "constrained" -> Emc_sim.Config.constrained
  | "typical" -> Emc_sim.Config.typical
  | "aggressive" -> Emc_sim.Config.aggressive
  | s -> failwith ("unknown config: " ^ s)

let parse_flags = function
  | "O0" -> Emc_opt.Flags.o0
  | "O1" -> Emc_opt.Flags.o1
  | "O2" -> Emc_opt.Flags.o2
  | "O3" -> Emc_opt.Flags.o3
  | s -> failwith ("unknown optimization level: " ^ s)

let parse_scale ?jobs name =
  let base =
    match name with
    | "tiny" -> Scale.tiny
    | "quick" -> Scale.quick
    | "medium" -> Scale.medium
    | "full" | "paper" -> Scale.full
    | s -> failwith ("unknown scale: " ^ s)
  in
  { base with Scale.jobs = (match jobs with Some j -> j | None -> Scale.jobs_of_env ()) }

(* ---------------- params ---------------- *)

let params_cmd =
  let run trace metrics =
    with_obs trace metrics (fun () ->
        Experiments.print_parameters ();
        Experiments.print_table5 ())
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the modeled parameter space (Tables 1, 2 and 5).")
    Term.(const run $ trace_arg $ metrics_arg)

(* ---------------- compile ---------------- *)

let compile_cmd =
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized IR.")
  in
  let dump_asm =
    Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the generated machine code.")
  in
  let run wname level dump_ir dump_asm trace metrics =
    with_obs trace metrics (fun () ->
        let w = Registry.find wname in
        let flags = parse_flags level in
        let ir = Emc_lang.Minic.compile_exn w.Workload.source in
        let before = Emc_ir.Ir.instr_count ir in
        let opt =
          Emc_obs.Trace.with_span ~cat:"compile" "optimize" (fun () ->
              Emc_opt.Pipeline.optimize ~issue_width:4 flags ir)
        in
        let after = Emc_ir.Ir.instr_count opt in
        let prog =
          Emc_obs.Trace.with_span ~cat:"compile" "codegen" (fun () ->
              Emc_codegen.Codegen.emit_program ~omit_frame_pointer:flags.omit_frame_pointer opt)
        in
        Printf.printf "%s at %s: IR %d -> %d instrs; machine code %d instrs (%d bytes)\n" w.name
          level before after
          (Array.length prog.Emc_isa.Isa.insts)
          (4 * Array.length prog.Emc_isa.Isa.insts);
        if dump_ir then print_string (Emc_ir.Ir.to_string opt);
        if dump_asm then
          Array.iteri
            (fun i inst -> Format.printf "%5d: %a@." i Emc_isa.Isa.pp_inst inst)
            prog.Emc_isa.Isa.insts)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a workload and report/dump the result.")
    Term.(const run $ workload_arg $ opt_level_arg $ dump_ir $ dump_asm $ trace_arg $ metrics_arg)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let full_detail =
    Arg.(value & flag & info [ "full" ] ~doc:"Fully detailed simulation (no SMARTS sampling).")
  in
  let run wname level cname scale cache full_detail trace metrics =
    with_obs trace metrics (fun () ->
        let w = Registry.find wname in
        let flags = parse_flags level in
        let march = parse_config cname in
        let scale = parse_scale scale in
        let m =
          Measure.create ?cache_file:cache
            { scale with smarts = (if full_detail then None else scale.smarts) }
        in
        let t0 = Unix.gettimeofday () in
        let cycles = Measure.cycles m w ~variant:Workload.Train flags march in
        let wall = Unix.gettimeofday () -. t0 in
        Printf.printf "%s %s on %s: %.0f cycles (%.2fs wall, %d simulations)\n" w.name level
          cname cycles wall m.Measure.simulations;
        (* detailed-mode engine throughput, comparable with BENCH_sim.json;
           meaningless on a warm cache (zero simulations) *)
        if m.Measure.simulations > 0 && wall > 0.0 then
          match Emc_obs.Metrics.counter_value "sim.detail_instrs" with
          | Some di when di > 0 ->
              Printf.printf "  engine: %.2f M detailed instrs/s\n"
                (float_of_int di /. wall /. 1e6)
          | _ -> ())
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile and simulate one workload/flags/microarch combination.")
    Term.(const run $ workload_arg $ opt_level_arg $ config_arg $ scale_arg $ cache_arg
          $ full_detail $ trace_arg $ metrics_arg)

(* ---------------- design ---------------- *)

let design_cmd =
  let n_arg = Arg.(value & opt int 40 & info [ "n" ] ~docv:"N" ~doc:"Design size.") in
  let run n seed trace metrics =
    with_obs trace metrics (fun () ->
        let rng = Emc_util.Rng.create seed in
        let space = Params.space_all in
        let design = Emc_doe.Doe.generate rng space ~n in
        let rand = Emc_doe.Doe.random_design rng space n in
        Printf.printf "D-optimal design, n=%d, log det(X'X) = %.3f (random baseline %.3f)\n" n
          (Emc_doe.Doe.log_det_information design)
          (Emc_doe.Doe.log_det_information rand);
        Array.iteri
          (fun i p ->
            if i < 5 then begin
              let raw = Params.decode Params.all_specs p in
              let flags, march = Params.split_raw raw in
              Printf.printf "  point %d: %s | %s\n" i (Emc_opt.Flags.to_string flags)
                (Emc_sim.Config.to_string march)
            end)
          design;
        if n > 5 then Printf.printf "  ... (%d more)\n" (n - 5))
  in
  Cmd.v (Cmd.info "design" ~doc:"Generate a D-optimal experiment design (paper, section 3).")
    Term.(const run $ n_arg $ seed_arg $ trace_arg $ metrics_arg)

(* ---------------- model ---------------- *)

let technique_arg =
  let doc = "Model family: linear, mars or rbf." in
  Arg.(value & opt string "rbf" & info [ "t"; "technique" ] ~docv:"TECH" ~doc)

let parse_technique = function
  | "linear" -> Modeling.Linear
  | "mars" -> Modeling.Mars
  | "rbf" -> Modeling.Rbf
  | s -> failwith ("unknown technique: " ^ s)

(* Accuracy and rank quality of one fitted family on the held-out test
   design: RMSE/MAPE grade the predicted magnitudes, Spearman and the
   top-K metrics grade the induced order — what the model-based search
   actually consumes. *)
let report_model_metrics ~test (m : Emc_regress.Model.t) =
  let open Emc_regress in
  let p = m.Model.predict in
  Printf.printf
    "  %-18s rmse=%-12.5g mape=%7.2f%%  spearman=%+.3f  top5_regret=%7.2f%%  p@5=%.2f\n"
    m.Model.technique (Metrics.rmse p test) (Metrics.mape p test) (Metrics.spearman p test)
    (Metrics.top_k_regret ~k:5 p test)
    (Metrics.precision_at_k ~k:5 p test)

let model_cmd =
  let run wname tname scale seed jobs cache fleet run_id trace metrics =
    with_obs trace metrics (fun () ->
        let w = Registry.find wname in
        let scale = parse_scale ?jobs scale in
        let ctx = make_ctx ~seed ~scale ?cache_file:cache ~fleet ~run_id () in
        let d = Experiments.prepare ctx w in
        let technique = parse_technique tname in
        let m = Experiments.model_of d technique in
        Printf.printf "%s / %s: test MAPE = %.2f%% (%d params)\n" w.name
          (Modeling.technique_name technique)
          (Emc_regress.Metrics.mape m.Emc_regress.Model.predict d.Experiments.test)
          m.Emc_regress.Model.n_params;
        Printf.printf "all families on the %d-point test design:\n"
          (Emc_regress.Dataset.size d.Experiments.test);
        List.iter
          (fun t -> report_model_metrics ~test:d.Experiments.test (Experiments.model_of d t))
          Modeling.all_techniques;
        let rank_m =
          Emc_regress.Rank.fit
            ~names:(Params.names Params.all_specs)
            ~rng:(Emc_util.Rng.create (seed + 2))
            d.Experiments.train
        in
        report_model_metrics ~test:d.Experiments.test rank_m;
        let names = Params.names Params.all_specs in
        let effects =
          Emc_regress.Effects.top_effects m.Emc_regress.Model.predict ~dims:Params.n_all ~names
        in
        Printf.printf "strongest effects:\n";
        List.iteri (fun i (n, e) -> if i < 10 then Printf.printf "  %-40s %+.4g\n" n e) effects)
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Build an empirical model for a workload and report its accuracy.")
    Term.(const run $ workload_arg $ technique_arg $ scale_arg $ seed_arg $ jobs_arg
          $ cache_arg $ fleet_opts_arg $ run_id_arg $ trace_arg $ metrics_arg)

(* ---------------- artifacts: train / predict / rank / serve ---------------- *)

let load_artifact path =
  match Artifact.load path with Ok a -> a | Error e -> die "%s" e

let model_file_arg =
  let doc = "Model artifact file (written by $(b,emc train --out))." in
  Arg.(required & opt (some string) None & info [ "m"; "model" ] ~docv:"FILE" ~doc)

let train_cmd =
  let out_arg =
    let doc = "Write the model artifact (JSON) to $(docv)." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let energy_arg =
    let doc =
      "Also fit an energy-response model on the same training design (zero extra \
       simulations — the simulator memoizes every response) and embed it in the artifact, \
       enabling $(b,emc pareto --model) and the daemon's /pareto endpoint."
    in
    Arg.(value & flag & info [ "energy" ] ~doc)
  in
  let run wname tname scale seed jobs cache fleet run_id out energy trace metrics =
    with_obs trace metrics (fun () ->
        let w = Registry.find wname in
        let scale = parse_scale ?jobs scale in
        let ctx = make_ctx ~seed ~scale ?cache_file:cache ~fleet ~run_id () in
        let d = Experiments.prepare ctx w in
        let technique = parse_technique tname in
        let m = Experiments.model_of d technique in
        let test_mape =
          Emc_regress.Metrics.mape m.Emc_regress.Model.predict d.Experiments.test
        in
        let extra =
          if not energy then []
          else
            let em = Modeling.fit technique (Experiments.energy_train ctx d) in
            match em.Emc_regress.Model.repr with
            | Some r -> [ ("energy", r) ]
            | None -> die "energy model for %s has no serializable representation" tname
        in
        match
          Artifact.of_model ~workload:w.name ~scale:scale.Scale.name ~seed
            ~train_n:(Emc_regress.Dataset.size d.Experiments.train)
            ~test_mape ~extra m
        with
        | Error e -> die "%s" e
        | Ok a ->
            Artifact.save a out;
            Printf.printf "%s / %s: test MAPE = %.2f%%, %d params -> %s%s\n" w.name
              a.Artifact.technique test_mape m.Emc_regress.Model.n_params out
              (if energy then " (+energy response)" else "");
            Printf.printf "rank quality on the %d-point test design:\n"
              (Emc_regress.Dataset.size d.Experiments.test);
            report_model_metrics ~test:d.Experiments.test m)
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Build an empirical model and persist it as a reusable artifact file.")
    Term.(const run $ workload_arg $ technique_arg $ scale_arg $ seed_arg $ jobs_arg
          $ cache_arg $ fleet_opts_arg $ run_id_arg $ out_arg $ energy_arg $ trace_arg
          $ metrics_arg)

let predict_cmd =
  let raw_arg =
    let doc = "Interpret the values as raw parameter settings and code them through the \
               artifact's schema (default: already-coded [-1,1] values)."
    in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the prediction as a JSON object.")
  in
  let point_arg =
    let doc = "Design-point values, one per schema parameter, in order." in
    Arg.(non_empty & pos_all float [] & info [] ~docv:"VALUE" ~doc)
  in
  let run mfile raw json point =
    let a = load_artifact mfile in
    let x = Array.of_list point in
    let coded =
      if raw then Artifact.code_raw a x
      else match Artifact.validate_point a x with Ok () -> Ok x | Error e -> Error e
    in
    match coded with
    | Error e -> die "%s" e
    | Ok x ->
        let p = Emc_regress.Repr.eval a.Artifact.repr x in
        if json then
          print_endline
            (Emc_obs.Json.to_string (Emc_obs.Json.Obj [ ("prediction", Emc_obs.Json.Float p) ]))
        else Printf.printf "%.17g\n" p
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Evaluate a saved model artifact at one design point.")
    Term.(const run $ model_file_arg $ raw_arg $ json_arg $ point_arg)

let rank_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) strongest terms.")
  in
  let run mfile top =
    let a = load_artifact mfile in
    Printf.printf "%s / %s (test MAPE %s):\n" a.Artifact.workload a.Artifact.technique
      (match a.Artifact.test_mape with Some m -> Printf.sprintf "%.2f%%" m | None -> "n/a");
    a.Artifact.terms
    (* NaN-safe: polymorphic compare would place NaN coefficients anywhere *)
    |> List.sort Emc_regress.Metrics.strength_order
    |> List.iteri (fun i (n, c) -> if i < top then Printf.printf "  %-40s %+.4g\n" n c)
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Rank a saved model's significant terms by |coefficient| (the paper's Table-4 \
             reading).")
    Term.(const run $ model_file_arg $ top_arg)

let serve_cmd =
  let port_arg =
    Arg.(value & opt (some int) None
         & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen on 127.0.0.1:$(docv).")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "unix-socket" ] ~docv:"PATH" ~doc:"Listen on a Unix domain socket at $(docv).")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Pre-forked scheduler workers sharing the listening socket; each one \
                   multiplexes up to --max-conns keep-alive connections. /metrics \
                   aggregates across all of them: counters sum exactly and latency \
                   histograms merge bucket-wise.")
  in
  let max_body_arg =
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-body" ] ~docv:"BYTES" ~doc:"Request body size limit.")
  in
  let timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Whole-request read deadline (a dribbling request earns a 408) and \
                   response-drain deadline (a stalled reader is cut off).")
  in
  let idle_timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Close a keep-alive connection with no request in flight after $(docv) \
                   seconds of silence.")
  in
  let max_conns_arg =
    Arg.(value & opt int 512
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent connections per worker (select() bounds this to roughly \
                   1000 per process).")
  in
  let access_log_arg =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~doc:"Append one JSONL record per request (id, status, sizes, per-phase \
                   timings). Defaults to EMC_ACCESS_LOG.")
  in
  let run mfile port socket workers max_body read_timeout idle_timeout max_conns access_log =
    let a = load_artifact mfile in
    let listen =
      match (port, socket) with
      | Some p, None -> Emc_serve.Serve.Port p
      | None, Some path -> Emc_serve.Serve.Unix_socket path
      | None, None -> die "give --port or --unix-socket"
      | Some _, Some _ -> die "give either --port or --unix-socket, not both"
    in
    let access_log =
      match access_log with Some f -> Some f | None -> Sys.getenv_opt "EMC_ACCESS_LOG"
    in
    Emc_serve.Serve.run
      { listen; workers; max_body; read_timeout; idle_timeout; max_conns; access_log }
      a
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a saved model over HTTP: /predict, /rank, /search, /pareto, /healthz, \
             /metrics.")
    Term.(const run $ model_file_arg $ port_arg $ socket_arg $ workers_arg $ max_body_arg
          $ timeout_arg $ idle_timeout_arg $ max_conns_arg $ access_log_arg)

(* ---------------- loadgen ---------------- *)

let loadgen_cmd =
  let module Lg = Emc_loadgen.Loadgen in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Target host for --port.")
  in
  let port_arg =
    Arg.(value & opt (some int) None
         & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Drive a daemon on $(docv).")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "unix-socket" ] ~docv:"PATH" ~doc:"Drive a daemon on a Unix socket.")
  in
  let rps_arg =
    Arg.(value & opt (some float) None
         & info [ "rps" ] ~docv:"R"
             ~doc:"Open-loop mode: schedule arrivals at $(docv) requests/second total \
                   (Poisson, seeded) and measure latency from the scheduled arrival — a \
                   stalled server is charged its queueing delay. Without --rps the run is \
                   closed-loop: every connection issues requests back-to-back.")
  in
  let connections_arg =
    Arg.(value & opt int 4
         & info [ "c"; "connections"; "concurrency" ] ~docv:"N"
             ~doc:"Concurrent keep-alive connections (one forked generator each) — a \
                   client-side knob, independent of the daemon's --workers count: the \
                   multiplexed daemon serves many connections per worker.")
  in
  let duration_arg =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Seconds of load.")
  in
  let mix_arg =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"SPEC"
             ~doc:"Weighted endpoint mix, e.g. predict=8,predict_batch=1,think=2 \
                   (endpoints: predict, predict_batch, rank, healthz, think). A think \
                   draw sends nothing and holds the connection open for --think seconds \
                   — a slow-client shape the daemon must not let pin a worker.")
  in
  let think_arg =
    Arg.(value & opt float 0.2
         & info [ "think" ] ~docv:"SECONDS"
             ~doc:"Think time for the mix's think draws: the connection stays open, \
                   silent, for $(docv) seconds.")
  in
  let batch_arg =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"N" ~doc:"Points per predict_batch request.")
  in
  let lg_timeout_arg =
    Arg.(value & opt float 5.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-response receive timeout.")
  in
  let slo_arg =
    Arg.(value & opt_all string []
         & info [ "slo" ] ~docv:"KEY=BOUND"
             ~doc:"Assert an SLO against the report (repeatable); exit nonzero on \
                   violation. Keys: p50 p90 p99 p999 mean max (latency seconds, upper \
                   bound), rps (lower bound), error_rate errors 4xx 5xx timeouts (upper \
                   bounds). Example: --slo p99=0.050 --slo 5xx=0.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the emc-loadgen-report/1 JSON report to $(docv) (- for stdout).")
  in
  let parse_mix spec =
    String.split_on_char ',' spec
    |> List.map (fun part ->
           match String.index_opt part '=' with
           | None -> die "bad mix entry %S: want name=weight" part
           | Some i -> (
               let name = String.sub part 0 i in
               let w = String.sub part (i + 1) (String.length part - i - 1) in
               match int_of_string_opt w with
               | Some w -> (name, w)
               | None -> die "bad mix weight %S in %S" w part))
  in
  let ms v = Printf.sprintf "%.3f ms" (v *. 1000.0) in
  let run host port socket rps concurrency duration seed mix batch timeout think slos json_out =
    let target =
      match (port, socket) with
      | Some p, None -> Lg.Tcp (host, p)
      | None, Some path -> Lg.Unix_sock path
      | None, None -> die "give --port or --unix-socket"
      | Some _, Some _ -> die "give either --port or --unix-socket, not both"
    in
    let mode = match rps with Some r -> Lg.Open_loop r | None -> Lg.Closed_loop in
    let mix = match mix with None -> Lg.default_mix | Some s -> parse_mix s in
    let slos =
      List.map
        (fun s -> match Lg.parse_slo s with Ok x -> x | Error e -> die "%s" e)
        slos
    in
    let opts =
      { (Lg.default_opts target) with
        mode; concurrency; duration; seed; mix; batch; timeout; think }
    in
    match Lg.run opts with
    | Error e -> die "loadgen: %s" e
    | Ok r ->
        let open Lg in
        Printf.printf "loadgen: %s, %d connection%s, %.1f s\n"
          (match r.r_mode with
          | Open_loop rps -> Printf.sprintf "open loop at %g rps" rps
          | Closed_loop -> "closed loop")
          r.r_concurrency
          (if r.r_concurrency = 1 then "" else "s")
          r.r_wall_s;
        Printf.printf "  sent %d  responses %d  achieved %.1f rps\n" r.r_sent r.r_responses
          r.r_achieved_rps;
        (match r.r_latency with
        | None -> print_string "  latency: nothing measured\n"
        | Some _ ->
            let p q = match percentile r q with Some v -> ms v | None -> "-" in
            Printf.printf "  latency p50 %s  p90 %s  p99 %s  p99.9 %s\n" (p 50.0) (p 90.0)
              (p 99.0) (p 99.9));
        let errs = errors_total r in
        if errs = 0 && r.r_id_mismatches = 0 then print_string "  errors: none\n"
        else
          Printf.printf
            "  errors: connect=%d timeout=%d protocol=%d 4xx=%d 5xx=%d id_mismatch=%d\n"
            r.r_connect_errors r.r_timeouts r.r_protocol_errors r.r_4xx r.r_5xx
            r.r_id_mismatches;
        (match json_out with
        | None -> ()
        | Some "-" -> print_endline (Emc_obs.Json.to_string (report_to_json r))
        | Some file ->
            let oc = open_out file in
            output_string oc (Emc_obs.Json.to_string (report_to_json r));
            output_char oc '\n';
            close_out oc);
        let violations =
          List.filter
            (fun slo ->
              match check_slo r slo with
              | None -> die "unknown SLO key %S" slo.slo_key
              | Some (actual, ok) ->
                  Printf.printf "  SLO %s=%g: actual %g  %s\n" slo.slo_key slo.slo_bound
                    actual
                    (if ok then "ok" else "VIOLATED");
                  not ok)
            slos
        in
        if violations <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a serving daemon with open- or closed-loop load and check SLOs \
             (exit 4 on violation).")
    Term.(const run $ host_arg $ port_arg $ socket_arg $ rps_arg $ connections_arg
          $ duration_arg $ seed_arg $ mix_arg $ batch_arg $ lg_timeout_arg $ think_arg
          $ slo_arg $ json_arg)

(* ---------------- search ---------------- *)

let search_cmd =
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Also measure the prescribed settings.")
  in
  let model_opt_arg =
    let doc = "Search over a saved model artifact instead of training in-process — zero \
               simulator invocations."
    in
    Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"FILE" ~doc)
  in
  let run wname cname scale seed jobs cache fleet run_id mfile validate trace metrics =
    with_obs trace metrics (fun () ->
        let w = Registry.find wname in
        let march = parse_config cname in
        let scale = parse_scale ?jobs scale in
        let measure, m =
          match mfile with
          | Some path ->
              (* the artifact replaces training; a Measure is only created
                 lazily if --validate asks for real measurements *)
              (lazy (Measure.create ?cache_file:cache scale), Artifact.model (load_artifact path))
          | None ->
              let ctx = make_ctx ~seed ~scale ?cache_file:cache ~fleet ~run_id () in
              let d = Experiments.prepare ctx w in
              (lazy ctx.Experiments.measure, Experiments.rbf_model d)
        in
        let r =
          Searcher.search ~params:scale.Scale.ga ~rng:(Emc_util.Rng.create (seed + 1)) ~model:m
            ~march ()
        in
        Printf.printf "%s on %s:\n  prescribed: %s\n  predicted cycles: %.0f\n" w.name cname
          (Emc_opt.Flags.to_string r.Searcher.flags)
          r.Searcher.predicted_cycles;
        if validate then begin
          let measure = Lazy.force measure in
          let o2 = Measure.cycles measure w ~variant:Workload.Train Emc_opt.Flags.o2 march in
          let best = Measure.cycles measure w ~variant:Workload.Train r.Searcher.flags march in
          Printf.printf "  measured: O2=%.0f prescribed=%.0f actual speedup=%+.2f%%\n" o2 best
            ((o2 /. best -. 1.0) *. 100.0)
        end)
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Model-based search for platform-specific optimization settings (paper, section 6.3).")
    Term.(const run $ workload_arg $ config_arg $ scale_arg $ seed_arg $ jobs_arg $ cache_arg
          $ fleet_opts_arg $ run_id_arg $ model_opt_arg $ validate $ trace_arg $ metrics_arg)

(* ---------------- pareto ---------------- *)

let pareto_cmd =
  let model_opt_arg =
    let doc = "Search over a saved two-response artifact ($(b,emc train --energy)) instead \
               of training in-process — zero simulator invocations."
    in
    Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the front as JSON — byte-identical to the daemon's /pareto response \
                   at the same seed and parameters.")
  in
  let pop_arg =
    Arg.(value & opt (some int) None
         & info [ "pop-size" ] ~docv:"N" ~doc:"NSGA-II population size.")
  in
  let gens_arg =
    Arg.(value & opt (some int) None
         & info [ "generations" ] ~docv:"N" ~doc:"NSGA-II generation count.")
  in
  let run wname cname scale seed jobs cache fleet run_id mfile pop gens json trace metrics =
    with_obs trace metrics (fun () ->
        let march = parse_config cname in
        (* same defaults as the daemon's /pareto (not --scale's GA budget),
           so served and in-process runs are comparable bit for bit *)
        let dflt = Emc_search.Ga.default_params in
        let params =
          { dflt with
            Emc_search.Ga.pop_size = Option.value pop ~default:dflt.Emc_search.Ga.pop_size;
            generations = Option.value gens ~default:dflt.Emc_search.Ga.generations }
        in
        let wname_shown, cycles_model, energy_model =
          match mfile with
          | Some path -> (
              let a = load_artifact path in
              match Artifact.extra_repr a "energy" with
              | None ->
                  die "%s carries no \"energy\" response model; retrain with emc train --energy"
                    path
              | Some r ->
                  ( a.Artifact.workload,
                    Artifact.model a,
                    { Emc_regress.Model.technique = "energy";
                      predict = Emc_regress.Repr.eval r; n_params = 0; terms = [];
                      repr = Some r } ))
          | None ->
              let w = Registry.find wname in
              let scale = parse_scale ?jobs scale in
              let ctx = make_ctx ~seed ~scale ?cache_file:cache ~fleet ~run_id () in
              let d = Experiments.prepare ctx w in
              ( w.Workload.name,
                Experiments.rbf_model d,
                Modeling.fit Modeling.Rbf (Experiments.energy_train ctx d) )
        in
        let evals_before =
          Option.value ~default:0 (Emc_obs.Metrics.counter_value "pareto.evaluations")
        in
        let front =
          Searcher.search_pareto ~params ~rng:(Emc_util.Rng.create seed) ~cycles_model
            ~energy_model ~march ()
        in
        let evals =
          Option.value ~default:0 (Emc_obs.Metrics.counter_value "pareto.evaluations")
          - evals_before
        in
        let objs =
          Array.of_list
            (List.map (fun p -> [| p.Searcher.p_cycles; p.Searcher.p_energy |]) front)
        in
        if front = [] then die "search returned an empty front";
        if not (Emc_search.Pareto.is_front objs) then
          die "internal error: returned front contains dominated points";
        if json then
          print_endline
            (Emc_obs.Json.to_string (Searcher.pareto_to_json ~seed ~evaluations:evals front))
        else begin
          Printf.printf "%s on %s: cycles x energy trade-off (seed %d, %d evaluations)\n"
            wname_shown cname seed evals;
          List.iteri
            (fun i p ->
              Printf.printf "  %2d: cycles=%14.0f  energy=%14.6g nJ  %s\n" (i + 1)
                p.Searcher.p_cycles p.Searcher.p_energy
                (Emc_opt.Flags.to_string p.Searcher.p_flags))
            front;
          Printf.printf "front verified non-dominated (%d points)\n" (List.length front)
        end)
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Multi-objective model-based search: the non-dominated front over predicted \
             cycles and predicted energy (NSGA-II over the compiler parameters).")
    Term.(const run $ workload_arg $ config_arg $ scale_arg $ seed_arg $ jobs_arg $ cache_arg
          $ fleet_opts_arg $ run_id_arg $ model_opt_arg $ pop_arg $ gens_arg $ json_arg
          $ trace_arg $ metrics_arg)

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let which_arg =
    Arg.(value & pos 0 string "table3"
         & info [] ~docv:"EXP" ~doc:"One of: table3 table4 table5 table6 table7 fig3 fig5 fig6 fig7.")
  in
  let run which scale seed jobs cache fleet run_id trace metrics =
    with_obs trace metrics (fun () ->
        let scale = parse_scale ?jobs scale in
        let ctx = make_ctx ~seed ~scale ?cache_file:cache ~fleet ~run_id () in
        Emc_obs.Trace.with_span ~cat:"phase" which (fun () ->
            match which with
            | "table3" -> ignore (Experiments.table3 ctx)
            | "table4" -> ignore (Experiments.table4 ctx)
            | "table5" -> Experiments.print_table5 ()
            | "table6" -> ignore (Experiments.table6 ctx)
            | "table7" -> ignore (Experiments.table7 ctx (Experiments.table6 ctx))
            | "fig3" -> ignore (Experiments.fig3 ctx)
            | "fig5" -> ignore (Experiments.fig5 ctx)
            | "fig6" -> ignore (Experiments.fig6 ctx)
            | "fig7" -> ignore (Experiments.fig7 ctx (Experiments.table6 ctx))
            | s -> failwith ("unknown experiment: " ^ s)))
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate one table or figure from the paper.")
    Term.(const run $ which_arg $ scale_arg $ seed_arg $ jobs_arg $ cache_arg $ fleet_opts_arg
          $ run_id_arg $ trace_arg $ metrics_arg)

let fuzz_cmd =
  let budget_arg =
    let doc = "Number of random programs to generate and check." in
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let run seed budget jobs trace metrics =
    with_obs trace metrics (fun () ->
        let report = Emc_diff.Diff.fuzz ?jobs ~seed ~budget () in
        Printf.printf "fuzz: %d programs, %d cross-level checks, %d divergence%s (seed %d)\n"
          report.Emc_diff.Diff.programs report.Emc_diff.Diff.checks
          (List.length report.Emc_diff.Diff.divergences)
          (if List.length report.Emc_diff.Diff.divergences = 1 then "" else "s")
          seed;
        List.iter
          (fun (d : Emc_diff.Diff.divergence) ->
            Printf.printf
              "\n--- divergence at case %d (seed %d), level %s\n\
               expected: %s\n\
               got:      %s\n\
               minimized reproducer (%d shrink steps):\n%s"
              d.index d.prog_seed d.level d.expected d.got d.shrink_steps d.min_source)
          report.Emc_diff.Diff.divergences;
        if report.Emc_diff.Diff.divergences <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random MiniC programs checked across the IR interpreter \
          (unoptimized and optimized), the functional simulator, and the out-of-order commit \
          stream. Exits non-zero on any divergence, after shrinking the reproducer.")
    Term.(const run $ seed_arg $ budget_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* ---------------- fleet daemons / cache maintenance ---------------- *)

let fleet_listen port socket =
  match (port, socket) with
  | Some p, None -> Fleet.Tcp ("127.0.0.1", p)
  | None, Some path -> Fleet.Unix_sock path
  | None, None -> die "give --port or --unix-socket"
  | Some _, Some _ -> die "give either --port or --unix-socket, not both"

let daemon_port_arg =
  Arg.(value & opt (some int) None
       & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen on 127.0.0.1:$(docv).")

let daemon_socket_arg =
  Arg.(value & opt (some string) None
       & info [ "unix-socket" ] ~docv:"PATH" ~doc:"Listen on a Unix domain socket at $(docv).")

let fleet_worker_cmd =
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"ADDR"
             ~doc:"Shared result store ($(b,emc fleet-store) address): consulted before and \
                   fed after every batch, so workers never re-simulate what any of them \
                   already measured. Store failures are logged and simulated through.")
  in
  let register_arg =
    Arg.(value & opt (some string) None
         & info [ "register" ] ~docv:"ADDR"
             ~doc:"Enroll in a store's membership table (heartbeat every --heartbeat \
                   seconds, TTL of three beats) so @$(docv) coordinators discover this \
                   worker mid-run; deregisters on graceful shutdown. When --store is \
                   absent, $(docv) doubles as the result store.")
  in
  let advertise_arg =
    Arg.(value & opt (some string) None
         & info [ "advertise" ] ~docv:"ADDR"
             ~doc:"Address to publish in the membership table (default: the listen \
                   address). Set it when coordinators reach this worker through a \
                   different host/port than it binds.")
  in
  let heartbeat_arg =
    Arg.(value & opt float 2.0
         & info [ "heartbeat" ] ~docv:"SECONDS" ~doc:"Seconds between membership heartbeats.")
  in
  let pidfile_arg =
    Arg.(value & opt (some string) None
         & info [ "pidfile" ] ~docv:"FILE"
             ~doc:"Write the daemon pid to $(docv) (default: <socket>.pid for Unix-socket \
                   listeners) — the handle --drain uses.")
  in
  let drain_arg =
    Arg.(value & flag
         & info [ "drain" ]
             ~doc:"Instead of starting a daemon, gracefully drain the one whose pidfile \
                   matches these options: SIGTERM, wait for in-flight requests to finish \
                   and the pidfile to disappear, then exit 0.")
  in
  let run port socket jobs store cache register advertise heartbeat pidfile drain trace
      metrics =
    with_obs trace metrics (fun () ->
        let listen = fleet_listen port socket in
        if drain then begin
          let pidfile =
            match pidfile with
            | Some p -> p
            | None -> (
                match listen with
                | Fleet.Unix_sock p -> p ^ ".pid"
                | Fleet.Tcp _ -> die "--drain needs --pidfile with a TCP listener")
          in
          match Fleet.drain ~pidfile () with
          | Ok pid -> Printf.printf "drained worker (pid %d)\n" pid
          | Error e -> die "--drain: %s" e
        end
        else begin
          let parse_daemon_addr flag s =
            match Fleet.parse_addr s with Ok a -> a | Error e -> die "%s: %s" flag e
          in
          let store = Option.map (parse_daemon_addr "--store") store in
          let register = Option.map (parse_daemon_addr "--register") register in
          if heartbeat <= 0.0 then die "--heartbeat must be positive";
          (* a register address is a store: share results through it too
             unless the operator pointed --store elsewhere *)
          let store = match store with Some _ -> store | None -> register in
          let jobs = match jobs with Some j -> j | None -> Scale.jobs_of_env () in
          Fleet.run_worker ~jobs ?store ?cache_file:cache ?register ?advertise ~heartbeat
            ?pidfile ~listen ()
        end)
  in
  Cmd.v
    (Cmd.info "fleet-worker"
       ~doc:"Run a measurement worker daemon: POST /measure (a batch of design points in, \
             all three responses per point out, bit-exact hex floats), /healthz, /metrics. \
             With --register it joins an elastic fleet; with --drain it gracefully stops \
             a running one.")
    Term.(const run $ daemon_port_arg $ daemon_socket_arg $ jobs_arg $ store_arg $ cache_arg
          $ register_arg $ advertise_arg $ heartbeat_arg $ pidfile_arg $ drain_arg
          $ trace_arg $ metrics_arg)

let fleet_members_cmd =
  let addr_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ADDR" ~doc:"An $(b,emc fleet-store) address.")
  in
  let run addr =
    match Fleet.parse_addr addr with
    | Error e -> die "%s" e
    | Ok a -> (
        match Fleet.members a with
        | Error e -> die "members: %s" e
        | Ok ms ->
            List.iter (fun (w, age) -> Printf.printf "%s\tlast heartbeat %.1fs ago\n" w age) ms;
            Printf.printf "%d worker%s registered\n" (List.length ms)
              (if List.length ms = 1 then "" else "s"))
  in
  Cmd.v
    (Cmd.info "fleet-members"
       ~doc:"List the workers currently registered in a fleet store's membership table.")
    Term.(const run $ addr_arg)

let fleet_store_cmd =
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"FILE"
             ~doc:"Persist the store in --cache JSONL format: loaded on start, appended per \
                   new key — a store file is also a valid --cache / $(b,emc cache) target.")
  in
  let run port socket file trace metrics =
    with_obs trace metrics (fun () ->
        Fleet.run_store ?file ~listen:(fleet_listen port socket) ())
  in
  Cmd.v
    (Cmd.info "fleet-store"
       ~doc:"Run the content-addressed result store: POST /lookup, POST /put, GET /get?k=, \
             keyed by the measurement result key shared with --cache files and run journals.")
    Term.(const run $ daemon_port_arg $ daemon_socket_arg $ file_arg $ trace_arg $ metrics_arg)

let fleet_resume_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"RUN_ID" ~doc:"Run id previously given to --run-id.")
  in
  let exec_arg =
    Arg.(value & flag
         & info [ "exec" ]
             ~doc:"Re-execute the run's recorded command line. The journal preloads first, \
                   so completed measurements are not re-simulated.")
  in
  let run id exec =
    match Fleet.journal_info id with
    | Error e -> die "%s" e
    | Ok ji ->
        Printf.printf "run %s: %d completed measurement%s (%d skipped line%s)\n"
          ji.Fleet.ji_run_id ji.Fleet.ji_entries
          (if ji.Fleet.ji_entries = 1 then "" else "s")
          ji.Fleet.ji_skipped
          (if ji.Fleet.ji_skipped = 1 then "" else "s");
        Printf.printf "  journal: %s\n  argv: %s\n" ji.Fleet.ji_path
          (String.concat " " ji.Fleet.ji_argv);
        if exec then
          match ji.Fleet.ji_argv with
          | [] -> die "journal records no command line to re-execute"
          | argv0 :: _ -> (
              try Unix.execv argv0 (Array.of_list ji.Fleet.ji_argv)
              with Unix.Unix_error (e, _, _) ->
                die "exec %s: %s" argv0 (Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "fleet-resume"
       ~doc:"Inspect a --run-id journal (completed measurements, recorded command line) and \
             optionally re-execute the run; preloading makes the resume re-simulate nothing.")
    Term.(const run $ id_arg $ exec_arg)

let cache_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"A --cache / run-journal / fleet-store JSONL file.")
  in
  let compact_arg =
    Arg.(value & flag
         & info [ "compact" ]
             ~doc:"Rewrite the file in place (tmp + rename), keeping schema headers and the \
                   first occurrence of each key and dropping duplicates, malformed lines and \
                   any torn trailing write.")
  in
  let run file compact =
    let st = if compact then Measure.cache_compact file else Measure.cache_stats file in
    Printf.printf "%s%s:\n" file (if compact then " (before compaction)" else "");
    Printf.printf
      "  lines %d  entries %d  unique %d  duplicates %d  headers %d  malformed %d%s\n"
      st.Measure.cs_lines st.Measure.cs_entries st.Measure.cs_unique st.Measure.cs_duplicates
      st.Measure.cs_headers st.Measure.cs_malformed
      (if st.Measure.cs_torn then "  (torn trailing line)" else "");
    if st.Measure.cs_top_duplicates <> [] then begin
      print_string "  hottest keys:\n";
      List.iter
        (fun (k, n) -> Printf.printf "    %4dx %s\n" n k)
        st.Measure.cs_top_duplicates
    end;
    if compact then
      Printf.printf "  compacted to %d line%s\n"
        (st.Measure.cs_headers + st.Measure.cs_unique)
        (if st.Measure.cs_headers + st.Measure.cs_unique = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Report on (and optionally compact) a JSONL measurement cache: entry/duplicate/\
             malformed counts, hit-key statistics, torn-tail detection.")
    Term.(const run $ file_arg $ compact_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "emc" ~version:"1.0.0"
      ~doc:"Microarchitecture-sensitive empirical models for compiler optimizations (CGO'07 reproduction)."
  in
  exit (Cmd.eval (Cmd.group ~default info
    [ params_cmd; compile_cmd; simulate_cmd; design_cmd; model_cmd; train_cmd; predict_cmd;
      rank_cmd; serve_cmd; loadgen_cmd; search_cmd; pareto_cmd; fuzz_cmd; experiment_cmd;
      fleet_worker_cmd; fleet_store_cmd; fleet_members_cmd; fleet_resume_cmd; cache_cmd ]))
