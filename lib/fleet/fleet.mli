(** Distributed measurement over the serve substrate.

    [lib/par] fans a {!Emc_core.Measure.respond_many} batch out over forked
    workers on one box; this module fans it out over {e machines}. Three
    pieces, all speaking the dependency-free HTTP/1.1 of [lib/serve]:

    - a {b worker daemon} ([emc fleet-worker], {!run_worker}) exposing
      [POST /measure] — a batch of design points in, all three responses
      per point out — plus [/healthz] and [/metrics];
    - a {b coordinator} ({!attach}) installed behind
      [Measure.respond_many] via [--fleet HOST:PORT,...] / [EMC_FLEET]:
      it chunks each batch, dispatches chunks to workers over keep-alive
      connections, retries chunks whose worker crashed, and work-steals
      stragglers by re-dispatching their chunk to an idle worker — first
      completion wins;
    - a {b content-addressed result store} ([emc fleet-store],
      {!run_store}): GET/PUT keyed by [Measure.result_key], persisted in
      the exact JSONL [--cache] line format, so workers share results and
      a killed run resumes with zero re-simulation.

    {b The bit-identity contract.} Results merged in first-occurrence
    order must be bit-identical to [--jobs 1] on one box — same values,
    same [measure.*] counters, same cache/journal bytes — regardless of
    worker count, chunk size, retries, steals, or arrival order. The
    protocol guarantees it by construction: design points travel as the
    raw 25-vector of [Params.raw_of] and every measured value travels as
    an OCaml [%h] hex-float literal, both lossless; chunks map onto fixed
    slices of the deduplicated work array, so results land at their input
    index no matter which worker produced them or in what order; and a
    duplicate (stolen) completion is identical to the first because the
    simulator is deterministic, so whichever arrives first is kept and
    the other discarded. Coordinator-side scheduling telemetry lands in
    separate [fleet.*] counters (dispatched, points_dispatched, retried,
    worker_failures, steals) so [measure.*] stays comparable.

    Resumability: [--run-id ID] journals every measurement to
    [EMC_RUN_DIR/ID.jsonl] (header line + [--cache]-format records);
    re-running with the same id preloads the journal and re-simulates
    nothing ([emc fleet-resume] inspects or re-executes a journal). *)

exception Fleet_error of string
(** A batch that cannot complete: every worker dead with work pending, a
    chunk over its retry budget, or a worker rejecting the (deterministic)
    request outright. *)

(** {1 Addresses} *)

type addr =
  | Tcp of string * int
  | Unix_sock of string  (** distinguished from host:port by containing '/' *)

val addr_to_string : addr -> string

val parse_addr : string -> (addr, string) result
(** ["host:port"], [":port"] (localhost), or a Unix-socket path (anything
    containing '/'). *)

val parse_fleet : string -> (addr list, string) result
(** Comma-separated {!parse_addr} list — the [--fleet]/[EMC_FLEET]
    format. *)

(** {1 Coordinator} *)

type options = {
  chunk : int;  (** design points per dispatch; 0 = auto from batch size *)
  connect_timeout : float;  (** seconds to establish a worker connection *)
  read_timeout : float;  (** hard per-chunk deadline before the worker is failed *)
  steal_after : float;
      (** with the queue drained and an idle worker available, a chunk
          running longer than this is re-dispatched to the idle worker *)
  max_attempts : int;  (** dispatch budget per chunk before {!Fleet_error} *)
}

val default_options : options
(** chunk auto, 5 s connect, 600 s read, 30 s steal, 3 attempts. *)

val attach : ?options:options -> Emc_core.Measure.t -> addr list -> unit
(** Route the measure's batch cache misses through the fleet
    ([Measure.set_remote]). Raises {!Fleet_error} immediately on an empty
    address list; later batch failures raise it from inside
    [respond_many]. *)

(** {1 Daemons} (block until SIGTERM/SIGINT, then clean up) *)

val run_worker :
  ?jobs:int ->
  ?store:addr ->
  ?store_timeout:float ->
  ?cache_file:string ->
  listen:addr ->
  unit ->
  unit
(** One measurement worker. [jobs] fans each received chunk out over
    local forked processes ([lib/par]); [store] consults/feeds a shared
    result store around every batch (store failures are logged and
    ignored — the worker simulates instead); [cache_file] is the worker's
    own persistent JSONL cache. *)

val run_store : ?file:string -> listen:addr -> unit -> unit
(** The content-addressed result store. [file] persists the table in
    [--cache] JSONL format (loaded on start, appended per new key), so a
    store file is also a valid [--cache]/[emc cache] target. Endpoints:
    [POST /lookup] (keys in, hits out), [POST /put] (entries in, count of
    new keys out), [GET /get?k=], [/healthz], [/metrics]. *)

(** {1 Run journals ([--run-id] / [emc fleet-resume])} *)

val run_dir : unit -> string
(** [EMC_RUN_DIR] or ["emc-runs"]. *)

val journal_path : string -> string
(** [run_dir ^ "/" ^ run_id ^ ".jsonl"]. *)

val journal_init : run_id:string -> argv:string array -> string
(** Ensure the journal exists (creating {!run_dir} and writing the
    [emc-run-journal/1] header line recording [argv] if new) and return
    its path — passed to [Measure.create ?journal_file]. *)

type journal_info = {
  ji_path : string;
  ji_run_id : string;
  ji_argv : string list;  (** argv recorded by the run that created it *)
  ji_entries : int;  (** completed measurements on file *)
  ji_skipped : int;  (** malformed/torn lines *)
}

val journal_info : string -> (journal_info, string) result
(** Read a journal's header and count its records ([emc fleet-resume]). *)
