(** Distributed measurement over the serve substrate.

    [lib/par] fans a {!Emc_core.Measure.respond_many} batch out over forked
    workers on one box; this module fans it out over {e machines}. Three
    pieces, all speaking the dependency-free HTTP/1.1 of [lib/serve]:

    - a {b worker daemon} ([emc fleet-worker], {!run_worker}) exposing
      [POST /measure] — a batch of design points in, all three responses
      per point out — plus [/healthz] and [/metrics]; with [--register]
      it also heartbeats into a store's membership table and can be
      drained gracefully ({!drain}, [emc fleet-worker --drain]);
    - a {b coordinator} ({!attach}) installed behind
      [Measure.respond_many] via [--fleet HOST:PORT,...] / [EMC_FLEET]:
      it chunks each batch, keeps up to [depth] chunks pipelined per
      worker over keep-alive connections, retries chunks whose worker
      crashed, and work-steals stragglers by re-dispatching their chunk
      to an idle worker — first completion wins. A [@ADDR] source makes
      membership {e elastic}: the coordinator polls the store's
      [/members] table, so workers joining mid-run pick up pending
      chunks and lost workers age out and their chunks requeue;
    - a {b content-addressed result store} ([emc fleet-store],
      {!run_store}): GET/PUT keyed by [Measure.result_key], persisted in
      the exact JSONL [--cache] line format, so workers share results and
      a killed run resumes with zero re-simulation. It doubles as the
      membership registry ([POST /register], [POST /deregister],
      [GET /members]).

    {b The bit-identity contract.} Results merged in first-occurrence
    order must be bit-identical to [--jobs 1] on one box — same values,
    same [measure.*] counters, same cache/journal bytes — regardless of
    worker count, chunk size, retries, steals, or arrival order. The
    protocol guarantees it by construction: design points travel as the
    raw 25-vector of [Params.raw_of] and every measured value travels as
    an OCaml [%h] hex-float literal, both lossless; chunks map onto fixed
    slices of the deduplicated work array, so results land at their input
    index no matter which worker produced them or in what order; and a
    duplicate (stolen) completion is identical to the first because the
    simulator is deterministic, so whichever arrives first is kept and
    the other discarded. Coordinator-side scheduling telemetry lands in
    separate [fleet.*] counters (dispatched, points_dispatched, retried,
    worker_failures, steals) so [measure.*] stays comparable.

    Resumability: [--run-id ID] journals every measurement to
    [EMC_RUN_DIR/ID.jsonl] (header line + [--cache]-format records);
    re-running with the same id preloads the journal and re-simulates
    nothing ([emc fleet-resume] inspects or re-executes a journal). *)

exception Fleet_error of string
(** A batch that cannot complete: every worker dead with work pending, a
    chunk over its retry budget, or a worker rejecting the (deterministic)
    request outright. *)

(** {1 Addresses} *)

type addr =
  | Tcp of string * int
  | Unix_sock of string  (** distinguished from host:port by containing '/' *)

val addr_to_string : addr -> string

val parse_addr : string -> (addr, string) result
(** ["host:port"], [":port"] (localhost), or a Unix-socket path (anything
    containing '/'). *)

(** One coordinator work source: a fixed worker address, or a store whose
    membership table is polled for workers ([@ADDR] on the command
    line). *)
type source = Worker of addr | Members of addr

val parse_source : string -> (source, string) result
(** {!parse_addr}, with a [@] prefix selecting {!Members}. *)

val parse_fleet : string -> (source list, string) result
(** Comma-separated {!parse_source} list — the [--fleet]/[EMC_FLEET]
    format, e.g. ["host:9001,host:9002"] or ["@/run/emc-store.sock"]. *)

(** {1 Coordinator} *)

type options = {
  chunk : int;  (** design points per dispatch; 0 = auto from batch size *)
  depth : int;
      (** outstanding chunks pipelined per worker connection; 1 = the
          classic request/response lockstep. Responses come back in
          request order (the worker loop is sequential) and each echoes
          its [X-Chunk-Id], so a desync is detected, not silently merged *)
  connect_timeout : float;  (** seconds to establish a worker connection *)
  read_timeout : float;
      (** hard per-dispatch deadline before the worker is failed; clocks
          tick only at the head of a worker's pipeline (a queued dispatch
          is not running yet) *)
  steal_after : float;
      (** with the queue drained and an idle worker available, a chunk
          running longer than this is re-dispatched to the idle worker *)
  max_attempts : int;  (** dispatch budget per chunk before {!Fleet_error} *)
  poll_interval : float;  (** seconds between [/members] polls (elastic sources) *)
  store_timeout : float;  (** RPC timeout for store lookups and membership polls *)
}

val default_options : options
(** chunk auto, depth 1, 5 s connect, 600 s read, 30 s steal, 3 attempts,
    1 s poll, 10 s store. *)

val chunk_plan : chunk:int -> nworkers:int -> n:int -> (int * int) list
(** The fixed-slice chunking of [n] work items as [(start, length)]
    pairs: every index covered exactly once, no empty chunks, for every
    degenerate shape ([n] below the worker count, [n = 1], a chunk size
    above [n]). [chunk = 0] sizes automatically (~4 chunks per worker,
    capped at 32 points); negative raises {!Fleet_error}. Exposed for
    tests — the scheduler calls exactly this. *)

val next_wake : now:float -> read_timeout:float -> steal_after:float ->
  ?poll_at:float -> float list -> float
(** How long the dispatch loop may sleep: until the nearest head-of-line
    deadline or steal timer among the given dispatch start times, or the
    next membership poll — clamped to [[0.001, 60]] seconds, with a short
    wake when an event is already due. Exposed for tests: an
    idle-but-waiting coordinator must sleep the full gap, not busy-poll a
    fixed tick. *)

val attach : ?options:options -> ?store:addr -> Emc_core.Measure.t -> source list -> unit
(** Route the measure's batch cache misses through the fleet
    ([Measure.set_remote]). [store] (default: the first {!Members}
    source, if any) is consulted once per batch with every point's keys,
    and fully-stored points are merged without dispatch — bit-identically
    to a worker resolving them from the same store. Raises {!Fleet_error}
    immediately on an empty source list, [depth < 1] or [chunk < 0];
    later batch failures raise it from inside [respond_many]. *)

(** {1 Wire codec} (exposed for the bench harness)

    The [/measure] request/response bodies — every value a lossless
    OCaml [%h] hex-float literal, every point the raw 25-vector of
    [Params.raw_of], so a round trip is bit-exact by construction. *)

(** A parsed [/measure] request — what the worker daemon executes. *)
type measure_request = {
  mr_workload : string;
  mr_variant : Emc_workloads.Workload.variant;
  mr_workload_scale : float;
  mr_smarts : Emc_sim.Smarts.params option;
  mr_points : (Emc_opt.Flags.t * Emc_sim.Config.t) array;
}

val measure_body :
  Emc_workloads.Workload.t ->
  variant:Emc_workloads.Workload.variant ->
  workload_scale:float ->
  smarts:Emc_sim.Smarts.params option ->
  (Emc_opt.Flags.t * Emc_sim.Config.t) array ->
  string
(** Serialize one chunk's [/measure] request body (built once per chunk,
    reused verbatim across retries and steals). *)

val measure_request_of_body : string -> (measure_request, string) result

val result_body : Emc_core.Measure.triple array -> string
(** Serialize a worker's [/measure] response body. *)

val triples_of_body :
  expect:int -> string -> (Emc_core.Measure.triple array, string) result
(** Parse a [/measure] response, insisting on exactly [expect] triples. *)

(** {1 Membership client} *)

val members : ?timeout:float -> addr -> ((string * float) list, string) result
(** [GET /members] on a store: advertised worker addresses with seconds
    since their last heartbeat, expired entries already dropped. *)

val drain : ?timeout:float -> pidfile:string -> unit -> (int, string) result
(** Gracefully drain a local worker daemon: read its pid from [pidfile],
    send SIGTERM (the worker finishes in-flight requests, deregisters,
    removes the pidfile and exits 0) and wait up to [timeout] (default
    120 s) for the process to disappear. Returns the pid drained. *)

(** {1 Daemons} (block until SIGTERM/SIGINT, then clean up) *)

val run_worker :
  ?jobs:int ->
  ?store:addr ->
  ?store_timeout:float ->
  ?cache_file:string ->
  ?register:addr ->
  ?advertise:string ->
  ?heartbeat:float ->
  ?pidfile:string ->
  listen:addr ->
  unit ->
  unit
(** One measurement worker. [jobs] fans each received chunk out over
    local forked processes ([lib/par]); [store] consults/feeds a shared
    result store around every batch (store failures are logged and
    ignored — the worker simulates instead); [cache_file] is the worker's
    own persistent JSONL cache.

    [register] enrolls the worker in a store's membership table: a
    heartbeater child re-registers [advertise] (default: the listen
    address as printed by {!addr_to_string}) every [heartbeat] seconds
    (default 2) with a TTL of three beats, and exits on its own if the
    worker is SIGKILLed — so a dead worker ages out of [/members] within
    a TTL. On graceful shutdown the worker deregisters explicitly.

    [pidfile] (default [<socket>.pid] for Unix-socket listeners) is
    written on startup and removed on shutdown — the handle {!drain}
    uses. *)

val run_store : ?file:string -> listen:addr -> unit -> unit
(** The content-addressed result store. [file] persists the table in
    [--cache] JSONL format (loaded on start, appended per new key), so a
    store file is also a valid [--cache]/[emc cache] target. Endpoints:
    [POST /lookup] (keys in, hits out), [POST /put] (entries in, count of
    new keys out), [GET /get?k=], [POST /register] / [POST /deregister] /
    [GET /members] (the in-memory membership table; registrations expire
    after their TTL without a heartbeat), [/healthz], [/metrics]. *)

(** {1 Run journals ([--run-id] / [emc fleet-resume])} *)

val run_dir : unit -> string
(** [EMC_RUN_DIR] or ["emc-runs"]. *)

val journal_path : string -> string
(** [run_dir ^ "/" ^ run_id ^ ".jsonl"]. *)

val journal_init : run_id:string -> argv:string array -> string
(** Ensure the journal exists (creating {!run_dir} and writing the
    [emc-run-journal/1] header line recording [argv] if new) and return
    its path — passed to [Measure.create ?journal_file]. *)

type journal_info = {
  ji_path : string;
  ji_run_id : string;
  ji_argv : string list;  (** argv recorded by the run that created it *)
  ji_entries : int;  (** completed measurements on file *)
  ji_skipped : int;  (** malformed/torn lines *)
}

val journal_info : string -> (journal_info, string) result
(** Read a journal's header and count its records ([emc fleet-resume]). *)
