open Emc_core
open Emc_workloads
module Json = Emc_obs.Json
module Log = Emc_obs.Log
module Metrics = Emc_obs.Metrics
module Http = Emc_serve.Http

(** Distributed measurement over the serve substrate (see fleet.mli). *)

exception Fleet_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Fleet_error msg)) fmt

(* ---------------- addresses ---------------- *)

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> p

let parse_addr s =
  let s = String.trim s in
  if s = "" then Error "empty worker address"
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "%S: want host:port or a unix-socket path" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "%S: bad port %S" s port))

let parse_fleet s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty fleet specification"
  else
    List.fold_right
      (fun part acc ->
        match (acc, parse_addr part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok addrs, Ok a -> Ok (a :: addrs))
      parts (Ok [])

let sockaddr_of_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Unix.ADDR_INET (ip, port)
      | exception Failure _ -> (
          match (Unix.gethostbyname host).Unix.h_addr_list with
          | [||] -> fail "cannot resolve %s" host
          | ips -> Unix.ADDR_INET (ips.(0), port)
          | exception Not_found -> fail "cannot resolve %s" host))

(* ---------------- metrics ---------------- *)

(* coordinator side *)
let m_dispatched = Metrics.counter "fleet.dispatched"
let m_points = Metrics.counter "fleet.points_dispatched"
let m_retried = Metrics.counter "fleet.retried"
let m_failures = Metrics.counter "fleet.worker_failures"
let m_steals = Metrics.counter "fleet.steals"

(* worker side *)
let m_requests = Metrics.counter "fleet.requests"
let m_measured = Metrics.counter "fleet.points_measured"
let m_store_hits = Metrics.counter "fleet.store_hits"
let m_store_puts = Metrics.counter "fleet.store_puts"

(* store side *)
let m_lookup_hits = Metrics.counter "fleet.store.lookup_hits"
let m_lookup_misses = Metrics.counter "fleet.store.lookup_misses"
let m_added = Metrics.counter "fleet.store.added"
let g_keys = Metrics.gauge "fleet.store.keys"

(* ---------------- wire codec ---------------- *)

(* Design points travel as the raw 25-vector of [Params.raw_of] (every
   flag/march field, including off-grid values like fig3's custom
   heuristics) and every float as a %h hex literal — both lossless, which
   is what makes remote measurement bit-identical to local. *)

let measure_schema = "emc-fleet-measure/1"
let result_schema = "emc-fleet-result/1"

let point_to_json (flags, march) =
  Json.List (Array.to_list (Array.map Json.hex (Params.raw_of flags march)))

let floats_of_json = function
  | Json.List xs -> (
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> (
            match Json.hex_of x with Some f -> go (f :: acc) rest | None -> None)
      in
      go [] xs)
  | _ -> None

let point_of_json j =
  match floats_of_json j with
  | Some raw when List.length raw = Params.n_all ->
      Ok (Params.split_raw (Array.of_list raw))
  | Some raw ->
      Error (Printf.sprintf "point has %d values; want %d" (List.length raw) Params.n_all)
  | None -> Error "point must be a list of (hex-float) numbers"

let smarts_to_json = function
  | None -> Json.Null
  | Some (p : Emc_sim.Smarts.params) ->
      Json.Obj
        [ ("unit_size", Json.Int p.Emc_sim.Smarts.unit_size);
          ("warmup", Json.Int p.Emc_sim.Smarts.warmup);
          ("interval", Json.Int p.Emc_sim.Smarts.interval);
          ("target_ci", Json.hex p.Emc_sim.Smarts.target_ci);
          ("max_refinements", Json.Int p.Emc_sim.Smarts.max_refinements) ]

let smarts_of_json j =
  match j with
  | Json.Null -> Ok None
  | Json.Obj _ -> (
      let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
      let flt k = Option.bind (Json.member k j) Json.hex_of in
      match (int "unit_size", int "warmup", int "interval", flt "target_ci",
             int "max_refinements")
      with
      | Some unit_size, Some warmup, Some interval, Some target_ci, Some max_refinements ->
          Ok
            (Some
               { Emc_sim.Smarts.unit_size; warmup; interval; target_ci; max_refinements })
      | _ -> Error "malformed smarts parameters")
  | _ -> Error "smarts must be an object or null"

let measure_body (w : Workload.t) ~variant ~workload_scale ~smarts points =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str measure_schema);
         ("workload", Json.Str w.Workload.name);
         ("variant", Json.Str (Workload.variant_name variant));
         ("workload_scale", Json.hex workload_scale);
         ("smarts", smarts_to_json smarts);
         ("points", Json.List (Array.to_list (Array.map point_to_json points))) ])

type measure_request = {
  mr_workload : string;
  mr_variant : Workload.variant;
  mr_workload_scale : float;
  mr_smarts : Emc_sim.Smarts.params option;
  mr_points : (Emc_opt.Flags.t * Emc_sim.Config.t) array;
}

let ( let* ) r f = Result.bind r f

let measure_request_of_body body =
  let* j = Json.parse body in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = measure_schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unsupported schema %S" s)
    | _ -> Error (Printf.sprintf "missing schema (want %S)" measure_schema)
  in
  let* mr_workload =
    match Json.member "workload" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "missing workload"
  in
  let* mr_variant =
    match Json.member "variant" j with
    | Some (Json.Str "train") -> Ok Workload.Train
    | Some (Json.Str "ref") -> Ok Workload.Ref
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown variant %S" s)
    | _ -> Error "missing variant"
  in
  let* mr_workload_scale =
    match Option.bind (Json.member "workload_scale" j) Json.hex_of with
    | Some f when f > 0.0 -> Ok f
    | _ -> Error "missing/invalid workload_scale"
  in
  let* mr_smarts =
    smarts_of_json (Option.value ~default:Json.Null (Json.member "smarts" j))
  in
  let* points =
    match Json.member "points" j with
    | Some (Json.List pts) ->
        List.fold_right
          (fun p acc ->
            let* acc = acc in
            let* pt = point_of_json p in
            Ok (pt :: acc))
          pts (Ok [])
    | _ -> Error "missing points"
  in
  if points = [] then Error "empty points"
  else
    Ok { mr_workload; mr_variant; mr_workload_scale; mr_smarts;
         mr_points = Array.of_list points }

let triple_to_json (t : Measure.triple) =
  Json.Obj
    [ ("cycles", Json.hex t.Measure.t_cycles);
      ("energy", Json.hex t.Measure.t_energy);
      ("code_size", Json.hex t.Measure.t_code_size) ]

let triple_of_json j =
  let f k = Option.bind (Json.member k j) Json.hex_of in
  match (f "cycles", f "energy", f "code_size") with
  | Some t_cycles, Some t_energy, Some t_code_size ->
      Ok { Measure.t_cycles; t_energy; t_code_size }
  | _ -> Error "malformed result triple"

let result_body triples =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str result_schema);
         ("results", Json.List (Array.to_list (Array.map triple_to_json triples))) ])

let triples_of_body ~expect body =
  let* j = Json.parse body in
  let* results =
    match Json.member "results" j with
    | Some (Json.List rs) ->
        List.fold_right
          (fun r acc ->
            let* acc = acc in
            let* t = triple_of_json r in
            Ok (t :: acc))
          rs (Ok [])
    | _ -> Error "missing results"
  in
  if List.length results <> expect then
    Error (Printf.sprintf "%d results for %d points" (List.length results) expect)
  else Ok (Array.of_list results)

(* ---------------- minimal daemon scaffolding ---------------- *)

let error_json code msg =
  Json.to_string
    (Json.Obj
       [ ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]) ])

let json_body status j = (status, "application/json", Json.to_string j)
let error_body status code msg = (status, "application/json", error_json code msg)

let listener_of_addr addr =
  match addr with
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> fail "listen address must be an IP, not %S" host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      fd
  | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd

let stop = ref false

(* Sequential accept loop with keep-alive — measurement chunks are
   long-running and CPU-bound, so one connection at a time per daemon is
   the natural unit; parallelism comes from running more workers (and
   each worker's own --jobs fan-out). *)
let serve_loop ~name ~listen ~read_timeout handler =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  stop := false;
  let quit = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  let lsock = listener_of_addr listen in
  Log.info ~src:name
    ~fields:[ ("listen", Json.Str (addr_to_string listen)) ]
    "%s listening on %s" name (addr_to_string listen);
  while not !stop do
    match Unix.accept lsock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
         with Unix.Unix_error _ -> ());
        let rec conn () =
          match Http.read_request ~max_body:(64 * 1024 * 1024) fd with
          | Error (Http.Closed | Http.Timeout) -> ()
          | Error e ->
              Http.respond fd ~status:400 ~keep_alive:false
                (error_json "bad_request" (Http.error_to_string e))
          | Ok req ->
              let status, content_type, body =
                try handler req
                with e ->
                  Log.warn ~src:name "request handler raised: %s" (Printexc.to_string e);
                  error_body 500 "internal" "internal error; see server log"
              in
              Http.respond fd ~status ~content_type ~keep_alive:(not !stop) body;
              if not !stop then conn ()
        in
        (try conn ()
         with Unix.Unix_error
                ((Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
           ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  (match listen with
  | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Log.info ~src:name "%s on %s: graceful shutdown" name (addr_to_string listen)

(* ---------------- content-addressed result store ---------------- *)

let run_store ?file ~listen () =
  let table : (string, float) Hashtbl.t = Hashtbl.create 4096 in
  (match file with
  | None -> ()
  | Some path ->
      let loaded, skipped = Measure.cache_load table path in
      Log.info ~src:"fleet-store"
        ~fields:[ ("file", Json.Str path); ("keys", Json.Int (Hashtbl.length table)) ]
        "store file %s: %d entries loaded, %d skipped" path loaded skipped);
  let persist = Option.map Measure.cache_open_append file in
  Metrics.set g_keys (float_of_int (Hashtbl.length table));
  let handle (req : Http.request) =
    match (req.Http.meth, req.Http.path) with
    | "POST", "/lookup" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match Json.member "keys" j with
          | Some (Json.List ks) ->
              List.fold_right
                (fun k acc ->
                  let* acc = acc in
                  match k with
                  | Json.Str s -> Ok (s :: acc)
                  | _ -> Error "keys must be strings")
                ks (Ok [])
          | _ -> Error "missing keys"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok keys ->
            let hits =
              List.filter_map
                (fun k ->
                  match Hashtbl.find_opt table k with
                  | Some v ->
                      Metrics.incr m_lookup_hits;
                      Some (k, Json.hex v)
                  | None ->
                      Metrics.incr m_lookup_misses;
                      None)
                keys
            in
            json_body 200 (Json.Obj [ ("results", Json.Obj hits) ]))
    | "POST", "/put" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match Json.member "entries" j with
          | Some (Json.List es) ->
              List.fold_right
                (fun e acc ->
                  let* acc = acc in
                  match (Json.member "k" e, Option.bind (Json.member "v" e) Json.hex_of) with
                  | Some (Json.Str k), Some v -> Ok ((k, v) :: acc)
                  | _ -> Error "entries must be {\"k\":KEY,\"v\":HEXFLOAT}")
                es (Ok [])
          | _ -> Error "missing entries"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok entries ->
            let added =
              List.fold_left
                (fun n (k, v) ->
                  if Hashtbl.mem table k then n
                  else begin
                    Hashtbl.replace table k v;
                    (match persist with
                    | Some oc ->
                        output_string oc (Measure.cache_line k v);
                        output_char oc '\n'
                    | None -> ());
                    n + 1
                  end)
                0 entries
            in
            (match persist with Some oc -> flush oc | None -> ());
            Metrics.add m_added added;
            Metrics.set g_keys (float_of_int (Hashtbl.length table));
            json_body 200 (Json.Obj [ ("added", Json.Int added) ]))
    | "GET", "/get" -> (
        match List.assoc_opt "k" req.Http.query with
        | None -> error_body 400 "bad_request" "missing ?k="
        | Some k -> (
            match Hashtbl.find_opt table k with
            | Some v ->
                Metrics.incr m_lookup_hits;
                json_body 200 (Json.Obj [ ("k", Json.Str k); ("v", Json.hex v) ])
            | None ->
                Metrics.incr m_lookup_misses;
                error_body 404 "not_found" ("no result under key " ^ k)))
    | "GET", "/healthz" ->
        json_body 200
          (Json.Obj
             [ ("status", Json.Str "ok"); ("role", Json.Str "store");
               ("keys", Json.Int (Hashtbl.length table)) ])
    | "GET", "/metrics" -> (200, "text/plain; version=0.0.4", Emc_serve.Serve.prometheus ())
    | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)
  in
  serve_loop ~name:"fleet-store" ~listen ~read_timeout:30.0 handle;
  match persist with Some oc -> close_out oc | None -> ()

(* ---------------- store client (used by workers) ---------------- *)

let store_rpc ~timeout addr ~path ~body =
  match Http.connect ~timeout (sockaddr_of_addr addr) with
  | Error e -> Error (Http.error_to_string e)
  | Ok fd ->
      let r =
        match
          Http.write_request fd ~meth:"POST" ~path
            ~headers:[ ("Content-Type", "application/json") ]
            ~body ()
        with
        | Error e -> Error (Http.error_to_string e)
        | Ok () -> (
            match Http.read_response fd with
            | Error e -> Error (Http.error_to_string e)
            | Ok resp when resp.Http.status = 200 -> Ok resp.Http.resp_body
            | Ok resp -> Error (Printf.sprintf "store returned HTTP %d" resp.Http.status))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

let store_lookup ~timeout addr keys =
  let body =
    Json.to_string
      (Json.Obj [ ("keys", Json.List (List.map (fun k -> Json.Str k) keys)) ])
  in
  let* body = store_rpc ~timeout addr ~path:"/lookup" ~body in
  let* j = Json.parse body in
  match Json.member "results" j with
  | Some (Json.Obj kvs) ->
      Ok (List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.hex_of v)) kvs)
  | _ -> Error "store lookup: missing results"

let store_put ~timeout addr entries =
  let body =
    Json.to_string
      (Json.Obj
         [ ( "entries",
             Json.List
               (List.map
                  (fun (k, v) -> Json.Obj [ ("k", Json.Str k); ("v", Json.hex v) ])
                  entries) ) ])
  in
  let* body = store_rpc ~timeout addr ~path:"/put" ~body in
  let* j = Json.parse body in
  match Json.member "added" j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error "store put: missing added"

(* ---------------- worker daemon ---------------- *)

let all_keys (w : Workload.t) ~variant points =
  Array.to_list points
  |> List.concat_map (fun (flags, march) ->
         List.map
           (fun r -> Measure.result_key r w ~variant flags march)
           [ Measure.Cycles; Measure.Energy; Measure.CodeSize ])

let run_worker ?(jobs = 1) ?store ?(store_timeout = 10.0) ?cache_file ~listen () =
  (* one Measure per (workload_scale, smarts) signature: the memo persists
     across requests, so repeated corner points across batches and the
     energy/code-size re-reads cost nothing *)
  let measures : (string, Measure.t) Hashtbl.t = Hashtbl.create 4 in
  let measure_for ~workload_scale ~smarts =
    let key =
      Json.to_string
        (Json.Obj
           [ ("ws", Json.hex workload_scale); ("smarts", smarts_to_json smarts) ])
    in
    match Hashtbl.find_opt measures key with
    | Some m -> m
    | None ->
        let scale =
          { Scale.quick with Scale.name = "fleet"; workload_scale; smarts; jobs }
        in
        let m = Measure.create ?cache_file scale in
        Hashtbl.replace measures key m;
        m
  in
  let handle_measure (req : Http.request) =
    match measure_request_of_body req.Http.body with
    | Error msg -> error_body 400 "bad_request" msg
    | Ok mr -> (
        match Registry.find mr.mr_workload with
        | exception Invalid_argument msg -> error_body 400 "unknown_workload" msg
        | w ->
            Metrics.incr m_requests;
            Metrics.add m_measured (Array.length mr.mr_points);
            let m =
              measure_for ~workload_scale:mr.mr_workload_scale ~smarts:mr.mr_smarts
            in
            let variant = mr.mr_variant in
            (* consult the shared store for anything we don't already know;
               a store failure only costs us the simulation *)
            (match store with
            | None -> ()
            | Some saddr -> (
                let missing =
                  all_keys w ~variant mr.mr_points
                  |> List.filter (fun k -> not (Hashtbl.mem m.Measure.results k))
                in
                if missing <> [] then
                  match store_lookup ~timeout:store_timeout saddr missing with
                  | Ok hits -> Metrics.add m_store_hits (Measure.preload m hits)
                  | Error e ->
                      Log.warn ~src:"fleet-worker" "store lookup failed: %s" e));
            let cycles = Measure.respond_many ~response:Cycles m w ~variant mr.mr_points in
            let energy = Measure.respond_many ~response:Energy m w ~variant mr.mr_points in
            let code = Measure.respond_many ~response:CodeSize m w ~variant mr.mr_points in
            let triples =
              Array.init (Array.length mr.mr_points) (fun i ->
                  { Measure.t_cycles = cycles.(i); t_energy = energy.(i);
                    t_code_size = code.(i) })
            in
            (* feed everything back; the store dedupes, so re-putting
               store-served keys is harmless *)
            (match store with
            | None -> ()
            | Some saddr -> (
                let entries =
                  all_keys w ~variant mr.mr_points
                  |> List.filter_map (fun k ->
                         Option.map (fun v -> (k, v)) (Hashtbl.find_opt m.Measure.results k))
                in
                match store_put ~timeout:store_timeout saddr entries with
                | Ok added -> Metrics.add m_store_puts added
                | Error e -> Log.warn ~src:"fleet-worker" "store put failed: %s" e));
            (200, "application/json", result_body triples))
  in
  let handle (req : Http.request) =
    match (req.Http.meth, req.Http.path) with
    | "POST", "/measure" -> handle_measure req
    | "GET", "/healthz" ->
        json_body 200
          (Json.Obj
             [ ("status", Json.Str "ok"); ("role", Json.Str "worker");
               ("jobs", Json.Int jobs);
               ("workloads", Json.List (List.map (fun n -> Json.Str n) Registry.names)) ])
    | "GET", "/metrics" -> (200, "text/plain; version=0.0.4", Emc_serve.Serve.prometheus ())
    | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)
  in
  (* measurement chunks can run for minutes: a long read timeout keeps an
     idle keep-alive coordinator connection from being dropped mid-run *)
  serve_loop ~name:"fleet-worker" ~listen ~read_timeout:3600.0 handle

(* ---------------- coordinator ---------------- *)

type options = {
  chunk : int;
  connect_timeout : float;
  read_timeout : float;
  steal_after : float;
  max_attempts : int;
}

let default_options =
  { chunk = 0; connect_timeout = 5.0; read_timeout = 600.0; steal_after = 30.0;
    max_attempts = 3 }

type chunk_state = {
  c_id : int;
  c_start : int;  (** offset of this chunk's slice in the work array *)
  c_points : (Emc_opt.Flags.t * Emc_sim.Config.t) array;
  c_body : string;  (** the serialized /measure request, built once *)
  mutable c_done : bool;
  mutable c_attempts : int;  (** dispatches so far (retries + steals included) *)
  mutable c_running : int;  (** live dispatches (2 while a steal races the original) *)
}

type worker_state = {
  w_addr : addr;
  mutable w_fd : Unix.file_descr option;  (** kept alive across chunks *)
  mutable w_job : (chunk_state * float) option;  (** running chunk, dispatch time *)
  mutable w_dead : bool;
}

(* Shard one respond_many miss batch across the fleet. [work] is already
   deduplicated in first-occurrence order by Measure.respond_many; chunks
   are fixed slices of it, so every result lands at its input index and
   the merged array is independent of scheduling. *)
let respond_batch opts addrs (scale : Scale.t) (w : Workload.t) ~variant
    (work : (Emc_opt.Flags.t * Emc_sim.Config.t) array) =
  let n = Array.length work in
  let results : Measure.triple option array = Array.make n None in
  let workers =
    List.map (fun a -> { w_addr = a; w_fd = None; w_job = None; w_dead = false }) addrs
  in
  let nworkers = List.length workers in
  if nworkers = 0 then fail "empty fleet";
  (* auto chunk size: ~4 chunks per worker bounds the straggler tail
     without drowning small batches in per-request overhead *)
  let csize =
    if opts.chunk > 0 then opts.chunk
    else max 1 (min 32 ((n + (4 * nworkers) - 1) / (4 * nworkers)))
  in
  let chunks =
    List.init
      ((n + csize - 1) / csize)
      (fun i ->
        let start = i * csize in
        let points = Array.sub work start (min csize (n - start)) in
        { c_id = i; c_start = start; c_points = points;
          c_body =
            measure_body w ~variant ~workload_scale:scale.Scale.workload_scale
              ~smarts:scale.Scale.smarts points;
          c_done = false; c_attempts = 0; c_running = 0 })
  in
  let total = List.length chunks in
  let completed = ref 0 in
  let pending = Queue.create () in
  List.iter (fun c -> Queue.push c pending) chunks;
  let close_fd wk =
    (match wk.w_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    wk.w_fd <- None
  in
  let fail_worker wk reason =
    Log.warn ~src:"fleet"
      ~fields:[ ("worker", Json.Str (addr_to_string wk.w_addr)) ]
      "worker %s failed: %s" (addr_to_string wk.w_addr) reason;
    close_fd wk;
    wk.w_dead <- true;
    Metrics.incr m_failures;
    match wk.w_job with
    | None -> ()
    | Some (c, _) ->
        wk.w_job <- None;
        c.c_running <- c.c_running - 1;
        (* requeue only when no duplicate is still racing; if the twin
           later fails too, it requeues then *)
        if (not c.c_done) && c.c_running = 0 then begin
          if c.c_attempts >= opts.max_attempts then
            fail "chunk %d failed %d times (last worker: %s: %s); giving up" c.c_id
              c.c_attempts (addr_to_string wk.w_addr) reason;
          Metrics.incr m_retried;
          Queue.push c pending
        end
  in
  let dispatch wk c =
    c.c_attempts <- c.c_attempts + 1;
    c.c_running <- c.c_running + 1;
    wk.w_job <- Some (c, Unix.gettimeofday ());
    Metrics.incr m_dispatched;
    Metrics.add m_points (Array.length c.c_points);
    let conn =
      match wk.w_fd with
      | Some fd -> Ok fd
      | None -> Http.connect ~timeout:opts.connect_timeout (sockaddr_of_addr wk.w_addr)
    in
    match conn with
    | Error e -> fail_worker wk ("connect: " ^ Http.error_to_string e)
    | Ok fd -> (
        wk.w_fd <- Some fd;
        match
          Http.write_request fd ~meth:"POST" ~path:"/measure"
            ~headers:[ ("Content-Type", "application/json") ]
            ~body:c.c_body ()
        with
        | Ok () -> ()
        | Error e -> fail_worker wk ("request: " ^ Http.error_to_string e))
  in
  let collect wk fd =
    let c, _ = Option.get wk.w_job in
    match Http.read_response ~max_body:(64 * 1024 * 1024) fd with
    | Error e -> fail_worker wk (Http.error_to_string e)
    | Ok resp when resp.Http.status = 200 -> (
        match triples_of_body ~expect:(Array.length c.c_points) resp.Http.resp_body with
        | Error msg -> fail_worker wk ("bad response: " ^ msg)
        | Ok triples ->
            wk.w_job <- None;
            c.c_running <- c.c_running - 1;
            (* first completion wins; a stolen twin's duplicate is
               identical (deterministic simulator) and discarded *)
            if not c.c_done then begin
              c.c_done <- true;
              incr completed;
              Array.iteri (fun i t -> results.(c.c_start + i) <- Some t) triples
            end)
    | Ok resp ->
        (* the request is deterministic: a structured rejection would
           repeat on every worker, so fail the batch loudly instead of
           retrying it to death *)
        fail "worker %s rejected the batch: HTTP %d %s" (addr_to_string wk.w_addr)
          resp.Http.status
          (String.sub resp.Http.resp_body 0 (min 200 (String.length resp.Http.resp_body)))
  in
  let finally () = List.iter close_fd workers in
  Fun.protect ~finally (fun () ->
      while !completed < total do
        if not (List.exists (fun wk -> not wk.w_dead) workers) then
          fail "all %d fleet workers failed with %d/%d chunks incomplete" nworkers
            (total - !completed) total;
        (* dispatch pending chunks to idle live workers *)
        List.iter
          (fun wk ->
            if (not wk.w_dead) && wk.w_job = None then
              let rec next () =
                if Queue.is_empty pending then None
                else
                  let c = Queue.pop pending in
                  if c.c_done then next () else Some c
              in
              match next () with None -> () | Some c -> dispatch wk c)
          workers;
        (* wait for responses *)
        let busy =
          List.filter_map
            (fun wk ->
              match (wk.w_job, wk.w_fd) with
              | Some _, Some fd -> Some (wk, fd)
              | _ -> None)
            workers
        in
        (match busy with
        | [] -> ()
        | _ -> (
            match Unix.select (List.map snd busy) [] [] 0.05 with
            | readable, _, _ ->
                List.iter (fun (wk, fd) -> if List.memq fd readable then collect wk fd) busy
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
        let now = Unix.gettimeofday () in
        (* hard per-chunk deadline *)
        List.iter
          (fun wk ->
            match wk.w_job with
            | Some (_, started) when now -. started > opts.read_timeout ->
                fail_worker wk (Printf.sprintf "no response in %.0fs" opts.read_timeout)
            | _ -> ())
          workers;
        (* work stealing: queue drained, an idle worker free, and a chunk
           has been running past the straggler threshold without a twin —
           re-dispatch it; first completion wins *)
        if Queue.is_empty pending then begin
          let idle =
            List.filter (fun wk -> (not wk.w_dead) && wk.w_job = None) workers
          in
          let stragglers =
            List.filter_map
              (fun wk ->
                match wk.w_job with
                | Some (c, started)
                  when (not c.c_done) && c.c_running = 1
                       && now -. started > opts.steal_after ->
                    Some (c, started)
                | _ -> None)
              workers
            |> List.sort (fun (_, s1) (_, s2) -> compare s1 s2)
          in
          let rec steal idle stragglers =
            match (idle, stragglers) with
            | wk :: idle, (c, _) :: stragglers ->
                Metrics.incr m_steals;
                Log.info ~src:"fleet"
                  ~fields:[ ("chunk", Json.Int c.c_id);
                            ("worker", Json.Str (addr_to_string wk.w_addr)) ]
                  "stealing chunk %d onto %s" c.c_id (addr_to_string wk.w_addr);
                dispatch wk c;
                steal idle stragglers
            | _ -> ()
          in
          steal idle stragglers
        end
      done);
  Array.map
    (function Some t -> t | None -> fail "internal: incomplete batch")
    results

let attach ?(options = default_options) (m : Measure.t) addrs =
  if addrs = [] then fail "empty fleet";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Measure.set_remote m (fun w ~variant work ->
      respond_batch options addrs m.Measure.scale w ~variant work)

(* ---------------- run journals ---------------- *)

let journal_schema = "emc-run-journal/1"

let run_dir () =
  match Sys.getenv_opt "EMC_RUN_DIR" with Some d when d <> "" -> d | _ -> "emc-runs"

let journal_path run_id = Filename.concat (run_dir ()) (run_id ^ ".jsonl")

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_init ~run_id ~argv =
  mkdir_p (run_dir ());
  let path = journal_path run_id in
  if not (Sys.file_exists path) then begin
    let oc = open_out path in
    output_string oc
      (Json.to_string
         (Json.Obj
            [ ("schema", Json.Str journal_schema); ("run_id", Json.Str run_id);
              ("argv", Json.List (List.map (fun s -> Json.Str s) (Array.to_list argv)));
              ("started", Json.Float (Unix.time ())) ]));
    output_char oc '\n';
    close_out oc
  end;
  path

type journal_info = {
  ji_path : string;
  ji_run_id : string;
  ji_argv : string list;
  ji_entries : int;
  ji_skipped : int;
}

let journal_info run_id =
  let path = journal_path run_id in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s (known runs live under %s/)" path (run_dir ()))
  else begin
    let header =
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      let* j = Json.parse line in
      match (Json.member "schema" j, Json.member "run_id" j, Json.member "argv" j) with
      | Some (Json.Str s), Some (Json.Str id), Some (Json.List argv) when s = journal_schema ->
          Ok
            ( id,
              List.filter_map (function Json.Str a -> Some a | _ -> None) argv )
      | Some (Json.Str s), _, _ when s <> journal_schema ->
          Error (Printf.sprintf "%s: unsupported schema %S" path s)
      | _ -> Error (Printf.sprintf "%s: missing emc-run-journal header line" path)
    in
    let* ji_run_id, ji_argv = header in
    let table = Hashtbl.create 1024 in
    let loaded, skipped = Measure.cache_load table path in
    Ok { ji_path = path; ji_run_id; ji_argv; ji_entries = loaded; ji_skipped = skipped }
  end
