open Emc_core
open Emc_workloads
module Json = Emc_obs.Json
module Log = Emc_obs.Log
module Metrics = Emc_obs.Metrics
module Http = Emc_serve.Http

(** Distributed measurement over the serve substrate (see fleet.mli). *)

exception Fleet_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Fleet_error msg)) fmt

(* ---------------- addresses ---------------- *)

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> p

let parse_addr s =
  let s = String.trim s in
  if s = "" then Error "empty worker address"
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "%S: want host:port or a unix-socket path" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "%S: bad port %S" s port))

(* A fleet entry is either one worker's address or, prefixed with '@', a
   membership endpoint (a fleet-store) the coordinator polls for workers
   that register themselves — elastic membership instead of a static
   list. *)
type source = Worker of addr | Members of addr

let parse_source s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '@' then
    match parse_addr (String.sub s 1 (String.length s - 1)) with
    | Ok a -> Ok (Members a)
    | Error e -> Error ("membership endpoint " ^ e)
  else Result.map (fun a -> Worker a) (parse_addr s)

let parse_fleet s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty fleet specification"
  else
    List.fold_right
      (fun part acc ->
        match (acc, parse_source part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok srcs, Ok a -> Ok (a :: srcs))
      parts (Ok [])

let sockaddr_of_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Unix.ADDR_INET (ip, port)
      | exception Failure _ -> (
          match (Unix.gethostbyname host).Unix.h_addr_list with
          | [||] -> fail "cannot resolve %s" host
          | ips -> Unix.ADDR_INET (ips.(0), port)
          | exception Not_found -> fail "cannot resolve %s" host))

(* ---------------- metrics ---------------- *)

(* coordinator side *)
let m_dispatched = Metrics.counter "fleet.dispatched"
let m_points = Metrics.counter "fleet.points_dispatched"
let m_retried = Metrics.counter "fleet.retried"
let m_failures = Metrics.counter "fleet.worker_failures"
let m_steals = Metrics.counter "fleet.steals"
let m_joined = Metrics.counter "fleet.workers_joined"
let m_lost = Metrics.counter "fleet.workers_lost"
let m_prefilled = Metrics.counter "fleet.store_prefilled"

(* worker side *)
let m_requests = Metrics.counter "fleet.requests"
let m_measured = Metrics.counter "fleet.points_measured"
let m_store_hits = Metrics.counter "fleet.store_hits"
let m_store_puts = Metrics.counter "fleet.store_puts"
let m_heartbeats = Metrics.counter "fleet.heartbeats"

(* store side *)
let m_lookup_hits = Metrics.counter "fleet.store.lookup_hits"
let m_lookup_misses = Metrics.counter "fleet.store.lookup_misses"
let m_added = Metrics.counter "fleet.store.added"
let g_keys = Metrics.gauge "fleet.store.keys"
let m_registered = Metrics.counter "fleet.store.registrations"
let m_expired = Metrics.counter "fleet.store.members_expired"
let g_members = Metrics.gauge "fleet.store.members"

(* ---------------- wire codec ---------------- *)

(* Design points travel as the raw 25-vector of [Params.raw_of] (every
   flag/march field, including off-grid values like fig3's custom
   heuristics) and every float as a %h hex literal — both lossless, which
   is what makes remote measurement bit-identical to local. *)

let measure_schema = "emc-fleet-measure/1"
let result_schema = "emc-fleet-result/1"

let point_to_json (flags, march) =
  Json.List (Array.to_list (Array.map Json.hex (Params.raw_of flags march)))

let floats_of_json = function
  | Json.List xs -> (
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> (
            match Json.hex_of x with Some f -> go (f :: acc) rest | None -> None)
      in
      go [] xs)
  | _ -> None

let point_of_json j =
  match floats_of_json j with
  | Some raw when List.length raw = Params.n_all ->
      Ok (Params.split_raw (Array.of_list raw))
  | Some raw ->
      Error (Printf.sprintf "point has %d values; want %d" (List.length raw) Params.n_all)
  | None -> Error "point must be a list of (hex-float) numbers"

let smarts_to_json = function
  | None -> Json.Null
  | Some (p : Emc_sim.Smarts.params) ->
      Json.Obj
        [ ("unit_size", Json.Int p.Emc_sim.Smarts.unit_size);
          ("warmup", Json.Int p.Emc_sim.Smarts.warmup);
          ("interval", Json.Int p.Emc_sim.Smarts.interval);
          ("target_ci", Json.hex p.Emc_sim.Smarts.target_ci);
          ("max_refinements", Json.Int p.Emc_sim.Smarts.max_refinements) ]

let smarts_of_json j =
  match j with
  | Json.Null -> Ok None
  | Json.Obj _ -> (
      let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
      let flt k = Option.bind (Json.member k j) Json.hex_of in
      match (int "unit_size", int "warmup", int "interval", flt "target_ci",
             int "max_refinements")
      with
      | Some unit_size, Some warmup, Some interval, Some target_ci, Some max_refinements ->
          Ok
            (Some
               { Emc_sim.Smarts.unit_size; warmup; interval; target_ci; max_refinements })
      | _ -> Error "malformed smarts parameters")
  | _ -> Error "smarts must be an object or null"

let measure_body (w : Workload.t) ~variant ~workload_scale ~smarts points =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str measure_schema);
         ("workload", Json.Str w.Workload.name);
         ("variant", Json.Str (Workload.variant_name variant));
         ("workload_scale", Json.hex workload_scale);
         ("smarts", smarts_to_json smarts);
         ("points", Json.List (Array.to_list (Array.map point_to_json points))) ])

type measure_request = {
  mr_workload : string;
  mr_variant : Workload.variant;
  mr_workload_scale : float;
  mr_smarts : Emc_sim.Smarts.params option;
  mr_points : (Emc_opt.Flags.t * Emc_sim.Config.t) array;
}

let ( let* ) r f = Result.bind r f

let measure_request_of_body body =
  let* j = Json.parse body in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = measure_schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unsupported schema %S" s)
    | _ -> Error (Printf.sprintf "missing schema (want %S)" measure_schema)
  in
  let* mr_workload =
    match Json.member "workload" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "missing workload"
  in
  let* mr_variant =
    match Json.member "variant" j with
    | Some (Json.Str "train") -> Ok Workload.Train
    | Some (Json.Str "ref") -> Ok Workload.Ref
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown variant %S" s)
    | _ -> Error "missing variant"
  in
  let* mr_workload_scale =
    match Option.bind (Json.member "workload_scale" j) Json.hex_of with
    | Some f when f > 0.0 -> Ok f
    | _ -> Error "missing/invalid workload_scale"
  in
  let* mr_smarts =
    smarts_of_json (Option.value ~default:Json.Null (Json.member "smarts" j))
  in
  let* points =
    match Json.member "points" j with
    | Some (Json.List pts) ->
        List.fold_right
          (fun p acc ->
            let* acc = acc in
            let* pt = point_of_json p in
            Ok (pt :: acc))
          pts (Ok [])
    | _ -> Error "missing points"
  in
  if points = [] then Error "empty points"
  else
    Ok { mr_workload; mr_variant; mr_workload_scale; mr_smarts;
         mr_points = Array.of_list points }

let triple_to_json (t : Measure.triple) =
  Json.Obj
    [ ("cycles", Json.hex t.Measure.t_cycles);
      ("energy", Json.hex t.Measure.t_energy);
      ("code_size", Json.hex t.Measure.t_code_size) ]

let triple_of_json j =
  let f k = Option.bind (Json.member k j) Json.hex_of in
  match (f "cycles", f "energy", f "code_size") with
  | Some t_cycles, Some t_energy, Some t_code_size ->
      Ok { Measure.t_cycles; t_energy; t_code_size }
  | _ -> Error "malformed result triple"

let result_body triples =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str result_schema);
         ("results", Json.List (Array.to_list (Array.map triple_to_json triples))) ])

let triples_of_body ~expect body =
  let* j = Json.parse body in
  let* results =
    match Json.member "results" j with
    | Some (Json.List rs) ->
        List.fold_right
          (fun r acc ->
            let* acc = acc in
            let* t = triple_of_json r in
            Ok (t :: acc))
          rs (Ok [])
    | _ -> Error "missing results"
  in
  if List.length results <> expect then
    Error (Printf.sprintf "%d results for %d points" (List.length results) expect)
  else Ok (Array.of_list results)

(* ---------------- minimal daemon scaffolding ---------------- *)

let error_json code msg =
  Json.to_string
    (Json.Obj
       [ ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]) ])

let json_body status j = (status, "application/json", Json.to_string j)
let error_body status code msg = (status, "application/json", error_json code msg)

let listener_of_addr addr =
  match addr with
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> fail "listen address must be an IP, not %S" host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      fd
  | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd

let stop = ref false

(* Sequential accept loop with keep-alive — measurement chunks are
   long-running and CPU-bound, so one connection at a time per daemon is
   the natural unit; parallelism comes from running more workers (and
   each worker's own --jobs fan-out). A coordinator pipelines multiple
   requests down the one connection; they are answered strictly in order,
   each response echoing the request's X-Chunk-Id so the coordinator can
   verify the pairing.

   Drain semantics (SIGTERM/SIGINT, which is what `fleet-worker --drain`
   sends): finish the request currently being handled, answer it with
   Connection: close, run [on_stop] (deregister from the membership
   endpoint), and exit 0. Between requests the loop waits in short
   selects rather than blocking in read, so an idle daemon drains
   promptly instead of after its next request. *)
let serve_loop ?(ready = fun () -> ()) ?(on_stop = fun () -> ()) ~name ~listen ~read_timeout
    handler =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  stop := false;
  let quit = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  let lsock = listener_of_addr listen in
  Log.info ~src:name
    ~fields:[ ("listen", Json.Str (addr_to_string listen)) ]
    "%s listening on %s" name (addr_to_string listen);
  ready ();
  while not !stop do
    match Unix.accept lsock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
         with Unix.Unix_error _ -> ());
        (* Per-connection pipelining buffer: a pipelined client may send
           request N+1 glued to request N's bytes, in which case it sits
           here and the socket never becomes readable again. *)
        let carry = ref "" in
        (* true when request bytes arrive before the idle deadline; false
           on stop or an idle keep-alive connection going quiet *)
        let await_request () =
          let idle_deadline = Unix.gettimeofday () +. read_timeout in
          let rec go () =
            if !carry <> "" then true
            else if !stop then false
            else if Unix.gettimeofday () > idle_deadline then false
            else
              match Unix.select [ fd ] [] [] 0.25 with
              | [], _, _ -> go ()
              | _ -> true
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          in
          go ()
        in
        let rec conn () =
          if await_request () then
            match
              Http.read_request ~max_body:(64 * 1024 * 1024) ~timeout:read_timeout ~carry fd
            with
            | Error (Http.Closed | Http.Timeout) -> ()
            | Error e ->
                Http.respond fd ~status:400 ~keep_alive:false
                  (error_json "bad_request" (Http.error_to_string e))
            | Ok req ->
                let status, content_type, body =
                  try handler req
                  with e ->
                    Log.warn ~src:name "request handler raised: %s" (Printexc.to_string e);
                    error_body 500 "internal" "internal error; see server log"
                in
                let headers =
                  match Http.header req "x-chunk-id" with
                  | Some id -> [ ("X-Chunk-Id", id) ]
                  | None -> []
                in
                Http.respond fd ~status ~content_type ~headers ~keep_alive:(not !stop) body;
                if not !stop then conn ()
        in
        (try conn ()
         with Unix.Unix_error
                ((Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
           ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  (match listen with
  | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  on_stop ();
  Log.info ~src:name "%s on %s: graceful shutdown" name (addr_to_string listen)

(* ---------------- content-addressed result store ---------------- *)

let run_store ?file ~listen () =
  let table : (string, float) Hashtbl.t = Hashtbl.create 4096 in
  (match file with
  | None -> ()
  | Some path ->
      let loaded, skipped = Measure.cache_load table path in
      Log.info ~src:"fleet-store"
        ~fields:[ ("file", Json.Str path); ("keys", Json.Int (Hashtbl.length table)) ]
        "store file %s: %d entries loaded, %d skipped" path loaded skipped);
  let persist = Option.map Measure.cache_open_append file in
  Metrics.set g_keys (float_of_int (Hashtbl.length table));
  (* Elastic membership: workers heartbeat POST /register with their
     advertised address and a TTL; the coordinator polls GET /members. A
     worker whose heartbeats stop (SIGKILL, network loss) ages out after
     its TTL; a draining worker removes itself with POST /deregister.
     Membership is in-memory only — a restarted store starts empty and the
     next round of heartbeats (one per worker per couple of seconds)
     repopulates it. *)
  let members : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  let expire_members now =
    let dead =
      Hashtbl.fold
        (fun a (beat, ttl) acc -> if now -. beat > ttl then a :: acc else acc)
        members []
    in
    List.iter
      (fun a ->
        Hashtbl.remove members a;
        Metrics.incr m_expired;
        Log.info ~src:"fleet-store"
          ~fields:[ ("worker", Json.Str a) ]
          "member %s aged out (missed heartbeats)" a)
      dead;
    Metrics.set g_members (float_of_int (Hashtbl.length members))
  in
  let handle (req : Http.request) =
    match (req.Http.meth, req.Http.path) with
    | "POST", "/register" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match (Json.member "addr" j, Option.bind (Json.member "ttl" j) Json.hex_of) with
          | Some (Json.Str a), Some ttl when a <> "" && ttl > 0.0 && ttl <= 3600.0 ->
              Ok (a, ttl)
          | Some (Json.Str a), None when a <> "" -> Ok (a, 6.0)
          | _ -> Error "want {\"addr\":ADDR,\"ttl\":HEXSECONDS} with 0 < ttl <= 3600"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok (addr, ttl) ->
            let now = Unix.gettimeofday () in
            if not (Hashtbl.mem members addr) then
              Log.info ~src:"fleet-store" ~fields:[ ("worker", Json.Str addr) ]
                "member %s registered (ttl %.1fs)" addr ttl;
            Hashtbl.replace members addr (now, ttl);
            Metrics.incr m_registered;
            expire_members now;
            json_body 200 (Json.Obj [ ("members", Json.Int (Hashtbl.length members)) ]))
    | "POST", "/deregister" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match Json.member "addr" j with
          | Some (Json.Str a) when a <> "" -> Ok a
          | _ -> Error "want {\"addr\":ADDR}"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok addr ->
            let removed = Hashtbl.mem members addr in
            Hashtbl.remove members addr;
            if removed then
              Log.info ~src:"fleet-store" ~fields:[ ("worker", Json.Str addr) ]
                "member %s deregistered" addr;
            Metrics.set g_members (float_of_int (Hashtbl.length members));
            json_body 200 (Json.Obj [ ("removed", Json.Bool removed) ]))
    | "GET", "/members" ->
        let now = Unix.gettimeofday () in
        expire_members now;
        let workers =
          Hashtbl.fold (fun a (beat, _) acc -> (a, now -. beat) :: acc) members []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.map (fun (a, age) ->
                 Json.Obj [ ("addr", Json.Str a); ("age", Json.hex age) ])
        in
        json_body 200 (Json.Obj [ ("workers", Json.List workers) ])
    | "POST", "/lookup" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match Json.member "keys" j with
          | Some (Json.List ks) ->
              List.fold_right
                (fun k acc ->
                  let* acc = acc in
                  match k with
                  | Json.Str s -> Ok (s :: acc)
                  | _ -> Error "keys must be strings")
                ks (Ok [])
          | _ -> Error "missing keys"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok keys ->
            let hits =
              List.filter_map
                (fun k ->
                  match Hashtbl.find_opt table k with
                  | Some v ->
                      Metrics.incr m_lookup_hits;
                      Some (k, Json.hex v)
                  | None ->
                      Metrics.incr m_lookup_misses;
                      None)
                keys
            in
            json_body 200 (Json.Obj [ ("results", Json.Obj hits) ]))
    | "POST", "/put" -> (
        let parsed =
          let* j = Json.parse req.Http.body in
          match Json.member "entries" j with
          | Some (Json.List es) ->
              List.fold_right
                (fun e acc ->
                  let* acc = acc in
                  match (Json.member "k" e, Option.bind (Json.member "v" e) Json.hex_of) with
                  | Some (Json.Str k), Some v -> Ok ((k, v) :: acc)
                  | _ -> Error "entries must be {\"k\":KEY,\"v\":HEXFLOAT}")
                es (Ok [])
          | _ -> Error "missing entries"
        in
        match parsed with
        | Error msg -> error_body 400 "bad_request" msg
        | Ok entries ->
            let added =
              List.fold_left
                (fun n (k, v) ->
                  if Hashtbl.mem table k then n
                  else begin
                    Hashtbl.replace table k v;
                    (match persist with
                    | Some oc ->
                        output_string oc (Measure.cache_line k v);
                        output_char oc '\n'
                    | None -> ());
                    n + 1
                  end)
                0 entries
            in
            (match persist with Some oc -> flush oc | None -> ());
            Metrics.add m_added added;
            Metrics.set g_keys (float_of_int (Hashtbl.length table));
            json_body 200 (Json.Obj [ ("added", Json.Int added) ]))
    | "GET", "/get" -> (
        match List.assoc_opt "k" req.Http.query with
        | None -> error_body 400 "bad_request" "missing ?k="
        | Some k -> (
            match Hashtbl.find_opt table k with
            | Some v ->
                Metrics.incr m_lookup_hits;
                json_body 200 (Json.Obj [ ("k", Json.Str k); ("v", Json.hex v) ])
            | None ->
                Metrics.incr m_lookup_misses;
                error_body 404 "not_found" ("no result under key " ^ k)))
    | "GET", "/healthz" ->
        json_body 200
          (Json.Obj
             [ ("status", Json.Str "ok"); ("role", Json.Str "store");
               ("keys", Json.Int (Hashtbl.length table)) ])
    | "GET", "/metrics" -> (200, "text/plain; version=0.0.4", Emc_serve.Serve.prometheus ())
    | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)
  in
  serve_loop ~name:"fleet-store" ~listen ~read_timeout:30.0 handle;
  match persist with Some oc -> close_out oc | None -> ()

(* ---------------- store client (used by workers) ---------------- *)

let store_rpc ?(meth = "POST") ~timeout addr ~path ~body =
  match Http.connect ~timeout (sockaddr_of_addr addr) with
  | Error e -> Error (Http.error_to_string e)
  | Ok fd ->
      let r =
        match
          Http.write_request fd ~meth ~path
            ~headers:[ ("Content-Type", "application/json") ]
            ~body ()
        with
        | Error e -> Error (Http.error_to_string e)
        | Ok () -> (
            match Http.read_response ~timeout fd with
            | Error e -> Error (Http.error_to_string e)
            | Ok resp when resp.Http.status = 200 -> Ok resp.Http.resp_body
            | Ok resp -> Error (Printf.sprintf "store returned HTTP %d" resp.Http.status))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

let store_lookup ~timeout addr keys =
  let body =
    Json.to_string
      (Json.Obj [ ("keys", Json.List (List.map (fun k -> Json.Str k) keys)) ])
  in
  let* body = store_rpc ~timeout addr ~path:"/lookup" ~body in
  let* j = Json.parse body in
  match Json.member "results" j with
  | Some (Json.Obj kvs) ->
      Ok (List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.hex_of v)) kvs)
  | _ -> Error "store lookup: missing results"

let store_put ~timeout addr entries =
  let body =
    Json.to_string
      (Json.Obj
         [ ( "entries",
             Json.List
               (List.map
                  (fun (k, v) -> Json.Obj [ ("k", Json.Str k); ("v", Json.hex v) ])
                  entries) ) ])
  in
  let* body = store_rpc ~timeout addr ~path:"/put" ~body in
  let* j = Json.parse body in
  match Json.member "added" j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error "store put: missing added"

(* ---------------- membership client ---------------- *)

let register_rpc ~timeout addr ~advertise ~ttl =
  let body =
    Json.to_string (Json.Obj [ ("addr", Json.Str advertise); ("ttl", Json.hex ttl) ])
  in
  Result.map (fun _ -> ()) (store_rpc ~timeout addr ~path:"/register" ~body)

let deregister_rpc ~timeout addr ~advertise =
  let body = Json.to_string (Json.Obj [ ("addr", Json.Str advertise) ]) in
  Result.map (fun _ -> ()) (store_rpc ~timeout addr ~path:"/deregister" ~body)

let members ?(timeout = 10.0) addr =
  let* body = store_rpc ~meth:"GET" ~timeout addr ~path:"/members" ~body:"" in
  let* j = Json.parse body in
  match Json.member "workers" j with
  | Some (Json.List ws) ->
      List.fold_right
        (fun w acc ->
          let* acc = acc in
          match Json.member "addr" w with
          | Some (Json.Str a) ->
              let age = Option.value ~default:0.0 (Option.bind (Json.member "age" w) Json.hex_of) in
              Ok ((a, age) :: acc)
          | _ -> Error "members: entries must carry addr")
        ws (Ok [])
  | _ -> Error "members: missing workers"

(* ---------------- worker daemon ---------------- *)

let all_keys (w : Workload.t) ~variant points =
  Array.to_list points
  |> List.concat_map (fun p ->
         let kc, ke, ks = Measure.triple_keys w ~variant p in
         [ kc; ke; ks ])

(* The heartbeater: a tiny forked child that re-registers the worker with
   the membership endpoint every [interval] seconds (TTL 3x that), so the
   registration survives while the worker is deep in a long chunk. It
   exits by itself when orphaned — a SIGKILLed worker must age out of the
   membership, not be kept alive by a zombie heartbeat. *)
let start_heartbeater ~store ~advertise ~interval ~timeout =
  let parent = Unix.getpid () in
  match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      let rec loop () =
        if Unix.getppid () <> parent then Unix._exit 0;
        (match register_rpc ~timeout store ~advertise ~ttl:(3.0 *. interval) with
        | Ok () -> Metrics.incr m_heartbeats
        | Error e ->
            Log.warn ~src:"fleet-worker" "heartbeat to %s failed: %s" (addr_to_string store) e);
        (try ignore (Unix.select [] [] [] interval)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      in
      (try loop () with _ -> ());
      Unix._exit 0
  | pid -> pid

let default_pidfile = function Unix_sock p -> Some (p ^ ".pid") | Tcp _ -> None

let run_worker ?(jobs = 1) ?store ?(store_timeout = 10.0) ?cache_file ?register ?advertise
    ?(heartbeat = 2.0) ?pidfile ~listen () =
  (* one Measure per (workload_scale, smarts) signature: the memo persists
     across requests, so repeated corner points across batches and the
     energy/code-size re-reads cost nothing *)
  let measures : (string, Measure.t) Hashtbl.t = Hashtbl.create 4 in
  let measure_for ~workload_scale ~smarts =
    let key =
      Json.to_string
        (Json.Obj
           [ ("ws", Json.hex workload_scale); ("smarts", smarts_to_json smarts) ])
    in
    match Hashtbl.find_opt measures key with
    | Some m -> m
    | None ->
        let scale =
          { Scale.quick with Scale.name = "fleet"; workload_scale; smarts; jobs }
        in
        let m = Measure.create ?cache_file scale in
        Hashtbl.replace measures key m;
        m
  in
  let handle_measure (req : Http.request) =
    match measure_request_of_body req.Http.body with
    | Error msg -> error_body 400 "bad_request" msg
    | Ok mr -> (
        match Registry.find mr.mr_workload with
        | exception Invalid_argument msg -> error_body 400 "unknown_workload" msg
        | w ->
            Metrics.incr m_requests;
            Metrics.add m_measured (Array.length mr.mr_points);
            let m =
              measure_for ~workload_scale:mr.mr_workload_scale ~smarts:mr.mr_smarts
            in
            let variant = mr.mr_variant in
            (* consult the shared store for anything we don't already know;
               a store failure only costs us the simulation *)
            (match store with
            | None -> ()
            | Some saddr -> (
                let missing =
                  all_keys w ~variant mr.mr_points
                  |> List.filter (fun k -> not (Hashtbl.mem m.Measure.results k))
                in
                if missing <> [] then
                  match store_lookup ~timeout:store_timeout saddr missing with
                  | Ok hits -> Metrics.add m_store_hits (Measure.preload m hits)
                  | Error e ->
                      Log.warn ~src:"fleet-worker" "store lookup failed: %s" e));
            let cycles = Measure.respond_many ~response:Cycles m w ~variant mr.mr_points in
            let energy = Measure.respond_many ~response:Energy m w ~variant mr.mr_points in
            let code = Measure.respond_many ~response:CodeSize m w ~variant mr.mr_points in
            let triples =
              Array.init (Array.length mr.mr_points) (fun i ->
                  { Measure.t_cycles = cycles.(i); t_energy = energy.(i);
                    t_code_size = code.(i) })
            in
            (* feed everything back; the store dedupes, so re-putting
               store-served keys is harmless *)
            (match store with
            | None -> ()
            | Some saddr -> (
                let entries =
                  all_keys w ~variant mr.mr_points
                  |> List.filter_map (fun k ->
                         Option.map (fun v -> (k, v)) (Hashtbl.find_opt m.Measure.results k))
                in
                match store_put ~timeout:store_timeout saddr entries with
                | Ok added -> Metrics.add m_store_puts added
                | Error e -> Log.warn ~src:"fleet-worker" "store put failed: %s" e));
            (200, "application/json", result_body triples))
  in
  let handle (req : Http.request) =
    match (req.Http.meth, req.Http.path) with
    | "POST", "/measure" -> handle_measure req
    | "GET", "/healthz" ->
        json_body 200
          (Json.Obj
             [ ("status", Json.Str "ok"); ("role", Json.Str "worker");
               ("jobs", Json.Int jobs);
               ("workloads", Json.List (List.map (fun n -> Json.Str n) Registry.names)) ])
    | "GET", "/metrics" -> (200, "text/plain; version=0.0.4", Emc_serve.Serve.prometheus ())
    | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)
  in
  let advertise = match advertise with Some a -> a | None -> addr_to_string listen in
  let pidfile = match pidfile with Some _ as p -> p | None -> default_pidfile listen in
  let hb = ref None in
  let ready () =
    (match pidfile with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (string_of_int (Unix.getpid ()));
        output_char oc '\n';
        close_out oc);
    match register with
    | None -> ()
    | Some saddr ->
        hb := Some (start_heartbeater ~store:saddr ~advertise ~interval:heartbeat
                      ~timeout:store_timeout)
  in
  let on_stop () =
    (match !hb with
    | None -> ()
    | Some pid ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()));
    (match register with
    | None -> ()
    | Some saddr -> (
        match deregister_rpc ~timeout:store_timeout saddr ~advertise with
        | Ok () -> ()
        | Error e -> Log.warn ~src:"fleet-worker" "deregister failed: %s" e));
    match pidfile with
    | None -> ()
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
  in
  (* measurement chunks can run for minutes: a long read timeout keeps an
     idle keep-alive coordinator connection from being dropped mid-run *)
  serve_loop ~ready ~on_stop ~name:"fleet-worker" ~listen ~read_timeout:3600.0 handle

(* Graceful scale-down, the client side of `fleet-worker --drain`: SIGTERM
   the worker named by its pidfile and wait for the process to exit. The
   worker finishes its in-flight request, deregisters, removes its pidfile
   and exits 0; any chunks still pipelined behind the in-flight one are
   requeued by the coordinator when the connection closes — nothing is
   lost, the membership just shrinks by one. *)
let drain ?(timeout = 120.0) ~pidfile () =
  match open_in pidfile with
  | exception Sys_error e -> Error (Printf.sprintf "no worker pidfile: %s" e)
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      match int_of_string_opt (String.trim line) with
      | None -> Error (Printf.sprintf "%s: malformed pid %S" pidfile line)
      | Some pid -> (
          match Unix.kill pid Sys.sigterm with
          | exception Unix.Unix_error (Unix.ESRCH, _, _) ->
              Error (Printf.sprintf "no such process %d (stale pidfile %s)" pid pidfile)
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "kill %d: %s" pid (Unix.error_message e))
          | () ->
              let deadline = Unix.gettimeofday () +. timeout in
              let rec wait () =
                match Unix.kill pid 0 with
                | exception Unix.Unix_error (Unix.ESRCH, _, _) -> Ok pid
                | _ | (exception Unix.Unix_error _) ->
                    if Unix.gettimeofday () > deadline then
                      Error
                        (Printf.sprintf "worker %d still running after %.0fs" pid timeout)
                    else begin
                      (try ignore (Unix.select [] [] [] 0.05)
                       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                      wait ()
                    end
              in
              wait ()))

(* ---------------- coordinator ---------------- *)

type options = {
  chunk : int;
  depth : int;
  connect_timeout : float;
  read_timeout : float;
  steal_after : float;
  max_attempts : int;
  poll_interval : float;
  store_timeout : float;
}

let default_options =
  { chunk = 0; depth = 1; connect_timeout = 5.0; read_timeout = 600.0; steal_after = 30.0;
    max_attempts = 3; poll_interval = 1.0; store_timeout = 10.0 }

(* Fixed-slice chunk plan over [n] work items: (start, length) slices in
   order, every index covered exactly once, no empty chunks, for every
   degenerate shape — n smaller than the worker count, n = 1, a requested
   chunk size larger than n. [chunk = 0] sizes automatically: ~4 chunks
   per worker bounds the straggler tail without drowning small batches in
   per-request overhead. A negative chunk is a caller bug, loudly. *)
let chunk_plan ~chunk ~nworkers ~n =
  if chunk < 0 then fail "chunk size must be positive, not %d (0 = auto)" chunk;
  if n < 0 then fail "negative work array length %d" n;
  if n = 0 then []
  else begin
    let nworkers = max 1 nworkers in
    let csize =
      if chunk > 0 then chunk
      else max 1 (min 32 ((n + (4 * nworkers) - 1) / (4 * nworkers)))
    in
    List.init ((n + csize - 1) / csize) (fun i ->
        let start = i * csize in
        (start, min csize (n - start)))
  end

(* How long the coordinator may sleep: until the nearest head-of-pipeline
   chunk deadline or steal timer, or the next membership poll — computed,
   never a fixed busy-poll tick (an idle-but-waiting coordinator used to
   spin at 20 Hz re-deciding nothing). [heads] are the start times of each
   worker's head-of-pipeline dispatch; only heads have ticking clocks.
   Events already due resolve to a short wake so the caller handles them
   on the next iteration; an event that is due but cannot fire (a steal
   timer with no idle worker) drops out of the candidate set rather than
   clamping every sleep to near zero. *)
let next_wake ~now ~read_timeout ~steal_after ?poll_at heads =
  let cands =
    (match poll_at with Some t -> [ t ] | None -> [])
    @ List.concat_map (fun s -> [ s +. read_timeout; s +. steal_after ]) heads
  in
  match cands with
  | [] -> 60.0
  | _ -> (
      match List.filter (fun t -> t > now) cands with
      | [] -> 0.05
      | future -> min 60.0 (max 0.001 (List.fold_left min infinity future -. now)))

type chunk_state = {
  c_id : int;
  c_slots : int array;  (** result index of each of this chunk's points *)
  c_points : (Emc_opt.Flags.t * Emc_sim.Config.t) array;
  c_body : string;  (** the serialized /measure request, built once *)
  mutable c_done : bool;
  mutable c_attempts : int;  (** dispatches so far (retries + steals included) *)
  mutable c_running : int;  (** live dispatches (2 while a steal races the original) *)
}

(* One outstanding request on a worker's pipeline. Deadlines and steal
   timers consult [d_started], which is reset when the dispatch reaches
   the head of the pipeline: a request queued behind a long chunk is not
   running yet, and timing it from dispatch would fail healthy workers
   under head-of-line blocking. *)
type dispatch = { d_chunk : chunk_state; mutable d_started : float }

type worker_state = {
  w_addr : addr;
  w_key : string;  (** [addr_to_string w_addr] — identity for membership *)
  w_from_members : bool;  (** discovered via a membership poll, not --fleet *)
  mutable w_fd : Unix.file_descr option;  (** kept alive across chunks *)
  w_inflight : dispatch Queue.t;  (** pipelined dispatches, response order *)
  w_carry : string ref;
      (** pipelining read buffer: bytes of the next response that arrived
          glued to the previous one ([Http.read_response ?carry]). A
          worker with a non-empty carry must be collected without waiting
          for its socket — the buffered response never makes it readable *)
  mutable w_dead : bool;
}

(* Shard one respond_many miss batch across the fleet. [work] is already
   deduplicated in first-occurrence order by Measure.respond_many; chunks
   carry the result index of every point ([c_slots]), so every result
   lands at its input index and the merged array is independent of
   membership, chunking, and arrival order.

   Three things happen before any dispatch: membership sources are polled
   once (so an elastic fleet's initial worker set is known), the shared
   store is consulted once for every key of every point (fully-stored
   points never reach a worker), and the remaining points are sliced into
   chunks. The dispatch loop then keeps up to [opts.depth] requests
   outstanding per worker, re-polls membership every [opts.poll_interval],
   and sleeps exactly until the next deadline/steal/poll event. *)
let respond_batch ?store opts sources (scale : Scale.t) (w : Workload.t) ~variant
    (work : (Emc_opt.Flags.t * Emc_sim.Config.t) array) =
  if opts.depth < 1 then fail "pipeline depth must be at least 1, not %d" opts.depth;
  let n = Array.length work in
  let results : Measure.triple option array = Array.make n None in
  let static_addrs =
    List.filter_map (function Worker a -> Some a | Members _ -> None) sources
  in
  let member_sources =
    List.filter_map (function Members a -> Some a | Worker _ -> None) sources
  in
  let store =
    match store with
    | Some _ as s -> s
    | None -> ( match member_sources with a :: _ -> Some a | [] -> None)
  in
  let workers = ref [] in
  let known : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let add_worker ~from_members a =
    let key = addr_to_string a in
    if not (Hashtbl.mem known key) then begin
      (* never revive an addr within a batch: a worker that failed and
         re-registered before the next poll would silently burn the
         retry budget of every chunk it keeps failing *)
      Hashtbl.add known key ();
      workers :=
        !workers
        @ [ { w_addr = a; w_key = key; w_from_members = from_members; w_fd = None;
              w_inflight = Queue.create (); w_carry = ref ""; w_dead = false } ];
      if from_members then begin
        Metrics.incr m_joined;
        Log.info ~src:"fleet" ~fields:[ ("worker", Json.Str key) ] "worker %s joined" key
      end
    end
  in
  List.iter (add_worker ~from_members:false) static_addrs;
  let total = ref 0 in
  let completed = ref 0 in
  let pending : chunk_state Queue.t = Queue.create () in
  let close_fd wk =
    (match wk.w_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    wk.w_fd <- None;
    wk.w_carry := ""
  in
  let fail_worker wk reason =
    Log.warn ~src:"fleet" ~fields:[ ("worker", Json.Str wk.w_key) ]
      "worker %s failed: %s" wk.w_key reason;
    close_fd wk;
    wk.w_dead <- true;
    Metrics.incr m_failures;
    (* the whole pipeline dies with the connection: responses are matched
       to dispatches by queue order, so nothing behind a failure is
       trustworthy. Each chunk requeues only when no twin is racing; if
       the twin later fails too, it requeues then. *)
    while not (Queue.is_empty wk.w_inflight) do
      let d = Queue.pop wk.w_inflight in
      let c = d.d_chunk in
      c.c_running <- c.c_running - 1;
      if (not c.c_done) && c.c_running = 0 then begin
        if c.c_attempts >= opts.max_attempts then
          fail "chunk %d failed %d times (last worker: %s: %s); giving up" c.c_id
            c.c_attempts wk.w_key reason;
        Metrics.incr m_retried;
        Queue.push c pending
      end
    done
  in
  (* Elastic membership: the union of every source's register table is the
     fleet. New addrs join mid-batch and immediately soak up pending
     chunks; a members-sourced worker absent from a fully successful poll
     has drained or aged out — fail it so its in-flight chunks requeue.
     Leave detection is skipped when any poll failed (a flaky store must
     not look like a mass worker death); static --fleet workers are never
     removed by polling. *)
  let refresh_members () =
    let union : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let all_ok = ref true in
    List.iter
      (fun src ->
        match members ~timeout:opts.store_timeout src with
        | Error e ->
            all_ok := false;
            Log.warn ~src:"fleet" "membership poll of %s failed: %s" (addr_to_string src) e
        | Ok ms -> List.iter (fun (a, _) -> Hashtbl.replace union a ()) ms)
      member_sources;
    Hashtbl.iter
      (fun a () ->
        match parse_addr a with
        | Ok addr -> add_worker ~from_members:true addr
        | Error e -> Log.warn ~src:"fleet" "ignoring advertised worker %S: %s" a e)
      union;
    if !all_ok then
      List.iter
        (fun wk ->
          if wk.w_from_members && (not wk.w_dead) && not (Hashtbl.mem union wk.w_key)
          then begin
            Metrics.incr m_lost;
            fail_worker wk "deregistered or aged out of membership"
          end)
        !workers
  in
  let dispatch wk c =
    c.c_attempts <- c.c_attempts + 1;
    c.c_running <- c.c_running + 1;
    (* queue the dispatch before writing: a failed write reaches
       fail_worker with the chunk already in flight, so it requeues *)
    Queue.push { d_chunk = c; d_started = Unix.gettimeofday () } wk.w_inflight;
    Metrics.incr m_dispatched;
    Metrics.add m_points (Array.length c.c_points);
    let conn =
      match wk.w_fd with
      | Some fd -> Ok fd
      | None -> Http.connect ~timeout:opts.connect_timeout (sockaddr_of_addr wk.w_addr)
    in
    match conn with
    | Error e -> fail_worker wk ("connect: " ^ Http.error_to_string e)
    | Ok fd -> (
        wk.w_fd <- Some fd;
        match
          Http.write_request fd ~meth:"POST" ~path:"/measure"
            ~headers:
              [ ("Content-Type", "application/json");
                ("X-Chunk-Id", string_of_int c.c_id) ]
            ~body:c.c_body ()
        with
        | Ok () -> ()
        | Error e -> fail_worker wk ("request: " ^ Http.error_to_string e))
  in
  let collect wk fd =
    let d = Queue.peek wk.w_inflight in
    let c = d.d_chunk in
    let budget = max 0.05 (d.d_started +. opts.read_timeout -. Unix.gettimeofday ()) in
    match
      Http.read_response ~max_body:(64 * 1024 * 1024) ~timeout:budget ~carry:wk.w_carry fd
    with
    | Error e -> fail_worker wk (Http.error_to_string e)
    | Ok resp when resp.Http.status = 200 -> (
        match Http.response_header resp "x-chunk-id" with
        | Some id when id <> string_of_int c.c_id ->
            (* the worker echoes the request's chunk id; a mismatch means
               the pipeline lost sync and every queued pairing is suspect *)
            fail_worker wk
              (Printf.sprintf "pipeline desync: got chunk %s, expected %d" id c.c_id)
        | _ -> (
            match triples_of_body ~expect:(Array.length c.c_points) resp.Http.resp_body with
            | Error msg -> fail_worker wk ("bad response: " ^ msg)
            | Ok triples ->
                ignore (Queue.pop wk.w_inflight);
                c.c_running <- c.c_running - 1;
                (* the next pipelined dispatch is only now running: start
                   its deadline/steal clock here, not at dispatch time *)
                (match Queue.peek_opt wk.w_inflight with
                | Some next -> next.d_started <- Unix.gettimeofday ()
                | None -> ());
                (* first completion wins; a stolen twin's duplicate is
                   identical (deterministic simulator) and discarded *)
                if not c.c_done then begin
                  c.c_done <- true;
                  incr completed;
                  Array.iteri (fun j t -> results.(c.c_slots.(j)) <- Some t) triples
                end))
    | Ok resp ->
        (* the request is deterministic: a structured rejection would
           repeat on every worker, so fail the batch loudly instead of
           retrying it to death *)
        fail "worker %s rejected the batch: HTTP %d %s" wk.w_key resp.Http.status
          (String.sub resp.Http.resp_body 0 (min 200 (String.length resp.Http.resp_body)))
  in
  let finally () = List.iter close_fd !workers in
  Fun.protect ~finally (fun () ->
      if member_sources <> [] then refresh_members ();
      (* store pre-filter: one /lookup for every key of every point.
         Fully-stored points are merged exactly as a dispatched result
         would be — Measure.merge_batch counts them as simulations either
         way (someone once paid a simulator run for them), so counters and
         bytes match a store-less run. A failed lookup degrades to
         dispatching everything. *)
      (match store with
      | Some saddr when n > 0 -> (
          match store_lookup ~timeout:opts.store_timeout saddr (all_keys w ~variant work) with
          | Error e -> Log.warn ~src:"fleet" "store pre-filter lookup failed: %s" e
          | Ok hits ->
              let tbl = Hashtbl.create (List.length hits) in
              List.iter (fun (k, v) -> Hashtbl.replace tbl k v) hits;
              Array.iteri
                (fun i p ->
                  let kc, ke, ks = Measure.triple_keys w ~variant p in
                  match
                    (Hashtbl.find_opt tbl kc, Hashtbl.find_opt tbl ke, Hashtbl.find_opt tbl ks)
                  with
                  | Some c, Some e, Some s ->
                      results.(i) <-
                        Some { Measure.t_cycles = c; t_energy = e; t_code_size = s };
                      Metrics.incr m_prefilled
                  | _ -> ())
                work)
      | _ -> ());
      let todo =
        Array.of_list (List.filter (fun i -> results.(i) = None) (List.init n (fun i -> i)))
      in
      let todo_points = Array.map (fun i -> work.(i)) todo in
      let live_count = List.length (List.filter (fun wk -> not wk.w_dead) !workers) in
      let chunks =
        chunk_plan ~chunk:opts.chunk ~nworkers:live_count ~n:(Array.length todo)
        |> List.mapi (fun i (start, len) ->
               let points = Array.sub todo_points start len in
               { c_id = i; c_slots = Array.sub todo start len; c_points = points;
                 c_body =
                   measure_body w ~variant ~workload_scale:scale.Scale.workload_scale
                     ~smarts:scale.Scale.smarts points;
                 c_done = false; c_attempts = 0; c_running = 0 })
      in
      total := List.length chunks;
      List.iter (fun c -> Queue.push c pending) chunks;
      let next_poll = ref (Unix.gettimeofday () +. opts.poll_interval) in
      let empty_since = ref None in
      while !completed < !total do
        let now = Unix.gettimeofday () in
        if member_sources <> [] && now >= !next_poll then begin
          refresh_members ();
          next_poll := Unix.gettimeofday () +. opts.poll_interval
        end;
        let live = List.filter (fun wk -> not wk.w_dead) !workers in
        (match live with
        | [] ->
            if member_sources = [] then
              fail "all %d fleet workers failed with %d/%d chunks incomplete"
                (List.length !workers) (!total - !completed) !total
            else begin
              (* an elastic fleet may be momentarily empty (scale-down
                 before scale-up); wait for a join, but not forever *)
              (match !empty_since with
              | None -> empty_since := Some now
              | Some t0 when now -. t0 > opts.read_timeout ->
                  fail "no live fleet workers for %.0fs with %d/%d chunks incomplete"
                    (now -. t0) (!total - !completed) !total
              | Some _ -> ());
              let t = max 0.01 (!next_poll -. Unix.gettimeofday ()) in
              try ignore (Unix.select [] [] [] (min t 1.0))
              with Unix.Unix_error (Unix.EINTR, _, _) -> ()
            end
        | _ -> empty_since := None);
        (* fill every live worker's pipeline up to depth *)
        List.iter
          (fun wk ->
            while
              (not wk.w_dead)
              && Queue.length wk.w_inflight < opts.depth
              && not (Queue.is_empty pending)
            do
              let c = Queue.pop pending in
              if not c.c_done then dispatch wk c
            done)
          !workers;
        (* wait for responses — sleep until the nearest event, not a tick *)
        let busy =
          List.filter_map
            (fun wk ->
              match wk.w_fd with
              | Some fd when (not wk.w_dead) && not (Queue.is_empty wk.w_inflight) ->
                  Some (wk, fd)
              | _ -> None)
            !workers
        in
        (* a worker whose carry already buffers (the start of) the next
           pipelined response must be collected now — those bytes are off
           the socket, so select would never report it readable *)
        let carried, waiting = List.partition (fun (wk, _) -> !(wk.w_carry) <> "") busy in
        List.iter (fun (wk, fd) -> collect wk fd) carried;
        (match waiting with
        | [] -> ()
        | _ -> (
            let now = Unix.gettimeofday () in
            let heads =
              List.map (fun (wk, _) -> (Queue.peek wk.w_inflight).d_started) waiting
            in
            let poll_at = if member_sources = [] then None else Some !next_poll in
            let timeout =
              if carried <> [] then 0.0
              else
                next_wake ~now ~read_timeout:opts.read_timeout
                  ~steal_after:opts.steal_after ?poll_at heads
            in
            match Unix.select (List.map snd waiting) [] [] timeout with
            | readable, _, _ ->
                List.iter (fun (wk, fd) -> if List.memq fd readable then collect wk fd) waiting
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
        let now = Unix.gettimeofday () in
        (* hard per-dispatch deadline, head of pipeline only: a queued
           dispatch is not running, its clock starts at promotion *)
        List.iter
          (fun wk ->
            if not wk.w_dead then
              match Queue.peek_opt wk.w_inflight with
              | Some d when now -. d.d_started > opts.read_timeout ->
                  fail_worker wk (Printf.sprintf "no response in %.0fs" opts.read_timeout)
              | _ -> ())
          !workers;
        (* work stealing: queue drained, an idle worker free, and a head
           chunk running past the straggler threshold without a twin —
           re-dispatch it; first completion wins *)
        if Queue.is_empty pending then begin
          let idle =
            List.filter (fun wk -> (not wk.w_dead) && Queue.is_empty wk.w_inflight) !workers
          in
          let stragglers =
            List.filter_map
              (fun wk ->
                if wk.w_dead then None
                else
                  match Queue.peek_opt wk.w_inflight with
                  | Some d
                    when (not d.d_chunk.c_done)
                         && d.d_chunk.c_running = 1
                         && now -. d.d_started > opts.steal_after ->
                      Some (d.d_chunk, d.d_started)
                  | _ -> None)
              !workers
            |> List.sort (fun (_, s1) (_, s2) -> compare s1 s2)
          in
          let rec steal idle stragglers =
            match (idle, stragglers) with
            | wk :: idle, (c, _) :: stragglers ->
                Metrics.incr m_steals;
                Log.info ~src:"fleet"
                  ~fields:[ ("chunk", Json.Int c.c_id); ("worker", Json.Str wk.w_key) ]
                  "stealing chunk %d onto %s" c.c_id wk.w_key;
                dispatch wk c;
                steal idle stragglers
            | _ -> ()
          in
          steal idle stragglers
        end
      done);
  Array.map
    (function Some t -> t | None -> fail "internal: incomplete batch")
    results

let attach ?(options = default_options) ?store (m : Measure.t) sources =
  if sources = [] then fail "empty fleet";
  if options.depth < 1 then
    fail "pipeline depth must be at least 1, not %d" options.depth;
  if options.chunk < 0 then
    fail "chunk size must be positive, not %d (0 = auto)" options.chunk;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Measure.set_remote m (fun w ~variant work ->
      respond_batch ?store options sources m.Measure.scale w ~variant work)

(* ---------------- run journals ---------------- *)

let journal_schema = "emc-run-journal/1"

let run_dir () =
  match Sys.getenv_opt "EMC_RUN_DIR" with Some d when d <> "" -> d | _ -> "emc-runs"

let journal_path run_id = Filename.concat (run_dir ()) (run_id ^ ".jsonl")

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_init ~run_id ~argv =
  mkdir_p (run_dir ());
  let path = journal_path run_id in
  if not (Sys.file_exists path) then begin
    let oc = open_out path in
    output_string oc
      (Json.to_string
         (Json.Obj
            [ ("schema", Json.Str journal_schema); ("run_id", Json.Str run_id);
              ("argv", Json.List (List.map (fun s -> Json.Str s) (Array.to_list argv)));
              ("started", Json.Float (Unix.time ())) ]));
    output_char oc '\n';
    close_out oc
  end;
  path

type journal_info = {
  ji_path : string;
  ji_run_id : string;
  ji_argv : string list;
  ji_entries : int;
  ji_skipped : int;
}

let journal_info run_id =
  let path = journal_path run_id in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s (known runs live under %s/)" path (run_dir ()))
  else begin
    let header =
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      let* j = Json.parse line in
      match (Json.member "schema" j, Json.member "run_id" j, Json.member "argv" j) with
      | Some (Json.Str s), Some (Json.Str id), Some (Json.List argv) when s = journal_schema ->
          Ok
            ( id,
              List.filter_map (function Json.Str a -> Some a | _ -> None) argv )
      | Some (Json.Str s), _, _ when s <> journal_schema ->
          Error (Printf.sprintf "%s: unsupported schema %S" path s)
      | _ -> Error (Printf.sprintf "%s: missing emc-run-journal header line" path)
    in
    let* ji_run_id, ji_argv = header in
    let table = Hashtbl.create 1024 in
    let loaded, skipped = Measure.cache_load table path in
    Ok { ji_path = path; ji_run_id; ji_argv; ji_entries = loaded; ji_skipped = skipped }
  end
