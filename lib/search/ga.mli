(** Search over coded design-point grids (paper §6.3): a generational
    genetic algorithm plus random-search and hill-climbing baselines for the
    ablation benches. All searches {e minimize} the fitness (the model's
    predicted execution time). *)

type problem = { levels : float array array  (** admissible coded values per gene *) }

type params = {
  pop_size : int;
  generations : int;
  elite : int;  (** genomes copied unchanged each generation *)
  tournament : int;  (** tournament selection size *)
  crossover_p : float;  (** probability of uniform crossover (else cloning) *)
  mutation_p : float;  (** per-gene probability of mutating to a random level *)
  stagnation_limit : int;  (** early exit after this many stale generations *)
}

val default_params : params

val random_genome : Emc_util.Rng.t -> problem -> float array

val optimize :
  ?params:params ->
  Emc_util.Rng.t ->
  problem ->
  fitness:(float array -> float) ->
  float array * float
(** Returns the best genome found and its fitness. Deterministic for a given
    generator state. NaN fitness values are treated as worse than any
    number: they win no tournaments and claim no elite slots. *)

val random_search :
  Emc_util.Rng.t -> problem -> fitness:(float array -> float) -> evals:int
  -> float array * float
(** Pure random sampling with an evaluation budget; every fitness call
    counts into the [ga.evaluations] metric, like the GA's. *)

val hill_climb :
  Emc_util.Rng.t -> problem -> fitness:(float array -> float) -> restarts:int
  -> float array * float
(** First-improvement hill climbing over single-gene level moves, with
    random restarts; exact on unimodal separable landscapes. Fitness calls
    count into [ga.evaluations]. *)
