open Emc_util

(** Genetic algorithm over coded design points (paper §6.3).

    Genomes are vectors of per-gene levels; fitness is {e minimized} (the
    model's predicted execution time). Tournament selection, uniform
    crossover, per-gene mutation to a random admissible level, elitism.
    The paper's GA "terminates when the optimal design point is reached or
    the number of generations exceeds a threshold" — we run a fixed number
    of generations with early exit on prolonged stagnation. *)

type problem = { levels : float array array  (** admissible coded values per gene *) }

type params = {
  pop_size : int;
  generations : int;
  elite : int;
  tournament : int;
  crossover_p : float;
  mutation_p : float;
  stagnation_limit : int;
}

let default_params =
  { pop_size = 60; generations = 60; elite = 2; tournament = 3; crossover_p = 0.9;
    mutation_p = 0.08; stagnation_limit = 15 }

let random_genome rng (p : problem) = Array.map (fun ls -> Rng.choice rng ls) p.levels

let m_generations = Emc_obs.Metrics.counter "ga.generations"
let m_evaluations = Emc_obs.Metrics.counter "ga.evaluations"

(* Minimizing order over fitness values, NaN sorted last. Both polymorphic
   [compare] and [Float.compare] place NaN below every number, which would
   hand the elite slots (and tournament wins) to broken genomes whenever a
   model predicts NaN. *)
let fitness_order a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare a b

(* Per-generation best/mean fitness trace; the mean is only computed when a
   consumer (debug log or trace file) is actually on. *)
let trace_generation gen best fit =
  if Emc_obs.Log.enabled Emc_obs.Log.Debug || Emc_obs.Trace.enabled () then begin
    let mean = Stats.mean fit in
    Emc_obs.Log.debug ~src:"ga" "gen %d: best=%.6g mean=%.6g" gen best mean;
    Emc_obs.Trace.counter "ga.fitness" [ ("best", best); ("mean", mean) ]
  end

let optimize ?(params = default_params) rng (p : problem) ~fitness =
 Emc_obs.Trace.with_span ~cat:"search"
   ~args:(fun () ->
     [ ("pop_size", Emc_obs.Json.Int params.pop_size);
       ("generations", Emc_obs.Json.Int params.generations) ])
   "ga.optimize"
 @@ fun () ->
  let k = Array.length p.levels in
  let pop = Array.init params.pop_size (fun _ -> random_genome rng p) in
  let fit = Array.map fitness pop in
  Emc_obs.Metrics.add m_evaluations params.pop_size;
  let order () =
    let idx = Array.init params.pop_size Fun.id in
    Array.sort (fun a b -> fitness_order fit.(a) fit.(b)) idx;
    idx
  in
  let best = ref (Array.copy pop.(0)) and best_f = ref fit.(0) in
  let update_best () =
    Array.iteri
      (fun i f ->
        if fitness_order f !best_f < 0 then begin
          best_f := f;
          best := Array.copy pop.(i)
        end)
      fit
  in
  update_best ();
  let stagnant = ref 0 in
  let gen = ref 0 in
  while !gen < params.generations && !stagnant < params.stagnation_limit do
    incr gen;
    let prev_best = !best_f in
    let idx = order () in
    let tournament () =
      let w = ref (Rng.int rng params.pop_size) in
      for _ = 2 to params.tournament do
        let c = Rng.int rng params.pop_size in
        if fitness_order fit.(c) fit.(!w) < 0 then w := c
      done;
      pop.(!w)
    in
    let next = Array.make params.pop_size [||] in
    (* elitism *)
    for e = 0 to params.elite - 1 do
      next.(e) <- Array.copy pop.(idx.(e))
    done;
    for i = params.elite to params.pop_size - 1 do
      let a = tournament () and b = tournament () in
      let child =
        if Rng.float rng 1.0 < params.crossover_p then
          Array.init k (fun g -> if Rng.bool rng then a.(g) else b.(g))
        else Array.copy a
      in
      Array.iteri
        (fun g _ -> if Rng.float rng 1.0 < params.mutation_p then child.(g) <- Rng.choice rng p.levels.(g))
        child;
      next.(i) <- child
    done;
    Array.blit next 0 pop 0 params.pop_size;
    Array.iteri (fun i g -> fit.(i) <- fitness g) pop;
    update_best ();
    Emc_obs.Metrics.incr m_generations;
    Emc_obs.Metrics.add m_evaluations params.pop_size;
    trace_generation !gen !best_f fit;
    if !best_f < prev_best -. 1e-12 then stagnant := 0 else incr stagnant
  done;
  (!best, !best_f)

(** Pure random search baseline (same budget accounting as the GA: every
    fitness call counts into [ga.evaluations]). *)
let random_search rng (p : problem) ~fitness ~evals =
  let fitness g =
    Emc_obs.Metrics.incr m_evaluations;
    fitness g
  in
  let best = ref (random_genome rng p) in
  let best_f = ref (fitness !best) in
  for _ = 2 to evals do
    let g = random_genome rng p in
    let f = fitness g in
    if f < !best_f then begin
      best_f := f;
      best := g
    end
  done;
  (!best, !best_f)

(** First-improvement hill climbing over per-gene level moves (every fitness
    call counts into [ga.evaluations], as for the GA). *)
let hill_climb rng (p : problem) ~fitness ~restarts =
  let fitness g =
    Emc_obs.Metrics.incr m_evaluations;
    fitness g
  in
  let k = Array.length p.levels in
  let best = ref (random_genome rng p) and best_f = ref infinity in
  for _ = 1 to restarts do
    let cur = ref (random_genome rng p) in
    let cur_f = ref (fitness !cur) in
    let improved = ref true in
    while !improved do
      improved := false;
      for g = 0 to k - 1 do
        Array.iter
          (fun lv ->
            if lv <> !cur.(g) then begin
              let cand = Array.copy !cur in
              cand.(g) <- lv;
              let f = fitness cand in
              if f < !cur_f then begin
                cur := cand;
                cur_f := f;
                improved := true
              end
            end)
          p.levels.(g)
      done
    done;
    if !cur_f < !best_f then begin
      best := !cur;
      best_f := !cur_f
    end
  done;
  (!best, !best_f)
