(** NSGA-II-style multi-objective search (Deb et al. 2002) over the same
    coded design-point grids as {!Ga}.

    All objectives are {e minimized}. A NaN objective value sorts worse
    than any number — the {!Ga} fitness convention — so design points with
    broken predictions can neither dominate real points nor survive
    environmental selection when finite alternatives exist.

    Determinism contract: for a fixed generator state, problem and
    parameters, {!optimize} returns the same front in the same order,
    independent of evaluation-order accidents — fronts and truncation
    break every tie by population index, and the returned front is
    deduplicated and sorted by objective values. *)

type point = { genome : float array; objectives : float array }

val obj_order : float -> float -> int
(** Minimizing order on one objective value, NaN last (worst). *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective (under
    {!obj_order}) and strictly better on at least one. *)

val is_front : float array array -> bool
(** No member dominates another — the check used by tests and the CLI to
    verify a returned front. *)

val non_dominated_sort : float array array -> int array list
(** Fronts of indices into the argument, best (non-dominated) first;
    indices within a front are ascending. Every index appears in exactly
    one front; empty input gives []. *)

val crowding_distance : float array array -> int array -> float array
(** Crowding distance of each member of the given front (parallel to it):
    boundary points along any objective get [infinity]; interior points
    the sum over objectives of the normalized gap between neighbours.
    Objectives with a zero or non-finite range contribute nothing. *)

val optimize :
  ?params:Ga.params ->
  Emc_util.Rng.t ->
  Ga.problem ->
  fitness:(float array -> float array) ->
  point array
(** Evolve [params.pop_size] genomes for [params.generations] generations
    (binary crowded-comparison tournaments of size [params.tournament],
    uniform crossover with probability [crossover_p], per-gene mutation
    with probability [mutation_p], elitist parent+offspring truncation).
    [params.elite] and [params.stagnation_limit] are ignored: the
    environmental selection is already elitist, and a fixed generation
    count keeps runs reproducible across parameter sets. Returns the
    final population's first front, deduplicated by genome and sorted by
    objectives. [fitness] must return one array per genome with a
    consistent length (the number of objectives).

    Counters: [pareto.generations], [pareto.evaluations]. *)
