open Emc_util

(** NSGA-II-style multi-objective search over coded design-point grids
    (Deb et al. 2002): fast non-dominated sort + crowding distance, with
    the same genome representation, tournament/crossover/mutation operators
    and determinism contract as {!Ga}. All objectives are {e minimized};
    a NaN objective value is worse than any number (the {!Ga} convention),
    so broken model predictions can neither dominate nor crowd out real
    points. *)

type point = { genome : float array; objectives : float array }

let m_generations = Emc_obs.Metrics.counter "pareto.generations"
let m_evaluations = Emc_obs.Metrics.counter "pareto.evaluations"

(* Minimizing order over one objective value, NaN sorted last (same
   reasoning as Ga.fitness_order). *)
let obj_order a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare a b

let dominates a b =
  let le = ref true and lt = ref false in
  Array.iteri
    (fun i ai ->
      let c = obj_order ai b.(i) in
      if c > 0 then le := false;
      if c < 0 then lt := true)
    a;
  !le && !lt

let is_front objs =
  let n = Array.length objs in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && dominates objs.(i) objs.(j) then ok := false
    done
  done;
  !ok

(* Fast non-dominated sort: fronts of indices, best first; indices inside a
   front stay in ascending order, so the output is deterministic. *)
let non_dominated_sort (objs : float array array) : int array list =
  let n = Array.length objs in
  let dominated = Array.make n [] (* j dominated by i, reversed *) in
  let dom_count = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && dominates objs.(i) objs.(j) then begin
        dominated.(i) <- j :: dominated.(i);
        dom_count.(j) <- dom_count.(j) + 1
      end
    done
  done;
  let rec fronts current acc =
    if current = [] then List.rev acc
    else begin
      let next = ref [] in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              dom_count.(j) <- dom_count.(j) - 1;
              if dom_count.(j) = 0 then next := j :: !next)
            (List.rev dominated.(i)))
        current;
      fronts (List.sort compare !next) (Array.of_list current :: acc)
    end
  in
  let first = List.filter (fun i -> dom_count.(i) = 0) (List.init n Fun.id) in
  fronts first []

(* Crowding distance of each member of [front] (parallel to [front]):
   boundary points get infinity, interior points the sum of normalized
   gaps to their neighbours along each objective. Objectives with a
   degenerate (zero or non-finite) range contribute nothing. *)
let crowding_distance (objs : float array array) (front : int array) : float array =
  let k = Array.length front in
  let dist = Array.make k 0.0 in
  if k > 0 then begin
    let m = Array.length objs.(front.(0)) in
    for o = 0 to m - 1 do
      let order = Array.init k Fun.id in
      Array.sort
        (fun a b ->
          let c = obj_order objs.(front.(a)).(o) objs.(front.(b)).(o) in
          if c <> 0 then c else compare front.(a) front.(b))
        order;
      dist.(order.(0)) <- infinity;
      dist.(order.(k - 1)) <- infinity;
      let lo = objs.(front.(order.(0))).(o) and hi = objs.(front.(order.(k - 1))).(o) in
      let range = hi -. lo in
      if Float.is_finite range && range > 0.0 then
        for p = 1 to k - 2 do
          let prev = objs.(front.(order.(p - 1))).(o)
          and next = objs.(front.(order.(p + 1))).(o) in
          if Float.is_finite prev && Float.is_finite next then
            dist.(order.(p)) <- dist.(order.(p)) +. ((next -. prev) /. range)
        done
    done
  end;
  dist

(* The final front as returned to callers: deduplicated by genome and
   sorted by objectives (then genome) so the result is a deterministic
   function of the search, independent of population order. *)
let finalize pop objs front =
  let arr_order a b =
    let n = Stdlib.min (Array.length a) (Array.length b) in
    let rec go i =
      if i = n then compare (Array.length a) (Array.length b)
      else
        let c = obj_order a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let pts = Array.to_list (Array.map (fun i -> { genome = pop.(i); objectives = objs.(i) }) front) in
  let pts =
    List.sort_uniq
      (fun a b ->
        let c = arr_order a.objectives b.objectives in
        if c <> 0 then c else arr_order a.genome b.genome)
      pts
  in
  let uniq =
    List.filteri
      (fun i p ->
        i = 0 || arr_order p.genome (List.nth pts (i - 1)).genome <> 0
        || arr_order p.objectives (List.nth pts (i - 1)).objectives <> 0)
      pts
  in
  Array.of_list (List.map (fun p -> { p with genome = Array.copy p.genome }) uniq)

let optimize ?(params = Ga.default_params) rng (p : Ga.problem) ~fitness : point array =
  Emc_obs.Trace.with_span ~cat:"search"
    ~args:(fun () ->
      [ ("pop_size", Emc_obs.Json.Int params.Ga.pop_size);
        ("generations", Emc_obs.Json.Int params.Ga.generations) ])
    "pareto.optimize"
  @@ fun () ->
  let k = Array.length p.Ga.levels in
  let pop_size = params.Ga.pop_size in
  let pop = ref (Array.init pop_size (fun _ -> Ga.random_genome rng p)) in
  let objs = ref (Array.map fitness !pop) in
  Emc_obs.Metrics.add m_evaluations pop_size;
  (* per-individual rank and crowding over the current population *)
  let rank_and_crowd objs =
    let n = Array.length objs in
    let rank = Array.make n 0 and crowd = Array.make n 0.0 in
    let fronts = non_dominated_sort objs in
    List.iteri
      (fun fi front ->
        let cd = crowding_distance objs front in
        Array.iteri
          (fun pos i ->
            rank.(i) <- fi;
            crowd.(i) <- cd.(pos))
          front)
      fronts;
    (fronts, rank, crowd)
  in
  for _ = 1 to params.Ga.generations do
    let _, rank, crowd = rank_and_crowd !objs in
    (* crowded-comparison tournament: lower rank wins, ties go to the less
       crowded (larger distance) individual, further ties to the incumbent *)
    let better c w =
      rank.(c) < rank.(w) || (rank.(c) = rank.(w) && crowd.(c) > crowd.(w))
    in
    let tournament () =
      let w = ref (Rng.int rng pop_size) in
      for _ = 2 to params.Ga.tournament do
        let c = Rng.int rng pop_size in
        if better c !w then w := c
      done;
      (!pop).(!w)
    in
    let offspring =
      Array.init pop_size (fun _ ->
          let a = tournament () and b = tournament () in
          let child =
            if Rng.float rng 1.0 < params.Ga.crossover_p then
              Array.init k (fun g -> if Rng.bool rng then a.(g) else b.(g))
            else Array.copy a
          in
          Array.iteri
            (fun g _ ->
              if Rng.float rng 1.0 < params.Ga.mutation_p then
                child.(g) <- Rng.choice rng p.Ga.levels.(g))
            child;
          child)
    in
    let off_objs = Array.map fitness offspring in
    Emc_obs.Metrics.add m_evaluations pop_size;
    (* environmental selection over parents + offspring (elitist) *)
    let all = Array.append !pop offspring in
    let all_objs = Array.append !objs off_objs in
    let fronts = non_dominated_sort all_objs in
    let next = Array.make pop_size [||] and next_objs = Array.make pop_size [||] in
    let filled = ref 0 in
    List.iter
      (fun front ->
        if !filled < pop_size then begin
          let take =
            if !filled + Array.length front <= pop_size then front
            else begin
              let cd = crowding_distance all_objs front in
              let order = Array.init (Array.length front) Fun.id in
              Array.sort
                (fun a b ->
                  let c = Float.compare cd.(b) cd.(a) (* crowding descending *) in
                  if c <> 0 then c else compare front.(a) front.(b))
                order;
              Array.map (fun pos -> front.(pos)) (Array.sub order 0 (pop_size - !filled))
            end
          in
          Array.iter
            (fun i ->
              next.(!filled) <- all.(i);
              next_objs.(!filled) <- all_objs.(i);
              incr filled)
            take
        end)
      fronts;
    pop := next;
    objs := next_objs;
    Emc_obs.Metrics.incr m_generations
  done;
  match non_dominated_sort !objs with
  | [] -> [||]
  | front :: _ -> finalize !pop !objs front
