(** Model interpretation in the paper's Table-4 form: "the coefficient of a
    variable/interaction is one-half the change in the response caused by
    changing the variable(s) from their low to high value", evaluated at the
    center of the coded space. Model-agnostic — works for linear, MARS and
    RBF predictors alike, so their effect listings are directly
    comparable. *)

val constant : (float array -> float) -> dims:int -> float
(** Prediction at the center of the space (all variables at coded 0). *)

val main_effect : (float array -> float) -> dims:int -> int -> float
(** [(f(+e_i) − f(−e_i)) / 2] with all other variables at 0. *)

val interaction_effect : (float array -> float) -> dims:int -> int -> int -> float
(** [(f(++) − f(+−) − f(−+) + f(−−)) / 4] for variables [i] and [j]. *)

val main_effects : (float array -> float) -> dims:int -> float array

val interaction_effects : (float array -> float) -> dims:int -> (int * int * float) list
(** All pairs [(i, j, effect)] with [i < j]. *)

val top_effects :
  ?threshold:float ->
  (float array -> float) ->
  dims:int ->
  names:string array ->
  (string * float) list
(** Main effects and two-factor interactions merged, labeled, filtered by
    absolute magnitude and sorted strongest-first — a Table-4 column. *)
