(** Model interpretation in the paper's Table-4 form: "the coefficient of a
    variable/interaction is one-half the change in the response caused by
    changing the variable(s) from their low to high value".

    Evaluated at the center of the coded design space (all other variables
    at 0), which matches the simplified-MARS-form reading of the paper:

    - main effect of [i]: [(f(e_i) − f(−e_i)) / 2]
    - interaction of [i,j]: [(f(++) − f(+−) − f(−+) + f(−−)) / 4]

    Works for any model, so linear, MARS and RBF effects are all
    comparable. *)

let base k = Array.make k 0.0

let with_set x pairs =
  let x' = Array.copy x in
  List.iter (fun (i, v) -> x'.(i) <- v) pairs;
  x'

let main_effect predict ~dims i =
  let z = base dims in
  (predict (with_set z [ (i, 1.0) ]) -. predict (with_set z [ (i, -1.0) ])) /. 2.0

let interaction_effect predict ~dims i j =
  let z = base dims in
  let f a b = predict (with_set z [ (i, a); (j, b) ]) in
  (f 1.0 1.0 -. f 1.0 (-1.0) -. f (-1.0) 1.0 +. f (-1.0) (-1.0)) /. 4.0

let constant predict ~dims = predict (base dims)

let main_effects predict ~dims = Array.init dims (main_effect predict ~dims)

(** All two-factor interaction effects, as [(i, j, effect)] with [i < j]. *)
let interaction_effects predict ~dims =
  let out = ref [] in
  for i = 0 to dims - 1 do
    for j = i + 1 to dims - 1 do
      out := (i, j, interaction_effect predict ~dims i j) :: !out
    done
  done;
  List.rev !out

(** The strongest effects sorted by magnitude: [(label, value)], mixing main
    effects and interactions, as in the paper's Table 4. *)
let top_effects ?(threshold = 0.0) predict ~dims ~names =
  let mains =
    Array.to_list (Array.mapi (fun i e -> (names.(i), e)) (main_effects predict ~dims))
  in
  let inters =
    List.map (fun (i, j, e) -> (names.(i) ^ " * " ^ names.(j), e)) (interaction_effects predict ~dims)
  in
  List.filter (fun (_, e) -> Float.abs e > threshold) (mains @ inters)
  |> List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
