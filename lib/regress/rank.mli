(** Pairwise ranking model family: a linear scorer over the {!Repr.expand}
    coded-feature row, trained by stochastic gradient ascent on the
    pairwise logistic (RankNet) likelihood. The fitted model's [predict]
    returns a {e unitless} score — higher means predicted-worse response —
    so it plugs into the minimizing search and the rank metrics unchanged,
    but its outputs are not cycles. *)

val technique : string
(** ["rank-pairwise"], the technique string carried by fitted models and
    artifacts. *)

val fit :
  ?interactions:bool ->
  ?epochs:int ->
  ?lr:float ->
  ?pairs_per_epoch:int ->
  ?names:string array ->
  rng:Emc_util.Rng.t ->
  Dataset.t ->
  Model.t
(** Defaults: [interactions = true] (the 351-feature expansion on the
    25-parameter space), [epochs = 60], [lr = 0.05], [pairs_per_epoch =
    4 × samples]. Pairs with a NaN or tied response are skipped — they
    carry no order information. Deterministic for a given [rng] state; the
    returned model carries a serializable {!Repr.Rank} repr, so it can be
    saved, loaded and served like the regression families. *)
