(** Pairwise ranking model (RankNet-style logistic, cf. the HW-AutoTuning
    pairing of a regression model with a ranking model).

    The search consumer (paper §6.3) minimizes a predicted response, so all
    it needs is the {e order} of design points. This learner optimizes that
    directly: a linear scorer [s(x) = beta . expand x] over the same coded
    feature expansion as {!Linear}, trained by stochastic gradient ascent on
    the pairwise logistic likelihood — for every sampled pair with
    [y_i < y_j] the model is pushed toward [s(x_i) < s(x_j)]. Scores are
    unitless (higher score = predicted worse response); only comparisons
    between them mean anything.

    The fit is deterministic for a given generator state: pair sampling is
    the only stochastic component and it threads [rng] explicitly. *)

let technique = "rank-pairwise"

let dot beta row =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. beta.(i))) row;
  !acc

let fit ?(interactions = true) ?(epochs = 60) ?(lr = 0.05) ?pairs_per_epoch ?(names = [||])
    ~rng (d : Dataset.t) : Model.t =
  let n = Dataset.size d in
  let k = Dataset.dims d in
  let names = if Array.length names = k then names else Array.init k (Printf.sprintf "x%d") in
  let rows = Array.map (Repr.expand ~interactions) d.Dataset.x in
  let p = Repr.n_features ~interactions k in
  let pairs_per_epoch = match pairs_per_epoch with Some m -> m | None -> 4 * n in
  let beta = Array.make p 0.0 in
  let y = d.Dataset.y in
  for _ = 1 to epochs do
    for _ = 1 to pairs_per_epoch do
      let i = Emc_util.Rng.int rng n and j = Emc_util.Rng.int rng n in
      (* NaN responses carry no order information; such pairs are skipped
         (the draws still consume rng state, keeping the stream aligned) *)
      let c = Metrics.nan_last y.(i) y.(j) in
      if i <> j && (not (Float.is_nan y.(i))) && (not (Float.is_nan y.(j))) && c <> 0 then begin
        let lo, hi = if c < 0 then (i, j) else (j, i) in
        let s = dot beta rows.(hi) -. dot beta rows.(lo) in
        let g = 1.0 /. (1.0 +. exp s) in
        let step = lr *. g in
        Array.iteri
          (fun f _ -> beta.(f) <- beta.(f) +. (step *. (rows.(hi).(f) -. rows.(lo).(f))))
          beta
      end
    done
  done;
  let fnames = Linear.feature_names ~interactions names in
  let terms =
    Array.to_list (Array.mapi (fun i b -> (fnames.(i), b)) beta)
    |> List.filter (fun (_, b) -> Float.abs b > 1e-12)
  in
  let repr = Repr.Rank { interactions; beta } in
  {
    Model.technique;
    predict = Repr.eval repr;
    n_params = p;
    terms;
    repr = Some repr;
  }
