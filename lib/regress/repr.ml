module Json = Emc_obs.Json

(** Serializable model representations. See repr.mli — the evaluation
    functions here are the one true implementation shared by the fitting
    code and by loaded artifacts, which is what makes save → load → eval
    bit-identical to the freshly fitted closure. *)

type factor = { dim : int; knot : float; positive : bool }

type kernel = Gaussian | Multiquadric | InverseMultiquadric

type t =
  | Linear of { interactions : bool; beta : float array; mu : float; sd : float }
  | Mars of { bases : factor list array; weights : float array; mu : float; sd : float }
  | Rbf of {
      kernel : kernel;
      centers : float array array;
      radii : float array;
      weights : float array;
      mu : float;
      sd : float;
    }
  | Rank of { interactions : bool; beta : float array }
  | Clamp of { lo : float; hi : float; body : t }

let rec family = function
  | Linear _ -> "linear"
  | Mars _ -> "mars"
  | Rbf _ -> "rbf"
  | Rank _ -> "rank"
  | Clamp { body; _ } -> family body

let kernel_name = function
  | Gaussian -> "gaussian"
  | Multiquadric -> "multiquadric"
  | InverseMultiquadric -> "inverse-multiquadric"

let kernel_of_name = function
  | "gaussian" -> Some Gaussian
  | "multiquadric" -> Some Multiquadric
  | "inverse-multiquadric" -> Some InverseMultiquadric
  | _ -> None

(* ---------------- evaluation ---------------- *)

let n_features ~interactions k = if interactions then 1 + k + (k * (k + 1) / 2) else 1 + k

let expand ~interactions x =
  let k = Array.length x in
  let out = Array.make (n_features ~interactions k) 1.0 in
  Array.blit x 0 out 1 k;
  if interactions then begin
    let idx = ref (1 + k) in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        out.(!idx) <- x.(i) *. x.(j);
        incr idx
      done
    done
  end;
  out

let eval_basis (b : factor list) x =
  List.fold_left
    (fun acc f ->
      let v = if f.positive then x.(f.dim) -. f.knot else f.knot -. x.(f.dim) in
      if v <= 0.0 then 0.0 else acc *. v)
    1.0 b

let eval_kernel kernel ~r d2 =
  match kernel with
  | Gaussian -> exp (-.d2 /. (2.0 *. r *. r))
  | Multiquadric -> sqrt ((d2 /. (r *. r)) +. 1.0)
  | InverseMultiquadric -> 1.0 /. sqrt ((d2 /. (r *. r)) +. 1.0)

let dist2 a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i ai ->
      let d = ai -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  !acc

let rec eval r x =
  match r with
  | Linear { interactions; beta; mu; sd } ->
      let f = expand ~interactions x in
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := !acc +. (v *. beta.(i))) f;
      (!acc *. sd) +. mu
  | Mars { bases; weights; mu; sd } ->
      let acc = ref 0.0 in
      Array.iteri (fun i b -> acc := !acc +. (weights.(i) *. eval_basis b x)) bases;
      (!acc *. sd) +. mu
  | Rbf { kernel; centers; radii; weights; mu; sd } ->
      let acc = ref weights.(0) in
      Array.iteri
        (fun j c -> acc := !acc +. (weights.(j + 1) *. eval_kernel kernel ~r:radii.(j) (dist2 x c)))
        centers;
      (!acc *. sd) +. mu
  | Rank { interactions; beta } ->
      (* a unitless ranking score over the same feature expansion as
         Linear, without response standardization: only order matters *)
      let f = expand ~interactions x in
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := !acc +. (v *. beta.(i))) f;
      !acc
  | Clamp { lo; hi; body } -> Float.max lo (Float.min hi (eval body x))

(* Like [expand] but into a caller-owned array: the serving hot path
   evaluates the same representation for every request and must not
   allocate a fresh feature vector per point. *)
let expand_into ~interactions x out =
  let k = Array.length x in
  out.(0) <- 1.0;
  Array.blit x 0 out 1 k;
  if interactions then begin
    let idx = ref (1 + k) in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        out.(!idx) <- x.(i) *. x.(j);
        incr idx
      done
    done
  end

(* A compiled evaluator: the representation dispatch and the feature
   scratch allocation are hoisted out of the per-point call. The
   arithmetic is the same operations in the same order as [eval], so
   results are bit-identical; the scratch is reused across calls, so a
   compiled closure must not be shared between concurrent evaluators
   (each pre-forked server worker compiles its own). *)
let rec compile r =
  match r with
  | Linear { interactions; beta; mu; sd } ->
      let scratch = Array.make (Array.length beta) 1.0 in
      fun x ->
        let nf = n_features ~interactions (Array.length x) in
        if nf > Array.length scratch then
          invalid_arg "Repr.compile: point arity exceeds the fitted dimensionality";
        expand_into ~interactions x scratch;
        let acc = ref 0.0 in
        for i = 0 to nf - 1 do
          acc := !acc +. (scratch.(i) *. beta.(i))
        done;
        (!acc *. sd) +. mu
  | Mars { bases; weights; mu; sd } ->
      fun x ->
        let acc = ref 0.0 in
        Array.iteri (fun i b -> acc := !acc +. (weights.(i) *. eval_basis b x)) bases;
        (!acc *. sd) +. mu
  | Rbf { kernel; centers; radii; weights; mu; sd } ->
      fun x ->
        let acc = ref weights.(0) in
        Array.iteri
          (fun j c ->
            acc := !acc +. (weights.(j + 1) *. eval_kernel kernel ~r:radii.(j) (dist2 x c)))
          centers;
        (!acc *. sd) +. mu
  | Rank { interactions; beta } ->
      let scratch = Array.make (Array.length beta) 1.0 in
      fun x ->
        let nf = n_features ~interactions (Array.length x) in
        if nf > Array.length scratch then
          invalid_arg "Repr.compile: point arity exceeds the fitted dimensionality";
        expand_into ~interactions x scratch;
        let acc = ref 0.0 in
        for i = 0 to nf - 1 do
          acc := !acc +. (scratch.(i) *. beta.(i))
        done;
        !acc
  | Clamp { lo; hi; body } ->
      let f = compile body in
      fun x -> Float.max lo (Float.min hi (f x))

(* ---------------- JSON ---------------- *)

(* Floats travel as hex literals (like the measurement cache): decimal JSON
   numbers would round-trip too at 17 digits, but hex makes the exactness
   contract explicit and survives any printer/parser in between. *)
let jfloat v = Json.Str (Printf.sprintf "%h" v)

let jfloats a = Json.List (Array.to_list (Array.map jfloat a))

let factor_to_json f =
  Json.Obj [ ("dim", Json.Int f.dim); ("knot", jfloat f.knot); ("positive", Json.Bool f.positive) ]

let rec to_json = function
  | Linear { interactions; beta; mu; sd } ->
      Json.Obj
        [ ("family", Json.Str "linear"); ("interactions", Json.Bool interactions);
          ("beta", jfloats beta); ("mu", jfloat mu); ("sd", jfloat sd) ]
  | Mars { bases; weights; mu; sd } ->
      Json.Obj
        [ ("family", Json.Str "mars");
          ("bases",
           Json.List
             (Array.to_list (Array.map (fun b -> Json.List (List.map factor_to_json b)) bases)));
          ("weights", jfloats weights); ("mu", jfloat mu); ("sd", jfloat sd) ]
  | Rbf { kernel; centers; radii; weights; mu; sd } ->
      Json.Obj
        [ ("family", Json.Str "rbf"); ("kernel", Json.Str (kernel_name kernel));
          ("centers", Json.List (Array.to_list (Array.map jfloats centers)));
          ("radii", jfloats radii); ("weights", jfloats weights); ("mu", jfloat mu);
          ("sd", jfloat sd) ]
  | Rank { interactions; beta } ->
      Json.Obj
        [ ("family", Json.Str "rank"); ("interactions", Json.Bool interactions);
          ("beta", jfloats beta) ]
  | Clamp { lo; hi; body } ->
      Json.Obj
        [ ("family", Json.Str "clamp"); ("lo", jfloat lo); ("hi", jfloat hi);
          ("body", to_json body) ]

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "malformed float literal %S" s))
  | _ -> Error "expected a float"

let as_bool = function Json.Bool b -> Ok b | _ -> Error "expected a bool"

let as_int = function Json.Int i -> Ok i | _ -> Error "expected an int"

let as_str = function Json.Str s -> Ok s | _ -> Error "expected a string"

let as_list = function Json.List l -> Ok l | _ -> Error "expected a list"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let ffield name j =
  let* v = field name j in
  as_float v

let float_array name j =
  let* v = field name j in
  let* l = as_list v in
  let* fs = map_result as_float l in
  Ok (Array.of_list fs)

let factor_of_json j =
  let* dim = Result.bind (field "dim" j) as_int in
  let* knot = ffield "knot" j in
  let* positive = Result.bind (field "positive" j) as_bool in
  if dim < 0 then Error "negative basis dimension" else Ok { dim; knot; positive }

let rec of_json j =
  let* fam = Result.bind (field "family" j) as_str in
  match fam with
  | "linear" ->
      let* interactions = Result.bind (field "interactions" j) as_bool in
      let* beta = float_array "beta" j in
      let* mu = ffield "mu" j in
      let* sd = ffield "sd" j in
      if Array.length beta = 0 then Error "linear model with no coefficients"
      else Ok (Linear { interactions; beta; mu; sd })
  | "mars" ->
      let* bl = Result.bind (field "bases" j) as_list in
      let* bases =
        map_result (fun b -> Result.bind (as_list b) (map_result factor_of_json)) bl
      in
      let bases = Array.of_list bases in
      let* weights = float_array "weights" j in
      let* mu = ffield "mu" j in
      let* sd = ffield "sd" j in
      if Array.length weights <> Array.length bases then
        Error
          (Printf.sprintf "mars: %d weights for %d basis functions" (Array.length weights)
             (Array.length bases))
      else Ok (Mars { bases; weights; mu; sd })
  | "rbf" ->
      let* kname = Result.bind (field "kernel" j) as_str in
      let* kernel =
        match kernel_of_name kname with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown RBF kernel %S" kname)
      in
      let* cl = Result.bind (field "centers" j) as_list in
      let* centers =
        map_result (fun c -> Result.map Array.of_list (Result.bind (as_list c) (map_result as_float))) cl
      in
      let centers = Array.of_list centers in
      let* radii = float_array "radii" j in
      let* weights = float_array "weights" j in
      let* mu = ffield "mu" j in
      let* sd = ffield "sd" j in
      if Array.length radii <> Array.length centers then Error "rbf: radii/centers mismatch"
      else if Array.length weights <> Array.length centers + 1 then
        Error
          (Printf.sprintf "rbf: %d weights for %d centers (want centers + bias)"
             (Array.length weights) (Array.length centers))
      else Ok (Rbf { kernel; centers; radii; weights; mu; sd })
  | "rank" ->
      let* interactions = Result.bind (field "interactions" j) as_bool in
      let* beta = float_array "beta" j in
      if Array.length beta = 0 then Error "rank model with no coefficients"
      else Ok (Rank { interactions; beta })
  | "clamp" ->
      let* lo = ffield "lo" j in
      let* hi = ffield "hi" j in
      let* body = Result.bind (field "body" j) of_json in
      Ok (Clamp { lo; hi; body })
  | other -> Error (Printf.sprintf "unknown model family %S" other)
