(** Radial basis function networks with regression-tree center selection
    (paper §4.3; Orr et al., the paper's reference [12]).

    A regression tree partitions the design space into regions of roughly
    uniform response; the training point nearest each leaf centroid becomes
    an RBF center with a radius set by the leaf's spatial spread; output
    weights are ridge-regularized least squares; the network size is chosen
    by BIC (§4.4). The paper's printed "multiquad" kernel formula is
    imaginary for distant inputs — an evident typo for the standard
    multiquadric √(d²/r² + 1), which is the default here (it was the paper's
    most accurate kernel). *)

type kernel = Repr.kernel = Gaussian | Multiquadric | InverseMultiquadric

val kernel_name : kernel -> string

val eval_kernel : kernel -> r:float -> float -> float
(** [eval_kernel k ~r d2] evaluates the kernel at squared distance [d2] with
    radius [r]; all kernels are 1 at the center. *)

val default_size_grid : int -> int list
(** Candidate center counts tried by BIC for a given training-set size. *)

val fit : ?kernel:kernel -> ?size_grid:int list -> Dataset.t -> Model.t
(** The returned model's [terms] list the bias and every center/weight pair
    (weights in response units), and its [repr] serializes the full network
    (centers, radii, weights, response transform). *)
