(** Linear regression with two-factor interactions (paper §4.1,
    Equation 2): [y = β0 + Σ βi xi + Σ Σ βij xi xj], fitted by
    ridge-stabilized least squares on the standardized response. With the
    paper's 25 predictors the interaction model has 351 columns, so the
    400-point designs keep it overdetermined; on smaller designs the tiny
    ridge keeps it well-posed instead of exploding. *)

val n_features : interactions:bool -> int -> int

val expand : interactions:bool -> float array -> float array
(** Model row: intercept, main effects, and (optionally) all products
    [xi*xj] with [i <= j]. *)

val feature_names : interactions:bool -> string array -> string array

val fit : ?interactions:bool -> ?names:string array -> Dataset.t -> Model.t
(** [interactions] defaults to [true] (the paper's model). The returned
    model's [terms] carry the coefficients in response units. *)
