open Emc_linalg

(** Multivariate Adaptive Regression Splines (Friedman '91; paper §4.2).

    Basis functions are products of hinge functions
    [max(0, ±(x_d − t))], up to degree [max_degree] (2, matching the paper's
    two-factor-interaction scope). The forward pass greedily adds the
    reflected pair that most reduces training SSE, considering every current
    basis as a parent, every unused dimension, and knots at distinct data
    values; the backward pass prunes terms by GCV (the criterion polspline
    uses, §5 of the paper) and the best-GCV subset is refit and returned. *)

type factor = Repr.factor = { dim : int; knot : float; positive : bool }

type basis = factor list (* empty = intercept *)

(* the single hinge-product implementation, shared with artifact eval *)
let eval_basis (b : basis) x = Repr.eval_basis b x

let basis_name names (b : basis) =
  match b with
  | [] -> "const"
  | fs ->
      String.concat " * "
        (List.map
           (fun f ->
             let n = names.(f.dim) in
             if f.positive then Printf.sprintf "h(%s-%.2f)" n f.knot
             else Printf.sprintf "h(%.2f-%s)" f.knot n)
           fs)

let ridge = 1e-9

(* Solve least squares given columns; returns (weights, sse). *)
let solve_sse (cols : float array array) (y : float array) =
  let m = Array.length cols in
  let n = Array.length y in
  let g = Mat.init m m (fun i j ->
      let acc = ref 0.0 in
      for r = 0 to n - 1 do
        acc := !acc +. (cols.(i).(r) *. cols.(j).(r))
      done;
      !acc)
  in
  for i = 0 to m - 1 do
    Mat.set g i i (Mat.get g i i +. ridge)
  done;
  let rhs =
    Array.init m (fun i ->
        let acc = ref 0.0 in
        for r = 0 to n - 1 do
          acc := !acc +. (cols.(i).(r) *. y.(r))
        done;
        !acc)
  in
  match (try Some (Mat.solve_spd g rhs) with Failure _ -> None) with
  | None -> (Array.make m 0.0, infinity)
  | Some w ->
      let sse = ref 0.0 in
      for r = 0 to n - 1 do
        let p = ref 0.0 in
        for i = 0 to m - 1 do
          p := !p +. (w.(i) *. cols.(i).(r))
        done;
        let e = !p -. y.(r) in
        sse := !sse +. (e *. e)
      done;
      (w, !sse)

let effective_params m = float_of_int m +. (3.0 *. float_of_int (m - 1))

let knot_candidates ?(max_knots = 5) (d : Dataset.t) dim =
  let vals = List.sort_uniq compare (Array.to_list (Array.map (fun x -> x.(dim)) d.Dataset.x)) in
  (* drop the maximum (its positive hinge column would be all zero) *)
  let vals = match List.rev vals with [] | [ _ ] -> [] | _ :: rest -> List.rev rest in
  let m = List.length vals in
  if m <= max_knots then vals
  else
    let stride = float_of_int m /. float_of_int max_knots in
    List.filteri (fun i _ -> int_of_float (Float.rem (float_of_int i) stride) = 0) vals
    |> fun l -> if List.length l > max_knots then List.filteri (fun i _ -> i < max_knots) l else l

let fit ?(max_terms = 23) ?(max_degree = 2) ?(names = [||]) (d : Dataset.t) : Model.t =
  let d_std, mu, sd = Dataset.standardize_stats d in
  let n = Dataset.size d_std in
  let k = Dataset.dims d_std in
  let names = if Array.length names = k then names else Array.init k (Printf.sprintf "x%d") in
  let y = d_std.Dataset.y in
  let col_of b = Array.map (eval_basis b) d_std.Dataset.x in
  let bases = ref [ ([] : basis) ] in
  let cols = ref [ col_of [] ] in
  let knots = Array.init k (fun dim -> knot_candidates d_std dim) in
  (* ---------- forward pass ---------- *)
  let current_sse = ref (snd (solve_sse (Array.of_list !cols) y)) in
  let continue_ = ref true in
  while !continue_ && List.length !bases + 2 <= max_terms do
    let best = ref None in
    List.iteri
      (fun pi parent ->
        if List.length parent < max_degree then
          let parent_col = List.nth !cols pi in
          for dim = 0 to k - 1 do
            if not (List.exists (fun f -> f.dim = dim) parent) then
              List.iter
                (fun knot ->
                  let c1 = Array.mapi (fun r pv ->
                      let v = d_std.Dataset.x.(r).(dim) -. knot in
                      if v > 0.0 then pv *. v else 0.0) parent_col
                  in
                  let c2 = Array.mapi (fun r pv ->
                      let v = knot -. d_std.Dataset.x.(r).(dim) in
                      if v > 0.0 then pv *. v else 0.0) parent_col
                  in
                  let ext = Array.of_list (!cols @ [ c1; c2 ]) in
                  let _, sse = solve_sse ext y in
                  match !best with
                  | Some (s, _, _, _, _) when s <= sse -> ()
                  | _ -> best := Some (sse, parent, dim, knot, (c1, c2)))
                knots.(dim)
          done)
      !bases;
    match !best with
    | Some (sse, parent, dim, knot, (c1, c2)) when sse < !current_sse *. 0.999 ->
        bases := !bases @ [ { dim; knot; positive = true } :: parent;
                            { dim; knot; positive = false } :: parent ];
        cols := !cols @ [ c1; c2 ];
        current_sse := sse
    | _ -> continue_ := false
  done;
  (* ---------- backward pass ---------- *)
  let eval_subset subset =
    let cs = Array.of_list (List.filteri (fun i _ -> List.mem i subset) !cols) in
    let _, sse = solve_sse cs y in
    Metrics.gcv ~samples:n ~effective_params:(effective_params (Array.length cs)) ~sse
  in
  let all_idx = List.init (List.length !bases) Fun.id in
  let best_subset = ref all_idx in
  let best_gcv = ref (eval_subset all_idx) in
  let cur = ref all_idx in
  while List.length !cur > 1 do
    (* try removing each non-intercept index; keep the best resulting GCV *)
    let cands =
      List.filter_map
        (fun drop -> if drop = 0 then None else Some (drop, eval_subset (List.filter (( <> ) drop) !cur)))
        !cur
    in
    match cands with
    | [] -> cur := [ 0 ]
    | _ ->
        let drop, g = List.fold_left (fun (bd, bg) (d', g') -> if g' < bg then (d', g') else (bd, bg))
            (fst (List.hd cands), snd (List.hd cands)) (List.tl cands)
        in
        cur := List.filter (( <> ) drop) !cur;
        if g < !best_gcv then begin
          best_gcv := g;
          best_subset := !cur
        end
  done;
  (* ---------- final refit ---------- *)
  let final_bases = List.filteri (fun i _ -> List.mem i !best_subset) !bases in
  let final_cols = Array.of_list (List.filteri (fun i _ -> List.mem i !best_subset) !cols) in
  let w, _ = solve_sse final_cols y in
  let final_bases = Array.of_list final_bases in
  let repr = Repr.Mars { bases = final_bases; weights = w; mu; sd } in
  {
    Model.technique = "mars";
    predict = Repr.eval repr;
    n_params = Array.length w;
    terms =
      Array.to_list (Array.mapi (fun i b -> (basis_name names b, w.(i))) final_bases);
    repr = Some repr;
  }
