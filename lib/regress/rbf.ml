open Emc_linalg

(** Radial basis function networks with regression-tree center selection
    (paper §4.3, following Orr et al. [12]).

    For each candidate network size, a regression tree partitions the design
    space into regions of uniform response; the training point nearest each
    leaf centroid becomes an RBF center, the leaf's spatial extent sets the
    radius. Output weights are the ridge-regularized least-squares solution.
    The network size is selected by BIC (paper §4.4). The paper's printed
    "multiquad" kernel formula is imaginary for distant inputs — an evident
    typo for the standard multiquadric √(d²/r² + 1), which we use (it was
    the paper's most accurate kernel); Gaussian and inverse multiquadric are
    also available. *)

type kernel = Repr.kernel = Gaussian | Multiquadric | InverseMultiquadric

let kernel_name = Repr.kernel_name

(* kernel/distance evaluation is shared with artifact eval (Repr) so that a
   saved network reproduces the fitted one bit-for-bit *)
let eval_kernel = Repr.eval_kernel

let dist2 = Repr.dist2

(* centers and radii from a regression tree with [n_centers] leaves *)
let centers_from_tree (d : Dataset.t) ~n_centers =
  let tree = Tree.fit ~max_leaves:n_centers d in
  let k = Dataset.dims d in
  List.map
    (fun (indices, _) ->
      (* leaf centroid *)
      let centroid =
        Array.init k (fun dim ->
            Emc_util.Stats.mean (Array.map (fun i -> d.Dataset.x.(i).(dim)) indices))
      in
      (* training point nearest the centroid *)
      let best = ref indices.(0) in
      Array.iter
        (fun i ->
          if dist2 d.Dataset.x.(i) centroid < dist2 d.Dataset.x.(!best) centroid then best := i)
        indices;
      let center = Array.copy d.Dataset.x.(!best) in
      (* radius: RMS distance of leaf points to the center, floored *)
      let spread =
        if Array.length indices <= 1 then 1.0
        else
          sqrt
            (Emc_util.Stats.mean (Array.map (fun i -> dist2 d.Dataset.x.(i) center) indices))
      in
      (center, Float.max 0.5 (2.0 *. spread)))
    (Tree.leaves tree)

let ridge = 1e-6

(* fit weights for a fixed set of centers *)
let fit_weights kernel (d : Dataset.t) centers =
  let n = Dataset.size d in
  let c = List.length centers in
  let centers = Array.of_list centers in
  (* design matrix: bias + one column per center *)
  let phi =
    Mat.init n (c + 1) (fun i j ->
        if j = 0 then 1.0
        else
          let ctr, r = centers.(j - 1) in
          eval_kernel kernel ~r (dist2 d.Dataset.x.(i) ctr))
  in
  let g = Mat.gram phi in
  for i = 0 to c do
    Mat.set g i i (Mat.get g i i +. ridge)
  done;
  let rhs = Mat.mul_vec (Mat.transpose phi) d.Dataset.y in
  let w =
    try Mat.solve_spd g rhs
    with Failure _ -> Mat.lstsq phi d.Dataset.y
  in
  let predict x =
    let acc = ref w.(0) in
    Array.iteri (fun j (ctr, r) -> acc := !acc +. (w.(j + 1) *. eval_kernel kernel ~r (dist2 x ctr)))
      centers;
    !acc
  in
  (predict, w)

let default_size_grid n =
  List.filter (fun c -> c >= 4 && c <= n / 3) [ 4; 6; 8; 12; 16; 24; 32; 48; 64; 96 ]

(** Train an RBF network; the number of centers is chosen by BIC over
    [size_grid]. *)
let fit ?(kernel = Multiquadric) ?size_grid (d : Dataset.t) : Model.t =
  let d_std, mu, sd = Dataset.standardize_stats d in
  let n = Dataset.size d in
  let grid = match size_grid with Some g -> g | None -> default_size_grid n in
  let grid = if grid = [] then [ max 2 (n / 4) ] else grid in
  let fit_one c =
    let centers = centers_from_tree d_std ~n_centers:c in
    let predict, w = fit_weights kernel d_std centers in
    let sse = Metrics.sse predict d_std in
    let bic = Metrics.bic ~samples:n ~params:(Array.length w) ~sse in
    (bic, centers, w)
  in
  let best =
    List.fold_left
      (fun acc c ->
        let (bic, _, _) as cand = fit_one c in
        match acc with
        | Some (b', _, _) when b' <= bic -> acc
        | _ -> Some cand)
      None grid
  in
  let _, centers, w = Option.get best in
  let centers = Array.of_list centers in
  let repr =
    Repr.Rbf
      { kernel; centers = Array.map fst centers; radii = Array.map snd centers; weights = w;
        mu; sd }
  in
  (* center/weight pairs in response units (weights scale by the response
     sd; the bias absorbs the mean) — the Table-4 reading for networks *)
  let terms =
    ("bias", (w.(0) *. sd) +. mu)
    :: Array.to_list
         (Array.mapi
            (fun j (_, r) -> (Printf.sprintf "center%d(r=%.2f)" j r, w.(j + 1) *. sd))
            centers)
  in
  {
    Model.technique = "rbf-rt(" ^ kernel_name kernel ^ ")";
    predict = Repr.eval repr;
    n_params = Array.length w;
    terms;
    repr = Some repr;
  }
