(** Common model interface: every technique yields a predictor plus an
    interpretable term listing (coefficients for linear/MARS; center/weight
    pairs for RBF networks) and, for the built-in families, a structured
    representation ({!Repr.t}) that reproduces [predict] bit-for-bit and can
    be serialized into a model artifact. *)

type t = {
  technique : string;
  predict : float array -> float;
  n_params : int;  (** for BIC-style complexity accounting *)
  terms : (string * float) list;  (** human-readable term/coefficient pairs *)
  repr : Repr.t option;
      (** structured form of [predict]; [None] for ad-hoc models (stubs,
          trees) that cannot be saved as artifacts *)
}
