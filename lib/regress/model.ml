(** Common model interface: every technique yields a predictor plus an
    interpretable term listing (coefficients for linear/MARS; centers for
    RBF networks). *)

type t = {
  technique : string;
  predict : float array -> float;
  n_params : int;  (** for BIC-style complexity accounting *)
  terms : (string * float) list;  (** human-readable term/coefficient pairs *)
}
