(** Model-quality metrics (paper §4.4 and §6.1). *)

val mape : (float array -> float) -> Dataset.t -> float
(** Mean absolute percentage error — the paper's Table-3 metric. *)

val rmse : (float array -> float) -> Dataset.t -> float

val sse : (float array -> float) -> Dataset.t -> float
(** Sum of squared errors (Equation 4). *)

val bic : samples:int -> params:int -> sse:float -> float
(** Bayesian information criterion, exactly the paper's Equation 9:
    [(p + (ln p − 1)γ) / (p(p − γ)) × SSE]. [infinity] when [params >=
    samples]. Lower is better. *)

val gcv : samples:int -> effective_params:float -> sse:float -> float
(** Generalized cross-validation (Friedman '91), used by the MARS backward
    pass: [SSE/n / (1 − C/n)²]. *)
