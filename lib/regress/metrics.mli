(** Model-quality metrics (paper §4.4 and §6.1), plus rank-quality metrics
    for the search consumer (§6.3), which only needs the {e order} of
    design points. *)

val mape : (float array -> float) -> Dataset.t -> float
(** Mean absolute percentage error — the paper's Table-3 metric. Samples
    with [y = 0] are undefined under APE and are skipped (see
    {!mape_with_skipped}); NaN if every sample was skipped. *)

val mape_with_skipped : (float array -> float) -> Dataset.t -> float * int
(** [(mape, skipped)]: the error averaged over the samples with [|y| > 0]
    and the count of zero-response samples excluded. The skip-with-count
    policy keeps a single zero (possible for Energy/CodeSize responses)
    from poisoning the whole metric with infinity, while still surfacing
    how much of the test set was unusable. *)

val rmse : (float array -> float) -> Dataset.t -> float

val sse : (float array -> float) -> Dataset.t -> float
(** Sum of squared errors (Equation 4). *)

val bic : samples:int -> params:int -> sse:float -> float
(** Bayesian information criterion, exactly the paper's Equation 9:
    [(p + (ln p − 1)γ) / (p(p − γ)) × SSE]. [infinity] when [params >=
    samples]. Lower is better. *)

val gcv : samples:int -> effective_params:float -> sse:float -> float
(** Generalized cross-validation (Friedman '91), used by the MARS backward
    pass: [SSE/n / (1 − C/n)²]. *)

(** {2 Rank-quality metrics}

    The model-based search minimizes the predicted response, so what it
    needs from a model is a faithful {e ordering} of design points. These
    metrics score that directly. All of them sort NaN predictions last
    (the {!Ga.optimize} convention: a broken prediction must not look
    optimal) and break ties deterministically by sample index. *)

val nan_last : float -> float -> int
(** Ascending [Float.compare] with NaN ordered after every number. *)

val strength_order : string * float -> string * float -> int
(** Descending-|coefficient| order over [(term, coef)] pairs,
    NaN-coefficient terms last — the Table-4 term ranking shared by
    [emc rank] and the serving daemon's /rank endpoint (polymorphic
    [compare] on [Float.abs] would sort NaN coefficients {e first}). *)

val average_ranks : float array -> float array
(** Fractional ranks (1-based); tied values receive the average of the
    positions they span, the standard Spearman tie treatment. *)

val spearman_arrays : float array -> float array -> float
(** Spearman rank correlation with tie handling (Pearson correlation of
    {!average_ranks}). 1 = identical order, -1 = inverted, 0 when either
    side is constant. Raises [Invalid_argument] on mismatched lengths or
    fewer than 2 samples. *)

val spearman : (float array -> float) -> Dataset.t -> float
(** {!spearman_arrays} of the model's predictions against the measured
    responses — order agreement between model and simulator. *)

val top_k_regret : k:int -> (float array -> float) -> Dataset.t -> float
(** How much worse the best of the model's top-[k] picks (smallest
    predicted response) is than the true optimum, as a percentage of the
    true optimum: 0 means the model's shortlist contains the best point.
    Absolute difference when the true optimum is 0. [k] is clamped to the
    dataset size. *)

val precision_at_k : k:int -> (float array -> float) -> Dataset.t -> float
(** Fraction of the model's top-[k] picks that are in the true top-[k]
    (the HW-AutoTuning top-K score). [k] is clamped to the dataset
    size. *)
