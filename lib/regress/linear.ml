open Emc_linalg

(** Linear regression with two-factor interactions (paper §4.1, Equation 2):

    [y = β0 + Σ βi xi + Σ Σ βij xi xj]

    fitted by least squares (Householder QR). With 25 predictors this is
    1 + 25 + 325 = 351 columns; the paper's 400-point designs keep it
    overdetermined. Pure main-effects models are available with
    [~interactions:false]. *)

let n_features ~interactions k = if interactions then 1 + k + (k * (k + 1) / 2) else 1 + k

let expand ~interactions x =
  let k = Array.length x in
  let out = Array.make (n_features ~interactions k) 1.0 in
  Array.blit x 0 out 1 k;
  if interactions then begin
    let idx = ref (1 + k) in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        out.(!idx) <- x.(i) *. x.(j);
        incr idx
      done
    done
  end;
  out

let feature_names ~interactions names =
  let k = Array.length names in
  let out = Array.make (n_features ~interactions k) "const" in
  Array.blit names 0 out 1 k;
  if interactions then begin
    let idx = ref (1 + k) in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        out.(!idx) <- (if i = j then names.(i) ^ "^2" else names.(i) ^ " * " ^ names.(j));
        incr idx
      done
    done
  end;
  out

(* Tiny Tikhonov ridge: with the paper's 400-point designs the penalty is
   negligible, but it keeps the 351-column interaction model well-posed on
   the smaller designs of the quick protocol instead of exploding. *)
let ridge = 1e-4

let fit ?(interactions = true) ?(names = [||]) (d : Dataset.t) : Model.t =
  let k = Dataset.dims d in
  let names = if Array.length names = k then names else Array.init k (Printf.sprintf "x%d") in
  let d_std, unstd_y = Dataset.standardize d in
  let rows = Array.map (expand ~interactions) d_std.Dataset.x in
  let xmat = Mat.of_rows rows in
  let beta =
    let g = Mat.gram xmat in
    let p = Mat.rows g in
    for i = 0 to p - 1 do
      Mat.set g i i (Mat.get g i i +. (ridge *. float_of_int (Dataset.size d)))
    done;
    let rhs = Mat.mul_vec (Mat.transpose xmat) d_std.Dataset.y in
    try Mat.solve_spd g rhs with Failure _ -> Mat.lstsq xmat d_std.Dataset.y
  in
  let fnames = feature_names ~interactions names in
  let sd = unstd_y 1.0 -. unstd_y 0.0 in
  let terms =
    Array.to_list
      (Array.mapi
         (fun i b -> (fnames.(i), if i = 0 then unstd_y b else b *. sd))
         beta)
  in
  {
    Model.technique = "linear";
    predict =
      (fun x ->
        let f = expand ~interactions x in
        let acc = ref 0.0 in
        Array.iteri (fun i v -> acc := !acc +. (v *. beta.(i))) f;
        unstd_y !acc);
    n_params = Array.length beta;
    terms = List.filter (fun (_, b) -> Float.abs b > 1e-12) terms;
  }
