open Emc_linalg

(** Linear regression with two-factor interactions (paper §4.1, Equation 2):

    [y = β0 + Σ βi xi + Σ Σ βij xi xj]

    fitted by least squares (Householder QR). With 25 predictors this is
    1 + 25 + 325 = 351 columns; the paper's 400-point designs keep it
    overdetermined. Pure main-effects models are available with
    [~interactions:false]. The feature expansion lives in {!Repr} (shared
    with artifact evaluation); the returned model's [predict] is
    [Repr.eval] of its repr, so saved models reproduce it bit-for-bit. *)

let n_features = Repr.n_features

let expand = Repr.expand

let feature_names ~interactions names =
  let k = Array.length names in
  let out = Array.make (n_features ~interactions k) "const" in
  Array.blit names 0 out 1 k;
  if interactions then begin
    let idx = ref (1 + k) in
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        out.(!idx) <- (if i = j then names.(i) ^ "^2" else names.(i) ^ " * " ^ names.(j));
        incr idx
      done
    done
  end;
  out

(* Tiny Tikhonov ridge: with the paper's 400-point designs the penalty is
   negligible, but it keeps the 351-column interaction model well-posed on
   the smaller designs of the quick protocol instead of exploding. *)
let ridge = 1e-4

let fit ?(interactions = true) ?(names = [||]) (d : Dataset.t) : Model.t =
  let k = Dataset.dims d in
  let names = if Array.length names = k then names else Array.init k (Printf.sprintf "x%d") in
  let d_std, mu, sd_y = Dataset.standardize_stats d in
  let rows = Array.map (expand ~interactions) d_std.Dataset.x in
  let xmat = Mat.of_rows rows in
  let beta =
    let g = Mat.gram xmat in
    let p = Mat.rows g in
    for i = 0 to p - 1 do
      Mat.set g i i (Mat.get g i i +. (ridge *. float_of_int (Dataset.size d)))
    done;
    let rhs = Mat.mul_vec (Mat.transpose xmat) d_std.Dataset.y in
    try Mat.solve_spd g rhs with Failure _ -> Mat.lstsq xmat d_std.Dataset.y
  in
  let fnames = feature_names ~interactions names in
  let unstd_y v = (v *. sd_y) +. mu in
  let sd = unstd_y 1.0 -. unstd_y 0.0 in
  let terms =
    Array.to_list
      (Array.mapi
         (fun i b -> (fnames.(i), if i = 0 then unstd_y b else b *. sd))
         beta)
  in
  let repr = Repr.Linear { interactions; beta; mu; sd = sd_y } in
  {
    Model.technique = "linear";
    predict = Repr.eval repr;
    n_params = Array.length beta;
    terms = List.filter (fun (_, b) -> Float.abs b > 1e-12) terms;
    repr = Some repr;
  }
