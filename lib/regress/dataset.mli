(** Training/test data for the empirical models: design points in the coded
    [-1,1] space paired with measured responses (cycles, energy or code
    size). *)

type t = { x : float array array; y : float array }

val create : float array array -> float array -> t
(** Raises [Invalid_argument] on a length mismatch or an empty set. *)

val size : t -> int
val dims : t -> int
val append : t -> t -> t

val sub : t -> int array -> t
(** Select rows by index. *)

val sample : Emc_util.Rng.t -> t -> int -> t
(** Random subset without replacement (used for the Figure-5 learning
    curves); clamps to the dataset size. *)

val split : Emc_util.Rng.t -> t -> int -> t * t
(** Random disjoint split into sizes [n] and [size - n]. *)

val standardize_stats : t -> t * float * float
(** Responses shifted/scaled to mean 0, sd 1; returns [(standardized, mu,
    sd)] where the inverse transform is [v *. sd +. mu]. Models record
    [(mu, sd)] in their serializable {!Repr.t}. *)

val standardize : t -> t * (float -> float)
(** {!standardize_stats} with the inverse transform as a closure. *)
