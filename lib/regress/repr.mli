(** Structured, serializable representations of fitted models.

    Every family returned by {!Linear.fit}, {!Mars.fit} and {!Rbf.fit} is a
    closed-form expression over its coefficients; [Repr.t] spells that
    expression out as data so a trained model can leave the process that fit
    it — saved to an artifact file, reloaded elsewhere, and served — while
    {!eval} reproduces the fitted closure {e bit for bit} (the fit functions
    build their returned [predict] from the repr, so there is exactly one
    evaluation code path).

    JSON round-trips ({!to_json} / {!of_json}) carry every float as a hex
    literal ([%h]), the same convention as the persistent measurement cache,
    so serialization never loses a bit. *)

type factor = { dim : int; knot : float; positive : bool }
(** One hinge [max(0, ±(x.(dim) − knot))] of a MARS basis function. *)

type kernel = Gaussian | Multiquadric | InverseMultiquadric

type t =
  | Linear of { interactions : bool; beta : float array; mu : float; sd : float }
      (** Least-squares coefficients over the {!expand} feature row, fitted
          on the standardized response [(y − mu) / sd]. *)
  | Mars of { bases : factor list array; weights : float array; mu : float; sd : float }
      (** Basis functions (products of hinges; [[]] is the intercept) with
          their weights, on the standardized response. *)
  | Rbf of {
      kernel : kernel;
      centers : float array array;
      radii : float array;
      weights : float array;  (** [weights.(0)] is the bias; [weights.(j+1)] pairs with [centers.(j)] *)
      mu : float;
      sd : float;
    }
  | Rank of { interactions : bool; beta : float array }
      (** {!Rank.fit}'s pairwise ranking scorer: a {e unitless} score over
          the same {!expand} feature row as [Linear], without response
          standardization — only the induced order of design points is
          meaningful, not the magnitude. *)
  | Clamp of { lo : float; hi : float; body : t }
      (** {!Emc_core.Modeling.fit}'s response-envelope clamp. *)

val family : t -> string
(** ["linear"], ["mars"], ["rbf"], ["rank"] or the clamped body's
    family. *)

val kernel_name : kernel -> string

val kernel_of_name : string -> kernel option

(** {2 Shared evaluation kernels}

    The single implementation used both when fitting (building design
    matrices) and when evaluating a loaded artifact — keeping them one
    function is what makes the bit-for-bit guarantee hold by construction. *)

val n_features : interactions:bool -> int -> int

val expand : interactions:bool -> float array -> float array
(** Linear model row: intercept, main effects, and (optionally) all
    products [xi*xj] with [i <= j]. *)

val eval_basis : factor list -> float array -> float
(** MARS basis function: product of hinge values, 0 as soon as one hinge
    is inactive. *)

val eval_kernel : kernel -> r:float -> float -> float
(** [eval_kernel k ~r d2] at squared distance [d2] with radius [r]. *)

val dist2 : float array -> float array -> float

val eval : t -> float array -> float
(** Evaluate at a coded design point. Bit-identical to the [predict] of the
    model the repr was extracted from. The point's arity must match the
    repr (callers validate against the artifact's parameter schema). *)

val expand_into : interactions:bool -> float array -> float array -> unit
(** [expand] into a caller-owned array of at least
    [n_features ~interactions (Array.length x)] cells — the serving hot
    path's allocation-free variant. *)

val compile : t -> float array -> float
(** [compile r] hoists the representation dispatch and the feature
    scratch out of the per-point call: [compile r x = eval r x] bit for
    bit, with no per-call allocation for [Linear]/[Rank]. The compiled
    closure reuses internal scratch, so it must not be shared between
    concurrent evaluators — compile one per worker. Points must have the
    fitted arity (validated upstream by the artifact schema). *)

(** {2 JSON round-trip} *)

val to_json : t -> Emc_obs.Json.t

val of_json : Emc_obs.Json.t -> (t, string) result
(** Strict: unknown families, missing fields, malformed floats and
    mismatched coefficient counts are [Error]s, never exceptions. *)
