(** CART-style regression tree, used both standalone and to pick RBF centers
    (Orr et al., "Combining Regression Trees and Radial Basis Function
    Networks" — the paper's reference [12]).

    Best-first growth: repeatedly split the leaf whose best (dimension,
    threshold) split yields the largest SSE reduction, until [max_leaves] or
    no admissible split remains ([min_leaf] points per side). Thresholds are
    midpoints between distinct sorted values, subsampled to at most
    [max_thresholds] per dimension. *)

type node =
  | Leaf of { indices : int array; mean : float }
  | Split of { dim : int; thr : float; left : node; right : node }

let max_thresholds = 8

let leaf_of (d : Dataset.t) indices =
  let mean =
    Emc_util.Stats.mean (Array.map (fun i -> d.Dataset.y.(i)) indices)
  in
  Leaf { indices; mean }

let sse_of (d : Dataset.t) indices =
  let ys = Array.map (fun i -> d.Dataset.y.(i)) indices in
  let m = Emc_util.Stats.mean ys in
  Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 ys

(* best split of a leaf: returns (sse_reduction, dim, thr, left_idx, right_idx) *)
let best_split (d : Dataset.t) ~min_leaf indices =
  let base = sse_of d indices in
  let k = Dataset.dims d in
  let best = ref None in
  for dim = 0 to k - 1 do
    let vals = Array.map (fun i -> d.Dataset.x.(i).(dim)) indices in
    let uniq = List.sort_uniq compare (Array.to_list vals) in
    let thresholds =
      let mids =
        let rec go = function a :: (b :: _ as rest) -> ((a +. b) /. 2.0) :: go rest | _ -> [] in
        go uniq
      in
      let m = List.length mids in
      if m <= max_thresholds then mids
      else
        (* evenly subsample *)
        List.filteri (fun i _ -> i mod ((m / max_thresholds) + 1) = 0) mids
    in
    List.iter
      (fun thr ->
        let l = Array.of_list (List.filter (fun i -> d.Dataset.x.(i).(dim) <= thr)
                                 (Array.to_list indices)) in
        let r = Array.of_list (List.filter (fun i -> d.Dataset.x.(i).(dim) > thr)
                                 (Array.to_list indices)) in
        if Array.length l >= min_leaf && Array.length r >= min_leaf then begin
          let red = base -. sse_of d l -. sse_of d r in
          match !best with
          | Some (r', _, _, _, _) when r' >= red -> ()
          | _ -> best := Some (red, dim, thr, l, r)
        end)
      thresholds
  done;
  !best

let fit ?(min_leaf = 3) ~max_leaves (d : Dataset.t) =
  let all = Array.init (Dataset.size d) Fun.id in
  (* working set of leaves with their best candidate splits *)
  let root = leaf_of d all in
  let rec count_leaves = function
    | Leaf _ -> 1
    | Split s -> count_leaves s.left + count_leaves s.right
  in
  let rec grow node budget =
    if budget <= 1 then node
    else
      match node with
      | Leaf { indices; _ } -> (
          match best_split d ~min_leaf indices with
          | Some (red, dim, thr, l, r) when red > 1e-12 ->
              let nl = Array.length l and nr = Array.length r in
              (* allocate remaining budget proportionally *)
              let bl = max 1 (budget * nl / (nl + nr)) in
              let br = max 1 (budget - bl) in
              Split { dim; thr; left = grow (leaf_of d l) bl; right = grow (leaf_of d r) br }
          | _ -> node)
      | Split s ->
          Split { s with left = grow s.left (budget / 2); right = grow s.right (budget - (budget / 2)) }
  in
  let t = grow root max_leaves in
  ignore (count_leaves t);
  t

let rec predict node x =
  match node with
  | Leaf { mean; _ } -> mean
  | Split { dim; thr; left; right } -> if x.(dim) <= thr then predict left x else predict right x

let rec leaves = function
  | Leaf { indices; mean } -> [ (indices, mean) ]
  | Split s -> leaves s.left @ leaves s.right

let to_model (d : Dataset.t) node : Model.t =
  ignore d;
  let n_leaves = List.length (leaves node) in
  {
    Model.technique = "tree";
    predict = predict node;
    n_params = n_leaves;
    terms = [];
    repr = None;
  }
