(** Common interface for fitted empirical models. *)

type t = {
  technique : string;  (** "linear", "mars", "rbf-rt(<kernel>)", ... *)
  predict : float array -> float;  (** response at a coded design point *)
  n_params : int;  (** fitted parameter count, for BIC-style accounting *)
  terms : (string * float) list;
      (** interpretable term/coefficient pairs — coefficients in response
          units for linear and MARS models (the paper's Table-4 reading),
          bias and per-center weights for RBF networks *)
  repr : Repr.t option;
      (** structured, serializable form of [predict]. The three built-in
          families always carry one, and their [predict] {e is}
          [Repr.eval repr] — so a saved and reloaded model predicts
          bit-identically. [None] for ad-hoc models (test stubs, bare
          regression trees), which cannot be saved as artifacts. *)
}
