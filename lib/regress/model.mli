(** Common interface for fitted empirical models. *)

type t = {
  technique : string;  (** "linear", "mars", "rbf-rt(<kernel>)", ... *)
  predict : float array -> float;  (** response at a coded design point *)
  n_params : int;  (** fitted parameter count, for BIC-style accounting *)
  terms : (string * float) list;
      (** interpretable term/coefficient pairs — populated for linear and
          MARS models (the paper's Table-4 reading), informational for RBF
          networks *)
}
