open Emc_util

(** Training/test data: design points in coded [-1,1] space with measured
    responses (execution time in cycles). *)

type t = { x : float array array; y : float array }

let size d = Array.length d.y

let create x y =
  if Array.length x <> Array.length y then invalid_arg "Dataset.create: length mismatch";
  if Array.length x = 0 then invalid_arg "Dataset.create: empty dataset";
  { x; y }

let dims d = Array.length d.x.(0)

let append a b =
  { x = Array.append a.x b.x; y = Array.append a.y b.y }

let sub d idx =
  { x = Array.map (fun i -> d.x.(i)) idx; y = Array.map (fun i -> d.y.(i)) idx }

(** Random subset of [n] points (without replacement). *)
let sample rng d n =
  let n = min n (size d) in
  sub d (Rng.sample_without_replacement rng n (size d))

(** Split into two disjoint parts of sizes [n] and [size-n], randomly. *)
let split rng d n =
  let idx = Array.init (size d) Fun.id in
  Rng.shuffle rng idx;
  (sub d (Array.sub idx 0 n), sub d (Array.sub idx n (size d - n)))

(** Normalize responses to mean 0 / scale 1; returns the transformed dataset
    plus the (mu, sd) of the inverse map [v *. sd +. mu]. Exposing the two
    floats (rather than only a closure) is what lets fitted models record
    the inverse transform in their serializable {!Repr.t}. *)
let standardize_stats d =
  let mu = Stats.mean d.y in
  let sd = Stats.sample_stddev d.y in
  let sd = if sd < 1e-12 then 1.0 else sd in
  let y' = Array.map (fun v -> (v -. mu) /. sd) d.y in
  ({ d with y = y' }, mu, sd)

(** {!standardize_stats} with the inverse transform as a closure. *)
let standardize d =
  let d', mu, sd = standardize_stats d in
  (d', fun v -> (v *. sd) +. mu)
