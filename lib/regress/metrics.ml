(** Model quality metrics (paper §4.4 and §6.1). *)

(** Mean absolute percentage error of predictions vs actuals. Zero-response
    samples are undefined under APE (division by |y| = 0) and would poison
    the whole metric with infinity/NaN; the policy is skip-with-count:
    they are excluded and reported in the second component. *)
let mape_with_skipped predict (d : Dataset.t) =
  let n = Dataset.size d in
  let acc = ref 0.0 and used = ref 0 in
  for i = 0 to n - 1 do
    let y = d.Dataset.y.(i) in
    if Float.abs y > 0.0 then begin
      let p = predict d.Dataset.x.(i) in
      acc := !acc +. (Float.abs (p -. y) /. Float.abs y);
      incr used
    end
  done;
  if !used = 0 then (Float.nan, n) else (100.0 *. !acc /. float_of_int !used, n - !used)

let mape predict d = fst (mape_with_skipped predict d)

let rmse predict (d : Dataset.t) =
  let n = Dataset.size d in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let e = predict d.Dataset.x.(i) -. d.Dataset.y.(i) in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let sse predict (d : Dataset.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let e = predict x -. d.Dataset.y.(i) in
      acc := !acc +. (e *. e))
    d.Dataset.x;
  !acc

(** Bayesian information criterion as used in the paper (Equation 9):
    [BIC = (p + (ln p - 1) γ) / (p (p - γ)) × SSE] with [p] samples and [γ]
    model parameters. Lower is better; γ >= p yields [infinity]. *)
let bic ~samples ~params ~sse:e =
  let p = float_of_int samples and g = float_of_int params in
  if g >= p then infinity else (p +. ((log p -. 1.0) *. g)) /. (p *. (p -. g)) *. e

(** Generalized cross validation (Friedman '91): [SSE/n / (1 - C/n)^2] where
    the effective parameter count [c] includes the knot-selection penalty. *)
let gcv ~samples ~effective_params ~sse:e =
  let n = float_of_int samples in
  let c = effective_params in
  if c >= n then infinity
  else
    let denom = 1.0 -. (c /. n) in
    e /. n /. (denom *. denom)

(* ------------------------------------------------------------------ *)
(* Rank-quality metrics: the GA consumer of a model (paper §6.3) only
   needs the *order* of design points, so a model family should also be
   judged on how well it ranks, not just RMSE/MAPE. *)

(* Ascending order with NaN sorted last — the same convention as the GA's
   fitness order: a NaN prediction must not be treated as the best point. *)
let nan_last a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare a b

(** Descending-|coefficient| order over [(term, coef)] pairs with
    NaN-coefficient terms last — the Table-4 term ranking shared by
    [emc rank] and the serving daemon's /rank endpoint. *)
let strength_order (_, a) (_, b) =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare (Float.abs b) (Float.abs a)

(* Indices of [vs] in ascending value order, ties broken by index so the
   permutation is total and deterministic. *)
let order_indices vs =
  let idx = Array.init (Array.length vs) Fun.id in
  Array.sort
    (fun i j ->
      let c = nan_last vs.(i) vs.(j) in
      if c <> 0 then c else compare i j)
    idx;
  idx

(* Fractional (average) ranks: tied values all receive the mean of the
   positions they occupy — the standard tie treatment for Spearman. *)
let average_ranks vs =
  let n = Array.length vs in
  let idx = order_indices vs in
  let ranks = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    (* the tie group [i, j]: equal values (two NaNs compare equal here) *)
    while !j + 1 < n && nan_last vs.(idx.(!j + 1)) vs.(idx.(!i)) = 0 do
      incr j
    done;
    let r = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      ranks.(idx.(k)) <- r
    done;
    i := !j + 1
  done;
  ranks

let spearman_arrays a b =
  if Array.length a <> Array.length b then invalid_arg "Metrics.spearman: length mismatch";
  if Array.length a < 2 then invalid_arg "Metrics.spearman: need >= 2 samples";
  Emc_util.Stats.correlation (average_ranks a) (average_ranks b)

let spearman predict (d : Dataset.t) =
  spearman_arrays (Array.map predict d.Dataset.x) d.Dataset.y

(* The k dataset indices the model ranks best (smallest predicted response),
   deterministic under prediction ties. *)
let predicted_top_k ~k predict (d : Dataset.t) =
  let n = Dataset.size d in
  let k = Stdlib.min k n in
  let preds = Array.map predict d.Dataset.x in
  Array.sub (order_indices preds) 0 k

let top_k_regret ~k predict (d : Dataset.t) =
  if k < 1 then invalid_arg "Metrics.top_k_regret: k must be >= 1";
  let top = predicted_top_k ~k predict d in
  let best = Emc_util.Stats.min d.Dataset.y in
  let best_in_top =
    Array.fold_left
      (fun acc i -> if nan_last d.Dataset.y.(i) acc < 0 then d.Dataset.y.(i) else acc)
      d.Dataset.y.(top.(0))
      top
  in
  if Float.abs best > 0.0 then 100.0 *. (best_in_top -. best) /. Float.abs best
  else best_in_top -. best

let precision_at_k ~k predict (d : Dataset.t) =
  if k < 1 then invalid_arg "Metrics.precision_at_k: k must be >= 1";
  let n = Dataset.size d in
  let k = Stdlib.min k n in
  let predicted = predicted_top_k ~k predict d in
  let actual = Array.sub (order_indices d.Dataset.y) 0 k in
  let hits =
    Array.fold_left
      (fun acc i -> if Array.exists (Int.equal i) actual then acc + 1 else acc)
      0 predicted
  in
  float_of_int hits /. float_of_int k
