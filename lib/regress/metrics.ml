(** Model quality metrics (paper §4.4 and §6.1). *)

(** Mean absolute percentage error of predictions vs actuals. *)
let mape predict (d : Dataset.t) =
  let n = Dataset.size d in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let p = predict d.Dataset.x.(i) in
    acc := !acc +. (Float.abs (p -. d.Dataset.y.(i)) /. Float.abs d.Dataset.y.(i))
  done;
  100.0 *. !acc /. float_of_int n

let rmse predict (d : Dataset.t) =
  let n = Dataset.size d in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let e = predict d.Dataset.x.(i) -. d.Dataset.y.(i) in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let sse predict (d : Dataset.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let e = predict x -. d.Dataset.y.(i) in
      acc := !acc +. (e *. e))
    d.Dataset.x;
  !acc

(** Bayesian information criterion as used in the paper (Equation 9):
    [BIC = (p + (ln p - 1) γ) / (p (p - γ)) × SSE] with [p] samples and [γ]
    model parameters. Lower is better; γ >= p yields [infinity]. *)
let bic ~samples ~params ~sse:e =
  let p = float_of_int samples and g = float_of_int params in
  if g >= p then infinity else (p +. ((log p -. 1.0) *. g)) /. (p *. (p -. g)) *. e

(** Generalized cross validation (Friedman '91): [SSE/n / (1 - C/n)^2] where
    the effective parameter count [c] includes the knot-selection penalty. *)
let gcv ~samples ~effective_params ~sse:e =
  let n = float_of_int samples in
  let c = effective_params in
  if c >= n then infinity
  else
    let denom = 1.0 -. (c /. n) in
    e /. n /. (denom *. denom)
