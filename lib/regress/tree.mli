(** CART-style regression tree: best-first growth by SSE reduction, used
    standalone and as the center selector for {!Rbf} networks (Orr et al.). *)

type node =
  | Leaf of { indices : int array; mean : float }
  | Split of { dim : int; thr : float; left : node; right : node }

val fit : ?min_leaf:int -> max_leaves:int -> Dataset.t -> node
(** Grow until [max_leaves] or no split keeps [min_leaf] (default 3) points
    per side; thresholds are midpoints between distinct sorted values,
    subsampled per dimension. *)

val predict : node -> float array -> float

val leaves : node -> (int array * float) list
(** Leaf (training-point indices, mean response) pairs. *)

val to_model : Dataset.t -> node -> Model.t
