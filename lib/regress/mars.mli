(** Multivariate Adaptive Regression Splines (Friedman '91; paper §4.2).

    Basis functions are products of hinge functions [max(0, ±(x_d − t))] up
    to degree 2 (the paper's two-factor scope). The forward pass greedily
    adds the reflected hinge pair that most reduces training SSE over every
    (parent basis, unused dimension, data knot) candidate; the backward pass
    prunes terms by GCV and refits the best subset. The result is both
    accurate and interpretable: [terms] lists every surviving basis function
    with its coefficient, which is what the paper's Table 4 reads off. *)

val fit : ?max_terms:int -> ?max_degree:int -> ?names:string array -> Dataset.t -> Model.t
