(** Natural-loop discovery and recognition of canonical counted loops.

    The frontend lowers [for (i = a; i < b; i = i + c)] into a fixed shape
    (preheader → header with the exit test → body → latch with the increment
    → header), so the unrolling, strength-reduction and prefetching passes can
    rely on {!counted_loop} rather than a general induction-variable
    analysis. *)

module IntSet = Set.Make (Int)

type t = {
  header : Ir.label;
  latch : Ir.label;  (** source of the (unique) back edge *)
  body : IntSet.t;  (** all blocks in the loop, including header and latch *)
  depth : int;  (** nesting depth; outermost loops have depth 1 *)
}

(** A canonical counted loop: [iv] starts at [init] (in the preheader's
    predecessors), the header tests [icmp.(lt|le) iv, bound] and branches to
    the body / exit, the latch performs [iv <- iv + step]. *)
type counted = {
  loop : t;
  iv : Ir.vreg;
  bound : Ir.operand;
  step : int;
  cmp : Ir.cmpop;  (** [Lt] or [Le] *)
  exit : Ir.label;
  body_entry : Ir.label;
}

let find (f : Ir.func) =
  let dom = Dom.compute f in
  let preds = Ir.predecessors f in
  ignore preds;
  let loops = ref [] in
  (* back edges: n -> h where h dominates n *)
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun succ ->
          if Dom.dominates dom succ b.id then begin
            (* natural loop of back edge b.id -> succ *)
            let body = ref (IntSet.of_list [ succ; b.id ]) in
            let stack = ref (if b.id = succ then [] else [ b.id ]) in
            let preds = Ir.predecessors f in
            while !stack <> [] do
              match !stack with
              | [] -> ()
              | n :: rest ->
                  stack := rest;
                  List.iter
                    (fun p ->
                      if not (IntSet.mem p !body) then begin
                        body := IntSet.add p !body;
                        stack := p :: !stack
                      end)
                    preds.(n)
            done;
            loops := { header = succ; latch = b.id; body = !body; depth = 0 } :: !loops
          end)
        (Ir.successors b.term))
    f.blocks;
  (* merge loops sharing a header (multiple back edges) *)
  let merged = Hashtbl.create 8 in
  List.iter
    (fun l ->
      match Hashtbl.find_opt merged l.header with
      | None -> Hashtbl.replace merged l.header l
      | Some prev ->
          Hashtbl.replace merged l.header { prev with body = IntSet.union prev.body l.body })
    !loops;
  let loops = Hashtbl.fold (fun _ l acc -> l :: acc) merged [] in
  (* nesting depth: number of loops whose body strictly contains this header *)
  let with_depth =
    List.map
      (fun l ->
        let d =
          List.length
            (List.filter (fun l' -> l'.header <> l.header && IntSet.mem l.header l'.body) loops)
        in
        { l with depth = d + 1 })
      loops
  in
  List.sort (fun a b -> compare (a.header, a.latch) (b.header, b.latch)) with_depth

(* Find the definition of [r] inside block instruction list. *)
let def_in_block (b : Ir.block) r =
  List.find_opt (fun i -> Ir.def_of i = Some r) b.instrs

(** Recognize the canonical counted-loop shape produced by the frontend. *)
let counted_loop (f : Ir.func) (l : t) : counted option =
  let header = f.blocks.(l.header) in
  match header.term with
  | Ir.CondBr (cond, body_entry, exit)
    when IntSet.mem body_entry l.body && not (IntSet.mem exit l.body) -> (
      (* header must compute cond = icmp.(lt|le) iv, bound as its sole job *)
      match def_in_block header cond with
      | Some (Ir.Icmp (((Ir.Lt | Ir.Le) as cmp), _, Ir.Reg iv, bound)) -> (
          (* latch must increment iv by a constant *)
          let latch = f.blocks.(l.latch) in
          let incr =
            List.find_opt
              (fun i ->
                match i with
                | Ir.Ibin (Ir.Add, d, Ir.Reg s, Ir.Imm _) -> d = iv && s = iv
                | _ -> false)
              latch.instrs
          in
          match incr with
          | Some (Ir.Ibin (Ir.Add, _, _, Ir.Imm step)) when step > 0 ->
              (* iv must not be modified anywhere else in the loop *)
              let modified_elsewhere =
                IntSet.exists
                  (fun bl ->
                    let b = f.blocks.(bl) in
                    List.exists
                      (fun i ->
                        Ir.def_of i = Some iv
                        && not (bl = l.latch && i == Option.get incr))
                      b.instrs)
                  (IntSet.remove l.latch l.body)
              in
              (* the bound must be loop-invariant: an Imm, or a reg not
                 defined inside the loop *)
              let bound_invariant =
                match bound with
                | Ir.Imm _ -> true
                | Ir.Reg r ->
                    not
                      (IntSet.exists
                         (fun bl ->
                           List.exists (fun i -> Ir.def_of i = Some r) f.blocks.(bl).instrs)
                         l.body)
              in
              if modified_elsewhere || not bound_invariant then None
              else Some { loop = l; iv; bound; step; cmp; exit; body_entry }
          | _ -> None)
      | _ -> None)
  | _ -> None

(** Blocks outside the loop that jump to the header. *)
let preheader_candidates (f : Ir.func) (l : t) =
  let preds = Ir.predecessors f in
  List.filter (fun p -> not (IntSet.mem p l.body)) preds.(l.header)
