(** Data-segment layout shared by the IR interpreter and the code generator.

    Every global array gets a fixed byte base address, 64-byte (cache-line)
    aligned so that cache behaviour is stable across compiler configurations.
    The stack occupies a separate region above the data segment. *)

type t = { bases : (string * int) list; data_end : int }

let data_base = 0x1000
let align64 x = (x + 63) land lnot 63

let compute (p : Ir.program) =
  let addr = ref data_base in
  let bases =
    List.map
      (fun (g : Ir.global) ->
        let base = !addr in
        addr := align64 (base + (g.gsize * 8));
        (g.gname, base))
      p.globals
  in
  { bases; data_end = !addr }

let base t name =
  match List.assoc_opt name t.bases with
  | Some b -> b
  | None -> invalid_arg ("Memlayout.base: unknown global " ^ name)

(** Stack region: grows downward from [stack_top]. Sized generously relative
    to the workloads (no deep recursion). *)
let stack_size = 1 lsl 20

let stack_top t = align64 (t.data_end + (1 lsl 16)) + stack_size

(** Total memory words needed to back the address space. *)
let mem_words t = (stack_top t / 8) + 16
