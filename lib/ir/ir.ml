(** Intermediate representation: a conventional three-address-code CFG.

    Virtual registers are typed ([I64] or [F64]); memory is addressed through
    explicit address arithmetic (base + 8*index computed with ordinary ALU
    instructions), which gives GCSE, strength reduction and prefetching real
    work to do — exactly the trade-offs the paper's Table-1 parameters probe.

    Blocks are identified by dense integer labels. A function additionally
    carries a [layout] (the code-placement order used by the block-reordering
    pass and by code generation for fall-through decisions). *)

type ty = I64 | F64

type vreg = int
(** Virtual register id. The register's type lives in the owning function. *)

type label = int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sra
type fbinop = FAdd | FSub | FMul | FDiv
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type operand = Reg of vreg | Imm of int

type instr =
  | Iconst of vreg * int
  | Fconst of vreg * float
  | Ibin of binop * vreg * operand * operand
  | Fbin of fbinop * vreg * vreg * vreg
  | Icmp of cmpop * vreg * operand * operand
  | Fcmp of cmpop * vreg * vreg * vreg
  | Load of ty * vreg * vreg  (** [Load (ty, dst, addr)] *)
  | Store of ty * vreg * vreg  (** [Store (ty, addr, src)] *)
  | Prefetch of vreg
  | Call of vreg option * string * vreg list
  | ItoF of vreg * vreg
  | FtoI of vreg * vreg
  | Mov of ty * vreg * vreg

type term =
  | Ret of vreg option
  | Br of label
  | CondBr of vreg * label * label  (** branch to first label when nonzero *)

type block = { id : label; mutable instrs : instr list; mutable term : term }

type func = {
  fname : string;
  params : vreg list;
  ret_ty : ty option;
  mutable blocks : block array;  (** indexed by label *)
  mutable layout : label list;  (** code placement order; head is the entry *)
  mutable next_reg : int;
  reg_ty : (vreg, ty) Hashtbl.t;
}

type global = { gname : string; gty : ty; gsize : int }

type program = { funcs : (string * func) list; globals : global list }

(* ------------------------------------------------------------------ *)

let entry_label = 0

let fresh_reg f ty =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  Hashtbl.replace f.reg_ty r ty;
  r

let reg_type f r =
  match Hashtbl.find_opt f.reg_ty r with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ir.reg_type: unknown vreg v%d in %s" r f.fname)

let block f l = f.blocks.(l)

let fresh_block f =
  let id = Array.length f.blocks in
  let b = { id; instrs = []; term = Ret None } in
  f.blocks <- Array.append f.blocks [| b |];
  b

let find_func p name = List.assoc_opt name p.funcs

let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

(* ------------------------------------------------------------------ *)
(* Def/use information *)

let def_of = function
  | Iconst (d, _)
  | Fconst (d, _)
  | Ibin (_, d, _, _)
  | Fbin (_, d, _, _)
  | Icmp (_, d, _, _)
  | Fcmp (_, d, _, _)
  | Load (_, d, _)
  | ItoF (d, _)
  | FtoI (d, _)
  | Mov (_, d, _) ->
      Some d
  | Call (d, _, _) -> d
  | Store _ | Prefetch _ -> None

let uses_of instr =
  let op acc = function Reg r -> r :: acc | Imm _ -> acc in
  match instr with
  | Iconst _ | Fconst _ -> []
  | Ibin (_, _, a, b) | Icmp (_, _, a, b) -> op (op [] b) a
  | Fbin (_, _, a, b) | Fcmp (_, _, a, b) -> [ a; b ]
  | Load (_, _, a) -> [ a ]
  | Store (_, a, s) -> [ a; s ]
  | Prefetch a -> [ a ]
  | Call (_, _, args) -> args
  | ItoF (_, s) | FtoI (_, s) | Mov (_, _, s) -> [ s ]

let term_uses = function Ret (Some r) -> [ r ] | Ret None | Br _ -> [] | CondBr (c, _, _) -> [ c ]

let successors = function Ret _ -> [] | Br l -> [ l ] | CondBr (_, a, b) -> [ a; b ]

(* [has_side_effect] is true for instructions that cannot be freely removed,
   duplicated or reordered past each other. *)
let has_side_effect = function
  | Store _ | Call _ | Prefetch _ -> true
  | _ -> false

(* Pure instructions are candidates for CSE / hoisting. Integer division is
   only pure when the divisor is a non-zero immediate (otherwise hoisting
   could introduce a trap that the original program guarded against). *)
let is_pure = function
  | Ibin ((Div | Rem), _, _, Imm 0) -> false
  | Ibin ((Div | Rem), _, _, Imm _) -> true
  | Ibin ((Div | Rem), _, _, Reg _) -> false
  | Iconst _ | Fconst _ | Ibin _ | Fbin _ | Icmp _ | Fcmp _ | ItoF _ | FtoI _ | Mov _ -> true
  | Load _ | Store _ | Prefetch _ | Call _ -> false

(* ------------------------------------------------------------------ *)
(* CFG helpers *)

let predecessors f =
  let preds = Array.make (Array.length f.blocks) [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) (successors b.term))
    f.blocks;
  Array.map List.rev preds

(* Blocks reachable from the entry, in reverse postorder. *)
let reverse_postorder f =
  let n = Array.length f.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs l =
    if not visited.(l) then begin
      visited.(l) <- true;
      List.iter dfs (successors f.blocks.(l).term);
      order := l :: !order
    end
  in
  dfs entry_label;
  !order

let instr_count_fn f =
  Array.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

let instr_count p = List.fold_left (fun acc (_, f) -> acc + instr_count_fn f) 0 p.funcs

(* Remove blocks not reachable from entry and compact labels; rebuilds the
   layout preserving relative order of surviving blocks. *)
let remove_unreachable f =
  let rpo = reverse_postorder f in
  let reachable = Array.make (Array.length f.blocks) false in
  List.iter (fun l -> reachable.(l) <- true) rpo;
  if Array.for_all Fun.id reachable then ()
  else begin
    let remap = Array.make (Array.length f.blocks) (-1) in
    let next = ref 0 in
    (* entry keeps label 0: allocate ids in old-label order *)
    Array.iteri
      (fun l r ->
        if r then begin
          remap.(l) <- !next;
          incr next
        end)
      reachable;
    let rename_term = function
      | Ret r -> Ret r
      | Br l -> Br remap.(l)
      | CondBr (c, a, b) -> CondBr (c, remap.(a), remap.(b))
    in
    let nblocks = Array.make !next { id = 0; instrs = []; term = Ret None } in
    Array.iter
      (fun b ->
        if reachable.(b.id) then
          nblocks.(remap.(b.id)) <- { b with id = remap.(b.id); term = rename_term b.term })
      f.blocks;
    f.blocks <- nblocks;
    f.layout <- List.filter_map (fun l -> if reachable.(l) then Some remap.(l) else None) f.layout
  end

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Sra -> "sra"

let string_of_fbinop = function FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let string_of_cmpop = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let string_of_ty = function I64 -> "i64" | F64 -> "f64"

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "v%d" r
  | Imm i -> Format.fprintf fmt "%d" i

let pp_instr fmt = function
  | Iconst (d, i) -> Format.fprintf fmt "v%d = iconst %d" d i
  | Fconst (d, x) -> Format.fprintf fmt "v%d = fconst %g" d x
  | Ibin (op, d, a, b) ->
      Format.fprintf fmt "v%d = %s %a, %a" d (string_of_binop op) pp_operand a pp_operand b
  | Fbin (op, d, a, b) -> Format.fprintf fmt "v%d = %s v%d, v%d" d (string_of_fbinop op) a b
  | Icmp (op, d, a, b) ->
      Format.fprintf fmt "v%d = icmp.%s %a, %a" d (string_of_cmpop op) pp_operand a pp_operand b
  | Fcmp (op, d, a, b) -> Format.fprintf fmt "v%d = fcmp.%s v%d, v%d" d (string_of_cmpop op) a b
  | Load (ty, d, a) -> Format.fprintf fmt "v%d = load.%s [v%d]" d (string_of_ty ty) a
  | Store (ty, a, s) -> Format.fprintf fmt "store.%s [v%d], v%d" (string_of_ty ty) a s
  | Prefetch a -> Format.fprintf fmt "prefetch [v%d]" a
  | Call (None, f, args) ->
      Format.fprintf fmt "call %s(%s)" f (String.concat ", " (List.map (Printf.sprintf "v%d") args))
  | Call (Some d, f, args) ->
      Format.fprintf fmt "v%d = call %s(%s)" d f
        (String.concat ", " (List.map (Printf.sprintf "v%d") args))
  | ItoF (d, s) -> Format.fprintf fmt "v%d = itof v%d" d s
  | FtoI (d, s) -> Format.fprintf fmt "v%d = ftoi v%d" d s
  | Mov (ty, d, s) -> Format.fprintf fmt "v%d = mov.%s v%d" d (string_of_ty ty) s

let pp_term fmt = function
  | Ret None -> Format.fprintf fmt "ret"
  | Ret (Some r) -> Format.fprintf fmt "ret v%d" r
  | Br l -> Format.fprintf fmt "br L%d" l
  | CondBr (c, a, b) -> Format.fprintf fmt "condbr v%d, L%d, L%d" c a b

let pp_func fmt f =
  Format.fprintf fmt "fn %s(%s)%s {@\n" f.fname
    (String.concat ", " (List.map (Printf.sprintf "v%d") f.params))
    (match f.ret_ty with None -> "" | Some t -> " -> " ^ string_of_ty t);
  List.iter
    (fun l ->
      let b = f.blocks.(l) in
      Format.fprintf fmt "L%d:@\n" b.id;
      List.iter (fun i -> Format.fprintf fmt "  %a@\n" pp_instr i) b.instrs;
      Format.fprintf fmt "  %a@\n" pp_term b.term)
    f.layout;
  Format.fprintf fmt "}@\n"

let pp_program fmt p =
  List.iter (fun g ->
      Format.fprintf fmt "%s %s[%d]@\n" (string_of_ty g.gty) g.gname g.gsize)
    p.globals;
  List.iter (fun (_, f) -> pp_func fmt f) p.funcs

let to_string p = Format.asprintf "%a" pp_program p
