(** Classic backward liveness dataflow over the CFG.

    [live_out.(l)] is the set of virtual registers live on exit from block
    [l]; [live_in.(l)] on entry. *)

module IntSet = Set.Make (Int)

type t = { live_in : IntSet.t array; live_out : IntSet.t array }

let block_use_def (b : Ir.block) =
  (* use = upward-exposed uses, def = registers defined in the block *)
  let use = ref IntSet.empty and def = ref IntSet.empty in
  List.iter
    (fun i ->
      List.iter (fun r -> if not (IntSet.mem r !def) then use := IntSet.add r !use) (Ir.uses_of i);
      match Ir.def_of i with Some d -> def := IntSet.add d !def | None -> ())
    b.instrs;
  List.iter
    (fun r -> if not (IntSet.mem r !def) then use := IntSet.add r !use)
    (Ir.term_uses b.term);
  (!use, !def)

let compute (f : Ir.func) =
  let n = Array.length f.blocks in
  let use = Array.make n IntSet.empty and def = Array.make n IntSet.empty in
  Array.iter
    (fun b ->
      let u, d = block_use_def b in
      use.(b.id) <- u;
      def.(b.id) <- d)
    f.blocks;
  let live_in = Array.make n IntSet.empty and live_out = Array.make n IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse of reverse-postorder for fast convergence *)
    List.iter
      (fun l ->
        let b = f.blocks.(l) in
        let out =
          List.fold_left
            (fun acc s -> IntSet.union acc live_in.(s))
            IntSet.empty (Ir.successors b.term)
        in
        let inn = IntSet.union use.(l) (IntSet.diff out def.(l)) in
        if not (IntSet.equal out live_out.(l)) || not (IntSet.equal inn live_in.(l)) then begin
          live_out.(l) <- out;
          live_in.(l) <- inn;
          changed := true
        end)
      (List.rev (Ir.reverse_postorder f))
  done;
  { live_in; live_out }

(** Per-instruction live sets for a single block, walking backwards from
    [live_out]. Returns the set live {e after} each instruction, in
    instruction order. *)
let per_instr_live_after (b : Ir.block) live_out =
  let n = List.length b.instrs in
  let after = Array.make n IntSet.empty in
  let live = ref (List.fold_left (fun acc r -> IntSet.add r acc) live_out (Ir.term_uses b.term)) in
  List.iteri
    (fun rev_i instr ->
      let i = n - 1 - rev_i in
      after.(i) <- !live;
      (match Ir.def_of instr with Some d -> live := IntSet.remove d !live | None -> ());
      List.iter (fun r -> live := IntSet.add r !live) (Ir.uses_of instr))
    (List.rev b.instrs);
  after
