(** Typed trap taxonomy shared by every execution level.

    The IR interpreter, the functional (architectural) simulator and the
    out-of-order timing model all signal runtime faults through the same
    exception so that the differential oracle ({!Emc_diff}) can assert
    {e trap-equivalence} across levels by comparing categories instead of
    string-matching [Failure] messages. Two traps are considered equivalent
    when their {!category} is equal: payloads (the faulting address, the
    diagnostic text) are informational and may legitimately differ between
    the IR-level and machine-level views of the same program. *)

type cause =
  | Div_by_zero  (** integer [Div] with zero divisor *)
  | Rem_by_zero  (** integer [Rem] with zero divisor *)
  | Unaligned_access of int  (** memory access at a non-8-byte-aligned byte address *)
  | Out_of_fuel  (** execution budget exhausted (runaway program) *)
  | Bad_program of string
      (** malformed-program faults only the IR interpreter can detect:
          undefined vregs, unknown callees, arity/type mismatches. Machine
          code produced from verified IR never raises these. *)

exception Trap of cause

(** Stable comparison key: constructor name without payload. *)
let category = function
  | Div_by_zero -> "div-by-zero"
  | Rem_by_zero -> "rem-by-zero"
  | Unaligned_access _ -> "unaligned-access"
  | Out_of_fuel -> "out-of-fuel"
  | Bad_program _ -> "bad-program"

let to_string = function
  | Div_by_zero -> "division by zero"
  | Rem_by_zero -> "remainder by zero"
  | Unaligned_access a -> Printf.sprintf "unaligned access at %#x" a
  | Out_of_fuel -> "out of fuel"
  | Bad_program msg -> "bad program: " ^ msg

let () =
  Printexc.register_printer (function
    | Trap c -> Some ("Trap: " ^ to_string c)
    | _ -> None)
