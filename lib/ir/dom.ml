(** Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm). *)

type t = {
  idom : int array;  (** immediate dominator per label; entry maps to itself;
                         unreachable blocks map to -1 *)
  rpo_index : int array;
}

let compute (f : Ir.func) =
  let n = Array.length f.blocks in
  let rpo = Ir.reverse_postorder f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i l -> rpo_index.(l) <- i) rpo;
  let preds = Ir.predecessors f in
  let idom = Array.make n (-1) in
  idom.(Ir.entry_label) <- Ir.entry_label;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> Ir.entry_label then begin
          let processed = List.filter (fun p -> idom.(p) <> -1) preds.(l) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
              if idom.(l) <> new_idom then begin
                idom.(l) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

(** [dominates t a b] holds when block [a] dominates block [b]. *)
let dominates t a b =
  if b >= Array.length t.idom || t.idom.(b) = -1 then false
  else
    let rec walk x = if x = a then true else if x = t.idom.(x) then false else walk t.idom.(x) in
    walk b

(** Children lists of the dominator tree, indexed by label. *)
let children t =
  let n = Array.length t.idom in
  let kids = Array.make n [] in
  for l = n - 1 downto 0 do
    if t.idom.(l) <> -1 && t.idom.(l) <> l then kids.(t.idom.(l)) <- l :: kids.(t.idom.(l))
  done;
  kids
