(** Structural and type sanity checks for IR programs.

    Run after every optimization pass in tests: catches dangling labels,
    type-confused registers, use of undefined registers (conservatively: a
    register must be defined in some block that dominates the use, or be a
    parameter), and malformed layouts. Raises [Failure] with a description
    on the first violation. *)

module IntSet = Set.Make (Int)

let check_func (p : Ir.program) (f : Ir.func) =
  let fail fmt = Printf.ksprintf (fun s -> failwith (f.Ir.fname ^ ": " ^ s)) fmt in
  let nblocks = Array.length f.blocks in
  (* labels *)
  Array.iteri (fun i b -> if b.Ir.id <> i then fail "block %d has id %d" i b.Ir.id) f.blocks;
  let layout_set = IntSet.of_list f.layout in
  if List.length f.layout <> IntSet.cardinal layout_set then fail "duplicate labels in layout";
  if IntSet.cardinal layout_set <> nblocks then fail "layout misses blocks";
  (match f.layout with
  | l :: _ when l = Ir.entry_label -> ()
  | _ -> fail "layout must start with the entry block");
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s -> if s < 0 || s >= nblocks then fail "L%d: bad successor L%d" b.id s)
        (Ir.successors b.term))
    f.blocks;
  (* register types & call signatures *)
  let ty r =
    match Hashtbl.find_opt f.reg_ty r with
    | Some t -> t
    | None -> fail "unknown vreg v%d" r
  in
  let expect r want what =
    if ty r <> want then
      fail "v%d used as %s but has type %s" r (Ir.string_of_ty want) what
  in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Iconst (d, _) -> expect d Ir.I64 "iconst dst"
          | Ir.Fconst (d, _) -> expect d Ir.F64 "fconst dst"
          | Ir.Ibin (_, d, a, bo) ->
              expect d Ir.I64 "ibin dst";
              List.iter (function Ir.Reg r -> expect r Ir.I64 "ibin src" | Ir.Imm _ -> ()) [ a; bo ]
          | Ir.Fbin (_, d, a, bo) ->
              expect d Ir.F64 "fbin dst";
              expect a Ir.F64 "fbin src";
              expect bo Ir.F64 "fbin src"
          | Ir.Icmp (_, d, a, bo) ->
              expect d Ir.I64 "icmp dst";
              List.iter (function Ir.Reg r -> expect r Ir.I64 "icmp src" | Ir.Imm _ -> ()) [ a; bo ]
          | Ir.Fcmp (_, d, a, bo) ->
              expect d Ir.I64 "fcmp dst";
              expect a Ir.F64 "fcmp src";
              expect bo Ir.F64 "fcmp src"
          | Ir.Load (t, d, a) ->
              expect d t "load dst";
              expect a Ir.I64 "load addr"
          | Ir.Store (t, a, s) ->
              expect a Ir.I64 "store addr";
              expect s t "store src"
          | Ir.Prefetch a -> expect a Ir.I64 "prefetch addr"
          | Ir.Call (d, name, args) -> (
              match Ir.find_func p name with
              | None ->
                  if name <> "__out" then fail "call to unknown function %s" name
              | Some callee ->
                  if List.length args <> List.length callee.params then
                    fail "call %s: arity mismatch" name;
                  List.iter2
                    (fun a pform -> expect a (Ir.reg_type callee pform) "call arg")
                    args callee.params;
                  (match (d, callee.ret_ty) with
                  | Some d, Some t -> expect d t "call result"
                  | Some _, None -> fail "call %s: captures result of void function" name
                  | None, _ -> ()))
          | Ir.ItoF (d, s) ->
              expect d Ir.F64 "itof dst";
              expect s Ir.I64 "itof src"
          | Ir.FtoI (d, s) ->
              expect d Ir.I64 "ftoi dst";
              expect s Ir.F64 "ftoi src"
          | Ir.Mov (t, d, s) ->
              expect d t "mov dst";
              expect s t "mov src")
        b.instrs;
      match b.term with
      | Ir.CondBr (c, _, _) -> expect c Ir.I64 "condbr cond"
      | Ir.Ret (Some r) -> (
          match f.ret_ty with
          | None -> fail "ret with value in void function"
          | Some t -> expect r t "ret value")
      | Ir.Ret None ->
          if f.ret_ty <> None && f.fname <> "__dead" then () (* falls through allowed pre-lowering *)
      | Ir.Br _ -> ())
    f.blocks

let check_program (p : Ir.program) =
  (* unique global and function names *)
  let names = List.map (fun (g : Ir.global) -> g.gname) p.globals in
  if List.length names <> List.length (List.sort_uniq compare names) then
    failwith "duplicate global names";
  let fnames = List.map fst p.funcs in
  if List.length fnames <> List.length (List.sort_uniq compare fnames) then
    failwith "duplicate function names";
  List.iter (fun (_, f) -> check_func p f) p.funcs
