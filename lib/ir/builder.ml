(** Imperative construction helpers for IR functions.

    Used by the frontend lowering, by the inliner, and extensively by tests
    that need hand-built CFGs. *)

type t = {
  func : Ir.func;
  mutable cur : Ir.block;
  mutable sealed : bool;  (** true once the current block's terminator is set *)
}

let create_func ~name ~param_tys ~ret_ty =
  let reg_ty = Hashtbl.create 64 in
  let params = List.mapi (fun i ty -> Hashtbl.replace reg_ty i ty; i) param_tys in
  let entry = { Ir.id = Ir.entry_label; instrs = []; term = Ir.Ret None } in
  let func =
    {
      Ir.fname = name;
      params;
      ret_ty;
      blocks = [| entry |];
      layout = [ Ir.entry_label ];
      next_reg = List.length param_tys;
      reg_ty;
    }
  in
  { func; cur = entry; sealed = false }

let fresh b ty = Ir.fresh_reg b.func ty

let new_block b =
  let blk = Ir.fresh_block b.func in
  b.func.layout <- b.func.layout @ [ blk.id ];
  blk

(** Switch emission to [blk]. *)
let position_at b blk =
  b.cur <- blk;
  b.sealed <- false

let emit b instr =
  if b.sealed then invalid_arg "Builder.emit: block already terminated";
  b.cur.instrs <- b.cur.instrs @ [ instr ]

let terminate b term =
  if not b.sealed then begin
    b.cur.term <- term;
    b.sealed <- true
  end

(* Convenience wrappers returning the destination register. *)

let iconst b v =
  let d = fresh b Ir.I64 in
  emit b (Ir.Iconst (d, v));
  d

let fconst b v =
  let d = fresh b Ir.F64 in
  emit b (Ir.Fconst (d, v));
  d

let ibin b op x y =
  let d = fresh b Ir.I64 in
  emit b (Ir.Ibin (op, d, x, y));
  d

let fbin b op x y =
  let d = fresh b Ir.F64 in
  emit b (Ir.Fbin (op, d, x, y));
  d

let icmp b op x y =
  let d = fresh b Ir.I64 in
  emit b (Ir.Icmp (op, d, x, y));
  d

let fcmp b op x y =
  let d = fresh b Ir.I64 in
  emit b (Ir.Fcmp (op, d, x, y));
  d

let load b ty addr =
  let d = fresh b ty in
  emit b (Ir.Load (ty, d, addr));
  d

let store b ty addr v = emit b (Ir.Store (ty, addr, v))

let call b ~ret name args =
  match ret with
  | None ->
      emit b (Ir.Call (None, name, args));
      None
  | Some ty ->
      let d = fresh b ty in
      emit b (Ir.Call (Some d, name, args));
      Some d

let itof b x =
  let d = fresh b Ir.F64 in
  emit b (Ir.ItoF (d, x));
  d

let ftoi b x =
  let d = fresh b Ir.I64 in
  emit b (Ir.FtoI (d, x));
  d

let mov b ty x =
  let d = fresh b ty in
  emit b (Ir.Mov (ty, d, x));
  d

let finish b = b.func
