(** Reference interpreter for the IR.

    Serves as the semantic oracle: tests and the {!Emc_diff} differential
    harness check that every optimization level and flag combination leaves
    program outputs unchanged by comparing the machine-level functional
    simulation against this interpreter (and O0 IR against optimized IR).
    Arithmetic uses the same 64-bit semantics as the target ISA (OCaml
    native ints; shifts masked to 6 bits; division truncates toward zero;
    IEEE-754 float comparisons, so every ordered comparison involving NaN is
    false and [Ne] is true; [FtoI] of NaN yields 0, matching the machine's
    FTOI). Runtime faults raise the typed {!Trap.Trap} shared with the
    simulators, so trap outcomes are comparable across levels. *)

type value = VI of int | VF of float

type outcome = {
  ret : value option;
  outputs : value list;  (** values passed to the [__out] intrinsic, in order *)
  dyn_instrs : int;  (** dynamic IR instructions executed *)
}

type state = {
  program : Ir.program;
  layout : Memlayout.t;
  mem : float array;  (** word-addressed backing store for F64 cells *)
  imem : int array;  (** word-addressed backing store for I64 cells *)
  mutable outputs : value list;
  mutable dyn : int;
}

exception Trap = Trap.Trap

let create program =
  let layout = Memlayout.compute program in
  let words = Memlayout.mem_words layout in
  {
    program;
    layout;
    mem = Array.make words 0.0;
    imem = Array.make words 0;
    outputs = [];
    dyn = 0;
  }

let word addr =
  if addr land 7 <> 0 then raise (Trap (Trap.Unaligned_access addr));
  addr lsr 3

let global_base st name = Memlayout.base st.layout name

let set_global_int st name idx v = st.imem.(word (global_base st name + (idx * 8))) <- v
let set_global_float st name idx v = st.mem.(word (global_base st name + (idx * 8))) <- v
let get_global_int st name idx = st.imem.(word (global_base st name + (idx * 8)))
let get_global_float st name idx = st.mem.(word (global_base st name + (idx * 8)))

let eval_ibin op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then raise (Trap Trap.Div_by_zero) else a / b
  | Ir.Rem -> if b = 0 then raise (Trap Trap.Rem_by_zero) else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl (b land 63)
  | Ir.Shr -> a lsr (b land 63)
  | Ir.Sra -> a asr (b land 63)

let eval_fbin op a b =
  match op with
  | Ir.FAdd -> a +. b
  | Ir.FSub -> a -. b
  | Ir.FMul -> a *. b
  | Ir.FDiv -> a /. b

let eval_cmp op c = match op with
  | Ir.Eq -> c = 0 | Ir.Ne -> c <> 0 | Ir.Lt -> c < 0 | Ir.Le -> c <= 0 | Ir.Gt -> c > 0 | Ir.Ge -> c >= 0

let icmp op a b = if eval_cmp op (compare (a : int) b) then 1 else 0

(** Float-comparison semantics. [Ieee] (the default, and the machine's
    behaviour) is the spec. [Total_order] is the quarantined pre-fix
    behaviour — OCaml's total-order [compare], under which [NaN = NaN] and
    [NaN < x] hold — kept only so the differential harness can demonstrate
    against a live fixture that it finds and shrinks the divergence this
    very module used to have (see test/test_diff.ml). Never use it for
    real measurements. *)
type fcmp_semantics = Ieee | Total_order

let fcmp_ieee op (a : float) (b : float) =
  let r =
    match op with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Lt -> a < b
    | Ir.Le -> a <= b
    | Ir.Gt -> a > b
    | Ir.Ge -> a >= b
  in
  if r then 1 else 0

let fcmp semantics op (a : float) (b : float) =
  match semantics with
  | Ieee -> fcmp_ieee op a b
  | Total_order -> if eval_cmp op (compare a b) then 1 else 0

(* Register file per activation. *)
type frame = { ints : (int, int) Hashtbl.t; flts : (int, float) Hashtbl.t }

let geti fr r =
  match Hashtbl.find_opt fr.ints r with
  | Some v -> v
  | None -> raise (Trap (Trap.Bad_program (Printf.sprintf "use of undefined int vreg v%d" r)))

let getf fr r =
  match Hashtbl.find_opt fr.flts r with
  | Some v -> v
  | None -> raise (Trap (Trap.Bad_program (Printf.sprintf "use of undefined float vreg v%d" r)))

let operand fr = function Ir.Reg r -> geti fr r | Ir.Imm i -> i

let run ?(fuel = 200_000_000) ?(fcmp_semantics = Ieee) st ~func ~args =
  (* per-run state: a reused [state] must not see the previous run's
     outputs or double-count its dynamic instructions *)
  st.outputs <- [];
  st.dyn <- 0;
  let fuel_left = ref fuel in
  let rec call_func (f : Ir.func) (args : value list) : value option =
    let fr = { ints = Hashtbl.create 32; flts = Hashtbl.create 16 } in
    List.iter2
      (fun p v ->
        match (v, Ir.reg_type f p) with
        | VI i, Ir.I64 -> Hashtbl.replace fr.ints p i
        | VF x, Ir.F64 -> Hashtbl.replace fr.flts p x
        | _ -> raise (Trap (Trap.Bad_program "argument type mismatch")))
      f.params args;
    let rec exec_block l =
      let b = f.blocks.(l) in
      List.iter (exec_instr fr) b.instrs;
      st.dyn <- st.dyn + List.length b.instrs + 1;
      fuel_left := !fuel_left - (List.length b.instrs + 1);
      if !fuel_left <= 0 then raise (Trap Trap.Out_of_fuel);
      match b.term with
      | Ir.Ret None -> None
      | Ir.Ret (Some r) -> (
          match f.ret_ty with
          | Some Ir.I64 -> Some (VI (geti fr r))
          | Some Ir.F64 -> Some (VF (getf fr r))
          | None -> raise (Trap (Trap.Bad_program "ret with value in void function")))
      | Ir.Br l' -> exec_block l'
      | Ir.CondBr (c, a, b') -> exec_block (if geti fr c <> 0 then a else b')
    and exec_instr fr instr =
      match instr with
      | Ir.Iconst (d, v) -> Hashtbl.replace fr.ints d v
      | Ir.Fconst (d, v) -> Hashtbl.replace fr.flts d v
      | Ir.Ibin (op, d, a, b) -> Hashtbl.replace fr.ints d (eval_ibin op (operand fr a) (operand fr b))
      | Ir.Fbin (op, d, a, b) -> Hashtbl.replace fr.flts d (eval_fbin op (getf fr a) (getf fr b))
      | Ir.Icmp (op, d, a, b) -> Hashtbl.replace fr.ints d (icmp op (operand fr a) (operand fr b))
      | Ir.Fcmp (op, d, a, b) ->
          Hashtbl.replace fr.ints d (fcmp fcmp_semantics op (getf fr a) (getf fr b))
      | Ir.Load (Ir.I64, d, a) -> Hashtbl.replace fr.ints d st.imem.(word (geti fr a))
      | Ir.Load (Ir.F64, d, a) -> Hashtbl.replace fr.flts d st.mem.(word (geti fr a))
      | Ir.Store (Ir.I64, a, s) -> st.imem.(word (geti fr a)) <- geti fr s
      | Ir.Store (Ir.F64, a, s) -> st.mem.(word (geti fr a)) <- getf fr s
      | Ir.Prefetch _ -> ()
      | Ir.Call (d, "__out", args) ->
          (match args with
          | [ a ] ->
              let v =
                match Ir.reg_type f a with Ir.I64 -> VI (geti fr a) | Ir.F64 -> VF (getf fr a)
              in
              st.outputs <- v :: st.outputs
          | _ -> raise (Trap (Trap.Bad_program "__out expects one argument")));
          (match d with
          | Some _ -> raise (Trap (Trap.Bad_program "__out returns nothing"))
          | None -> ())
      | Ir.Call (d, name, args) -> (
          let callee =
            match Ir.find_func st.program name with
            | Some c -> c
            | None -> raise (Trap (Trap.Bad_program ("call to unknown function " ^ name)))
          in
          let argv =
            List.map
              (fun a ->
                match Ir.reg_type f a with Ir.I64 -> VI (geti fr a) | Ir.F64 -> VF (getf fr a))
              args
          in
          match (call_func callee argv, d) with
          | Some (VI v), Some d -> Hashtbl.replace fr.ints d v
          | Some (VF v), Some d -> Hashtbl.replace fr.flts d v
          | _, None -> ()
          | None, Some _ ->
              raise (Trap (Trap.Bad_program ("void call result captured: " ^ name))))
      | Ir.ItoF (d, s) -> Hashtbl.replace fr.flts d (float_of_int (geti fr s))
      | Ir.FtoI (d, s) ->
          (* NaN converts to 0, exactly as the machine's FTOI does; keeping
             the conversion total keeps [FtoI] pure for the optimizer *)
          let x = getf fr s in
          Hashtbl.replace fr.ints d (if Float.is_nan x then 0 else int_of_float x)
      | Ir.Mov (Ir.I64, d, s) -> Hashtbl.replace fr.ints d (geti fr s)
      | Ir.Mov (Ir.F64, d, s) -> Hashtbl.replace fr.flts d (getf fr s)
    in
    exec_block Ir.entry_label
  in
  let f =
    match Ir.find_func st.program func with
    | Some f -> f
    | None -> raise (Trap (Trap.Bad_program ("no such function: " ^ func)))
  in
  let ret = call_func f args in
  { ret; outputs = List.rev st.outputs; dyn_instrs = st.dyn }
