(** One-call compiler driver: IR optimization pipeline (Table-1 flags), code
    generation, and post-register-allocation scheduling (the second half of
    -fschedule-insns2), parameterized by the machine description implied by
    the target's issue width — the paper's "one gcc build per functional-unit
    configuration". *)

let compile ?(issue_width = 4) (flags : Emc_opt.Flags.t) (ir : Emc_ir.Ir.program) :
    Emc_isa.Isa.program =
  let opt = Emc_opt.Pipeline.optimize ~issue_width flags ir in
  let prog = Codegen.emit_program ~omit_frame_pointer:flags.omit_frame_pointer opt in
  if flags.schedule_insns2 then
    Postsched.run (Emc_isa.Isa.machine_for_width issue_width) prog
  else prog

(** Compile MiniC source text directly. *)
let compile_source ?issue_width flags src =
  compile ?issue_width flags (Emc_lang.Minic.compile_exn src)
