open Emc_ir
open Emc_isa
open Isa

(** Machine-code emission.

    Walks each function's blocks in layout order, expands IR instructions
    into ISA instructions using the {!Regalloc} assignment, builds the
    prologue/epilogue (stack adjust, RA/FP/callee-saved saves, parameter
    moves), lowers calls with parallel-move resolution for argument
    registers, and finally links all functions into one instruction array
    with a two-instruction start stub ([call main; halt]).

    -fomit-frame-pointer is realized here: with the flag, the prologue drops
    the frame-pointer save/setup (2 instructions) and epilogue restore, and
    r29 joins the allocatable callee-saved pool. *)

type tgt = TNone | TBlock of int | TFunc of string

type einst = { i : Isa.inst; tgt : tgt }

let plain i = { i; tgt = TNone }

(* ------------------------------------------------------------------ *)

type emitter = {
  buf : einst ref array;  (* grown manually *)
  mutable items : einst list;  (* reversed *)
  mutable count : int;
}

let new_emitter () = { buf = [||]; items = []; count = 0 }

let emit e i =
  e.items <- i :: e.items;
  e.count <- e.count + 1

let emit_i e i = emit e (plain i)

(* Parallel move resolution: moves are (dst_preg_or_slot, src_loc, is_fp).
   Conflicts arise only when a destination physical register is the source
   of another pending move; cycles are broken through the scratch pair. *)
let resolve_moves e ~sp_slot_off (moves : (Regalloc.loc * Regalloc.loc * bool) list) =
  let emit_move (dst, src, is_fp) =
    match (dst, src) with
    | Regalloc.Preg d, Regalloc.Preg s ->
        if d <> s then emit_i e (Isa.make (if is_fp then FMOV else MOV) ~rd:d ~rs1:s)
    | Regalloc.Preg d, Regalloc.Slot s ->
        emit_i e (Isa.make (if is_fp then FLD else LD) ~rd:d ~rs1:Isa.r_sp ~imm:(sp_slot_off s))
    | Regalloc.Slot d, Regalloc.Preg s ->
        emit_i e (Isa.make (if is_fp then FST else ST) ~rs1:Isa.r_sp ~rs2:s ~imm:(sp_slot_off d))
    | Regalloc.Slot _, Regalloc.Slot _ -> invalid_arg "resolve_moves: slot-to-slot move"
  in
  let rec go pending =
    match pending with
    | [] -> ()
    | _ ->
        let blocked (dst, _, _) =
          match dst with
          | Regalloc.Preg d ->
              List.exists
                (fun (dst', src', _) ->
                  dst' <> dst && (match src' with Regalloc.Preg s -> s = d | _ -> false))
                pending
          | Regalloc.Slot _ -> false
        in
        let ready, rest = List.partition (fun m -> not (blocked m)) pending in
        if ready <> [] then begin
          List.iter emit_move ready;
          go rest
        end
        else begin
          (* cycle: rotate through scratch *)
          match pending with
          | (dst, src, is_fp) :: others ->
              let scratch = if is_fp then Isa.f_scratch0 else Isa.r_scratch in
              emit_move (Regalloc.Preg scratch, src, is_fp);
              let others =
                List.map
                  (fun (d, s, f) -> if s = src then (d, Regalloc.Preg scratch, f) else (d, s, f))
                  others
              in
              go ((dst, Regalloc.Preg scratch, is_fp) :: others)
          | [] -> ()
        end
  in
  (* drop no-op moves first *)
  go (List.filter (fun (d, s, _) -> d <> s) moves)

(* ------------------------------------------------------------------ *)

let emit_func ~omit_frame_pointer (f : Ir.func) : einst array * (string * int) list =
  let ra = Regalloc.allocate ~omit_frame_pointer f in
  let loc v = ra.Regalloc.loc_of.(v) in
  let has_calls =
    Array.exists
      (fun (b : Ir.block) ->
        List.exists (function Ir.Call (_, g, _) -> g <> "__out" | _ -> false) b.instrs)
      f.Ir.blocks
  in
  (* frame layout *)
  let cursor = ref 0 in
  let ra_off = if has_calls then (let o = !cursor in cursor := o + 8; Some o) else None in
  let fp_off =
    if not omit_frame_pointer then (let o = !cursor in cursor := o + 8; Some o) else None
  in
  let callee_offs =
    List.map
      (fun r ->
        let o = !cursor in
        cursor := o + 8;
        (r, o))
      ra.Regalloc.used_callee_saved
  in
  let spill_base = !cursor in
  let framesize =
    let raw = spill_base + (ra.Regalloc.n_slots * 8) in
    (raw + 15) land lnot 15
  in
  let slot_off s = spill_base + (s * 8) in
  let e = new_emitter () in
  let marks = ref [] in
  (* ---- operand helpers ---- *)
  let read_reg v ~scratch =
    match loc v with
    | Regalloc.Preg p -> p
    | Regalloc.Slot s ->
        let fp = Ir.reg_type f v = Ir.F64 in
        emit_i e (Isa.make (if fp then FLD else LD) ~rd:scratch ~rs1:Isa.r_sp ~imm:(slot_off s));
        scratch
  in
  let read_op op ~scratch =
    match op with
    | Ir.Reg v -> read_reg v ~scratch
    | Ir.Imm k ->
        emit_i e (Isa.make LDI ~rd:scratch ~imm:k);
        scratch
  in
  let dst_reg d ~scratch = match loc d with Regalloc.Preg p -> p | Regalloc.Slot _ -> scratch in
  let finish_dst d reg =
    match loc d with
    | Regalloc.Preg p -> assert (p = reg)
    | Regalloc.Slot s ->
        let fp = Ir.reg_type f d = Ir.F64 in
        emit_i e (Isa.make (if fp then FST else ST) ~rs1:Isa.r_sp ~rs2:reg ~imm:(slot_off s))
  in
  let s0 = Isa.r_scratch and s1 = Isa.r_ret in
  let fs0 = Isa.f_scratch0 and fs1 = Isa.f_scratch1 in
  (* ---- prologue ---- *)
  if framesize > 0 then emit_i e (Isa.make ADDI ~rd:Isa.r_sp ~rs1:Isa.r_sp ~imm:(-framesize));
  (match fp_off with
  | Some o ->
      emit_i e (Isa.make ST ~rs1:Isa.r_sp ~rs2:Isa.r_fp ~imm:o);
      emit_i e (Isa.make MOV ~rd:Isa.r_fp ~rs1:Isa.r_sp)
  | None -> ());
  (match ra_off with
  | Some o -> emit_i e (Isa.make ST ~rs1:Isa.r_sp ~rs2:Isa.r_ra ~imm:o)
  | None -> ());
  List.iter
    (fun (r, o) ->
      emit_i e (Isa.make (if Isa.is_fp_reg r then FST else ST) ~rs1:Isa.r_sp ~rs2:r ~imm:o))
    callee_offs;
  (* parameter moves *)
  let param_moves =
    let ints = ref 0 and fps = ref 0 in
    List.filter_map
      (fun p ->
        let is_fp = Ir.reg_type f p = Ir.F64 in
        let src =
          if is_fp then (
            let r = Isa.f_arg !fps in
            incr fps;
            r)
          else (
            let r = Isa.r_arg !ints in
            incr ints;
            r)
        in
        match loc p with
        | Regalloc.Slot (-1) -> None (* unused parameter *)
        | l -> Some (l, Regalloc.Preg src, is_fp))
      f.Ir.params
  in
  resolve_moves e ~sp_slot_off:slot_off param_moves;
  (* ---- epilogue (emitted at each return) ---- *)
  let emit_epilogue () =
    List.iter
      (fun (r, o) ->
        emit_i e (Isa.make (if Isa.is_fp_reg r then FLD else LD) ~rd:r ~rs1:Isa.r_sp ~imm:o))
      callee_offs;
    (match ra_off with
    | Some o -> emit_i e (Isa.make LD ~rd:Isa.r_ra ~rs1:Isa.r_sp ~imm:o)
    | None -> ());
    (match fp_off with
    | Some o -> emit_i e (Isa.make LD ~rd:Isa.r_fp ~rs1:Isa.r_sp ~imm:o)
    | None -> ());
    if framesize > 0 then emit_i e (Isa.make ADDI ~rd:Isa.r_sp ~rs1:Isa.r_sp ~imm:framesize);
    emit_i e (Isa.make RET)
  in
  (* ---- body ---- *)
  let layout = Array.of_list f.Ir.layout in
  let next_of i = if i + 1 < Array.length layout then Some layout.(i + 1) else None in
  Array.iteri
    (fun li l ->
      let b = f.blocks.(l) in
      marks := (l, e.count) :: !marks;
      List.iter
        (fun instr ->
          match instr with
          | Ir.Iconst (d, v) ->
              let rd = dst_reg d ~scratch:s0 in
              emit_i e (Isa.make LDI ~rd ~imm:v);
              finish_dst d rd
          | Ir.Fconst (d, v) ->
              let rd = dst_reg d ~scratch:fs0 in
              emit_i e (Isa.make LFI ~rd ~fimm:v);
              finish_dst d rd
          | Ir.Ibin (op, d, a, bo) -> (
              let simple mop =
                let ra' = read_op a ~scratch:s0 in
                let rb = read_op bo ~scratch:s1 in
                let rd = dst_reg d ~scratch:s0 in
                emit_i e (Isa.make mop ~rd ~rs1:ra' ~rs2:rb);
                finish_dst d rd
              in
              match (op, a, bo) with
              | Ir.Add, Ir.Reg va, Ir.Imm k | Ir.Add, Ir.Imm k, Ir.Reg va ->
                  let ra' = read_reg va ~scratch:s0 in
                  let rd = dst_reg d ~scratch:s0 in
                  emit_i e (Isa.make ADDI ~rd ~rs1:ra' ~imm:k);
                  finish_dst d rd
              | Ir.Sub, Ir.Reg va, Ir.Imm k ->
                  let ra' = read_reg va ~scratch:s0 in
                  let rd = dst_reg d ~scratch:s0 in
                  emit_i e (Isa.make ADDI ~rd ~rs1:ra' ~imm:(-k));
                  finish_dst d rd
              | Ir.Shl, Ir.Reg va, Ir.Imm k ->
                  let ra' = read_reg va ~scratch:s0 in
                  let rd = dst_reg d ~scratch:s0 in
                  emit_i e (Isa.make SLLI ~rd ~rs1:ra' ~imm:k);
                  finish_dst d rd
              | _ ->
                  let mop =
                    match op with
                    | Ir.Add -> ADD | Ir.Sub -> SUB | Ir.Mul -> MUL | Ir.Div -> DIV
                    | Ir.Rem -> REM | Ir.And -> AND | Ir.Or -> OR | Ir.Xor -> XOR
                    | Ir.Shl -> SLL | Ir.Shr -> SRL | Ir.Sra -> SRA
                  in
                  simple mop)
          | Ir.Fbin (op, d, x, y) ->
              let rx = read_reg x ~scratch:fs0 in
              let ry = read_reg y ~scratch:fs1 in
              let rd = dst_reg d ~scratch:fs0 in
              let mop =
                match op with
                | Ir.FAdd -> FADD | Ir.FSub -> FSUB | Ir.FMul -> FMUL | Ir.FDiv -> FDIV
              in
              emit_i e (Isa.make mop ~rd ~rs1:rx ~rs2:ry);
              finish_dst d rd
          | Ir.Icmp (op, d, a, bo) ->
              let ra' = read_op a ~scratch:s0 in
              let rb = read_op bo ~scratch:s1 in
              let rd = dst_reg d ~scratch:s0 in
              let mop =
                match op with
                | Ir.Eq -> CEQ | Ir.Ne -> CNE | Ir.Lt -> CLT | Ir.Le -> CLE
                | Ir.Gt -> CGT | Ir.Ge -> CGE
              in
              emit_i e (Isa.make mop ~rd ~rs1:ra' ~rs2:rb);
              finish_dst d rd
          | Ir.Fcmp (op, d, x, y) ->
              let rx = read_reg x ~scratch:fs0 in
              let ry = read_reg y ~scratch:fs1 in
              let rd = dst_reg d ~scratch:s0 in
              let mop =
                match op with
                | Ir.Eq -> FCEQ | Ir.Ne -> FCNE | Ir.Lt -> FCLT | Ir.Le -> FCLE
                | Ir.Gt -> FCGT | Ir.Ge -> FCGE
              in
              emit_i e (Isa.make mop ~rd ~rs1:rx ~rs2:ry);
              finish_dst d rd
          | Ir.Load (ty, d, addr) ->
              let raddr = read_reg addr ~scratch:s0 in
              let fp = ty = Ir.F64 in
              let rd = dst_reg d ~scratch:(if fp then fs0 else s0) in
              emit_i e (Isa.make (if fp then FLD else LD) ~rd ~rs1:raddr ~imm:0);
              finish_dst d rd
          | Ir.Store (ty, addr, v) ->
              let raddr = read_reg addr ~scratch:s0 in
              let fp = ty = Ir.F64 in
              let rv = read_reg v ~scratch:(if fp then fs0 else s1) in
              emit_i e (Isa.make (if fp then FST else ST) ~rs1:raddr ~rs2:rv ~imm:0)
          | Ir.Prefetch addr ->
              let raddr = read_reg addr ~scratch:s0 in
              emit_i e (Isa.make PREF ~rs1:raddr ~imm:0)
          | Ir.Call (_, "__out", [ v ]) ->
              let fp = Ir.reg_type f v = Ir.F64 in
              let rv = read_reg v ~scratch:(if fp then fs0 else s0) in
              emit_i e (Isa.make OUT ~rs1:rv)
          | Ir.Call (dst, g, args) ->
              (* argument moves: ints to r1.., fps to f1.. *)
              let ints = ref 0 and fps = ref 0 in
              let moves =
                List.map
                  (fun a ->
                    let is_fp = Ir.reg_type f a = Ir.F64 in
                    let dreg =
                      if is_fp then (
                        let r = Isa.f_arg !fps in
                        incr fps;
                        r)
                      else (
                        let r = Isa.r_arg !ints in
                        incr ints;
                        r)
                    in
                    (Regalloc.Preg dreg, loc a, is_fp))
                  args
              in
              resolve_moves e ~sp_slot_off:slot_off moves;
              emit e { i = Isa.make CALL; tgt = TFunc g };
              (match dst with
              | Some d ->
                  let fp = Ir.reg_type f d = Ir.F64 in
                  let src = if fp then Isa.f_ret else Isa.r_ret in
                  (match loc d with
                  | Regalloc.Preg p ->
                      if p <> src then emit_i e (Isa.make (if fp then FMOV else MOV) ~rd:p ~rs1:src)
                  | Regalloc.Slot s ->
                      emit_i e
                        (Isa.make (if fp then FST else ST) ~rs1:Isa.r_sp ~rs2:src
                           ~imm:(slot_off s)))
              | None -> ())
          | Ir.ItoF (d, s) ->
              let rs = read_reg s ~scratch:s0 in
              let rd = dst_reg d ~scratch:fs0 in
              emit_i e (Isa.make ITOF ~rd ~rs1:rs);
              finish_dst d rd
          | Ir.FtoI (d, s) ->
              let rs = read_reg s ~scratch:fs0 in
              let rd = dst_reg d ~scratch:s0 in
              emit_i e (Isa.make FTOI ~rd ~rs1:rs);
              finish_dst d rd
          | Ir.Mov (ty, d, s) -> (
              let fp = ty = Ir.F64 in
              match (loc d, loc s) with
              | Regalloc.Preg pd, Regalloc.Preg ps ->
                  if pd <> ps then emit_i e (Isa.make (if fp then FMOV else MOV) ~rd:pd ~rs1:ps)
              | Regalloc.Preg pd, Regalloc.Slot ss ->
                  emit_i e (Isa.make (if fp then FLD else LD) ~rd:pd ~rs1:Isa.r_sp ~imm:(slot_off ss))
              | Regalloc.Slot sd, Regalloc.Preg ps ->
                  emit_i e (Isa.make (if fp then FST else ST) ~rs1:Isa.r_sp ~rs2:ps ~imm:(slot_off sd))
              | Regalloc.Slot sd, Regalloc.Slot ss ->
                  let sc = if fp then fs0 else s0 in
                  emit_i e (Isa.make (if fp then FLD else LD) ~rd:sc ~rs1:Isa.r_sp ~imm:(slot_off ss));
                  emit_i e (Isa.make (if fp then FST else ST) ~rs1:Isa.r_sp ~rs2:sc ~imm:(slot_off sd))))
        b.instrs;
      (* terminator *)
      (match b.term with
      | Ir.Ret None ->
          emit_epilogue ()
      | Ir.Ret (Some v) ->
          let fp = Ir.reg_type f v = Ir.F64 in
          let dst = if fp then Isa.f_ret else Isa.r_ret in
          (match loc v with
          | Regalloc.Preg p ->
              if p <> dst then emit_i e (Isa.make (if fp then FMOV else MOV) ~rd:dst ~rs1:p)
          | Regalloc.Slot s ->
              emit_i e (Isa.make (if fp then FLD else LD) ~rd:dst ~rs1:Isa.r_sp ~imm:(slot_off s)));
          emit_epilogue ()
      | Ir.Br l' ->
          if next_of li <> Some l' then emit e { i = Isa.make J; tgt = TBlock l' }
      | Ir.CondBr (c, t, el) ->
          let rc = read_reg c ~scratch:s0 in
          if next_of li = Some el then emit e { i = Isa.make BNEZ ~rs1:rc; tgt = TBlock t }
          else if next_of li = Some t then emit e { i = Isa.make BEQZ ~rs1:rc; tgt = TBlock el }
          else begin
            emit e { i = Isa.make BNEZ ~rs1:rc; tgt = TBlock t };
            emit e { i = Isa.make J; tgt = TBlock el }
          end))
    layout;
  let arr = Array.of_list (List.rev e.items) in
  (* resolve block targets to function-relative pcs *)
  let block_pc l =
    match List.assoc_opt l !marks with
    | Some pc -> pc
    | None -> invalid_arg "codegen: branch to unemitted block"
  in
  let arr =
    Array.map
      (fun ei ->
        match ei.tgt with
        | TBlock l -> { i = { ei.i with imm = block_pc l }; tgt = TNone }
        | _ -> ei)
      arr
  in
  (arr, [])

(* ------------------------------------------------------------------ *)

(** Link a whole program: start stub, then each function;call targets patched; returns the executable image. *)
let emit_program ~omit_frame_pointer (p : Ir.program) : Isa.program =
  let layout = Memlayout.compute p in
  (* stub at pc 0: call main; halt *)
  let pieces =
    List.map (fun (name, f) -> (name, fst (emit_func ~omit_frame_pointer f))) p.funcs
  in
  let stub_len = 2 in
  let starts = ref [] in
  let pc = ref stub_len in
  List.iter
    (fun (name, arr) ->
      starts := (name, !pc) :: !starts;
      pc := !pc + Array.length arr)
    pieces;
  let func_starts = List.rev !starts in
  let total = !pc in
  let insts = Array.make total Isa.nop in
  let main_pc =
    match List.assoc_opt "main" func_starts with
    | Some s -> s
    | None -> invalid_arg "codegen: no main function"
  in
  insts.(0) <- { (Isa.make CALL) with imm = main_pc };
  insts.(1) <- Isa.make HALT;
  List.iter
    (fun (name, arr) ->
      let base = List.assoc name func_starts in
      Array.iteri
        (fun i ei ->
          let inst =
            match ei.tgt with
            | TNone ->
                if Isa.is_cond_branch ei.i.Isa.op || ei.i.Isa.op = J then
                  { ei.i with imm = ei.i.Isa.imm + base }
                else ei.i
            | TFunc g -> (
                match List.assoc_opt g func_starts with
                | Some s -> { ei.i with imm = s }
                | None -> invalid_arg ("codegen: call to unknown function " ^ g))
            | TBlock _ -> assert false
          in
          insts.(base + i) <- inst)
        arr)
    pieces;
  { Isa.insts; entry = 0; layout; globals = List.map (fun g -> (g.Ir.gname, g)) p.globals;
    func_starts }
