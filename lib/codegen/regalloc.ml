open Emc_ir
open Emc_isa

(** Linear-scan register allocation over the linearized function.

    Virtual registers get either a physical register or a stack slot.
    Values live across a call must take callee-saved registers (argument and
    result moves clobber the caller-saved file); others prefer caller-saved.
    When both pools are dry the interval with the furthest end point is
    spilled. Reserved registers (scratch, SP, RA, return regs and — unless
    -fomit-frame-pointer — the frame pointer) never enter the pools. *)

type loc = Preg of int | Slot of int

type t = {
  loc_of : loc array;  (** indexed by vreg *)
  n_slots : int;
  used_callee_saved : int list;  (** physical registers needing save/restore *)
}

type interval = {
  vreg : int;
  start : int;
  stop : int;
  crosses_call : bool;
  is_fp : bool;
  mutable assigned : loc;
}

(* Build live intervals from block-level liveness plus instruction positions. *)
let intervals (f : Ir.func) =
  let live = Liveness.compute f in
  let starts = Hashtbl.create 64 and stops = Hashtbl.create 64 in
  let extend v p =
    (match Hashtbl.find_opt starts v with
    | Some s when s <= p -> ()
    | _ -> Hashtbl.replace starts v p);
    match Hashtbl.find_opt stops v with
    | Some s when s >= p -> ()
    | _ -> Hashtbl.replace stops v p
  in
  (* Instructions occupy even positions; block-entry liveness extends ranges
     to the odd position just before the block's first instruction (and
     parameters to -1). This keeps interval starts that merely mean "live
     here already" strictly before any call at the block's first slot, so
     the crosses-a-call test below can use strict comparison without missing
     parameters or loop-carried values. *)
  let call_positions = ref [] in
  let pos = ref 0 in
  List.iter (fun p -> extend p (-1)) f.Ir.params;
  List.iter
    (fun l ->
      let b = f.blocks.(l) in
      let bstart = (2 * !pos) - 1 in
      Liveness.IntSet.iter (fun v -> extend v bstart) live.live_in.(l);
      List.iter
        (fun i ->
          (match i with Ir.Call _ -> call_positions := (2 * !pos) :: !call_positions | _ -> ());
          List.iter (fun v -> extend v (2 * !pos)) (Ir.uses_of i);
          (match Ir.def_of i with Some d -> extend d (2 * !pos) | None -> ());
          incr pos)
        b.instrs;
      List.iter (fun v -> extend v (2 * !pos)) (Ir.term_uses b.term);
      incr pos;
      let bend = (2 * (!pos - 1)) + 1 in
      Liveness.IntSet.iter (fun v -> extend v bend) live.live_out.(l);
      (* values live into the block were live from its start *)
      Liveness.IntSet.iter (fun v -> extend v bstart) live.live_out.(l))
    f.layout;
  let calls = List.sort compare !call_positions in
  let ivs = ref [] in
  Hashtbl.iter
    (fun v s ->
      let e = Hashtbl.find stops v in
      let crosses = List.exists (fun c -> s < c && c < e) calls in
      ivs :=
        { vreg = v; start = s; stop = e; crosses_call = crosses;
          is_fp = Ir.reg_type f v = Ir.F64; assigned = Slot (-1) }
        :: !ivs)
    starts;
  List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg)) !ivs

let allocate ~omit_frame_pointer (f : Ir.func) : t =
  let ivs = intervals f in
  let int_callee =
    if omit_frame_pointer then Isa.int_callee_saved @ [ Isa.r_fp ] else Isa.int_callee_saved
  in
  (* caller pools exclude scratch/abi-reserved regs (already excluded by the
     Isa pool definitions: r1..r15 / f1..f15) *)
  let free_int_caller = ref Isa.int_caller_saved in
  let free_int_callee = ref int_callee in
  let free_fp_caller = ref Isa.fp_caller_saved in
  let free_fp_callee = ref Isa.fp_callee_saved in
  let used_callee = ref [] in
  let next_slot = ref 0 in
  let active : interval list ref = ref [] in
  let release r is_fp =
    if is_fp then
      if List.mem r Isa.fp_callee_saved then free_fp_callee := r :: !free_fp_callee
      else free_fp_caller := r :: !free_fp_caller
    else if List.mem r int_callee then free_int_callee := r :: !free_int_callee
    else free_int_caller := r :: !free_int_caller
  in
  let take_from pool =
    match !pool with
    | [] -> None
    | r :: rest ->
        pool := rest;
        Some r
  in
  let alloc_reg iv =
    let primary, secondary =
      match (iv.is_fp, iv.crosses_call) with
      | false, true -> (free_int_callee, None)
      | false, false -> (free_int_caller, Some free_int_callee)
      | true, true -> (free_fp_callee, None)
      | true, false -> (free_fp_caller, Some free_fp_callee)
    in
    match take_from primary with
    | Some r -> Some r
    | None -> ( match secondary with Some s -> take_from s | None -> None)
  in
  let spill_slot () =
    let s = !next_slot in
    incr next_slot;
    Slot s
  in
  List.iter
    (fun iv ->
      (* expire *)
      active :=
        List.filter
          (fun a ->
            if a.stop < iv.start then begin
              (match a.assigned with Preg r -> release r a.is_fp | Slot _ -> ());
              false
            end
            else true)
          !active;
      match alloc_reg iv with
      | Some r ->
          iv.assigned <- Preg r;
          if List.mem r int_callee || List.mem r Isa.fp_callee_saved then
            if not (List.mem r !used_callee) then used_callee := r :: !used_callee;
          active := iv :: !active
      | None ->
          (* steal from the active interval (same class & call-compatibility)
             with the furthest end, if it outlives us *)
          let compatible a =
            a.is_fp = iv.is_fp
            && (match a.assigned with Preg r ->
                  (* a register works for us if we don't cross calls, or it
                     is callee-saved *)
                  (not iv.crosses_call)
                  || List.mem r int_callee
                  || List.mem r Isa.fp_callee_saved
               | Slot _ -> false)
          in
          let victim =
            List.fold_left
              (fun acc a ->
                if compatible a then
                  match acc with
                  | Some v when v.stop >= a.stop -> acc
                  | _ -> Some a
                else acc)
              None !active
          in
          (match victim with
          | Some v when v.stop > iv.stop ->
              let r = match v.assigned with Preg r -> r | Slot _ -> assert false in
              v.assigned <- spill_slot ();
              iv.assigned <- Preg r;
              active := iv :: List.filter (fun a -> a != v) !active
          | _ -> iv.assigned <- spill_slot ()))
    ivs;
  let loc_of = Array.make f.Ir.next_reg (Slot (-1)) in
  List.iter (fun iv -> loc_of.(iv.vreg) <- iv.assigned) ivs;
  { loc_of; n_slots = !next_slot; used_callee_saved = List.sort compare !used_callee }
