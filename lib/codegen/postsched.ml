open Emc_isa
open Isa

(** Post-register-allocation scheduling: the second half of gcc's
    -fschedule-insns2 ("perform before and after register allocation").

    Operates on straight-line runs of machine instructions between branch
    targets and control transfers. The dependence DAG is built over physical
    registers (true, anti and output dependences) and memory (stores and
    calls are barriers; loads may reorder among themselves); list scheduling
    then re-emits by critical-path priority under the machine's
    functional-unit constraints. Unlike the pre-RA pass this sees spill code
    and the prologue/epilogue moves, recovering some of the parallelism the
    allocator serialized. *)

let is_barrier op =
  match op with
  | BEQZ | BNEZ | J | CALL | RET | HALT | OUT -> true
  | _ -> false

(* registers read / written by a machine instruction *)
let reads (i : inst) =
  let r = ref [] in
  if i.rs1 >= 0 then r := i.rs1 :: !r;
  if i.rs2 >= 0 then r := i.rs2 :: !r;
  !r

let writes (i : inst) = if i.rd >= 0 then [ i.rd ] else []

let schedule_run (machine : machine) (insts : inst array) lo hi =
  let n = hi - lo in
  if n > 2 && n < 300 then begin
    let sub = Array.sub insts lo n in
    let succs = Array.make n [] in
    let npreds = Array.make n 0 in
    let add_edge i j lat =
      if i <> j then begin
        succs.(i) <- (j, lat) :: succs.(i);
        npreds.(j) <- npreds.(j) + 1
      end
    in
    let last_def = Hashtbl.create 16 in
    let last_uses : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let last_store = ref (-1) in
    let mem_ops = ref [] in
    for j = 0 to n - 1 do
      let ij = sub.(j) in
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with
          | Some i -> add_edge i j (Isa.latency_of sub.(i).op)
          | None -> ());
          Hashtbl.replace last_uses r (j :: Option.value ~default:[] (Hashtbl.find_opt last_uses r)))
        (reads ij);
      List.iter
        (fun r ->
          (match Hashtbl.find_opt last_def r with Some i -> add_edge i j 1 | None -> ());
          List.iter (fun u -> add_edge u j 0)
            (Option.value ~default:[] (Hashtbl.find_opt last_uses r));
          Hashtbl.replace last_def r j;
          Hashtbl.replace last_uses r [])
        (writes ij);
      if Isa.is_mem ij.op then begin
        if Isa.is_store ij.op then begin
          (* stores are ordered after every earlier memory op *)
          List.iter (fun k -> add_edge k j 0) !mem_ops;
          last_store := j
        end
        else if !last_store >= 0 then add_edge !last_store j 1;
        mem_ops := j :: !mem_ops
      end
    done;
    (* critical-path priority *)
    let prio = Array.make n 0 in
    for i = n - 1 downto 0 do
      prio.(i) <-
        List.fold_left
          (fun acc (j, lat) -> max acc (lat + prio.(j)))
          (Isa.latency_of sub.(i).op)
          succs.(i)
    done;
    (* greedy list scheduling under FU constraints *)
    let ready_at = Array.make n 0 in
    let scheduled = Array.make n false in
    let order = ref [] in
    let emitted = ref 0 in
    let cycle = ref 0 in
    while !emitted < n do
      let avail = Hashtbl.create 8 in
      let cap c = Option.value ~default:(Isa.fu_count machine c) (Hashtbl.find_opt avail c) in
      let use c = Hashtbl.replace avail c (cap c - 1) in
      let issued = ref 0 in
      let progress = ref true in
      while !issued < machine.issue_width && !progress do
        progress := false;
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if (not scheduled.(i)) && npreds.(i) = 0 && ready_at.(i) <= !cycle
             && cap (Isa.fu_of sub.(i).op) > 0
          then if !best = -1 || prio.(i) > prio.(!best) then best := i
        done;
        if !best >= 0 then begin
          let i = !best in
          scheduled.(i) <- true;
          use (Isa.fu_of sub.(i).op);
          order := i :: !order;
          incr emitted;
          incr issued;
          progress := true;
          List.iter
            (fun (j, lat) ->
              npreds.(j) <- npreds.(j) - 1;
              ready_at.(j) <- max ready_at.(j) (!cycle + lat))
            succs.(i)
        end
      done;
      incr cycle
    done;
    List.iteri (fun k i -> insts.(lo + k) <- sub.(i)) (List.rev !order)
  end

(** Schedule every straight-line run of [prog]'s instruction array in place
    and return it. Run boundaries are control transfers and branch targets
    (joins), so no instruction moves across a label or a branch. *)
let run (machine : machine) (prog : Isa.program) : Isa.program =
  let n = Array.length prog.insts in
  let is_target = Array.make (n + 1) false in
  Array.iter
    (fun (i : inst) ->
      match i.op with
      | BEQZ | BNEZ | J | CALL -> if i.imm >= 0 && i.imm < n then is_target.(i.imm) <- true
      | _ -> ())
    prog.insts;
  (* function entries are targets too *)
  List.iter (fun (_, pc) -> if pc < n then is_target.(pc) <- true) prog.func_starts;
  let lo = ref 0 in
  let flush hi = if hi - !lo > 1 then schedule_run machine prog.insts !lo hi in
  for i = 0 to n - 1 do
    (* a branch target starts a fresh run; a control transfer (or other
       order-sensitive instruction) ends one and stays in place *)
    if is_target.(i) && i > !lo then begin
      flush i;
      lo := i
    end;
    if is_barrier prog.insts.(i).op then begin
      flush i;
      lo := i + 1
    end
  done;
  flush n;
  prog
