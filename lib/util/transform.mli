(** Scaling helpers used to map predictor variables into the model domain.

    The paper linearly rescales every compiler parameter to [\[-1,1\]] and log2-
    transforms the power-of-two microarchitectural parameters before scaling
    (Table 2's "*" rows). *)

val to_unit : lo:float -> hi:float -> float -> float
(** Affine map of [\[lo,hi\]] onto [\[-1,1\]]. Requires [lo < hi]. *)

val of_unit : lo:float -> hi:float -> float -> float
(** Inverse of {!to_unit}. *)

val log2 : float -> float

val is_pow2 : int -> bool

val clamp : lo:float -> hi:float -> float -> float

val round_to_levels : levels:float array -> float -> float
(** Snap a raw value to the nearest admissible level. [levels] non-empty. *)
