let to_unit ~lo ~hi x =
  if hi <= lo then invalid_arg "Transform.to_unit: hi <= lo";
  ((x -. lo) /. (hi -. lo) *. 2.0) -. 1.0

let of_unit ~lo ~hi u =
  if hi <= lo then invalid_arg "Transform.of_unit: hi <= lo";
  lo +. ((u +. 1.0) /. 2.0 *. (hi -. lo))

let log2 x = log x /. log 2.0

let is_pow2 n = n > 0 && n land (n - 1) = 0

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let round_to_levels ~levels x =
  if Array.length levels = 0 then invalid_arg "Transform.round_to_levels: empty levels";
  let best = ref levels.(0) in
  Array.iter (fun l -> if Float.abs (l -. x) < Float.abs (!best -. x) then best := l) levels;
  !best
