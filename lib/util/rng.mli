(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in the library (Latin hypercube sampling,
    Fedorov exchange, RBF jitter, the genetic algorithm, workload input
    generation) threads one of these states explicitly, so whole experiments
    are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** Derive a statistically independent child generator; advances the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling, with no modulo bias even for bounds close to
    [max_int]. [bound] must be positive. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)], in random order. Requires [k <= n]. *)
