type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_int64

let split t = { state = next_int64 t }

(* Non-negative 62-bit int. *)
let next_nat t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: draws at or above the largest exact multiple of
     [bound] in the 62-bit range are re-drawn, so every residue class is
     equally likely (a bare [mod] over-weights small residues). For small
     bounds the rejection probability is ~bound/2^62, so streams are
     unchanged in practice; bounds near max_int reject ~half the draws. *)
  let limit = max_int / bound * bound in
  let rec go () =
    let v = next_nat t in
    if v >= limit then go () else v mod bound
  in
  go ()

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0,1). *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec u () =
    let x = float t 1.0 in
    if x > 0.0 then x else u ()
  in
  let u1 = u () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let idx = Array.init n Fun.id in
  shuffle t idx;
  Array.sub idx 0 k
