(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance (divides by n); 0 for fewer than 2 samples. *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by n-1); 0 for fewer than 2 samples. *)

val stddev : float array -> float
val sample_stddev : float array -> float

val min : float array -> float
(** Smallest element ([Float.min] semantics: NaN propagates). Raises
    [Invalid_argument] on an empty array — it used to silently return
    [infinity], which then flowed into clamp envelopes as if it were data. *)

val max : float array -> float
(** Largest element ([Float.max] semantics: NaN propagates). Raises
    [Invalid_argument] on an empty array (previously a silent
    [neg_infinity]). *)

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Sorting uses [Float.compare], which places NaNs
    {e before} every number: NaNs in the input occupy the lowest ranks, so
    low percentiles of NaN-contaminated data are NaN while high percentiles
    ignore them. Filter NaNs first if that is not what you want. Raises
    [Invalid_argument] on an empty array or [p] outside the range. *)

val quantiles : float array -> int -> float array
(** [quantiles xs k] returns the k-1 interior quantile cut points. *)

val sum : float array -> float
(** Numerically-stable (Kahan) sum. *)

val geomean : float array -> float
(** Geometric mean of positive values. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. Arrays must have equal length >= 2. *)
