(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance (divides by n); 0 for fewer than 2 samples. *)

val sample_variance : float array -> float
(** Unbiased sample variance (divides by n-1); 0 for fewer than 2 samples. *)

val stddev : float array -> float
val sample_stddev : float array -> float

val min : float array -> float
val max : float array -> float

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val quantiles : float array -> int -> float array
(** [quantiles xs k] returns the k-1 interior quantile cut points. *)

val sum : float array -> float
(** Numerically-stable (Kahan) sum. *)

val geomean : float array -> float
(** Geometric mean of positive values. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. Arrays must have equal length >= 2. *)
