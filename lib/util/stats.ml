let sum xs =
  (* Kahan compensated summation. *)
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let moment2 xs =
  let m = mean xs in
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      let d = x -. m in
      acc := !acc +. (d *. d))
    xs;
  !acc

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else moment2 xs /. float_of_int n

let sample_variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else moment2 xs /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)
let sample_stddev xs = sqrt (sample_variance xs)

(* Folding from infinity would silently report infinity/neg_infinity for an
   empty array — a value that then flows into clamp envelopes and response
   scaling as if it were data. Empty input is a caller bug; fail loudly,
   like [percentile] does. *)
let min xs =
  if Array.length xs = 0 then invalid_arg "Stats.min: empty array";
  Array.fold_left Float.min infinity xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty array";
  Array.fold_left Float.max neg_infinity xs

(* Sort with Float.compare, not polymorphic compare: unboxed comparisons on
   the (hot) histogram path, and explicit NaN ordering (NaNs sort first). *)
let sorted_copy xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let f = rank -. float_of_int lo in
    ((1.0 -. f) *. sorted.(lo)) +. (f *. sorted.(hi))

let percentile xs p = percentile_sorted (sorted_copy xs) p

let median xs = percentile xs 50.0

let quantiles xs k =
  if k < 2 then invalid_arg "Stats.quantiles: k must be >= 2";
  let sorted = sorted_copy xs in
  Array.init (k - 1) (fun i ->
      percentile_sorted sorted (100.0 *. float_of_int (i + 1) /. float_of_int k))

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need >= 2 samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
