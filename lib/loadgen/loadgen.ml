(* Load-generating SLO harness for the serving daemon: forked child
   generators over keep-alive connections, open-loop (coordinated-
   omission-free) or closed-loop pacing, latencies recorded into the
   bounded Metrics histograms and merged exactly like the daemon's own
   cross-worker /metrics aggregation. *)

module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics
module Rng = Emc_util.Rng
module Http = Emc_serve.Http

type target = Tcp of string * int | Unix_sock of string
type mode = Open_loop of float | Closed_loop

type opts = {
  target : target;
  mode : mode;
  concurrency : int;
  duration : float;
  seed : int;
  mix : (string * int) list;
  batch : int;
  timeout : float;
  think : float;
}

let default_mix = [ ("predict", 8); ("predict_batch", 1); ("healthz", 1) ]

let default_opts target =
  { target;
    mode = Closed_loop;
    concurrency = 4;
    duration = 10.0;
    seed = 42;
    mix = default_mix;
    batch = 16;
    timeout = 5.0;
    think = 0.2 }

let known_endpoints = [ "predict"; "predict_batch"; "rank"; "healthz"; "think" ]

let validate_mix mix =
  if mix = [] then Error "empty endpoint mix"
  else
    let rec go = function
      | [] -> Ok ()
      | (name, w) :: rest ->
          if not (List.mem name known_endpoints) then
            Error
              (Printf.sprintf "unknown endpoint %S in mix (want %s)" name
                 (String.concat "|" known_endpoints))
          else if w <= 0 then
            Error (Printf.sprintf "endpoint %S needs a positive weight, got %d" name w)
          else go rest
    in
    go mix

(* -------- connections -------- *)

let connect ~timeout target =
  let fd =
    match target with
    | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with _ -> ()); raise e);
        fd
    | Tcp (host, port) ->
        let addr =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> raise Not_found
              | h -> h.Unix.h_addr_list.(0))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd (Unix.ADDR_INET (addr, port));
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with e -> (try Unix.close fd with _ -> ()); raise e);
        fd
  in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
  fd

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* -------- requests -------- *)

let get_request ~id path =
  Printf.sprintf "GET %s HTTP/1.1\r\nHost: emc-loadgen\r\nX-Request-Id: %s\r\n\r\n" path id

let post_request ~id path body =
  Printf.sprintf
    "POST %s HTTP/1.1\r\nHost: emc-loadgen\r\nX-Request-Id: %s\r\nContent-Type: \
     application/json\r\nContent-Length: %d\r\n\r\n%s"
    path id (String.length body) body

let coded_point rng dims =
  Json.List (List.init dims (fun _ -> Json.Float (Rng.float rng 2.0 -. 1.0)))

(* Bodies are valid by construction (points of the probed
   dimensionality, coded in [-1, 1]), so every 4xx/5xx in the report is
   the server's doing. *)
let build_request ~rng ~dims ~batch ~id = function
  | "healthz" -> get_request ~id "/healthz"
  | "rank" -> get_request ~id "/rank?top=8"
  | "predict" ->
      post_request ~id "/predict"
        (Json.to_string (Json.Obj [ ("point", coded_point rng dims) ]))
  | "predict_batch" ->
      post_request ~id "/predict"
        (Json.to_string
           (Json.Obj
              [ ("points", Json.List (List.init batch (fun _ -> coded_point rng dims))) ]))
  | ep -> invalid_arg ("Loadgen.build_request: " ^ ep)

(* -------- the probe -------- *)

let try_probe ~timeout target =
  match connect ~timeout target with
  | exception e -> Error (Printexc.to_string e)
  | fd -> (
      let finally () = try Unix.close fd with _ -> () in
      match
        write_all fd (get_request ~id:"lg-probe" "/healthz") 0
          (String.length (get_request ~id:"lg-probe" "/healthz"));
        Http.read_response fd
      with
      | exception e ->
          finally ();
          Error (Printexc.to_string e)
      | Error _ ->
          finally ();
          Error "malformed /healthz response"
      | Ok resp ->
          finally ();
          if resp.Http.status <> 200 then
            Error (Printf.sprintf "/healthz returned %d" resp.Http.status)
          else (
            match Json.parse resp.Http.resp_body with
            | Error e -> Error ("bad /healthz JSON: " ^ e)
            | Ok j -> (
                match Json.member "dims" j with
                | Some (Json.Int d) when d > 0 -> Ok d
                | _ -> Error "/healthz carries no positive \"dims\"")))

let probe ?(wait = 5.0) ~timeout target =
  let deadline = Unix.gettimeofday () +. wait in
  let rec go () =
    match try_probe ~timeout target with
    | Ok d -> Ok d
    | Error e ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.1;
          go ()
        end
        else Error e
  in
  go ()

(* -------- one child generator -------- *)

let worker_loop opts dims idx =
  Metrics.reset ();
  let rng = Rng.create (opts.seed + (7919 * idx) + 1) in
  let m_sent = Metrics.counter "loadgen.sent" in
  let m_resp = Metrics.counter "loadgen.responses" in
  let m_2xx = Metrics.counter "loadgen.status_2xx" in
  let m_4xx = Metrics.counter "loadgen.status_4xx" in
  let m_5xx = Metrics.counter "loadgen.status_5xx" in
  let m_conn = Metrics.counter "loadgen.connect_errors" in
  let m_timeout = Metrics.counter "loadgen.timeouts" in
  let m_proto = Metrics.counter "loadgen.protocol_errors" in
  let m_mismatch = Metrics.counter "loadgen.id_mismatches" in
  let m_late = Metrics.counter "loadgen.late" in
  let h_all = Metrics.histogram "loadgen.latency_seconds" in
  let h_by = Hashtbl.create 8 in
  let h_ep name =
    match Hashtbl.find_opt h_by name with
    | Some h -> h
    | None ->
        let h = Metrics.histogram ("loadgen.latency_seconds." ^ name) in
        Hashtbl.add h_by name h;
        h
  in
  let total_weight = List.fold_left (fun a (_, w) -> a + w) 0 opts.mix in
  let pick_endpoint () =
    let r = Rng.int rng total_weight in
    let rec go acc = function
      | [ (name, _) ] -> name
      | (name, w) :: rest -> if r < acc + w then name else go (acc + w) rest
      | [] -> assert false
    in
    go 0 opts.mix
  in
  let conn = ref None in
  let drop_conn () =
    match !conn with
    | None -> ()
    | Some fd ->
        (try Unix.close fd with _ -> ());
        conn := None
  in
  let get_conn () =
    match !conn with
    | Some fd -> Some fd
    | None -> (
        match connect ~timeout:opts.timeout opts.target with
        | fd ->
            conn := Some fd;
            Some fd
        | exception _ ->
            Metrics.incr m_conn;
            None)
  in
  (* Send and read one exchange; a stale keep-alive connection (server
     closed it between our requests) earns one silent retry on a fresh
     connection before anything is counted as an error. *)
  let rec attempt ~retried text =
    match get_conn () with
    | None -> `No_conn
    | Some fd -> (
        if not retried then Metrics.incr m_sent;
        match write_all fd text 0 (String.length text) with
        | exception Unix.Unix_error _ ->
            drop_conn ();
            if retried then begin
              Metrics.incr m_proto;
              `Fail
            end
            else attempt ~retried:true text
        | () -> (
            match Http.read_response fd with
            | Ok resp ->
                if Http.response_header resp "connection" = Some "close" then drop_conn ();
                `Ok resp
            | Error Http.Closed ->
                drop_conn ();
                if retried then begin
                  Metrics.incr m_proto;
                  `Fail
                end
                else attempt ~retried:true text
            | Error Http.Timeout ->
                Metrics.incr m_timeout;
                drop_conn ();
                `Fail
            | Error _ ->
                Metrics.incr m_proto;
                drop_conn ();
                `Fail))
  in
  let seq = ref 0 in
  let start = Unix.gettimeofday () in
  let deadline = start +. opts.duration in
  (* A "think" draw holds the keep-alive connection open without sending
     anything — the slow-client shape that used to pin a whole worker. In
     closed loop the child sleeps [think] (clipped to the deadline); in
     open loop the draw just consumes the arrival. *)
  let do_think () =
    ignore (get_conn ());
    match opts.mode with
    | Open_loop _ -> ()
    | Closed_loop ->
        let dt = Float.min opts.think (deadline -. Unix.gettimeofday ()) in
        if dt > 0.0 then Unix.sleepf dt
  in
  let do_request t0 =
    let ep = pick_endpoint () in
    if ep = "think" then do_think ()
    else begin
    let id = Printf.sprintf "lg%d-%d" idx !seq in
    incr seq;
    let text = build_request ~rng ~dims ~batch:opts.batch ~id ep in
    match attempt ~retried:false text with
    | `No_conn ->
        (* Target unreachable right now: don't spin the CPU re-counting
           connect errors at memory speed. *)
        Unix.sleepf 0.01
    | `Fail -> ()
    | `Ok resp ->
        let dt = Unix.gettimeofday () -. t0 in
        Metrics.incr m_resp;
        Metrics.observe h_all dt;
        Metrics.observe (h_ep ep) dt;
        (if resp.Http.status >= 200 && resp.Http.status < 300 then Metrics.incr m_2xx
         else if resp.Http.status >= 500 then Metrics.incr m_5xx
         else if resp.Http.status >= 400 then Metrics.incr m_4xx);
        if Http.response_header resp "x-request-id" <> Some id then Metrics.incr m_mismatch
    end
  in
  (match opts.mode with
  | Closed_loop ->
      let rec loop () =
        if Unix.gettimeofday () < deadline then begin
          do_request (Unix.gettimeofday ());
          loop ()
        end
      in
      loop ()
  | Open_loop rps ->
      let rate = rps /. float_of_int opts.concurrency in
      let inter_arrival () =
        (* Exponential inter-arrivals: a Poisson open-loop stream. The
           argument of log is in (0, 1] so this never overflows. *)
        -.Float.log (1.0 -. Rng.float rng 1.0) /. rate
      in
      let next = ref (start +. inter_arrival ()) in
      let rec loop () =
        let sched = !next in
        if sched < deadline then begin
          next := sched +. inter_arrival ();
          let now = Unix.gettimeofday () in
          if sched > now then Unix.sleepf (sched -. now) else Metrics.incr m_late;
          (* Latency counts from the scheduled arrival: a stalled server
             is charged for the queueing delay it caused (no coordinated
             omission). *)
          do_request sched;
          loop ()
        end
      in
      loop ());
  drop_conn ();
  (Metrics.snapshot (), Unix.gettimeofday () -. start)

(* -------- fork / collect (the lib/par pattern) -------- *)

type child_result = ((Metrics.snapshot * float), string) result

let spawn f =
  let rfd, wfd = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close rfd;
      Emc_obs.Trace.disable ();
      let result : child_result =
        try Ok (f ()) with e -> Error (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr wfd in
      Marshal.to_channel oc result [];
      flush oc;
      Unix._exit 0
  | pid ->
      Unix.close wfd;
      (pid, rfd)

let collect (pid, rfd) : child_result =
  let ic = Unix.in_channel_of_descr rfd in
  let result =
    match (Marshal.from_channel ic : child_result) with
    | r -> r
    | exception _ -> Error (Printf.sprintf "child %d died without reporting" pid)
  in
  close_in_noerr ic;
  let rec reap () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap ();
  result

(* -------- the report -------- *)

type report = {
  r_mode : mode;
  r_concurrency : int;
  r_wall_s : float;
  r_sent : int;
  r_responses : int;
  r_achieved_rps : float;
  r_2xx : int;
  r_4xx : int;
  r_5xx : int;
  r_connect_errors : int;
  r_timeouts : int;
  r_protocol_errors : int;
  r_id_mismatches : int;
  r_late : int;
  r_latency : Metrics.hsnap option;
  r_by_endpoint : (string * Metrics.hsnap) list;
  r_snapshot : Metrics.snapshot;
}

let latency_prefix = "loadgen.latency_seconds."

let report_of ~mode ~concurrency ~wall snapshot =
  let c name = Option.value ~default:0 (List.assoc_opt name (Metrics.snapshot_counters snapshot)) in
  let hists = Metrics.snapshot_histograms snapshot in
  let responses = c "loadgen.responses" in
  let by_endpoint =
    List.filter_map
      (fun (name, h) ->
        let n = String.length latency_prefix in
        if String.length name > n && String.sub name 0 n = latency_prefix then
          Some (String.sub name n (String.length name - n), h)
        else None)
      hists
  in
  { r_mode = mode;
    r_concurrency = concurrency;
    r_wall_s = wall;
    r_sent = c "loadgen.sent";
    r_responses = responses;
    r_achieved_rps = (if wall > 0.0 then float_of_int responses /. wall else 0.0);
    r_2xx = c "loadgen.status_2xx";
    r_4xx = c "loadgen.status_4xx";
    r_5xx = c "loadgen.status_5xx";
    r_connect_errors = c "loadgen.connect_errors";
    r_timeouts = c "loadgen.timeouts";
    r_protocol_errors = c "loadgen.protocol_errors";
    r_id_mismatches = c "loadgen.id_mismatches";
    r_late = c "loadgen.late";
    r_latency = List.assoc_opt "loadgen.latency_seconds" hists;
    r_by_endpoint = by_endpoint;
    r_snapshot = snapshot }

let percentile r q = Option.bind r.r_latency (fun h -> Metrics.hsnap_percentile h q)

let run opts =
  if opts.concurrency < 1 then Error "connections must be >= 1"
  else if opts.duration <= 0.0 then Error "duration must be positive"
  else if opts.think <= 0.0 then Error "think time must be positive"
  else if (match opts.mode with Open_loop r -> r <= 0.0 | Closed_loop -> false) then
    Error "target rps must be positive"
  else
    match validate_mix opts.mix with
    | Error e -> Error e
    | Ok () -> (
        match probe ~timeout:opts.timeout opts.target with
        | Error e -> Error ("target probe failed: " ^ e)
        | Ok dims ->
            let previous_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
            let children =
              List.init opts.concurrency (fun i -> spawn (fun () -> worker_loop opts dims i))
            in
            let results = List.map collect children in
            Sys.set_signal Sys.sigpipe previous_sigpipe;
            let failures =
              List.filter_map (function Error e -> Some e | Ok _ -> None) results
            in
            if failures <> [] then Error (String.concat "; " failures)
            else
              let merged, wall =
                List.fold_left
                  (fun (acc, wall) -> function
                    | Ok (snap, w) -> (Metrics.merge acc snap, Float.max wall w)
                    | Error _ -> (acc, wall))
                  (Metrics.snapshot_empty, 0.0) results
              in
              Ok (report_of ~mode:opts.mode ~concurrency:opts.concurrency ~wall merged))

(* -------- JSON report -------- *)

let latency_json h =
  match Metrics.hsnap_stats h with
  | None -> Json.Obj [ ("count", Json.Int 0) ]
  | Some s ->
      let p q = match Metrics.hsnap_percentile h q with Some v -> Json.Float v | None -> Json.Null in
      Json.Obj
        [ ("count", Json.Int s.Metrics.count);
          ("mean", Json.Float s.Metrics.mean);
          ("min", Json.Float s.Metrics.min);
          ("max", Json.Float s.Metrics.max);
          ("p50", Json.Float s.Metrics.p50);
          ("p90", Json.Float s.Metrics.p90);
          ("p99", Json.Float s.Metrics.p99);
          ("p999", p 99.9) ]

let report_to_json r =
  let mode_fields =
    match r.r_mode with
    | Open_loop rps -> [ ("mode", Json.Str "open"); ("target_rps", Json.Float rps) ]
    | Closed_loop -> [ ("mode", Json.Str "closed") ]
  in
  Json.Obj
    ([ ("schema", Json.Str "emc-loadgen-report/1") ]
    @ mode_fields
    @ [ ("concurrency", Json.Int r.r_concurrency);
        ("duration_s", Json.Float r.r_wall_s);
        ("sent", Json.Int r.r_sent);
        ("responses", Json.Int r.r_responses);
        ("achieved_rps", Json.Float r.r_achieved_rps);
        ("latency_s",
         match r.r_latency with
         | Some h -> latency_json h
         | None -> Json.Obj [ ("count", Json.Int 0) ]);
        ("by_endpoint", Json.Obj (List.map (fun (n, h) -> (n, latency_json h)) r.r_by_endpoint));
        ("errors",
         Json.Obj
           [ ("connect", Json.Int r.r_connect_errors);
             ("timeout", Json.Int r.r_timeouts);
             ("protocol", Json.Int r.r_protocol_errors);
             ("status_4xx", Json.Int r.r_4xx);
             ("status_5xx", Json.Int r.r_5xx);
             ("id_mismatch", Json.Int r.r_id_mismatches) ]);
        ("late", Json.Int r.r_late) ])

(* -------- SLOs -------- *)

type slo = { slo_key : string; slo_bound : float }

let parse_slo s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "SLO %S: want key=bound, e.g. p99=0.05" s)
  | Some i -> (
      let key = String.sub s 0 i in
      let bound = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt bound with
      | None -> Error (Printf.sprintf "SLO %S: bound %S is not a number" s bound)
      | Some b -> Ok { slo_key = key; slo_bound = b })

let errors_total r =
  r.r_connect_errors + r.r_timeouts + r.r_protocol_errors + r.r_4xx + r.r_5xx

let check_slo r { slo_key; slo_bound } =
  let latency f =
    match Option.bind r.r_latency f with
    | Some v -> Some (v, v <= slo_bound)
    | None -> Some (Float.nan, false) (* nothing measured: can't meet a latency SLO *)
  in
  let count_le n =
    let v = float_of_int n in
    Some (v, v <= slo_bound)
  in
  match slo_key with
  | "p50" -> latency (fun h -> Metrics.hsnap_percentile h 50.0)
  | "p90" -> latency (fun h -> Metrics.hsnap_percentile h 90.0)
  | "p99" -> latency (fun h -> Metrics.hsnap_percentile h 99.0)
  | "p999" -> latency (fun h -> Metrics.hsnap_percentile h 99.9)
  | "mean" -> latency (fun h -> Option.map (fun s -> s.Metrics.mean) (Metrics.hsnap_stats h))
  | "max" -> latency (fun h -> Option.map (fun s -> s.Metrics.max) (Metrics.hsnap_stats h))
  | "rps" -> Some (r.r_achieved_rps, r.r_achieved_rps >= slo_bound)
  | "error_rate" ->
      let rate = float_of_int (errors_total r) /. float_of_int (max 1 r.r_sent) in
      Some (rate, rate <= slo_bound)
  | "errors" -> count_le (errors_total r)
  | "5xx" -> count_le r.r_5xx
  | "4xx" -> count_le r.r_4xx
  | "timeouts" -> count_le r.r_timeouts
  | _ -> None
