(** [emc loadgen] — a load-generating SLO harness for the serving daemon.

    The driver forks [concurrency] child generators (the [lib/par] fork
    pattern), each owning one keep-alive connection to the target — so
    [--connections] is a client-side knob, decoupled from the daemon's
    [--workers] count (the multiplexed daemon serves many connections
    per worker). Two pacing modes:

    - {b Open loop} ([--rps R]): each child schedules arrivals by a
      seeded exponential process at [R / concurrency] requests/second
      and measures latency from the {e scheduled} arrival time, not the
      send time — so a stalled server accrues the queueing delay it
      actually caused (no coordinated omission, the wrk2 correction).
    - {b Closed loop}: each child issues requests back-to-back, latency
      measured from send. Throughput is whatever the server sustains.

    Children record latencies into the bounded log-scale histograms of
    {!Emc_obs.Metrics} and ship a registry {!Emc_obs.Metrics.snapshot}
    back over a pipe; the parent merges them bucket-wise — the same
    machinery the daemon's cross-worker [/metrics] uses — and derives
    the report. Everything is deterministic from [seed] except the
    latencies themselves.

    Request bodies are valid by construction: the driver probes
    [GET /healthz] first and builds coded points of the advertised
    dimensionality, so a healthy server serves 200s, and any 4xx/5xx in
    the report is the server's fault, not the generator's. *)

type target =
  | Tcp of string * int  (** host, port *)
  | Unix_sock of string  (** path to the daemon's Unix socket *)

type mode =
  | Open_loop of float  (** target requests/second across all children *)
  | Closed_loop

type opts = {
  target : target;
  mode : mode;
  concurrency : int;  (** child generators, one connection each (>= 1) *)
  duration : float;  (** seconds of load *)
  seed : int;  (** pacing + payload determinism *)
  mix : (string * int) list;
      (** weighted endpoint mix; names: [predict], [predict_batch],
          [rank], [healthz], [think]. Weights are relative integers. A
          [think] draw sends nothing: in closed loop the child sleeps
          [think] seconds while {e holding its keep-alive connection
          open} (the slow-client shape that pinned the old
          one-connection-per-worker daemon); in open loop the draw
          consumes the arrival without a request. *)
  batch : int;  (** points per [predict_batch] request *)
  timeout : float;  (** per-response receive timeout, seconds *)
  think : float;
      (** seconds a closed-loop child holds its connection open on a
          [think] draw (> 0) *)
}

val default_mix : (string * int) list
(** [predict=8, predict_batch=1, healthz=1]. *)

val default_opts : target -> opts
(** Closed loop, 4 children, 10 s, seed 42, {!default_mix}, batch 16,
    5 s timeout, 0.2 s think time. *)

type report = {
  r_mode : mode;
  r_concurrency : int;
  r_wall_s : float;  (** longest child wall-clock, seconds *)
  r_sent : int;  (** requests written to a socket *)
  r_responses : int;  (** well-formed responses read back *)
  r_achieved_rps : float;  (** [r_responses /. r_wall_s] *)
  r_2xx : int;
  r_4xx : int;
  r_5xx : int;
  r_connect_errors : int;
  r_timeouts : int;
  r_protocol_errors : int;  (** unparseable / truncated responses *)
  r_id_mismatches : int;  (** response [X-Request-Id] <> the one sent *)
  r_late : int;  (** open loop: arrivals already overdue when scheduled *)
  r_latency : Emc_obs.Metrics.hsnap option;  (** merged, all endpoints *)
  r_by_endpoint : (string * Emc_obs.Metrics.hsnap) list;
  r_snapshot : Emc_obs.Metrics.snapshot;  (** full merged registry *)
}

val run : opts -> (report, string) result
(** Probe the target, fork the children, drive the load, merge. [Error]
    only for harness-level failure (unreachable target, child crash);
    server-side errors land in the report. *)

val errors_total : report -> int
(** Connect + timeout + protocol + 4xx + 5xx. *)

val percentile : report -> float -> float option
(** [percentile r 99.0] — overall latency percentile in seconds, [None]
    when no response was ever read. *)

val report_to_json : report -> Emc_obs.Json.t
(** Schema ["emc-loadgen-report/1"]: achieved rps, p50/p90/p99/p99.9,
    error counts by class, per-endpoint latency blocks. *)

(** {1 SLOs} *)

type slo = { slo_key : string; slo_bound : float }

val parse_slo : string -> (slo, string) result
(** ["p99=0.050"] style. Keys: [p50 p90 p99 p999 mean max] (latency
    seconds, upper bound), [rps] (lower bound), [error_rate] (errors /
    sent, upper bound), [errors 5xx 4xx timeouts] (counts, upper
    bound). *)

val check_slo : report -> slo -> (float * bool) option
(** [(actual, ok)] for one assertion; [None] for an unknown key. A
    latency SLO with no responses to measure is a violation. *)
