open Emc_ir
(** The target ISA: a 64-bit load/store RISC machine in the Alpha mold.

    32 integer registers (ids 0–31) and 32 floating-point registers (ids
    32–63) share one register-id namespace, which keeps dependence tracking
    in the simulator uniform. Instructions are fixed 4-byte; a PC is an index
    into the instruction array and the byte address [4*pc] is what the
    I-cache sees.

    Calling convention:
    - [r1]–[r6] / [fa0]–[fa5] carry arguments, [r0] / [f0] the result;
    - [r16]–[r27] and [f16]–[f27] are callee-saved;
    - [r28] and [f28]/[f29] are reserved assembler/spill scratch;
    - [r29] is the frame pointer, allocatable under -fomit-frame-pointer;
    - [r30] is SP, [r31] the return address. *)

type opcode =
  (* constants *)
  | LDI  (** rd <- imm *)
  | LFI  (** rd <- fimm *)
  (* integer ALU *)
  | ADD | SUB | MUL | DIV | REM | AND | OR | XOR | SLL | SRL | SRA
  | ADDI  (** rd <- rs1 + imm *)
  | SLLI  (** rd <- rs1 << imm *)
  (* compare, result 0/1 *)
  | CEQ | CNE | CLT | CLE | CGT | CGE
  (* floating point *)
  | FADD | FSUB | FMUL | FDIV
  | FCEQ | FCNE | FCLT | FCLE | FCGT | FCGE
  | ITOF | FTOI
  (* memory: address rs1 + imm *)
  | LD | ST | FLD | FST | PREF
  (* control *)
  | BEQZ | BNEZ  (** branch to imm when rs1 =/<> 0 *)
  | J  (** jump to imm *)
  | CALL  (** call imm, RA <- pc+1 *)
  | RET  (** jump to RA *)
  (* misc *)
  | MOV | FMOV
  | OUT  (** observable output of rs1 (int or fp register) *)
  | HALT
  | NOP

type inst = {
  op : opcode;
  rd : int;  (** destination register id, -1 when none *)
  rs1 : int;  (** first source, -1 when none *)
  rs2 : int;  (** second source, -1 when none *)
  imm : int;  (** immediate / memory offset / branch or call target pc *)
  fimm : float;  (** FP immediate for {!LFI} *)
}

let nop = { op = NOP; rd = -1; rs1 = -1; rs2 = -1; imm = 0; fimm = 0.0 }
let make ?(rd = -1) ?(rs1 = -1) ?(rs2 = -1) ?(imm = 0) ?(fimm = 0.0) op =
  { op; rd; rs1; rs2; imm; fimm }

(* Register namespace helpers *)
let fp_base = 32
let is_fp_reg r = r >= fp_base

(* ABI registers *)
let r_ret = 0
let r_arg i = 1 + i (* r1..r6 *)
let r_scratch = 28
let r_fp = 29
let r_sp = 30
let r_ra = 31
let f_ret = fp_base (* f0 *)
let f_arg i = fp_base + 1 + i (* f1..f6 *)
let f_scratch0 = fp_base + 28
let f_scratch1 = fp_base + 29

let int_caller_saved = List.init 15 (fun i -> i + 1) (* r1..r15 *)
let int_callee_saved = List.init 12 (fun i -> i + 16) (* r16..r27 *)
let fp_caller_saved = List.init 15 (fun i -> fp_base + 1 + i) (* f1..f15 *)
let fp_callee_saved = List.init 12 (fun i -> fp_base + 16 + i) (* f16..f27 *)

(** Functional unit classes, as in SimpleScalar's sim-outorder. *)
type fu_class = IntAlu | IntMul | FpAlu | FpMul | LdSt | Branch | NoFu

let fu_of = function
  | LDI | ADD | SUB | AND | OR | XOR | SLL | SRL | SRA | ADDI | SLLI | CEQ | CNE | CLT | CLE
  | CGT | CGE | MOV | OUT ->
      IntAlu
  | MUL | DIV | REM -> IntMul
  | FADD | FSUB | FCEQ | FCNE | FCLT | FCLE | FCGT | FCGE | ITOF | FTOI | LFI | FMOV -> FpAlu
  | FMUL | FDIV -> FpMul
  | LD | ST | FLD | FST | PREF -> LdSt
  | BEQZ | BNEZ | J | CALL | RET -> Branch
  | HALT | NOP -> NoFu

(** Execution latency in cycles; memory instructions add cache latency on
    top of this issue-to-ready base. *)
let latency_of = function
  | MUL -> 3
  | DIV | REM -> 12
  | FADD | FSUB | ITOF | FTOI -> 2
  | FCEQ | FCNE | FCLT | FCLE | FCGT | FCGE -> 2
  | FMUL -> 4
  | FDIV -> 12
  | _ -> 1

let is_branch op = match op with BEQZ | BNEZ | J | CALL | RET -> true | _ -> false
let is_cond_branch op = match op with BEQZ | BNEZ -> true | _ -> false
let is_load op = match op with LD | FLD -> true | _ -> false
let is_store op = match op with ST | FST -> true | _ -> false
let is_mem op = match op with LD | FLD | ST | FST | PREF -> true | _ -> false

(** Functional-unit configuration, determined by the issue width as in the
    paper ("we use the issue width parameter to determine the functional
    unit configuration"). *)
type machine = {
  issue_width : int;
  n_int_alu : int;
  n_int_mul : int;
  n_fp_alu : int;
  n_fp_mul : int;
  n_ldst : int;
}

let machine_for_width w =
  match w with
  | 2 -> { issue_width = 2; n_int_alu = 2; n_int_mul = 1; n_fp_alu = 1; n_fp_mul = 1; n_ldst = 1 }
  | 4 -> { issue_width = 4; n_int_alu = 4; n_int_mul = 2; n_fp_alu = 2; n_fp_mul = 2; n_ldst = 2 }
  | 8 -> { issue_width = 8; n_int_alu = 8; n_int_mul = 4; n_fp_alu = 4; n_fp_mul = 4; n_ldst = 4 }
  | w when w >= 1 ->
      { issue_width = w; n_int_alu = w; n_int_mul = max 1 (w / 2); n_fp_alu = max 1 (w / 2);
        n_fp_mul = max 1 (w / 2); n_ldst = max 1 (w / 2) }
  | _ -> invalid_arg "Isa.machine_for_width: width must be positive"

(** Dense index for per-class counters. *)
let fu_index = function
  | IntAlu -> 0 | IntMul -> 1 | FpAlu -> 2 | FpMul -> 3 | LdSt -> 4 | Branch -> 5 | NoFu -> 6

let n_fu_classes = 7

let fu_count m = function
  | IntAlu -> m.n_int_alu
  | IntMul -> m.n_int_mul
  | FpAlu -> m.n_fp_alu
  | FpMul -> m.n_fp_mul
  | LdSt -> m.n_ldst
  | Branch -> m.issue_width
  | NoFu -> m.issue_width

let string_of_opcode = function
  | LDI -> "ldi" | LFI -> "lfi" | ADD -> "add" | SUB -> "sub" | MUL -> "mul" | DIV -> "div"
  | REM -> "rem" | AND -> "and" | OR -> "or" | XOR -> "xor" | SLL -> "sll" | SRL -> "srl"
  | SRA -> "sra" | ADDI -> "addi" | SLLI -> "slli" | CEQ -> "ceq" | CNE -> "cne" | CLT -> "clt"
  | CLE -> "cle" | CGT -> "cgt" | CGE -> "cge" | FADD -> "fadd" | FSUB -> "fsub" | FMUL -> "fmul"
  | FDIV -> "fdiv" | FCEQ -> "fceq" | FCNE -> "fcne" | FCLT -> "fclt" | FCLE -> "fcle"
  | FCGT -> "fcgt" | FCGE -> "fcge" | ITOF -> "itof" | FTOI -> "ftoi" | LD -> "ld" | ST -> "st"
  | FLD -> "fld" | FST -> "fst" | PREF -> "pref" | BEQZ -> "beqz" | BNEZ -> "bnez" | J -> "j"
  | CALL -> "call" | RET -> "ret" | MOV -> "mov" | FMOV -> "fmov" | OUT -> "out" | HALT -> "halt"
  | NOP -> "nop"

let pp_reg fmt r =
  if r < 0 then Format.fprintf fmt "_"
  else if is_fp_reg r then Format.fprintf fmt "f%d" (r - fp_base)
  else Format.fprintf fmt "r%d" r

let pp_inst fmt i =
  Format.fprintf fmt "%-5s %a, %a, %a, imm=%d" (string_of_opcode i.op) pp_reg i.rd pp_reg i.rs1
    pp_reg i.rs2 i.imm

(** A linked executable: instruction array plus data-segment metadata. *)
type program = {
  insts : inst array;
  entry : int;  (** pc of main *)
  layout : Memlayout.t;
  globals : (string * Ir.global) list;
  func_starts : (string * int) list;
}

let global_base (p : program) name = Memlayout.base p.layout name
