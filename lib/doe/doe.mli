(** Design of experiments (paper §3).

    The design space is a grid: each predictor variable has a finite set of
    coded levels in [-1,1]. Candidate points come from Latin hypercube
    sampling; D-optimal subsets are selected with a modified Fedorov
    exchange maximizing det(XᵀX) of the main-effects model matrix. Larger
    determinant ≈ lower variance of fitted coefficients — the paper's
    rationale for D-optimal designs — and the exchange structure makes
    designs extensible, as required by the Figure-1 iteration. *)

type space = {
  names : string array;
  levels : float array array;  (** admissible coded values per dimension *)
}

val dims : space -> int

val expand_main : float array -> float array
(** [expand_main x] is the main-effects model row [1; x1; ...; xk]. *)

val random_point : Emc_util.Rng.t -> space -> float array
(** Uniform draw from the level grid. *)

val random_design : Emc_util.Rng.t -> space -> int -> float array array

val lhs : Emc_util.Rng.t -> space -> int -> float array array
(** Latin hypercube sample: each dimension's column is a stratified
    permutation of its levels, giving better marginal coverage than iid
    draws. *)

val information_matrix : float array array -> Emc_linalg.Mat.t
(** XᵀX of the main-effects expansion, with a tiny ridge so the criterion is
    defined even for degenerate point sets. *)

val log_det_information : float array array -> float
(** The D-criterion: log det of {!information_matrix}. Bigger is better. *)

val d_optimal :
  ?sweeps:int ->
  ?fixed:float array array ->
  Emc_util.Rng.t ->
  space ->
  n:int ->
  candidates:float array array ->
  float array array
(** Modified Fedorov exchange: starting from a random subset of
    [candidates], repeatedly apply the best improving point exchange,
    [sweeps] passes over the design. [fixed] rows (default none) are
    unexchangeable but contribute to the information matrix, so the [n]
    returned rows D-optimally augment an existing design. *)

val generate : ?sweeps:int -> ?cand_factor:int -> Emc_util.Rng.t -> space -> n:int
  -> float array array
(** One-call design generation: LHS candidates ([cand_factor × n] of them
    plus a random batch), then {!d_optimal}. *)

val augment :
  ?sweeps:int ->
  ?cand_factor:int ->
  Emc_util.Rng.t ->
  space ->
  design:float array array ->
  n_extra:int ->
  float array array
(** [augment rng space ~design ~n_extra] picks [n_extra] fresh points that
    maximize the D-criterion of [design ++ extra] with [design] held fixed —
    the design-extensibility step of the paper's Figure-1 iteration. Returns
    only the new rows. *)
