open Emc_util
open Emc_linalg

(** Design of experiments (paper §3).

    The design space is the cross product of per-dimension coded levels (all
    in [-1,1]). Candidate points come from Latin hypercube sampling over the
    level grid; a D-optimal subset is selected with a modified Fedorov
    exchange that maximizes det(XᵀX) of the main-effects model matrix
    (intercept + one column per parameter). Larger determinant ≈ lower
    variance of the fitted coefficients, which is the paper's rationale for
    D-optimality; designs are extensible by running more exchange rounds on
    an augmented point set. *)

type space = {
  names : string array;
  levels : float array array;  (** coded admissible values per dimension *)
}

let dims space = Array.length space.levels

(** Expand a coded point into a main-effects model row [1; x1; ...; xk]. *)
let expand_main x =
  let k = Array.length x in
  Array.init (k + 1) (fun i -> if i = 0 then 1.0 else x.(i - 1))

(** Uniform random point on the level grid. *)
let random_point rng space =
  Array.map (fun levels -> Rng.choice rng levels) space.levels

let random_design rng space n = Array.init n (fun _ -> random_point rng space)

(** Latin hypercube sample over the grid: each dimension's draw sequence is a
    stratified permutation of its levels, giving better marginal coverage
    than iid sampling. *)
let lhs rng space n =
  let k = dims space in
  let columns =
    Array.init k (fun d ->
        let levels = space.levels.(d) in
        let nl = Array.length levels in
        (* repeat levels ceil(n/nl) times, shuffle, take n *)
        let reps = ((n + nl - 1) / nl) + 1 in
        let pool = Array.concat (List.init reps (fun _ -> Array.copy levels)) in
        Rng.shuffle rng pool;
        Array.sub pool 0 n)
  in
  Array.init n (fun i -> Array.init k (fun d -> columns.(d).(i)))

let ridge = 1e-8

let information_matrix points =
  let rows = Array.map expand_main points in
  let x = Mat.of_rows rows in
  let g = Mat.gram x in
  let p = Mat.rows g in
  for i = 0 to p - 1 do
    Mat.set g i i (Mat.get g i i +. ridge)
  done;
  g

(** log det(XᵀX) of the main-effects information matrix — the D-criterion. *)
let log_det_information points = Mat.log_det (information_matrix points)

(** Modified Fedorov exchange: for each design point in turn, consider
    swapping it with every candidate and apply the best improving exchange.
    [sweeps] full passes (2–3 suffice in practice). [fixed] rows are already
    measured and cannot be exchanged, but contribute to the information
    matrix, so the [n] returned rows D-optimally {e augment} them — the
    extensibility property the Figure-1 iteration relies on. *)
let d_optimal ?(sweeps = 3) ?(fixed = [||]) rng space ~n ~candidates =
  let cands = Array.map expand_main candidates in
  let m = Array.length cands in
  if m = 0 then invalid_arg "Doe.d_optimal: no candidates";
  (* start from a random subset of candidates *)
  let idx = Rng.sample_without_replacement rng (min n m) m in
  let design = Array.map (fun i -> Array.copy candidates.(i)) idx in
  (* if n > m, pad with random grid points *)
  let design =
    if Array.length design < n then
      Array.append design (Array.init (n - Array.length design) (fun _ -> random_point rng space))
    else design
  in
  let full design = Array.append fixed design in
  let p = dims space + 1 in
  let minv = ref (Mat.inverse (information_matrix (full design))) in
  let dot v w =
    let acc = ref 0.0 in
    for i = 0 to p - 1 do
      acc := !acc +. (v.(i) *. w.(i))
    done;
    !acc
  in
  (* per-sweep D-criterion trajectory: log det is O(p^3), negligible next
     to the exchange sweep itself, so the telemetry is always on *)
  let logdet = ref (log_det_information (full design)) in
  let h_gain = Emc_obs.Metrics.histogram "doe.sweep_logdet_gain" in
  for sweep = 1 to sweeps do
    for i = 0 to Array.length design - 1 do
      let xi = expand_main design.(i) in
      let mvi = Mat.mul_vec !minv xi in
      let di = dot xi mvi in
      let best_delta = ref 1e-9 and best_j = ref (-1) in
      for j = 0 to m - 1 do
        let xj = cands.(j) in
        let mvj = Mat.mul_vec !minv xj in
        let dj = dot xj mvj in
        let g = dot xi mvj in
        (* Fedorov's delta for exchanging xi with xj *)
        let delta = dj -. di -. ((di *. dj) -. (g *. g)) in
        if delta > !best_delta then begin
          best_delta := delta;
          best_j := j
        end
      done;
      if !best_j >= 0 then begin
        design.(i) <- Array.copy candidates.(!best_j);
        minv := Mat.inverse (information_matrix (full design))
      end
    done;
    let after = log_det_information (full design) in
    let gain = after -. !logdet in
    Emc_obs.Metrics.observe h_gain gain;
    Emc_obs.Log.debug ~src:"doe"
      ~fields:
        [ ("sweep", Emc_obs.Json.Int sweep);
          ("logdet", Emc_obs.Json.Float after);
          ("gain", Emc_obs.Json.Float gain) ]
      "sweep %d/%d: log det(X'X) %.3f (gain %+.3f)" sweep sweeps after gain;
    Emc_obs.Trace.counter "doe.logdet" [ ("logdet", after) ];
    logdet := after
  done;
  design

(** Generate a design of [n] points: LHS candidates + Fedorov exchange. The
    candidate pool size scales with [n]. *)
let generate ?(sweeps = 2) ?(cand_factor = 5) rng space ~n =
  Emc_obs.Trace.with_span ~cat:"doe"
    ~args:(fun () -> [ ("n", Emc_obs.Json.Int n); ("sweeps", Emc_obs.Json.Int sweeps) ])
    "doe.generate"
    (fun () ->
      let candidates =
        Array.append (lhs rng space (cand_factor * n)) (random_design rng space n)
      in
      d_optimal ~sweeps rng space ~n ~candidates)

(** Augment an existing (already measured) design with [n_extra] new points
    chosen D-optimally {e given} the old rows: fresh LHS candidates, Fedorov
    exchange with the old design held fixed. Returns only the new rows. *)
let augment ?(sweeps = 2) ?(cand_factor = 5) rng space ~design ~n_extra =
  Emc_obs.Trace.with_span ~cat:"doe"
    ~args:(fun () ->
      [ ("fixed", Emc_obs.Json.Int (Array.length design));
        ("n_extra", Emc_obs.Json.Int n_extra) ])
    "doe.augment"
    (fun () ->
      let candidates =
        Array.append (lhs rng space (cand_factor * n_extra)) (random_design rng space n_extra)
      in
      d_optimal ~sweeps ~fixed:design rng space ~n:n_extra ~candidates)
