(** Microarchitectural configuration: the 11 parameters of the paper's
    Table 2, with the same ranges, plus the three target configurations of
    Table 5. *)

type t = {
  issue_width : int;  (** #15: 2 or 4; also selects the functional-unit mix *)
  bpred_size : int;  (** #16: entries per table of the combined predictor, 512–8192 *)
  ruu_size : int;  (** #17: register update unit entries, 16–128 *)
  icache_kb : int;  (** #18: 8–128 KB *)
  dcache_kb : int;  (** #19: 8–128 KB *)
  dcache_assoc : int;  (** #20: 1–2 *)
  dcache_lat : int;  (** #21: 1–3 cycles *)
  l2_kb : int;  (** #22: 256–8192 KB, unified *)
  l2_assoc : int;  (** #23: 1–8 *)
  l2_lat : int;  (** #24: 6–16 cycles *)
  mem_lat : int;  (** #25: 50–150 cycles *)
}

val constrained : t
(** Table 5, "Constrained": the low-end corner of the design space. *)

val typical : t
(** Table 5, "Typical": a mid-range superscalar. *)

val aggressive : t
(** Table 5, "Aggressive": the high-end corner. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
