(** Combined branch predictor (paper parameter #16): a bimodal table and a
    gshare-style 2-level table of equal size, arbitrated by a chooser of
    2-bit counters. Calls and returns are treated as perfectly predicted
    (idealized BTB and return-address stack); only conditional-branch
    direction mispredictions cost pipeline cycles. *)

type t = {
  size : int;
  bimodal : Bytes.t;
  pht : Bytes.t;
  chooser : Bytes.t;
  hist_mask : int;
  mutable ghr : int;
  mutable lookups : int;  (** conditional branches seen *)
  mutable mispredicts : int;
}

val create : size:int -> t
(** [size] is the entry count of {e each} component table and must be a
    positive power of two (512–8192 in the paper's design space). *)

val predict : t -> int -> bool
(** Predicted direction for the branch at the given pc, without updating any
    state. *)

val update : t -> int -> bool -> bool
(** [update t pc taken] trains all component tables and the global history
    with the actual outcome, updates statistics, and returns whether the
    prediction made before training was correct. *)

val mispredict_rate : t -> float
