open Emc_isa

(** Out-of-order timing model in the style of SimpleScalar's sim-outorder.

    The core structure is the RUU (register update unit — a unified
    reorder-buffer/reservation-station array, parameter #17), fed by an
    in-order front end (I-cache + combined branch predictor) and drained by
    in-order commit. Per cycle:

    - {b commit}: up to [issue_width] completed entries leave the RUU head;
      stores write the D-cache at commit (store buffer semantics);
    - {b writeback}: issued entries whose latency elapsed become complete; a
      mispredicted branch unblocks the front end [mispredict_extra] cycles
      after completing;
    - {b issue}: up to [issue_width] ready entries (operands complete,
      functional unit of the right class free) begin execution, oldest
      first. Loads check older in-flight stores for a same-word conflict
      (forwarding at 1 cycle once the store has executed); otherwise they
      access the D-cache/L2/memory hierarchy. Prefetches touch the hierarchy
      without stalling anything;
    - {b dispatch}: up to [issue_width] instructions move from the fetch
      queue into free RUU slots, capturing their producers;
    - {b fetch}: up to [issue_width] sequential instructions per cycle; a
      taken branch ends the fetch group; an I-cache miss stalls the front
      end; a mispredicted conditional branch blocks fetch until the branch
      resolves (the simulator is trace-driven, so wrong-path instructions
      are modeled as front-end bubbles, a standard approximation).

    The model is driven by the functional simulator's dynamic stream, so
    each run is tied to one binary and one input — IPC comparisons across
    different binaries are meaningless, which is exactly why the paper (and
    this reproduction) measures whole-program cycles. *)

type entry = {
  mutable seq : int;
  mutable idx : int;  (** static instruction index *)
  mutable fu : Isa.fu_class;
  mutable dst : int;  (** arch register id or -1 *)
  mutable dep1_slot : int;  (** RUU slot of producer 1, -1 if none *)
  mutable dep1_seq : int;
  mutable dep2_slot : int;
  mutable dep2_seq : int;
  mutable addr : int;
  mutable is_load : bool;
  mutable is_store : bool;
  mutable is_pref : bool;
  mutable is_branch : bool;
  mutable mispred : bool;
  mutable state : int;  (** 0 = waiting, 1 = issued, 2 = completed *)
  mutable complete_at : int;
  mutable valid : bool;
}

let mispredict_extra = 3
let ifq_size = 16

type fetch_item = { fdyn : Func.dyn; fmispred : bool }

type t = {
  cfg : Config.t;
  machine : Isa.machine;
  mem : Memsys.t;
  bpred : Bpred.t;
  func : Func.t;
  prog : Isa.program;
  ruu : entry array;
  mutable head : int;
  mutable count : int;
  mutable seq : int;
  ifq : fetch_item Queue.t;
  mutable fetch_blocked_until : int;  (** -1 means blocked on a branch resolution *)
  mutable last_fetch_line : int;
  mutable cycle : int;
  mutable committed : int;
  mutable trace_done : bool;
  (* per-arch-register producer tracking *)
  prod_slot : int array;  (** 64 entries; -1 when value is architectural *)
  prod_seq : int array;
  mutable branch_mispredicts : int;
  mutable detail_instrs : int;
  (* per-run performance counters (see {!counters}): stall cycles are
     detailed-mode cycles in which the corresponding stage made no
     progress while it had work available *)
  mutable issued_total : int;
  mutable fetch_stall_cycles : int;
  mutable issue_stall_cycles : int;
  mutable commit_stall_cycles : int;
}

let fresh_entry () =
  {
    seq = -1; idx = 0; fu = Isa.IntAlu; dst = -1; dep1_slot = -1; dep1_seq = -1;
    dep2_slot = -1; dep2_seq = -1; addr = -1; is_load = false; is_store = false;
    is_pref = false; is_branch = false; mispred = false; state = 0; complete_at = 0;
    valid = false;
  }

let create (cfg : Config.t) (prog : Isa.program) =
  {
    cfg;
    machine = Isa.machine_for_width cfg.issue_width;
    mem = Memsys.create cfg;
    bpred = Bpred.create ~size:cfg.bpred_size;
    func = Func.create prog;
    prog;
    ruu = Array.init cfg.ruu_size (fun _ -> fresh_entry ());
    head = 0;
    count = 0;
    seq = 0;
    ifq = Queue.create ();
    fetch_blocked_until = 0;
    last_fetch_line = -1;
    cycle = 0;
    committed = 0;
    trace_done = false;
    prod_slot = Array.make 64 (-1);
    prod_seq = Array.make 64 (-1);
    branch_mispredicts = 0;
    detail_instrs = 0;
    issued_total = 0;
    fetch_stall_cycles = 0;
    issue_stall_cycles = 0;
    commit_stall_cycles = 0;
  }

let func t = t.func

(* sources of a static instruction, in the unified register namespace *)
let sources (i : Isa.inst) =
  match i.op with
  | ST | FST -> (i.rs1, i.rs2)
  | _ -> (i.rs1, i.rs2)

let dep_ready t slot seq =
  slot < 0
  ||
  let e = t.ruu.(slot) in
  (not e.valid) || e.seq <> seq || e.state = 2

let entry_ready t (e : entry) =
  dep_ready t e.dep1_slot e.dep1_seq && dep_ready t e.dep2_slot e.dep2_seq

(* Is there an older in-flight store to the same word? Returns
   [`Forward] when that store has executed (data available),
   [`Conflict] when it has not, [`None] otherwise. *)
let older_store_conflict t slot =
  let result = ref `None in
  let i = ref t.head in
  while !i <> slot do
    let e = t.ruu.(!i) in
    if e.valid && e.is_store && e.addr lsr 3 = t.ruu.(slot).addr lsr 3 then
      result := (if e.state = 2 then `Forward else `Conflict);
    i := (!i + 1) mod Array.length t.ruu
  done;
  !result

(* ---------- pipeline stages ---------- *)

let commit t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.machine.Isa.issue_width && t.count > 0 do
    let e = t.ruu.(t.head) in
    if e.valid && e.state = 2 && e.complete_at <= t.cycle then begin
      if e.is_store then ignore (Memsys.access_d t.mem e.addr);
      (* clear producer tracking if we are still the last writer *)
      if e.dst >= 0 && t.prod_slot.(e.dst) = t.head && t.prod_seq.(e.dst) = e.seq then begin
        t.prod_slot.(e.dst) <- -1;
        t.prod_seq.(e.dst) <- -1
      end;
      e.valid <- false;
      t.head <- (t.head + 1) mod Array.length t.ruu;
      t.count <- t.count - 1;
      t.committed <- t.committed + 1;
      incr n
    end
    else continue_ := false
  done

let writeback t =
  let i = ref t.head in
  for _ = 1 to t.count do
    let e = t.ruu.(!i) in
    if e.valid && e.state = 1 && e.complete_at <= t.cycle then begin
      e.state <- 2;
      if e.is_branch && e.mispred && t.fetch_blocked_until < 0 then
        t.fetch_blocked_until <- t.cycle + mispredict_extra
    end;
    i := (!i + 1) mod Array.length t.ruu
  done

let issue t =
  let avail_int_alu = ref t.machine.Isa.n_int_alu in
  let avail_int_mul = ref t.machine.Isa.n_int_mul in
  let avail_fp_alu = ref t.machine.Isa.n_fp_alu in
  let avail_fp_mul = ref t.machine.Isa.n_fp_mul in
  let avail_ldst = ref t.machine.Isa.n_ldst in
  let avail_branch = ref t.machine.Isa.issue_width in
  let counter = function
    | Isa.IntAlu -> avail_int_alu
    | Isa.IntMul -> avail_int_mul
    | Isa.FpAlu -> avail_fp_alu
    | Isa.FpMul -> avail_fp_mul
    | Isa.LdSt -> avail_ldst
    | Isa.Branch | Isa.NoFu -> avail_branch
  in
  let issued = ref 0 in
  let slot = ref t.head in
  let scanned = ref 0 in
  while !scanned < t.count && !issued < t.machine.Isa.issue_width do
    let e = t.ruu.(!slot) in
    if e.valid && e.state = 0 && entry_ready t e then begin
      let c = counter e.fu in
      if !c > 0 then begin
        let ok, lat =
          if e.is_load then
            match older_store_conflict t !slot with
            | `Conflict -> (false, 0)
            | `Forward -> (true, 1)
            | _ -> (true, Memsys.access_d t.mem e.addr)
          else if e.is_store then (true, 1)
          else if e.is_pref then begin
            Memsys.prefetch_d t.mem e.addr;
            (true, 1)
          end
          else (true, Isa.latency_of t.prog.Isa.insts.(e.idx).Isa.op)
        in
        if ok then begin
          decr c;
          e.state <- 1;
          e.complete_at <- t.cycle + lat;
          incr issued;
          t.issued_total <- t.issued_total + 1
        end
      end
    end;
    slot := (!slot + 1) mod Array.length t.ruu;
    incr scanned
  done

let dispatch t =
  let n = ref 0 in
  while !n < t.machine.Isa.issue_width && t.count < Array.length t.ruu
        && not (Queue.is_empty t.ifq) do
    let item = Queue.pop t.ifq in
    let d = item.fdyn in
    let i = t.prog.Isa.insts.(d.Func.idx) in
    let slot = (t.head + t.count) mod Array.length t.ruu in
    let e = t.ruu.(slot) in
    t.seq <- t.seq + 1;
    e.seq <- t.seq;
    e.idx <- d.Func.idx;
    e.fu <- Isa.fu_of i.Isa.op;
    e.dst <- i.Isa.rd;
    e.addr <- d.Func.addr;
    e.is_load <- Isa.is_load i.Isa.op;
    e.is_store <- Isa.is_store i.Isa.op;
    e.is_pref <- i.Isa.op = Isa.PREF;
    e.is_branch <- Isa.is_branch i.Isa.op;
    e.mispred <- item.fmispred;
    e.state <- 0;
    e.complete_at <- max_int;
    e.valid <- true;
    let s1, s2 = sources i in
    let dep r =
      if r < 0 then (-1, -1)
      else if t.prod_slot.(r) >= 0 then (t.prod_slot.(r), t.prod_seq.(r))
      else (-1, -1)
    in
    let d1, q1 = dep s1 in
    let d2, q2 = dep s2 in
    e.dep1_slot <- d1;
    e.dep1_seq <- q1;
    e.dep2_slot <- d2;
    e.dep2_seq <- q2;
    if e.dst >= 0 then begin
      t.prod_slot.(e.dst) <- slot;
      t.prod_seq.(e.dst) <- e.seq
    end;
    t.count <- t.count + 1;
    incr n
  done

(* Fetch up to issue_width instructions; returns true while the trace has
   instructions left. *)
let fetch t =
  if t.fetch_blocked_until >= 0 && t.fetch_blocked_until <= t.cycle && not t.trace_done then begin
    let n = ref 0 in
    let stop = ref false in
    while (not !stop) && !n < t.machine.Isa.issue_width && Queue.length t.ifq < ifq_size do
      (* I-cache: account a line access when crossing into a new line *)
      let pc = t.func.Func.pc in
      let line = pc * 4 / Cache.line_bytes in
      if line <> t.last_fetch_line then begin
        let lat = Memsys.access_i t.mem (pc * 4) in
        t.last_fetch_line <- line;
        if lat > 1 then begin
          t.fetch_blocked_until <- t.cycle + lat;
          stop := true
        end
      end;
      if not !stop then begin
        match Func.step t.func with
        | None ->
            t.trace_done <- true;
            stop := true
        | Some d ->
            t.detail_instrs <- t.detail_instrs + 1;
            let i = t.prog.Isa.insts.(d.Func.idx) in
            if i.Isa.op = Isa.HALT then begin
              t.trace_done <- true;
              stop := true
            end
            else begin
              let mispred =
                if Isa.is_cond_branch i.Isa.op then begin
                  let correct = Bpred.update t.bpred d.Func.idx d.Func.taken in
                  if not correct then t.branch_mispredicts <- t.branch_mispredicts + 1;
                  not correct
                end
                else false
              in
              Queue.push { fdyn = d; fmispred = mispred } t.ifq;
              incr n;
              if mispred then begin
                (* block until the branch resolves *)
                t.fetch_blocked_until <- -1;
                stop := true
              end
              else if d.Func.taken then stop := true (* taken branch ends the group *)
            end
      end
    done
  end

(* one simulated cycle *)
let step_cycle t =
  let committed0 = t.committed and issued0 = t.issued_total in
  let fetched0 = t.detail_instrs and had_entries = t.count > 0 in
  commit t;
  writeback t;
  issue t;
  dispatch t;
  fetch t;
  if had_entries then begin
    if t.committed = committed0 then t.commit_stall_cycles <- t.commit_stall_cycles + 1;
    if t.issued_total = issued0 then t.issue_stall_cycles <- t.issue_stall_cycles + 1
  end;
  if (not t.trace_done) && t.detail_instrs = fetched0 then
    t.fetch_stall_cycles <- t.fetch_stall_cycles + 1;
  t.cycle <- t.cycle + 1

let busy t = t.count > 0 || not (Queue.is_empty t.ifq) || not t.trace_done

(** Per-run performance counters — the raw material of the telemetry layer
    ({!Smarts} folds them into the [sim.*] metrics after every run, and
    [emc simulate --metrics] surfaces them as a report). *)
let counters t =
  [
    ("cycles", t.cycle);
    ("committed_instrs", t.committed);
    ("detail_instrs", t.detail_instrs);
    ("issued_instrs", t.issued_total);
    ("branch_mispredicts", t.branch_mispredicts);
    ("fetch_stall_cycles", t.fetch_stall_cycles);
    ("issue_stall_cycles", t.issue_stall_cycles);
    ("commit_stall_cycles", t.commit_stall_cycles);
    ("l1i_hits", t.mem.Memsys.l1i.Cache.hits);
    ("l1i_misses", t.mem.Memsys.l1i.Cache.misses);
    ("l1d_hits", t.mem.Memsys.l1d.Cache.hits);
    ("l1d_misses", t.mem.Memsys.l1d.Cache.misses);
    ("l2_hits", t.mem.Memsys.l2.Cache.hits);
    ("l2_misses", t.mem.Memsys.l2.Cache.misses);
  ]

(** Run in detailed mode until [instrs] more instructions have been fetched
    (or the program ends). *)
let run_detailed t ~instrs =
  let start = t.detail_instrs in
  while busy t && t.detail_instrs - start < instrs do
    step_cycle t
  done

(** Discard in-flight timing state (RUU, fetch queue, producer tracking)
    while keeping architectural state, caches and predictors. Used when
    SMARTS switches from a detailed window back to functional warming: the
    functional simulator already executed the in-flight instructions at
    fetch, so only their timing bookkeeping must go. *)
let flush_timing t =
  Queue.clear t.ifq;
  Array.iter (fun e -> e.valid <- false) t.ruu;
  t.head <- 0;
  t.count <- 0;
  Array.fill t.prod_slot 0 64 (-1);
  Array.fill t.prod_seq 0 64 (-1);
  if t.fetch_blocked_until < 0 then t.fetch_blocked_until <- t.cycle

(** Run the whole program in detailed mode; returns total cycles. *)
let run_to_completion t =
  while busy t do
    step_cycle t
  done;
  t.cycle

(** Functional warming: advance [instrs] instructions updating caches and
    branch predictor without timing (the SMARTS fast-forward mode). *)
let run_warming t ~instrs =
  let n = ref 0 in
  while !n < instrs && not t.trace_done do
    let pc = t.func.Func.pc in
    let line = pc * 4 / Cache.line_bytes in
    if line <> t.last_fetch_line then begin
      ignore (Memsys.access_i t.mem (pc * 4));
      t.last_fetch_line <- line
    end;
    (match Func.step t.func with
    | None -> t.trace_done <- true
    | Some d ->
        let i = t.prog.Isa.insts.(d.Func.idx) in
        if i.Isa.op = Isa.HALT then t.trace_done <- true
        else begin
          if Isa.is_cond_branch i.Isa.op then ignore (Bpred.update t.bpred d.Func.idx d.Func.taken);
          if d.Func.addr >= 0 then
            if i.Isa.op = Isa.PREF then Memsys.prefetch_d t.mem d.Func.addr
            else ignore (Memsys.access_d t.mem d.Func.addr)
        end);
    incr n
  done
