open Emc_isa

(** Out-of-order timing model in the style of SimpleScalar's sim-outorder.

    The core structure is the RUU (register update unit — a unified
    reorder-buffer/reservation-station array, parameter #17), fed by an
    in-order front end (I-cache + combined branch predictor) and drained by
    in-order commit. Per cycle:

    - {b commit}: up to [issue_width] completed entries leave the RUU head;
      stores write the D-cache at commit (store buffer semantics);
    - {b writeback}: issued entries whose latency elapsed become complete; a
      mispredicted branch unblocks the front end [mispredict_extra] cycles
      after completing;
    - {b issue}: up to [issue_width] ready entries (operands complete,
      functional unit of the right class free) begin execution, oldest
      first. Loads check older in-flight stores for a same-word conflict
      (forwarding at 1 cycle once the store has executed); otherwise they
      access the D-cache/L2/memory hierarchy. Prefetches touch the hierarchy
      without stalling anything;
    - {b dispatch}: up to [issue_width] instructions move from the fetch
      queue into free RUU slots, capturing their producers;
    - {b fetch}: up to [issue_width] sequential instructions per cycle; a
      taken branch ends the fetch group; an I-cache miss stalls the front
      end; a mispredicted conditional branch blocks fetch until the branch
      resolves (the simulator is trace-driven, so wrong-path instructions
      are modeled as front-end bubbles, a standard approximation).

    The model is driven by the functional simulator's dynamic stream, so
    each run is tied to one binary and one input — IPC comparisons across
    different binaries are meaningless, which is exactly why the paper (and
    this reproduction) measures whole-program cycles.

    {2 Scheduling data structures}

    The per-cycle loop is scan-free; every stage runs in time proportional
    to the work it actually performs, not to the RUU size. Cycle counts are
    bit-identical to the straightforward scan-everything formulation (the
    golden tests in [test_sim_golden] and the differential fuzzer enforce
    this):

    - {b completion calendar}: issuing an entry pushes [(seq, slot)] into a
      power-of-two timing wheel bucket keyed by [complete_at]. Writeback
      drains exactly the current cycle's bucket. The wheel is sized past the
      worst memory round-trip ({!Memsys.max_latency}), so a live event is
      never more than one revolution away. Events are validated against the
      entry's [seq] on pop: a [flush_timing] can strand stale events in the
      wheel and they must be ignored, not serviced.
    - {b ready set}: a bitset over RUU slots holding dispatched entries
      whose remaining producer count ([pending]) is zero. Completion wakes
      consumers through per-producer edge lists ([cons_head]/[cons_next],
      edge id = [slot*2 + operand]); dispatch only records edges to
      producers that are still in flight, so each edge is drained exactly
      once. In-order commit guarantees a consumer slot cannot be recycled
      before its producers complete, which is what makes the raw slot in
      the edge safe to dereference. Issue walks set bits oldest-first from
      the RUU head; an entry that fails to launch (FU busy, store-set
      conflict) keeps its bit and retries next cycle, exactly like the
      old rescan.
    - {b store index}: an open-addressing table maps word address → the
      youngest in-flight store to that word, and each store links to the
      previous same-word store ([st_prev_*]). A load walks that chain,
      skipping stores younger than itself and validating [seq] (entries are
      never deleted — commit and flush invalidate them implicitly). This
      replaces the head-to-slot RUU walk per load per issue attempt.
    - {b fetch ring}: the fetch queue is a preallocated ring of
      [ifq_size] slots each embedding a {!Func.dynbuf}; together with
      {!Func.step_into} the front end allocates nothing per instruction.

    All ring/wheel arithmetic uses power-of-two masks or wrap compares —
    there is no [mod]/[div] left on a per-cycle or per-instruction path. *)

type entry = {
  mutable seq : int;
  mutable idx : int;  (** static instruction index *)
  mutable fu : int;  (** index into {!t.fu_avail} (Branch/NoFu share) *)
  mutable dst : int;  (** arch register id or -1 *)
  mutable pending : int;  (** producers not yet complete (0..2) *)
  mutable addr : int;
  mutable is_load : bool;
  mutable is_store : bool;
  mutable is_pref : bool;
  mutable is_branch : bool;
  mutable mispred : bool;
  mutable state : int;  (** 0 = waiting, 1 = issued, 2 = completed *)
  mutable complete_at : int;
  mutable valid : bool;
}

let mispredict_extra = 3
let ifq_size = 16 (* power of two: the fetch queue is a ring *)

type fetch_slot = { f_dyn : Func.dynbuf; mutable f_mispred : bool }

type t = {
  cfg : Config.t;
  machine : Isa.machine;
  mem : Memsys.t;
  bpred : Bpred.t;
  func : Func.t;
  prog : Isa.program;
  ruu : entry array;
  size : int;  (** [Array.length ruu], hoisted out of the wrap compares *)
  mutable head : int;
  mutable count : int;
  mutable seq : int;
  (* fetch queue ring: slots [ifq_head, ifq_head+ifq_len) mod ifq_size *)
  ifq : fetch_slot array;
  mutable ifq_head : int;
  mutable ifq_len : int;
  mutable fetch_blocked_until : int;  (** -1 means blocked on a branch resolution *)
  mutable last_fetch_line : int;
  mutable cycle : int;
  mutable committed : int;
  mutable trace_done : bool;
  (* per-arch-register producer tracking *)
  prod_slot : int array;  (** 64 entries; -1 when value is architectural *)
  prod_seq : int array;
  (* ready set: bit per RUU slot, 32 bits per word *)
  ready : int array;
  (* completion calendar: wheel of buckets, index = complete_at land cal_mask;
     events are (seq lsl slot_bits) lor slot, validated against the entry on
     pop so events stranded by a flush are ignored *)
  cal : int array array;
  cal_len : int array;
  cal_mask : int;
  slot_bits : int;
  slot_mask : int;
  (* producer-to-consumer wakeup edges: cons_head.(producer slot) heads a
     list through cons_next, edge id = (consumer slot)*2 + operand *)
  cons_head : int array;
  cons_next : int array;
  (* in-flight store index: open-addressing word->(slot,seq) plus a per-slot
     link to the previous same-word store; entries validated by seq, never
     deleted (the table is rebuilt larger when half full) *)
  mutable sq_key : int array;
  mutable sq_slot : int array;
  mutable sq_seq : int array;
  mutable sq_mask : int;
  mutable sq_used : int;
  st_prev_slot : int array;
  st_prev_seq : int array;
  (* per-cycle FU budget, reset by [issue]; indexed by [entry.fu] *)
  fu_avail : int array;
  warm_buf : Func.dynbuf;  (** scratch for {!run_warming} *)
  mutable branch_mispredicts : int;
  mutable detail_instrs : int;
  (* per-run performance counters (see {!counters}): stall cycles are
     detailed-mode cycles in which the corresponding stage made no
     progress while it had work available *)
  mutable issued_total : int;
  mutable fetch_stall_cycles : int;
  mutable issue_stall_cycles : int;
  mutable commit_stall_cycles : int;
}

let fresh_entry () =
  {
    seq = -1; idx = 0; fu = 0; dst = -1; pending = 0; addr = -1; is_load = false;
    is_store = false; is_pref = false; is_branch = false; mispred = false; state = 0;
    complete_at = 0; valid = false;
  }

let next_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

let bits_for n =
  let b = ref 0 in
  while 1 lsl !b < n do
    incr b
  done;
  !b

(* Branch and NoFu share the issue-width budget (slot 5); the other classes
   map to their own counter. [Isa.fu_index] orders IntAlu..Branch as 0..5
   with NoFu last. *)
let fu_slot fu =
  let i = Isa.fu_index fu in
  if i > 5 then 5 else i

let create (cfg : Config.t) (prog : Isa.program) =
  let mem = Memsys.create cfg in
  let size = cfg.ruu_size in
  (* strictly larger than any single-event latency: loads bill at most the
     full miss chain, ALU ops at most Isa.latency_of (<= 12) *)
  let wheel = next_pow2 (max (Memsys.max_latency mem) 16 + 2) in
  let slot_bits = max 1 (bits_for size) in
  {
    cfg;
    machine = Isa.machine_for_width cfg.issue_width;
    mem;
    bpred = Bpred.create ~size:cfg.bpred_size;
    func = Func.create prog;
    prog;
    ruu = Array.init size (fun _ -> fresh_entry ());
    size;
    head = 0;
    count = 0;
    seq = 0;
    ifq = Array.init ifq_size (fun _ -> { f_dyn = Func.dynbuf (); f_mispred = false });
    ifq_head = 0;
    ifq_len = 0;
    fetch_blocked_until = 0;
    last_fetch_line = -1;
    cycle = 0;
    committed = 0;
    trace_done = false;
    prod_slot = Array.make 64 (-1);
    prod_seq = Array.make 64 (-1);
    ready = Array.make ((size + 31) lsr 5) 0;
    cal = Array.init wheel (fun _ -> Array.make 4 0);
    cal_len = Array.make wheel 0;
    cal_mask = wheel - 1;
    slot_bits;
    slot_mask = (1 lsl slot_bits) - 1;
    cons_head = Array.make size (-1);
    cons_next = Array.make (2 * size) (-1);
    sq_key = Array.make 64 (-1);
    sq_slot = Array.make 64 0;
    sq_seq = Array.make 64 0;
    sq_mask = 63;
    sq_used = 0;
    st_prev_slot = Array.make size (-1);
    st_prev_seq = Array.make size (-1);
    fu_avail = Array.make 6 0;
    warm_buf = Func.dynbuf ();
    branch_mispredicts = 0;
    detail_instrs = 0;
    issued_total = 0;
    fetch_stall_cycles = 0;
    issue_stall_cycles = 0;
    commit_stall_cycles = 0;
  }

let func t = t.func

(* ---------- ready-set bitset ---------- *)

(* de Bruijn count-trailing-zeros over the low 32 bits (words of [t.ready]
   only ever hold 32 bits) *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = debruijn32.((((x land (-x)) * 0x077CB531) land 0xFFFFFFFF) lsr 27)
let set_ready t slot = t.ready.(slot lsr 5) <- t.ready.(slot lsr 5) lor (1 lsl (slot land 31))

let clear_ready t slot =
  t.ready.(slot lsr 5) <- t.ready.(slot lsr 5) land lnot (1 lsl (slot land 31))

(* ---------- completion calendar ---------- *)

let cal_push t at slot seq =
  assert (at - t.cycle <= t.cal_mask);
  let b = at land t.cal_mask in
  let n = t.cal_len.(b) in
  let bucket =
    let bk = t.cal.(b) in
    if n < Array.length bk then bk
    else begin
      let bigger = Array.make (2 * n) 0 in
      Array.blit bk 0 bigger 0 n;
      t.cal.(b) <- bigger;
      bigger
    end
  in
  bucket.(n) <- (seq lsl t.slot_bits) lor slot;
  t.cal_len.(b) <- n + 1

(* ---------- store index ---------- *)

(* open-addressing probe: returns the slot holding [word] or the free slot
   where it would go; the table never holds deleted keys *)
let sq_probe t word =
  let mask = t.sq_mask in
  let i = ref ((word * 0x9E3779B1) land mask) in
  while
    let k = t.sq_key.(!i) in
    k >= 0 && k <> word
  do
    i := (!i + 1) land mask
  done;
  !i

let sq_grow t =
  let old_key = t.sq_key and old_slot = t.sq_slot and old_seq = t.sq_seq in
  let n = 2 * Array.length old_key in
  t.sq_key <- Array.make n (-1);
  t.sq_slot <- Array.make n 0;
  t.sq_seq <- Array.make n 0;
  t.sq_mask <- n - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = sq_probe t k in
        t.sq_key.(j) <- k;
        t.sq_slot.(j) <- old_slot.(i);
        t.sq_seq.(j) <- old_seq.(i)
      end)
    old_key

(* Is there an older in-flight store to the same word? Returns [`Forward]
   when that store has executed (data available), [`Conflict] when it has
   not, [`None] otherwise. Walks the same-word store chain youngest-first;
   the first link that is stale (committed or flushed, detected by seq
   mismatch) ends the walk — stores commit in order, so everything older on
   the chain is gone too. Program order is compared by [seq]: RUU slot
   numbers wrap, sequence numbers do not. *)
let older_store_conflict t (load : entry) =
  let j = sq_probe t (load.addr lsr 3) in
  if t.sq_key.(j) < 0 then `None
  else begin
    let slot = ref t.sq_slot.(j) and sq = ref t.sq_seq.(j) in
    let result = ref `None in
    let continue_ = ref true in
    while !continue_ do
      let e = t.ruu.(!slot) in
      if not (e.valid && e.is_store && e.seq = !sq) then continue_ := false
      else if e.seq < load.seq then begin
        result := (if e.state = 2 then `Forward else `Conflict);
        continue_ := false
      end
      else begin
        (* store younger than the load: skip to the previous same-word one *)
        sq := t.st_prev_seq.(!slot);
        slot := t.st_prev_slot.(!slot);
        if !slot < 0 then continue_ := false
      end
    done;
    !result
  end

(* ---------- pipeline stages ---------- *)

let commit t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < t.machine.Isa.issue_width && t.count > 0 do
    let e = t.ruu.(t.head) in
    if e.valid && e.state = 2 && e.complete_at <= t.cycle then begin
      if e.is_store then ignore (Memsys.access_d t.mem e.addr);
      (* clear producer tracking if we are still the last writer *)
      if e.dst >= 0 && t.prod_slot.(e.dst) = t.head && t.prod_seq.(e.dst) = e.seq then begin
        t.prod_slot.(e.dst) <- -1;
        t.prod_seq.(e.dst) <- -1
      end;
      e.valid <- false;
      let h = t.head + 1 in
      t.head <- (if h = t.size then 0 else h);
      t.count <- t.count - 1;
      t.committed <- t.committed + 1;
      incr n
    end
    else continue_ := false
  done

(* complete one issued entry: wake its consumers (each pending count drops
   exactly once per recorded edge) and release a resolving mispredict *)
let complete_entry t slot (e : entry) =
  e.state <- 2;
  if e.is_branch && e.mispred && t.fetch_blocked_until < 0 then
    t.fetch_blocked_until <- t.cycle + mispredict_extra;
  let edge = ref t.cons_head.(slot) in
  t.cons_head.(slot) <- -1;
  while !edge >= 0 do
    let c = t.ruu.(!edge lsr 1) in
    c.pending <- c.pending - 1;
    if c.pending = 0 then set_ready t (!edge lsr 1);
    edge := t.cons_next.(!edge)
  done

let writeback t =
  let b = t.cycle land t.cal_mask in
  let n = t.cal_len.(b) in
  if n > 0 then begin
    let bucket = t.cal.(b) in
    for k = 0 to n - 1 do
      let ev = bucket.(k) in
      let slot = ev land t.slot_mask in
      let e = t.ruu.(slot) in
      (* seq check drops events stranded by flush_timing or slot reuse *)
      if e.valid && e.state = 1 && e.seq = ev lsr t.slot_bits then complete_entry t slot e
    done;
    t.cal_len.(b) <- 0
  end

(* try to launch one ready entry; returns true when it issued. FU budget is
   checked before the load-conflict probe — same order as the old scan, so
   cache state mutates identically. *)
let try_issue t slot =
  let e = t.ruu.(slot) in
  if t.fu_avail.(e.fu) = 0 then false
  else begin
    let ok, lat =
      if e.is_load then
        match older_store_conflict t e with
        | `Conflict -> (false, 0)
        | `Forward -> (true, 1)
        | `None -> (true, Memsys.access_d t.mem e.addr)
      else if e.is_store then (true, 1)
      else if e.is_pref then begin
        Memsys.prefetch_d t.mem e.addr;
        (true, 1)
      end
      else (true, Isa.latency_of t.prog.Isa.insts.(e.idx).Isa.op)
    in
    if ok then begin
      t.fu_avail.(e.fu) <- t.fu_avail.(e.fu) - 1;
      e.state <- 1;
      e.complete_at <- t.cycle + lat;
      clear_ready t slot;
      cal_push t e.complete_at slot e.seq;
      t.issued_total <- t.issued_total + 1
    end;
    ok
  end

(* issue ready slots in [lo, hi) in slot order, until [width] are away;
   returns the updated issued count. Slot order from the head is age order,
   so this visits candidates oldest-first like the old full scan. *)
let issue_range t lo hi issued width =
  let issued = ref issued in
  if lo < hi then begin
    let w0 = lo lsr 5 and w1 = (hi - 1) lsr 5 in
    let w = ref w0 in
    while !w <= w1 && !issued < width do
      let word = ref t.ready.(!w) in
      if !w = w0 then word := !word land ((-1) lsl (lo land 31));
      if !w = w1 && hi land 31 <> 0 then word := !word land ((1 lsl (hi land 31)) - 1);
      while !word <> 0 && !issued < width do
        let bit = ctz32 !word in
        word := !word land (!word - 1);
        if try_issue t ((!w lsl 5) lor bit) then incr issued
      done;
      incr w
    done
  end;
  !issued

let issue t =
  let m = t.machine in
  t.fu_avail.(0) <- m.Isa.n_int_alu;
  t.fu_avail.(1) <- m.Isa.n_int_mul;
  t.fu_avail.(2) <- m.Isa.n_fp_alu;
  t.fu_avail.(3) <- m.Isa.n_fp_mul;
  t.fu_avail.(4) <- m.Isa.n_ldst;
  t.fu_avail.(5) <- m.Isa.issue_width;
  let width = m.Isa.issue_width in
  let tail = t.head + t.count in
  if tail <= t.size then ignore (issue_range t t.head tail 0 width)
  else begin
    let issued = issue_range t t.head t.size 0 width in
    if issued < width then ignore (issue_range t 0 (tail - t.size) issued width)
  end

let dispatch t =
  let insts = t.prog.Isa.insts in
  let n = ref 0 in
  while !n < t.machine.Isa.issue_width && t.count < t.size && t.ifq_len > 0 do
    let item = t.ifq.(t.ifq_head) in
    t.ifq_head <- (t.ifq_head + 1) land (ifq_size - 1);
    t.ifq_len <- t.ifq_len - 1;
    let d = item.f_dyn in
    let idx = d.Func.d_idx in
    let i = insts.(idx) in
    let slot =
      let s = t.head + t.count in
      if s >= t.size then s - t.size else s
    in
    let e = t.ruu.(slot) in
    t.seq <- t.seq + 1;
    e.seq <- t.seq;
    e.idx <- idx;
    e.fu <- fu_slot (Isa.fu_of i.Isa.op);
    e.dst <- i.Isa.rd;
    e.addr <- d.Func.d_addr;
    e.is_load <- Isa.is_load i.Isa.op;
    e.is_store <- Isa.is_store i.Isa.op;
    e.is_pref <- i.Isa.op = Isa.PREF;
    e.is_branch <- Isa.is_branch i.Isa.op;
    e.mispred <- item.f_mispred;
    e.state <- 0;
    e.complete_at <- max_int;
    e.valid <- true;
    e.pending <- 0;
    t.cons_head.(slot) <- -1;
    (* Register sources are exactly (rs1, rs2) for every opcode — stores
       read their address base in rs1 and their data in rs2, loads leave
       rs2 = -1 — so no opcode needs special-cased source handling (a match
       distinguishing ST/FST here had identical arms and was collapsed).
       Record a wakeup edge only for producers still in flight: a completed
       or architecturally-committed producer imposes no wait, and skipping
       it here is what guarantees each recorded edge is drained exactly
       once at producer completion. *)
    let dep operand r =
      if r >= 0 then begin
        let p = t.prod_slot.(r) in
        if p >= 0 then begin
          let pe = t.ruu.(p) in
          if pe.valid && pe.seq = t.prod_seq.(r) && pe.state < 2 then begin
            e.pending <- e.pending + 1;
            let edge = (slot lsl 1) lor operand in
            t.cons_next.(edge) <- t.cons_head.(p);
            t.cons_head.(p) <- edge
          end
        end
      end
    in
    dep 0 i.Isa.rs1;
    dep 1 i.Isa.rs2;
    if e.is_store then begin
      let j = sq_probe t (e.addr lsr 3) in
      if t.sq_key.(j) >= 0 then begin
        (* chain to the previous youngest same-word store; possibly stale,
           validated by seq at lookup time *)
        t.st_prev_slot.(slot) <- t.sq_slot.(j);
        t.st_prev_seq.(slot) <- t.sq_seq.(j)
      end
      else begin
        t.sq_key.(j) <- e.addr lsr 3;
        t.sq_used <- t.sq_used + 1;
        t.st_prev_slot.(slot) <- -1;
        t.st_prev_seq.(slot) <- -1
      end;
      t.sq_slot.(j) <- slot;
      t.sq_seq.(j) <- e.seq;
      if 2 * t.sq_used >= Array.length t.sq_key then sq_grow t
    end;
    if e.dst >= 0 then begin
      t.prod_slot.(e.dst) <- slot;
      t.prod_seq.(e.dst) <- e.seq
    end;
    if e.pending = 0 then set_ready t slot;
    t.count <- t.count + 1;
    incr n
  done

(* shared by detailed fetch and functional warming: account one I-cache
   line access when the pc crosses into a new line, returning its latency
   (1 when still within the current line). pc is an instruction index;
   instructions are 4 bytes, so the byte address is pc lsl 2 and the line
   is pc lsr (line_shift - 2). *)
let pc_line_shift =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
  log2 Cache.line_bytes - 2

let ifetch_latency t pc =
  let line = pc lsr pc_line_shift in
  if line = t.last_fetch_line then 1
  else begin
    let lat = Memsys.access_i t.mem (pc lsl 2) in
    t.last_fetch_line <- line;
    lat
  end

(* Fetch up to issue_width instructions into the ring. *)
let fetch t =
  if t.fetch_blocked_until >= 0 && t.fetch_blocked_until <= t.cycle && not t.trace_done
  then begin
    let insts = t.prog.Isa.insts in
    let n = ref 0 in
    let stop = ref false in
    while (not !stop) && !n < t.machine.Isa.issue_width && t.ifq_len < ifq_size do
      let lat = ifetch_latency t t.func.Func.pc in
      if lat > 1 then begin
        t.fetch_blocked_until <- t.cycle + lat;
        stop := true
      end
      else begin
        let item = t.ifq.((t.ifq_head + t.ifq_len) land (ifq_size - 1)) in
        if not (Func.step_into t.func item.f_dyn) then begin
          t.trace_done <- true;
          stop := true
        end
        else begin
          t.detail_instrs <- t.detail_instrs + 1;
          let d = item.f_dyn in
          let i = insts.(d.Func.d_idx) in
          if i.Isa.op = Isa.HALT then begin
            t.trace_done <- true;
            stop := true
          end
          else begin
            let mispred =
              if Isa.is_cond_branch i.Isa.op then begin
                let correct = Bpred.update t.bpred d.Func.d_idx d.Func.d_taken in
                if not correct then t.branch_mispredicts <- t.branch_mispredicts + 1;
                not correct
              end
              else false
            in
            item.f_mispred <- mispred;
            t.ifq_len <- t.ifq_len + 1;
            incr n;
            if mispred then begin
              (* block until the branch resolves *)
              t.fetch_blocked_until <- -1;
              stop := true
            end
            else if d.Func.d_taken then stop := true (* taken branch ends the group *)
          end
        end
      end
    done
  end

(* one simulated cycle *)
let step_cycle t =
  let committed0 = t.committed and issued0 = t.issued_total in
  let fetched0 = t.detail_instrs and had_entries = t.count > 0 in
  commit t;
  writeback t;
  issue t;
  dispatch t;
  fetch t;
  if had_entries then begin
    if t.committed = committed0 then t.commit_stall_cycles <- t.commit_stall_cycles + 1;
    if t.issued_total = issued0 then t.issue_stall_cycles <- t.issue_stall_cycles + 1
  end;
  if (not t.trace_done) && t.detail_instrs = fetched0 then
    t.fetch_stall_cycles <- t.fetch_stall_cycles + 1;
  t.cycle <- t.cycle + 1

let busy t = t.count > 0 || t.ifq_len > 0 || not t.trace_done

(** Per-run performance counters — the raw material of the telemetry layer
    ({!Smarts} folds them into the [sim.*] metrics after every run, and
    [emc simulate --metrics] surfaces them as a report). *)
let counters t =
  [
    ("cycles", t.cycle);
    ("committed_instrs", t.committed);
    ("detail_instrs", t.detail_instrs);
    ("issued_instrs", t.issued_total);
    ("branch_mispredicts", t.branch_mispredicts);
    ("fetch_stall_cycles", t.fetch_stall_cycles);
    ("issue_stall_cycles", t.issue_stall_cycles);
    ("commit_stall_cycles", t.commit_stall_cycles);
    ("l1i_hits", t.mem.Memsys.l1i.Cache.hits);
    ("l1i_misses", t.mem.Memsys.l1i.Cache.misses);
    ("l1d_hits", t.mem.Memsys.l1d.Cache.hits);
    ("l1d_misses", t.mem.Memsys.l1d.Cache.misses);
    ("l2_hits", t.mem.Memsys.l2.Cache.hits);
    ("l2_misses", t.mem.Memsys.l2.Cache.misses);
  ]

(** Run in detailed mode until [instrs] more instructions have been fetched
    (or the program ends). *)
let run_detailed t ~instrs =
  let start = t.detail_instrs in
  while busy t && t.detail_instrs - start < instrs do
    step_cycle t
  done

(** Discard in-flight timing state (RUU, fetch queue, producer tracking)
    while keeping architectural state, caches and predictors. Used when
    SMARTS switches from a detailed window back to functional warming: the
    functional simulator already executed the in-flight instructions at
    fetch, so only their timing bookkeeping must go. The completion
    calendar and store index are {e not} cleared — their stranded events
    and entries carry sequence numbers of invalidated entries and are
    skipped when encountered. [last_fetch_line] deliberately survives: the
    front end is still on the same I-cache line after the flush. *)
let flush_timing t =
  t.ifq_head <- 0;
  t.ifq_len <- 0;
  Array.iter (fun e -> e.valid <- false) t.ruu;
  t.head <- 0;
  t.count <- 0;
  Array.fill t.prod_slot 0 64 (-1);
  Array.fill t.prod_seq 0 64 (-1);
  Array.fill t.ready 0 (Array.length t.ready) 0;
  if t.fetch_blocked_until < 0 then t.fetch_blocked_until <- t.cycle

(** Run the whole program in detailed mode; returns total cycles. *)
let run_to_completion t =
  while busy t do
    step_cycle t
  done;
  t.cycle

(** Functional warming: advance [instrs] instructions updating caches and
    branch predictor without timing (the SMARTS fast-forward mode). *)
let run_warming t ~instrs =
  let func = t.func in
  let insts = t.prog.Isa.insts in
  let buf = t.warm_buf in
  let n = ref 0 in
  while !n < instrs && not t.trace_done do
    ignore (ifetch_latency t func.Func.pc);
    if not (Func.step_into func buf) then t.trace_done <- true
    else begin
      let i = insts.(buf.Func.d_idx) in
      if i.Isa.op = Isa.HALT then t.trace_done <- true
      else begin
        if Isa.is_cond_branch i.Isa.op then
          ignore (Bpred.update t.bpred buf.Func.d_idx buf.Func.d_taken);
        if buf.Func.d_addr >= 0 then
          if i.Isa.op = Isa.PREF then Memsys.prefetch_d t.mem buf.Func.d_addr
          else ignore (Memsys.access_d t.mem buf.Func.d_addr)
      end
    end;
    incr n
  done
