(** Abstract energy model (Wattch-style event counting).

    The paper notes (§2.2) that "models can also be built for other metrics
    such as power consumption or code size"; this module provides the power
    response. Energy is accumulated in abstract units from the event counts
    the simulator already collects:

    - per-instruction access/execute energy by functional-unit class
      (multipliers and FP units cost more than simple ALUs);
    - per-access energy for each cache level, with misses also paying the
      next level (the L2 and DRAM numbers dominate, which is what makes
      memory-bound programs power-hungry);
    - branch-predictor lookups and misprediction recovery;
    - static/leakage energy proportional to cycles and issue width.

    Absolute values are meaningless; only relative comparisons across
    configurations matter — exactly how the paper uses its performance
    response. *)

type coefficients = {
  fu_energy : float array;  (** indexed by {!Emc_isa.Isa.fu_index} *)
  l1_access : float;
  l2_access : float;
  mem_access : float;
  bpred_lookup : float;
  mispredict : float;
  leak_per_cycle_per_way : float;
}

let default =
  {
    (* IntAlu IntMul FpAlu FpMul LdSt Branch NoFu *)
    fu_energy = [| 1.0; 3.5; 2.0; 4.5; 1.5; 1.0; 0.0 |];
    l1_access = 1.2;
    l2_access = 12.0;
    mem_access = 60.0;
    bpred_lookup = 0.3;
    mispredict = 8.0;
    leak_per_cycle_per_way = 0.4;
  }

type breakdown = {
  total : float;
  dynamic_fu : float;
  memory : float;
  predictor : float;
  leakage : float;
}

(** Energy estimate for a finished (or sampled) simulation. [cycles] may be
    a SMARTS estimate; all other counts are exact, since functional warming
    updates the same structures as detailed simulation. *)
let estimate ?(coeffs = default) (ooo : Ooo.t) ~cycles : breakdown =
  (* The leakage term multiplies [cycles]: a NaN or infinite estimate would
     silently poison the whole energy response (and every dataset built from
     it). Like Stats.min/max on empty input, that is a caller bug — fail
     loudly at the source instead of producing a poisoned number. *)
  if not (Float.is_finite cycles) then
    invalid_arg (Printf.sprintf "Energy.estimate: non-finite cycle count (%h)" cycles);
  let func = Ooo.func ooo in
  let dynamic_fu =
    Array.fold_left ( +. ) 0.0
      (Array.mapi
         (fun i c -> coeffs.fu_energy.(i) *. float_of_int c)
         func.Func.class_counts)
  in
  let cache_energy (c : Cache.t) access_cost =
    float_of_int (c.Cache.hits + c.Cache.misses) *. access_cost
  in
  let mem = ooo.Ooo.mem in
  let memory =
    cache_energy mem.Memsys.l1i coeffs.l1_access
    +. cache_energy mem.Memsys.l1d coeffs.l1_access
    +. cache_energy mem.Memsys.l2 coeffs.l2_access
    +. (float_of_int mem.Memsys.l2.Cache.misses *. coeffs.mem_access)
  in
  let bp = ooo.Ooo.bpred in
  let predictor =
    (float_of_int bp.Bpred.lookups *. coeffs.bpred_lookup)
    +. (float_of_int bp.Bpred.mispredicts *. coeffs.mispredict)
  in
  let leakage =
    cycles *. coeffs.leak_per_cycle_per_way *. float_of_int ooo.Ooo.cfg.Config.issue_width
  in
  let total = dynamic_fu +. memory +. predictor +. leakage in
  { total; dynamic_fu; memory; predictor; leakage }
