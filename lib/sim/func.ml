open Emc_isa

(** Functional (architectural) simulator for the target ISA.

    Executes the linked program one instruction per [step] call and returns a
    {!dyn} record describing the dynamic instance — exactly what the timing
    model and the SMARTS functional-warming mode need. Integer values are
    OCaml native ints and floats are doubles, matching the IR interpreter's
    semantics, so outputs are comparable bit-for-bit across optimization
    levels. Runtime faults (division by zero, unaligned access, fuel
    exhaustion) raise the typed {!Emc_ir.Trap.Trap} with the same categories
    the interpreter uses, so the differential oracle can assert
    trap-equivalence across levels. *)

type value = VI of int | VF of float

type dyn = {
  idx : int;  (** static instruction index (= pc) *)
  addr : int;  (** byte address for memory ops; -1 otherwise *)
  taken : bool;  (** outcome for conditional branches; true for jumps *)
}

(** Caller-owned buffer for the allocation-free {!step_into}. One [dynbuf]
    is written in place per dynamic instruction, so the timing model's hot
    loop performs no per-instruction allocation at all (the boxed {!dyn}
    option of {!step} costs a heap block per instruction, which dominates
    minor-GC pressure in long detailed runs). *)
type dynbuf = {
  mutable d_idx : int;
  mutable d_addr : int;
  mutable d_taken : bool;
}

let dynbuf () = { d_idx = 0; d_addr = -1; d_taken = false }

type t = {
  prog : Isa.program;
  regs : int array;  (** 32 integer registers *)
  fregs : float array;  (** 32 FP registers *)
  imem : int array;  (** word-addressed integer view of memory *)
  fmem : float array;  (** word-addressed FP view of memory *)
  mutable pc : int;
  mutable halted : bool;
  mutable icount : int;
  mutable outputs : value list;  (** reversed *)
  class_counts : int array;  (** dynamic instructions per FU class, for the energy model *)
  scratch : dynbuf;  (** backs the boxed {!step} wrapper *)
}

let create (prog : Isa.program) =
  let words = Emc_ir.Memlayout.mem_words prog.Isa.layout in
  let t =
    {
      prog;
      regs = Array.make 32 0;
      fregs = Array.make 32 0.0;
      imem = Array.make words 0;
      fmem = Array.make words 0.0;
      pc = prog.Isa.entry;
      halted = false;
      icount = 0;
      outputs = [];
      class_counts = Array.make Isa.n_fu_classes 0;
      scratch = dynbuf ();
    }
  in
  t.regs.(Isa.r_sp) <- Emc_ir.Memlayout.stack_top prog.Isa.layout;
  t

exception Trap = Emc_ir.Trap.Trap

let word addr =
  if addr land 7 <> 0 then raise (Trap (Emc_ir.Trap.Unaligned_access addr));
  addr lsr 3

let set_global_int t name idx v = t.imem.(word (Isa.global_base t.prog name + (idx * 8))) <- v
let set_global_float t name idx v = t.fmem.(word (Isa.global_base t.prog name + (idx * 8))) <- v
let get_global_int t name idx = t.imem.(word (Isa.global_base t.prog name + (idx * 8)))
let get_global_float t name idx = t.fmem.(word (Isa.global_base t.prog name + (idx * 8)))

let outputs t = List.rev t.outputs
let return_value t = t.regs.(Isa.r_ret)

(* register accessors across the unified id namespace *)
let geti t r = t.regs.(r)
let getf t r = t.fregs.(r - Isa.fp_base)
let seti t r v = t.regs.(r) <- v
let setf t r v = t.fregs.(r - Isa.fp_base) <- v

(** Execute one instruction, writing its dynamic record into [b]. Returns
    [false] (and writes nothing) once the machine has halted. Allocation-free:
    the control-flow and memory outcomes go into the caller-owned [b] and the
    next pc is committed directly to [t.pc] (so after a mid-instruction trap
    [t.pc] points past the trapping instruction; traps are not resumable, so
    nothing observes that). *)
let step_into t (b : dynbuf) : bool =
  if t.halted then false
  else begin
    let pc = t.pc in
    let i = t.prog.Isa.insts.(pc) in
    t.icount <- t.icount + 1;
    let ci = Isa.fu_index (Isa.fu_of i.op) in
    t.class_counts.(ci) <- t.class_counts.(ci) + 1;
    b.d_idx <- pc;
    b.d_addr <- -1;
    b.d_taken <- false;
    t.pc <- pc + 1;
    (match i.op with
    | LDI -> seti t i.rd i.imm
    | LFI -> setf t i.rd i.fimm
    | ADD -> seti t i.rd (geti t i.rs1 + geti t i.rs2)
    | SUB -> seti t i.rd (geti t i.rs1 - geti t i.rs2)
    | MUL -> seti t i.rd (geti t i.rs1 * geti t i.rs2)
    | DIV ->
        let d = geti t i.rs2 in
        if d = 0 then raise (Trap Emc_ir.Trap.Div_by_zero)
        else seti t i.rd (geti t i.rs1 / d)
    | REM ->
        let d = geti t i.rs2 in
        if d = 0 then raise (Trap Emc_ir.Trap.Rem_by_zero)
        else seti t i.rd (geti t i.rs1 mod d)
    | AND -> seti t i.rd (geti t i.rs1 land geti t i.rs2)
    | OR -> seti t i.rd (geti t i.rs1 lor geti t i.rs2)
    | XOR -> seti t i.rd (geti t i.rs1 lxor geti t i.rs2)
    | SLL -> seti t i.rd (geti t i.rs1 lsl (geti t i.rs2 land 63))
    | SRL -> seti t i.rd (geti t i.rs1 lsr (geti t i.rs2 land 63))
    | SRA -> seti t i.rd (geti t i.rs1 asr (geti t i.rs2 land 63))
    | ADDI -> seti t i.rd (geti t i.rs1 + i.imm)
    | SLLI -> seti t i.rd (geti t i.rs1 lsl (i.imm land 63))
    | CEQ -> seti t i.rd (if geti t i.rs1 = geti t i.rs2 then 1 else 0)
    | CNE -> seti t i.rd (if geti t i.rs1 <> geti t i.rs2 then 1 else 0)
    | CLT -> seti t i.rd (if geti t i.rs1 < geti t i.rs2 then 1 else 0)
    | CLE -> seti t i.rd (if geti t i.rs1 <= geti t i.rs2 then 1 else 0)
    | CGT -> seti t i.rd (if geti t i.rs1 > geti t i.rs2 then 1 else 0)
    | CGE -> seti t i.rd (if geti t i.rs1 >= geti t i.rs2 then 1 else 0)
    | FADD -> setf t i.rd (getf t i.rs1 +. getf t i.rs2)
    | FSUB -> setf t i.rd (getf t i.rs1 -. getf t i.rs2)
    | FMUL -> setf t i.rd (getf t i.rs1 *. getf t i.rs2)
    | FDIV -> setf t i.rd (getf t i.rs1 /. getf t i.rs2)
    | FCEQ -> seti t i.rd (if getf t i.rs1 = getf t i.rs2 then 1 else 0)
    | FCNE -> seti t i.rd (if getf t i.rs1 <> getf t i.rs2 then 1 else 0)
    | FCLT -> seti t i.rd (if getf t i.rs1 < getf t i.rs2 then 1 else 0)
    | FCLE -> seti t i.rd (if getf t i.rs1 <= getf t i.rs2 then 1 else 0)
    | FCGT -> seti t i.rd (if getf t i.rs1 > getf t i.rs2 then 1 else 0)
    | FCGE -> seti t i.rd (if getf t i.rs1 >= getf t i.rs2 then 1 else 0)
    | ITOF -> setf t i.rd (float_of_int (geti t i.rs1))
    | FTOI ->
        (* NaN converts to 0 (int_of_float's NaN result is unspecified);
           the IR interpreter defines FtoI identically *)
        let x = getf t i.rs1 in
        seti t i.rd (if Float.is_nan x then 0 else int_of_float x)
    | LD ->
        let a = geti t i.rs1 + i.imm in
        b.d_addr <- a;
        seti t i.rd t.imem.(word a)
    | FLD ->
        let a = geti t i.rs1 + i.imm in
        b.d_addr <- a;
        setf t i.rd t.fmem.(word a)
    | ST ->
        let a = geti t i.rs1 + i.imm in
        b.d_addr <- a;
        t.imem.(word a) <- geti t i.rs2
    | FST ->
        let a = geti t i.rs1 + i.imm in
        b.d_addr <- a;
        t.fmem.(word a) <- getf t i.rs2
    | PREF ->
        let a = geti t i.rs1 + i.imm in
        b.d_addr <- a
    | BEQZ ->
        if geti t i.rs1 = 0 then begin
          b.d_taken <- true;
          t.pc <- i.imm
        end
    | BNEZ ->
        if geti t i.rs1 <> 0 then begin
          b.d_taken <- true;
          t.pc <- i.imm
        end
    | J ->
        b.d_taken <- true;
        t.pc <- i.imm
    | CALL ->
        b.d_taken <- true;
        seti t Isa.r_ra (pc + 1);
        t.pc <- i.imm
    | RET ->
        b.d_taken <- true;
        t.pc <- geti t Isa.r_ra
    | MOV -> seti t i.rd (geti t i.rs1)
    | FMOV -> setf t i.rd (getf t i.rs1)
    | OUT ->
        let v = if Isa.is_fp_reg i.rs1 then VF (getf t i.rs1) else VI (geti t i.rs1) in
        t.outputs <- v :: t.outputs
    | HALT -> t.halted <- true
    | NOP -> ());
    true
  end

(** Boxed convenience wrapper over {!step_into} — used by callers that want
    the immutable record (differential testing, ad-hoc drivers); the timing
    model's hot path calls {!step_into} directly. *)
let step t : dyn option =
  if step_into t t.scratch then
    Some { idx = t.scratch.d_idx; addr = t.scratch.d_addr; taken = t.scratch.d_taken }
  else None

(** Run to completion with a fuel limit; returns the dynamic instruction
    count. *)
let run ?(fuel = 1_000_000_000) t =
  let n = ref 0 in
  while (not t.halted) && !n < fuel do
    ignore (step_into t t.scratch);
    incr n
  done;
  if not t.halted then raise (Trap Emc_ir.Trap.Out_of_fuel);
  !n
