(** Abstract energy model (Wattch-style event counting) — the "power
    consumption" response the paper's §2.2 mentions as an alternative
    modeling target. Energy is accumulated in abstract units from event
    counts the simulator already collects; absolute values are meaningless,
    only relative comparisons across configurations matter. *)

type coefficients = {
  fu_energy : float array;  (** per-instruction energy by {!Emc_isa.Isa.fu_index} *)
  l1_access : float;
  l2_access : float;
  mem_access : float;
  bpred_lookup : float;
  mispredict : float;  (** recovery energy per direction misprediction *)
  leak_per_cycle_per_way : float;  (** static energy, scaled by issue width *)
}

val default : coefficients

type breakdown = {
  total : float;
  dynamic_fu : float;  (** functional-unit switching energy *)
  memory : float;  (** cache and DRAM access energy *)
  predictor : float;
  leakage : float;
}

val estimate : ?coeffs:coefficients -> Ooo.t -> cycles:float -> breakdown
(** Energy for a finished (or SMARTS-sampled) simulation; [cycles] may be an
    estimate — every other count is exact, since functional warming updates
    the same cache/predictor structures as detailed simulation.

    Raises [Invalid_argument] on a non-finite [cycles]: the leakage term
    multiplies it, so a NaN or infinity here would silently poison the
    energy response and every dataset built from it. *)
