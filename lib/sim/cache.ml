(** Set-associative cache with true-LRU replacement.

    Tag state only (data lives in the functional simulator's memory image);
    64-byte lines. Writes are write-back write-allocate; dirty-eviction
    writeback traffic is not modeled (a standard simplification that does
    not change any of the latency trends the paper's parameters probe). *)

type t = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;  (** sets*ways; -1 = invalid *)
  stamp : int array;  (** LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let line_bytes = 64

let create ~size_bytes ~assoc =
  if size_bytes <= 0 || assoc <= 0 then invalid_arg "Cache.create";
  let lines = max 1 (size_bytes / line_bytes) in
  let ways = min assoc lines in
  let sets = max 1 (lines / ways) in
  if sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets must be a power of two";
  {
    sets;
    ways;
    line_shift = 6;
    tags = Array.make (sets * ways) (-1);
    stamp = Array.make (sets * ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* Tags store the full line number (redundant set bits included), so lookup
   compares against [line] directly. Both loops below are tail-recursive and
   allocation-free: this is the innermost function of the whole simulator
   (every load, store, prefetch and I-fetch line crossing lands here). *)

let rec find_way t base line w =
  if w >= t.ways then -1
  else if t.tags.(base + w) = line then w
  else find_way t base line (w + 1)

let rec lru_way t base best w =
  if w >= t.ways then best
  else lru_way t base (if t.stamp.(base + w) < t.stamp.(base + best) then w else best) (w + 1)

(** [access t addr] returns [true] on hit. On miss the line is filled
    (evicting LRU). *)
let access t addr =
  t.tick <- t.tick + 1;
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.ways in
  let w = find_way t base line 0 in
  if w >= 0 then begin
    t.stamp.(base + w) <- t.tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = base + lru_way t base 0 1 in
    t.tags.(victim) <- line;
    t.stamp.(victim) <- t.tick;
    false
  end

(** Probe without fill or LRU update. *)
let probe t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.ways in
  let rec go w = w < t.ways && (t.tags.(base + w) = line || go (w + 1)) in
  go 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
