(** SMARTS-style statistical sampling (Wunderlich et al., ISCA 2003).

    The dynamic instruction stream is divided into fixed-size units; every
    [interval]-th unit is measured in detail, preceded by a detailed warm-up
    window that fills the RUU and hides boundary effects; the rest of the
    stream runs in functional-warming mode (architectural state, caches and
    branch predictor advance; no timing). Whole-program cycles are estimated
    as [mean CPI of measured units × total instructions], with a confidence
    interval from the between-unit variance — the paper tunes the sampling
    parameters until the error estimate is below 1% at 99.7% confidence.

    [interval = 1] degenerates to full detailed simulation. *)

type params = {
  unit_size : int;  (** instructions per measured unit (paper: 1000) *)
  warmup : int;  (** detailed-warming instructions before each unit *)
  interval : int;  (** one in [interval] units is measured *)
  target_ci : float;  (** desired relative CI at 3 sigma, e.g. 0.01 *)
  max_refinements : int;  (** halve [interval] at most this many times *)
}

(* The paper tunes until the error estimate is below 1% at 99.7% confidence;
   [Emc_core.Scale.full] uses exactly that (target_ci = 0.01). This default
   accepts 2% so that ad-hoc runs stay fast — the CI actually achieved is
   exported per run as the [smarts.last_ci_rel] gauge and [smarts.ci_rel]
   histogram, so the gap to the paper's 1% target is visible at runtime. *)
let default_params =
  { unit_size = 1000; warmup = 1000; interval = 10; target_ci = 0.02; max_refinements = 2 }

type result = {
  cycles : float;  (** estimated whole-program cycles *)
  instrs : int;  (** total dynamic instructions *)
  cpi : float;
  ci_rel : float;  (** relative half-width of the 3-sigma CI on CPI *)
  sampled_units : int;
  detailed : bool;  (** true when the run was fully detailed, no sampling *)
  energy : float;  (** abstract energy units (see {!Energy}) *)
  static_instrs : int;  (** code size response *)
}

(* ---------------- telemetry ---------------- *)

module Metrics = Emc_obs.Metrics
module Log = Emc_obs.Log
module Trace = Emc_obs.Trace

let m_runs = Metrics.counter "sim.runs"
let m_full_runs = Metrics.counter "smarts.full_runs"
let m_sampled_runs = Metrics.counter "smarts.sampled_runs"
let m_refinements = Metrics.counter "smarts.refinements"
let m_fallbacks = Metrics.counter "smarts.fallback_to_full"
let h_ci = Metrics.histogram "smarts.ci_rel"
let g_ci = Metrics.gauge "smarts.last_ci_rel"
let h_units = Metrics.histogram "smarts.sampled_units"

(* The [sim.*] counter handles mirror [Ooo.counters]'s fixed key order.
   Resolved once at the first run — re-doing the string concat + registry
   lookup for all 14 handles on every simulation showed up in profiles of
   GA searches, which complete thousands of short sampled runs. *)
let sim_handles : Metrics.counter list ref = ref []

(* Fold one finished run's simulator counters into the global registry and
   record the sampling quality actually achieved. *)
let record_run ooo (r : result) =
  Metrics.incr m_runs;
  let cs = Ooo.counters ooo in
  if !sim_handles = [] then
    sim_handles := List.map (fun (k, _) -> Metrics.counter ("sim." ^ k)) cs;
  List.iter2 (fun (_, v) h -> Metrics.add h v) cs !sim_handles;
  Metrics.observe h_ci r.ci_rel;
  Metrics.set g_ci r.ci_rel;
  if not r.detailed then Metrics.observe h_units (float_of_int r.sampled_units);
  Log.debug ~src:"smarts"
    ~fields:
      [
        ("cycles", Emc_obs.Json.Float r.cycles);
        ("instrs", Emc_obs.Json.Int r.instrs);
        ("ci_rel", Emc_obs.Json.Float r.ci_rel);
        ("units", Emc_obs.Json.Int r.sampled_units);
      ]
    "%s run done: cpi=%.3f"
    (if r.detailed then "detailed" else "sampled")
    r.cpi

let run_full (cfg : Config.t) (prog : Emc_isa.Isa.program)
    ~(setup : Func.t -> unit) : result =
  Trace.with_span ~cat:"sim" "smarts.run_full" (fun () ->
      let ooo = Ooo.create cfg prog in
      setup (Ooo.func ooo);
      let cycles = Ooo.run_to_completion ooo in
      let instrs = (Ooo.func ooo).Func.icount in
      let r =
        {
          cycles = float_of_int cycles;
          instrs;
          cpi = float_of_int cycles /. float_of_int (max 1 instrs);
          ci_rel = 0.0;
          sampled_units = 0;
          detailed = true;
          energy = (Energy.estimate ooo ~cycles:(float_of_int cycles)).Energy.total;
          static_instrs = Array.length prog.Emc_isa.Isa.insts;
        }
      in
      Metrics.incr m_full_runs;
      record_run ooo r;
      r)

let run_sampled ?(params = default_params) (cfg : Config.t) (prog : Emc_isa.Isa.program)
    ~(setup : Func.t -> unit) : result =
  let rec attempt interval refinements =
    let span_args () =
      [ ("interval", Emc_obs.Json.Int interval); ("refinements", Emc_obs.Json.Int refinements) ]
    in
    Trace.with_span ~cat:"sim" ~args:span_args "smarts.attempt" (fun () ->
        let ooo = Ooo.create cfg prog in
        setup (Ooo.func ooo);
        let unit_cpis = ref [] in
        let unit_count = ref 0 in
        while Ooo.busy ooo do
          if !unit_count mod interval = interval - 1 then begin
            (* detailed warm-up, then measure one unit *)
            Ooo.run_detailed ooo ~instrs:params.warmup;
            let c0 = ooo.Ooo.cycle and i0 = ooo.Ooo.detail_instrs in
            Ooo.run_detailed ooo ~instrs:params.unit_size;
            let di = ooo.Ooo.detail_instrs - i0 in
            if di > params.unit_size / 2 then
              unit_cpis := (float_of_int (ooo.Ooo.cycle - c0) /. float_of_int di) :: !unit_cpis;
            (* discard in-flight timing state before switching to warming *)
            Ooo.flush_timing ooo
          end
          else Ooo.run_warming ooo ~instrs:params.unit_size;
          incr unit_count
        done;
        let cpis = Array.of_list !unit_cpis in
        let n = Array.length cpis in
        if n = 0 then begin
          (* program too short for the sampling grid: no measured unit
             survived — fall back to a fully detailed run *)
          Metrics.incr m_fallbacks;
          Log.info ~src:"smarts" "no sampled units at interval %d: falling back to full detail"
            interval;
          Trace.instant ~args:span_args "smarts.fallback_to_full";
          run_full cfg prog ~setup
        end
        else begin
          let mean = Emc_util.Stats.mean cpis in
          let sd = Emc_util.Stats.sample_stddev cpis in
          let ci = if n > 1 then 3.0 *. sd /. (sqrt (float_of_int n) *. mean) else 1.0 in
          let instrs = (Ooo.func ooo).Func.icount in
          if ci > params.target_ci && refinements < params.max_refinements && interval > 1
          then begin
            Metrics.incr m_refinements;
            Log.debug ~src:"smarts"
              ~fields:[ ("ci_rel", Emc_obs.Json.Float ci); ("units", Emc_obs.Json.Int n) ]
              "ci %.4f above target %.4f: halving interval %d -> %d" ci params.target_ci
              interval
              (max 1 (interval / 2));
            Trace.instant
              ~args:(fun () ->
                ("ci_rel", Emc_obs.Json.Float ci) :: span_args ())
              "smarts.refine";
            attempt (max 1 (interval / 2)) (refinements + 1)
          end
          else begin
            let cycles = mean *. float_of_int instrs in
            let r =
              {
                cycles;
                instrs;
                cpi = mean;
                ci_rel = ci;
                sampled_units = n;
                detailed = false;
                energy = (Energy.estimate ooo ~cycles).Energy.total;
                static_instrs = Array.length prog.Emc_isa.Isa.insts;
              }
            in
            Metrics.incr m_sampled_runs;
            record_run ooo r;
            r
          end
        end)
  in
  if params.interval <= 1 then run_full cfg prog ~setup else attempt params.interval 0
