(** Set-associative cache with true-LRU replacement (tag state only; 64-byte
    lines; write-back write-allocate, dirty-eviction traffic not modeled).

    One instance each backs the L1I, L1D and unified L2 of {!Memsys}. *)

type t = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;
  stamp : int array;
  mutable tick : int;
  mutable hits : int;  (** running hit count, read by the energy model *)
  mutable misses : int;
}

val line_bytes : int
(** Line size: 64 bytes, fixed. *)

val create : size_bytes:int -> assoc:int -> t
(** [create ~size_bytes ~assoc] — capacity is rounded so the set count is a
    power of two; raises [Invalid_argument] otherwise. Associativity is
    clamped to the number of lines. *)

val access : t -> int -> bool
(** [access t addr] returns [true] on hit; on a miss the line is filled,
    evicting the LRU way. Statistics are updated either way. *)

val probe : t -> int -> bool
(** Residency check with no fill, no LRU update and no statistics. *)

val reset_stats : t -> unit

val miss_rate : t -> float
(** Misses over total accesses; 0 before any access. *)
