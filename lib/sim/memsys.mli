(** The memory hierarchy — split L1 I/D caches, a unified L2 and a flat
    memory latency (paper parameters #18–#25). Latencies returned are total
    load-to-use costs; every access updates the cache state (fills on
    miss). *)

type t = {
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dcache_lat : int;
  l2_lat : int;
  mem_lat : int;
}

val create : Config.t -> t

val max_latency : t -> int
(** Worst-case latency a single access can bill (a full miss to memory).
    The timing model sizes its completion calendar from this bound. *)

val access_i : t -> int -> int
(** Instruction fetch at a byte address: 1 cycle on an L1I hit (pipelined
    into fetch), otherwise 1 + L2 latency (+ memory latency on an L2
    miss). *)

val access_d : t -> int -> int
(** Data access: L1D latency on a hit, adding the L2 and memory latencies as
    the miss goes deeper. Writes allocate like reads. *)

val prefetch_d : t -> int -> unit
(** Software prefetch: pulls the line into L1D/L2 (with normal fills and
    evictions — pollution is modeled) but bills no latency to the
    requester. *)
