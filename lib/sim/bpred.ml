(** Combined branch predictor, as described for the paper's parameter #16:
    a bimodal predictor and a 2-level (gshare-style) predictor of equal size,
    arbitrated by a chooser table of 2-bit counters.

    [size] is the number of entries in {e each} table. Calls and returns are
    assumed perfectly predicted (an idealized BTB and return-address stack),
    so only conditional-branch direction mispredictions cost cycles — these
    are what the predictor-size parameter controls. *)

type t = {
  size : int;
  bimodal : Bytes.t;  (** 2-bit counters *)
  pht : Bytes.t;  (** 2-bit counters for the 2-level component *)
  chooser : Bytes.t;  (** 2-bit: >=2 prefers the 2-level component *)
  hist_mask : int;
  mutable ghr : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ~size =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Bpred.create: size must be a positive power of two";
  {
    size;
    bimodal = Bytes.make size '\001';
    pht = Bytes.make size '\001';
    chooser = Bytes.make size '\001';
    hist_mask = size - 1;
    ghr = 0;
    lookups = 0;
    mispredicts = 0;
  }

let ctr b i = Char.code (Bytes.get b i)

let bump b i taken =
  let v = ctr b i in
  let v' = if taken then min 3 (v + 1) else max 0 (v - 1) in
  Bytes.set b i (Char.chr v')

let bimodal_index t pc = pc land (t.size - 1)
let gshare_index t pc = (pc lxor t.ghr) land (t.size - 1)

let predict t pc =
  let bi = ctr t.bimodal (bimodal_index t pc) >= 2 in
  let gs = ctr t.pht (gshare_index t pc) >= 2 in
  let use_gshare = ctr t.chooser (bimodal_index t pc) >= 2 in
  if use_gshare then gs else bi

(** Update all component tables and the global history with the actual
    outcome. Returns [true] when the prediction was correct. *)
let update t pc taken =
  t.lookups <- t.lookups + 1;
  let bi_idx = bimodal_index t pc in
  let gs_idx = gshare_index t pc in
  let bi = ctr t.bimodal bi_idx >= 2 in
  let gs = ctr t.pht gs_idx >= 2 in
  let use_gshare = ctr t.chooser bi_idx >= 2 in
  let predicted = if use_gshare then gs else bi in
  (* chooser trains toward the component that was right *)
  if gs <> bi then bump t.chooser bi_idx (gs = taken);
  bump t.bimodal bi_idx taken;
  bump t.pht gs_idx taken;
  t.ghr <- ((t.ghr lsl 1) lor if taken then 1 else 0) land t.hist_mask;
  if predicted <> taken then t.mispredicts <- t.mispredicts + 1;
  predicted = taken

let mispredict_rate t =
  if t.lookups = 0 then 0.0 else float_of_int t.mispredicts /. float_of_int t.lookups
