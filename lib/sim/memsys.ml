(** The memory hierarchy: split L1 I/D, unified L2, flat memory latency —
    the paper's parameters #18–#25. *)

type t = {
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dcache_lat : int;
  l2_lat : int;
  mem_lat : int;
}

let create (c : Config.t) =
  {
    l1i = Cache.create ~size_bytes:(c.icache_kb * 1024) ~assoc:1;
    l1d = Cache.create ~size_bytes:(c.dcache_kb * 1024) ~assoc:c.dcache_assoc;
    l2 = Cache.create ~size_bytes:(c.l2_kb * 1024) ~assoc:c.l2_assoc;
    dcache_lat = c.dcache_lat;
    l2_lat = c.l2_lat;
    mem_lat = c.mem_lat;
  }

(** Worst-case latency any single access can bill (full miss to memory).
    The timing model sizes its completion calendar from this so a wheel slot
    can never hold an event more than one revolution away. *)
let max_latency t = 1 + t.dcache_lat + t.l2_lat + t.mem_lat

(** Instruction fetch: L1I is 1 cycle when hit (pipelined into fetch). *)
let access_i t addr =
  if Cache.access t.l1i addr then 1
  else if Cache.access t.l2 addr then 1 + t.l2_lat
  else 1 + t.l2_lat + t.mem_lat

(** Data access (load or store miss timing; writes allocate). *)
let access_d t addr =
  if Cache.access t.l1d addr then t.dcache_lat
  else if Cache.access t.l2 addr then t.dcache_lat + t.l2_lat
  else t.dcache_lat + t.l2_lat + t.mem_lat

(** Software prefetch: pulls the line into L1D/L2 without a latency bill for
    the requesting instruction (non-binding, non-blocking). *)
let prefetch_d t addr =
  ignore (access_d t addr)
