(** SMARTS-style statistical sampling (Wunderlich et al., ISCA 2003 — the
    paper's simulation-time reduction method, chosen because design points
    correspond to different binaries, which rules out IPC comparisons and
    SimPoint).

    The dynamic instruction stream is split into fixed-size units; every
    [interval]-th unit is measured in detail after a detailed warm-up
    window; the rest run in functional-warming mode (architectural state,
    caches and branch predictor advance with no timing). Whole-program
    cycles are estimated as mean unit CPI × instruction count with a
    confidence interval from the between-unit variance; the interval is
    halved and the run repeated while the CI misses the target, mirroring
    the paper's "tune the sampling parameters and repeat". *)

type params = {
  unit_size : int;  (** instructions per measured unit (paper: 1000) *)
  warmup : int;  (** detailed-warming instructions before each unit *)
  interval : int;  (** one in [interval] units is measured; 1 = full detail *)
  target_ci : float;
      (** desired relative CI at 3 sigma. The paper tunes to 0.01 ("below
          1% at 99.7% confidence") and [Emc_core.Scale.full] matches that;
          {!default_params} accepts 0.02 so ad-hoc runs stay fast. The CI
          each run actually achieves is exported through the telemetry
          layer ([smarts.last_ci_rel] gauge, [smarts.ci_rel] histogram). *)
  max_refinements : int;  (** interval halvings allowed *)
}

val default_params : params
(** [target_ci = 0.02] — deliberately looser than the paper's 1% (see
    {!type:params}); use [Emc_core.Scale.full]'s params to match the
    paper. *)

type result = {
  cycles : float;  (** estimated whole-program cycles *)
  instrs : int;  (** exact dynamic instruction count *)
  cpi : float;
  ci_rel : float;  (** relative half-width of the 3σ CI on CPI *)
  sampled_units : int;
  detailed : bool;  (** [true] when no sampling was used *)
  energy : float;  (** abstract units, see {!Energy} *)
  static_instrs : int;  (** the code-size response *)
}

val run_full :
  Config.t -> Emc_isa.Isa.program -> setup:(Func.t -> unit) -> result
(** Fully detailed simulation ([setup] fills the input arrays before the
    run starts). *)

val run_sampled :
  ?params:params -> Config.t -> Emc_isa.Isa.program -> setup:(Func.t -> unit) -> result
