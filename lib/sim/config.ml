(** Microarchitectural configuration: the 11 parameters of the paper's
    Table 2, with the same ranges, plus the three reference configurations of
    Table 5 (constrained / typical / aggressive). *)

type t = {
  issue_width : int;  (** #15: 2 or 4 *)
  bpred_size : int;  (** #16: entries per table of the combined predictor, 512..8192 *)
  ruu_size : int;  (** #17: register update unit entries, 16..128 *)
  icache_kb : int;  (** #18: 8..128 KB *)
  dcache_kb : int;  (** #19: 8..128 KB *)
  dcache_assoc : int;  (** #20: 1..2 *)
  dcache_lat : int;  (** #21: 1..3 cycles *)
  l2_kb : int;  (** #22: 256..8192 KB *)
  l2_assoc : int;  (** #23: 1..8 *)
  l2_lat : int;  (** #24: 6..16 cycles *)
  mem_lat : int;  (** #25: 50..150 cycles *)
}

(** Table 5, "Constrained". *)
let constrained =
  { issue_width = 2; bpred_size = 512; ruu_size = 16; icache_kb = 8; dcache_kb = 8;
    dcache_assoc = 1; dcache_lat = 1; l2_kb = 256; l2_assoc = 2; l2_lat = 6; mem_lat = 50 }

(** Table 5, "Typical". *)
let typical =
  { issue_width = 4; bpred_size = 2048; ruu_size = 64; icache_kb = 32; dcache_kb = 32;
    dcache_assoc = 1; dcache_lat = 2; l2_kb = 1024; l2_assoc = 4; l2_lat = 10; mem_lat = 100 }

(** Table 5, "Aggressive". *)
let aggressive =
  { issue_width = 4; bpred_size = 8192; ruu_size = 128; icache_kb = 128; dcache_kb = 128;
    dcache_assoc = 2; dcache_lat = 3; l2_kb = 8192; l2_assoc = 8; l2_lat = 16; mem_lat = 150 }

let pp fmt c =
  Format.fprintf fmt
    "width=%d bpred=%d ruu=%d il1=%dKB dl1=%dKB/%dway/%dcy l2=%dKB/%dway/%dcy mem=%dcy"
    c.issue_width c.bpred_size c.ruu_size c.icache_kb c.dcache_kb c.dcache_assoc c.dcache_lat
    c.l2_kb c.l2_assoc c.l2_lat c.mem_lat

let to_string c = Format.asprintf "%a" pp c
