(** Differential fuzzing driver: generate → compare across levels → shrink.

    For each fuzz case a random MiniC program (see {!Gen}) is printed to
    source, pushed through the whole frontend, and compared across four
    execution levels against the IR interpreter on unoptimized IR:

    - the interpreter on {e optimized} IR, at each sampled Table-1 flag
      configuration (including the GA-favored all-flags corners);
    - the functional simulator on generated machine code for the same
      configurations (the IR verifier also runs on every optimized body);
    - the out-of-order model's commit stream, at an unoptimized and a
      heavily optimized point on distinct machine configurations.

    Outcomes (outputs, return value, trap category — see {!Oracle}) must be
    identical everywhere. The first level that disagrees is reported; the
    offending program is then minimized with {!Shrink} before being shown.

    Fan-out goes through {!Emc_par.Par.map}: each worker re-derives its
    program from a per-index sub-seed, so results are bit-identical for any
    [--jobs] value, and the per-case result is a few strings (marshal-safe).
    Metrics ([fuzz.programs], [fuzz.checks], [fuzz.divergences],
    [fuzz.shrink_steps]) are counted in the parent, because worker-side
    counter increments die with the fork. *)

open Emc_util
module Flags = Emc_opt.Flags
module Metrics = Emc_obs.Metrics

let m_programs = Metrics.counter "fuzz.programs"
let m_checks = Metrics.counter "fuzz.checks"
let m_divergences = Metrics.counter "fuzz.divergences"
let m_shrink_steps = Metrics.counter "fuzz.shrink_steps"

(* GA-favored corners: every boolean flag on, heuristics pinned to the ends
   of their Table-1 ranges — the cross-products a hand-written suite never
   exercises *)
let all_on = { Flags.o3 with Flags.unroll_loops = true; schedule_insns2 = true }

let corner_max =
  {
    all_on with
    Flags.max_inline_insns_auto = 150;
    inline_unit_growth = 75;
    inline_call_cost = 20;
    max_unroll_times = 12;
    max_unrolled_insns = 300;
  }

let corner_min =
  {
    all_on with
    Flags.max_inline_insns_auto = 50;
    inline_unit_growth = 25;
    inline_call_cost = 12;
    max_unroll_times = 4;
    max_unrolled_insns = 100;
  }

type level_config = { name : string; flags : Flags.t; issue_width : int }

let default_configs =
  [
    { name = "o0"; flags = Flags.o0; issue_width = 4 };
    { name = "o1"; flags = Flags.o1; issue_width = 4 };
    { name = "o2/w2"; flags = Flags.o2; issue_width = 2 };
    { name = "o3"; flags = Flags.o3; issue_width = 4 };
    { name = "corner-max"; flags = corner_max; issue_width = 4 };
    { name = "corner-min/w2"; flags = corner_min; issue_width = 2 };
  ]

(* Detailed-model runs are expensive; the commit stream is checked at one
   unoptimized and one heavily optimized point on distinct machines. The
   code is compiled for each machine's own issue width. *)
let default_ooo =
  [
    ("o0/typical", Flags.o0, Emc_sim.Config.typical);
    ("corner-max/constrained", corner_max, Emc_sim.Config.constrained);
  ]

let checks_per_program configs ooo = 1 + (2 * List.length configs) + List.length ooo

let emit (flags : Flags.t) ~issue_width opt =
  let prog =
    Emc_codegen.Codegen.emit_program ~omit_frame_pointer:flags.Flags.omit_frame_pointer opt
  in
  if flags.Flags.schedule_insns2 then
    Emc_codegen.Postsched.run (Emc_isa.Isa.machine_for_width issue_width) prog
  else prog

(** Check one source program across every level. [None] means all levels
    agreed; [Some (level, expected, got)] names the first disagreeing level
    with both rendered outcomes. A compiler crash or verifier failure at any
    configuration also counts as a divergence. *)
let check_source ?(semantics = Emc_ir.Interp.Ieee) ?(configs = default_configs)
    ?(ooo = default_ooo) src : (string * string * string) option =
  match Emc_lang.Minic.compile src with
  | Error err -> Some ("frontend", "compiles", Format.asprintf "%a" Emc_lang.Minic.pp_error err)
  | Ok ir ->
      let ret_ty =
        match Emc_ir.Ir.find_func ir "main" with
        | Some f -> f.Emc_ir.Ir.ret_ty
        | None -> None
      in
      let reference = Oracle.run_interp ~semantics ir in
      let div = ref None in
      let fail lvl expected got = if !div = None then div := Some (lvl, expected, got) in
      let check lvl out =
        if !div = None && not (Oracle.equal reference out) then
          fail lvl (Oracle.render reference) (Oracle.render out)
      in
      List.iter
        (fun { name; flags; issue_width } ->
          if !div = None then
            match Emc_opt.Pipeline.optimize ~issue_width flags ir with
            | exception exn ->
                fail ("optimize[" ^ name ^ "]") "optimizes" (Printexc.to_string exn)
            | opt -> (
                match Emc_ir.Verify.check_program opt with
                | exception Failure msg -> fail ("verify[" ^ name ^ "]") "verifies" msg
                | () -> (
                    check ("interp-opt[" ^ name ^ "]") (Oracle.run_interp ~semantics opt);
                    if !div = None then
                      match emit flags ~issue_width opt with
                      | exception exn ->
                          fail ("codegen[" ^ name ^ "]") "compiles" (Printexc.to_string exn)
                      | prog -> check ("func[" ^ name ^ "]") (Oracle.run_func ~ret_ty prog))))
        configs;
      List.iter
        (fun (name, flags, cfg) ->
          if !div = None then
            let issue_width = cfg.Emc_sim.Config.issue_width in
            match
              emit flags ~issue_width (Emc_opt.Pipeline.optimize ~issue_width flags ir)
            with
            | exception exn ->
                fail ("compile[" ^ name ^ "]") "compiles" (Printexc.to_string exn)
            | prog -> check ("ooo[" ^ name ^ "]") (Oracle.run_ooo cfg ~ret_ty prog))
        ooo;
      !div

type divergence = {
  index : int;  (** which fuzz case (0-based) *)
  prog_seed : int;  (** sub-seed that regenerates the program *)
  level : string;
  expected : string;
  got : string;
  source : string;
  min_source : string;  (** shrunk reproducer *)
  shrink_steps : int;
}

type report = { programs : int; checks : int; divergences : divergence list }

let source_of_seed sub = Emc_lang.Pretty.program (Gen.program (Rng.create sub))

(** Fuzz [budget] programs from [seed]. Deterministic for a given seed and
    configuration set, independent of [jobs]. *)
let fuzz ?jobs ?(semantics = Emc_ir.Interp.Ieee) ?(configs = default_configs)
    ?(ooo = default_ooo) ?(max_shrink_checks = 1500) ~seed ~budget () : report =
  Emc_obs.Trace.with_span "fuzz" (fun () ->
      let master = Rng.create seed in
      let subseeds = Array.make (max budget 1) 0 in
      for i = 0 to budget - 1 do
        subseeds.(i) <- Int64.to_int (Rng.int64 master) land max_int
      done;
      let subseeds = Array.sub subseeds 0 budget in
      let task sub =
        let src = source_of_seed sub in
        match check_source ~semantics ~configs ~ooo src with
        | None -> None
        | Some (level, expected, got) -> Some (level, expected, got, src)
      in
      let results = Emc_par.Par.map ?jobs task subseeds in
      Metrics.add m_programs budget;
      Metrics.add m_checks (budget * checks_per_program configs ooo);
      let divergences = ref [] in
      Array.iteri
        (fun i r ->
          match r with
          | None -> ()
          | Some (level, expected, got, src) ->
              Metrics.incr m_divergences;
              let ast = Gen.program (Rng.create subseeds.(i)) in
              (* a shrink candidate that stops compiling is a dead mutant,
                 not a smaller divergence *)
              let diverges a =
                match Emc_lang.Pretty.program a with
                | exception Invalid_argument _ -> false
                | src' -> (
                    match check_source ~semantics ~configs ~ooo src' with
                    | None | Some ("frontend", _, _) -> false
                    | Some _ -> true)
              in
              let min_ast, steps = Shrink.run ~max_checks:max_shrink_checks ~diverges ast in
              Metrics.add m_shrink_steps steps;
              divergences :=
                {
                  index = i;
                  prog_seed = subseeds.(i);
                  level;
                  expected;
                  got;
                  source = src;
                  min_source = Emc_lang.Pretty.program min_ast;
                  shrink_steps = steps;
                }
                :: !divergences)
        results;
      {
        programs = budget;
        checks = budget * checks_per_program configs ooo;
        divergences = List.rev !divergences;
      })
