(** Seeded random generator of well-typed MiniC programs.

    Programs are built directly as {!Emc_lang.Ast} values and then printed
    with {!Emc_lang.Pretty}, so each fuzz case exercises the whole frontend
    (lexer, parser, typechecker, lowering, verifier) before it ever reaches
    the optimizer. The generator aims every construct at a known divergence
    surface:

    - nested counted ([for]) and bounded [while] loops — unrolling, LICM,
      strength reduction, block reordering;
    - global array loads/stores with masked (always in-bounds, always
      aligned) indices — GCSE, prefetching, scheduling around memory;
    - int/float mixing through [int()]/[float()] casts — FTOI/ITOF,
      including FTOI of NaN;
    - float comparisons over expressions that can produce NaN and
      infinities ([0.0 / 0.0], [x / 0.0]) — the IEEE-vs-total-order
      comparison bug class;
    - guarded ([x / (e | 1)]) and unguarded ([x / e]) integer division —
      trap-equivalence across levels and trap-speculation bugs in the
      optimizer;
    - non-recursive helper functions — inlining and call-cost heuristics.

    Every program terminates by construction: [for] loops have constant
    positive steps and small bounds, and every [while] is dominated by a
    fresh counter that the loop body cannot touch (loop counters are
    "protected" from random assignment). Variable names are globally fresh,
    so scoping and shadowing rules can never be violated. *)

open Emc_util
open Emc_lang

let pos = { Ast.line = 0; col = 0 }
let e desc : Ast.expr = { Ast.desc; pos }
let s sdesc : Ast.stmt = { Ast.sdesc; spos = pos }

(* All three globals are 64-element arrays; indices are masked with [& 63],
   which keeps every access in bounds and 8-byte aligned at every
   optimization level. *)
let array_mask = 63

let globals =
  [
    { Ast.g_name = "gi"; g_ty = Ast.Tint; g_size = 64; g_pos = pos };
    { Ast.g_name = "gj"; g_ty = Ast.Tint; g_size = 64; g_pos = pos };
    { Ast.g_name = "gf"; g_ty = Ast.Tfloat; g_size = 64; g_pos = pos };
  ]

let int_consts = [| 0; 1; 2; 3; 5; 7; 8; 12; 17; 63; 100; 1000; -1; -3; -17 |]

(* Finite by construction ({!Emc_lang.Pretty.float_lit} rejects nan/inf
   literals); NaN and infinities enter programs through arithmetic. *)
let float_consts = [| 0.0; 1.0; 0.5; 1.5; 2.25; 3.75; 0.125; 1000.5; -2.5 |]

type ctx = {
  rng : Rng.t;
  mutable fresh : int;
  mutable scopes : (string * Ast.ty) list list;
  mutable protected : string list;  (** loop counters: never randomly assigned *)
  mutable helpers : (string * (string * Ast.ty) list * Ast.ty) list;
  mutable ret_ty : Ast.ty;  (** return type of the function being generated *)
}

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let push ctx = ctx.scopes <- [] :: ctx.scopes
let pop ctx = ctx.scopes <- List.tl ctx.scopes

let declare ctx name ty =
  ctx.scopes <- ((name, ty) :: List.hd ctx.scopes) :: List.tl ctx.scopes

let vars ctx ty =
  List.concat ctx.scopes |> List.filter_map (fun (n, t) -> if t = ty then Some n else None)

let assignable ctx ty = vars ctx ty |> List.filter (fun n -> not (List.mem n ctx.protected))

let pct ctx n = Rng.int ctx.rng 100 < n

(* ---------------- expressions ---------------- *)

let rec iexpr ctx d =
  if d <= 0 || pct ctx 18 then ileaf ctx
  else
    match Rng.int ctx.rng 100 with
    | n when n < 20 ->
        let op = Rng.choice ctx.rng [| Ast.Add; Ast.Sub; Ast.Mul |] in
        e (Ast.Bin (op, iexpr ctx (d - 1), iexpr ctx (d - 1)))
    | n when n < 32 ->
        let op = if Rng.bool ctx.rng then Ast.Div else Ast.Rem in
        e (Ast.Bin (op, iexpr ctx (d - 1), denom ctx (d - 1)))
    | n when n < 42 ->
        let op = Rng.choice ctx.rng [| Ast.BAnd; Ast.BOr; Ast.BXor |] in
        e (Ast.Bin (op, iexpr ctx (d - 1), iexpr ctx (d - 1)))
    | n when n < 48 ->
        (* shift amounts are masked to 6 bits identically at every level,
           so an arbitrary rhs is semantically safe; keep it small-ish *)
        let op = if Rng.bool ctx.rng then Ast.Shl else Ast.Shr in
        let amt =
          if pct ctx 60 then e (Ast.Int (1 + Rng.int ctx.rng 8))
          else e (Ast.Bin (Ast.BAnd, iexpr ctx (d - 1), e (Ast.Int 15)))
        in
        e (Ast.Bin (op, iexpr ctx (d - 1), amt))
    | n when n < 56 ->
        let op = Rng.choice ctx.rng [| Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |] in
        e (Ast.Bin (op, iexpr ctx (d - 1), iexpr ctx (d - 1)))
    | n when n < 68 ->
        (* float comparison: the NaN divergence surface *)
        let op = Rng.choice ctx.rng [| Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |] in
        e (Ast.Bin (op, fexpr ctx (d - 1), fexpr ctx (d - 1)))
    | n when n < 74 ->
        let op = if Rng.bool ctx.rng then Ast.LAnd else Ast.LOr in
        e (Ast.Bin (op, iexpr ctx (d - 1), iexpr ctx (d - 1)))
    | n when n < 80 ->
        let op = if Rng.bool ctx.rng then Ast.Neg else Ast.Not in
        e (Ast.Un (op, iexpr ctx (d - 1)))
    | n when n < 87 -> e (Ast.CastInt (fexpr ctx (d - 1)))
    | n when n < 95 ->
        let a = if Rng.bool ctx.rng then "gi" else "gj" in
        e (Ast.Index (a, index ctx (d - 1)))
    | _ -> (
        match call ctx (d - 1) Ast.Tint with Some c -> c | None -> ileaf ctx)

and fexpr ctx d =
  if d <= 0 || pct ctx 22 then fleaf ctx
  else
    match Rng.int ctx.rng 100 with
    | n when n < 38 ->
        let op = Rng.choice ctx.rng [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div |] in
        e (Ast.Bin (op, fexpr ctx (d - 1), fexpr ctx (d - 1)))
    | n when n < 46 ->
        (* explicit NaN producer *)
        e (Ast.Bin (Ast.Div, e (Ast.Float 0.0), e (Ast.Float 0.0)))
    | n when n < 60 -> e (Ast.CastFloat (iexpr ctx (d - 1)))
    | n when n < 76 -> e (Ast.Index ("gf", index ctx (d - 1)))
    | n when n < 82 -> e (Ast.Un (Ast.Neg, fexpr ctx (d - 1)))
    | _ -> (
        match call ctx (d - 1) Ast.Tfloat with Some c -> c | None -> fleaf ctx)

and ileaf ctx =
  let vs = vars ctx Ast.Tint in
  if vs <> [] && pct ctx 55 then e (Ast.Var (Rng.choice ctx.rng (Array.of_list vs)))
  else e (Ast.Int (Rng.choice ctx.rng int_consts))

and fleaf ctx =
  let vs = vars ctx Ast.Tfloat in
  if vs <> [] && pct ctx 55 then e (Ast.Var (Rng.choice ctx.rng (Array.of_list vs)))
  else e (Ast.Float (Rng.choice ctx.rng float_consts))

(* divisor: mostly provably non-zero (constant, or [e | 1]), sometimes an
   arbitrary expression so genuine div-by-zero traps get exercised *)
and denom ctx d =
  match Rng.int ctx.rng 100 with
  | n when n < 55 -> e (Ast.Int (Rng.choice ctx.rng [| 2; 3; 5; 7; 8; 16; -3 |]))
  | n when n < 85 -> e (Ast.Bin (Ast.BOr, iexpr ctx d, e (Ast.Int 1)))
  | _ -> iexpr ctx d

and index ctx d = e (Ast.Bin (Ast.BAnd, iexpr ctx d, e (Ast.Int array_mask)))

and call ctx d ty =
  match List.filter (fun (_, _, r) -> r = ty) ctx.helpers with
  | [] -> None
  | cands ->
      let name, params, _ = Rng.choice ctx.rng (Array.of_list cands) in
      let rec args = function
        | [] -> []
        | (_, pty) :: rest ->
            let a =
              match pty with
              | Ast.Tint -> iexpr ctx (min d 2)
              | Ast.Tfloat -> fexpr ctx (min d 2)
            in
            a :: args rest
      in
      Some (e (Ast.CallE (name, args params)))

let expr_of_ty ctx ty d = match ty with Ast.Tint -> iexpr ctx d | Ast.Tfloat -> fexpr ctx d

(* ---------------- statements ---------------- *)

(* explicit recursion: evaluation order must be fixed (the rng is stateful) *)
let rec stmts ctx ~depth n =
  if n <= 0 then [] else
    let first = stmt ctx ~depth in
    first @ stmts ctx ~depth (n - 1)

and stmt ctx ~depth : Ast.stmt list =
  let d = 3 in
  match Rng.int ctx.rng 100 with
  | n when n < 24 ->
      let ty = if pct ctx 60 then Ast.Tint else Ast.Tfloat in
      let init = expr_of_ty ctx ty d in
      let name = fresh ctx "v" in
      let r = [ s (Ast.Let (name, (if Rng.bool ctx.rng then Some ty else None), init)) ] in
      declare ctx name ty;
      r
  | n when n < 36 -> (
      let ty = if Rng.bool ctx.rng then Ast.Tint else Ast.Tfloat in
      match assignable ctx ty with
      | [] -> out_stmt ctx d
      | vs ->
          [ s (Ast.Assign (Rng.choice ctx.rng (Array.of_list vs), expr_of_ty ctx ty d)) ])
  | n when n < 48 ->
      if pct ctx 65 then
        let a = if Rng.bool ctx.rng then "gi" else "gj" in
        [ s (Ast.AssignIdx (a, index ctx 2, iexpr ctx d)) ]
      else [ s (Ast.AssignIdx ("gf", index ctx 2, fexpr ctx d)) ]
  | n when n < 60 -> out_stmt ctx d
  | n when n < 72 && depth > 0 ->
      let c = iexpr ctx 2 in
      push ctx;
      let thn = stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 3) in
      pop ctx;
      let els =
        if Rng.bool ctx.rng then begin
          push ctx;
          let x = stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 2) in
          pop ctx;
          x
        end
        else []
      in
      [ s (Ast.If (c, thn, els)) ]
  | n when n < 86 && depth > 0 -> for_loop ctx ~depth
  | n when n < 93 && depth > 0 -> while_loop ctx ~depth
  | n when n < 96 ->
      (* early return; lowering discards anything unreachable after it *)
      [ s (Ast.Return (Some (expr_of_ty ctx ctx.ret_ty 2))) ]
  | _ -> out_stmt ctx d

and out_stmt ctx d =
  if Rng.bool ctx.rng then [ s (Ast.Out (iexpr ctx d)) ] else [ s (Ast.Out (fexpr ctx d)) ]

and for_loop ctx ~depth =
  let iv = fresh ctx "i" in
  let init = e (Ast.Int (Rng.int ctx.rng 3)) in
  let cmp = if Rng.bool ctx.rng then Ast.Lt else Ast.Le in
  let bound =
    (* occasionally a masked variable bound (may be zero-trip) *)
    if pct ctx 80 then e (Ast.Int (2 + Rng.int ctx.rng 9))
    else e (Ast.Bin (Ast.BAnd, ileaf ctx, e (Ast.Int 7)))
  in
  let step = e (Ast.Int (1 + Rng.int ctx.rng 3)) in
  push ctx;
  declare ctx iv Ast.Tint;
  ctx.protected <- iv :: ctx.protected;
  let body = stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 3) in
  ctx.protected <- List.filter (fun x -> x <> iv) ctx.protected;
  pop ctx;
  [ s (Ast.For (iv, init, cmp, bound, step, body)) ]

and while_loop ctx ~depth =
  (* [let w = K; while ((w > 0) && cond) { body; w = w - 1; }] — bounded by
     construction because [w] is protected from random assignment *)
  let w = fresh ctx "w" in
  let k = 1 + Rng.int ctx.rng 7 in
  declare ctx w Ast.Tint;
  ctx.protected <- w :: ctx.protected;
  let cond =
    e (Ast.Bin (Ast.LAnd, e (Ast.Bin (Ast.Gt, e (Ast.Var w), e (Ast.Int 0))), iexpr ctx 2))
  in
  push ctx;
  let body = stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 3) in
  pop ctx;
  ctx.protected <- List.filter (fun x -> x <> w) ctx.protected;
  let dec = s (Ast.Assign (w, e (Ast.Bin (Ast.Sub, e (Ast.Var w), e (Ast.Int 1))))) in
  [ s (Ast.Let (w, None, e (Ast.Int k))); s (Ast.While (cond, body @ [ dec ])) ]

(* ---------------- functions ---------------- *)

let gen_helper ctx i =
  let name = Printf.sprintf "h%d" i in
  let nparams = 1 + Rng.int ctx.rng 3 in
  let params = ref [] in
  for _ = 1 to nparams do
    params := (fresh ctx "p", if pct ctx 65 then Ast.Tint else Ast.Tfloat) :: !params
  done;
  let params = List.rev !params in
  let ret = if pct ctx 70 then Ast.Tint else Ast.Tfloat in
  ctx.scopes <- [ params ];
  ctx.protected <- [];
  ctx.ret_ty <- ret;
  let body = stmts ctx ~depth:2 (2 + Rng.int ctx.rng 4) in
  let body = body @ [ s (Ast.Return (Some (expr_of_ty ctx ret 3))) ] in
  ctx.helpers <- (name, params, ret) :: ctx.helpers;
  { Ast.fn_name = name; fn_params = params; fn_ret = Some ret; fn_body = body; fn_pos = pos }

let gen_main ctx =
  ctx.scopes <- [ [] ];
  ctx.protected <- [];
  ctx.ret_ty <- Ast.Tint;
  let body = stmts ctx ~depth:3 (4 + Rng.int ctx.rng 5) in
  (* observe every top-level scalar and a few array cells so a wrong value
     anywhere tends to surface in the output stream *)
  let obs_vars =
    List.map (fun (n, _) -> s (Ast.Out (e (Ast.Var n)))) (List.rev (List.hd ctx.scopes))
  in
  let cell a = s (Ast.Out (e (Ast.Index (a, e (Ast.Int (Rng.int ctx.rng 64)))))) in
  let obs_cells = [ cell "gi"; cell "gi"; cell "gj"; cell "gf"; cell "gf" ] in
  let body = body @ obs_vars @ obs_cells @ [ s (Ast.Return (Some (iexpr ctx 3))) ] in
  { Ast.fn_name = "main"; fn_params = []; fn_ret = Some Ast.Tint; fn_body = body; fn_pos = pos }

(** [program rng] draws one random well-typed MiniC program. Equal generator
    states give equal programs. *)
let program rng : Ast.program =
  let ctx =
    { rng; fresh = 0; scopes = [ [] ]; protected = []; helpers = []; ret_ty = Ast.Tint }
  in
  let n_helpers = Rng.int rng 3 in
  let helpers = ref [] in
  for i = 0 to n_helpers - 1 do
    helpers := gen_helper ctx i :: !helpers
  done;
  let main = gen_main ctx in
  { Ast.globals; funcs = List.rev !helpers @ [ main ] }
