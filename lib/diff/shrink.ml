(** Greedy structural shrinker for diverging MiniC programs.

    Candidate mutations, roughly largest-cut first: drop an unused helper
    function, drop a statement, splice a nested body ([if]/[while]/[for])
    into its parent block, promote a sub-expression over its parent, replace
    an expression with a literal leaf, and halve integer constants.
    Candidates are {e not} guaranteed well-typed — the [diverges] predicate
    is expected to return [false] for programs that fail to compile, which
    rejects ill-typed mutants for free.

    Shrinking is monotone in the lexicographic measure
    [(AST nodes, constant weight)]: a candidate is accepted only when its
    measure is strictly smaller, so the loop terminates and the result is
    never bigger than the input. *)

open Emc_lang

(* ---------------- size measure ---------------- *)

let rec expr_nodes (x : Ast.expr) =
  match x.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Var _ -> 1
  | Ast.Index (_, i) -> 1 + expr_nodes i
  | Ast.Bin (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Ast.Un (_, a) | Ast.CastInt a | Ast.CastFloat a -> 1 + expr_nodes a
  | Ast.CallE (_, args) -> 1 + List.fold_left (fun s a -> s + expr_nodes a) 0 args

let rec expr_weight (x : Ast.expr) =
  match x.desc with
  | Ast.Int v ->
      let a = abs v in
      if a < 0 (* abs min_int *) || a > 4096 then 4096 else a
  | Ast.Float v -> if v = 0.0 then 0 else 1
  | Ast.Var _ -> 0
  | Ast.Index (_, i) -> expr_weight i
  | Ast.Bin (_, a, b) -> expr_weight a + expr_weight b
  | Ast.Un (_, a) | Ast.CastInt a | Ast.CastFloat a -> expr_weight a
  | Ast.CallE (_, args) -> List.fold_left (fun s a -> s + expr_weight a) 0 args

let rec stmt_fold fe (st : Ast.stmt) =
  match st.sdesc with
  | Ast.Let (_, _, e) | Ast.Assign (_, e) | Ast.Return (Some e) | Ast.ExprStmt e | Ast.Out e ->
      1 + fe e
  | Ast.Return None -> 1
  | Ast.AssignIdx (_, i, e) -> 1 + fe i + fe e
  | Ast.If (c, t, f) -> 1 + fe c + block_fold fe t + block_fold fe f
  | Ast.While (c, b) -> 1 + fe c + block_fold fe b
  | Ast.For (_, init, _, bound, step, b) -> 1 + fe init + fe bound + fe step + block_fold fe b

and block_fold fe b = List.fold_left (fun s x -> s + stmt_fold fe x) 0 b

let measure (p : Ast.program) =
  let over fe = List.fold_left (fun s (f : Ast.func) -> s + 1 + block_fold fe f.fn_body) 0 p.funcs in
  (over expr_nodes, over expr_weight)

(* ---------------- candidates ---------------- *)

(* every list obtained by rewriting exactly one element *)
let one_hole shrink xs =
  let rec go pre = function
    | [] -> []
    | x :: rest ->
        List.map (fun x' -> List.rev_append pre (x' :: rest)) (shrink x) @ go (x :: pre) rest
  in
  go [] xs

let rec shrink_expr (x : Ast.expr) : Ast.expr list =
  let mk d = { x with Ast.desc = d } in
  let subs =
    match x.Ast.desc with
    | Ast.Bin (_, a, b) -> [ a; b ]
    | Ast.Un (_, a) | Ast.CastInt a | Ast.CastFloat a -> [ a ]
    | Ast.Index (_, i) -> [ i ]
    | Ast.CallE (_, args) -> args
    | _ -> []
  in
  let leaves =
    match x.Ast.desc with
    | Ast.Int 0 -> []
    | Ast.Int v -> [ mk (Ast.Int 0); mk (Ast.Int (v / 2)) ]
    | Ast.Float v -> if v = 0.0 then [] else [ mk (Ast.Float 0.0) ]
    | Ast.Var _ -> [ mk (Ast.Int 0); mk (Ast.Float 0.0) ]
    | _ -> [ mk (Ast.Int 0); mk (Ast.Float 0.0); mk (Ast.Int 1) ]
  in
  let nested =
    match x.Ast.desc with
    | Ast.Bin (op, a, b) ->
        List.map (fun a' -> mk (Ast.Bin (op, a', b))) (shrink_expr a)
        @ List.map (fun b' -> mk (Ast.Bin (op, a, b'))) (shrink_expr b)
    | Ast.Un (op, a) -> List.map (fun a' -> mk (Ast.Un (op, a'))) (shrink_expr a)
    | Ast.CastInt a -> List.map (fun a' -> mk (Ast.CastInt a')) (shrink_expr a)
    | Ast.CastFloat a -> List.map (fun a' -> mk (Ast.CastFloat a')) (shrink_expr a)
    | Ast.Index (g, i) -> List.map (fun i' -> mk (Ast.Index (g, i'))) (shrink_expr i)
    | Ast.CallE (f, args) ->
        List.map (fun args' -> mk (Ast.CallE (f, args'))) (one_hole shrink_expr args)
    | _ -> []
  in
  subs @ leaves @ nested

let rec shrink_stmt (st : Ast.stmt) : Ast.stmt list =
  let mk d = { st with Ast.sdesc = d } in
  match st.Ast.sdesc with
  | Ast.Let (n, a, e) -> List.map (fun e' -> mk (Ast.Let (n, a, e'))) (shrink_expr e)
  | Ast.Assign (n, e) -> List.map (fun e' -> mk (Ast.Assign (n, e'))) (shrink_expr e)
  | Ast.AssignIdx (g, i, e) ->
      List.map (fun i' -> mk (Ast.AssignIdx (g, i', e))) (shrink_expr i)
      @ List.map (fun e' -> mk (Ast.AssignIdx (g, i, e'))) (shrink_expr e)
  | Ast.If (c, t, f) ->
      List.map (fun c' -> mk (Ast.If (c', t, f))) (shrink_expr c)
      @ List.map (fun t' -> mk (Ast.If (c, t', f))) (shrink_block t)
      @ List.map (fun f' -> mk (Ast.If (c, t, f'))) (shrink_block f)
  | Ast.While (c, b) ->
      List.map (fun c' -> mk (Ast.While (c', b))) (shrink_expr c)
      @ List.map (fun b' -> mk (Ast.While (c, b'))) (shrink_block b)
  | Ast.For (iv, init, cmp, bound, step, b) ->
      (* the step is left alone: it must remain a positive constant *)
      List.map (fun bound' -> mk (Ast.For (iv, init, cmp, bound', step, b))) (shrink_expr bound)
      @ List.map (fun init' -> mk (Ast.For (iv, init', cmp, bound, step, b))) (shrink_expr init)
      @ List.map (fun b' -> mk (Ast.For (iv, init, cmp, bound, step, b'))) (shrink_block b)
  | Ast.Return (Some e) -> List.map (fun e' -> mk (Ast.Return (Some e'))) (shrink_expr e)
  | Ast.Return None -> []
  | Ast.ExprStmt e -> List.map (fun e' -> mk (Ast.ExprStmt e')) (shrink_expr e)
  | Ast.Out e -> List.map (fun e' -> mk (Ast.Out e')) (shrink_expr e)

and shrink_block (b : Ast.stmt list) : Ast.stmt list list =
  let rec drops pre = function
    | [] -> []
    | x :: rest -> List.rev_append pre rest :: drops (x :: pre) rest
  in
  let rec splices pre = function
    | [] -> []
    | x :: rest ->
        let here =
          match x.Ast.sdesc with
          | Ast.If (_, t, f) -> [ List.rev_append pre (t @ f @ rest) ]
          | Ast.While (_, b') -> [ List.rev_append pre (b' @ rest) ]
          | Ast.For (_, _, _, _, _, b') -> [ List.rev_append pre (b' @ rest) ]
          | _ -> []
        in
        here @ splices (x :: pre) rest
  in
  drops [] b @ splices [] b @ one_hole shrink_stmt b

let candidates (p : Ast.program) : Ast.program list =
  let drop_helpers =
    (* dropping a helper only survives the compile check when it is unused *)
    let rec go pre = function
      | [] | [ _ ] -> [] (* never drop the last function (main) *)
      | f :: rest -> { p with Ast.funcs = List.rev_append pre rest } :: go (f :: pre) rest
    in
    go [] p.Ast.funcs
  in
  let body_shrinks =
    one_hole
      (fun (f : Ast.func) ->
        List.map (fun b -> { f with Ast.fn_body = b }) (shrink_block f.fn_body))
      p.Ast.funcs
    |> List.map (fun fs -> { p with Ast.funcs = fs })
  in
  drop_helpers @ body_shrinks

(* ---------------- driver ---------------- *)

(** [run ~diverges p] greedily minimizes [p] while [diverges] holds,
    returning the minimized program and the number of accepted shrink
    steps. [diverges] must return [false] for programs that do not
    compile. At most [max_checks] predicate evaluations are spent. *)
let run ?(max_checks = 1500) ~diverges (p : Ast.program) : Ast.program * int =
  let checks = ref 0 in
  let steps = ref 0 in
  let rec go p m =
    let next =
      List.find_opt
        (fun c ->
          !checks < max_checks && measure c < m
          &&
          (incr checks;
           diverges c))
        (candidates p)
    in
    match next with
    | Some c ->
        incr steps;
        go c (measure c)
    | None -> p
  in
  let r = go p (measure p) in
  (r, !steps)
