(** Execution outcomes, canonicalized for cross-level comparison.

    One {!outcome} record describes a complete run of a program at any
    level — IR interpreter, functional (architectural) simulator, or the
    out-of-order timing model's commit stream. Everything is rendered to
    strings up front so outcomes are marshal-safe (they cross the
    {!Emc_par} fork boundary) and so divergence reports are directly
    printable.

    Equivalence rule: if both runs trapped, the trap {e categories} must
    match (payloads and partial outputs may differ — block-local scheduling
    can legally reorder a trapping division past an [out()] within the same
    basic block); if both ran to completion, outputs and return value must
    match exactly. A trap on one side and a clean exit on the other is
    always a divergence.

    Floats are canonicalized to their exact bit pattern ([%h] plus the
    IEEE-754 bits), so [-0.0] vs [0.0], NaN payloads, and the last ulp all
    count. Both levels execute the same OCaml double arithmetic, so any
    bit difference is a genuine semantic divergence, not rounding noise. *)

open Emc_ir

type outcome = {
  trap : string option;  (** {!Emc_ir.Trap.category} when the run trapped *)
  ret : string option;
  outputs : string list;
}

let fstr f = Printf.sprintf "%h#%016Lx" f (Int64.bits_of_float f)

let ivalue = function Interp.VI v -> string_of_int v | Interp.VF f -> fstr f
let fvalue = function Emc_sim.Func.VI v -> string_of_int v | Emc_sim.Func.VF f -> fstr f

let clean ~ret ~outputs = { trap = None; ret; outputs }
let trapped c ~outputs = { trap = Some (Trap.category c); ret = None; outputs }

let equal a b =
  match (a.trap, b.trap) with
  | Some x, Some y -> x = y
  | None, None -> a.ret = b.ret && a.outputs = b.outputs
  | _ -> false

let render o =
  let outs = String.concat "," o.outputs in
  match o.trap with
  | Some c -> Printf.sprintf "trap:%s outputs=[%s]" c outs
  | None ->
      Printf.sprintf "ret=%s outputs=[%s]"
        (match o.ret with Some r -> r | None -> "-")
        outs

(* Fuel budgets are far above anything the generator can produce (loops are
   small and bounded), so [Out_of_fuel] at one level means a runaway
   program — a real divergence, not a tight budget. *)
let interp_fuel = 50_000_000
let func_fuel = 200_000_000
let ooo_max_cycles = 400_000_000

(** Run [main] under the IR interpreter. *)
let run_interp ?(semantics = Interp.Ieee) (ir : Ir.program) : outcome =
  let st = Interp.create ir in
  try
    let r = Interp.run ~fuel:interp_fuel ~fcmp_semantics:semantics st ~func:"main" ~args:[] in
    clean ~ret:(Option.map ivalue r.ret) ~outputs:(List.map ivalue r.outputs)
  with Trap.Trap c -> trapped c ~outputs:(List.rev_map ivalue st.Interp.outputs)

(** Run generated machine code under the functional simulator. [ret_ty] is
    the IR [main]'s return type, deciding which physical register holds the
    result. *)
let run_func ~ret_ty (prog : Emc_isa.Isa.program) : outcome =
  let f = Emc_sim.Func.create prog in
  let ret () =
    match ret_ty with
    | Some Ir.I64 -> Some (string_of_int (Emc_sim.Func.return_value f))
    | Some Ir.F64 -> Some (fstr (Emc_sim.Func.getf f Emc_isa.Isa.f_ret))
    | None -> None
  in
  try
    ignore (Emc_sim.Func.run ~fuel:func_fuel f);
    clean ~ret:(ret ()) ~outputs:(List.map fvalue (Emc_sim.Func.outputs f))
  with Trap.Trap c -> trapped c ~outputs:(List.map fvalue (Emc_sim.Func.outputs f))

(** Run the same machine code through the detailed out-of-order model and
    read the architectural state it drove. A cycle cap turns a deadlocked
    pipeline (RUU never draining) into an [out-of-fuel] outcome instead of a
    hang, so scheduler bugs surface as divergences. *)
let run_ooo (cfg : Emc_sim.Config.t) ~ret_ty (prog : Emc_isa.Isa.program) : outcome =
  let o = Emc_sim.Ooo.create cfg prog in
  let f = Emc_sim.Ooo.func o in
  let outputs () = List.map fvalue (Emc_sim.Func.outputs f) in
  try
    let cycles = ref 0 in
    while Emc_sim.Ooo.busy o && !cycles < ooo_max_cycles do
      Emc_sim.Ooo.step_cycle o;
      incr cycles
    done;
    if Emc_sim.Ooo.busy o then trapped Trap.Out_of_fuel ~outputs:(outputs ())
    else
      let ret =
        match ret_ty with
        | Some Ir.I64 -> Some (string_of_int (Emc_sim.Func.return_value f))
        | Some Ir.F64 -> Some (fstr (Emc_sim.Func.getf f Emc_isa.Isa.f_ret))
        | None -> None
      in
      clean ~ret ~outputs:(outputs ())
  with Trap.Trap c -> trapped c ~outputs:(outputs ())
