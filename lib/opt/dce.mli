(** Dead code elimination: removes pure instructions (and loads — reads
    cannot trap) whose results are never used, iterating whole dead chains
    to a fixpoint. Runs unconditionally after the flag-gated passes, as gcc
    does at any -O level. *)

val removable : Emc_ir.Ir.instr -> bool

val run_func : Emc_ir.Ir.func -> bool
(** Returns [true] if anything was removed. *)

val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
