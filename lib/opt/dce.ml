open Emc_ir

(** Dead code elimination.

    Removes pure instructions (and loads — there is no trap model for reads)
    whose destination register is never used, iterating to a fixpoint so that
    whole dead chains disappear. Runs unconditionally as cleanup after the
    flag-gated passes, as gcc does at any -O level. *)

let removable instr =
  match instr with
  | Ir.Load _ -> true
  | _ -> Ir.is_pure instr

let run_func (f : Ir.func) =
  let changed = ref true in
  let any = ref false in
  while !changed do
    changed := false;
    let a = Analysis.compute f in
    Array.iter
      (fun (b : Ir.block) ->
        let keep =
          List.filter
            (fun i ->
              match Ir.def_of i with
              | Some d when removable i && a.Analysis.use_count.(d) = 0 ->
                  changed := true;
                  any := true;
                  false
              | _ -> true)
            b.instrs
        in
        b.instrs <- keep)
      f.blocks
  done;
  !any

let run (p : Ir.program) =
  List.iter (fun (_, f) -> ignore (run_func f)) p.funcs;
  p
