open Emc_ir

(** -floop-optimize: loop-invariant code motion (gcc's "simple loop
    optimizations such as moving constant expressions, simplify test
    conditions").

    An instruction is hoisted to the loop preheader when it is pure (no side
    effects and cannot trap — see {!Emc_ir.Ir.is_pure}), its destination has a
    single static definition (the move cannot clobber another definition),
    and none of its register operands is defined anywhere inside the loop. *)

module IntSet = Set.Make (Int)

(** Ensure [loop] has a dedicated preheader block whose only successor is the
    header and that receives all loop entries from outside; returns its
    label. May mutate the CFG (creating one block and redirecting edges). *)
let ensure_preheader (f : Ir.func) (loop : Loops.t) =
  let outside = Loops.preheader_candidates f loop in
  match outside with
  | [ p ] when Ir.successors f.blocks.(p).term = [ loop.header ] -> p
  | _ ->
      let ph = Ir.fresh_block f in
      ph.term <- Ir.Br loop.header;
      let redirect t =
        match t with
        | Ir.Br l when l = loop.header -> Ir.Br ph.id
        | Ir.CondBr (c, a, b) ->
            let a = if a = loop.header then ph.id else a in
            let b = if b = loop.header then ph.id else b in
            Ir.CondBr (c, a, b)
        | t -> t
      in
      List.iter (fun p -> f.blocks.(p).term <- redirect f.blocks.(p).term) outside;
      (* place the preheader just before the header in the layout *)
      let rec insert = function
        | [] -> [ ph.id ]
        | l :: rest when l = loop.header -> ph.id :: l :: rest
        | l :: rest -> l :: insert rest
      in
      f.layout <- insert f.layout;
      ph.id

let defined_in_loop (f : Ir.func) (loop : Loops.t) =
  let defs = ref IntSet.empty in
  IntSet.iter
    (fun l ->
      List.iter
        (fun i -> match Ir.def_of i with Some d -> defs := IntSet.add d !defs | None -> ())
        f.blocks.(l).instrs)
    loop.body;
  !defs

let hoist_loop (f : Ir.func) (loop : Loops.t) =
  let ph = ensure_preheader f loop in
  let changed = ref true in
  let any = ref false in
  while !changed do
    changed := false;
    let a = Analysis.compute f in
    let loop_defs = defined_in_loop f loop in
    let invariant_operand r = not (IntSet.mem r loop_defs) in
    let hoisted = ref [] in
    IntSet.iter
      (fun l ->
        let b = f.blocks.(l) in
        let keep =
          List.filter
            (fun instr ->
              let can_hoist =
                Ir.is_pure instr
                && (match Ir.def_of instr with
                   | Some d -> Analysis.single_def a d
                   | None -> false)
                && List.for_all invariant_operand (Ir.uses_of instr)
              in
              if can_hoist then begin
                hoisted := instr :: !hoisted;
                changed := true;
                any := true;
                false
              end
              else true)
            b.instrs
        in
        b.instrs <- keep)
      loop.body;
    let phb = f.blocks.(ph) in
    phb.instrs <- phb.instrs @ List.rev !hoisted
  done;
  !any

let run_func (f : Ir.func) =
  (* innermost loops first so invariants bubble outward across iterations *)
  let loops = List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) (Loops.find f) in
  List.iter
    (fun loop ->
      (* CFG may have changed (preheaders added); re-find to stay safe *)
      let loops_now = Loops.find f in
      match
        List.find_opt (fun l -> l.Loops.header = loop.Loops.header) loops_now
      with
      | Some l -> ignore (hoist_loop f l)
      | None -> ())
    loops

let run (p : Ir.program) =
  List.iter (fun (_, f) -> run_func f) p.funcs;
  p
