(** -fprefetch-loop-arrays: inserts software prefetches for sequential
    array walks in counted loops over large global arrays, a fixed number of
    iterations ahead. Costs fetch bandwidth and a load/store-unit slot and
    can pollute the cache — the paper's "negative interactions". *)

val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
