open Emc_ir

(** Shared def-site analysis.

    The IR is not SSA, so transformation passes restrict themselves to
    registers with a {e single static definition} (all compiler-generated
    temporaries are; only source-level mutable variables are not). *)

type t = {
  def_count : int array;  (** definitions per vreg; parameters count as one *)
  def_instr : Ir.instr option array;  (** the unique defining instruction, when single-def *)
  def_block : int array;  (** block of the unique def; -1 otherwise *)
  use_count : int array;
}

let compute (f : Ir.func) =
  let n = f.Ir.next_reg in
  let def_count = Array.make n 0 in
  let def_instr = Array.make n None in
  let def_block = Array.make n (-1) in
  let use_count = Array.make n 0 in
  List.iter (fun p -> def_count.(p) <- 1) f.Ir.params;
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          (match Ir.def_of i with
          | Some d ->
              def_count.(d) <- def_count.(d) + 1;
              def_instr.(d) <- Some i;
              def_block.(d) <- b.id
          | None -> ());
          List.iter (fun u -> use_count.(u) <- use_count.(u) + 1) (Ir.uses_of i))
        b.instrs;
      List.iter (fun u -> use_count.(u) <- use_count.(u) + 1) (Ir.term_uses b.term))
    f.blocks;
  (* params are not single-def *instructions* *)
  List.iter (fun p -> def_instr.(p) <- None) f.Ir.params;
  for r = 0 to n - 1 do
    if def_count.(r) <> 1 then begin
      def_instr.(r) <- None;
      def_block.(r) <- -1
    end
  done;
  { def_count; def_instr; def_block; use_count }

let single_def t r = r < Array.length t.def_count && t.def_count.(r) = 1

(** Rewrite every register use in the function with [subst] (definitions are
    left untouched). *)
let substitute_uses (f : Ir.func) (subst : Ir.vreg -> Ir.vreg) =
  let s r = subst r in
  let op = function Ir.Reg r -> Ir.Reg (s r) | Ir.Imm i -> Ir.Imm i in
  let instr = function
    | Ir.Iconst _ as i -> i
    | Ir.Fconst _ as i -> i
    | Ir.Ibin (o, d, a, b) -> Ir.Ibin (o, d, op a, op b)
    | Ir.Fbin (o, d, a, b) -> Ir.Fbin (o, d, s a, s b)
    | Ir.Icmp (o, d, a, b) -> Ir.Icmp (o, d, op a, op b)
    | Ir.Fcmp (o, d, a, b) -> Ir.Fcmp (o, d, s a, s b)
    | Ir.Load (t, d, a) -> Ir.Load (t, d, s a)
    | Ir.Store (t, a, v) -> Ir.Store (t, s a, s v)
    | Ir.Prefetch a -> Ir.Prefetch (s a)
    | Ir.Call (d, n, args) -> Ir.Call (d, n, List.map s args)
    | Ir.ItoF (d, x) -> Ir.ItoF (d, s x)
    | Ir.FtoI (d, x) -> Ir.FtoI (d, s x)
    | Ir.Mov (t, d, x) -> Ir.Mov (t, d, s x)
  in
  let term = function
    | Ir.Ret r -> Ir.Ret (Option.map s r)
    | Ir.Br l -> Ir.Br l
    | Ir.CondBr (c, a, b) -> Ir.CondBr (s c, a, b)
  in
  Array.iter
    (fun (b : Ir.block) ->
      b.instrs <- List.map instr b.instrs;
      b.term <- term b.term)
    f.blocks
