(** Compiler configuration: the 14 optimization flags and heuristics of the
    paper's Table 1, with gcc-4.0.1-like names, ranges and defaults. *)

type t = {
  inline_functions : bool;  (** #1 -finline-functions *)
  unroll_loops : bool;  (** #2 -funroll-loops *)
  schedule_insns2 : bool;  (** #3 -fschedule-insns2 (pre- and post-RA) *)
  loop_optimize : bool;  (** #4 -floop-optimize (LICM etc.) *)
  gcse : bool;  (** #5 -fgcse, with constant/copy propagation *)
  strength_reduce : bool;  (** #6 -fstrength-reduce *)
  omit_frame_pointer : bool;  (** #7 -fomit-frame-pointer *)
  reorder_blocks : bool;  (** #8 -freorder-blocks *)
  prefetch_loop_arrays : bool;  (** #9 -fprefetch-loop-arrays *)
  max_inline_insns_auto : int;  (** #10, range 50..150 *)
  inline_unit_growth : int;  (** #11, percent, range 25..75 *)
  inline_call_cost : int;  (** #12, range 12..20 *)
  max_unroll_times : int;  (** #13, range 4..12 *)
  max_unrolled_insns : int;  (** #14, range 100..300 *)
}

val default_heuristics : t
(** All flags off, heuristics at the paper's default (Table 6, "default O3"
    row): 100 / 50 / 16 / 8 / 200. *)

val o0 : t
val o1 : t

val o2 : t
(** The scalar optimizations, no inlining/unrolling/prefetching — the
    paper's baseline for every speedup number. *)

val o3 : t
(** O2 plus -finline-functions and -fprefetch-loop-arrays, matching the
    "default O3" flag row of the paper's Table 6. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
