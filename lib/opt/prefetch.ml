open Emc_ir

(** -fprefetch-loop-arrays: software prefetching for array accesses in
    counted loops ("generate prefetch instructions in loops that access
    large arrays").

    For every load in a canonical counted loop whose address follows the
    canonical pattern [s = shl iv, 3; a = add s, base] — i.e. a sequential
    walk over a global array — and whose target array is large (at least
    {!min_array_elems} elements), a [prefetch] for the address
    [prefetch_distance] iterations ahead is inserted right after the address
    computation.

    Costs are real: each prefetch consumes fetch/decode bandwidth and a
    load/store-unit slot in the simulator, and its fills can pollute the
    cache — the negative interactions §1 of the paper worries about. *)

module IntSet = Set.Make (Int)

let prefetch_distance = 16
let min_array_elems = 256
let max_prefetches_per_loop = 4

let run_counted (p : Ir.program) (layout : Memlayout.t) (f : Ir.func) (c : Loops.counted) =
  let a = Analysis.compute f in
  (* single-def regs holding shl iv, 3 in this loop *)
  let stride_base : (Ir.vreg, unit) Hashtbl.t = Hashtbl.create 8 in
  IntSet.iter
    (fun l ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Ibin (Ir.Shl, d, Ir.Reg s, Ir.Imm 3) when s = c.iv && Analysis.single_def a d ->
              Hashtbl.replace stride_base d ()
          | _ -> ())
        f.blocks.(l).instrs)
    c.loop.body;
  let array_of_base base =
    List.find_opt
      (fun (g : Ir.global) ->
        let b0 = Memlayout.base layout g.gname in
        base >= b0 && base < b0 + (g.gsize * 8))
      p.globals
  in
  let inserted = ref 0 in
  IntSet.iter
    (fun l ->
      let b = f.blocks.(l) in
      let out = ref [] in
      List.iter
        (fun instr ->
          out := instr :: !out;
          match instr with
          | Ir.Ibin (Ir.Add, d, Ir.Reg s, Ir.Imm base)
            when Hashtbl.mem stride_base s
                 && Analysis.single_def a d
                 && !inserted < max_prefetches_per_loop -> (
              match array_of_base base with
              | Some g when g.gsize >= min_array_elems ->
                  (* prefetch [d + distance * step * 8] *)
                  let pa = Ir.fresh_reg f Ir.I64 in
                  out :=
                    Ir.Prefetch pa
                    :: Ir.Ibin (Ir.Add, pa, Ir.Reg d, Ir.Imm (prefetch_distance * c.step * 8))
                    :: !out;
                  incr inserted
              | _ -> ())
          | _ -> ())
        b.instrs;
      b.instrs <- List.rev !out)
    c.loop.body

let run (p : Ir.program) =
  let layout = Memlayout.compute p in
  List.iter
    (fun (_, f) ->
      List.iter
        (fun loop ->
          match Loops.counted_loop f loop with
          | Some c -> run_counted p layout f c
          | None -> ())
        (Loops.find f))
    p.funcs;
  p
