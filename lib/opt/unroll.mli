(** -funroll-loops, governed by max-unroll-times and max-unrolled-insns
    (Table 1 #13/#14). Canonical counted innermost loops whose body fits the
    size budget are unrolled by the full factor behind a group guard, with
    the original loop kept as the remainder. Code size grows by roughly
    factor × body — the I-cache pressure the paper's Figure 3 explores. *)

val run :
  max_unroll_times:int -> max_unrolled_insns:int -> Emc_ir.Ir.program -> Emc_ir.Ir.program
