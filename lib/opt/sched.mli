(** The pre-register-allocation half of -fschedule-insns2: per-block list
    scheduling by critical-path priority over a dependence DAG (true
    register dependences with producer latencies; WAW/WAR edges for
    multiply-defined registers; stores and calls as memory barriers), under
    an issue-width resource bound. *)

val run : issue_width:int -> Emc_ir.Ir.program -> Emc_ir.Ir.program
