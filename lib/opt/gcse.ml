open Emc_ir

(** -fgcse: global common subexpression elimination together with constant
    and copy propagation and constant folding (gcc's flag description:
    "Perform GCSE pass, also perform constant and copy propagation").

    Because the IR is not SSA, global reasoning is restricted to registers
    with a single static definition (every compiler temporary). Within a
    block, a classic value-numbering pass handles multiply-defined source
    variables and redundant loads, with versions bumped at kills. The global
    CSE is a dominator-tree walk with a scoped expression table, the standard
    dominator-based value-numbering shape. *)

(* ------------------------------------------------------------------ *)
(* Constant & copy propagation + folding                               *)

let fold_ibin op a b =
  match op with
  | Ir.Add -> Some (a + b)
  | Ir.Sub -> Some (a - b)
  | Ir.Mul -> Some (a * b)
  | Ir.Div -> if b = 0 then None else Some (a / b)
  | Ir.Rem -> if b = 0 then None else Some (a mod b)
  | Ir.And -> Some (a land b)
  | Ir.Or -> Some (a lor b)
  | Ir.Xor -> Some (a lxor b)
  | Ir.Shl -> Some (a lsl (b land 63))
  | Ir.Shr -> Some (a lsr (b land 63))
  | Ir.Sra -> Some (a asr (b land 63))

let fold_cmp op c = match op with
  | Ir.Eq -> c = 0 | Ir.Ne -> c <> 0 | Ir.Lt -> c < 0 | Ir.Le -> c <= 0 | Ir.Gt -> c > 0 | Ir.Ge -> c >= 0

(* One round of propagation/folding. Returns true if anything changed. *)
let propagate_func (f : Ir.func) =
  let a = Analysis.compute f in
  let changed = ref false in
  (* constant value of single-def int registers *)
  let const_of r =
    match a.Analysis.def_instr.(r) with
    | Some (Ir.Iconst (_, v)) -> Some v
    | _ -> None
  in
  let fconst_of r =
    match a.Analysis.def_instr.(r) with
    | Some (Ir.Fconst (_, v)) -> Some v
    | _ -> None
  in
  (* copy chains: single-def d := mov s, with s single-def *)
  let rec copy_root r depth =
    if depth > 8 then r
    else
      match a.Analysis.def_instr.(r) with
      | Some (Ir.Mov (_, _, s)) when Analysis.single_def a s -> copy_root s (depth + 1)
      | _ -> r
  in
  let subst r =
    let r' = copy_root r 0 in
    if r' <> r then changed := true;
    r'
  in
  Analysis.substitute_uses f subst;
  (* fold operands to immediates and fold whole instructions *)
  let op_imm = function
    | Ir.Imm i -> Ir.Imm i
    | Ir.Reg r -> ( match const_of r with Some v -> changed := true; Ir.Imm v | None -> Ir.Reg r)
  in
  Array.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.map
          (fun instr ->
            match instr with
            | Ir.Ibin (op, d, x, y) -> (
                let x = op_imm x and y = op_imm y in
                match (x, y) with
                | Ir.Imm ia, Ir.Imm ib -> (
                    match fold_ibin op ia ib with
                    | Some v ->
                        changed := true;
                        Ir.Iconst (d, v)
                    | None -> Ir.Ibin (op, d, x, y))
                (* algebraic identities *)
                | Ir.Reg r, Ir.Imm 0 when op = Ir.Add || op = Ir.Sub || op = Ir.Or
                                          || op = Ir.Xor || op = Ir.Shl || op = Ir.Shr
                                          || op = Ir.Sra ->
                    changed := true;
                    Ir.Mov (Ir.I64, d, r)
                | Ir.Reg r, Ir.Imm 1 when op = Ir.Mul || op = Ir.Div ->
                    changed := true;
                    Ir.Mov (Ir.I64, d, r)
                | _, Ir.Imm 0 when op = Ir.Mul ->
                    changed := true;
                    Ir.Iconst (d, 0)
                | _ -> Ir.Ibin (op, d, x, y))
            | Ir.Icmp (op, d, x, y) -> (
                let x = op_imm x and y = op_imm y in
                match (x, y) with
                | Ir.Imm ia, Ir.Imm ib ->
                    changed := true;
                    Ir.Iconst (d, if fold_cmp op (compare ia ib) then 1 else 0)
                | _ -> Ir.Icmp (op, d, x, y))
            | Ir.Fbin (op, d, x, y) -> (
                match (fconst_of x, fconst_of y) with
                | Some a', Some b' ->
                    changed := true;
                    Ir.Fconst
                      ( d,
                        match op with
                        | Ir.FAdd -> a' +. b'
                        | Ir.FSub -> a' -. b'
                        | Ir.FMul -> a' *. b'
                        | Ir.FDiv -> a' /. b' )
                | _ -> instr)
            | _ -> instr)
          b.instrs;
      (* constant-condition branches *)
      match b.term with
      | Ir.CondBr (c, t, e) when Analysis.single_def a c -> (
          match const_of c with
          | Some v ->
              changed := true;
              b.term <- Ir.Br (if v <> 0 then t else e)
          | None -> ())
      | _ -> ())
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Local value numbering (handles multi-def registers and loads)       *)

type vn_key =
  | KI of Ir.binop * int * int  (* op, vn lhs, vn rhs *)
  | KC of Ir.cmpop * int * int
  | KF of Ir.fbinop * int * int
  | KFC of Ir.cmpop * int * int
  | KLoad of Ir.ty * int * int  (* ty, vn addr, memory version *)
  | KCast of bool * int  (* itof?, vn *)

let local_vn_block (f : Ir.func) (b : Ir.block) =
  ignore f;
  let changed = ref false in
  let next_vn = ref 0 in
  let reg_vn : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let imm_vn : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let expr_tbl : (vn_key, int * Ir.vreg) Hashtbl.t = Hashtbl.create 32 in
  let mem_version = ref 0 in
  let vn_of_reg r =
    match Hashtbl.find_opt reg_vn r with
    | Some v -> v
    | None ->
        incr next_vn;
        Hashtbl.replace reg_vn r !next_vn;
        !next_vn
  in
  let vn_of_op = function
    | Ir.Reg r -> vn_of_reg r
    | Ir.Imm i -> (
        match Hashtbl.find_opt imm_vn i with
        | Some v -> v
        | None ->
            incr next_vn;
            Hashtbl.replace imm_vn i !next_vn;
            !next_vn)
  in
  let fresh_vn r =
    incr next_vn;
    Hashtbl.replace reg_vn r !next_vn;
    !next_vn
  in
  b.instrs <-
    List.map
      (fun instr ->
        let try_cse key d ty =
          match Hashtbl.find_opt expr_tbl key with
          (* [src] is only a valid replacement if it has not been redefined
             since the table entry was made: its current value number must
             still match the recorded one. *)
          | Some (vn_at_entry, src) when src <> d && vn_of_reg src = vn_at_entry ->
              changed := true;
              Hashtbl.replace reg_vn d vn_at_entry;
              Ir.Mov (ty, d, src)
          | _ ->
              let v = fresh_vn d in
              Hashtbl.replace expr_tbl key (v, d);
              instr
        in
        match instr with
        | Ir.Ibin (op, d, x, y) -> try_cse (KI (op, vn_of_op x, vn_of_op y)) d Ir.I64
        | Ir.Icmp (op, d, x, y) -> try_cse (KC (op, vn_of_op x, vn_of_op y)) d Ir.I64
        | Ir.Fbin (op, d, x, y) -> try_cse (KF (op, vn_of_reg x, vn_of_reg y)) d Ir.F64
        | Ir.Fcmp (op, d, x, y) -> try_cse (KFC (op, vn_of_reg x, vn_of_reg y)) d Ir.I64
        | Ir.ItoF (d, s) -> try_cse (KCast (true, vn_of_reg s)) d Ir.F64
        | Ir.FtoI (d, s) -> try_cse (KCast (false, vn_of_reg s)) d Ir.I64
        | Ir.Load (ty, d, addr) -> try_cse (KLoad (ty, vn_of_reg addr, !mem_version)) d ty
        | Ir.Store (_, _, _) | Ir.Call _ ->
            incr mem_version;
            (match Ir.def_of instr with Some d -> ignore (fresh_vn d) | None -> ());
            instr
        | Ir.Mov (_, d, s) ->
            Hashtbl.replace reg_vn d (vn_of_reg s);
            instr
        | _ ->
            (match Ir.def_of instr with Some d -> ignore (fresh_vn d) | None -> ());
            instr)
      b.instrs;
  !changed

(* ------------------------------------------------------------------ *)
(* Global (dominator-scoped) CSE over single-def pure expressions      *)

type gkey = GI of Ir.binop * g_op * g_op | GC of Ir.cmpop * g_op * g_op | GCast of bool * int
and g_op = GReg of int | GImm of int

let global_cse_func (f : Ir.func) =
  let a = Analysis.compute f in
  let dom = Dom.compute f in
  let kids = Dom.children dom in
  let changed = ref false in
  (* expression table with scoped undo log *)
  let tbl : (gkey, Ir.vreg) Hashtbl.t = Hashtbl.create 64 in
  let g_op = function
    | Ir.Imm i -> Some (GImm i)
    | Ir.Reg r -> if Analysis.single_def a r then Some (GReg r) else None
  in
  let key_of = function
    | Ir.Ibin (op, d, x, y) -> (
        match (g_op x, g_op y) with
        | Some gx, Some gy when Analysis.single_def a d -> Some (GI (op, gx, gy), d, Ir.I64)
        | _ -> None)
    | Ir.Icmp (op, d, x, y) -> (
        match (g_op x, g_op y) with
        | Some gx, Some gy when Analysis.single_def a d -> Some (GC (op, gx, gy), d, Ir.I64)
        | _ -> None)
    | Ir.ItoF (d, s) when Analysis.single_def a d && Analysis.single_def a s ->
        Some (GCast (true, s), d, Ir.F64)
    | Ir.FtoI (d, s) when Analysis.single_def a d && Analysis.single_def a s ->
        Some (GCast (false, s), d, Ir.I64)
    | _ -> None
  in
  let rec walk l =
    let b = f.blocks.(l) in
    let added = ref [] in
    b.instrs <-
      List.map
        (fun instr ->
          match key_of instr with
          | Some (key, d, ty) -> (
              match Hashtbl.find_opt tbl key with
              | Some src when src <> d ->
                  changed := true;
                  Ir.Mov (ty, d, src)
              | Some _ -> instr
              | None ->
                  Hashtbl.replace tbl key d;
                  added := key :: !added;
                  instr)
          | None -> instr)
        b.instrs;
    List.iter walk kids.(l);
    List.iter (Hashtbl.remove tbl) !added
  in
  walk Ir.entry_label;
  !changed

(* ------------------------------------------------------------------ *)

let run_func f =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 4 do
    incr rounds;
    let c1 = propagate_func f in
    let c2 = Array.fold_left (fun acc b -> local_vn_block f b || acc) false f.Ir.blocks in
    let c3 = global_cse_func f in
    ignore (Dce.run_func f);
    Ir.remove_unreachable f;
    continue_ := c1 || c2 || c3
  done

let run (p : Ir.program) =
  List.iter (fun (_, f) -> run_func f) p.funcs;
  p
