(** -finline-functions, governed by max-inline-insns-auto,
    inline-unit-growth and inline-call-cost (Table 1 #10–#12). Direct,
    non-recursive call sites are inlined while the callee fits the size
    threshold, looks beneficial relative to the call cost, and the unit
    growth cap is not exceeded. *)

val run :
  max_inline_insns_auto:int ->
  inline_unit_growth:int ->
  inline_call_cost:int ->
  Emc_ir.Ir.program ->
  Emc_ir.Ir.program
