(** The pass manager: applies the Table-1 optimizations in a fixed phase
    order (inline → gcse → LICM → prefetch → strength-reduce → unroll →
    gcse cleanup → schedule → DCE → reorder-blocks); the paper studies flag
    settings, not phase ordering. [issue_width] parameterizes the
    scheduler's machine model — the paper built one gcc per functional-unit
    configuration. -fomit-frame-pointer is consumed by the code generator. *)

val optimize : ?issue_width:int -> Flags.t -> Emc_ir.Ir.program -> Emc_ir.Ir.program
