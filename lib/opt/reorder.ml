open Emc_ir

(** -freorder-blocks: code placement to reduce taken branches and improve
    I-cache locality (Pettis–Hansen-style chain formation over statically
    estimated edge weights).

    Static branch probability heuristics: a loop back edge is taken with
    probability 0.9; an edge that stays inside the current loop is favored
    over one that exits it; otherwise the then-arm gets 0.6. Block frequency
    is 8^loop-depth. Chains are merged greedily on the hottest tail→head
    edges, then emitted starting from the entry chain; the code generator
    turns fall-through edges into not-taken branches. *)

module IntSet = Set.Make (Int)

let edge_weights (f : Ir.func) =
  let loops = Loops.find f in
  let depth l =
    List.fold_left
      (fun acc (lp : Loops.t) -> if IntSet.mem l lp.body then max acc lp.depth else acc)
      0 loops
  in
  let headers = List.map (fun (lp : Loops.t) -> lp.header) loops in
  let in_same_loop a b =
    List.exists (fun (lp : Loops.t) -> IntSet.mem a lp.body && IntSet.mem b lp.body) loops
  in
  let edges = ref [] in
  Array.iter
    (fun (b : Ir.block) ->
      let freq = 8.0 ** float_of_int (min 6 (depth b.id)) in
      match b.term with
      | Ir.Br l -> edges := (b.id, l, freq) :: !edges
      | Ir.CondBr (_, t, e) ->
          let pt, pe =
            if List.mem t headers && in_same_loop b.id t then (0.9, 0.1)
            else if List.mem e headers && in_same_loop b.id e then (0.1, 0.9)
            else if in_same_loop b.id t && not (in_same_loop b.id e) then (0.85, 0.15)
            else if in_same_loop b.id e && not (in_same_loop b.id t) then (0.15, 0.85)
            else (0.6, 0.4)
          in
          edges := (b.id, t, freq *. pt) :: (b.id, e, freq *. pe) :: !edges
      | Ir.Ret _ -> ())
    f.blocks;
  !edges

let run_func (f : Ir.func) =
  Ir.remove_unreachable f;
  let n = Array.length f.blocks in
  let edges = List.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) (edge_weights f) in
  (* union-find over chains; each chain is a list head..tail *)
  let chain_of = Array.init n Fun.id in
  let chains = Array.init n (fun i -> [ i ]) in
  let head c = List.hd chains.(c) in
  let tail c = List.nth chains.(c) (List.length chains.(c) - 1) in
  List.iter
    (fun (a, b, _) ->
      let ca = chain_of.(a) and cb = chain_of.(b) in
      if ca <> cb && tail ca = a && head cb = b then begin
        chains.(ca) <- chains.(ca) @ chains.(cb);
        List.iter (fun l -> chain_of.(l) <- ca) chains.(cb);
        chains.(cb) <- []
      end)
    edges;
  (* emit: entry chain first, then chains in order of their hottest incoming
     edge from already-placed code, falling back to old layout order *)
  let placed = Array.make n false in
  let order = ref [] in
  let place_chain c =
    List.iter
      (fun l ->
        if not placed.(l) then begin
          placed.(l) <- true;
          order := l :: !order
        end)
      chains.(c)
  in
  place_chain chain_of.(Ir.entry_label);
  let rec loop () =
    (* hottest edge from a placed block to an unplaced chain head *)
    let best = ref None in
    List.iter
      (fun (a, b, w) ->
        if placed.(a) && not placed.(b) then
          match !best with
          | Some (_, w') when w' >= w -> ()
          | _ -> best := Some (b, w))
      edges;
    match !best with
    | Some (b, _) ->
        place_chain chain_of.(b);
        loop ()
    | None ->
        (* disconnected leftovers, in old layout order *)
        List.iter (fun l -> if not placed.(l) then place_chain chain_of.(l)) f.layout
  in
  loop ();
  f.layout <- List.rev !order

let run (p : Ir.program) =
  List.iter (fun (_, f) -> run_func f) p.funcs;
  p
