(** -floop-optimize: loop-invariant code motion. Pure, non-trapping
    instructions whose operands have no definition inside the loop are
    hoisted to a (created if necessary) preheader. *)

val ensure_preheader : Emc_ir.Ir.func -> Emc_ir.Loops.t -> Emc_ir.Ir.label
(** Guarantee a dedicated preheader block whose only successor is the loop
    header; returns its label. Shared with strength reduction. *)

val run_func : Emc_ir.Ir.func -> unit
val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
