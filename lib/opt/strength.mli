(** -fstrength-reduce: induction-variable strength reduction on canonical
    counted loops. The canonical array-address pair [shl iv, k; add, base]
    becomes a derived induction variable bumped in the latch (two ALU ops →
    one move per iteration), and [mul iv, const] becomes an add-stepped
    variable (3-cycle multiply → move). *)

val run_func : Emc_ir.Ir.func -> unit
val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
