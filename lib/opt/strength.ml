open Emc_ir

(** -fstrength-reduce: induction-variable strength reduction on canonical
    counted loops.

    Two patterns are reduced, both keyed on the loop's induction variable
    [iv]:
    - the canonical address pair [s = shl iv, k; a = add s, base] becomes a
      derived induction variable [j = (iv << k) + base] initialized in the
      preheader and bumped by [step * 2^k] in the latch — two ALU ops per
      iteration become one move, and the [shl] usually dies;
    - a standalone [d = mul iv, m] becomes a derived variable bumped by
      [step * m] — a 3-cycle multiply becomes a move.

    Derived variables are multiply-defined (preheader + latch), which is fine
    in this non-SSA IR; downstream passes treat them conservatively. *)

module IntSet = Set.Make (Int)

let run_counted (f : Ir.func) (c : Loops.counted) =
  let a = Analysis.compute f in
  (* resolve an operand to a compile-time constant, looking through
     single-def Iconst registers (constants are only folded into immediates
     when -fgcse runs, and strength reduction must not depend on it) *)
  let imm_of = function
    | Ir.Imm k -> Some k
    | Ir.Reg r -> (
        match a.Analysis.def_instr.(r) with
        | Some (Ir.Iconst (_, k)) -> Some k
        | _ -> None)
  in
  let loop = c.loop in
  let ph = Licm.ensure_preheader f loop in
  let is_iv_incr = function
    | Ir.Ibin (Ir.Add, d, Ir.Reg s, Ir.Imm _) -> d = c.iv && s = c.iv
    | _ -> false
  in
  (* phase 1: single-def registers holding [shl iv, k] inside the loop *)
  let shl_of : (Ir.vreg, int) Hashtbl.t = Hashtbl.create 8 in
  IntSet.iter
    (fun l ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Ibin (Ir.Shl, d, Ir.Reg s, Ir.Imm k)
            when s = c.iv && Analysis.single_def a d && k >= 0 && k < 32 ->
              Hashtbl.replace shl_of d k
          | _ -> ())
        f.blocks.(l).instrs)
    loop.body;
  (* phase 2: rewrite consumers, creating one derived IV per (k, base) or m *)
  let derived : (string, Ir.vreg) Hashtbl.t = Hashtbl.create 8 in
  let new_ph_instrs = ref [] and new_latch_incrs = ref [] in
  let changed = ref false in
  let derive key mk_init incr =
    match Hashtbl.find_opt derived key with
    | Some j -> j
    | None ->
        let j = Ir.fresh_reg f Ir.I64 in
        Hashtbl.replace derived key j;
        new_ph_instrs := !new_ph_instrs @ mk_init j;
        new_latch_incrs := !new_latch_incrs @ [ Ir.Ibin (Ir.Add, j, Ir.Reg j, Ir.Imm incr) ];
        j
  in
  let reduce_in_block l =
    let b = f.blocks.(l) in
    let before_incr = ref true in
    b.instrs <-
      List.map
        (fun instr ->
          if l = c.loop.latch && is_iv_incr instr then begin
            before_incr := false;
            instr
          end
          else if l <> c.loop.latch || !before_incr then
            match instr with
            (* a = add (shl iv << k), base  — the canonical array address *)
            | Ir.Ibin (Ir.Add, d, Ir.Reg s, Ir.Imm base)
            | Ir.Ibin (Ir.Add, d, Ir.Imm base, Ir.Reg s)
              when Hashtbl.mem shl_of s && Analysis.single_def a d ->
                let k = Hashtbl.find shl_of s in
                let j =
                  derive
                    (Printf.sprintf "addr:%d:%d" k base)
                    (fun j ->
                      let t = Ir.fresh_reg f Ir.I64 in
                      [
                        Ir.Ibin (Ir.Shl, t, Ir.Reg c.iv, Ir.Imm k);
                        Ir.Ibin (Ir.Add, j, Ir.Reg t, Ir.Imm base);
                      ])
                    (c.step lsl k)
                in
                changed := true;
                Ir.Mov (Ir.I64, d, j)
            (* d = mul iv, m (the multiplier may be an Imm or a single-def
               constant register) *)
            | Ir.Ibin (Ir.Mul, d, Ir.Reg s, mop) when s = c.iv && Analysis.single_def a d
                                                      && imm_of mop <> None ->
                let m = Option.get (imm_of mop) in
                let j =
                  derive
                    (Printf.sprintf "mul:%d" m)
                    (fun j -> [ Ir.Ibin (Ir.Mul, j, Ir.Reg c.iv, Ir.Imm m) ])
                    (c.step * m)
                in
                changed := true;
                Ir.Mov (Ir.I64, d, j)
            | Ir.Ibin (Ir.Mul, d, mop, Ir.Reg s) when s = c.iv && Analysis.single_def a d
                                                      && imm_of mop <> None ->
                let m = Option.get (imm_of mop) in
                let j =
                  derive
                    (Printf.sprintf "mul:%d" m)
                    (fun j -> [ Ir.Ibin (Ir.Mul, j, Ir.Reg c.iv, Ir.Imm m) ])
                    (c.step * m)
                in
                changed := true;
                Ir.Mov (Ir.I64, d, j)
            | _ -> instr
          else instr)
        b.instrs
  in
  IntSet.iter reduce_in_block loop.body;
  if !changed then begin
    let phb = f.blocks.(ph) in
    phb.instrs <- phb.instrs @ !new_ph_instrs;
    let latch = f.blocks.(c.loop.latch) in
    latch.instrs <- latch.instrs @ !new_latch_incrs;
    (* dead shl instructions are cleaned up by the always-on DCE *)
    ignore (Dce.run_func f)
  end;
  !changed

let run_func (f : Ir.func) =
  let loops = Loops.find f in
  List.iter
    (fun loop ->
      (* refresh: earlier reductions may have changed the CFG *)
      match List.find_opt (fun l -> l.Loops.header = loop.Loops.header) (Loops.find f) with
      | Some l -> (
          match Loops.counted_loop f l with
          | Some c -> ignore (run_counted f c)
          | None -> ())
      | None -> ())
    loops

let run (p : Ir.program) =
  List.iter (fun (_, f) -> run_func f) p.funcs;
  p
