open Emc_ir

(** -funroll-loops, governed by the max-unroll-times and max-unrolled-insns
    heuristics (Table 1 #13/#14).

    Only canonical counted innermost loops are unrolled. Given a factor [u],
    the transformed code is:

    {v
    preheader:  ... -> guard
    guard:      t = iv + (u-1)*step ; c = t cmp bound ; condbr c, copy1, header
    copy1..u:   clones of the body blocks (each ends with the cloned latch
                iv += step); the last copy branches back to guard
    header:     the ORIGINAL loop, kept verbatim as the remainder loop
    v}

    The IR is not SSA and execution is sequential, so body clones reuse the
    original virtual registers unchanged — loop-carried scalars (accumulators,
    derived induction variables from strength reduction) remain correct by
    construction. The cost of unrolling is real: code size grows by roughly
    [u * body], which pressures the I-cache exactly as the paper's Figure 3
    explores, and the guard adds one add+compare per unrolled group. *)

module IntSet = Set.Make (Int)

let body_size (f : Ir.func) (loop : Loops.t) =
  IntSet.fold (fun l acc -> acc + List.length f.blocks.(l).instrs + 1) loop.body 0

let is_innermost loops (loop : Loops.t) =
  not
    (List.exists
       (fun (l' : Loops.t) ->
         l'.header <> loop.header && IntSet.mem l'.header loop.body)
       loops)

(* Clone the loop body (all blocks except the header) [u] times. *)
let unroll_counted (f : Ir.func) (c : Loops.counted) ~factor =
  let loop = c.loop in
  let body_labels = IntSet.elements (IntSet.remove loop.header loop.body) in
  (* the guard block *)
  let guard = Ir.fresh_block f in
  (* redirect outside entries from header to guard *)
  let outside = Loops.preheader_candidates f loop in
  List.iter
    (fun p ->
      let b = f.blocks.(p) in
      b.term <-
        (match b.term with
        | Ir.Br l when l = loop.header -> Ir.Br guard.id
        | Ir.CondBr (cnd, x, y) ->
            Ir.CondBr
              ( cnd,
                (if x = loop.header then guard.id else x),
                if y = loop.header then guard.id else y )
        | t -> t))
    outside;
  (* clone copies *)
  let copies =
    Array.init factor (fun _ ->
        let map = Hashtbl.create 8 in
        List.iter (fun l -> Hashtbl.replace map l (Ir.fresh_block f).Ir.id) body_labels;
        map)
  in
  let remap map l = match Hashtbl.find_opt map l with Some l' -> l' | None -> l in
  Array.iteri
    (fun ci map ->
      List.iter
        (fun l ->
          let src = f.blocks.(l) in
          let dst = f.blocks.(Hashtbl.find map l) in
          dst.instrs <- src.instrs;
          dst.term <-
            (match src.term with
            | Ir.Br t when t = loop.header ->
                (* cloned latch: chain to the next copy, or back to the guard *)
                if ci + 1 < factor then Ir.Br (remap copies.(ci + 1) c.body_entry)
                else Ir.Br guard.id
            | Ir.Br t -> Ir.Br (remap map t)
            | Ir.CondBr (cnd, a, b) -> Ir.CondBr (cnd, remap map a, remap map b)
            | Ir.Ret r -> Ir.Ret r))
        body_labels)
    copies;
  (* guard: t = iv + (factor-1)*step; cond = t cmp bound; -> copy1 | header *)
  let t = Ir.fresh_reg f Ir.I64 in
  let cond = Ir.fresh_reg f Ir.I64 in
  guard.instrs <-
    [
      Ir.Ibin (Ir.Add, t, Ir.Reg c.iv, Ir.Imm ((factor - 1) * c.step));
      Ir.Icmp (c.cmp, cond, Ir.Reg t, c.bound);
    ];
  guard.term <- Ir.CondBr (cond, remap copies.(0) c.body_entry, loop.header);
  (* layout: guard, copies in order, then the original (remainder) loop *)
  let copy_labels =
    List.concat_map
      (fun map -> List.map (fun l -> Hashtbl.find map l) body_labels)
      (Array.to_list copies)
  in
  let rec insert = function
    | [] -> [ guard.id ] @ copy_labels
    | l :: rest when l = loop.header -> (guard.id :: copy_labels) @ (l :: rest)
    | l :: rest -> l :: insert rest
  in
  f.layout <- insert f.layout

let run_func ~(max_unroll_times : int) ~(max_unrolled_insns : int) (f : Ir.func) =
  let loops = Loops.find f in
  List.iter
    (fun loop ->
      match List.find_opt (fun l -> l.Loops.header = loop.Loops.header) (Loops.find f) with
      | None -> ()
      | Some l ->
          if is_innermost loops loop then
            match Loops.counted_loop f l with
            | Some c when body_size f l <= max_unrolled_insns && max_unroll_times >= 2 ->
                unroll_counted f c ~factor:max_unroll_times
            | _ -> ())
    loops;
  Ir.remove_unreachable f

let run ~max_unroll_times ~max_unrolled_insns (p : Ir.program) =
  List.iter (fun (_, f) -> run_func ~max_unroll_times ~max_unrolled_insns f) p.funcs;
  p
