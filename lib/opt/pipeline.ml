open Emc_ir

(** The pass manager: applies the Table-1 optimizations in a fixed phase
    order (the paper studies flag settings, not phase ordering):

    inline → gcse → loop-optimize (LICM) → prefetch → strength-reduce →
    unroll → gcse-cleanup → schedule → reorder-blocks → DCE.

    Dead-code elimination always runs (gcc performs it at every -O level);
    -fomit-frame-pointer is consumed by the code generator, not here.
    [issue_width] parameterizes the scheduler's resource model — the paper
    compiled one gcc per functional-unit configuration; we thread the
    machine description instead. *)

let optimize ?(issue_width = 4) (flags : Flags.t) (p : Ir.program) : Ir.program =
  let p = if flags.inline_functions then
      Inline.run ~max_inline_insns_auto:flags.max_inline_insns_auto
        ~inline_unit_growth:flags.inline_unit_growth ~inline_call_cost:flags.inline_call_cost p
    else p
  in
  let p = if flags.gcse then Gcse.run p else p in
  let p = if flags.loop_optimize then Licm.run p else p in
  let p = if flags.prefetch_loop_arrays then Prefetch.run p else p in
  let p = if flags.strength_reduce then Strength.run p else p in
  let p =
    if flags.unroll_loops then
      Unroll.run ~max_unroll_times:flags.max_unroll_times
        ~max_unrolled_insns:flags.max_unrolled_insns p
    else p
  in
  (* light cleanup after the loop transforms *)
  let p = if flags.gcse && flags.unroll_loops then Gcse.run p else p in
  let p = if flags.schedule_insns2 then Sched.run ~issue_width p else p in
  let p = Dce.run p in
  let p = if flags.reorder_blocks then Reorder.run p else p in
  List.iter (fun (_, f) -> Ir.remove_unreachable f) p.funcs;
  p
