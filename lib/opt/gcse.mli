(** -fgcse: global common subexpression elimination with constant/copy
    propagation and constant folding (gcc: "Perform GCSE pass, also perform
    constant and copy propagation").

    Global reasoning is restricted to single-static-definition registers
    (every compiler temporary); a block-local value-numbering pass handles
    multiply-defined source variables and redundant loads, with versions
    bumped at kills; constant-condition branches are folded. *)

val run_func : Emc_ir.Ir.func -> unit
val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
