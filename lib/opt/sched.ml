open Emc_ir

(** -fschedule-insns2: local list scheduling.

    Within each basic block a dependence DAG is built (true register
    dependences with producer latencies; memory and call ordering edges;
    write-after-read and write-after-write edges for multiply-defined
    registers) and instructions are re-emitted greedily by critical-path
    priority under an issue-width resource constraint.

    Latencies mirror the target ISA: integer multiply 3, divide 12, FP
    add 2, FP multiply 4, FP divide 12, loads 2 (assumed L1 hit), everything
    else 1. The second (post-register-allocation) scheduling half of gcc's
    -fschedule-insns2 happens in {!Emc_codegen} on machine code. *)

let latency = function
  | Ir.Ibin (Ir.Mul, _, _, _) -> 3
  | Ir.Ibin ((Ir.Div | Ir.Rem), _, _, _) -> 12
  | Ir.Fbin ((Ir.FAdd | Ir.FSub), _, _, _) -> 2
  | Ir.Fbin (Ir.FMul, _, _, _) -> 4
  | Ir.Fbin (Ir.FDiv, _, _, _) -> 12
  | Ir.Fcmp _ -> 2
  | Ir.Load _ -> 2
  | _ -> 1

let is_mem = function Ir.Load _ | Ir.Store _ | Ir.Prefetch _ | Ir.Call _ -> true | _ -> false

let schedule_block ~issue_width (b : Ir.block) =
  let instrs = Array.of_list b.instrs in
  let n = Array.length instrs in
  if n > 1 && n < 400 then begin
    (* build dependence edges i -> j (j depends on i) with latencies *)
    let succs = Array.make n [] in
    let npreds = Array.make n 0 in
    let add_edge i j lat =
      succs.(i) <- (j, lat) :: succs.(i);
      npreds.(j) <- npreds.(j) + 1
    in
    let last_def = Hashtbl.create 16 in
    let last_uses = Hashtbl.create 16 in
    let last_mem = ref (-1) in
    let last_store_or_call = ref (-1) in
    for j = 0 to n - 1 do
      let i_j = instrs.(j) in
      List.iter
        (fun u ->
          (match Hashtbl.find_opt last_def u with
          | Some i -> add_edge i j (latency instrs.(i))
          | None -> ());
          Hashtbl.replace last_uses u
            (j :: (Option.value ~default:[] (Hashtbl.find_opt last_uses u))))
        (Ir.uses_of i_j);
      (match Ir.def_of i_j with
      | Some d ->
          (* WAW and WAR edges keep multi-def registers in order *)
          (match Hashtbl.find_opt last_def d with Some i -> add_edge i j 1 | None -> ());
          List.iter
            (fun u -> if u <> j then add_edge u j 0)
            (Option.value ~default:[] (Hashtbl.find_opt last_uses d));
          Hashtbl.replace last_def d j;
          Hashtbl.replace last_uses d []
      | None -> ());
      if is_mem i_j then begin
        (* loads may reorder among themselves; stores/calls are barriers *)
        (match i_j with
        | Ir.Store _ | Ir.Call _ ->
            if !last_mem >= 0 && !last_mem <> j then add_edge !last_mem j 1;
            (* conservatively order after every earlier memory op *)
            for k = 0 to j - 1 do
              if is_mem instrs.(k) && k <> !last_mem then add_edge k j 0
            done;
            last_store_or_call := j
        | _ -> if !last_store_or_call >= 0 then add_edge !last_store_or_call j 1);
        last_mem := j
      end
    done;
    (* critical-path priority *)
    let prio = Array.make n 0 in
    for i = n - 1 downto 0 do
      prio.(i) <-
        List.fold_left (fun acc (j, lat) -> max acc (lat + prio.(j))) (latency instrs.(i)) succs.(i)
    done;
    (* greedy list scheduling *)
    let ready_at = Array.make n 0 in
    let scheduled = Array.make n false in
    let order = ref [] in
    let emitted = ref 0 in
    let cycle = ref 0 in
    let npreds_left = Array.copy npreds in
    while !emitted < n do
      let issued = ref 0 in
      let progress = ref true in
      while !issued < issue_width && !progress do
        progress := false;
        (* pick the ready instruction with the highest priority *)
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if (not scheduled.(i)) && npreds_left.(i) = 0 && ready_at.(i) <= !cycle then
            if !best = -1 || prio.(i) > prio.(!best) then best := i
        done;
        if !best >= 0 then begin
          let i = !best in
          scheduled.(i) <- true;
          order := i :: !order;
          incr emitted;
          incr issued;
          progress := true;
          List.iter
            (fun (j, lat) ->
              npreds_left.(j) <- npreds_left.(j) - 1;
              ready_at.(j) <- max ready_at.(j) (!cycle + lat))
            succs.(i)
        end
      done;
      incr cycle
    done;
    b.instrs <- List.rev_map (fun i -> instrs.(i)) !order
  end

let run_func ~issue_width (f : Ir.func) =
  Array.iter (schedule_block ~issue_width) f.Ir.blocks

let run ~issue_width (p : Ir.program) =
  List.iter (fun (_, f) -> run_func ~issue_width f) p.funcs;
  p
