(** Compiler configuration: the 14 optimization flags and heuristics of the
    paper's Table 1, with the same names, ranges and gcc-4.0.1-like default
    values (the "default O3" row of Table 6). *)

type t = {
  inline_functions : bool;  (** #1 -finline-functions *)
  unroll_loops : bool;  (** #2 -funroll-loops *)
  schedule_insns2 : bool;  (** #3 -fschedule-insns2 *)
  loop_optimize : bool;  (** #4 -floop-optimize (LICM etc.) *)
  gcse : bool;  (** #5 -fgcse (+ constant/copy propagation) *)
  strength_reduce : bool;  (** #6 -fstrength-reduce *)
  omit_frame_pointer : bool;  (** #7 -fomit-frame-pointer *)
  reorder_blocks : bool;  (** #8 -freorder-blocks *)
  prefetch_loop_arrays : bool;  (** #9 -fprefetch-loop-arrays *)
  max_inline_insns_auto : int;  (** #10, range 50..150 *)
  inline_unit_growth : int;  (** #11, percent, range 25..75 *)
  inline_call_cost : int;  (** #12, range 12..20 *)
  max_unroll_times : int;  (** #13, range 4..12 *)
  max_unrolled_insns : int;  (** #14, range 100..300 *)
}

let default_heuristics =
  {
    inline_functions = false;
    unroll_loops = false;
    schedule_insns2 = false;
    loop_optimize = false;
    gcse = false;
    strength_reduce = false;
    omit_frame_pointer = false;
    reorder_blocks = false;
    prefetch_loop_arrays = false;
    max_inline_insns_auto = 100;
    inline_unit_growth = 50;
    inline_call_cost = 16;
    max_unroll_times = 8;
    max_unrolled_insns = 200;
  }

let o0 = default_heuristics

let o1 = { o0 with loop_optimize = true; gcse = true }

(** -O2: the scalar optimizations, no inlining/unrolling/prefetching — the
    paper's baseline for all speedup numbers. *)
let o2 =
  {
    o1 with
    schedule_insns2 = true;
    strength_reduce = true;
    omit_frame_pointer = true;
    reorder_blocks = true;
  }

(** -O3 per the "default O3" row of Table 6: O2 plus -finline-functions and
    -fprefetch-loop-arrays (unrolling stays off). *)
let o3 = { o2 with inline_functions = true; prefetch_loop_arrays = true }

let pp fmt f =
  let b x = if x then "1" else "0" in
  Format.fprintf fmt
    "inline=%s unroll=%s sched2=%s loopopt=%s gcse=%s strred=%s omitfp=%s reorder=%s prefetch=%s \
     inl-insns=%d inl-growth=%d inl-cost=%d unroll-times=%d unroll-insns=%d"
    (b f.inline_functions) (b f.unroll_loops) (b f.schedule_insns2) (b f.loop_optimize) (b f.gcse)
    (b f.strength_reduce) (b f.omit_frame_pointer) (b f.reorder_blocks) (b f.prefetch_loop_arrays)
    f.max_inline_insns_auto f.inline_unit_growth f.inline_call_cost f.max_unroll_times
    f.max_unrolled_insns

let to_string f = Format.asprintf "%a" pp f
