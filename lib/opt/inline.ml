open Emc_ir

(** -finline-functions, governed by max-inline-insns-auto,
    inline-unit-growth and inline-call-cost (Table 1 #10–#12).

    A direct, non-recursive call site is inlined when:
    - the callee's IR size is at most [max_inline_insns_auto];
    - the site looks beneficial: the callee is small relative to the call
      overhead, [callee_size <= inline_call_cost * amortization] (gcc's
      inline-call-cost is "the cost of a call relative to a simple
      computation, used to identify beneficial call sites" — a higher cost
      makes more sites look worthwhile);
    - the compilation unit has not grown beyond
      [1 + inline_unit_growth/100] times its original size.

    Inlining copies the callee's blocks into the caller with all virtual
    registers renamed, rewrites returns into moves + jumps to the
    continuation block, and passes arguments by move. *)

let amortization = 8

let callgraph (p : Ir.program) =
  List.map
    (fun (name, f) ->
      let callees = ref [] in
      Array.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun i ->
              match i with
              | Ir.Call (_, g, _) when g <> "__out" -> callees := g :: !callees
              | _ -> ())
            b.instrs)
        f.Ir.blocks;
      (name, List.sort_uniq compare !callees))
    p.funcs

(* functions on a call-graph cycle (incl. self recursion) *)
let recursive_set (p : Ir.program) =
  let cg = callgraph p in
  let reaches_self start =
    let visited = Hashtbl.create 8 in
    let rec dfs n =
      match List.assoc_opt n cg with
      | None -> false
      | Some callees ->
          List.exists
            (fun c ->
              c = start
              ||
              if Hashtbl.mem visited c then false
              else begin
                Hashtbl.replace visited c ();
                dfs c
              end)
            callees
    in
    dfs start
  in
  List.filter_map (fun (n, _) -> if reaches_self n then Some n else None) cg

(* Inline one call site: in caller [f], block [bl], the [idx]-th instruction
   (which must be a Call). *)
let inline_site (f : Ir.func) (callee : Ir.func) ~bl ~idx =
  let b = f.blocks.(bl) in
  let before = List.filteri (fun i _ -> i < idx) b.instrs in
  let call_instr = List.nth b.instrs idx in
  let after = List.filteri (fun i _ -> i > idx) b.instrs in
  let dst, args =
    match call_instr with
    | Ir.Call (d, _, args) -> (d, args)
    | _ -> invalid_arg "inline_site: not a call"
  in
  (* continuation block receives the instructions after the call *)
  let cont = Ir.fresh_block f in
  cont.instrs <- after;
  cont.term <- b.term;
  (* rename map for callee registers *)
  let reg_map = Hashtbl.create 32 in
  let map_reg r =
    match Hashtbl.find_opt reg_map r with
    | Some r' -> r'
    | None ->
        let r' = Ir.fresh_reg f (Ir.reg_type callee r) in
        Hashtbl.replace reg_map r r';
        r'
  in
  (* clone callee blocks *)
  let blk_map = Hashtbl.create 8 in
  Array.iter
    (fun (cb : Ir.block) -> Hashtbl.replace blk_map cb.Ir.id (Ir.fresh_block f).Ir.id)
    callee.blocks;
  let map_blk l = Hashtbl.find blk_map l in
  let map_op = function Ir.Reg r -> Ir.Reg (map_reg r) | Ir.Imm i -> Ir.Imm i in
  let map_instr = function
    | Ir.Iconst (d, v) -> Ir.Iconst (map_reg d, v)
    | Ir.Fconst (d, v) -> Ir.Fconst (map_reg d, v)
    | Ir.Ibin (o, d, x, y) -> Ir.Ibin (o, map_reg d, map_op x, map_op y)
    | Ir.Fbin (o, d, x, y) -> Ir.Fbin (o, map_reg d, map_reg x, map_reg y)
    | Ir.Icmp (o, d, x, y) -> Ir.Icmp (o, map_reg d, map_op x, map_op y)
    | Ir.Fcmp (o, d, x, y) -> Ir.Fcmp (o, map_reg d, map_reg x, map_reg y)
    | Ir.Load (t, d, a) -> Ir.Load (t, map_reg d, map_reg a)
    | Ir.Store (t, a, v) -> Ir.Store (t, map_reg a, map_reg v)
    | Ir.Prefetch a -> Ir.Prefetch (map_reg a)
    | Ir.Call (d, n, args) -> Ir.Call (Option.map map_reg d, n, List.map map_reg args)
    | Ir.ItoF (d, s) -> Ir.ItoF (map_reg d, map_reg s)
    | Ir.FtoI (d, s) -> Ir.FtoI (map_reg d, map_reg s)
    | Ir.Mov (t, d, s) -> Ir.Mov (t, map_reg d, map_reg s)
  in
  Array.iter
    (fun (cb : Ir.block) ->
      let nb = f.blocks.(map_blk cb.Ir.id) in
      nb.instrs <- List.map map_instr cb.instrs;
      nb.term <-
        (match cb.term with
        | Ir.Br l -> Ir.Br (map_blk l)
        | Ir.CondBr (c, x, y) -> Ir.CondBr (map_reg c, map_blk x, map_blk y)
        | Ir.Ret _ -> Ir.Br cont.id))
    callee.blocks;
  (* second pass to append return-value moves (needs final instr lists) *)
  Array.iter
    (fun (cb : Ir.block) ->
      match (cb.Ir.term, dst) with
      | Ir.Ret (Some r), Some d ->
          let nb = f.blocks.(map_blk cb.Ir.id) in
          let ty = Ir.reg_type callee r in
          nb.instrs <- nb.instrs @ [ Ir.Mov (ty, d, map_reg r) ]
      | _ -> ())
    callee.blocks;
  (* the call block: argument moves, then jump to the callee entry *)
  let arg_moves =
    List.map2
      (fun p a -> Ir.Mov (Ir.reg_type callee p, map_reg p, a))
      callee.params args
  in
  b.instrs <- before @ arg_moves;
  b.term <- Ir.Br (map_blk Ir.entry_label);
  (* layout: callee blocks then continuation, right after the call block *)
  let new_labels =
    List.map (fun l -> map_blk l) callee.layout @ [ cont.id ]
  in
  let rec insert = function
    | [] -> new_labels
    | l :: rest when l = bl -> l :: (new_labels @ rest)
    | l :: rest -> l :: insert rest
  in
  f.layout <- insert f.layout

exception Growth_exhausted

let run ~(max_inline_insns_auto : int) ~(inline_unit_growth : int) ~(inline_call_cost : int)
    (p : Ir.program) =
  let orig_size = Ir.instr_count p in
  let budget = orig_size * (100 + inline_unit_growth) / 100 in
  let recursive = recursive_set p in
  let beneficial size = size <= max_inline_insns_auto && size <= inline_call_cost * amortization in
  (* iterate: find next inlinable site, apply, until none or budget exhausted *)
  let continue_ = ref true in
  (try
     while !continue_ do
       continue_ := false;
       List.iter
         (fun (_, f) ->
           Array.iter
             (fun (b : Ir.block) ->
               match
                 List.find_index
                   (fun i ->
                     match i with
                     | Ir.Call (_, g, _) when g <> "__out" && not (List.mem g recursive) -> (
                         match Ir.find_func p g with
                         | Some callee -> beneficial (Ir.instr_count_fn callee)
                         | None -> false)
                     | _ -> false)
                   b.instrs
               with
               | Some idx when not !continue_ ->
                   let callee =
                     match List.nth b.instrs idx with
                     | Ir.Call (_, g, _) -> Option.get (Ir.find_func p g)
                     | _ -> assert false
                   in
                   if Ir.instr_count p + Ir.instr_count_fn callee > budget then
                     raise Growth_exhausted;
                   inline_site f callee ~bl:b.id ~idx;
                   continue_ := true
               | _ -> ())
             f.Ir.blocks)
         p.funcs
     done
   with Growth_exhausted -> ());
  List.iter (fun (_, f) -> Ir.remove_unreachable f) p.funcs;
  p
