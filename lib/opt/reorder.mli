(** -freorder-blocks: Pettis–Hansen-style code placement over statically
    estimated edge weights (loop back edges 0.9, in-loop edges favored) to
    reduce taken branches and improve I-cache locality. Only the layout
    changes; the code generator turns fall-through edges into not-taken
    branches. *)

val run_func : Emc_ir.Ir.func -> unit
val run : Emc_ir.Ir.program -> Emc_ir.Ir.program
