(** The model-serving daemon: loads one {!Emc_core.Artifact} and serves
    predictions, term rankings and model-based search over HTTP/1.1 —
    train once, persist, serve many, with zero simulator invocations.

    Endpoints (all responses JSON unless noted):

    - [POST /predict] — body [{"point": [c1, ...]}] for one coded design
      point or [{"points": [[...], ...]}] for a batch; add
      ["space": "raw"] to send raw parameter values instead (coded through
      the artifact's schema). Points are validated against the schema's
      arity. Responses: [{"prediction": p}] / [{"predictions": [...]}],
      bit-identical to the in-process model.
    - [GET /rank?top=N] — significant terms sorted by |coefficient|
      strongest first, NaN coefficients last (the paper's Table-4
      reading), for every family. A malformed or non-positive [top] is a
      structured 400, never silently "all terms".
    - [POST /search] — GA over the served model (paper §6.3): body
      [{"config": "typical"}] or [{"march": [11 raw values]}], optional
      ["seed"], ["pop_size"], ["generations"]. Returns prescribed flags,
      predicted cycles and the GA evaluation count.
    - [POST /pareto] — NSGA-II cycles × energy front over a two-response
      artifact (trained with [emc train --energy]); same body as
      [/search]. Returns [{"front": [...], "size", "evaluations",
      "seed"}], byte-identical to [emc pareto --json] at the same seed
      and parameters; 409 [no_energy_response] when the artifact has no
      energy model.
    - [GET /healthz] — liveness plus artifact identity.
    - [GET /metrics] — Prometheus text exposition aggregated across
      {e all} pre-forked workers: each worker publishes an atomic
      registry-snapshot file after every request (before the response is
      written), and the scrape merges them — counters sum exactly and
      latency histograms merge bucket-wise into real cumulative
      [le=]-bucket Prometheus histograms, whichever worker answers.

    Observability: every request carries an id (the client's
    [X-Request-Id] when it sends a sane one, generated otherwise) that is
    echoed on the response; with [EMC_ACCESS_LOG=<file>] (or
    [--access-log]) each request appends one JSONL record with the id,
    status, sizes and per-phase parse/handle/write timings; with
    [EMC_TRACE=<file>] each worker writes those same phases as Chrome
    trace spans to [<file>.<pid>].

    Errors are structured JSON ([{"error": {"code", "message"}}]) with
    correct status codes (400/404/405/408/413/415/500); no exception
    escapes to a client. The daemon pre-forks [workers] accept processes
    (the [lib/par] fork pattern), enforces request-size and read-timeout
    limits, and shuts down gracefully on SIGINT/SIGTERM: in-flight
    requests drain, each worker flushes its final metrics snapshot and
    the access log, workers exit, the Unix socket is unlinked. *)

type listen = Port of int | Unix_socket of string

type opts = {
  listen : listen;
  workers : int;  (** pre-forked accept workers (>= 1) *)
  max_body : int;  (** request body cap in bytes *)
  read_timeout : float;  (** per-read socket timeout, seconds *)
  access_log : string option;
      (** JSONL access-log path (append); every worker writes to it,
          one whole line per request *)
}

val default_opts : listen -> opts
(** 1 worker, 1 MiB body cap, 10 s read timeout, access log from
    [EMC_ACCESS_LOG] when set. *)

val prometheus : unit -> string
(** This process's registry rendered as Prometheus text exposition. *)

val prometheus_of_snapshot : Emc_obs.Metrics.snapshot -> string
(** Render an (aggregated) snapshot — what [GET /metrics] serves after
    merging every worker's published snapshot. *)

val handle_request : Emc_core.Artifact.t -> Http.request -> int * string * string
(** [(status, content_type, body)] for one request — exposed for tests;
    {!run} drives it from the accept loop. *)

val run : opts -> Emc_core.Artifact.t -> unit
(** Bind, serve until SIGINT/SIGTERM, clean up. Blocks. *)
