(** The model-serving daemon: loads one {!Emc_core.Artifact} and serves
    predictions, term rankings and model-based search over HTTP/1.1 —
    train once, persist, serve many, with zero simulator invocations.

    Endpoints (all responses JSON unless noted):

    - [POST /predict] — body [{"point": [c1, ...]}] for one coded design
      point or [{"points": [[...], ...]}] for a batch; add
      ["space": "raw"] to send raw parameter values instead (coded through
      the artifact's schema). Points are validated against the schema's
      arity. Responses: [{"prediction": p}] / [{"predictions": [...]}],
      bit-identical to the in-process model.
    - [GET /rank?top=N] — significant terms sorted by |coefficient| (the
      paper's Table-4 reading), for all three families.
    - [POST /search] — GA over the served model (paper §6.3): body
      [{"config": "typical"}] or [{"march": [11 raw values]}], optional
      ["seed"], ["pop_size"], ["generations"]. Returns prescribed flags,
      predicted cycles and the GA evaluation count.
    - [GET /healthz] — liveness plus artifact identity.
    - [GET /metrics] — Prometheus-style text dump of the process-wide
      {!Emc_obs.Metrics} registry plus per-endpoint request counters and
      latency histograms ([serve.*]).

    Errors are structured JSON ([{"error": {"code", "message"}}]) with
    correct status codes (400/404/405/408/413/415/500); no exception
    escapes to a client. The daemon pre-forks [workers] accept processes
    (the [lib/par] fork pattern), enforces request-size and read-timeout
    limits, and shuts down gracefully on SIGINT/SIGTERM: in-flight
    requests drain, workers exit, the Unix socket is unlinked. *)

type listen = Port of int | Unix_socket of string

type opts = {
  listen : listen;
  workers : int;  (** pre-forked accept workers (>= 1). Metrics are
                      per-worker; run one worker when scraping /metrics
                      for exact totals. *)
  max_body : int;  (** request body cap in bytes *)
  read_timeout : float;  (** per-read socket timeout, seconds *)
}

val default_opts : listen -> opts
(** 1 worker, 1 MiB body cap, 10 s read timeout. *)

val prometheus : unit -> string
(** The metrics registry rendered as Prometheus text exposition (also used
    by [GET /metrics]). *)

val handle_request : Emc_core.Artifact.t -> Http.request -> int * string * string
(** [(status, content_type, body)] for one request — exposed for tests;
    {!run} drives it from the accept loop. *)

val run : opts -> Emc_core.Artifact.t -> unit
(** Bind, serve until SIGINT/SIGTERM, clean up. Blocks. *)
