(** The model-serving daemon: loads one {!Emc_core.Artifact} and serves
    predictions, term rankings and model-based search over HTTP/1.1 —
    train once, persist, serve many, with zero simulator invocations.

    Endpoints (all responses JSON unless noted):

    - [POST /predict] — body [{"point": [c1, ...]}] for one coded design
      point or [{"points": [[...], ...]}] for a batch; add
      ["space": "raw"] to send raw parameter values instead (coded through
      the artifact's schema). Points are validated against the schema's
      arity. Responses: [{"prediction": p}] / [{"predictions": [...]}],
      bit-identical to the in-process model.
    - [GET /rank?top=N] — significant terms sorted by |coefficient|
      strongest first, NaN coefficients last (the paper's Table-4
      reading), for every family. A malformed or non-positive [top] is a
      structured 400, never silently "all terms".
    - [POST /search] — GA over the served model (paper §6.3): body
      [{"config": "typical"}] or [{"march": [11 raw values]}], optional
      ["seed"], ["pop_size"], ["generations"]. Returns prescribed flags,
      predicted cycles and the GA evaluation count.
    - [POST /pareto] — NSGA-II cycles × energy front over a two-response
      artifact (trained with [emc train --energy]); same body as
      [/search]. Returns [{"front": [...], "size", "evaluations",
      "seed"}], byte-identical to [emc pareto --json] at the same seed
      and parameters; 409 [no_energy_response] when the artifact has no
      energy model.
    - [GET /healthz] — liveness plus artifact identity.
    - [GET /metrics] — Prometheus text exposition aggregated across
      {e all} pre-forked workers: each worker publishes an atomic
      registry-snapshot file at startup and after responses complete,
      and the scrape merges them — counters sum exactly and latency
      histograms merge bucket-wise into real cumulative [le=]-bucket
      Prometheus histograms, whichever worker answers. (Publishes
      happen {e after} the response write completes and are debounced
      to at most one per 250 ms per worker, so a scrape may trail
      another worker's very latest responses by up to the debounce
      interval; the answering worker's own numbers are always exact,
      and everything converges within the interval.)

    Observability: every request carries an id (the client's
    [X-Request-Id] when it sends a sane one, generated otherwise) that is
    echoed on the response; with [EMC_ACCESS_LOG=<file>] (or
    [--access-log]) each request appends one JSONL record with the id,
    status, sizes and per-phase parse/handle/write timings; with
    [EMC_TRACE=<file>] each worker writes those same phases as Chrome
    trace spans to [<file>.<pid>].

    Errors are structured JSON ([{"error": {"code", "message"}}]) with
    correct status codes (400/404/405/408/413/415/500); no exception
    escapes to a client.

    Concurrency: the daemon pre-forks [workers] processes (the [lib/par]
    fork pattern) sharing one non-blocking listening socket; {e each}
    worker runs a select()-driven scheduler over up to [max_conns]
    keep-alive connections, so N workers serve hundreds of concurrent
    connections and a slow or idle client can never pin a worker the way
    the old one-connection-per-worker loop could. Per-connection
    deadlines are absolute: a request must complete within
    [read_timeout] of its first byte (dribblers get a 408), a response
    must drain within [read_timeout] (stalled readers are cut off), and
    a connection with no bytes outstanding closes silently after
    [idle_timeout]. Pipelined requests on one connection are answered
    strictly in order, and at most one response per connection is
    buffered (kernel-level back-pressure bounds memory). Shutdown on
    SIGINT/SIGTERM is graceful: accepting stops, in-flight responses
    drain (bounded), each worker flushes its final metrics snapshot and
    the access log, workers exit, the Unix socket is unlinked. *)

type listen = Port of int | Unix_socket of string

type opts = {
  listen : listen;
  workers : int;  (** pre-forked scheduler workers (>= 1) *)
  max_body : int;  (** request body cap in bytes *)
  read_timeout : float;
      (** whole-request read deadline and response-drain deadline, seconds *)
  idle_timeout : float;
      (** close a keep-alive connection with no request in flight after
          this many seconds of silence *)
  max_conns : int;
      (** per-worker concurrent-connection cap (select() bounds this to
          roughly 1000 per process) *)
  access_log : string option;
      (** JSONL access-log path (append); every worker writes to it,
          one whole line per request *)
}

val default_opts : listen -> opts
(** 1 worker, 1 MiB body cap, 10 s read timeout, 30 s idle timeout, 512
    connections per worker, access log from [EMC_ACCESS_LOG] when set. *)

val prometheus : unit -> string
(** This process's registry rendered as Prometheus text exposition. *)

val prometheus_of_snapshot : Emc_obs.Metrics.snapshot -> string
(** Render an (aggregated) snapshot — what [GET /metrics] serves after
    merging every worker's published snapshot. *)

val handle_request : Emc_core.Artifact.t -> Http.request -> int * string * string
(** [(status, content_type, body)] for one request — the reference
    (allocating) path, exposed for tests; the daemon serves through
    {!handle_into}, whose bytes must match this one exactly. *)

type hot
(** Per-worker serving context for the allocation-lean /predict hot
    path: the artifact's evaluator compiled once ({!Emc_regress.Repr.compile}),
    the schema dims resolved once, a reused point arena and a reused
    response-body buffer. Not shareable between concurrent evaluators. *)

val make_hot : Emc_core.Artifact.t -> hot

val handle_into : hot -> Http.request -> int * string
(** [(status, content_type)] for one request, the response body rendered
    into {!hot_body} (valid until the next call). Byte-identical to
    {!handle_request} on every endpoint and error shape — /predict and
    /predict_batch take the allocation-lean path, everything else goes
    through the reference handlers. *)

val hot_body : hot -> Buffer.t
(** The response body rendered by the last {!handle_into}. *)

val run : opts -> Emc_core.Artifact.t -> unit
(** Bind, serve until SIGINT/SIGTERM, clean up. Blocks. *)
