(** A deliberately small HTTP/1.1 reader/writer over [Unix] file
    descriptors — just enough protocol for the model-serving daemon: one
    request line, headers, an optional [Content-Length] body, keep-alive,
    and in-order pipelining via a per-connection carry buffer (the fleet
    coordinator keeps several requests in flight per worker). No chunked
    encoding, no TLS.

    Robustness is the point: header and body sizes are capped, reads honor
    the socket's receive timeout, and every malformed input is a typed
    [error], never an exception — the daemon must survive a fuzz loop of
    truncated and oversized garbage. *)

type request = {
  meth : string;  (** uppercase, e.g. "GET" *)
  path : string;  (** decoded path without the query string *)
  query : (string * string) list;  (** decoded key/value pairs *)
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

type error =
  | Closed  (** clean EOF before any request byte — peer is done *)
  | Timeout  (** the socket's receive timeout (or connect timeout) expired *)
  | Too_large of string  (** headers or declared body over the cap; names which *)
  | Bad of string  (** malformed request line/headers or truncated body *)
  | Refused of string
      (** client side only: the peer refused or reset the connection — the
          fleet coordinator's signal that a worker has died *)

val error_to_string : error -> string

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val read_request :
  ?max_header:int ->
  ?max_body:int ->
  ?timeout:float ->
  ?carry:string ref ->
  Unix.file_descr ->
  (request, error) result
(** Read one request. [max_header] defaults to 16 KiB, [max_body] to
    1 MiB. [timeout] bounds the {e whole} request (head + body) against an
    absolute deadline — without it, only the socket's receive timeout
    applies, which resets on every read and so never fires against a peer
    that dribbles bytes. EINTR never restarts the budget.

    [carry] makes pipelining correct: reads pull from the socket in
    chunks, so bytes of the {e next} pipelined message may arrive glued
    to this one's body. Pass one [ref] per connection — its contents are
    consumed before reading the socket and, on success, it is refilled
    with the surplus. Without [carry], such surplus is discarded (fine
    for strict request/response lockstep, fatal for pipelining). A caller
    holding a non-empty carry must not wait for socket readability —
    the next message may already be fully buffered. *)

type parse =
  | Parsed of request * int
      (** one complete request plus the number of bytes it consumed; the
          remainder of the input is the start of the next pipelined message *)
  | Incomplete  (** syntactically fine so far — wait for more bytes *)
  | Invalid of error  (** terminal: respond with the mapped status and close *)

val parse_request : ?max_header:int -> ?max_body:int -> string -> parse
(** The incremental half of {!read_request}: parse one request from an
    in-memory accumulation of connection bytes without touching a
    descriptor. The multiplexed server loop appends each non-blocking
    read's bytes and re-parses; limits and error mapping match
    {!read_request} (16 KiB heads, 1 MiB bodies by default, declared
    [Content-Length] over the cap is [Too_large "body"] before any body
    byte arrives). *)

type response = {
  status : int;
  resp_headers : (string * string) list;  (** keys lowercased *)
  resp_body : string;
}

val response_header : response -> string -> string option
(** Case-insensitive header lookup. *)

val read_response :
  ?max_header:int ->
  ?max_body:int ->
  ?timeout:float ->
  ?carry:string ref ->
  Unix.file_descr ->
  (response, error) result
(** The client half: read one [Content-Length]-framed response from a
    keep-alive connection (the [emc loadgen] driver, the fleet coordinator
    and the tests). [max_body] defaults to 8 MiB. [timeout] bounds the
    whole response against an absolute deadline (see {!read_request});
    the fleet coordinator passes its per-dispatch budget here so a worker
    dribbling a response cannot stall the run past its chunk deadline.
    [carry] is the per-connection pipelining buffer (see
    {!read_request}) — the coordinator passes one per worker connection
    when [depth > 1]. *)

val connect : ?timeout:float -> Unix.sockaddr -> (Unix.file_descr, error) result
(** Open a stream connection with a connect timeout (default 10 s), mapping
    a refused/unreachable peer to {!Refused} and a slow one to {!Timeout}
    instead of letting [Unix_error] escape. The timeout is enforced as an
    absolute deadline (EINTR re-waits with the remaining budget, never the
    full window). On success the descriptor's send/receive timeouts are set
    to [timeout], so subsequent {!read_response} calls honor it as a
    per-read backstop; pass [?timeout] there to bound whole responses. *)

val write_request :
  Unix.file_descr ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (unit, error) result
(** Write one [Content-Length]-framed request; a reset mid-write is
    {!Refused}, a send-timeout expiry is {!Timeout}. Callers should ignore
    SIGPIPE. *)

val respond :
  Unix.file_descr ->
  status:int ->
  ?content_type:string ->
  ?keep_alive:bool ->
  ?headers:(string * string) list ->
  string ->
  unit
(** Write a complete response with [Content-Length]; [headers] adds
    extra response headers (e.g. [X-Request-Id]). [content_type]
    defaults to ["application/json"]. Raises [Unix.Unix_error] on a dead
    peer (callers catch EPIPE/ECONNRESET). *)

val response_head_into :
  Buffer.t ->
  status:int ->
  content_type:string ->
  body_length:int ->
  keep_alive:bool ->
  (string * string) list ->
  unit
(** Render the status line, framing headers, extras and the blank line
    into [b] — the body (exactly [body_length] bytes) follows. {!respond}
    and the multiplexed server loop share this formatter, so their
    response bytes are identical by construction. *)

val status_text : int -> string
