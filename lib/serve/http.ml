(** Minimal HTTP/1.1 over Unix file descriptors (see http.mli). *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type error =
  | Closed
  | Timeout
  | Too_large of string
  | Bad of string
  | Refused of string

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 415 -> "Unsupported Media Type"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | _ -> "Status"

let url_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some h, Some l ->
            Buffer.add_char b (Char.chr ((h lsl 4) lor l));
            i := !i + 2
        | _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( url_decode (String.sub kv 0 i),
                   url_decode (String.sub kv (i + 1) (String.length kv - i - 1)) )
           | None -> Some (url_decode kv, ""))

let trim = String.trim

(* Absolute-deadline wait for readability. EINTR recomputes the remaining
   budget instead of restarting the full timeout — a signal-heavy process
   (interval timers, child reaping) would otherwise restart [select] with
   the whole window on every signal and never time out at all. Likewise a
   spurious early wakeup just loops: only the clock decides Timeout. *)
let wait_readable fd deadline =
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Error Timeout
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> go ()
      | _ -> Ok ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Read until the header terminator appears; any extra bytes already read
   belong to the body and are returned alongside. When [deadline] is set it
   bounds the {e whole} head, not each individual read — a peer dribbling
   one byte per interval can otherwise hold a reader forever while every
   per-read timeout happily resets. *)
let read_head ?deadline ?(already = "") ~max_header fd =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf already;
  let chunk = Bytes.create 4096 in
  let find_terminator () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 3 >= n then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec loop () =
    match find_terminator () with
    | Some i ->
        let s = Buffer.contents buf in
        Ok (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
    | None ->
        if Buffer.length buf > max_header then Error (Too_large "headers")
        else (
          match
            match deadline with
            | None -> Ok ()
            | Some d -> wait_readable fd d
          with
          | Error e -> Error e
          | Ok () -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  if Buffer.length buf = 0 then Error Closed else Error (Bad "truncated request")
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  loop ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  Error Timeout
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  if Buffer.length buf = 0 then Error Closed else Error (Bad "connection reset")))
  in
  loop ()

(* Returns the body plus any surplus bytes that followed it. The reads
   themselves never overshoot (capped at [len]); surplus can only come
   from [already] — head-reading having slurped past the terminator. On a
   pipelined connection that surplus is the start of the next message and
   must be carried over, not dropped. *)
let read_body ?deadline ~max_body fd ~already len =
  if len > max_body then Error (Too_large "body")
  else if String.length already >= len then
    Ok (String.sub already 0 len, String.sub already len (String.length already - len))
  else begin
    let buf = Buffer.create len in
    Buffer.add_string buf already;
    let chunk = Bytes.create 4096 in
    let rec loop () =
      if Buffer.length buf >= len then Ok (Buffer.contents buf, "")
      else (
        match
          match deadline with None -> Ok () | Some d -> wait_readable fd d
        with
        | Error e -> Error e
        | Ok () -> (
            match
              Unix.read fd chunk 0 (min (Bytes.length chunk) (len - Buffer.length buf))
            with
            | 0 -> Error (Bad "truncated body")
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                loop ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                Error Timeout
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error (Bad "connection reset")))
    in
    loop ()
  end

let parse_headers header_lines =
  List.filter_map
    (fun l ->
      if l = "" then None
      else
        match String.index_opt l ':' with
        | Some i ->
            Some
              ( String.lowercase_ascii (trim (String.sub l 0 i)),
                trim (String.sub l (i + 1) (String.length l - i - 1)) )
        | None -> None)
    header_lines

(* Request-line + headers parsing shared by the blocking reader and the
   incremental parser: [head] is everything before the \r\n\r\n
   terminator. Yields the declared body length so the caller can frame
   the body however it reads (blocking read or buffered slice). *)
let request_of_head head =
  match String.split_on_char '\n' head |> List.map (fun l -> trim l) with
  | [] -> Error (Bad "empty request")
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ] when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          let headers = parse_headers header_lines in
          let path, query =
            match String.index_opt target '?' with
            | Some i ->
                ( url_decode (String.sub target 0 i),
                  parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
            | None -> (url_decode target, [])
          in
          if List.mem_assoc "transfer-encoding" headers then
            Error (Bad "chunked transfer encoding is not supported")
          else
            match List.assoc_opt "content-length" headers with
            | None -> Ok (String.uppercase_ascii meth, path, query, headers, 0)
            | Some v -> (
                match int_of_string_opt (trim v) with
                | Some n when n >= 0 -> Ok (String.uppercase_ascii meth, path, query, headers, n)
                | _ -> Error (Bad ("malformed content-length: " ^ v))))
      | _ -> Error (Bad "malformed request line"))

(* The incremental half: parse one request from an in-memory byte
   accumulation without touching any descriptor. The multiplexed server
   loop appends whatever the socket had and retries; [Incomplete] means
   "wait for more bytes", the two terminal cases consume the connection. *)

type parse =
  | Parsed of request * int
  | Incomplete
  | Invalid of error

let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then Some i
    else go (i + 1)
  in
  go 0

let parse_request ?(max_header = 16 * 1024) ?(max_body = 1024 * 1024) s =
  match find_head_end s with
  | None -> if String.length s > max_header then Invalid (Too_large "headers") else Incomplete
  | Some i -> (
      if i > max_header then Invalid (Too_large "headers")
      else
        match request_of_head (String.sub s 0 i) with
        | Error e -> Invalid e
        | Ok (meth, path, query, headers, len) ->
            if len > max_body then Invalid (Too_large "body")
            else
              let body_start = i + 4 in
              if String.length s - body_start >= len then
                Parsed ({ meth; path; query; headers; body = String.sub s body_start len }, body_start + len)
              else Incomplete)

(* [carry] is the per-connection pipelining buffer: bytes read past the
   end of the previous message seed this one, and this one's surplus is
   put back. Without it a second in-flight request's first bytes are
   silently discarded with the preceding body's read-ahead. *)
let take_carry = function
  | None -> ""
  | Some r ->
      let s = !r in
      r := "";
      s

let put_carry carry surplus =
  match carry with Some r -> r := surplus | None -> ()

let read_request ?(max_header = 16 * 1024) ?(max_body = 1024 * 1024) ?timeout ?carry fd =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  match read_head ?deadline ~already:(take_carry carry) ~max_header fd with
  | Error e -> Error e
  | Ok (head, rest) -> (
      match request_of_head head with
      | Error e -> Error e
      | Ok (meth, path, query, headers, len) -> (
          match read_body ?deadline ~max_body fd ~already:rest len with
          | Error e -> Error e
          | Ok (body, surplus) ->
              put_carry carry surplus;
              Ok { meth; path; query; headers; body }))

(* The client half: read one response (for [emc loadgen] and tests). *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  resp_body : string;
}

let response_header resp name =
  List.assoc_opt (String.lowercase_ascii name) resp.resp_headers

let read_response ?(max_header = 16 * 1024) ?(max_body = 8 * 1024 * 1024) ?timeout ?carry fd =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  match read_head ?deadline ~already:(take_carry carry) ~max_header fd with
  | Error e -> Error e
  | Ok (head, rest) -> (
      match String.split_on_char '\n' head |> List.map (fun l -> trim l) with
      | [] -> Error (Bad "empty response")
      | status_line :: header_lines -> (
          match String.split_on_char ' ' status_line with
          | version :: code :: _
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
              match int_of_string_opt code with
              | None -> Error (Bad ("malformed status code: " ^ code))
              | Some status -> (
                  let headers = parse_headers header_lines in
                  let len =
                    match List.assoc_opt "content-length" headers with
                    | None -> Ok 0
                    | Some v -> (
                        match int_of_string_opt (trim v) with
                        | Some n when n >= 0 -> Ok n
                        | _ -> Error (Bad ("malformed content-length: " ^ v)))
                  in
                  match len with
                  | Error e -> Error e
                  | Ok len -> (
                      match read_body ?deadline ~max_body fd ~already:rest len with
                      | Error e -> Error e
                      | Ok (body, surplus) ->
                          put_carry carry surplus;
                          Ok { status; resp_headers = headers; resp_body = body })))
          | _ -> Error (Bad "malformed status line")))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* ---------------- client half: connect + request ---------------- *)

let error_to_string = function
  | Closed -> "connection closed"
  | Timeout -> "timed out"
  | Too_large what -> what ^ " too large"
  | Bad msg -> msg
  | Refused msg -> msg

(* A typed connect so a dead peer is an [error], never an escaping
   [Unix_error]: the fleet coordinator leans on this to tell a crashed
   worker (Refused/Closed) from a straggler (Timeout). The connect itself
   is raced against [timeout] via a non-blocking socket + select; the
   returned descriptor then carries [timeout] as its send/receive timeout,
   so every subsequent read honors it too. *)
let connect ?(timeout = 10.0) sockaddr =
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  let fail e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error e
  in
  let refused err = Refused ("connect: " ^ Unix.error_message err) in
  let finish () =
    Unix.clear_nonblock fd;
    (* Unix-domain sockets reject SO_RCVTIMEO on some systems; timeouts
       there come from the select-guarded connect and the peer's behavior *)
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
     with Unix.Unix_error _ -> ());
    Ok fd
  in
  match
    Unix.set_nonblock fd;
    Unix.connect fd sockaddr
  with
  | () -> finish ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      (* a deadline, not a per-select timeout: EINTR (or an early wakeup)
         re-waits with the remaining budget rather than the full window *)
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then fail Timeout
        else
          match Unix.select [] [ fd ] [] remaining with
          | _, [], _ -> wait ()
          | _, _ :: _, _ -> (
              match Unix.getsockopt_error fd with
              | None -> finish ()
              | Some err -> fail (refused err))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
  | exception Unix.Unix_error (err, _, _) -> fail (refused err)

let write_request fd ~meth ~path ?(headers = []) ?(body = "") () =
  let b = Buffer.create (String.length body + 128) in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  if not (List.exists (fun (k, _) -> String.lowercase_ascii k = "host") headers) then
    Buffer.add_string b "Host: localhost\r\n";
  List.iter (fun (k, v) -> Buffer.add_string b (k ^ ": " ^ v ^ "\r\n")) headers;
  Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
  Buffer.add_string b body;
  match write_all fd (Buffer.contents b) with
  | () -> Ok ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED), _, _) ->
      Error (Refused "peer reset the connection during the request write")
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Error Timeout

(* The one response-head formatter: the blocking [respond] below and the
   multiplexed server loop both render through it, so responses are
   byte-identical whichever path wrote them. *)
let response_head_into b ~status ~content_type ~body_length ~keep_alive headers =
  (match status with
  | 200 -> Buffer.add_string b "HTTP/1.1 200 OK\r\n"
  | s ->
      Buffer.add_string b "HTTP/1.1 ";
      Buffer.add_string b (string_of_int s);
      Buffer.add_char b ' ';
      Buffer.add_string b (status_text s);
      Buffer.add_string b "\r\n");
  Buffer.add_string b "Content-Type: ";
  Buffer.add_string b content_type;
  Buffer.add_string b "\r\nContent-Length: ";
  Buffer.add_string b (string_of_int body_length);
  Buffer.add_string b "\r\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_string b ": ";
      Buffer.add_string b v;
      Buffer.add_string b "\r\n")
    headers;
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n" else "Connection: close\r\n");
  Buffer.add_string b "\r\n"

let respond fd ~status ?(content_type = "application/json") ?(keep_alive = true)
    ?(headers = []) body =
  let b = Buffer.create (String.length body + 128) in
  response_head_into b ~status ~content_type ~body_length:(String.length body) ~keep_alive
    headers;
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)
