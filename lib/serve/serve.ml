open Emc_core
module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics
module Trace = Emc_obs.Trace

(** The prediction/search serving daemon (see serve.mli). *)

type listen = Port of int | Unix_socket of string

type opts = {
  listen : listen;
  workers : int;
  max_body : int;
  read_timeout : float;
  idle_timeout : float;
  max_conns : int;
  access_log : string option;
}

let default_opts listen =
  {
    listen;
    workers = 1;
    max_body = 1024 * 1024;
    read_timeout = 10.0;
    idle_timeout = 30.0;
    max_conns = 512;
    access_log = Sys.getenv_opt "EMC_ACCESS_LOG";
  }

(* ---------------- metrics ---------------- *)

let m_requests = Metrics.counter "serve.requests"
let m_errors = Metrics.counter "serve.errors"
let m_connections = Metrics.counter "serve.connections"

let endpoint_counter path = Metrics.counter ("serve.requests." ^ path)
let status_counter status = Metrics.counter (Printf.sprintf "serve.errors.%d" status)
let latency_hist path = Metrics.histogram ("serve.latency_seconds." ^ path)

(* ---------------- cross-worker metrics aggregation ----------------

   Each pre-forked worker publishes its whole registry as an atomic
   snapshot file (write + rename) in a master-created runtime directory:
   once after startup, then after every request *before* the response is
   written, so any client that has received its response is guaranteed
   visible to a subsequent scrape of any worker. [GET /metrics] merges
   every worker's file — counters sum exactly, histograms merge
   bucket-wise — so the scrape answers for the whole daemon no matter
   which worker picked it up. *)

let metrics_dir : string option ref = ref None
let snapshot_file : string option ref = ref None

let publish_dirty = ref false
let publish_last = ref neg_infinity

(* Serializing and renaming the snapshot file on every response is pure
   overhead on the hot path, so publishes are debounced: a response
   marks the registry dirty and a publish happens at most once per
   [publish_interval]; the worker's scheduler loop flushes a dirty
   registry once the interval has passed (its select timeout is capped
   at 1 s, so staleness is bounded even on an idle worker). Scrapes are
   still exact for the answering worker — [aggregated_snapshot]
   publishes its live registry unconditionally. *)
let publish_interval = 0.25

let publish_snapshot () =
  publish_dirty := false;
  publish_last := Unix.gettimeofday ();
  match !snapshot_file with
  | None -> ()
  | Some path -> (
      try
        let tmp = Printf.sprintf "%s.tmp" path in
        let oc = open_out tmp in
        output_string oc (Json.to_string (Metrics.snapshot_to_json (Metrics.snapshot ())));
        output_char oc '\n';
        close_out oc;
        Sys.rename tmp path
      with Sys_error msg ->
        Emc_obs.Log.warn ~src:"serve" "cannot publish metrics snapshot: %s" msg)

let publish_soon () =
  publish_dirty := true;
  if Unix.gettimeofday () -. !publish_last >= publish_interval then publish_snapshot ()

let publish_if_due () =
  if !publish_dirty && Unix.gettimeofday () -. !publish_last >= publish_interval then
    publish_snapshot ()

let read_snapshot_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
      match Result.bind (Json.parse (String.trim contents)) Metrics.snapshot_of_json with
      | Ok s -> Some s
      | Error e ->
          Emc_obs.Log.warn ~src:"serve" "skipping malformed snapshot %s: %s" path e;
          None)

let merged_snapshots dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".json" then read_snapshot_file (Filename.concat dir f)
         else None)
  |> List.fold_left Metrics.merge Metrics.snapshot_empty

(* The scrape's own registry (request counters just bumped) goes through
   the same file path as everyone else's: publish first, then merge all
   files, so no worker is double-counted and none is stale. *)
let aggregated_snapshot () =
  match !metrics_dir with
  | None -> Metrics.snapshot ()
  | Some dir ->
      publish_snapshot ();
      merged_snapshots dir

(* Prometheus text exposition: counters and gauges map directly;
   histograms become real cumulative [le=]-bucket histograms (the
   registry's log-scale buckets, occupied buckets only, plus +Inf). *)
let prometheus_of_snapshot s =
  let b = Buffer.create 2048 in
  let name n =
    "emc_"
    ^ String.map (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' as c -> c | _ -> '_') n
  in
  List.iter
    (fun (raw, v) ->
      let n = name raw in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (Metrics.snapshot_counters s);
  List.iter
    (fun (raw, v) ->
      let n = name raw in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %.17g\n" n n v))
    (Metrics.snapshot_gauges s);
  List.iter
    (fun (raw, h) ->
      let n = name raw in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      List.iter
        (fun (le, cum) ->
          Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%.9g\"} %d\n" n le cum))
        (Metrics.hsnap_cumulative h);
      let stats = Metrics.hsnap_stats h in
      let count, sum =
        match stats with Some st -> (st.Metrics.count, st.Metrics.sum) | None -> (0, 0.0)
      in
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n count);
      Buffer.add_string b (Printf.sprintf "%s_sum %.17g\n" n sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n count))
    (Metrics.snapshot_histograms s);
  Buffer.contents b

let prometheus () = prometheus_of_snapshot (Metrics.snapshot ())

(* ---------------- request ids + access log ----------------

   Every request gets an id: the client's X-Request-Id when it sends a
   sane one, a generated one otherwise; either way the response echoes
   it, and the JSONL access log (EMC_ACCESS_LOG / --access-log) carries
   it with per-phase timings, so one request can be followed from client
   through log to trace span. *)

let rid_seq = ref 0

let gen_request_id () =
  Stdlib.incr rid_seq;
  Printf.sprintf "%08x-%04x-%06x"
    (Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1000.0)) land 0xffffffff)
    (Unix.getpid () land 0xffff) (!rid_seq land 0xffffff)

let valid_request_id id =
  let n = String.length id in
  n > 0 && n <= 128
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true | _ -> false)
       id

let request_id req =
  match Http.header req "x-request-id" with
  | Some id when valid_request_id id -> id
  | _ -> gen_request_id ()

let access_log_oc : out_channel option ref = ref None

let open_access_log path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc -> access_log_oc := Some oc
  | exception Sys_error msg ->
      Emc_obs.Log.err ~src:"serve" "cannot open access log %s: %s" path msg

let close_access_log () =
  match !access_log_oc with
  | None -> ()
  | Some oc ->
      access_log_oc := None;
      (try close_out oc with Sys_error _ -> ())

let log_access ~id ~meth ~path ~status ~bytes_in ~bytes_out ~parse_s ~handle_s ~write_s =
  match !access_log_oc with
  | None -> ()
  | Some oc ->
      let line =
        Json.to_string
          (Json.Obj
             [
               ("ts", Json.Float (Unix.gettimeofday ()));
               ("id", Json.Str id);
               ("worker", Json.Int (Unix.getpid ()));
               ("meth", Json.Str meth);
               ("path", Json.Str path);
               ("status", Json.Int status);
               ("bytes_in", Json.Int bytes_in);
               ("bytes_out", Json.Int bytes_out);
               ("parse_s", Json.Float parse_s);
               ("handle_s", Json.Float handle_s);
               ("write_s", Json.Float write_s);
             ])
      in
      (* one write + flush per line: lines from concurrent workers
         appending to the same file stay whole *)
      output_string oc (line ^ "\n");
      flush oc

(* ---------------- request handling ---------------- *)

let json_body status j = (status, "application/json", Json.to_string j ^ "\n")

let error_body status code msg =
  json_body status
    (Json.Obj [ ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]) ])

let ( let* ) r k = match r with Ok v -> k v | Error (st, code, msg) -> error_body st code msg

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "malformed number %S" s))
  | _ -> Error "expected a number"

let point_of_json j =
  match j with
  | Json.List vs -> (
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | v :: rest -> ( match as_float v with Ok f -> go (f :: acc) rest | Error e -> Error e)
      in
      go [] vs)
  | _ -> Error "each point must be a list of numbers"

let parse_json_body (req : Http.request) =
  (match Http.header req "content-type" with
  | Some ct
    when not
           (String.length ct >= 16
           && String.lowercase_ascii (String.sub ct 0 16) = "application/json") ->
      Error (415, "unsupported_media_type", "content-type must be application/json, got " ^ ct)
  | _ -> Ok ())
  |> function
  | Error e -> Error e
  | Ok () -> (
      match Json.parse req.Http.body with
      | Ok j -> Ok j
      | Error e -> Error (400, "bad_json", "malformed JSON body: " ^ e))

(* /predict: single point or batch, coded (default) or raw space. *)
let max_batch = 4096

let handle_predict art (req : Http.request) =
  let* j = parse_json_body req in
  let* space =
    match Json.member "space" j with
    | None | Some (Json.Str "coded") -> Ok `Coded
    | Some (Json.Str "raw") -> Ok `Raw
    | Some (Json.Str s) -> Error (400, "bad_request", Printf.sprintf "unknown space %S (want \"coded\" or \"raw\")" s)
    | Some _ -> Error (400, "bad_request", "\"space\" must be a string")
  in
  let* points, batched =
    match (Json.member "point" j, Json.member "points" j) with
    | Some p, None -> (
        match point_of_json p with
        | Ok x -> Ok ([ x ], false)
        | Error e -> Error (400, "bad_request", e))
    | None, Some (Json.List ps) ->
        if List.length ps > max_batch then
          Error (413, "too_many_points", Printf.sprintf "batch of %d points exceeds the %d cap" (List.length ps) max_batch)
        else
          let rec go acc = function
            | [] -> Ok (List.rev acc, true)
            | p :: rest -> (
                match point_of_json p with
                | Ok x -> go (x :: acc) rest
                | Error e -> Error (400, "bad_request", e))
          in
          go [] ps
    | None, Some _ -> Error (400, "bad_request", "\"points\" must be a list of points")
    | None, None -> Error (400, "bad_request", "body must carry \"point\" or \"points\"")
    | Some _, Some _ -> Error (400, "bad_request", "give either \"point\" or \"points\", not both")
  in
  let* coded =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
          let r =
            match space with
            | `Coded -> ( match Artifact.validate_point art x with Ok () -> Ok x | Error e -> Error e)
            | `Raw -> Artifact.code_raw art x
          in
          match r with
          | Ok x -> go (x :: acc) rest
          | Error e -> Error (400, "bad_point", e))
    in
    go [] points
  in
  let predict = Emc_regress.Repr.eval art.Artifact.repr in
  match (coded, batched) with
  | [ x ], false -> json_body 200 (Json.Obj [ ("prediction", Json.Float (predict x)) ])
  | xs, _ ->
      json_body 200
        (Json.Obj [ ("predictions", Json.List (List.map (fun x -> Json.Float (predict x)) xs)) ])

let handle_rank art (req : Http.request) =
  let* top =
    (* a malformed or non-positive ?top must not silently mean "all" *)
    match List.assoc_opt "top" req.Http.query with
    | None -> Ok max_int
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Ok n
        | _ ->
            Error
              (400, "bad_request",
               Printf.sprintf "query parameter \"top\" must be a positive integer, got %S" v))
  in
  (* NaN-safe strongest-first order: polymorphic compare on floats would
     order NaN coefficients arbitrarily; strength_order pins them last *)
  let terms = List.sort Emc_regress.Metrics.strength_order art.Artifact.terms in
  let terms = List.filteri (fun i _ -> i < top) terms in
  json_body 200
    (Json.Obj
       [ ("technique", Json.Str art.Artifact.technique);
         ("terms",
          Json.List
            (List.map
               (fun (n, c) -> Json.Obj [ ("term", Json.Str n); ("coef", Json.Float c) ])
               terms)) ])

let named_config = function
  | "constrained" -> Some Emc_sim.Config.constrained
  | "typical" -> Some Emc_sim.Config.typical
  | "aggressive" -> Some Emc_sim.Config.aggressive
  | _ -> None

(* Shared by /search and /pareto: target microarchitecture from the body
   (a named config, raw "march" values, or the typical default). *)
let march_of_body j =
  match (Json.member "config" j, Json.member "march" j) with
  | Some (Json.Str name), None -> (
      match named_config name with
      | Some c -> Ok c
      | None ->
          Error (400, "bad_request", Printf.sprintf "unknown config %S (want constrained|typical|aggressive)" name))
  | None, Some m -> (
      match point_of_json m with
      | Error e -> Error (400, "bad_request", e)
      | Ok vals ->
          if Array.length vals <> Params.n_march then
            Error (400, "bad_request", Printf.sprintf "\"march\" wants %d raw values, got %d" Params.n_march (Array.length vals))
          else Ok (Params.to_march (Array.append (Array.make Params.n_compiler 0.0) vals)))
  | None, None -> Ok Emc_sim.Config.typical
  | _ -> Error (400, "bad_request", "give either \"config\" or \"march\", not both")

let int_field j name default =
  match Json.member name j with
  | None -> Ok default
  | Some (Json.Int v) when v > 0 -> Ok v
  | Some _ -> Error (400, "bad_request", Printf.sprintf "%S must be a positive integer" name)

(* Search budget shared by /search and /pareto: seed + GA parameters. *)
let search_params j =
  match int_field j "seed" 42 with
  | Error e -> Error e
  | Ok seed -> (
      match int_field j "pop_size" Emc_search.Ga.default_params.Emc_search.Ga.pop_size with
      | Error e -> Error e
      | Ok pop_size -> (
          match
            int_field j "generations" Emc_search.Ga.default_params.Emc_search.Ga.generations
          with
          | Error e -> Error e
          | Ok generations ->
              Ok (seed, { Emc_search.Ga.default_params with pop_size; generations })))

let handle_search art (req : Http.request) =
  let* j = parse_json_body req in
  let* march = march_of_body j in
  let* seed, params = search_params j in
  let evals_before = Option.value ~default:0 (Metrics.counter_value "ga.evaluations") in
  let r =
    Searcher.search ~params ~rng:(Emc_util.Rng.create seed) ~model:(Artifact.model art) ~march ()
  in
  let evals = Option.value ~default:0 (Metrics.counter_value "ga.evaluations") - evals_before in
  let flag_names = Params.names Params.compiler_specs in
  json_body 200
    (Json.Obj
       [ ("flags",
          Json.Obj
            (Array.to_list
               (Array.mapi (fun i v -> (flag_names.(i), Json.Float v)) r.Searcher.raw)));
         ("flags_string", Json.Str (Emc_opt.Flags.to_string r.Searcher.flags));
         ("predicted_cycles", Json.Float r.Searcher.predicted_cycles);
         ("evaluations", Json.Int evals);
         ("seed", Json.Int seed) ])

let handle_pareto art (req : Http.request) =
  let* j = parse_json_body req in
  let* energy_repr =
    match Artifact.extra_repr art "energy" with
    | Some r -> Ok r
    | None ->
        Error
          (409, "no_energy_response",
           "artifact carries no \"energy\" response model; retrain with emc train --energy")
  in
  let* march = march_of_body j in
  let* seed, params = search_params j in
  let energy_model =
    { Emc_regress.Model.technique = "energy"; predict = Emc_regress.Repr.eval energy_repr;
      n_params = 0; terms = []; repr = Some energy_repr }
  in
  let evals_before = Option.value ~default:0 (Metrics.counter_value "pareto.evaluations") in
  let front =
    Searcher.search_pareto ~params ~rng:(Emc_util.Rng.create seed)
      ~cycles_model:(Artifact.model art) ~energy_model ~march ()
  in
  let evals =
    Option.value ~default:0 (Metrics.counter_value "pareto.evaluations") - evals_before
  in
  json_body 200 (Searcher.pareto_to_json ~seed ~evaluations:evals front)

let handle_healthz art (_req : Http.request) =
  json_body 200
    (Json.Obj
       [ ("status", Json.Str "ok");
         ("workload", Json.Str art.Artifact.workload);
         ("technique", Json.Str art.Artifact.technique);
         ("dims", Json.Int (Artifact.dims art));
         ("format_version", Json.Int Artifact.current_version) ])

let endpoints = [ "/predict"; "/rank"; "/search"; "/pareto"; "/healthz"; "/metrics" ]

let dispatch art (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" -> handle_predict art req
  | "GET", "/rank" | "POST", "/rank" -> handle_rank art req
  | "POST", "/search" -> handle_search art req
  | "POST", "/pareto" -> handle_pareto art req
  | "GET", "/healthz" -> handle_healthz art req
  | "GET", "/metrics" ->
      (200, "text/plain; version=0.0.4", prometheus_of_snapshot (aggregated_snapshot ()))
  | _, p when List.mem p endpoints ->
      error_body 405 "method_not_allowed" (req.Http.meth ^ " is not supported on " ^ p)
  | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)

(* Dispatch wrapped with per-endpoint telemetry and a catch-all so no
   exception ever escapes to the client as a dropped connection. *)
let handle_request art (req : Http.request) =
  let endpoint = if List.mem req.Http.path endpoints then req.Http.path else "other" in
  Metrics.incr m_requests;
  Metrics.incr (endpoint_counter endpoint);
  let t0 = Unix.gettimeofday () in
  let ((status, _, _) as resp) =
    try dispatch art req
    with e ->
      Emc_obs.Log.warn ~src:"serve" "request handler raised: %s" (Printexc.to_string e);
      error_body 500 "internal" "internal error; see server log"
  in
  Metrics.observe (latency_hist endpoint) (Unix.gettimeofday () -. t0);
  if status >= 400 then begin
    Metrics.incr m_errors;
    Metrics.incr (status_counter status)
  end;
  resp

(* ---------------- the allocation-lean /predict hot path ----------------

   [handle_predict] above is the reference implementation: every request
   re-closes over the representation, builds a list of freshly-allocated
   point arrays and renders the response through a full [Json.t] tree.
   The daemon's per-worker [hot] context hoists all of that out of the
   request: the evaluator is compiled once ([Repr.compile] — dispatch and
   feature-expansion scratch resolved at worker start), points parse into
   a reused float arena, and the response renders into a reused
   [Buffer.t] through the same [Json] float writer, so the bytes are
   identical to the reference path (a unit test byte-compares the two
   over singles, batches, raw space and every error shape). *)

type hot = {
  h_art : Artifact.t;
  h_dims : int;
  h_predict : float array -> float;
  h_point : float array;  (* reused right-arity point *)
  mutable h_arena : float array;  (* parsed points, flattened *)
  mutable h_lens : int array;  (* per-point arity in the arena *)
  h_body : Buffer.t;  (* response body of the last handle *)
}

let make_hot art =
  let dims = Artifact.dims art in
  {
    h_art = art;
    h_dims = dims;
    h_predict = Emc_regress.Repr.compile art.Artifact.repr;
    h_point = Array.make (max 1 dims) 0.0;
    h_arena = Array.make (max 256 dims) 0.0;
    h_lens = Array.make 64 0;
    h_body = Buffer.create 4096;
  }

let hot_body hot = hot.h_body

let ensure_arena hot n =
  if Array.length hot.h_arena < n then begin
    let bigger = Array.make (max n (2 * Array.length hot.h_arena)) 0.0 in
    Array.blit hot.h_arena 0 bigger 0 (Array.length hot.h_arena);
    hot.h_arena <- bigger
  end

let ensure_lens hot n =
  if Array.length hot.h_lens < n then begin
    let bigger = Array.make (max n (2 * Array.length hot.h_lens)) 0 in
    Array.blit hot.h_lens 0 bigger 0 (Array.length hot.h_lens);
    hot.h_lens <- bigger
  end

(* Parse one JSON point into the arena at [off]; same element order and
   error strings as [point_of_json]. Returns the next free offset. *)
let parse_point_into hot ~off j =
  match j with
  | Json.List vs ->
      let rec go off = function
        | [] -> Ok off
        | v :: rest -> (
            match as_float v with
            | Ok f ->
                ensure_arena hot (off + 1);
                hot.h_arena.(off) <- f;
                go (off + 1) rest
            | Error e -> Error e)
      in
      go off vs
  | _ -> Error "each point must be a list of numbers"

(* A right-arity point reuses [h_point]; a wrong-arity one gets a fresh
   slice so the schema validators report the true length (cold path). *)
let arena_point hot ~off ~len =
  if len = hot.h_dims then begin
    Array.blit hot.h_arena off hot.h_point 0 len;
    hot.h_point
  end
  else Array.sub hot.h_arena off len

let predict_into hot (req : Http.request) =
  let ( let* ) r k = match r with Ok v -> k v | Error e -> Error e in
  let result =
    let* j = parse_json_body req in
    let* space =
      match Json.member "space" j with
      | None | Some (Json.Str "coded") -> Ok `Coded
      | Some (Json.Str "raw") -> Ok `Raw
      | Some (Json.Str s) ->
          Error (400, "bad_request", Printf.sprintf "unknown space %S (want \"coded\" or \"raw\")" s)
      | Some _ -> Error (400, "bad_request", "\"space\" must be a string")
    in
    let* n_points, single =
      match (Json.member "point" j, Json.member "points" j) with
      | Some p, None -> (
          match parse_point_into hot ~off:0 p with
          | Ok stop ->
              ensure_lens hot 1;
              hot.h_lens.(0) <- stop;
              Ok (1, true)
          | Error e -> Error (400, "bad_request", e))
      | None, Some (Json.List ps) ->
          if List.length ps > max_batch then
            Error
              (413, "too_many_points",
               Printf.sprintf "batch of %d points exceeds the %d cap" (List.length ps) max_batch)
          else
            let rec go i off = function
              | [] -> Ok (i, false)
              | p :: rest -> (
                  match parse_point_into hot ~off p with
                  | Ok stop ->
                      ensure_lens hot (i + 1);
                      hot.h_lens.(i) <- stop - off;
                      go (i + 1) stop rest
                  | Error e -> Error (400, "bad_request", e))
            in
            go 0 0 ps
      | None, Some _ -> Error (400, "bad_request", "\"points\" must be a list of points")
      | None, None -> Error (400, "bad_request", "body must carry \"point\" or \"points\"")
      | Some _, Some _ -> Error (400, "bad_request", "give either \"point\" or \"points\", not both")
    in
    Buffer.clear hot.h_body;
    Buffer.add_string hot.h_body (if single then "{\"prediction\":" else "{\"predictions\":[");
    let off = ref 0 in
    let rec go i =
      if i >= n_points then Ok ()
      else begin
        let len = hot.h_lens.(i) in
        let x = arena_point hot ~off:!off ~len in
        off := !off + len;
        let r =
          match space with
          | `Coded -> (
              match Artifact.validate_point hot.h_art x with Ok () -> Ok x | Error e -> Error e)
          | `Raw -> Artifact.code_raw hot.h_art x
        in
        match r with
        | Error e -> Error (400, "bad_point", e)
        | Ok cx ->
            if i > 0 then Buffer.add_char hot.h_body ',';
            Json.to_buffer hot.h_body (Json.Float (hot.h_predict cx));
            go (i + 1)
      end
    in
    let* () = go 0 in
    Buffer.add_string hot.h_body (if single then "}\n" else "]}\n");
    Ok ()
  in
  match result with
  | Ok () -> (200, "application/json")
  | Error (st, code, msg) ->
      let _, content_type, body = error_body st code msg in
      Buffer.clear hot.h_body;
      Buffer.add_string hot.h_body body;
      (st, content_type)

(* Like [dispatch]/[handle_request] but rendering into the hot context's
   body buffer: /predict takes the allocation-lean path, everything else
   goes through the reference handlers and is copied in. *)
let dispatch_into hot (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" -> predict_into hot req
  | _ ->
      let status, content_type, body = dispatch hot.h_art req in
      Buffer.clear hot.h_body;
      Buffer.add_string hot.h_body body;
      (status, content_type)

let handle_into hot (req : Http.request) =
  let endpoint = if List.mem req.Http.path endpoints then req.Http.path else "other" in
  Metrics.incr m_requests;
  Metrics.incr (endpoint_counter endpoint);
  let t0 = Unix.gettimeofday () in
  let ((status, _) as resp) =
    try dispatch_into hot req
    with e ->
      Emc_obs.Log.warn ~src:"serve" "request handler raised: %s" (Printexc.to_string e);
      let st, content_type, body = error_body 500 "internal" "internal error; see server log" in
      Buffer.clear hot.h_body;
      Buffer.add_string hot.h_body body;
      (st, content_type)
  in
  Metrics.observe (latency_hist endpoint) (Unix.gettimeofday () -. t0);
  if status >= 400 then begin
    Metrics.incr m_errors;
    Metrics.incr (status_counter status)
  end;
  resp

(* ---------------- connection + worker loop ---------------- *)

let stop = ref false

let count_error status =
  Metrics.incr m_requests;
  Metrics.incr m_errors;
  Metrics.incr (status_counter status)

(* The event-driven connection scheduler. Each pre-forked worker owns a
   select()-driven set of per-connection state machines over the shared
   non-blocking listening socket:

     accept -> read (accumulate + incremental parse) -> handle
            -> write (non-blocking flush) -> keep-alive | close

   A connection is either reading (its input buffer holds at most a
   partial request) or writing (one rendered response is flushing; input
   bytes buffer in the kernel — natural per-connection back-pressure, so
   a pipelining client can't make the worker buffer unbounded output).
   Deadlines are absolute and phase-derived: a partial request must
   complete within [read_timeout] of its first byte (a dribbling writer
   earns a 408), a response must drain within [read_timeout] (a stalled
   reader is cut off), and a silent idle connection is closed after
   [idle_timeout]. The access-log line and the metrics-snapshot publish
   for a response run only after its last byte reaches the kernel —
   queued as [post_write] when the flush goes partial — so neither ever
   sits between another connection's events. *)

type conn = {
  c_fd : Unix.file_descr;
  c_inb : Buffer.t;  (* unconsumed request bytes *)
  mutable c_out : string;  (* rendered response being flushed *)
  mutable c_out_off : int;
  mutable c_writing : bool;
  mutable c_req_t0 : float;  (* arrival of the current request's first byte *)
  mutable c_idle_since : float;
  mutable c_write_deadline : float;
  mutable c_close_after : bool;
  mutable c_eof : bool;  (* peer half-closed its write side *)
  mutable c_post_write : (unit -> unit) option;
  mutable c_closed : bool;
}

type wstate = {
  w_opts : opts;
  w_hot : hot;
  w_chunk : Bytes.t;  (* reused read buffer *)
  w_outbuf : Buffer.t;  (* reused response render buffer *)
  mutable w_conns : conn list;
}

let conn_deadline st c =
  if c.c_writing then c.c_write_deadline
  else if Buffer.length c.c_inb > 0 then c.c_req_t0 +. st.w_opts.read_timeout
  else c.c_idle_since +. st.w_opts.idle_timeout

let close_conn st c =
  if not c.c_closed then begin
    c.c_closed <- true;
    c.c_post_write <- None;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    st.w_conns <- List.filter (fun o -> o != c) st.w_conns
  end

(* Render head + the body currently in [h_body] into the conn's output
   string and start flushing. The first flush attempt happens inline: on
   an unloaded connection the whole response reaches the kernel here and
   [post_write] runs at once. *)
let rec enqueue_response st c ~status ~content_type ~keep_alive ~id =
  Buffer.clear st.w_outbuf;
  Http.response_head_into st.w_outbuf ~status ~content_type
    ~body_length:(Buffer.length st.w_hot.h_body) ~keep_alive
    [ ("X-Request-Id", id) ];
  Buffer.add_buffer st.w_outbuf st.w_hot.h_body;
  c.c_out <- Buffer.contents st.w_outbuf;
  c.c_out_off <- 0;
  c.c_writing <- true;
  if not keep_alive then c.c_close_after <- true;
  c.c_write_deadline <- Unix.gettimeofday () +. st.w_opts.read_timeout;
  try_flush st c

and try_flush st c =
  if c.c_writing && not c.c_closed then begin
    let len = String.length c.c_out - c.c_out_off in
    match Unix.write_substring c.c_fd c.c_out c.c_out_off len with
    | n ->
        c.c_out_off <- c.c_out_off + n;
        if c.c_out_off >= String.length c.c_out then begin
          (* response delivered to the kernel: now (and only now) publish
             the snapshot and write the access-log line, then either close
             or return to reading — a pipelined next request may already
             be buffered, so re-parse immediately *)
          (match c.c_post_write with
          | Some f ->
              c.c_post_write <- None;
              f ()
          | None -> ());
          c.c_out <- "";
          c.c_out_off <- 0;
          c.c_writing <- false;
          if c.c_close_after || (c.c_eof && Buffer.length c.c_inb = 0) then close_conn st c
          else begin
            c.c_idle_since <- Unix.gettimeofday ();
            if Buffer.length c.c_inb > 0 then begin
              c.c_req_t0 <- c.c_idle_since;
              process_input st c
            end
          end
        end
        else try_flush st c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        () (* kernel buffer full: select on writability, deadline armed *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush st c
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* response undeliverable: drop its post_write (the old blocking
           path also skipped logging when the peer vanished mid-write) *)
        close_conn st c
  end

and protocol_error st c status code msg =
  count_error status;
  let id = gen_request_id () in
  let parse_s = Unix.gettimeofday () -. c.c_req_t0 in
  let _, content_type, body = error_body status code msg in
  c.c_close_after <- true;
  Buffer.clear c.c_inb;
  c.c_post_write <-
    Some
      (fun () ->
        publish_soon ();
        log_access ~id ~meth:"-" ~path:"-" ~status ~bytes_in:0 ~bytes_out:(String.length body)
          ~parse_s ~handle_s:0.0 ~write_s:0.0);
  Buffer.clear st.w_hot.h_body;
  Buffer.add_string st.w_hot.h_body body;
  enqueue_response st c ~status ~content_type ~keep_alive:false ~id

and handle_one st c (req : Http.request) =
  let t_parsed = Unix.gettimeofday () in
  let id = request_id req in
  let status, content_type =
    Trace.with_span ~cat:"serve" "handle"
      ~args:(fun () ->
        [ ("id", Json.Str id); ("method", Json.Str req.Http.meth);
          ("path", Json.Str req.Http.path) ])
      (fun () -> handle_into st.w_hot req)
  in
  let t_handled = Unix.gettimeofday () in
  let keep_alive =
    (not !stop)
    && (match Http.header req "connection" with
       | Some c -> String.lowercase_ascii c <> "close"
       | None -> true)
  in
  let meth = req.Http.meth and path = req.Http.path in
  let bytes_in = String.length req.Http.body in
  let bytes_out = Buffer.length st.w_hot.h_body in
  let parse_s = t_parsed -. c.c_req_t0 and handle_s = t_handled -. t_parsed in
  c.c_post_write <-
    Some
      (fun () ->
        publish_soon ();
        log_access ~id ~meth ~path ~status ~bytes_in ~bytes_out ~parse_s ~handle_s
          ~write_s:(Unix.gettimeofday () -. t_handled));
  (* the body is already rendered in h_body by handle_into *)
  enqueue_response st c ~status ~content_type ~keep_alive ~id

and process_input st c =
  if (not c.c_writing) && not c.c_closed then begin
    let s = Buffer.contents c.c_inb in
    if s <> "" then
      match Http.parse_request ~max_body:st.w_opts.max_body s with
      | Http.Incomplete ->
          if c.c_eof then protocol_error st c 400 "bad_request" "truncated request"
      | Http.Invalid (Http.Too_large what) ->
          protocol_error st c 413 "too_large" (what ^ " exceed the configured limit")
      | Http.Invalid (Http.Bad msg) -> protocol_error st c 400 "bad_request" msg
      | Http.Invalid (Http.Timeout | Http.Closed | Http.Refused _) ->
          (* parse_request never produces these *)
          close_conn st c
      | Http.Parsed (req, consumed) ->
          let rest = String.sub s consumed (String.length s - consumed) in
          Buffer.clear c.c_inb;
          Buffer.add_string c.c_inb rest;
          handle_one st c req
  end

let on_readable st c =
  match Unix.read c.c_fd st.w_chunk 0 (Bytes.length st.w_chunk) with
  | 0 ->
      c.c_eof <- true;
      if c.c_writing then () (* finish the flush; closed at drain *)
      else if Buffer.length c.c_inb = 0 then close_conn st c
      else process_input st c (* Incomplete + eof -> 400 truncated *)
  | n ->
      if (not c.c_writing) && Buffer.length c.c_inb = 0 then c.c_req_t0 <- Unix.gettimeofday ();
      Buffer.add_subbytes c.c_inb st.w_chunk 0 n;
      if not c.c_writing then process_input st c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn st c

(* Deadline expiry, by phase: a stalled reader mid-flush is cut off, a
   dribbling request earns a 408 (matching the blocking daemon), a
   silent idle connection closes without a response. *)
let expire_conn st c =
  if c.c_writing then close_conn st c
  else if Buffer.length c.c_inb > 0 then protocol_error st c 408 "timeout" "request read timed out"
  else close_conn st c

let worker art opts lsock =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let quit = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  (* per-worker trace file: the parent's buffered events are dropped and
     this worker's spans go to EMC_TRACE.<pid> (workers exit with _exit,
     so the parent's at_exit flush never runs here) *)
  (match Sys.getenv_opt "EMC_TRACE" with
  | Some p when p <> "" -> Trace.enable (Printf.sprintf "%s.%d" p (Unix.getpid ()))
  | _ -> ());
  (match !metrics_dir with
  | Some dir ->
      (* each worker's registry must record only what this worker served:
         counts inherited from the pre-fork parent would otherwise be
         republished by every worker and multiply in the merge *)
      Metrics.reset ();
      snapshot_file := Some (Filename.concat dir (Printf.sprintf "worker-%d.json" (Unix.getpid ())));
      publish_snapshot () (* visible to scrapes before the first request *)
  | None -> ());
  (match opts.access_log with Some path -> open_access_log path | None -> ());
  Unix.set_nonblock lsock;
  let st =
    {
      w_opts = opts;
      w_hot = make_hot art;
      w_chunk = Bytes.create (16 * 1024);
      w_outbuf = Buffer.create 8192;
      w_conns = [];
    }
  in
  (* Non-blocking accept burst: drain the shared listening socket until
     EAGAIN (a sibling worker won the race — fair enough at this scale)
     or this worker is at its connection cap. *)
  let accept_burst () =
    let rec go () =
      if List.length st.w_conns < opts.max_conns then
        match Unix.accept lsock with
        | fd, _ ->
            Unix.set_nonblock fd;
            Metrics.incr m_connections;
            let now = Unix.gettimeofday () in
            st.w_conns <-
              {
                c_fd = fd;
                c_inb = Buffer.create 1024;
                c_out = "";
                c_out_off = 0;
                c_writing = false;
                c_req_t0 = now;
                c_idle_since = now;
                c_write_deadline = now;
                c_close_after = false;
                c_eof = false;
                c_post_write = None;
                c_closed = false;
              }
              :: st.w_conns;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> go ()
    in
    go ()
  in
  (* On SIGTERM/SIGINT: stop accepting, let in-flight responses drain
     (bounded), then flush the final snapshot and leave. *)
  let drain_deadline = ref None in
  let running () =
    if not !stop then true
    else begin
      (match !drain_deadline with
      | None -> drain_deadline := Some (Unix.gettimeofday () +. Float.min 5.0 opts.read_timeout)
      | Some _ -> ());
      List.exists (fun c -> c.c_writing) st.w_conns
      && Unix.gettimeofday () < Option.get !drain_deadline
    end
  in
  while running () do
    publish_if_due ();
    let now = Unix.gettimeofday () in
    List.iter (fun c -> if (not c.c_closed) && now >= conn_deadline st c then expire_conn st c)
      st.w_conns;
    let accepting = (not !stop) && List.length st.w_conns < opts.max_conns in
    let rset =
      List.fold_left
        (fun acc c -> if c.c_writing || c.c_eof then acc else c.c_fd :: acc)
        (if accepting then [ lsock ] else [])
        st.w_conns
    in
    let wset = List.filter_map (fun c -> if c.c_writing then Some c.c_fd else None) st.w_conns in
    let timeout =
      let d = List.fold_left (fun acc c -> Float.min acc (conn_deadline st c)) infinity st.w_conns in
      let t = if d = infinity then 1.0 else Float.max 0.0 (Float.min 1.0 (d -. now)) in
      (* a pending debounced publish bounds the sleep so the flush lands
         within [publish_interval] even on an otherwise idle worker *)
      if !publish_dirty then
        Float.max 0.0 (Float.min t (!publish_last +. publish_interval -. now))
      else t
    in
    match Unix.select rset wset [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | r, w, _ ->
        if List.memq lsock r then accept_burst ();
        let find fd = List.find_opt (fun c -> c.c_fd = fd && not c.c_closed) st.w_conns in
        List.iter
          (fun fd ->
            if fd <> lsock then
              match find fd with Some c -> on_readable st c | None -> ())
          r;
        List.iter
          (fun fd -> match find fd with Some c when c.c_writing -> try_flush st c | _ -> ())
          w
  done;
  List.iter (fun c -> close_conn st c) st.w_conns;
  publish_snapshot ();
  close_access_log ();
  Trace.flush ();
  Unix._exit 0

let listen_description = function
  | Port p -> Printf.sprintf "127.0.0.1:%d" p
  | Unix_socket path -> path

let bind_listener = function
  | Unix_socket path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket from a dead server *)
      | _ -> failwith (path ^ " exists and is not a socket; refusing to replace it")
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      (s, fun () -> (try Unix.unlink path with Unix.Unix_error _ -> ()))
  | Port p ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      (s, fun () -> ())

let make_metrics_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emc-serve-%d.metrics" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700
   with Unix.Unix_error (Unix.EEXIST, _, _) ->
     (* leftover from a recycled pid: clear stale snapshots *)
     Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir));
  dir

let remove_metrics_dir dir =
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let run opts art =
  let lsock, cleanup = bind_listener opts.listen in
  Unix.listen lsock 64;
  let workers = max 1 opts.workers in
  let dir = make_metrics_dir () in
  metrics_dir := Some dir;
  let pids =
    List.init workers (fun _ -> match Unix.fork () with 0 -> worker art opts lsock | pid -> pid)
  in
  let stopping = ref false in
  let quit = Sys.Signal_handle (fun _ -> stopping := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  Emc_obs.Log.info ~src:"serve"
    ~fields:
      [ ("workload", Json.Str art.Artifact.workload);
        ("technique", Json.Str art.Artifact.technique);
        ("workers", Json.Int workers) ]
    "serving %s/%s on %s (%d worker%s)" art.Artifact.workload art.Artifact.technique
    (listen_description opts.listen) workers
    (if workers = 1 then "" else "s");
  let alive = ref pids in
  while (not !stopping) && !alive <> [] do
    match Unix.waitpid [] (-1) with
    | pid, _ -> alive := List.filter (( <> ) pid) !alive
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> alive := []
  done;
  (* graceful shutdown: workers finish their in-flight request and flush
     their final snapshot + access log, then exit; only after every
     worker is down do we report totals, unlink and clean up *)
  List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) !alive;
  List.iter
    (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    !alive;
  let final = merged_snapshots dir in
  let total name = Option.value ~default:0 (List.assoc_opt name (Metrics.snapshot_counters final)) in
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  cleanup ();
  remove_metrics_dir dir;
  metrics_dir := None;
  Emc_obs.Log.info ~src:"serve"
    ~fields:
      [ ("requests", Json.Int (total "serve.requests"));
        ("errors", Json.Int (total "serve.errors")) ]
    "server on %s stopped (%d requests, %d errors)" (listen_description opts.listen)
    (total "serve.requests") (total "serve.errors")
