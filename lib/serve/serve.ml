open Emc_core
module Json = Emc_obs.Json
module Metrics = Emc_obs.Metrics

(** The prediction/search serving daemon (see serve.mli). *)

type listen = Port of int | Unix_socket of string

type opts = {
  listen : listen;
  workers : int;
  max_body : int;
  read_timeout : float;
}

let default_opts listen = { listen; workers = 1; max_body = 1024 * 1024; read_timeout = 10.0 }

(* ---------------- metrics ---------------- *)

let m_requests = Metrics.counter "serve.requests"
let m_errors = Metrics.counter "serve.errors"
let m_connections = Metrics.counter "serve.connections"

let endpoint_counter path = Metrics.counter ("serve.requests." ^ path)
let status_counter status = Metrics.counter (Printf.sprintf "serve.errors.%d" status)
let latency_hist path = Metrics.histogram ("serve.latency_seconds." ^ path)

(* Prometheus text exposition of the whole registry: counters and gauges
   map directly; histograms become summaries (count/sum + exact quantiles,
   which the registry keeps precisely). *)
let prometheus () =
  let b = Buffer.create 2048 in
  let name n =
    "emc_"
    ^ String.map (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' as c -> c | _ -> '_') n
  in
  (match Metrics.to_json () with
  | Json.Obj kvs ->
      List.iter
        (fun (raw, v) ->
          let n = name raw in
          match v with
          | Json.Int i ->
              Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n i)
          | Json.Float f ->
              Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %.17g\n" n n f)
          | Json.Null -> ()
          | Json.Obj fields ->
              let get k = match List.assoc_opt k fields with
                | Some (Json.Float f) -> Some f
                | Some (Json.Int i) -> Some (float_of_int i)
                | _ -> None
              in
              let count = match List.assoc_opt "count" fields with Some (Json.Int c) -> c | _ -> 0 in
              Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
              List.iter
                (fun (q, k) ->
                  match get k with
                  | Some v -> Buffer.add_string b (Printf.sprintf "%s{quantile=\"%s\"} %.17g\n" n q v)
                  | None -> ())
                [ ("0.5", "p50"); ("0.9", "p90"); ("0.99", "p99") ];
              (match get "sum" with
              | Some s -> Buffer.add_string b (Printf.sprintf "%s_sum %.17g\n" n s)
              | None -> ());
              Buffer.add_string b (Printf.sprintf "%s_count %d\n" n count)
          | _ -> ())
        kvs
  | _ -> ());
  Buffer.contents b

(* ---------------- request handling ---------------- *)

let json_body status j = (status, "application/json", Json.to_string j ^ "\n")

let error_body status code msg =
  json_body status
    (Json.Obj [ ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str msg) ]) ])

let ( let* ) r k = match r with Ok v -> k v | Error (st, code, msg) -> error_body st code msg

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "malformed number %S" s))
  | _ -> Error "expected a number"

let point_of_json j =
  match j with
  | Json.List vs -> (
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | v :: rest -> ( match as_float v with Ok f -> go (f :: acc) rest | Error e -> Error e)
      in
      go [] vs)
  | _ -> Error "each point must be a list of numbers"

let parse_json_body (req : Http.request) =
  (match Http.header req "content-type" with
  | Some ct
    when not
           (String.length ct >= 16
           && String.lowercase_ascii (String.sub ct 0 16) = "application/json") ->
      Error (415, "unsupported_media_type", "content-type must be application/json, got " ^ ct)
  | _ -> Ok ())
  |> function
  | Error e -> Error e
  | Ok () -> (
      match Json.parse req.Http.body with
      | Ok j -> Ok j
      | Error e -> Error (400, "bad_json", "malformed JSON body: " ^ e))

(* /predict: single point or batch, coded (default) or raw space. *)
let max_batch = 4096

let handle_predict art (req : Http.request) =
  let* j = parse_json_body req in
  let* space =
    match Json.member "space" j with
    | None | Some (Json.Str "coded") -> Ok `Coded
    | Some (Json.Str "raw") -> Ok `Raw
    | Some (Json.Str s) -> Error (400, "bad_request", Printf.sprintf "unknown space %S (want \"coded\" or \"raw\")" s)
    | Some _ -> Error (400, "bad_request", "\"space\" must be a string")
  in
  let* points, batched =
    match (Json.member "point" j, Json.member "points" j) with
    | Some p, None -> (
        match point_of_json p with
        | Ok x -> Ok ([ x ], false)
        | Error e -> Error (400, "bad_request", e))
    | None, Some (Json.List ps) ->
        if List.length ps > max_batch then
          Error (413, "too_many_points", Printf.sprintf "batch of %d points exceeds the %d cap" (List.length ps) max_batch)
        else
          let rec go acc = function
            | [] -> Ok (List.rev acc, true)
            | p :: rest -> (
                match point_of_json p with
                | Ok x -> go (x :: acc) rest
                | Error e -> Error (400, "bad_request", e))
          in
          go [] ps
    | None, Some _ -> Error (400, "bad_request", "\"points\" must be a list of points")
    | None, None -> Error (400, "bad_request", "body must carry \"point\" or \"points\"")
    | Some _, Some _ -> Error (400, "bad_request", "give either \"point\" or \"points\", not both")
  in
  let* coded =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
          let r =
            match space with
            | `Coded -> ( match Artifact.validate_point art x with Ok () -> Ok x | Error e -> Error e)
            | `Raw -> Artifact.code_raw art x
          in
          match r with
          | Ok x -> go (x :: acc) rest
          | Error e -> Error (400, "bad_point", e))
    in
    go [] points
  in
  let predict = Emc_regress.Repr.eval art.Artifact.repr in
  match (coded, batched) with
  | [ x ], false -> json_body 200 (Json.Obj [ ("prediction", Json.Float (predict x)) ])
  | xs, _ ->
      json_body 200
        (Json.Obj [ ("predictions", Json.List (List.map (fun x -> Json.Float (predict x)) xs)) ])

let handle_rank art (req : Http.request) =
  let top =
    match List.assoc_opt "top" req.Http.query with
    | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let terms =
    List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) art.Artifact.terms
  in
  let terms = List.filteri (fun i _ -> i < top) terms in
  json_body 200
    (Json.Obj
       [ ("technique", Json.Str art.Artifact.technique);
         ("terms",
          Json.List
            (List.map
               (fun (n, c) -> Json.Obj [ ("term", Json.Str n); ("coef", Json.Float c) ])
               terms)) ])

let named_config = function
  | "constrained" -> Some Emc_sim.Config.constrained
  | "typical" -> Some Emc_sim.Config.typical
  | "aggressive" -> Some Emc_sim.Config.aggressive
  | _ -> None

let handle_search art (req : Http.request) =
  let* j = parse_json_body req in
  let* march =
    match (Json.member "config" j, Json.member "march" j) with
    | Some (Json.Str name), None -> (
        match named_config name with
        | Some c -> Ok c
        | None ->
            Error (400, "bad_request", Printf.sprintf "unknown config %S (want constrained|typical|aggressive)" name))
    | None, Some m -> (
        match point_of_json m with
        | Error e -> Error (400, "bad_request", e)
        | Ok vals ->
            if Array.length vals <> Params.n_march then
              Error (400, "bad_request", Printf.sprintf "\"march\" wants %d raw values, got %d" Params.n_march (Array.length vals))
            else Ok (Params.to_march (Array.append (Array.make Params.n_compiler 0.0) vals)))
    | None, None -> Ok Emc_sim.Config.typical
    | _ -> Error (400, "bad_request", "give either \"config\" or \"march\", not both")
  in
  let int_field name default =
    match Json.member name j with
    | None -> Ok default
    | Some (Json.Int v) when v > 0 -> Ok v
    | Some _ -> Error (400, "bad_request", Printf.sprintf "%S must be a positive integer" name)
  in
  let* seed = int_field "seed" 42 in
  let* pop_size = int_field "pop_size" Emc_search.Ga.default_params.Emc_search.Ga.pop_size in
  let* generations =
    int_field "generations" Emc_search.Ga.default_params.Emc_search.Ga.generations
  in
  let params = { Emc_search.Ga.default_params with pop_size; generations } in
  let evals_before = Option.value ~default:0 (Metrics.counter_value "ga.evaluations") in
  let r =
    Searcher.search ~params ~rng:(Emc_util.Rng.create seed) ~model:(Artifact.model art) ~march ()
  in
  let evals = Option.value ~default:0 (Metrics.counter_value "ga.evaluations") - evals_before in
  let flag_names = Params.names Params.compiler_specs in
  json_body 200
    (Json.Obj
       [ ("flags",
          Json.Obj
            (Array.to_list
               (Array.mapi (fun i v -> (flag_names.(i), Json.Float v)) r.Searcher.raw)));
         ("flags_string", Json.Str (Emc_opt.Flags.to_string r.Searcher.flags));
         ("predicted_cycles", Json.Float r.Searcher.predicted_cycles);
         ("evaluations", Json.Int evals);
         ("seed", Json.Int seed) ])

let handle_healthz art (_req : Http.request) =
  json_body 200
    (Json.Obj
       [ ("status", Json.Str "ok");
         ("workload", Json.Str art.Artifact.workload);
         ("technique", Json.Str art.Artifact.technique);
         ("dims", Json.Int (Artifact.dims art));
         ("format_version", Json.Int Artifact.current_version) ])

let endpoints = [ "/predict"; "/rank"; "/search"; "/healthz"; "/metrics" ]

let dispatch art (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" -> handle_predict art req
  | "GET", "/rank" | "POST", "/rank" -> handle_rank art req
  | "POST", "/search" -> handle_search art req
  | "GET", "/healthz" -> handle_healthz art req
  | "GET", "/metrics" -> (200, "text/plain; version=0.0.4", prometheus ())
  | _, p when List.mem p endpoints ->
      error_body 405 "method_not_allowed" (req.Http.meth ^ " is not supported on " ^ p)
  | _, p -> error_body 404 "not_found" ("no such endpoint: " ^ p)

(* Dispatch wrapped with per-endpoint telemetry and a catch-all so no
   exception ever escapes to the client as a dropped connection. *)
let handle_request art (req : Http.request) =
  let endpoint = if List.mem req.Http.path endpoints then req.Http.path else "other" in
  Metrics.incr m_requests;
  Metrics.incr (endpoint_counter endpoint);
  let t0 = Unix.gettimeofday () in
  let ((status, _, _) as resp) =
    try dispatch art req
    with e ->
      Emc_obs.Log.warn ~src:"serve" "request handler raised: %s" (Printexc.to_string e);
      error_body 500 "internal" "internal error; see server log"
  in
  Metrics.observe (latency_hist endpoint) (Unix.gettimeofday () -. t0);
  if status >= 400 then begin
    Metrics.incr m_errors;
    Metrics.incr (status_counter status)
  end;
  resp

(* ---------------- connection + worker loop ---------------- *)

let stop = ref false

let count_error status =
  Metrics.incr m_requests;
  Metrics.incr m_errors;
  Metrics.incr (status_counter status)

let handle_conn art opts fd =
  Metrics.incr m_connections;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO opts.read_timeout;
  let rec loop () =
    match Http.read_request ~max_body:opts.max_body fd with
    | Error Http.Closed -> ()
    | Error Http.Timeout ->
        count_error 408;
        Http.respond fd ~status:408 ~keep_alive:false
          (Json.to_string
             (Json.Obj [ ("error", Json.Obj [ ("code", Json.Str "timeout"); ("message", Json.Str "request read timed out") ]) ]))
    | Error (Http.Too_large what) ->
        count_error 413;
        Http.respond fd ~status:413 ~keep_alive:false
          (Json.to_string
             (Json.Obj [ ("error", Json.Obj [ ("code", Json.Str "too_large"); ("message", Json.Str (what ^ " exceed the configured limit")) ]) ]))
    | Error (Http.Bad msg) ->
        count_error 400;
        Http.respond fd ~status:400 ~keep_alive:false
          (Json.to_string
             (Json.Obj [ ("error", Json.Obj [ ("code", Json.Str "bad_request"); ("message", Json.Str msg) ]) ]))
    | Ok req ->
        let status, content_type, body = handle_request art req in
        let keep_alive =
          (not !stop)
          && (match Http.header req "connection" with
             | Some c -> String.lowercase_ascii c <> "close"
             | None -> true)
        in
        Http.respond fd ~status ~content_type ~keep_alive body;
        if keep_alive then loop ()
  in
  (try loop ()
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
     ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker art opts lsock =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let quit = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  while not !stop do
    match Unix.accept lsock with
    | fd, _ -> handle_conn art opts fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* in-flight work is done (handle_conn returned); leave without running
     the parent's at_exit handlers, as lib/par workers do *)
  Unix._exit 0

let listen_description = function
  | Port p -> Printf.sprintf "127.0.0.1:%d" p
  | Unix_socket path -> path

let bind_listener = function
  | Unix_socket path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket from a dead server *)
      | _ -> failwith (path ^ " exists and is not a socket; refusing to replace it")
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      (s, fun () -> (try Unix.unlink path with Unix.Unix_error _ -> ()))
  | Port p ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      (s, fun () -> ())

let run opts art =
  let lsock, cleanup = bind_listener opts.listen in
  Unix.listen lsock 64;
  let workers = max 1 opts.workers in
  let pids =
    List.init workers (fun _ -> match Unix.fork () with 0 -> worker art opts lsock | pid -> pid)
  in
  let stopping = ref false in
  let quit = Sys.Signal_handle (fun _ -> stopping := true) in
  Sys.set_signal Sys.sigterm quit;
  Sys.set_signal Sys.sigint quit;
  Emc_obs.Log.info ~src:"serve"
    ~fields:
      [ ("workload", Json.Str art.Artifact.workload);
        ("technique", Json.Str art.Artifact.technique);
        ("workers", Json.Int workers) ]
    "serving %s/%s on %s (%d worker%s)" art.Artifact.workload art.Artifact.technique
    (listen_description opts.listen) workers
    (if workers = 1 then "" else "s");
  let alive = ref pids in
  while (not !stopping) && !alive <> [] do
    match Unix.waitpid [] (-1) with
    | pid, _ -> alive := List.filter (( <> ) pid) !alive
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> alive := []
  done;
  (* graceful shutdown: workers finish their in-flight request, then exit *)
  List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) !alive;
  List.iter
    (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    !alive;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  cleanup ();
  Emc_obs.Log.info ~src:"serve" "server on %s stopped" (listen_description opts.listen)
