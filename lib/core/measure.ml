open Emc_workloads

(** The measurement substrate of Figure 1's loop: compile the workload at the
    design point's compiler settings (with the machine description matching
    the design point's issue width, as the paper does by building one gcc per
    functional-unit configuration) and simulate it on the design point's
    microarchitecture, returning whole-program cycles.

    Compiled binaries are memoized per (workload, flags, issue-width) and
    measurements per full configuration — D-optimal designs repeat corner
    points, and searches revisit configurations. *)

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  mutable simulations : int;  (** actual simulator runs (cache misses) *)
  mutable compiles : int;
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
}

module Metrics = Emc_obs.Metrics
module Trace = Emc_obs.Trace

let m_compiles = Metrics.counter "measure.compiles"
let m_binary_hits = Metrics.counter "measure.binary_cache_hits"
let m_simulations = Metrics.counter "measure.simulations"
let m_result_hits = Metrics.counter "measure.result_cache_hits"

let create scale =
  { scale; binaries = Hashtbl.create 64; results = Hashtbl.create 1024; simulations = 0;
    compiles = 0; binary_hits = 0; result_hits = 0 }

let compile t (w : Workload.t) (flags : Emc_opt.Flags.t) ~issue_width =
  let key = Printf.sprintf "%s|%d|%s" w.name issue_width (Emc_opt.Flags.to_string flags) in
  match Hashtbl.find_opt t.binaries key with
  | Some p ->
      t.binary_hits <- t.binary_hits + 1;
      Metrics.incr m_binary_hits;
      p
  | None ->
      let prog =
        Trace.with_span ~cat:"compile"
          ~args:(fun () ->
            [ ("workload", Emc_obs.Json.Str w.name);
              ("issue_width", Emc_obs.Json.Int issue_width) ])
          "compile"
          (fun () -> Emc_codegen.Compiler.compile_source ~issue_width flags w.source)
      in
      t.compiles <- t.compiles + 1;
      Metrics.incr m_compiles;
      Hashtbl.replace t.binaries key prog;
      prog

let setup_func arrays (f : Emc_sim.Func.t) =
  List.iter
    (fun (name, data) ->
      match data with
      | Workload.DInt a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_int f name i v) a
      | Workload.DFloat a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_float f name i v) a)
    arrays

(** Which system response to model. The paper's evaluation uses execution
    time; §2.2 points out the same machinery fits power consumption or code
    size, both of which the simulator substrate also reports. *)
type response = Cycles | Energy | CodeSize

let response_name = function Cycles -> "cycles" | Energy -> "energy" | CodeSize -> "code-size"

let run_sim t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t) (march : Emc_sim.Config.t) =
  Trace.with_span ~cat:"measure"
    ~args:(fun () ->
      [ ("workload", Emc_obs.Json.Str w.name);
        ("variant", Emc_obs.Json.Str (Workload.variant_name variant)) ])
    "measure"
    (fun () ->
      let prog = compile t w flags ~issue_width:march.issue_width in
      let arrays = w.arrays ~scale:t.scale.Scale.workload_scale ~variant in
      let setup = setup_func arrays in
      let r =
        Trace.with_span ~cat:"sim" "simulate" (fun () ->
            match t.scale.Scale.smarts with
            | Some params -> Emc_sim.Smarts.run_sampled ~params march prog ~setup
            | None -> Emc_sim.Smarts.run_full march prog ~setup)
      in
      t.simulations <- t.simulations + 1;
      Metrics.incr m_simulations;
      r)

(** Measured response; results are memoized per full configuration. *)
let respond ?(response = Cycles) t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t)
    (march : Emc_sim.Config.t) =
  let key =
    Printf.sprintf "%s|%s|%s|%s|%s" (response_name response) w.name
      (Workload.variant_name variant) (Emc_opt.Flags.to_string flags)
      (Emc_sim.Config.to_string march)
  in
  match Hashtbl.find_opt t.results key with
  | Some c ->
      t.result_hits <- t.result_hits + 1;
      Metrics.incr m_result_hits;
      c
  | None ->
      let r = run_sim t w ~variant flags march in
      (* one simulation yields all three responses: memoize them all *)
      let store resp v =
        let k =
          Printf.sprintf "%s|%s|%s|%s|%s" (response_name resp) w.name
            (Workload.variant_name variant) (Emc_opt.Flags.to_string flags)
            (Emc_sim.Config.to_string march)
        in
        Hashtbl.replace t.results k v
      in
      store Cycles r.Emc_sim.Smarts.cycles;
      store Energy r.Emc_sim.Smarts.energy;
      store CodeSize (float_of_int r.Emc_sim.Smarts.static_instrs);
      Hashtbl.find t.results key

(** Measured execution time, in cycles. *)
let cycles t w ~variant flags march = respond ~response:Cycles t w ~variant flags march

(** Measure at a coded 25-dimensional design point. *)
let cycles_coded t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  cycles t w ~variant flags march

(** Measure an arbitrary response at a coded design point. *)
let respond_coded ?response t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  respond ?response t w ~variant flags march
