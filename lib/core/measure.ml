open Emc_workloads

(** The measurement substrate of Figure 1's loop: compile the workload at the
    design point's compiler settings (with the machine description matching
    the design point's issue width, as the paper does by building one gcc per
    functional-unit configuration) and simulate it on the design point's
    microarchitecture, returning whole-program cycles.

    Compiled binaries are memoized per (workload, flags, issue-width) and
    measurements per full configuration — D-optimal designs repeat corner
    points, and searches revisit configurations. The measurement memo can
    additionally be backed by a persistent on-disk cache (JSONL, one
    key/value pair per line) that is loaded at {!create} and appended on
    every fresh simulation, so a re-run of an experiment against a warm
    cache performs zero simulations. Batches of independent design points
    ({!respond_many} and friends) fan out across [scale.jobs] forked worker
    processes via {!Emc_par.Par}. *)

type t = {
  scale : Scale.t;
  binaries : (string, Emc_isa.Isa.program) Hashtbl.t;
  results : (string, float) Hashtbl.t;
  cache : out_channel option;  (** append side of the persistent cache *)
  mutable simulations : int;  (** actual simulator runs (cache misses) *)
  mutable compiles : int;
  mutable binary_hits : int;  (** compile requests served from the memo *)
  mutable result_hits : int;  (** measurements served from the memo *)
  mutable preloaded : int;  (** results loaded from the persistent cache *)
}

module Metrics = Emc_obs.Metrics
module Trace = Emc_obs.Trace

let m_compiles = Metrics.counter "measure.compiles"
let m_binary_hits = Metrics.counter "measure.binary_cache_hits"
let m_simulations = Metrics.counter "measure.simulations"
let m_result_hits = Metrics.counter "measure.result_cache_hits"
let m_preloaded = Metrics.counter "measure.cache_preloaded"

(* Wall-clock seconds per simulator run (cache misses only). The simulator
   is the pipeline's dominant cost and the subject of its perf baseline
   (BENCH_sim.json); exporting the distribution makes a regression visible
   in any experiment's metrics dump, not just in the bench harness. *)
let h_sim_seconds = Metrics.histogram "measure.sim_seconds"

(* ---------------- persistent result cache ---------------- *)

(* One JSON object per line. The value is a hex float literal (%h) rather
   than a JSON number: decimal printing is lossy and the cache must
   round-trip bit-identically for warm re-runs to reproduce datasets
   exactly. *)
let cache_line key v =
  Emc_obs.Json.to_string
    (Emc_obs.Json.Obj
       [ ("k", Emc_obs.Json.Str key); ("v", Emc_obs.Json.Str (Printf.sprintf "%h" v)) ])

let cache_entry_of_line line =
  match Emc_obs.Json.parse line with
  | Error _ -> None
  | Ok j -> (
      match (Emc_obs.Json.member "k" j, Emc_obs.Json.member "v" j) with
      | Some (Emc_obs.Json.Str k), Some (Emc_obs.Json.Str v) ->
          Option.map (fun f -> (k, f)) (float_of_string_opt v)
      | _ -> None)

let cache_load results path =
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let ic = open_in path in
    let loaded = ref 0 and bad = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match cache_entry_of_line line with
           | Some (k, v) ->
               Hashtbl.replace results k v;
               incr loaded
           | None -> incr bad
       done
     with End_of_file -> ());
    close_in ic;
    (!loaded, !bad)
  end

let cache_append t key v =
  match t.cache with
  | None -> ()
  | Some oc ->
      output_string oc (cache_line key v);
      output_char oc '\n';
      flush oc

let create ?cache_file scale =
  let cache_file =
    match cache_file with Some _ as f -> f | None -> Sys.getenv_opt "EMC_CACHE"
  in
  let results = Hashtbl.create 1024 in
  let cache, preloaded =
    match cache_file with
    | None -> (None, 0)
    | Some path ->
        let loaded, bad = cache_load results path in
        if bad > 0 then
          Emc_obs.Log.warn ~src:"measure"
            ~fields:[ ("file", Emc_obs.Json.Str path); ("lines", Emc_obs.Json.Int bad) ]
            "skipped %d malformed lines in result cache %s" bad path;
        Emc_obs.Log.info ~src:"measure"
          ~fields:[ ("file", Emc_obs.Json.Str path); ("results", Emc_obs.Json.Int loaded) ]
          "result cache %s: %d measurements preloaded" path loaded;
        Metrics.add m_preloaded loaded;
        (Some (open_out_gen [ Open_append; Open_creat ] 0o644 path), loaded)
  in
  { scale; binaries = Hashtbl.create 64; results; cache; simulations = 0; compiles = 0;
    binary_hits = 0; result_hits = 0; preloaded }

let binary_key (w : Workload.t) ~issue_width (flags : Emc_opt.Flags.t) =
  Printf.sprintf "%s|%d|%s" w.name issue_width (Emc_opt.Flags.to_string flags)

let compile t (w : Workload.t) (flags : Emc_opt.Flags.t) ~issue_width =
  let key = binary_key w ~issue_width flags in
  match Hashtbl.find_opt t.binaries key with
  | Some p ->
      t.binary_hits <- t.binary_hits + 1;
      Metrics.incr m_binary_hits;
      p
  | None ->
      let prog =
        Trace.with_span ~cat:"compile"
          ~args:(fun () ->
            [ ("workload", Emc_obs.Json.Str w.name);
              ("issue_width", Emc_obs.Json.Int issue_width) ])
          "compile"
          (fun () -> Emc_codegen.Compiler.compile_source ~issue_width flags w.source)
      in
      t.compiles <- t.compiles + 1;
      Metrics.incr m_compiles;
      Hashtbl.replace t.binaries key prog;
      prog

let setup_func arrays (f : Emc_sim.Func.t) =
  List.iter
    (fun (name, data) ->
      match data with
      | Workload.DInt a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_int f name i v) a
      | Workload.DFloat a -> Array.iteri (fun i v -> Emc_sim.Func.set_global_float f name i v) a)
    arrays

(** Which system response to model. The paper's evaluation uses execution
    time; §2.2 points out the same machinery fits power consumption or code
    size, both of which the simulator substrate also reports. *)
type response = Cycles | Energy | CodeSize

let response_name = function Cycles -> "cycles" | Energy -> "energy" | CodeSize -> "code-size"

let result_key response (w : Workload.t) ~variant (flags : Emc_opt.Flags.t)
    (march : Emc_sim.Config.t) =
  Printf.sprintf "%s|%s|%s|%s|%s" (response_name response) w.name
    (Workload.variant_name variant) (Emc_opt.Flags.to_string flags)
    (Emc_sim.Config.to_string march)

let run_sim t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t) (march : Emc_sim.Config.t) =
  Trace.with_span ~cat:"measure"
    ~args:(fun () ->
      [ ("workload", Emc_obs.Json.Str w.name);
        ("variant", Emc_obs.Json.Str (Workload.variant_name variant)) ])
    "measure"
    (fun () ->
      let prog = compile t w flags ~issue_width:march.issue_width in
      let arrays = w.arrays ~scale:t.scale.Scale.workload_scale ~variant in
      let setup = setup_func arrays in
      let t0 = Unix.gettimeofday () in
      let r =
        Trace.with_span ~cat:"sim" "simulate" (fun () ->
            match t.scale.Scale.smarts with
            | Some params -> Emc_sim.Smarts.run_sampled ~params march prog ~setup
            | None -> Emc_sim.Smarts.run_full march prog ~setup)
      in
      Metrics.observe h_sim_seconds (Unix.gettimeofday () -. t0);
      t.simulations <- t.simulations + 1;
      Metrics.incr m_simulations;
      r)

(* one simulation yields all three responses: memoize (and persist) them all *)
let store_all t w ~variant flags march (r : Emc_sim.Smarts.result) =
  let store resp v =
    let k = result_key resp w ~variant flags march in
    Hashtbl.replace t.results k v;
    cache_append t k v
  in
  store Cycles r.Emc_sim.Smarts.cycles;
  store Energy r.Emc_sim.Smarts.energy;
  store CodeSize (float_of_int r.Emc_sim.Smarts.static_instrs)

(** Measured response; results are memoized per full configuration. *)
let respond ?(response = Cycles) t (w : Workload.t) ~variant (flags : Emc_opt.Flags.t)
    (march : Emc_sim.Config.t) =
  let key = result_key response w ~variant flags march in
  match Hashtbl.find_opt t.results key with
  | Some c ->
      t.result_hits <- t.result_hits + 1;
      Metrics.incr m_result_hits;
      c
  | None ->
      let r = run_sim t w ~variant flags march in
      store_all t w ~variant flags march r;
      Hashtbl.find t.results key

(* ---------------- batched / parallel measurement ---------------- *)

(* One worker task: simulate one configuration. Runs in a forked child whose
   memo tables are copy-on-write snapshots of the parent's; the parent
   compiles every needed binary before forking, so the child's compile
   lookup always hits the inherited memo. *)
let sim_task t w ~variant ((flags : Emc_opt.Flags.t), (march : Emc_sim.Config.t)) =
  run_sim t w ~variant flags march

let respond_many ?(response = Cycles) t (w : Workload.t) ~variant
    (pairs : (Emc_opt.Flags.t * Emc_sim.Config.t) array) =
  let jobs = t.scale.Scale.jobs in
  let keys = Array.map (fun (f, m) -> result_key response w ~variant f m) pairs in
  (* unique uncached configurations, in first-occurrence order: D-optimal
     designs repeat corner points, and simulating a duplicate twice would
     waste a worker *)
  let missing = Hashtbl.create 32 in
  let work = ref [] in
  Array.iteri
    (fun i k ->
      if not (Hashtbl.mem t.results k || Hashtbl.mem missing k) then begin
        Hashtbl.add missing k ();
        work := pairs.(i) :: !work
      end)
    keys;
  let work = Array.of_list (List.rev !work) in
  if jobs <= 1 || Array.length work <= 1 then
    (* sequential path: byte-for-byte the reference semantics *)
    Array.map (fun (f, m) -> respond ~response t w ~variant f m) pairs
  else begin
    (* compile in the parent, one call per work item in sequential order:
       the children inherit the binary memo copy-on-write (no recompiles,
       no binaries built twice by sibling workers), and the compile /
       binary-hit counters advance exactly as the sequential path's would *)
    Array.iter
      (fun ((flags : Emc_opt.Flags.t), (march : Emc_sim.Config.t)) ->
        ignore (compile t w flags ~issue_width:march.issue_width))
      work;
    let sims =
      Trace.with_span ~cat:"measure"
        ~args:(fun () ->
          [ ("workload", Emc_obs.Json.Str w.name);
            ("points", Emc_obs.Json.Int (Array.length pairs));
            ("misses", Emc_obs.Json.Int (Array.length work));
            ("jobs", Emc_obs.Json.Int jobs) ])
        "measure.batch"
        (fun () -> Emc_par.Par.map ~jobs (sim_task t w ~variant) work)
    in
    (* merge the workers' results into the parent memo (and the persistent
       cache), accounting each exactly as the sequential path would *)
    Array.iteri
      (fun j (flags, march) ->
        store_all t w ~variant flags march sims.(j);
        t.simulations <- t.simulations + 1;
        Metrics.incr m_simulations)
      work;
    (* every key now resolves from the memo; a point is a cache hit unless
       it is the first occurrence of a key we just simulated *)
    let first = Hashtbl.create 32 in
    Array.map
      (fun k ->
        let v = Hashtbl.find t.results k in
        if Hashtbl.mem missing k && not (Hashtbl.mem first k) then Hashtbl.add first k ()
        else begin
          t.result_hits <- t.result_hits + 1;
          Metrics.incr m_result_hits
        end;
        v)
      keys
  end

let cycles_many t w ~variant pairs = respond_many ~response:Cycles t w ~variant pairs

let respond_coded_many ?response t w ~variant (points : float array array) =
  respond_many ?response t w ~variant (Array.map Params.configs_of_coded points)

let cycles_coded_many t w ~variant points =
  respond_coded_many ~response:Cycles t w ~variant points

(** Measured execution time, in cycles. *)
let cycles t w ~variant flags march = respond ~response:Cycles t w ~variant flags march

(** Measure at a coded 25-dimensional design point. *)
let cycles_coded t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  cycles t w ~variant flags march

(** Measure an arbitrary response at a coded design point. *)
let respond_coded ?response t w ~variant coded =
  let flags, march = Params.configs_of_coded coded in
  respond ?response t w ~variant flags march
